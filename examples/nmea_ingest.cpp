// Wire-level ingestion example: the archive side of the system. AIS
// reaches data providers as NMEA !AIVDM sentences; this example encodes
// a simulated feed to the wire format, decodes it back with the
// stateful multi-sentence decoder, and pushes the decoded reports
// through the pipeline — exactly the path a receiving station's data
// takes into the inventory.

#include <cstdio>
#include <string>
#include <vector>

#include "ais/nmea.h"
#include "common/quarantine.h"
#include "core/pipeline.h"
#include "sim/fleet.h"

int main() {
  using namespace pol;

  // 1. Simulate two weeks of traffic and render it as an NMEA feed.
  sim::FleetConfig fleet_config;
  fleet_config.seed = 360;
  fleet_config.commercial_vessels = 20;
  fleet_config.noncommercial_vessels = 5;
  fleet_config.start_time = 1640995200;
  fleet_config.end_time = fleet_config.start_time + 14 * kSecondsPerDay;
  fleet_config.corrupt_field_rate = 0.0;  // The wire adds its own noise.
  const sim::SimulationOutput archive =
      sim::FleetSimulator(fleet_config).Run();

  std::vector<std::string> feed;
  std::vector<UnixSeconds> receive_minute;  // Wire carries only seconds.
  feed.reserve(archive.reports.size() + archive.fleet.size() * 2);
  uint64_t unencodable = 0;
  for (const auto& report : archive.reports) {
    const auto sentence = ais::EncodePositionNmea(report);
    if (!sentence.ok()) {
      ++unencodable;  // E.g. simulator-injected out-of-range fields.
      continue;
    }
    feed.push_back(*sentence);
    receive_minute.push_back(report.timestamp / 60 * 60);
  }
  // Interleave static reports (type 5, multi-sentence).
  size_t static_sentences = 0;
  for (const auto& vessel : archive.fleet) {
    ais::StaticVoyageReport static_report;
    static_report.mmsi = vessel.mmsi;
    static_report.name = vessel.name;
    static_report.ship_type_code = vessel.ship_type_code;
    const auto sentences = ais::EncodeStaticVoyageNmea(static_report);
    if (sentences.ok()) static_sentences += sentences->size();
  }
  std::printf("encoded %zu position sentences (+%zu static), %llu "
              "unencodable reports\n",
              feed.size(), static_sentences,
              static_cast<unsigned long long>(unencodable));
  if (!feed.empty()) {
    std::printf("first sentence on the wire:\n  %s\n", feed.front().c_str());
  }

  // 2. Decode the feed back into positional reports. The on-air message
  //    carries only the UTC second; the receiving station overlays its
  //    own minute clock. Rejected sentences are not silently dropped: a
  //    QuarantineStore attached to the decoder dead-letters each one
  //    with per-reason counters — the ingest half of the pipeline's
  //    failure-containment layer (see DESIGN.md §3.3).
  QuarantineStore quarantine;
  ais::NmeaDecoder decoder;
  decoder.set_quarantine(&quarantine);
  std::vector<ais::PositionReport> decoded;
  decoded.reserve(feed.size());
  for (size_t i = 0; i < feed.size(); ++i) {
    const auto message = decoder.Feed(feed[i]);
    if (!message.ok()) continue;  // Already recorded in the quarantine.
    if (message->message_type == 1 || message->message_type == 2 ||
        message->message_type == 3 || message->message_type == 18) {
      ais::PositionReport report = message->position;
      report.timestamp = receive_minute[i] + report.timestamp;  // + second.
      decoded.push_back(report);
    }
  }
  std::printf("decoded %zu reports, %llu sentences quarantined\n",
              decoded.size(),
              static_cast<unsigned long long>(quarantine.total()));
  if (quarantine.total() != 0) {
    std::printf("quarantine counters (source, reason -> count):\n%s",
                quarantine.CountersToString().c_str());
  }

  // 3. The decoded feed is a normal archive: run the pipeline.
  core::PipelineConfig config;
  config.resolution = 6;
  const core::PipelineResult result =
      core::RunPipeline(decoded, archive.fleet, config);
  std::printf("pipeline over the decoded feed: %llu rows kept, %llu trips, "
              "%llu cells\n",
              static_cast<unsigned long long>(result.enrichment.kept),
              static_cast<unsigned long long>(result.trips.trips),
              static_cast<unsigned long long>(
                  result.inventory->DistinctCells()));
  return 0;
}
