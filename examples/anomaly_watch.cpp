// Anomaly watch example: build the model of normalcy from historical
// traffic, then screen a live stream — including a deliberately
// misbehaving vessel — and print alerts. This is the paper's motivating
// application ("timely identification of abnormal behaviour").

#include <cmath>
#include <cstdio>

#include "common/time_util.h"
#include "core/pipeline.h"
#include "geo/geodesic.h"
#include "sim/fleet.h"
#include "usecases/anomaly.h"

int main() {
  using namespace pol;

  sim::FleetConfig fleet_config;
  fleet_config.seed = 5150;
  fleet_config.commercial_vessels = 50;
  fleet_config.noncommercial_vessels = 0;
  fleet_config.start_time = 1640995200;
  fleet_config.end_time = fleet_config.start_time + 120 * kSecondsPerDay;
  fleet_config.coastal_interval_s = 300;  // Dense coverage: sharp baselines.
  fleet_config.ocean_interval_s = 900;
  const sim::SimulationOutput archive =
      sim::FleetSimulator(fleet_config).Run();

  core::PipelineConfig config;
  // Res 7 (~5 km^2 cells) resolves the two directions of a separated
  // lane into different cells, which is what makes course anomalies
  // detectable. The route-level grouping set is not needed for anomaly
  // screening, so it is disabled to keep the model small.
  config.resolution = 7;
  config.extractor.gi_cell_route_type = false;
  const core::PipelineResult result =
      core::RunPipeline(archive.reports, archive.fleet, config);
  std::printf("normalcy model: %zu summaries from %llu records\n",
              result.inventory->size(),
              static_cast<unsigned long long>(result.aggregated_records));

  uc::AnomalyConfig anomaly_config;
  anomaly_config.min_support = 4;  // Small training sample.
  anomaly_config.min_course_concentration = 0.8;
  const uc::AnomalyDetector detector(result.inventory.get(), anomaly_config);

  // A live stream: ordinary reports plus a vessel going dark and cutting
  // across an empty patch of ocean at implausible speed.
  struct Probe {
    const char* label;
    geo::LatLng position;
    double sog;
    double cog;
  };
  // Derive an on-lane probe from a real (cell, vessel-type) summary with
  // strongly directional traffic, and probe with that same segment.
  geo::LatLng on_lane{1.2, 103.9};
  double lane_speed = 13.0;
  double lane_course = 90.0;
  auto probe_segment = ais::MarketSegment::kContainer;
  uint64_t best_support = 0;
  result.inventory->VisitGroupingSet(
      core::GroupingSet::kCellType,
      [&](const core::GroupKey& key, const core::CellSummary& summary) {
        if (summary.record_count() < 8) return;
        if (summary.course_mean().ResultantLength() < 0.8) return;
        if (summary.record_count() <= best_support) return;
        best_support = summary.record_count();
        on_lane = hex::CellToLatLng(key.cell);
        lane_speed = summary.speed().Mean();
        lane_course = summary.course_mean().MeanDeg();
        probe_segment = static_cast<ais::MarketSegment>(key.segment);
      });

  std::printf("probe lane: (%.2f, %.2f), %s traffic, %.1f kn on %.0f deg "
              "(support %llu)\n",
              on_lane.lat_deg, on_lane.lng_deg,
              ais::MarketSegmentName(probe_segment).data(), lane_speed,
              lane_course, static_cast<unsigned long long>(best_support));

  const Probe probes[] = {
      {"on-lane, normal speed & course", on_lane, lane_speed, lane_course},
      {"on-lane, counter-flow", on_lane, lane_speed,
       std::fmod(lane_course + 180.0, 360.0)},
      {"on-lane, drifting (2 kn)", on_lane, 2.0, lane_course},
      {"off-lane, mid South Pacific", {-42.0, -120.0}, 14.0, 270.0},
      {"off-lane, Southern Ocean", {-58.0, 60.0}, 12.0, 90.0},
  };

  std::printf("\n%-34s %-8s %-30s\n", "probe", "score", "signals");
  for (const Probe& probe : probes) {
    const auto assessment =
        detector.Assess(probe.position, probe.sog, probe.cog,
                        probe_segment);
    std::string signals;
    if (assessment.off_lane) signals += "off-lane ";
    if (assessment.speed_anomaly) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "speed(z=%.1f) ", assessment.speed_z);
      signals += buf;
    }
    if (assessment.course_anomaly) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "course(+%.0fdeg) ",
                    assessment.course_deviation_deg);
      signals += buf;
    }
    if (signals.empty()) signals = "none";
    std::printf("%-34s %-8d %-30s\n", probe.label, assessment.score,
                signals.c_str());
  }
  return 0;
}
