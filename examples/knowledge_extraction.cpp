// Knowledge extraction example (paper section 4.1.1): build the
// inventory, then read the patterns of life out of it programmatically —
// lane structure, traffic separation, anchorages, port activity and
// congestion.

#include <cstdio>

#include "core/cleaning.h"
#include "core/pipeline.h"
#include "hexgrid/hexgrid.h"
#include "sim/fleet.h"
#include "usecases/congestion.h"
#include "usecases/lane_analysis.h"

int main() {
  using namespace pol;

  sim::FleetConfig fleet_config;
  fleet_config.seed = 404404;
  fleet_config.commercial_vessels = 45;
  fleet_config.noncommercial_vessels = 0;
  fleet_config.start_time = 1640995200;
  fleet_config.end_time = fleet_config.start_time + 90 * kSecondsPerDay;
  fleet_config.coastal_interval_s = 300;
  fleet_config.ocean_interval_s = 900;
  const sim::SimulationOutput archive =
      sim::FleetSimulator(fleet_config).Run();

  core::PipelineConfig config;
  config.resolution = 7;
  config.extractor.gi_cell_route_type = false;
  const core::PipelineResult result =
      core::RunPipeline(archive.reports, archive.fleet, config);
  std::printf("inventory: %zu summaries over %llu cells\n",
              result.inventory->size(),
              static_cast<unsigned long long>(
                  result.inventory->DistinctCells()));

  // 1. Lane structure of the world's traffic.
  uc::LaneAnalysisConfig lane_config;
  lane_config.min_records = 10;
  const uc::LaneAnalyzer analyzer(result.inventory.get(), lane_config);
  const uc::LaneAnalysisReport report = analyzer.AnalyzeAll();
  std::printf("\ncell classification (cells with >=%llu records):\n",
              static_cast<unsigned long long>(lane_config.min_records));
  for (const auto& [cell_class, count] : report.cells_per_class) {
    if (cell_class == uc::CellClass::kSparse) continue;
    std::printf("  %-14s %llu\n", uc::CellClassName(cell_class),
                static_cast<unsigned long long>(count));
  }

  // 2. Port activity & congestion from the reconstructed call table.
  flow::ThreadPool pool(0);
  core::CleaningStats cleaning;
  const auto cleaned =
      core::CleanReports(archive.reports, {}, &pool, &cleaning);
  const core::Geofencer geofencer(&sim::PortDatabase::Global(), 6);
  const auto calls = core::ExtractPortCalls(cleaned, geofencer);
  const auto activity = uc::AnalyzePortActivity(
      calls, cleaned, sim::PortDatabase::Global());
  std::printf("\nport call table: %zu calls across %zu ports\n",
              calls.size(), activity.size());
  std::printf("%-22s %-8s %-16s %-14s %s\n", "port", "calls",
              "mean stay (h)", "p90 stay (h)", "anchorage waits");
  int shown = 0;
  for (const auto& entry : activity) {
    const auto port = sim::PortDatabase::Global().Find(entry.port);
    char waits[48] = "-";
    if (entry.waits > 0) {
      std::snprintf(waits, sizeof(waits), "%llu (mean %.1f h)",
                    static_cast<unsigned long long>(entry.waits),
                    entry.mean_wait_hours);
    }
    std::printf("%-22s %-8llu %-16.1f %-14.1f %s\n",
                port.ok() ? (*port)->name.c_str() : "?",
                static_cast<unsigned long long>(entry.calls),
                entry.mean_stay_hours, entry.p90_stay_hours, waits);
    if (++shown >= 10) break;
  }
  return 0;
}
