// Quickstart: build a patterns-of-life inventory from (simulated) AIS
// data and query it by location.
//
//   $ ./quickstart
//   $ ./quickstart --trace-out trace.json --report-out report.json
//
// Walks the whole public API in ~40 lines of logic: simulate traffic,
// run the pipeline, query cells, persist and reload the inventory.
// `--trace-out` writes a Chrome trace of the run (load it in
// chrome://tracing or https://ui.perfetto.dev); `--report-out` writes
// the machine-readable run report (`polinv report <file>` pretty-prints
// it).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/inventory_snapshot.h"
#include "core/pipeline.h"
#include "hexgrid/hexgrid.h"
#include "sim/fleet.h"

int main(int argc, char** argv) {
  using namespace pol;

  std::string trace_out;
  std::string report_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--report-out") == 0 && i + 1 < argc) {
      report_out = argv[++i];
    } else {
      std::printf("usage: %s [--trace-out <path>] [--report-out <path>]\n",
                  argv[0]);
      return 2;
    }
  }

  // 1. An AIS archive. Here: two simulated months of global traffic
  //    (plug in your own std::vector<ais::PositionReport> instead).
  sim::FleetConfig fleet_config;
  fleet_config.seed = 2022;
  fleet_config.commercial_vessels = 40;
  fleet_config.noncommercial_vessels = 20;
  fleet_config.start_time = 1640995200;  // 2022-01-01 UTC.
  fleet_config.end_time = fleet_config.start_time + 60 * kSecondsPerDay;
  const sim::SimulationOutput archive = sim::FleetSimulator(fleet_config).Run();
  std::printf("archive: %zu position reports from %zu vessels\n",
              archive.reports.size(), archive.fleet.size());

  // 2. Run the pipeline: clean -> enrich -> trips -> project -> extract.
  core::PipelineConfig config;
  config.resolution = 6;          // ~36 km^2 hexagons, as in the paper.
  config.commercial_only = true;  // Focus on the logistics chain.
  config.chunks = 4;              // Bound peak memory; result is identical.
  config.obs.trace_path = trace_out;
  config.obs.report_path = report_out;
  const core::PipelineResult result =
      core::RunPipeline(archive.reports, archive.fleet, config);
  const core::Inventory& inventory = *result.inventory;

  std::printf("pipeline: kept %llu of %llu rows, found %llu trips\n",
              static_cast<unsigned long long>(result.enrichment.kept),
              static_cast<unsigned long long>(result.cleaning.input),
              static_cast<unsigned long long>(result.trips.trips));
  std::printf("%s", flow::StageMetricsTable(result.stage_metrics).c_str());
  if (!trace_out.empty()) {
    std::printf("trace written to %s (open in chrome://tracing)\n",
                trace_out.c_str());
  }
  if (!report_out.empty()) {
    std::printf("run report written to %s (pretty-print: polinv report)\n",
                report_out.c_str());
  }
  const core::CompressionReport compression = result.Compression();
  std::printf("inventory: %llu cells, %.2f%% compression vs raw rows\n",
              static_cast<unsigned long long>(compression.cells),
              compression.compression * 100);

  // 3. Seal the build-side inventory into an immutable snapshot and
  // query by location: what does traffic look like off Singapore?
  // Snapshots answer every core::InventoryQuery call from flat sorted
  // arrays — this is the read path a serving process uses.
  const std::shared_ptr<const core::InventorySnapshot> snapshot =
      inventory.Seal();
  // (At this small sample scale the exact cell can be empty; fall back
  // to the busiest cell of the inventory so the output is informative.)
  geo::LatLng query_point{1.2, 103.9};
  if (snapshot->AtPosition(query_point) == nullptr) {
    uint64_t best = 0;
    snapshot->VisitGroupingSet(
        core::GroupingSet::kCell,
        [&best, &query_point](const core::GroupKey& key,
                              const core::CellSummary& summary) {
          if (summary.record_count() > best) {
            best = summary.record_count();
            query_point = hex::CellToLatLng(key.cell);
          }
        });
    std::printf("(cell off Singapore empty in this sample; querying the "
                "busiest cell instead)\n");
  }
  if (const core::CellSummary* cell = snapshot->AtPosition(query_point)) {
    std::printf("\ncell at %s:\n", query_point.ToString().c_str());
    std::printf("  records:      %llu\n",
                static_cast<unsigned long long>(cell->record_count()));
    std::printf("  distinct ships: %.0f, trips: %.0f\n",
                cell->ships().Estimate(), cell->trips().Estimate());
    std::printf("  speed: mean %.1f kn, p10/p90 %.1f/%.1f kn\n",
                cell->speed().Mean(), cell->speed_percentiles().Quantile(0.1),
                cell->speed_percentiles().Quantile(0.9));
    std::printf("  course: %.0f deg (concentration %.2f)\n",
                cell->course_mean().MeanDeg(),
                cell->course_mean().ResultantLength());
    for (const auto& dest : cell->destinations().TopN(3)) {
      const auto port = sim::PortDatabase::Global().Find(
          static_cast<sim::PortId>(dest.key));
      std::printf("  frequent destination: %s (%llu records)\n",
                  port.ok() ? (*port)->name.c_str() : "?",
                  static_cast<unsigned long long>(dest.count));
    }
  } else {
    std::printf("no traffic recorded off Singapore in this sample\n");
  }

  // 4. Persist and reload.
  const std::string path = "/tmp/quickstart.polinv";
  if (const Status saved = inventory.SaveToFile(path); !saved.ok()) {
    std::printf("save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  const Result<core::Inventory> reloaded = core::Inventory::LoadFromFile(path);
  if (!reloaded.ok()) {
    std::printf("load failed: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("\nsaved and reloaded inventory: %zu summaries, file %s\n",
              reloaded->size(), path.c_str());
  return 0;
}
