// Route forecasting example (paper section 4.1.3 / Figure 2.f): build
// the transition graph for an (origin, destination, vessel-type) key and
// run A* to forecast the remaining route of a vessel mid-voyage.

#include <cstdio>

#include "core/pipeline.h"
#include "geo/geodesic.h"
#include "hexgrid/hexgrid.h"
#include "sim/fleet.h"
#include "usecases/destination.h"
#include "usecases/route_forecast.h"

int main() {
  using namespace pol;

  sim::FleetConfig fleet_config;
  fleet_config.seed = 31415;
  fleet_config.commercial_vessels = 50;
  fleet_config.noncommercial_vessels = 0;
  fleet_config.start_time = 1640995200;
  fleet_config.end_time = fleet_config.start_time + 150 * kSecondsPerDay;
  const sim::SimulationOutput archive =
      sim::FleetSimulator(fleet_config).Run();

  core::PipelineConfig config;
  config.resolution = 6;
  const core::PipelineResult result =
      core::RunPipeline(archive.reports, archive.fleet, config);

  const uc::RouteForecaster forecaster(result.inventory.get(),
                                       &sim::PortDatabase::Global());

  // Replay one voyage: forecast from a mid-voyage position.
  for (const auto& voyage : archive.voyages) {
    if (voyage.distance_km < 3000) continue;
    ais::MarketSegment segment = ais::MarketSegment::kOther;
    for (const auto& vessel : archive.fleet) {
      if (vessel.mmsi == voyage.mmsi) segment = vessel.segment;
    }
    // Find a report one third into the voyage.
    const ais::PositionReport* mid = nullptr;
    const UnixSeconds t_mid =
        voyage.departure + (voyage.arrival - voyage.departure) / 3;
    for (const auto& report : archive.reports) {
      if (report.mmsi == voyage.mmsi && report.timestamp >= t_mid) {
        mid = &report;
        break;
      }
    }
    if (mid == nullptr) continue;

    const sim::Port& origin =
        **sim::PortDatabase::Global().Find(voyage.origin);
    const sim::Port& dest =
        **sim::PortDatabase::Global().Find(voyage.destination);
    const auto forecast =
        forecaster.Forecast({mid->lat_deg, mid->lng_deg}, voyage.origin,
                            voyage.destination, segment);
    if (!forecast.ok()) continue;

    std::printf("voyage %s -> %s (%s traffic)\n", origin.name.c_str(),
                dest.name.c_str(), ais::MarketSegmentName(segment).data());
    std::printf("vessel now at (%.2f, %.2f); transition graph: %zu cells, "
                "%zu edges\n",
                mid->lat_deg, mid->lng_deg, forecast->graph_cells,
                forecast->graph_edges);
    std::printf("forecast route: %zu cells, %.0f km remaining\n\n",
                forecast->cells.size(), forecast->distance_km);
    std::printf("%-6s %-24s %-12s\n", "step", "cell centre", "to-go (km)");
    double to_go = forecast->distance_km;
    for (size_t i = 0; i < forecast->cells.size(); ++i) {
      const geo::LatLng p = hex::CellToLatLng(forecast->cells[i]);
      // Print every few steps to keep the table short.
      if (i % std::max<size_t>(1, forecast->cells.size() / 15) == 0 ||
          i + 1 == forecast->cells.size()) {
        std::printf("%-6zu (%8.2f, %9.2f)   %8.0f\n", i, p.lat_deg,
                    p.lng_deg, to_go);
      }
      if (i + 1 < forecast->cells.size()) {
        to_go -= geo::HaversineKm(p, hex::CellToLatLng(forecast->cells[i + 1]));
      }
    }
    std::printf("\n(destination port at (%.2f, %.2f))\n",
                dest.position.lat_deg, dest.position.lng_deg);
    return 0;
  }
  std::printf("no forecastable voyage found in the sample\n");
  return 1;
}
