// ETA estimation example (paper section 4.1.2): follow one voyage and
// print the inventory-based arrival estimate as the vessel advances,
// next to the actual remaining time.

#include <cstdio>
#include <vector>

#include "common/time_util.h"
#include "core/pipeline.h"
#include "sim/fleet.h"
#include "usecases/eta.h"

int main() {
  using namespace pol;

  // Train an inventory on four months of simulated traffic.
  sim::FleetConfig fleet_config;
  fleet_config.seed = 777;
  fleet_config.commercial_vessels = 40;
  fleet_config.noncommercial_vessels = 0;
  fleet_config.start_time = 1640995200;
  fleet_config.end_time = fleet_config.start_time + 120 * kSecondsPerDay;
  const sim::SimulationOutput archive =
      sim::FleetSimulator(fleet_config).Run();

  core::PipelineConfig config;
  config.resolution = 6;
  const core::PipelineResult result =
      core::RunPipeline(archive.reports, archive.fleet, config);
  const uc::EtaEstimator estimator(result.inventory.get());

  // Pick a long completed voyage to replay.
  const sim::VoyageTruth* voyage = nullptr;
  for (const auto& candidate : archive.voyages) {
    if (candidate.distance_km > 4000 &&
        (voyage == nullptr || candidate.distance_km > voyage->distance_km)) {
      voyage = &candidate;
    }
  }
  if (voyage == nullptr) {
    std::printf("no long voyage in the sample\n");
    return 1;
  }
  ais::MarketSegment segment = ais::MarketSegment::kOther;
  for (const auto& vessel : archive.fleet) {
    if (vessel.mmsi == voyage->mmsi) segment = vessel.segment;
  }
  const sim::Port& origin = **sim::PortDatabase::Global().Find(voyage->origin);
  const sim::Port& dest =
      **sim::PortDatabase::Global().Find(voyage->destination);
  std::printf("voyage %s -> %s (%.0f km), departed %s\n",
              origin.name.c_str(), dest.name.c_str(), voyage->distance_km,
              FormatUnixSeconds(voyage->departure).c_str());

  std::printf("\n%-10s %-14s %-22s %-22s %s\n", "progress", "position",
              "estimated remaining", "actual remaining", "source");
  int printed = 0;
  UnixSeconds next_print = voyage->departure;
  for (const auto& report : archive.reports) {
    if (report.mmsi != voyage->mmsi || report.timestamp < voyage->departure ||
        report.timestamp > voyage->arrival) {
      continue;
    }
    if (report.timestamp < next_print) continue;
    next_print = report.timestamp +
                 (voyage->arrival - voyage->departure) / 12;
    const auto estimate = estimator.Estimate(
        {report.lat_deg, report.lng_deg}, segment, voyage->origin,
        voyage->destination);
    const double progress =
        100.0 * static_cast<double>(report.timestamp - voyage->departure) /
        static_cast<double>(voyage->arrival - voyage->departure);
    char position[32];
    std::snprintf(position, sizeof(position), "%.1f,%.1f", report.lat_deg,
                  report.lng_deg);
    if (estimate.ok()) {
      static const char* kSources[] = {"(cell)", "(cell,type)",
                                       "(cell,o,d,type)"};
      std::printf("%8.0f%%  %-14s %-22s %-22s %s\n", progress, position,
                  FormatDuration(static_cast<int64_t>(estimate->seconds))
                      .c_str(),
                  FormatDuration(voyage->arrival - report.timestamp).c_str(),
                  kSources[estimate->grouping_set]);
    } else {
      std::printf("%8.0f%%  %-14s %-22s %-22s %s\n", progress, position,
                  "(no history)",
                  FormatDuration(voyage->arrival - report.timestamp).c_str(),
                  "-");
    }
    ++printed;
  }
  if (printed == 0) std::printf("(voyage had no usable reports)\n");
  return 0;
}
