#include "geo/gnomonic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geo/geodesic.h"

namespace pol::geo {
namespace {

TEST(GnomonicTest, CenterProjectsToOrigin) {
  const Vec3 center = LatLngToVec3({30, 45});
  const Gnomonic proj(center, {0, 0, 1});
  bool ok = false;
  const PlanePoint p = proj.Forward(center, &ok);
  EXPECT_TRUE(ok);
  EXPECT_NEAR(p.u, 0.0, 1e-15);
  EXPECT_NEAR(p.v, 0.0, 1e-15);
}

TEST(GnomonicTest, ForwardInverseRoundTrip) {
  Rng rng(77);
  const Vec3 center = LatLngToVec3({10, -20});
  const Gnomonic proj(center, {0, 0, 1});
  for (int i = 0; i < 2000; ++i) {
    // Points within ~60 degrees of the centre.
    const LatLng target{rng.Uniform(-45, 65), rng.Uniform(-75, 35)};
    const Vec3 v = LatLngToVec3(target);
    bool ok = false;
    const PlanePoint p = proj.Forward(v, &ok);
    ASSERT_TRUE(ok);
    const Vec3 back = proj.Inverse(p);
    EXPECT_NEAR(AngleBetween(v, back), 0.0, 1e-12);
  }
}

TEST(GnomonicTest, UpDirectionMapsToPositiveV) {
  // Center on the equator, up toward the north pole: a point slightly
  // north of the centre must have v > 0, u ~= 0.
  const Gnomonic proj(LatLngToVec3({0, 0}), {0, 0, 1});
  bool ok = false;
  const PlanePoint p = proj.Forward(LatLngToVec3({1, 0}), &ok);
  ASSERT_TRUE(ok);
  EXPECT_GT(p.v, 0.0);
  EXPECT_NEAR(p.u, 0.0, 1e-12);
  // And a point to the east has u > 0 (right-handed frame).
  const PlanePoint q = proj.Forward(LatLngToVec3({0, 1}), &ok);
  ASSERT_TRUE(ok);
  EXPECT_GT(q.u, 0.0);
  EXPECT_NEAR(q.v, 0.0, 1e-12);
}

TEST(GnomonicTest, GreatCirclesMapToStraightLines) {
  // Three points on one great circle must be collinear in the plane.
  const Gnomonic proj(LatLngToVec3({20, 20}), {0, 0, 1});
  const LatLng a{0, 0};
  const LatLng b{40, 40};
  const LatLng mid = Interpolate(a, b, 0.37);
  bool ok = false;
  const PlanePoint pa = proj.Forward(LatLngToVec3(a), &ok);
  const PlanePoint pb = proj.Forward(LatLngToVec3(b), &ok);
  const PlanePoint pm = proj.Forward(LatLngToVec3(mid), &ok);
  const double cross = (pb.u - pa.u) * (pm.v - pa.v) -
                       (pm.u - pa.u) * (pb.v - pa.v);
  EXPECT_NEAR(cross, 0.0, 1e-12);
}

TEST(GnomonicTest, OppositeHemisphereFails) {
  const Vec3 center = LatLngToVec3({0, 0});
  const Gnomonic proj(center, {0, 0, 1});
  bool ok = true;
  proj.Forward(LatLngToVec3({0, 179}), &ok);
  EXPECT_FALSE(ok);
  proj.Forward(LatLngToVec3({0, 91}), &ok);
  EXPECT_FALSE(ok);
}

TEST(GnomonicTest, DistanceInflatesAwayFromCenter) {
  // Plane distance >= sphere distance (gnomonic stretches outward).
  const Gnomonic proj(LatLngToVec3({0, 0}), {0, 0, 1});
  bool ok = false;
  const PlanePoint p30 = proj.Forward(LatLngToVec3({0, 30}), &ok);
  const double plane_dist = std::hypot(p30.u, p30.v);
  const double sphere_dist = DegToRad(30);
  EXPECT_GT(plane_dist, sphere_dist);
  EXPECT_NEAR(plane_dist, std::tan(sphere_dist), 1e-12);
}

}  // namespace
}  // namespace pol::geo
