#include "geo/geodesic.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pol::geo {
namespace {

// Reference coordinates.
const LatLng kRotterdam{51.95, 4.14};
const LatLng kSingapore{1.26, 103.84};
const LatLng kNewYork{40.67, -74.04};

TEST(HaversineTest, KnownDistances) {
  // Equatorial degree of longitude ~= 111.19 km on the authalic sphere.
  EXPECT_NEAR(HaversineKm({0, 0}, {0, 1}), 111.19, 0.05);
  // Quarter circumference pole to equator.
  EXPECT_NEAR(HaversineKm({90, 0}, {0, 0}), kPi / 2 * kEarthRadiusKm, 0.01);
  // Rotterdam - Singapore great circle is roughly 10,500 km.
  EXPECT_NEAR(HaversineKm(kRotterdam, kSingapore), 10500, 150);
}

TEST(HaversineTest, SymmetricAndZeroOnIdentity) {
  EXPECT_DOUBLE_EQ(HaversineKm(kRotterdam, kRotterdam), 0.0);
  EXPECT_DOUBLE_EQ(HaversineKm(kRotterdam, kSingapore),
                   HaversineKm(kSingapore, kRotterdam));
}

TEST(HaversineTest, AntipodalIsHalfCircumference) {
  EXPECT_NEAR(HaversineKm({0, 0}, {0, 180}), kPi * kEarthRadiusKm, 0.01);
}

TEST(DistanceNmTest, MatchesKmConversion) {
  EXPECT_NEAR(DistanceNm({0, 0}, {0, 1}), 111.19 / 1.852, 0.05);
}

TEST(BearingTest, CardinalDirections) {
  EXPECT_NEAR(InitialBearingDeg({0, 0}, {1, 0}), 0.0, 1e-9);    // North.
  EXPECT_NEAR(InitialBearingDeg({0, 0}, {0, 1}), 90.0, 1e-9);   // East.
  EXPECT_NEAR(InitialBearingDeg({0, 0}, {-1, 0}), 180.0, 1e-9); // South.
  EXPECT_NEAR(InitialBearingDeg({0, 0}, {0, -1}), 270.0, 1e-9); // West.
}

TEST(BearingTest, RangeIsZeroTo360) {
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const LatLng a{rng.Uniform(-80, 80), rng.Uniform(-180, 180)};
    const LatLng b{rng.Uniform(-80, 80), rng.Uniform(-180, 180)};
    const double bearing = InitialBearingDeg(a, b);
    EXPECT_GE(bearing, 0.0);
    EXPECT_LT(bearing, 360.0);
  }
}

TEST(DestinationTest, InvertsBearingAndDistance) {
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const LatLng origin{rng.Uniform(-70, 70), rng.Uniform(-180, 180)};
    const double bearing = rng.Uniform(0, 360);
    const double distance = rng.Uniform(1, 5000);
    const LatLng dest = DestinationPoint(origin, bearing, distance);
    EXPECT_NEAR(HaversineKm(origin, dest), distance, distance * 1e-9 + 1e-6);
    EXPECT_NEAR(AngularDifferenceDeg(InitialBearingDeg(origin, dest), bearing),
                0.0, 1e-6);
  }
}

TEST(InterpolateTest, EndpointsAndMidpoint) {
  const LatLng a{0, 0};
  const LatLng b{0, 90};
  EXPECT_NEAR(Interpolate(a, b, 0.0).lng_deg, 0.0, 1e-9);
  EXPECT_NEAR(Interpolate(a, b, 1.0).lng_deg, 90.0, 1e-9);
  const LatLng mid = Interpolate(a, b, 0.5);
  EXPECT_NEAR(mid.lng_deg, 45.0, 1e-9);
  EXPECT_NEAR(mid.lat_deg, 0.0, 1e-9);
}

TEST(InterpolateTest, DistanceIsProportional) {
  const double total = HaversineKm(kRotterdam, kNewYork);
  for (double t : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const LatLng p = Interpolate(kRotterdam, kNewYork, t);
    EXPECT_NEAR(HaversineKm(kRotterdam, p), t * total, 1e-6 * total);
  }
}

TEST(SampleGreatCircleTest, StepBoundsRespected) {
  const auto points = SampleGreatCircle(kRotterdam, kSingapore, 100.0);
  ASSERT_GE(points.size(), 2u);
  EXPECT_NEAR(points.front().lat_deg, kRotterdam.lat_deg, 1e-9);
  EXPECT_NEAR(points.back().lat_deg, kSingapore.lat_deg, 1e-9);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(HaversineKm(points[i - 1], points[i]), 100.0 * (1.0 + 1e-6));
  }
}

TEST(SampleGreatCircleTest, IdenticalEndpointsYieldSinglePoint) {
  EXPECT_EQ(SampleGreatCircle(kRotterdam, kRotterdam, 10.0).size(), 1u);
}

TEST(CrossTrackTest, PointOnTrackIsZero) {
  const LatLng mid = Interpolate(kRotterdam, kNewYork, 0.4);
  EXPECT_NEAR(CrossTrackKm(kRotterdam, kNewYork, mid), 0.0, 1e-6);
}

TEST(CrossTrackTest, SignFollowsSideOfTrack) {
  // Track due east along the equator; a point north of it is to the left.
  const LatLng a{0, 0};
  const LatLng b{0, 10};
  EXPECT_GT(CrossTrackKm(a, b, {1, 5}), 0.0);
  EXPECT_LT(CrossTrackKm(a, b, {-1, 5}), 0.0);
  EXPECT_NEAR(std::fabs(CrossTrackKm(a, b, {1, 5})),
              HaversineKm({0, 5}, {1, 5}), 0.5);
}

TEST(ImpliedSpeedTest, KnownSpeed) {
  // 1 degree of longitude at the equator in one hour: ~60 knots.
  const double knots = ImpliedSpeedKnots({0, 0}, {0, 1}, 3600.0);
  EXPECT_NEAR(knots, 60.0, 0.1);
}

TEST(ImpliedSpeedTest, NonPositiveElapsedIsZero) {
  EXPECT_EQ(ImpliedSpeedKnots({0, 0}, {0, 1}, 0.0), 0.0);
  EXPECT_EQ(ImpliedSpeedKnots({0, 0}, {0, 1}, -5.0), 0.0);
}

TEST(AngularDifferenceTest, WrapsCorrectly) {
  EXPECT_DOUBLE_EQ(AngularDifferenceDeg(10, 350), 20.0);
  EXPECT_DOUBLE_EQ(AngularDifferenceDeg(0, 180), 180.0);
  EXPECT_DOUBLE_EQ(AngularDifferenceDeg(90, 90), 0.0);
  EXPECT_DOUBLE_EQ(AngularDifferenceDeg(359, 1), 2.0);
  EXPECT_DOUBLE_EQ(AngularDifferenceDeg(720 + 10, 350), 20.0);
}

}  // namespace
}  // namespace pol::geo
