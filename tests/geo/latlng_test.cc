#include "geo/latlng.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace pol::geo {
namespace {

TEST(LatLngTest, ValidityBounds) {
  EXPECT_TRUE(LatLng(0, 0).IsValid());
  EXPECT_TRUE(LatLng(90, -180).IsValid());
  EXPECT_TRUE(LatLng(-90, 180).IsValid());
  EXPECT_FALSE(LatLng(90.001, 0).IsValid());
  EXPECT_FALSE(LatLng(0, 180.001).IsValid());
  EXPECT_FALSE(LatLng(std::nan(""), 0).IsValid());
  EXPECT_FALSE(LatLng(0, std::numeric_limits<double>::infinity()).IsValid());
}

TEST(LatLngTest, NormalizedWrapsLongitude) {
  EXPECT_NEAR(LatLng(0, 190).Normalized().lng_deg, -170, 1e-12);
  EXPECT_NEAR(LatLng(0, -190).Normalized().lng_deg, 170, 1e-12);
  EXPECT_NEAR(LatLng(0, 540).Normalized().lng_deg, 180 - 360, 1e-12);
  EXPECT_NEAR(LatLng(0, 179.5).Normalized().lng_deg, 179.5, 1e-12);
}

TEST(LatLngTest, NormalizedClampsLatitude) {
  EXPECT_EQ(LatLng(95, 0).Normalized().lat_deg, 90);
  EXPECT_EQ(LatLng(-95, 0).Normalized().lat_deg, -90);
}

TEST(Vec3Test, BasicAlgebra) {
  const Vec3 x{1, 0, 0};
  const Vec3 y{0, 1, 0};
  const Vec3 z{0, 0, 1};
  EXPECT_DOUBLE_EQ(x.Dot(y), 0.0);
  const Vec3 cross = x.Cross(y);
  EXPECT_NEAR(cross.x, z.x, 1e-15);
  EXPECT_NEAR(cross.y, z.y, 1e-15);
  EXPECT_NEAR(cross.z, z.z, 1e-15);
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).Norm(), 5.0);
}

TEST(Vec3Test, ConversionRoundTrip) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const LatLng p{rng.Uniform(-89.9, 89.9), rng.Uniform(-180.0, 180.0)};
    const LatLng back = Vec3ToLatLng(LatLngToVec3(p));
    EXPECT_NEAR(back.lat_deg, p.lat_deg, 1e-9);
    EXPECT_NEAR(back.lng_deg, p.lng_deg, 1e-9);
  }
}

TEST(Vec3Test, PolesConvertCleanly) {
  const Vec3 north = LatLngToVec3({90, 0});
  EXPECT_NEAR(north.z, 1.0, 1e-15);
  EXPECT_NEAR(Vec3ToLatLng(north).lat_deg, 90.0, 1e-9);
}

TEST(Vec3Test, AngleBetweenIsStable) {
  const Vec3 a = LatLngToVec3({0, 0});
  EXPECT_NEAR(AngleBetween(a, LatLngToVec3({0, 90})), kPi / 2, 1e-12);
  EXPECT_NEAR(AngleBetween(a, LatLngToVec3({0, 180})), kPi, 1e-12);
  EXPECT_NEAR(AngleBetween(a, a), 0.0, 1e-12);
  // Tiny angles do not collapse to zero.
  const Vec3 b = LatLngToVec3({0, 1e-7});
  EXPECT_GT(AngleBetween(a, b), 0.0);
}

TEST(LatLngTest, ToStringFormatsSixDecimals) {
  EXPECT_EQ(LatLng(51.5, -0.12).ToString(), "(51.500000, -0.120000)");
}

}  // namespace
}  // namespace pol::geo
