// SnapshotStore: atomic generation publish, MANIFEST, retention GC,
// corrupt-generation fallback on open, torn-temp hygiene, and the
// store.* fail points of the faults preset.

#include "store/snapshot_store.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "store/snapshot_format.h"
#include "store/store_metric_names.h"

namespace pol::store {
namespace {

#if defined(POL_FAILPOINTS)
constexpr bool kFailPointsEnabled = true;
#else
constexpr bool kFailPointsEnabled = false;
#endif

uint64_t CounterValue(std::string_view name) {
  return obs::Registry::Global().counter(name)->value();
}

class SnapshotStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = (std::filesystem::path(::testing::TempDir()) /
                  ("pol_store_" +
                   std::string(::testing::UnitTest::GetInstance()
                                   ->current_test_info()
                                   ->name())))
                     .string();
    std::filesystem::remove_all(directory_);
  }

  void TearDown() override {
    FailPointRegistry::Global().DisarmAll();
    std::filesystem::remove_all(directory_);
  }

  SnapshotStore Store(int keep = 3) const {
    SnapshotStoreOptions options;
    options.directory = directory_;
    options.keep = keep;
    return SnapshotStore(options);
  }

  std::string directory_;
};

// Distinct valid POLSNAP1 images, distinguishable by their meta bytes.
std::string MakeImage(const std::string& marker) {
  SnapshotFileBuilder builder;
  builder.AddSection(0x01, marker);
  builder.AddSection(0x10, std::string(64, 'k'));
  return builder.Finish();
}

std::string SectionString(const SnapshotStore::Opened& opened, uint32_t id) {
  const Result<std::string_view> section = opened.view.Section(id);
  EXPECT_TRUE(section.ok()) << section.status().ToString();
  return section.ok() ? std::string(*section) : std::string();
}

TEST_F(SnapshotStoreTest, PublishAndOpenRoundTrip) {
  SnapshotStore store = Store();
  const Result<uint64_t> generation = store.Publish(MakeImage("gen one"));
  ASSERT_TRUE(generation.ok()) << generation.status().ToString();
  EXPECT_EQ(*generation, 1u);

  const Result<SnapshotStore::Opened> opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->generation, 1u);
  EXPECT_EQ(SectionString(*opened, 0x01), "gen one");

  const Result<uint64_t> manifest = store.ManifestCurrent();
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(*manifest, 1u);
}

TEST_F(SnapshotStoreTest, GenerationsAreMonotone) {
  SnapshotStore store = Store();
  for (uint64_t expected = 1; expected <= 3; ++expected) {
    const Result<uint64_t> generation =
        store.Publish(MakeImage("gen " + std::to_string(expected)));
    ASSERT_TRUE(generation.ok());
    EXPECT_EQ(*generation, expected);
  }
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{1, 2, 3}));
  const Result<SnapshotStore::Opened> opened = store.OpenGeneration(2);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(SectionString(*opened, 0x01), "gen 2");
}

TEST_F(SnapshotStoreTest, PublishRejectsInvalidImage) {
  SnapshotStore store = Store();
  const uint64_t failures_before =
      CounterValue(kMetricStorePublishFailures);
  const Result<uint64_t> generation = store.Publish("not a POLSNAP1 file");
  EXPECT_EQ(generation.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(store.ListGenerations().empty());
  if (obs::kEnabled) {
    EXPECT_EQ(CounterValue(kMetricStorePublishFailures),
              failures_before + 1);
  }
}

TEST_F(SnapshotStoreTest, GcKeepsNewestGenerations) {
  SnapshotStore store = Store(/*keep=*/2);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(store.Publish(MakeImage("gen " + std::to_string(i))).ok());
  }
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{3, 4}));
  const Result<SnapshotStore::Opened> opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->generation, 4u);
  EXPECT_EQ(SectionString(*opened, 0x01), "gen 4");
}

TEST_F(SnapshotStoreTest, OpenLatestSkipsCorruptNewest) {
  SnapshotStore store = Store();
  ASSERT_TRUE(store.Publish(MakeImage("good")).ok());
  ASSERT_TRUE(store.Publish(MakeImage("doomed")).ok());
  {
    // Flip one payload byte of generation 2 — a torn or bit-rotted file.
    std::fstream file(store.GenerationPath(2),
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    file.seekp(size - 1);
    file.put('\xFF');
  }
  const uint64_t fallbacks_before = CounterValue(kMetricStoreFallbacks);
  const Result<SnapshotStore::Opened> opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->generation, 1u);
  EXPECT_EQ(SectionString(*opened, 0x01), "good");
  if (obs::kEnabled) {
    EXPECT_EQ(CounterValue(kMetricStoreFallbacks), fallbacks_before + 1);
  }
}

TEST_F(SnapshotStoreTest, AllGenerationsCorruptIsDataLoss) {
  SnapshotStore store = Store();
  ASSERT_TRUE(store.Publish(MakeImage("a")).ok());
  ASSERT_TRUE(store.Publish(MakeImage("b")).ok());
  for (const uint64_t generation : store.ListGenerations()) {
    std::ofstream file(store.GenerationPath(generation),
                       std::ios::binary | std::ios::trunc);
    file << "shredded";
  }
  const Result<SnapshotStore::Opened> opened = store.OpenLatest();
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotStoreTest, EmptyDirectoryIsNotFound) {
  SnapshotStore store = Store();
  EXPECT_EQ(store.OpenLatest().status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotStoreTest, StrayTempFilesAreIgnoredAndSwept) {
  SnapshotStore store = Store();
  ASSERT_TRUE(store.Publish(MakeImage("gen 1")).ok());
  const std::string stray = store.GenerationPath(7) + ".tmp";
  {
    std::ofstream file(stray, std::ios::binary);
    file << "torn half-written image";
  }
  // A torn temp never counts as a generation and never serves.
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{1}));
  const Result<SnapshotStore::Opened> opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->generation, 1u);
  // The next successful publish sweeps it.
  ASSERT_TRUE(store.Publish(MakeImage("gen 2")).ok());
  EXPECT_FALSE(std::filesystem::exists(stray));
}

TEST_F(SnapshotStoreTest, ManifestMissingIsNotFound) {
  SnapshotStore store = Store();
  EXPECT_EQ(store.ManifestCurrent().status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotStoreTest, ManifestGarbageIsDataLoss) {
  SnapshotStore store = Store();
  ASSERT_TRUE(store.Publish(MakeImage("gen 1")).ok());
  {
    std::ofstream file(store.ManifestPath(),
                       std::ios::binary | std::ios::trunc);
    file << "POLSNAPMF1\ncurrent zero\n";
  }
  EXPECT_EQ(store.ManifestCurrent().status().code(), StatusCode::kDataLoss);
  // The MANIFEST is advisory: a shredded one never blocks serving.
  EXPECT_TRUE(store.OpenLatest().ok());
}

TEST_F(SnapshotStoreTest, WriteFailPointFailsPublishCleanly) {
  if (!kFailPointsEnabled) {
    GTEST_SKIP() << "fail points compiled out (build with POL_FAILPOINTS)";
  }
  SnapshotStore store = Store();
  ASSERT_TRUE(store.Publish(MakeImage("gen 1")).ok());
  FailPointSpec spec;
  spec.code = StatusCode::kIoError;
  FailPointRegistry::Global().Arm(kFailPointStoreWrite, spec);
  EXPECT_FALSE(store.Publish(MakeImage("gen 2")).ok());
  FailPointRegistry::Global().Disarm(kFailPointStoreWrite);
  // Nothing visible changed; the retry publishes the next generation.
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{1}));
  const Result<uint64_t> retried = store.Publish(MakeImage("gen 2 retry"));
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, 2u);
}

TEST_F(SnapshotStoreTest, RenameFailPointLeavesTornTempOnly) {
  if (!kFailPointsEnabled) {
    GTEST_SKIP() << "fail points compiled out (build with POL_FAILPOINTS)";
  }
  SnapshotStore store = Store();
  ASSERT_TRUE(store.Publish(MakeImage("gen 1")).ok());
  FailPointSpec spec;
  spec.code = StatusCode::kIoError;
  FailPointRegistry::Global().Arm(kFailPointStoreRename, spec);
  EXPECT_FALSE(store.Publish(MakeImage("gen 2")).ok());
  FailPointRegistry::Global().Disarm(kFailPointStoreRename);
  // The kill landed between write and rename: a stray .tmp exists, but
  // no new generation, and the old one still serves.
  EXPECT_TRUE(std::filesystem::exists(store.GenerationPath(2) + ".tmp"));
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{1}));
  const Result<SnapshotStore::Opened> opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->generation, 1u);
  // Recovery: the retry publishes generation 2 and sweeps the temp.
  const Result<uint64_t> retried = store.Publish(MakeImage("gen 2 retry"));
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, 2u);
  EXPECT_FALSE(std::filesystem::exists(store.GenerationPath(2) + ".tmp"));
}

TEST_F(SnapshotStoreTest, ManifestFailPointKeepsDurableGeneration) {
  if (!kFailPointsEnabled) {
    GTEST_SKIP() << "fail points compiled out (build with POL_FAILPOINTS)";
  }
  SnapshotStore store = Store();
  ASSERT_TRUE(store.Publish(MakeImage("gen 1")).ok());
  FailPointSpec spec;
  spec.code = StatusCode::kIoError;
  FailPointRegistry::Global().Arm(kFailPointStoreManifest, spec);
  EXPECT_FALSE(store.Publish(MakeImage("gen 2")).ok());
  FailPointRegistry::Global().Disarm(kFailPointStoreManifest);
  // The generation file was already durable, so a restart serves it —
  // the failed publish only means the caller will retry into gen 3.
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{1, 2}));
  const Result<SnapshotStore::Opened> opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->generation, 2u);
  const Result<uint64_t> manifest = store.ManifestCurrent();
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(*manifest, 1u);  // Advisory value lags; the scan wins.
}

TEST_F(SnapshotStoreTest, OpenFailPointExercisesFallback) {
  if (!kFailPointsEnabled) {
    GTEST_SKIP() << "fail points compiled out (build with POL_FAILPOINTS)";
  }
  SnapshotStore store = Store();
  ASSERT_TRUE(store.Publish(MakeImage("gen 1")).ok());
  ASSERT_TRUE(store.Publish(MakeImage("gen 2")).ok());
  // Fire on the next open attempt only: the newest generation fails to
  // open, the walk falls back to its predecessor.
  FailPointSpec spec;
  spec.fire_from = FailPointRegistry::Global().HitCount(kFailPointStoreOpen);
  spec.fire_count = 1;
  spec.code = StatusCode::kIoError;
  FailPointRegistry::Global().Arm(kFailPointStoreOpen, spec);
  const uint64_t fallbacks_before = CounterValue(kMetricStoreFallbacks);
  const Result<SnapshotStore::Opened> opened = store.OpenLatest();
  FailPointRegistry::Global().Disarm(kFailPointStoreOpen);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->generation, 1u);
  EXPECT_EQ(CounterValue(kMetricStoreFallbacks), fallbacks_before + 1);
}

}  // namespace
}  // namespace pol::store
