// POLSNAP1 container framing: build/validate round trips, section
// addressing, alignment, and total validation — every malformed image
// must come back as a clean kDataLoss, never a crash or partial view.

#include "store/snapshot_format.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"

namespace pol::store {
namespace {

std::string SampleImage() {
  SnapshotFileBuilder builder;
  builder.AddSection(0x01, "meta bytes");
  builder.AddSection(0x10, std::string(100, 'k'));
  builder.AddSection(0x30, "");  // Empty sections are legal.
  builder.AddSection(0x42, std::string("\x00\x01\x02\x03", 4));
  return builder.Finish();
}

TEST(SnapshotFormatTest, RoundTrip) {
  const std::string image = SampleImage();
  const Result<SnapshotFileView> view = SnapshotFileView::Validate(image);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->file_size(), image.size());
  ASSERT_EQ(view->Sections().size(), 4u);

  const Result<std::string_view> meta = view->Section(0x01);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(*meta, "meta bytes");

  const Result<std::string_view> keys = view->Section(0x10);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 100u);

  const Result<std::string_view> blob = view->Section(0x30);
  ASSERT_TRUE(blob.ok());
  EXPECT_TRUE(blob->empty());

  EXPECT_TRUE(view->HasSection(0x42));
  EXPECT_FALSE(view->HasSection(0x99));
}

TEST(SnapshotFormatTest, MissingSectionIsDataLoss) {
  const std::string image = SampleImage();
  const Result<SnapshotFileView> view = SnapshotFileView::Validate(image);
  ASSERT_TRUE(view.ok());
  const Result<std::string_view> absent = view->Section(0x99);
  EXPECT_EQ(absent.status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotFormatTest, SectionsAreAligned) {
  const std::string image = SampleImage();
  const Result<SnapshotFileView> view = SnapshotFileView::Validate(image);
  ASSERT_TRUE(view.ok());
  for (const SnapshotFileView::SectionInfo& info : view->Sections()) {
    EXPECT_EQ(info.offset % kSnapshotSectionAlignment, 0u)
        << "section 0x" << std::hex << info.id;
  }
}

TEST(SnapshotFormatTest, EmptyFileIsValid) {
  SnapshotFileBuilder builder;
  const std::string image = builder.Finish();
  const Result<SnapshotFileView> view = SnapshotFileView::Validate(image);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(view->Sections().empty());
}

TEST(SnapshotFormatTest, DeterministicEncoding) {
  EXPECT_EQ(SampleImage(), SampleImage());
}

TEST(SnapshotFormatTest, RejectsBadMagic) {
  std::string image = SampleImage();
  image[0] = 'X';
  EXPECT_EQ(SnapshotFileView::Validate(image).status().code(),
            StatusCode::kDataLoss);
}

TEST(SnapshotFormatTest, RejectsBadVersion) {
  std::string image = SampleImage();
  image[8] = 2;  // u32 format version little-endian low byte.
  EXPECT_EQ(SnapshotFileView::Validate(image).status().code(),
            StatusCode::kDataLoss);
}

TEST(SnapshotFormatTest, RejectsShortHeader) {
  const std::string image = SampleImage();
  for (const size_t keep : {size_t{0}, size_t{7}, size_t{31}, size_t{63}}) {
    EXPECT_EQ(
        SnapshotFileView::Validate(image.substr(0, keep)).status().code(),
        StatusCode::kDataLoss)
        << keep << " bytes kept";
  }
}

TEST(SnapshotFormatTest, RejectsEveryTruncation) {
  const std::string image = SampleImage();
  for (size_t keep = 0; keep < image.size(); ++keep) {
    const Result<SnapshotFileView> view =
        SnapshotFileView::Validate(image.substr(0, keep));
    ASSERT_FALSE(view.ok()) << keep << " bytes kept";
    EXPECT_EQ(view.status().code(), StatusCode::kDataLoss)
        << keep << " bytes kept";
  }
}

TEST(SnapshotFormatTest, RejectsTrailingGarbage) {
  std::string image = SampleImage();
  image += "extra";
  EXPECT_EQ(SnapshotFileView::Validate(image).status().code(),
            StatusCode::kDataLoss);
}

TEST(SnapshotFormatTest, RejectsEveryBitFlip) {
  const std::string image = SampleImage();
  // Every byte, one flipped bit each — header, table, padding and
  // payload alike must be covered by a CRC (padding flips break the
  // header CRC or a section CRC only if covered; the format checksums
  // header+table and each payload, and validates padding is zero).
  for (size_t i = 0; i < image.size(); ++i) {
    std::string corrupt = image;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    const Result<SnapshotFileView> view = SnapshotFileView::Validate(corrupt);
    ASSERT_FALSE(view.ok()) << "byte " << i;
    EXPECT_EQ(view.status().code(), StatusCode::kDataLoss) << "byte " << i;
  }
}

TEST(SnapshotFormatTest, FixedWidthAccessorsRoundTrip) {
  std::string buffer;
  AppendU32(&buffer, 0xCAFEBABEu);
  AppendU64(&buffer, 0x0123456789ABCDEFull);
  ASSERT_EQ(buffer.size(), 12u);
  EXPECT_EQ(LoadU32(buffer.data()), 0xCAFEBABEu);
  EXPECT_EQ(LoadU64(buffer.data() + 4), 0x0123456789ABCDEFull);
}

}  // namespace
}  // namespace pol::store
