#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace pol {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.Uniform(-5.0, 3.0);
    EXPECT_GE(d, -5.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(RngTest, NextBelowCoversRangeUniformly) {
  Rng rng(4242);
  constexpr uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBelow(kBuckets)];
  }
  // Each bucket should be within 10% of the expected count.
  for (uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets / 10.0)
        << "bucket " << b;
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All five values show up.
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(31337);
  constexpr int kSamples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(6);
  constexpr int kSamples = 100000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kSamples), 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(8);
  constexpr int kSamples = 100000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double e = rng.Exponential(0.5);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / kSamples, 2.0, 0.1);  // Mean = 1/rate.
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(1000);
  Rng b(1000);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
  }
  // The fork differs from the parent's continued stream.
  Rng c(1000);
  Rng fc = c.Fork();
  EXPECT_NE(fc.NextUint64(), c.NextUint64());
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(state);
  const uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
  // Regression pin: the generator must never change silently, or every
  // simulated dataset in the benchmarks changes with it.
  uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(state2), first);
}

}  // namespace
}  // namespace pol
