#include "common/logging.h"

#include <gtest/gtest.h>

namespace pol {
namespace {

TEST(LoggingTest, MinLevelRoundTrips) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  SetMinLogLevel(LogLevel::kDebug);
  EXPECT_EQ(MinLogLevel(), LogLevel::kDebug);
  SetMinLogLevel(original);
}

TEST(LoggingTest, DisabledLevelsDoNotEvaluate) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return 42;
  };
  POL_LOG(Debug) << "never printed " << expensive();
  POL_LOG(Info) << "never printed " << expensive();
  EXPECT_EQ(evaluations, 0);
  POL_LOG(Error) << "printed once " << expensive();
  EXPECT_EQ(evaluations, 1);
  SetMinLogLevel(original);
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(POL_LOG(Fatal) << "fatal message", "fatal message");
}

}  // namespace
}  // namespace pol
