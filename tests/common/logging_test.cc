#include "common/logging.h"

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace pol {
namespace {

TEST(LoggingTest, MinLevelRoundTrips) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  SetMinLogLevel(LogLevel::kDebug);
  EXPECT_EQ(MinLogLevel(), LogLevel::kDebug);
  SetMinLogLevel(original);
}

TEST(LoggingTest, DisabledLevelsDoNotEvaluate) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return 42;
  };
  POL_LOG(Debug) << "never printed " << expensive();
  POL_LOG(Info) << "never printed " << expensive();
  EXPECT_EQ(evaluations, 0);
  POL_LOG(Error) << "printed once " << expensive();
  EXPECT_EQ(evaluations, 1);
  SetMinLogLevel(original);
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(POL_LOG(Fatal) << "fatal message", "fatal message");
}

TEST(LoggingTest, ParseLogLevelName) {
  EXPECT_EQ(ParseLogLevelName("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevelName("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevelName("Warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevelName("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevelName("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevelName("fatal"), LogLevel::kFatal);
  EXPECT_EQ(ParseLogLevelName("0"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevelName("3"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevelName(""), std::nullopt);
  EXPECT_EQ(ParseLogLevelName("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevelName("7"), std::nullopt);
}

TEST(LoggingTest, PluggableSinkCapturesLines) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kInfo);
  std::vector<std::pair<LogLevel, std::string>> captured;
  LogSink previous = SetLogSink(
      [&captured](LogLevel level, std::string_view line) {
        captured.emplace_back(level, std::string(line));
      });
  POL_LOG(Info) << "hello " << 42;
  POL_LOG(Warning) << "careful";
  POL_LOG(Debug) << "filtered before the sink";
  SetLogSink(std::move(previous));  // Restore (stderr by default).
  SetMinLogLevel(original);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_NE(captured[0].second.find("hello 42"), std::string::npos);
  EXPECT_EQ(captured[1].first, LogLevel::kWarning);
  EXPECT_NE(captured[1].second.find("careful"), std::string::npos);
  // Lines carry the severity tag the default sink prints.
  EXPECT_NE(captured[1].second.find("W"), std::string::npos);
}

TEST(LoggingTest, SetLogSinkReturnsPrevious) {
  LogSink sink_a = [](LogLevel, std::string_view) {};
  LogSink previous = SetLogSink(sink_a);
  EXPECT_EQ(previous, nullptr);  // Default sink is the null stderr path.
  LogSink restored = SetLogSink(std::move(previous));
  EXPECT_NE(restored, nullptr);  // Got sink_a back.
  SetLogSink(nullptr);           // Leave the default in place.
}

TEST(LoggingTest, InitLogLevelFromEnvApplies) {
  const LogLevel original = MinLogLevel();
  ASSERT_EQ(setenv("POL_LOG_LEVEL", "error", /*overwrite=*/1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  ASSERT_EQ(setenv("POL_LOG_LEVEL", "1", /*overwrite=*/1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(MinLogLevel(), LogLevel::kInfo);
  // Unparseable values leave the level untouched.
  ASSERT_EQ(setenv("POL_LOG_LEVEL", "bogus", /*overwrite=*/1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(MinLogLevel(), LogLevel::kInfo);
  ASSERT_EQ(unsetenv("POL_LOG_LEVEL"), 0);
  SetMinLogLevel(original);
}

}  // namespace
}  // namespace pol
