#include "common/failpoint.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"

namespace pol {
namespace {

class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Global().Reset(); }
  void TearDown() override { FailPointRegistry::Global().Reset(); }
};

TEST_F(FailPointTest, UnarmedEvaluatesOkAndCounts) {
  FailPointRegistry& registry = FailPointRegistry::Global();
  EXPECT_EQ(registry.HitCount("never.seen"), 0u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(registry.Evaluate("quiet.site").ok());
  }
  EXPECT_EQ(registry.HitCount("quiet.site"), 3u);
}

TEST_F(FailPointTest, ArmedFiresWithDefaultSpec) {
  FailPointRegistry& registry = FailPointRegistry::Global();
  registry.Arm("always.fires");
  const Status s = registry.Evaluate("always.fires");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("always.fires"), std::string::npos);
  // Fires on every subsequent hit too.
  EXPECT_FALSE(registry.Evaluate("always.fires").ok());
}

TEST_F(FailPointTest, WindowFiresExactlyInRange) {
  FailPointRegistry& registry = FailPointRegistry::Global();
  FailPointSpec spec;
  spec.fire_from = 2;
  spec.fire_count = 2;
  registry.Arm("windowed", spec);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(!registry.Evaluate("windowed").ok());
  }
  const std::vector<bool> expected = {false, false, true, true, false, false};
  EXPECT_EQ(fired, expected);
}

TEST_F(FailPointTest, CustomCodeAndMessage) {
  FailPointRegistry& registry = FailPointRegistry::Global();
  FailPointSpec spec;
  spec.code = StatusCode::kIoError;
  spec.message = "disk on fire";
  registry.Arm("io.site", spec);
  const Status s = registry.Evaluate("io.site");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
}

TEST_F(FailPointTest, SeededCoinIsDeterministic) {
  FailPointRegistry& registry = FailPointRegistry::Global();
  FailPointSpec spec;
  spec.probability = 0.5;
  spec.seed = 1234;

  const auto run_pattern = [&](int hits) {
    std::vector<bool> pattern;
    registry.Reset();
    registry.Arm("coin", spec);
    for (int i = 0; i < hits; ++i) {
      pattern.push_back(!registry.Evaluate("coin").ok());
    }
    return pattern;
  };
  const std::vector<bool> first = run_pattern(64);
  const std::vector<bool> second = run_pattern(64);
  EXPECT_EQ(first, second) << "same seed must replay the same schedule";

  // A fair-ish coin at 64 flips fires at least once and spares at
  // least once.
  bool any_fired = false;
  bool any_spared = false;
  for (const bool b : first) (b ? any_fired : any_spared) = true;
  EXPECT_TRUE(any_fired);
  EXPECT_TRUE(any_spared);

  // A different seed gives a different schedule (overwhelmingly).
  FailPointSpec other = spec;
  other.seed = 99;
  registry.Reset();
  registry.Arm("coin", other);
  std::vector<bool> third;
  for (int i = 0; i < 64; ++i) {
    third.push_back(!registry.Evaluate("coin").ok());
  }
  EXPECT_NE(first, third);
}

TEST_F(FailPointTest, ZeroProbabilityNeverFires) {
  FailPointRegistry& registry = FailPointRegistry::Global();
  FailPointSpec spec;
  spec.probability = 0.0;
  registry.Arm("never", spec);
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(registry.Evaluate("never").ok());
  }
}

TEST_F(FailPointTest, DisarmStopsFiringButKeepsCounting) {
  FailPointRegistry& registry = FailPointRegistry::Global();
  registry.Arm("temporary");
  EXPECT_FALSE(registry.Evaluate("temporary").ok());
  registry.Disarm("temporary");
  EXPECT_TRUE(registry.Evaluate("temporary").ok());
  EXPECT_EQ(registry.HitCount("temporary"), 2u);
}

TEST_F(FailPointTest, DisarmAllAndKnownPoints) {
  FailPointRegistry& registry = FailPointRegistry::Global();
  registry.Arm("b.point");
  registry.Arm("a.point");
  EXPECT_TRUE(registry.Evaluate("c.point").ok());
  registry.DisarmAll();
  EXPECT_TRUE(registry.Evaluate("a.point").ok());
  EXPECT_TRUE(registry.Evaluate("b.point").ok());
  const std::vector<std::string> known = registry.KnownPoints();
  EXPECT_EQ(known, (std::vector<std::string>{"a.point", "b.point",
                                             "c.point"}));
}

TEST_F(FailPointTest, ResetClearsHitCounters) {
  FailPointRegistry& registry = FailPointRegistry::Global();
  EXPECT_TRUE(registry.Evaluate("counted").ok());
  EXPECT_EQ(registry.HitCount("counted"), 1u);
  registry.Reset();
  EXPECT_EQ(registry.HitCount("counted"), 0u);
  EXPECT_TRUE(registry.KnownPoints().empty());
}

TEST_F(FailPointTest, MacroCompilesToNoOpWithoutFailpointsBuild) {
  FailPointRegistry& registry = FailPointRegistry::Global();
  registry.Arm("macro.site");
  const Status s = POL_FAILPOINT("macro.site");
#if defined(POL_FAILPOINTS)
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(registry.HitCount("macro.site"), 1u);
#else
  // The no-op form neither fires nor counts — the site name is not
  // even evaluated.
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(registry.HitCount("macro.site"), 0u);
#endif
}

}  // namespace
}  // namespace pol
