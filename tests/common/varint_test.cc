#include "common/varint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace pol {
namespace {

TEST(VarintTest, SmallValuesAreOneByte) {
  for (uint64_t v : {0ull, 1ull, 42ull, 127ull}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), 1u) << v;
    std::string_view in(buf);
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(&in, &decoded).ok());
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(VarintTest, BoundaryValuesRoundTrip) {
  const std::vector<uint64_t> values = {
      0,       127,        128,         16383,
      16384,   2097151,    2097152,     (1ull << 32) - 1,
      1ull << 32, (1ull << 56) + 3, std::numeric_limits<uint64_t>::max()};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  std::string_view in(buf);
  for (uint64_t v : values) {
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(&in, &decoded).ok());
    EXPECT_EQ(decoded, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(VarintTest, MaxValueIsTenBytes) {
  std::string buf;
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(buf.size(), 10u);
}

TEST(VarintTest, TruncatedInputIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.pop_back();
  std::string_view in(buf);
  uint64_t decoded = 0;
  EXPECT_EQ(GetVarint64(&in, &decoded).code(), StatusCode::kCorruption);
}

TEST(VarintTest, OverlongInputIsCorruption) {
  // Eleven continuation bytes can never be a valid 64-bit varint.
  std::string buf(11, static_cast<char>(0x80));
  std::string_view in(buf);
  uint64_t decoded = 0;
  EXPECT_EQ(GetVarint64(&in, &decoded).code(), StatusCode::kCorruption);
}

TEST(VarintTest, SignedZigZagRoundTrip) {
  const std::vector<int64_t> values = {0,
                                       -1,
                                       1,
                                       -64,
                                       63,
                                       -65,
                                       1000000,
                                       -1000000,
                                       std::numeric_limits<int64_t>::min(),
                                       std::numeric_limits<int64_t>::max()};
  std::string buf;
  for (int64_t v : values) PutVarintSigned64(&buf, v);
  std::string_view in(buf);
  for (int64_t v : values) {
    int64_t decoded = 0;
    ASSERT_TRUE(GetVarintSigned64(&in, &decoded).ok());
    EXPECT_EQ(decoded, v);
  }
}

TEST(VarintTest, ZigZagKeepsSmallMagnitudesShort) {
  std::string buf;
  PutVarintSigned64(&buf, -3);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(VarintTest, RandomRoundTrip) {
  Rng rng(20240325);
  std::string buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Bias toward small values by masking with a random width.
    const int width = static_cast<int>(rng.NextBelow(64)) + 1;
    const uint64_t v =
        rng.NextUint64() & (width == 64 ? ~0ull : ((1ull << width) - 1));
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  std::string_view in(buf);
  for (uint64_t v : values) {
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(&in, &decoded).ok());
    EXPECT_EQ(decoded, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(DoubleCodecTest, RoundTripIncludingSpecials) {
  const std::vector<double> values = {0.0,  -0.0, 1.5,   -273.15, 1e308,
                                      5e-324, std::numeric_limits<double>::infinity()};
  std::string buf;
  for (double v : values) PutDouble(&buf, v);
  std::string_view in(buf);
  for (double v : values) {
    double decoded = 0;
    ASSERT_TRUE(GetDouble(&in, &decoded).ok());
    EXPECT_EQ(decoded, v);
  }
}

TEST(DoubleCodecTest, TruncatedIsCorruption) {
  std::string buf;
  PutDouble(&buf, 3.14);
  buf.pop_back();
  std::string_view in(buf);
  double d = 0;
  EXPECT_EQ(GetDouble(&in, &d).code(), StatusCode::kCorruption);
}

TEST(LengthPrefixedTest, RoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  std::string_view in(buf);
  std::string_view v;
  ASSERT_TRUE(GetLengthPrefixed(&in, &v).ok());
  EXPECT_EQ(v, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&in, &v).ok());
  EXPECT_EQ(v, "");
  ASSERT_TRUE(GetLengthPrefixed(&in, &v).ok());
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_TRUE(in.empty());
}

TEST(LengthPrefixedTest, TruncatedBodyIsCorruption) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  buf.resize(buf.size() - 2);
  std::string_view in(buf);
  std::string_view v;
  EXPECT_EQ(GetLengthPrefixed(&in, &v).code(), StatusCode::kCorruption);
}

TEST(ZigZagTest, EncodingIsCompactOrdering) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  for (int64_t v : {-5, 17, -100000, 123456789}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

}  // namespace
}  // namespace pol
