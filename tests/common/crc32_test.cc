#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace pol {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32 (IEEE) test vectors.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("a"), 0xe8b7be43u);
  EXPECT_EQ(Crc32("abc"), 0x352441c2u);
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414fa339u);
}

TEST(Crc32Test, SeedChainsIncrementally) {
  const std::string data = "patterns of life";
  const uint32_t whole = Crc32(data);
  const uint32_t part1 = Crc32(data.substr(0, 8));
  const uint32_t chained = Crc32(data.substr(8), part1);
  EXPECT_EQ(whole, chained);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(256, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  const uint32_t original = Crc32(data);
  for (size_t byte : {size_t{0}, size_t{100}, data.size() - 1}) {
    std::string corrupted = data;
    corrupted[byte] = static_cast<char>(corrupted[byte] ^ 0x01);
    EXPECT_NE(Crc32(corrupted), original) << "flip at byte " << byte;
  }
}

TEST(Crc32Test, ChainingAgreesAtEverySplit) {
  // Every split point makes the continuation start at a different
  // word-path phase, so the sliced fast path and the bytewise tail must
  // agree with each other and with the one-shot CRC.
  std::string data(100, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 37 + 11);
  }
  const uint32_t whole = Crc32(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t head = Crc32(data.substr(0, split));
    EXPECT_EQ(Crc32(data.substr(split), head), whole) << "split " << split;
  }
}

TEST(Crc32Test, BinaryDataWithEmbeddedNulls) {
  const std::string a{"ab\0cd", 5};
  const std::string b{"ab\0ce", 5};
  EXPECT_NE(Crc32(a), Crc32(b));
}

}  // namespace
}  // namespace pol
