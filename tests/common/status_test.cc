#include "common/status.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace pol {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("latitude out of range");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "latitude out of range");
  EXPECT_EQ(s.ToString(), "InvalidArgument: latitude out of range");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, RetryabilitySplitsTransientFromCallerErrors) {
  // Transient store/environment faults — the stage retry loop and the
  // serving circuit breaker may try again.
  EXPECT_TRUE(Status::Corruption("x").IsRetryable());
  EXPECT_TRUE(Status::IoError("x").IsRetryable());
  EXPECT_TRUE(Status::Internal("x").IsRetryable());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  // Caller and contract errors — retrying cannot change the outcome.
  EXPECT_FALSE(Status().IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::OutOfRange("x").IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::AlreadyExists("x").IsRetryable());
  EXPECT_FALSE(Status::FailedPrecondition("x").IsRetryable());
  EXPECT_FALSE(Status::Unimplemented("x").IsRetryable());
  EXPECT_FALSE(Status::DeadlineExceeded("x").IsRetryable());
  // Durable bytes failed validation: retrying the same read returns the
  // same bytes. Recovery is falling back to another generation, which
  // the snapshot store does itself — not a retry loop's business.
  EXPECT_FALSE(Status::DataLoss("x").IsRetryable());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

TEST(StatusTest, CodeNameRoundTripsThroughFromName) {
  const std::vector<StatusCode> codes = {
      StatusCode::kOk,            StatusCode::kInvalidArgument,
      StatusCode::kOutOfRange,    StatusCode::kNotFound,
      StatusCode::kAlreadyExists, StatusCode::kCorruption,
      StatusCode::kIoError,       StatusCode::kFailedPrecondition,
      StatusCode::kUnimplemented, StatusCode::kInternal,
      StatusCode::kDeadlineExceeded, StatusCode::kResourceExhausted,
      StatusCode::kUnavailable,      StatusCode::kDataLoss,
  };
  for (const StatusCode code : codes) {
    const auto parsed = StatusCodeFromName(StatusCodeName(code));
    ASSERT_TRUE(parsed.has_value()) << StatusCodeName(code);
    EXPECT_EQ(*parsed, code) << StatusCodeName(code);
  }
}

TEST(StatusTest, FromNameRejectsUnknownNames) {
  EXPECT_FALSE(StatusCodeFromName("Bogus").has_value());
  EXPECT_FALSE(StatusCodeFromName("").has_value());
  EXPECT_FALSE(StatusCodeFromName("ok").has_value());  // Case-sensitive.
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  POL_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_EQ(Caller(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusConstructionIsInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValueMovesThrough) {
  // Result must carry move-only payloads: construct, access by
  // reference, and extract via the && overload without copies.
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 9);
  std::unique_ptr<int> extracted = std::move(r).value();
  ASSERT_NE(extracted, nullptr);
  EXPECT_EQ(*extracted, 9);
}

TEST(ResultTest, RvalueValueMovesNotCopies) {
  Result<std::string> r(std::string(64, 'x'));
  ASSERT_TRUE(r.ok());
  const char* before = r.value().data();
  const std::string moved = std::move(r).value();
  // The buffer migrated instead of being copied (64 chars is beyond any
  // SSO, so an equal data pointer proves a move).
  EXPECT_EQ(moved.data(), before);
  EXPECT_EQ(moved, std::string(64, 'x'));
}

TEST(ResultTest, ResultItselfIsMovable) {
  Result<std::string> source(std::string("payload"));
  Result<std::string> moved = std::move(source);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, "payload");

  Result<std::string> errored(Status::NotFound("gone"));
  Result<std::string> moved_error = std::move(errored);
  ASSERT_FALSE(moved_error.ok());
  EXPECT_EQ(moved_error.status().code(), StatusCode::kNotFound);
}

#if !defined(NDEBUG) && GTEST_HAS_DEATH_TEST
TEST(ResultDeathTest, AccessingErroredResultAborts) {
  EXPECT_DEATH(
      {
        Result<int> r = ParsePositive(-1);
        [[maybe_unused]] const int v = r.value();
      },
      "errored Result");
  EXPECT_DEATH(
      {
        Result<int> r = ParsePositive(-1);
        [[maybe_unused]] const int v = *r;
      },
      "errored Result");
}
#endif

Result<int> Doubled(int x) {
  POL_ASSIGN_OR_RETURN(const int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturn) {
  ASSERT_TRUE(Doubled(21).ok());
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(0).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace pol
