#include "common/check.h"

#include <gtest/gtest.h>

namespace pol {
namespace {

TEST(CheckTest, PassesOnTrueCondition) {
  POL_CHECK(1 + 1 == 2) << "arithmetic holds";
  SUCCEED();
}

TEST(CheckTest, StreamedContextNotEvaluatedOnSuccess) {
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return 42;
  };
  POL_CHECK(true) << "unused " << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckDeathTest, AbortsOnFalseCondition) {
  EXPECT_DEATH(POL_CHECK(false) << "boom", "Check failed: false");
}

TEST(CheckTest, DcheckPassesOnTrueCondition) {
  POL_DCHECK(2 * 2 == 4) << "still holds";
  SUCCEED();
}

#ifdef NDEBUG
TEST(CheckTest, DcheckConditionNotEvaluatedInReleaseBuilds) {
  int evaluations = 0;
  auto probe = [&evaluations]() {
    ++evaluations;
    return false;
  };
  POL_DCHECK(probe()) << "compiled out";
  EXPECT_EQ(evaluations, 0);
}
#else
TEST(CheckDeathTest, DcheckAbortsOnFalseConditionInDebugBuilds) {
  EXPECT_DEATH(POL_DCHECK(false) << "boom", "Check failed");
}
#endif

}  // namespace
}  // namespace pol
