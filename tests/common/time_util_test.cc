#include "common/time_util.h"

#include <gtest/gtest.h>

namespace pol {
namespace {

TEST(TimeUtilTest, EpochIsZero) {
  EXPECT_EQ(UnixFromUtc(1970, 1, 1), 0);
}

TEST(TimeUtilTest, KnownTimestamps) {
  EXPECT_EQ(UnixFromUtc(2022, 1, 1), 1640995200);
  EXPECT_EQ(UnixFromUtc(2022, 12, 31, 23, 59, 59), 1672531199);
  EXPECT_EQ(UnixFromUtc(2000, 3, 1), 951868800);
}

TEST(TimeUtilTest, LeapYearFebruary29) {
  const UnixSeconds feb28 = UnixFromUtc(2020, 2, 28);
  const UnixSeconds feb29 = UnixFromUtc(2020, 2, 29);
  const UnixSeconds mar01 = UnixFromUtc(2020, 3, 1);
  EXPECT_EQ(feb29 - feb28, kSecondsPerDay);
  EXPECT_EQ(mar01 - feb29, kSecondsPerDay);
}

TEST(TimeUtilTest, NonLeapCenturyYear) {
  // 1900 was not a leap year; 2000 was.
  EXPECT_EQ(UnixFromUtc(1900, 3, 1) - UnixFromUtc(1900, 2, 28),
            kSecondsPerDay);
  EXPECT_EQ(UnixFromUtc(2000, 3, 1) - UnixFromUtc(2000, 2, 28),
            2 * kSecondsPerDay);
}

TEST(TimeUtilTest, FormatRoundTripsKnownDate) {
  EXPECT_EQ(FormatUnixSeconds(UnixFromUtc(2022, 7, 15, 12, 34, 56)),
            "2022-07-15 12:34:56");
  EXPECT_EQ(FormatUnixSeconds(0), "1970-01-01 00:00:00");
}

TEST(TimeUtilTest, FormatConsistentWithConstruction) {
  // Sweep a year of days: format(construct(d)) must show day d.
  for (int day_offset = 0; day_offset < 365; day_offset += 13) {
    const UnixSeconds t = UnixFromUtc(2022, 1, 1) + day_offset * kSecondsPerDay;
    const std::string formatted = FormatUnixSeconds(t);
    const int year = std::stoi(formatted.substr(0, 4));
    const int month = std::stoi(formatted.substr(5, 2));
    const int day = std::stoi(formatted.substr(8, 2));
    EXPECT_EQ(UnixFromUtc(year, month, day), t) << formatted;
  }
}

TEST(TimeUtilTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(25 * 60 + 10), "25m 10s");
  EXPECT_EQ(FormatDuration(4 * 3600 + 25 * 60), "04h 25m");
  EXPECT_EQ(FormatDuration(3 * 86400 + 4 * 3600 + 25 * 60), "3d 04h 25m");
  EXPECT_EQ(FormatDuration(0), "00m 00s");
}

TEST(TimeUtilTest, FormatDurationNegative) {
  EXPECT_EQ(FormatDuration(-90), "-01m 30s");
}

TEST(TimeUtilTest, ClampsBadCalendarInputs) {
  // Day 32 of January clamps to January 31.
  EXPECT_EQ(UnixFromUtc(2022, 1, 32), UnixFromUtc(2022, 1, 31));
  EXPECT_EQ(UnixFromUtc(2022, 13, 1), UnixFromUtc(2022, 12, 1));
  EXPECT_EQ(UnixFromUtc(2022, 0, 1), UnixFromUtc(2022, 1, 1));
}

}  // namespace
}  // namespace pol
