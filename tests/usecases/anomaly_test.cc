#include "usecases/anomaly.h"

#include <gtest/gtest.h>

#include "core/inventory.h"
#include "hexgrid/hexgrid.h"

namespace pol::uc {
namespace {

const geo::LatLng kLaneCenter{50.2, -0.9};  // English Channel.

// A hand-built inventory: one busy lane cell with eastbound ~14 kn
// traffic of containers.
core::Inventory LaneInventory() {
  const hex::CellIndex cell = hex::LatLngToCell(kLaneCenter, 6);
  core::SummaryMap summaries;
  core::CellSummary all;
  core::CellSummary containers;
  for (int i = 0; i < 200; ++i) {
    core::PipelineRecord r;
    r.mmsi = 215000001 + (i % 9);
    r.trip_id = 1 + (i % 20);
    r.segment = ais::MarketSegment::kContainer;
    r.sog_knots = 14.0 + (i % 5) * 0.3;
    r.cog_deg = 78.0 + (i % 7) * 0.5;
    r.heading_deg = r.cog_deg;
    r.eto_s = 3600;
    r.ata_s = 7200;
    all.Add(r);
    containers.Add(r);
  }
  summaries.emplace(core::KeyCell(cell), std::move(all));
  summaries.emplace(
      core::KeyCellType(cell, ais::MarketSegment::kContainer),
      std::move(containers));
  return core::Inventory(6, std::move(summaries));
}

TEST(AnomalyTest, NormalTrafficScoresZero) {
  const core::Inventory inv = LaneInventory();
  const AnomalyDetector detector(&inv);
  const auto assessment = detector.Assess(
      kLaneCenter, 14.5, 79.0, ais::MarketSegment::kContainer);
  EXPECT_EQ(assessment.score, 0);
  EXPECT_FALSE(assessment.off_lane);
  EXPECT_FALSE(assessment.speed_anomaly);
  EXPECT_FALSE(assessment.course_anomaly);
  EXPECT_GT(assessment.cell_support, 100u);
}

TEST(AnomalyTest, OffLanePositionFlagged) {
  const core::Inventory inv = LaneInventory();
  const AnomalyDetector detector(&inv);
  // Mid-Atlantic: no history at all.
  const auto assessment = detector.Assess({45.0, -35.0}, 14.0, 80.0,
                                          ais::MarketSegment::kContainer);
  EXPECT_TRUE(assessment.off_lane);
  EXPECT_EQ(assessment.score, 1);
  EXPECT_EQ(assessment.cell_support, 0u);
}

TEST(AnomalyTest, ThinHistoryCountsAsOffLane) {
  const hex::CellIndex cell = hex::LatLngToCell(kLaneCenter, 6);
  core::SummaryMap summaries;
  core::CellSummary sparse;
  core::PipelineRecord r;
  r.mmsi = 215000001;
  r.sog_knots = 10;
  r.cog_deg = 80;
  sparse.Add(r);
  summaries.emplace(core::KeyCell(cell), std::move(sparse));
  const core::Inventory inv(6, std::move(summaries));
  const AnomalyDetector detector(&inv);
  const auto assessment = detector.Assess(kLaneCenter, 10.0, 80.0,
                                          ais::MarketSegment::kContainer);
  EXPECT_TRUE(assessment.off_lane);
}

TEST(AnomalyTest, SpeedOutlierFlagged) {
  const core::Inventory inv = LaneInventory();
  const AnomalyDetector detector(&inv);
  // Lane mean ~14.6 kn, std well under 1 kn: 3 kn is wildly slow.
  const auto slow = detector.Assess(kLaneCenter, 3.0, 79.0,
                                    ais::MarketSegment::kContainer);
  EXPECT_TRUE(slow.speed_anomaly);
  EXPECT_GT(slow.speed_z, 3.0);
  const auto fast = detector.Assess(kLaneCenter, 28.0, 79.0,
                                    ais::MarketSegment::kContainer);
  EXPECT_TRUE(fast.speed_anomaly);
}

TEST(AnomalyTest, CourseAgainstTheLaneFlagged) {
  const core::Inventory inv = LaneInventory();
  const AnomalyDetector detector(&inv);
  // The lane runs ~ENE (78-81 deg); sailing the reciprocal is anomalous.
  const auto counter = detector.Assess(kLaneCenter, 14.5, 260.0,
                                       ais::MarketSegment::kContainer);
  EXPECT_TRUE(counter.course_anomaly);
  EXPECT_GT(counter.course_deviation_deg, 150.0);
  EXPECT_EQ(counter.score, 1);
}

TEST(AnomalyTest, UnavailableFieldsSkipChecks) {
  const core::Inventory inv = LaneInventory();
  const AnomalyDetector detector(&inv);
  const auto assessment =
      detector.Assess(kLaneCenter, ais::kSogUnavailable,
                      ais::kCogUnavailable, ais::MarketSegment::kContainer);
  EXPECT_EQ(assessment.score, 0);
}

TEST(AnomalyTest, CombinedSignalsAccumulate) {
  const core::Inventory inv = LaneInventory();
  const AnomalyDetector detector(&inv);
  const auto assessment = detector.Assess(kLaneCenter, 35.0, 260.0,
                                          ais::MarketSegment::kContainer);
  EXPECT_EQ(assessment.score, 2);  // Speed + course.
}

TEST(AnomalyTest, FallsBackToAllTrafficSummary) {
  const core::Inventory inv = LaneInventory();
  const AnomalyDetector detector(&inv);
  // No tanker-specific summary exists; the all-traffic one answers.
  const auto assessment = detector.Assess(kLaneCenter, 14.5, 79.0,
                                          ais::MarketSegment::kTanker);
  EXPECT_FALSE(assessment.off_lane);
  EXPECT_EQ(assessment.score, 0);
}

}  // namespace
}  // namespace pol::uc
