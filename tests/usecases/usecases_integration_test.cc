// Integration tests of the section-4.1 use cases against a simulated
// fleet with known ground truth.

#include <gtest/gtest.h>

#include <map>

#include "core/pipeline.h"
#include "geo/geodesic.h"
#include "hexgrid/hexgrid.h"
#include "sim/fleet.h"
#include "usecases/anomaly.h"
#include "usecases/destination.h"
#include "usecases/eta.h"
#include "usecases/route_forecast.h"

namespace pol::uc {
namespace {

class UseCaseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::FleetConfig config;
    config.seed = 404;
    config.commercial_vessels = 25;
    config.noncommercial_vessels = 0;
    config.start_time = 1640995200;
    config.end_time = config.start_time + 90 * kSecondsPerDay;
    config.coastal_interval_s = 300;
    config.ocean_interval_s = 1200;
    // Clean data: these tests target the use cases, not the cleaner.
    config.corrupt_field_rate = 0.0;
    config.duplicate_rate = 0.0;
    config.position_jump_rate = 0.0;
    config.late_delivery_rate = 0.0;
    output_ = new sim::SimulationOutput(sim::FleetSimulator(config).Run());

    core::PipelineConfig pipeline_config;
    pipeline_config.partitions = 4;
    pipeline_config.threads = 2;
    pipeline_config.resolution = 6;
    result_ = new core::PipelineResult(
        core::RunPipeline(output_->reports, output_->fleet, pipeline_config));
  }

  static void TearDownTestSuite() {
    delete result_;
    delete output_;
    result_ = nullptr;
    output_ = nullptr;
  }

  static ais::MarketSegment SegmentOf(ais::Mmsi mmsi) {
    for (const auto& vessel : output_->fleet) {
      if (vessel.mmsi == mmsi) return vessel.segment;
    }
    return ais::MarketSegment::kOther;
  }

  // Reports of one voyage, time-ordered.
  static std::vector<ais::PositionReport> VoyageReports(
      const sim::VoyageTruth& voyage) {
    std::vector<ais::PositionReport> reports;
    for (const auto& report : output_->reports) {
      if (report.mmsi == voyage.mmsi &&
          report.timestamp >= voyage.departure &&
          report.timestamp <= voyage.arrival) {
        reports.push_back(report);
      }
    }
    return reports;
  }

  // A long completed voyage with plenty of reports.
  static const sim::VoyageTruth* LongVoyage(double min_km) {
    const sim::VoyageTruth* best = nullptr;
    for (const auto& voyage : output_->voyages) {
      if (voyage.distance_km < min_km) continue;
      if (VoyageReports(voyage).size() < 50) continue;
      if (best == nullptr || voyage.distance_km > best->distance_km) {
        best = &voyage;
      }
    }
    return best;
  }

  static sim::SimulationOutput* output_;
  static core::PipelineResult* result_;
};

sim::SimulationOutput* UseCaseTest::output_ = nullptr;
core::PipelineResult* UseCaseTest::result_ = nullptr;

TEST_F(UseCaseTest, EtaEstimatesExistAlongVoyages) {
  const EtaEstimator estimator(result_->inventory.get());
  const sim::VoyageTruth* voyage = LongVoyage(2000);
  ASSERT_NE(voyage, nullptr);
  const auto reports = VoyageReports(*voyage);
  int answered = 0;
  for (size_t i = 0; i < reports.size(); i += 5) {
    const auto estimate = estimator.Estimate(
        {reports[i].lat_deg, reports[i].lng_deg}, SegmentOf(voyage->mmsi),
        voyage->origin, voyage->destination);
    if (!estimate.ok()) continue;
    ++answered;
    EXPECT_GE(estimate->seconds, 0.0);
    EXPECT_LE(estimate->p10_seconds, estimate->p90_seconds + 1e-6);
  }
  // The vessel sailed this exact route in the training data, so most of
  // its track must have history.
  EXPECT_GE(answered, static_cast<int>(reports.size() / 5 / 2));
}

TEST_F(UseCaseTest, EtaErrorIsBoundedAndShrinks) {
  // Median relative ETA error over sampled voyage positions, early vs
  // late in the voyage: late estimates must be tighter in absolute
  // terms, and overall the estimator must beat a wild guess.
  const EtaEstimator estimator(result_->inventory.get());
  std::vector<double> early_errors;
  std::vector<double> late_errors;
  for (const auto& voyage : output_->voyages) {
    if (voyage.distance_km < 1500) continue;
    const auto reports = VoyageReports(voyage);
    if (reports.size() < 40) continue;
    const double duration =
        static_cast<double>(voyage.arrival - voyage.departure);
    for (const double fraction : {0.2, 0.85}) {
      const auto& report =
          reports[static_cast<size_t>(fraction *
                                      static_cast<double>(reports.size() - 1))];
      const auto estimate = estimator.Estimate(
          {report.lat_deg, report.lng_deg}, SegmentOf(voyage.mmsi),
          voyage.origin, voyage.destination);
      if (!estimate.ok()) continue;
      const double truth =
          static_cast<double>(voyage.arrival - report.timestamp);
      const double abs_error = std::fabs(estimate->seconds - truth);
      (fraction < 0.5 ? early_errors : late_errors)
          .push_back(abs_error / duration);
    }
  }
  ASSERT_GT(early_errors.size(), 5u);
  ASSERT_GT(late_errors.size(), 5u);
  auto median = [](std::vector<double> values) {
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
  };
  const double early = median(early_errors);
  const double late = median(late_errors);
  // Historical ATA at a cell is a usable baseline even at this reduced
  // training scale, and must tighten as the voyage progresses (the
  // full-scale curve is produced by the ETA bench).
  EXPECT_LT(early, 0.6);
  EXPECT_LT(late, 0.3);
  EXPECT_LT(late, early + 0.05);
}

TEST_F(UseCaseTest, DestinationPredictionConvergesAlongVoyage) {
  int correct_late = 0;
  int evaluated = 0;
  for (const auto& voyage : output_->voyages) {
    if (voyage.distance_km < 1500) continue;
    const auto reports = VoyageReports(voyage);
    if (reports.size() < 40) continue;
    DestinationPredictor predictor(result_->inventory.get());
    // Feed the first 80% of the voyage.
    for (size_t i = 0; i < reports.size() * 8 / 10; ++i) {
      predictor.Observe({reports[i].lat_deg, reports[i].lng_deg},
                        SegmentOf(voyage.mmsi));
    }
    ++evaluated;
    // The truth should at least rank among the top guesses.
    const auto ranking = predictor.Ranking(3);
    for (const auto& guess : ranking) {
      if (guess.port == voyage.destination) {
        ++correct_late;
        break;
      }
    }
    if (evaluated >= 20) break;
  }
  ASSERT_GT(evaluated, 5);
  // Shared lanes cap attainable accuracy; well above chance (~1/140) is
  // what the paper's "touching only the surface" baseline promises.
  EXPECT_GT(correct_late * 2, evaluated);
}

TEST_F(UseCaseTest, RouteForecastFollowsCorridor) {
  const RouteForecaster forecaster(result_->inventory.get(),
                                   &sim::PortDatabase::Global());
  const EtaEstimator estimator(result_->inventory.get());
  int forecasts = 0;
  for (const auto& voyage : output_->voyages) {
    if (voyage.distance_km < 2000) continue;
    const auto reports = VoyageReports(voyage);
    if (reports.size() < 60) continue;
    const auto& mid = reports[reports.size() / 3];
    const auto forecast = forecaster.Forecast(
        {mid.lat_deg, mid.lng_deg}, voyage.origin, voyage.destination,
        SegmentOf(voyage.mmsi));
    if (!forecast.ok()) continue;
    ++forecasts;
    EXPECT_GE(forecast->cells.size(), 2u);
    EXPECT_GT(forecast->distance_km, 0.0);
    EXPECT_GT(forecast->graph_edges, 0u);
    // The forecast must end near the destination port.
    const sim::Port& dest =
        **sim::PortDatabase::Global().Find(voyage.destination);
    EXPECT_LT(geo::HaversineKm(hex::CellToLatLng(forecast->cells.back()),
                               dest.position),
              300.0);
    // And the path length must be in the ballpark of the remaining sea
    // distance (not a detour around the world).
    EXPECT_LT(forecast->distance_km, voyage.distance_km * 1.5);
    if (forecasts >= 5) break;
  }
  EXPECT_GT(forecasts, 0);
}

TEST_F(UseCaseTest, AnomalyDetectorSeparatesOnAndOffLane) {
  // At this reduced scale a lane cell holds only a handful of records,
  // so the "known lane" support threshold is lowered accordingly.
  AnomalyConfig config;
  config.min_support = 2;
  const AnomalyDetector detector(result_->inventory.get(), config);
  // On-lane: sample real reports; the bulk must score 0.
  int normal = 0;
  int sampled = 0;
  for (size_t i = 0; i < output_->reports.size(); i += 997) {
    const auto& report = output_->reports[i];
    const auto assessment =
        detector.Assess({report.lat_deg, report.lng_deg}, report.sog_knots,
                        report.cog_deg, SegmentOf(report.mmsi));
    ++sampled;
    if (assessment.score == 0) ++normal;
  }
  ASSERT_GT(sampled, 50);
  EXPECT_GT(static_cast<double>(normal), 0.4 * sampled);

  // Off-lane probes in empty ocean must all be flagged.
  for (const auto& p :
       {geo::LatLng{-45, -120}, geo::LatLng{60, -150}, geo::LatLng{-55, 80}}) {
    EXPECT_TRUE(
        detector.Assess(p, 14, 90, ais::MarketSegment::kContainer).off_lane);
  }
}

}  // namespace
}  // namespace pol::uc
