// Tests of the knowledge-extraction helpers: lane classification
// (section 4.1.1 / Figure 4 structures) and port congestion monitoring.

#include <gtest/gtest.h>

#include "core/cleaning.h"
#include "core/inventory.h"
#include "core/pipeline.h"
#include "sim/fleet.h"
#include "usecases/congestion.h"
#include "usecases/lane_analysis.h"

namespace pol::uc {
namespace {

core::PipelineRecord Obs(double sog, double cog) {
  core::PipelineRecord r;
  r.mmsi = 215000001;
  r.trip_id = 1;
  r.sog_knots = sog;
  r.cog_deg = cog;
  r.heading_deg = cog;
  return r;
}

core::CellSummary SummaryOf(const std::vector<core::PipelineRecord>& records) {
  core::CellSummary s;
  for (const auto& r : records) s.Add(r);
  return s;
}

TEST(LaneAnalyzerTest, ClassifiesSyntheticCells) {
  const core::Inventory empty(6, core::SummaryMap{});
  const LaneAnalyzer analyzer(&empty);

  // Sparse.
  EXPECT_EQ(analyzer.Classify(SummaryOf({Obs(12, 90)})), CellClass::kSparse);

  // Lane: forty observations, all ~ east.
  std::vector<core::PipelineRecord> lane;
  for (int i = 0; i < 40; ++i) lane.push_back(Obs(14, 88 + (i % 5)));
  EXPECT_EQ(analyzer.Classify(SummaryOf(lane)), CellClass::kLane);

  // Bidirectional: half east, half west.
  std::vector<core::PipelineRecord> bidir;
  for (int i = 0; i < 20; ++i) bidir.push_back(Obs(14, 75 + (i % 5)));
  for (int i = 0; i < 20; ++i) bidir.push_back(Obs(14, 255 + (i % 5)));
  EXPECT_EQ(analyzer.Classify(SummaryOf(bidir)), CellClass::kBidirectional);

  // Loitering: slow drifting, random courses.
  std::vector<core::PipelineRecord> drift;
  for (int i = 0; i < 40; ++i) drift.push_back(Obs(0.5, (i * 77) % 360));
  EXPECT_EQ(analyzer.Classify(SummaryOf(drift)), CellClass::kLoitering);

  // Mixed: fast traffic in many directions (port basin / junction).
  std::vector<core::PipelineRecord> mixed;
  for (int i = 0; i < 40; ++i) mixed.push_back(Obs(10, (i * 97) % 360));
  EXPECT_EQ(analyzer.Classify(SummaryOf(mixed)), CellClass::kMixed);
}

TEST(LaneAnalyzerTest, AnalyzeAllOverSimulatedTraffic) {
  sim::FleetConfig config;
  config.seed = 55;
  config.commercial_vessels = 20;
  config.noncommercial_vessels = 0;
  config.start_time = 1640995200;
  config.end_time = config.start_time + 60 * kSecondsPerDay;
  config.coastal_interval_s = 300;
  config.ocean_interval_s = 900;
  const sim::SimulationOutput archive = sim::FleetSimulator(config).Run();
  core::PipelineConfig pc;
  pc.resolution = 7;  // Fine enough to separate the offset lanes.
  pc.extractor.gi_cell_type = false;
  pc.extractor.gi_cell_route_type = false;
  const core::PipelineResult result =
      core::RunPipeline(archive.reports, archive.fleet, pc);

  LaneAnalysisConfig lane_config;
  lane_config.min_records = 10;
  const LaneAnalyzer analyzer(result.inventory.get(), lane_config);
  const LaneAnalysisReport report = analyzer.AnalyzeAll();
  EXPECT_GT(report.classified, 20u);
  // Simulated traffic has directional lanes and anchorage loitering.
  EXPECT_GT(report.cells_per_class.count(CellClass::kLane), 0u);
  EXPECT_GT(report.cells_per_class.at(CellClass::kLane), 0u);
  const auto loiter_it = report.cells_per_class.find(CellClass::kLoitering);
  ASSERT_NE(loiter_it, report.cells_per_class.end());
  EXPECT_GT(loiter_it->second, 0u);
  // CellsOfClass agrees with the report.
  EXPECT_EQ(analyzer.CellsOfClass(CellClass::kLane).size(),
            report.cells_per_class.at(CellClass::kLane));
}

TEST(CongestionTest, MeasuresStaysAndWaits) {
  sim::FleetConfig config;
  config.seed = 77;
  config.commercial_vessels = 15;
  config.noncommercial_vessels = 0;
  config.start_time = 1640995200;
  config.end_time = config.start_time + 60 * kSecondsPerDay;
  config.corrupt_field_rate = 0.0;
  config.position_jump_rate = 0.0;
  const sim::SimulationOutput archive = sim::FleetSimulator(config).Run();

  flow::ThreadPool pool(2);
  core::CleaningStats cleaning;
  const auto cleaned =
      core::CleanReports(archive.reports, {}, &pool, &cleaning);
  const core::Geofencer geofencer(&sim::PortDatabase::Global(), 6);
  const auto calls = core::ExtractPortCalls(cleaned, geofencer);
  ASSERT_FALSE(calls.empty());

  const auto activity = AnalyzePortActivity(
      calls, cleaned, sim::PortDatabase::Global());
  ASSERT_FALSE(activity.empty());
  // Sorted busiest-first; totals add up to the call table.
  uint64_t total_calls = 0;
  for (size_t i = 0; i < activity.size(); ++i) {
    total_calls += activity[i].calls;
    if (i > 0) EXPECT_LE(activity[i].calls, activity[i - 1].calls);
    EXPECT_GT(activity[i].mean_stay_hours, 0.0);
    EXPECT_GE(activity[i].p90_stay_hours, activity[i].mean_stay_hours * 0.3);
  }
  EXPECT_EQ(total_calls, calls.size());
  // The simulator sends ~35% of arrivals to anchorage first: some port
  // must show pre-berth waits with plausible durations (4-36 h).
  uint64_t total_waits = 0;
  double max_wait = 0;
  for (const auto& entry : activity) {
    total_waits += entry.waits;
    max_wait = std::max(max_wait, entry.mean_wait_hours);
  }
  EXPECT_GT(total_waits, 0u);
  EXPECT_GT(max_wait, 2.0);
  EXPECT_LT(max_wait, 48.0);
}

}  // namespace
}  // namespace pol::uc
