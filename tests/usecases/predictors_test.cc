// Unit tests of EtaEstimator, DestinationPredictor and RouteForecaster
// on small hand-built inventories (the integration suite covers the
// simulated end-to-end behaviour).

#include <gtest/gtest.h>

#include <vector>

#include "core/inventory.h"
#include "geo/geodesic.h"
#include "hexgrid/hexgrid.h"
#include "usecases/destination.h"
#include "usecases/eta.h"
#include "usecases/route_forecast.h"

namespace pol::uc {
namespace {

constexpr ais::MarketSegment kSeg = ais::MarketSegment::kContainer;

core::PipelineRecord Record(uint64_t trip, sim::PortId origin,
                            sim::PortId destination, int64_t ata_s,
                            sim::PortId vote_dest = sim::kNoPort) {
  core::PipelineRecord r;
  r.mmsi = 215000001;
  r.trip_id = trip;
  r.origin = origin;
  r.destination = vote_dest == sim::kNoPort ? destination : vote_dest;
  r.segment = kSeg;
  r.sog_knots = 14;
  r.cog_deg = 90;
  r.heading_deg = 90;
  r.eto_s = 1000;
  r.ata_s = ata_s;
  return r;
}

// --- EtaEstimator fallback chain. ---

TEST(EtaEstimatorTest, PrefersRouteSpecificSummary) {
  const hex::CellIndex cell = hex::LatLngToCell({10, 10}, 6);
  core::SummaryMap summaries;
  {
    core::CellSummary route;
    route.Add(Record(1, 3, 9, 5000));
    summaries.emplace(core::KeyCellRouteType(cell, 3, 9, kSeg),
                      std::move(route));
    core::CellSummary type;
    type.Add(Record(2, 4, 8, 90000));
    summaries.emplace(core::KeyCellType(cell, kSeg), std::move(type));
    core::CellSummary all;
    all.Add(Record(3, 4, 8, 70000));
    summaries.emplace(core::KeyCell(cell), std::move(all));
  }
  const core::Inventory inv(6, std::move(summaries));
  const EtaEstimator estimator(&inv);

  // With a declared route: the route-level answer (5000 s).
  const auto specific = estimator.Estimate({10, 10}, kSeg, 3, 9);
  ASSERT_TRUE(specific.ok());
  EXPECT_EQ(specific->grouping_set, 2);
  EXPECT_NEAR(specific->seconds, 5000, 1);

  // Unknown route: falls back to the per-type summary.
  const auto by_type = estimator.Estimate({10, 10}, kSeg, 5, 6);
  ASSERT_TRUE(by_type.ok());
  EXPECT_EQ(by_type->grouping_set, 1);
  EXPECT_NEAR(by_type->seconds, 90000, 1);

  // No route declared at all: same per-type fallback.
  const auto undeclared = estimator.Estimate({10, 10}, kSeg);
  ASSERT_TRUE(undeclared.ok());
  EXPECT_EQ(undeclared->grouping_set, 1);
}

TEST(EtaEstimatorTest, FallsBackToAllTrafficThenFails) {
  const hex::CellIndex cell = hex::LatLngToCell({10, 10}, 6);
  core::SummaryMap summaries;
  core::CellSummary all;
  all.Add(Record(3, 4, 8, 70000));
  summaries.emplace(core::KeyCell(cell), std::move(all));
  const core::Inventory inv(6, std::move(summaries));
  const EtaEstimator estimator(&inv);

  const auto fallback =
      estimator.Estimate({10, 10}, ais::MarketSegment::kTanker, 3, 9);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback->grouping_set, 0);

  const auto nothing = estimator.Estimate({50, 50}, kSeg);
  EXPECT_EQ(nothing.status().code(), StatusCode::kNotFound);
}

TEST(EtaEstimatorTest, PercentileBandIsOrdered) {
  const hex::CellIndex cell = hex::LatLngToCell({10, 10}, 6);
  core::SummaryMap summaries;
  core::CellSummary all;
  for (int i = 0; i < 100; ++i) all.Add(Record(1 + i, 3, 9, 1000 + i * 100));
  summaries.emplace(core::KeyCell(cell), std::move(all));
  const core::Inventory inv(6, std::move(summaries));
  const auto estimate = EtaEstimator(&inv).Estimate({10, 10}, kSeg);
  ASSERT_TRUE(estimate.ok());
  EXPECT_LT(estimate->p10_seconds, estimate->seconds);
  EXPECT_GT(estimate->p90_seconds, estimate->seconds);
  EXPECT_EQ(estimate->support, 100u);
}

TEST(EtaEstimatorTest, RejectsBadPosition) {
  const core::Inventory inv(6, core::SummaryMap{});
  EXPECT_FALSE(EtaEstimator(&inv).Estimate({95, 0}, kSeg).ok());
}

// --- DestinationPredictor voting. ---

core::Inventory VotingInventory(const std::vector<geo::LatLng>& track,
                                sim::PortId early_dest,
                                sim::PortId late_dest) {
  // First half of the track votes early_dest, second half late_dest.
  core::SummaryMap summaries;
  for (size_t i = 0; i < track.size(); ++i) {
    const hex::CellIndex cell = hex::LatLngToCell(track[i], 6);
    const sim::PortId dest = i < track.size() / 2 ? early_dest : late_dest;
    auto [it, inserted] =
        summaries.try_emplace(core::KeyCellType(cell, kSeg));
    (void)inserted;
    for (int k = 0; k < 5; ++k) {
      it->second.Add(Record(100 + i, 3, dest, 1000, dest));
    }
  }
  return core::Inventory(6, std::move(summaries));
}

TEST(DestinationPredictorTest, VotesFollowTheCorridor) {
  std::vector<geo::LatLng> track;
  for (int i = 0; i < 20; ++i) track.push_back({0.0, i * 0.4});
  const core::Inventory inv = VotingInventory(track, 7, 9);
  DestinationPredictor predictor(&inv, /*decay=*/0.8);
  // Feed the first half: leader is port 7.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(predictor.Observe(track[static_cast<size_t>(i)], kSeg));
  }
  EXPECT_EQ(predictor.Predict(), 7u);
  // Feed the second half: with decay the leader flips to port 9.
  for (int i = 10; i < 20; ++i) {
    predictor.Observe(track[static_cast<size_t>(i)], kSeg);
  }
  EXPECT_EQ(predictor.Predict(), 9u);
  const auto ranking = predictor.Ranking(2);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].port, 9u);
  EXPECT_GT(ranking[0].share, ranking[1].share);
  EXPECT_NEAR(ranking[0].share + ranking[1].share, 1.0, 1e-9);
}

TEST(DestinationPredictorTest, UninformativeCellsReturnFalse) {
  const core::Inventory inv(6, core::SummaryMap{});
  DestinationPredictor predictor(&inv);
  EXPECT_FALSE(predictor.Observe({0, 0}, kSeg));
  EXPECT_EQ(predictor.Predict(), sim::kNoPort);
  EXPECT_TRUE(predictor.Ranking().empty());
}

TEST(DestinationPredictorTest, ResetClearsState) {
  std::vector<geo::LatLng> track = {{0.0, 0.0}};
  const core::Inventory inv = VotingInventory(track, 7, 7);
  DestinationPredictor predictor(&inv);
  predictor.Observe(track[0], kSeg);
  EXPECT_EQ(predictor.Predict(), 7u);
  predictor.Reset();
  EXPECT_EQ(predictor.Predict(), sim::kNoPort);
}

// --- RouteForecaster on a synthetic corridor. ---

TEST(RouteForecasterTest, FollowsTransitionChain) {
  // A straight corridor of res-6 cells from (0, 0) eastward toward the
  // port of Tema (5.63N, 0.01E is in the table; use a synthetic port
  // database instead for full control).
  sim::Port dest;
  dest.name = "Target";
  dest.position = {0.0, 8.0};
  dest.geofence_radius_km = 10.0;
  const sim::PortDatabase ports({dest});

  // Cells every ~0.06 deg along the equator from lng 0 to 8.
  std::vector<hex::CellIndex> chain;
  for (double lng = 0.0; lng <= 8.0; lng += 0.06) {
    const hex::CellIndex cell = hex::LatLngToCell({0.0, lng}, 6);
    if (chain.empty() || chain.back() != cell) chain.push_back(cell);
  }
  ASSERT_GT(chain.size(), 50u);

  core::SummaryMap summaries;
  for (size_t i = 0; i < chain.size(); ++i) {
    core::PipelineRecord r = Record(1, 1, 1, 1000);
    r.origin = 1;
    r.destination = 1;
    if (i + 1 < chain.size()) r.next_cell = chain[i + 1];
    auto [it, inserted] = summaries.try_emplace(
        core::KeyCellRouteType(chain[i], 1, 1, kSeg));
    (void)inserted;
    it->second.Add(r);
  }
  const core::Inventory inv(6, std::move(summaries));
  const RouteForecaster forecaster(&inv, &ports);

  const auto forecast = forecaster.Forecast({0.0, 1.0}, 1, 1, kSeg);
  ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
  // The path must march monotonically east along the chain to the end.
  ASSERT_GE(forecast->cells.size(), 10u);
  EXPECT_EQ(forecast->cells.back(), chain.back());
  double prev_lng = -1.0;
  for (const hex::CellIndex cell : forecast->cells) {
    const double lng = hex::CellToLatLng(cell).lng_deg;
    EXPECT_GT(lng, prev_lng);
    prev_lng = lng;
  }
  EXPECT_NEAR(forecast->distance_km,
              geo::HaversineKm({0, 1}, {0, 8}), 150.0);
}

TEST(RouteForecasterTest, FailsOffCorridorAndUnknownRoute) {
  sim::Port dest;
  dest.name = "Target";
  dest.position = {0.0, 8.0};
  const sim::PortDatabase ports({dest});
  const core::Inventory inv(6, core::SummaryMap{});
  const RouteForecaster forecaster(&inv, &ports);
  EXPECT_EQ(forecaster.Forecast({0, 1}, 1, 1, kSeg).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(forecaster.Forecast({0, 1}, 1, 99, kSeg).ok());
}

TEST(RouteForecasterTest, DisconnectedGraphFails) {
  sim::Port dest;
  dest.name = "Target";
  dest.position = {0.0, 8.0};
  dest.geofence_radius_km = 10.0;
  const sim::PortDatabase ports({dest});
  // Two corridor cells with NO transitions: corridor exists, graph
  // cannot reach the goal.
  core::SummaryMap summaries;
  for (const double lng : {1.0, 8.0}) {
    auto [it, inserted] = summaries.try_emplace(core::KeyCellRouteType(
        hex::LatLngToCell({0.0, lng}, 6), 1, 1, kSeg));
    (void)inserted;
    it->second.Add(Record(1, 1, 1, 1000));
  }
  const core::Inventory inv(6, std::move(summaries));
  const RouteForecaster forecaster(&inv, &ports);
  const auto forecast = forecaster.Forecast({0.0, 1.0}, 1, 1, kSeg);
  EXPECT_EQ(forecast.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pol::uc
