#include "stats/welford.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace pol::stats {
namespace {

TEST(WelfordTest, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.Mean(), 0.0);
  EXPECT_EQ(w.StdDev(), 0.0);
  EXPECT_EQ(w.min(), 0.0);
  EXPECT_EQ(w.max(), 0.0);
}

TEST(WelfordTest, SingleValue) {
  Welford w;
  w.Add(12.5);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.Mean(), 12.5);
  EXPECT_EQ(w.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 12.5);
  EXPECT_DOUBLE_EQ(w.max(), 12.5);
}

TEST(WelfordTest, KnownMoments) {
  Welford w;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.Add(v);
  EXPECT_DOUBLE_EQ(w.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.Variance(), 4.0);  // Population variance.
  EXPECT_DOUBLE_EQ(w.StdDev(), 2.0);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(WelfordTest, NumericallyStableForLargeOffsets) {
  // Catastrophic cancellation check: values with a huge common offset.
  Welford w;
  const double offset = 1e9;
  for (double v : {1.0, 2.0, 3.0}) w.Add(offset + v);
  EXPECT_NEAR(w.Mean(), offset + 2.0, 1e-6);
  EXPECT_NEAR(w.Variance(), 2.0 / 3.0, 1e-6);
}

TEST(WelfordTest, MergeMatchesSequential) {
  Rng rng(88);
  Welford sequential;
  Welford part1;
  Welford part2;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextGaussian() * 3.0 + 10.0;
    sequential.Add(v);
    (i % 3 == 0 ? part1 : part2).Add(v);
  }
  part1.Merge(part2);
  EXPECT_EQ(part1.count(), sequential.count());
  EXPECT_NEAR(part1.Mean(), sequential.Mean(), 1e-9);
  EXPECT_NEAR(part1.Variance(), sequential.Variance(), 1e-9);
  EXPECT_EQ(part1.min(), sequential.min());
  EXPECT_EQ(part1.max(), sequential.max());
}

TEST(WelfordTest, MergeWithEmptySides) {
  Welford filled;
  filled.Add(1.0);
  filled.Add(3.0);

  Welford left = filled;
  left.Merge(Welford());
  EXPECT_EQ(left.count(), 2u);
  EXPECT_DOUBLE_EQ(left.Mean(), 2.0);

  Welford right;
  right.Merge(filled);
  EXPECT_EQ(right.count(), 2u);
  EXPECT_DOUBLE_EQ(right.Mean(), 2.0);
}

TEST(WelfordTest, SerializeRoundTrip) {
  Welford w;
  Rng rng(4);
  for (int i = 0; i < 100; ++i) w.Add(rng.Uniform(-50, 50));
  std::string buf;
  w.Serialize(&buf);
  Welford restored;
  std::string_view in(buf);
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(restored.count(), w.count());
  EXPECT_DOUBLE_EQ(restored.Mean(), w.Mean());
  EXPECT_DOUBLE_EQ(restored.Variance(), w.Variance());
  EXPECT_DOUBLE_EQ(restored.min(), w.min());
  EXPECT_DOUBLE_EQ(restored.max(), w.max());
}

TEST(WelfordTest, SerializeEmpty) {
  Welford w;
  std::string buf;
  w.Serialize(&buf);
  Welford restored;
  restored.Add(99);  // Pre-existing state must be reset.
  std::string_view in(buf);
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_EQ(restored.count(), 0u);
}

TEST(WelfordTest, DeserializeTruncatedFails) {
  Welford w;
  w.Add(1.0);
  std::string buf;
  w.Serialize(&buf);
  buf.resize(buf.size() / 2);
  Welford restored;
  std::string_view in(buf);
  EXPECT_FALSE(restored.Deserialize(&in).ok());
}

}  // namespace
}  // namespace pol::stats
