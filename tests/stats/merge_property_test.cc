// Merge-equivalence sweeps: for every sketch, splitting a stream into P
// partitions, sketching each and merging must match (exactly or within
// sketch tolerance) the single-pass sketch, for any P and any split.
// This is the contract the flow engine's reduce phase relies on
// (aggregation results must not depend on partitioning).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "stats/circular.h"
#include "stats/histogram.h"
#include "stats/hyperloglog.h"
#include "stats/spacesaving.h"
#include "stats/tdigest.h"
#include "stats/welford.h"

namespace pol::stats {
namespace {

class MergePropertyTest : public ::testing::TestWithParam<int> {
 protected:
  // Deterministic stream of (value, angle, key) observations.
  struct Observation {
    double value;
    double angle;
    uint64_t key;
  };

  std::vector<Observation> MakeStream(int n) {
    Rng rng(static_cast<uint64_t>(GetParam()) * 1000 + 17);
    std::vector<Observation> out;
    out.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      out.push_back({rng.NextGaussian() * 12 + 30, rng.Uniform(0, 360),
                     rng.NextBelow(500)});
    }
    return out;
  }
};

TEST_P(MergePropertyTest, WelfordExactUnderAnySplit) {
  const int partitions = GetParam();
  const auto stream = MakeStream(20000);
  Welford whole;
  std::vector<Welford> parts(static_cast<size_t>(partitions));
  for (size_t i = 0; i < stream.size(); ++i) {
    whole.Add(stream[i].value);
    parts[i % static_cast<size_t>(partitions)].Add(stream[i].value);
  }
  Welford merged;
  for (const Welford& p : parts) merged.Merge(p);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.Mean(), whole.Mean(), 1e-9);
  EXPECT_NEAR(merged.Variance(), whole.Variance(), 1e-7);
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
}

TEST_P(MergePropertyTest, CircularExactUnderAnySplit) {
  const int partitions = GetParam();
  const auto stream = MakeStream(20000);
  CircularMean whole;
  std::vector<CircularMean> parts(static_cast<size_t>(partitions));
  for (size_t i = 0; i < stream.size(); ++i) {
    whole.Add(stream[i].angle);
    parts[i % static_cast<size_t>(partitions)].Add(stream[i].angle);
  }
  CircularMean merged;
  for (const CircularMean& p : parts) merged.Merge(p);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.MeanDeg(), whole.MeanDeg(), 1e-6);
  EXPECT_NEAR(merged.ResultantLength(), whole.ResultantLength(), 1e-9);
}

TEST_P(MergePropertyTest, HistogramExactUnderAnySplit) {
  const int partitions = GetParam();
  const auto stream = MakeStream(20000);
  Histogram whole = Histogram::ForDegrees30();
  std::vector<Histogram> parts(static_cast<size_t>(partitions),
                               Histogram::ForDegrees30());
  for (size_t i = 0; i < stream.size(); ++i) {
    whole.Add(stream[i].angle);
    parts[i % static_cast<size_t>(partitions)].Add(stream[i].angle);
  }
  Histogram merged = Histogram::ForDegrees30();
  for (const Histogram& p : parts) ASSERT_TRUE(merged.Merge(p).ok());
  for (int bin = 0; bin < whole.num_bins(); ++bin) {
    EXPECT_EQ(merged.bin_count(bin), whole.bin_count(bin));
  }
}

TEST_P(MergePropertyTest, HyperLogLogExactUnderAnySplit) {
  const int partitions = GetParam();
  const auto stream = MakeStream(20000);
  HyperLogLog whole(12);
  std::vector<HyperLogLog> parts(static_cast<size_t>(partitions),
                                 HyperLogLog(12));
  for (size_t i = 0; i < stream.size(); ++i) {
    whole.Add(stream[i].key);
    parts[i % static_cast<size_t>(partitions)].Add(stream[i].key);
  }
  HyperLogLog merged(12);
  for (const HyperLogLog& p : parts) merged.Merge(p);
  // Register-max / hash-union merging is lossless for HLL.
  EXPECT_DOUBLE_EQ(merged.Estimate(), whole.Estimate());
}

TEST_P(MergePropertyTest, TDigestQuantilesStableUnderSplit) {
  const int partitions = GetParam();
  const auto stream = MakeStream(40000);
  TDigest whole(100);
  std::vector<TDigest> parts(static_cast<size_t>(partitions), TDigest(100));
  for (size_t i = 0; i < stream.size(); ++i) {
    whole.Add(stream[i].value);
    parts[i % static_cast<size_t>(partitions)].Add(stream[i].value);
  }
  TDigest merged(100);
  for (const TDigest& p : parts) merged.Merge(p);
  EXPECT_EQ(merged.count(), whole.count());
  // T-digest is approximate: merged and whole must agree within the
  // sketch's own error envelope (values span roughly [-30, 90]).
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(merged.Quantile(q), whole.Quantile(q), 1.5) << "q=" << q;
  }
}

TEST_P(MergePropertyTest, SpaceSavingHeadStableUnderSplit) {
  const int partitions = GetParam();
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  SpaceSaving whole(32);
  std::vector<SpaceSaving> parts(static_cast<size_t>(partitions),
                                 SpaceSaving(32));
  for (int i = 0; i < 30000; ++i) {
    const uint64_t key =
        static_cast<uint64_t>(std::pow(300.0, rng.NextDouble()));
    whole.Add(key);
    parts[static_cast<size_t>(i) % static_cast<size_t>(partitions)].Add(key);
  }
  SpaceSaving merged(32);
  for (const SpaceSaving& p : parts) merged.Merge(p);
  EXPECT_EQ(merged.total(), whole.total());
  // The head of the ranking (clear heavy hitters) must agree.
  const auto top_whole = whole.TopN(3);
  const auto top_merged = merged.TopN(3);
  ASSERT_EQ(top_whole.size(), top_merged.size());
  for (size_t i = 0; i < top_whole.size(); ++i) {
    EXPECT_EQ(top_merged[i].key, top_whole[i].key) << i;
  }
}

TEST_P(MergePropertyTest, SerializeThenMergeMatchesDirectMerge) {
  // The flow engine ships sketches between partitions in serialized
  // form: deserialize(serialize(x)).Merge must equal x.Merge.
  const int partitions = GetParam();
  const auto stream = MakeStream(5000);
  std::vector<Welford> parts(static_cast<size_t>(partitions));
  for (size_t i = 0; i < stream.size(); ++i) {
    parts[i % static_cast<size_t>(partitions)].Add(stream[i].value);
  }
  Welford direct;
  Welford via_bytes;
  for (const Welford& p : parts) {
    direct.Merge(p);
    std::string buf;
    p.Serialize(&buf);
    Welford restored;
    std::string_view in(buf);
    ASSERT_TRUE(restored.Deserialize(&in).ok());
    via_bytes.Merge(restored);
  }
  EXPECT_EQ(via_bytes.count(), direct.count());
  EXPECT_DOUBLE_EQ(via_bytes.Mean(), direct.Mean());
  EXPECT_DOUBLE_EQ(via_bytes.Variance(), direct.Variance());
}

INSTANTIATE_TEST_SUITE_P(Partitions, MergePropertyTest,
                         ::testing::Values(1, 2, 3, 7, 16, 64),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "P" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pol::stats
