#include "stats/tdigest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace pol::stats {
namespace {

// Exact quantile of a sorted sample for comparison.
double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double idx = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double t = idx - static_cast<double>(lo);
  return values[lo] * (1 - t) + values[hi] * t;
}

TEST(TDigestTest, EmptyIsZero) {
  TDigest d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(d.Quantile(0.5), 0.0);
  EXPECT_EQ(d.Rank(1.0), 0.0);
}

TEST(TDigestTest, SingleValue) {
  TDigest d;
  d.Add(42.0);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(d.Quantile(1.0), 42.0);
}

TEST(TDigestTest, MinMaxAreExact) {
  TDigest d;
  Rng rng(11);
  double lo = 1e18;
  double hi = -1e18;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-100, 100);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    d.Add(v);
  }
  EXPECT_DOUBLE_EQ(d.min(), lo);
  EXPECT_DOUBLE_EQ(d.max(), hi);
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), lo);
  EXPECT_DOUBLE_EQ(d.Quantile(1.0), hi);
}

TEST(TDigestTest, UniformQuantilesAccurate) {
  TDigest d(100);
  Rng rng(22);
  std::vector<double> values;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.Uniform(0, 1000);
    values.push_back(v);
    d.Add(v);
  }
  // The paper queries the 10th, 50th and 90th percentiles.
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(d.Quantile(q), ExactQuantile(values, q), 10.0)
        << "q=" << q;  // 1% of the range.
  }
  // Tails are even tighter under the k1 scale function.
  for (double q : {0.001, 0.01, 0.99, 0.999}) {
    EXPECT_NEAR(d.Quantile(q), ExactQuantile(values, q), 5.0) << "q=" << q;
  }
}

TEST(TDigestTest, SkewedDistributionQuantiles) {
  TDigest d(100);
  Rng rng(33);
  std::vector<double> values;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.Exponential(0.1);  // Mean 10, long tail.
    values.push_back(v);
    d.Add(v);
  }
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double exact = ExactQuantile(values, q);
    EXPECT_NEAR(d.Quantile(q), exact, std::max(0.5, exact * 0.05))
        << "q=" << q;
  }
}

TEST(TDigestTest, QuantilesAreMonotone) {
  TDigest d(50);
  Rng rng(44);
  for (int i = 0; i < 20000; ++i) d.Add(rng.NextGaussian());
  double prev = d.Quantile(0.0);
  for (double q = 0.01; q <= 1.0; q += 0.01) {
    const double cur = d.Quantile(q);
    EXPECT_GE(cur, prev - 1e-12) << "q=" << q;
    prev = cur;
  }
}

TEST(TDigestTest, RankInvertsQuantile) {
  TDigest d(100);
  Rng rng(55);
  for (int i = 0; i < 30000; ++i) d.Add(rng.Uniform(0, 100));
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(d.Rank(d.Quantile(q)), q, 0.02) << "q=" << q;
  }
  EXPECT_EQ(d.Rank(-1.0), 0.0);
  EXPECT_EQ(d.Rank(101.0), 1.0);
}

TEST(TDigestTest, CentroidCountBounded) {
  TDigest d(100);
  Rng rng(66);
  for (int i = 0; i < 100000; ++i) d.Add(rng.NextGaussian());
  // The merging t-digest keeps O(compression) centroids.
  EXPECT_LE(d.CentroidCount(), 220u);
  EXPECT_GE(d.CentroidCount(), 30u);
}

TEST(TDigestTest, MergePreservesCountAndAccuracy) {
  Rng rng(77);
  TDigest whole(100);
  std::vector<TDigest> parts;
  for (int p = 0; p < 8; ++p) parts.emplace_back(100);
  std::vector<double> values;
  for (int i = 0; i < 40000; ++i) {
    const double v = rng.NextGaussian() * 15 + 50;
    values.push_back(v);
    whole.Add(v);
    parts[static_cast<size_t>(i % 8)].Add(v);
  }
  TDigest merged(100);
  for (const TDigest& part : parts) merged.Merge(part);
  EXPECT_EQ(merged.count(), whole.count());
  for (double q : {0.1, 0.5, 0.9}) {
    const double exact = ExactQuantile(values, q);
    EXPECT_NEAR(merged.Quantile(q), exact, 1.5) << "q=" << q;
  }
}

TEST(TDigestTest, WeightedAddMatchesRepeatedAdd) {
  TDigest weighted(100);
  TDigest repeated(100);
  for (int i = 0; i < 100; ++i) {
    const double v = static_cast<double>(i);
    weighted.Add(v, 5);
    for (int k = 0; k < 5; ++k) repeated.Add(v);
  }
  EXPECT_EQ(weighted.count(), repeated.count());
  for (double q : {0.25, 0.5, 0.75}) {
    EXPECT_NEAR(weighted.Quantile(q), repeated.Quantile(q), 1.5);
  }
}

TEST(TDigestTest, IgnoresNanAndZeroWeight) {
  TDigest d;
  d.Add(std::nan(""));
  d.Add(1.0, 0);
  EXPECT_EQ(d.count(), 0u);
}

TEST(TDigestTest, SerializeRoundTrip) {
  TDigest d(80);
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) d.Add(rng.Exponential(1.0));
  std::string buf;
  d.Serialize(&buf);
  TDigest restored;
  std::string_view in(buf);
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(restored.count(), d.count());
  EXPECT_DOUBLE_EQ(restored.min(), d.min());
  EXPECT_DOUBLE_EQ(restored.max(), d.max());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(restored.Quantile(q), d.Quantile(q));
  }
}

TEST(TDigestTest, DeserializeRejectsCorruption) {
  TDigest d;
  d.Add(1.0);
  std::string buf;
  d.Serialize(&buf);
  buf.resize(buf.size() - 3);
  TDigest restored;
  std::string_view in(buf);
  EXPECT_FALSE(restored.Deserialize(&in).ok());
}

}  // namespace
}  // namespace pol::stats
