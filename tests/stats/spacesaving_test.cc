#include "stats/spacesaving.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"

namespace pol::stats {
namespace {

TEST(SpaceSavingTest, EmptyHasNoEntries) {
  SpaceSaving ss(8);
  EXPECT_EQ(ss.size(), 0u);
  EXPECT_EQ(ss.total(), 0u);
  EXPECT_TRUE(ss.TopN(5).empty());
  EXPECT_EQ(ss.CountOf(42), 0u);
}

TEST(SpaceSavingTest, ExactBelowCapacity) {
  SpaceSaving ss(8);
  for (int k = 0; k < 5; ++k) {
    for (int r = 0; r <= k; ++r) ss.Add(static_cast<uint64_t>(k));
  }
  EXPECT_EQ(ss.total(), 15u);
  const auto top = ss.TopN(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 4u);
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, 3u);
  EXPECT_EQ(top[2].key, 2u);
}

TEST(SpaceSavingTest, TiesBreakByKeyAscending) {
  SpaceSaving ss(8);
  ss.Add(7);
  ss.Add(3);
  ss.Add(5);
  const auto top = ss.TopN(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 3u);
  EXPECT_EQ(top[1].key, 5u);
  EXPECT_EQ(top[2].key, 7u);
}

TEST(SpaceSavingTest, HeavyHittersSurviveEviction) {
  // Zipf-ish stream: key k appears ~N/(k ln 1000) times. SpaceSaving
  // with capacity m guarantees every key with frequency > total/m is
  // tracked, and counts overestimate by at most total/m. With m = 64
  // that bound (~1.6k) cleanly separates the top two keys (~10k, ~5.9k)
  // but not ranks three and four, so only the head order is asserted.
  SpaceSaving ss(64);
  Rng rng(1);
  std::map<uint64_t, uint64_t> truth;
  for (int i = 0; i < 100000; ++i) {
    // Inverse-CDF sample of a discrete Zipf over 1..1000.
    const uint64_t key =
        static_cast<uint64_t>(std::pow(1000.0, rng.NextDouble()));
    ++truth[key];
    ss.Add(key);
  }
  const auto top = ss.TopN(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[1].key, 2u);
  // Keys 1..4 all exceed the guarantee threshold: all must be tracked,
  // with counts bracketing the truth.
  for (uint64_t key = 1; key <= 4; ++key) {
    const uint64_t count = ss.CountOf(key);
    ASSERT_GT(count, 0u) << key;
    EXPECT_GE(count, truth[key]) << key;
  }
}

TEST(SpaceSavingTest, CountNeverUnderestimates) {
  SpaceSaving ss(4);
  Rng rng(2);
  std::map<uint64_t, uint64_t> truth;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t key = rng.NextBelow(50);
    ++truth[key];
    ss.Add(key);
  }
  for (const auto& e : ss.Entries()) {
    EXPECT_GE(e.count, truth[e.key]);
  }
}

TEST(SpaceSavingTest, GuaranteeThreshold) {
  // Any key with frequency > total/capacity must be tracked.
  SpaceSaving ss(10);
  for (int i = 0; i < 900; ++i) ss.Add(1000 + (i % 90));  // Light keys.
  for (int i = 0; i < 200; ++i) ss.Add(7);                // Heavy key.
  EXPECT_GT(ss.CountOf(7), 0u);
  const auto top = ss.TopN(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, 7u);
}

TEST(SpaceSavingTest, WeightedIncrements) {
  SpaceSaving ss(4);
  ss.Add(1, 100);
  ss.Add(2, 50);
  EXPECT_EQ(ss.CountOf(1), 100u);
  EXPECT_EQ(ss.total(), 150u);
  ss.Add(1, 0);  // No-op.
  EXPECT_EQ(ss.total(), 150u);
}

TEST(SpaceSavingTest, MergeKeepsHeavyHitters) {
  Rng rng(3);
  SpaceSaving whole(32);
  SpaceSaving a(32);
  SpaceSaving b(32);
  std::map<uint64_t, uint64_t> truth;
  for (int i = 0; i < 50000; ++i) {
    const uint64_t key =
        static_cast<uint64_t>(std::pow(500.0, rng.NextDouble()));
    ++truth[key];
    whole.Add(key);
    (i % 2 == 0 ? a : b).Add(key);
  }
  a.Merge(b);
  EXPECT_EQ(a.total(), whole.total());
  const auto top = a.TopN(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[1].key, 2u);
  EXPECT_EQ(top[2].key, 3u);
  for (const auto& e : top) {
    EXPECT_GE(e.count, truth[e.key]);  // Still an upper bound.
  }
}

TEST(SpaceSavingTest, MergeRespectsCapacity) {
  SpaceSaving a(4);
  SpaceSaving b(4);
  for (uint64_t k = 0; k < 4; ++k) a.Add(k, k + 1);
  for (uint64_t k = 10; k < 14; ++k) b.Add(k, k);
  a.Merge(b);
  EXPECT_LE(a.size(), 4u);
  // The largest counts must survive: keys 13 (13), 12 (12), 11 (11), 10 (10).
  EXPECT_EQ(a.TopN(1)[0].key, 13u);
}

TEST(SpaceSavingTest, SerializeRoundTrip) {
  SpaceSaving ss(16);
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) ss.Add(rng.NextBelow(100));
  std::string buf;
  ss.Serialize(&buf);
  SpaceSaving restored(1);
  std::string_view in(buf);
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(restored.capacity(), ss.capacity());
  EXPECT_EQ(restored.total(), ss.total());
  EXPECT_EQ(restored.size(), ss.size());
  const auto expected = ss.TopN(16);
  const auto actual = restored.TopN(16);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].key, expected[i].key);
    EXPECT_EQ(actual[i].count, expected[i].count);
    EXPECT_EQ(actual[i].error, expected[i].error);
  }
}

TEST(SpaceSavingTest, DeserializeRejectsBadData) {
  std::string buf;
  buf.push_back(0);  // capacity 0.
  SpaceSaving restored(4);
  std::string_view in(buf);
  EXPECT_FALSE(restored.Deserialize(&in).ok());
}

}  // namespace
}  // namespace pol::stats
