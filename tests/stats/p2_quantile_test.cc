#include "stats/p2_quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/varint.h"

namespace pol::stats {
namespace {

double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double idx = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double t = idx - static_cast<double>(lo);
  return values[lo] * (1 - t) + values[hi] * t;
}

TEST(P2QuantileTest, EmptyIsZero) {
  P2Quantile p(0.5);
  EXPECT_EQ(p.count(), 0u);
  EXPECT_EQ(p.Value(), 0.0);
}

TEST(P2QuantileTest, SmallSamplesAreExact) {
  P2Quantile median(0.5);
  median.Add(3.0);
  EXPECT_DOUBLE_EQ(median.Value(), 3.0);
  median.Add(1.0);
  median.Add(5.0);
  EXPECT_DOUBLE_EQ(median.Value(), 3.0);  // Sorted {1,3,5}: middle.
}

TEST(P2QuantileTest, MedianOfUniform) {
  P2Quantile median(0.5);
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.Uniform(0, 1000);
    values.push_back(v);
    median.Add(v);
  }
  EXPECT_NEAR(median.Value(), ExactQuantile(values, 0.5), 10.0);
}

TEST(P2QuantileTest, TailQuantilesOfGaussian) {
  Rng rng(2);
  P2Quantile p10(0.1);
  P2Quantile p90(0.9);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.NextGaussian() * 10 + 50;
    values.push_back(v);
    p10.Add(v);
    p90.Add(v);
  }
  EXPECT_NEAR(p10.Value(), ExactQuantile(values, 0.1), 1.0);
  EXPECT_NEAR(p90.Value(), ExactQuantile(values, 0.9), 1.0);
}

TEST(P2QuantileTest, SkewedDistribution) {
  Rng rng(3);
  P2Quantile median(0.5);
  std::vector<double> values;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.Exponential(0.1);
    values.push_back(v);
    median.Add(v);
  }
  const double exact = ExactQuantile(values, 0.5);
  EXPECT_NEAR(median.Value(), exact, exact * 0.1);
}

TEST(P2QuantileTest, MonotoneInputs) {
  P2Quantile p90(0.9);
  for (int i = 0; i < 10000; ++i) p90.Add(static_cast<double>(i));
  EXPECT_NEAR(p90.Value(), 9000.0, 400.0);
}

TEST(P2QuantileTest, SerializeRoundTrip) {
  P2Quantile p(0.75);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) p.Add(rng.Uniform(0, 100));
  std::string buffer;
  p.Serialize(&buffer);
  P2Quantile restored;
  std::string_view input(buffer);
  ASSERT_TRUE(restored.Deserialize(&input).ok());
  EXPECT_TRUE(input.empty());
  EXPECT_EQ(restored.count(), p.count());
  EXPECT_DOUBLE_EQ(restored.Value(), p.Value());
  // The restored estimator keeps working.
  restored.Add(50.0);
  EXPECT_EQ(restored.count(), p.count() + 1);
}

TEST(P2QuantileTest, SerializeSmallSample) {
  P2Quantile p(0.5);
  p.Add(7);
  p.Add(3);
  std::string buffer;
  p.Serialize(&buffer);
  P2Quantile restored;
  std::string_view input(buffer);
  ASSERT_TRUE(restored.Deserialize(&input).ok());
  EXPECT_EQ(restored.count(), 2u);
  EXPECT_DOUBLE_EQ(restored.Value(), p.Value());
}

TEST(P2QuantileTest, DeserializeRejectsGarbage) {
  std::string buffer;
  PutDouble(&buffer, 2.5);  // Quantile outside (0, 1).
  P2Quantile restored;
  std::string_view input(buffer);
  EXPECT_FALSE(restored.Deserialize(&input).ok());
}

}  // namespace
}  // namespace pol::stats
