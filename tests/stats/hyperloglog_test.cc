#include "stats/hyperloglog.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace pol::stats {
namespace {

TEST(HyperLogLogTest, EmptyEstimatesZero) {
  HyperLogLog hll;
  EXPECT_EQ(hll.Estimate(), 0.0);
  EXPECT_TRUE(hll.IsSparse());
}

TEST(HyperLogLogTest, SparseModeIsExact) {
  HyperLogLog hll;
  for (uint64_t k = 0; k < 200; ++k) hll.Add(k * 7919);
  EXPECT_TRUE(hll.IsSparse());
  EXPECT_DOUBLE_EQ(hll.Estimate(), 200.0);
}

TEST(HyperLogLogTest, DuplicatesDoNotCount) {
  HyperLogLog hll;
  for (int round = 0; round < 10; ++round) {
    for (uint64_t k = 0; k < 50; ++k) hll.Add(k);
  }
  EXPECT_DOUBLE_EQ(hll.Estimate(), 50.0);
}

TEST(HyperLogLogTest, PromotesToDense) {
  HyperLogLog hll;
  for (uint64_t k = 0; k < 1000; ++k) hll.Add(k);
  EXPECT_FALSE(hll.IsSparse());
  // Around the promotion threshold accuracy stays within a few percent.
  EXPECT_NEAR(hll.Estimate(), 1000.0, 60.0);
}

TEST(HyperLogLogTest, DenseAccuracyWithinThreeSigma) {
  // Standard error at precision 12 is 1.04/sqrt(4096) ~= 1.63%.
  for (const uint64_t n : {10000ull, 100000ull}) {
    HyperLogLog hll(12);
    Rng rng(n);
    for (uint64_t k = 0; k < n; ++k) hll.Add(rng.NextUint64());
    const double relative_error =
        std::fabs(hll.Estimate() - static_cast<double>(n)) /
        static_cast<double>(n);
    EXPECT_LT(relative_error, 0.05) << "n=" << n;
  }
}

TEST(HyperLogLogTest, LowerPrecisionIsLessAccurateButWorks) {
  HyperLogLog hll(8);  // 256 registers, ~6.5% standard error.
  Rng rng(123);
  for (int k = 0; k < 50000; ++k) hll.Add(rng.NextUint64());
  EXPECT_NEAR(hll.Estimate(), 50000.0, 50000.0 * 0.2);
}

TEST(HyperLogLogTest, MergeSparseSparse) {
  HyperLogLog a;
  HyperLogLog b;
  for (uint64_t k = 0; k < 100; ++k) a.Add(k);
  for (uint64_t k = 50; k < 150; ++k) b.Add(k);
  a.Merge(b);
  EXPECT_TRUE(a.IsSparse());
  EXPECT_DOUBLE_EQ(a.Estimate(), 150.0);
}

TEST(HyperLogLogTest, MergeEqualsUnion) {
  Rng rng(9);
  HyperLogLog whole(12);
  HyperLogLog a(12);
  HyperLogLog b(12);
  for (int k = 0; k < 20000; ++k) {
    const uint64_t key = rng.NextBelow(30000);
    whole.Add(key);
    (k % 2 == 0 ? a : b).Add(key);
  }
  a.Merge(b);
  // Merged estimate must match the single-sketch estimate exactly:
  // register-wise max is lossless for HLL.
  EXPECT_DOUBLE_EQ(a.Estimate(), whole.Estimate());
}

TEST(HyperLogLogTest, MergeSparseIntoDense) {
  HyperLogLog dense(12);
  for (uint64_t k = 0; k < 5000; ++k) dense.Add(k);
  ASSERT_FALSE(dense.IsSparse());
  HyperLogLog sparse(12);
  for (uint64_t k = 5000; k < 5100; ++k) sparse.Add(k);
  ASSERT_TRUE(sparse.IsSparse());
  const double before = dense.Estimate();
  dense.Merge(sparse);
  EXPECT_GT(dense.Estimate(), before);
  EXPECT_NEAR(dense.Estimate(), 5100.0, 5100.0 * 0.06);
}

TEST(HyperLogLogTest, SerializeSparseRoundTrip) {
  HyperLogLog hll;
  for (uint64_t k = 0; k < 77; ++k) hll.Add(k * 31);
  std::string buf;
  hll.Serialize(&buf);
  HyperLogLog restored;
  std::string_view in(buf);
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_TRUE(restored.IsSparse());
  EXPECT_DOUBLE_EQ(restored.Estimate(), 77.0);
}

TEST(HyperLogLogTest, SerializeDenseRoundTrip) {
  HyperLogLog hll(10);
  Rng rng(77);
  for (int k = 0; k < 20000; ++k) hll.Add(rng.NextUint64());
  std::string buf;
  hll.Serialize(&buf);
  HyperLogLog restored;
  std::string_view in(buf);
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_FALSE(restored.IsSparse());
  EXPECT_DOUBLE_EQ(restored.Estimate(), hll.Estimate());
}

TEST(HyperLogLogTest, SparseSerializationIsCompact) {
  HyperLogLog hll(12);
  for (uint64_t k = 0; k < 10; ++k) hll.Add(k);
  std::string buf;
  hll.Serialize(&buf);
  // Ten delta-coded hashes: far below the 4 KiB dense footprint.
  EXPECT_LT(buf.size(), 128u);
}

TEST(HyperLogLogTest, DeserializeRejectsBadPrecision) {
  std::string buf;
  buf.push_back(2);  // precision 2 < 4.
  HyperLogLog restored;
  std::string_view in(buf);
  EXPECT_FALSE(restored.Deserialize(&in).ok());
}

TEST(HyperLogLogTest, DeserializeRejectsTruncatedDense) {
  HyperLogLog hll(10);
  for (uint64_t k = 0; k < 5000; ++k) hll.Add(k);
  std::string buf;
  hll.Serialize(&buf);
  buf.resize(buf.size() - 100);
  HyperLogLog restored;
  std::string_view in(buf);
  EXPECT_FALSE(restored.Deserialize(&in).ok());
}

}  // namespace
}  // namespace pol::stats
