#include "stats/circular.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pol::stats {
namespace {

TEST(CircularMeanTest, EmptyIsZero) {
  CircularMean c;
  EXPECT_EQ(c.count(), 0u);
  EXPECT_EQ(c.MeanDeg(), 0.0);
  EXPECT_EQ(c.ResultantLength(), 0.0);
}

TEST(CircularMeanTest, SingleDirection) {
  CircularMean c;
  c.Add(45.0);
  EXPECT_NEAR(c.MeanDeg(), 45.0, 1e-9);
  EXPECT_NEAR(c.ResultantLength(), 1.0, 1e-12);
}

TEST(CircularMeanTest, WrapAroundNorth) {
  // 350 and 10 degrees average to 0, not 180 — the whole point of the
  // circular mean for vessel courses.
  CircularMean c;
  c.Add(350.0);
  c.Add(10.0);
  EXPECT_NEAR(c.MeanDeg(), 0.0, 1e-9);
  EXPECT_GT(c.ResultantLength(), 0.9);
}

TEST(CircularMeanTest, OppositeDirectionsCancel) {
  CircularMean c;
  c.Add(0.0);
  c.Add(180.0);
  EXPECT_NEAR(c.ResultantLength(), 0.0, 1e-12);
  EXPECT_NEAR(c.CircularVariance(), 1.0, 1e-12);
}

TEST(CircularMeanTest, NegativeAnglesNormalized) {
  CircularMean c;
  c.Add(-90.0);
  EXPECT_NEAR(c.MeanDeg(), 270.0, 1e-9);
}

TEST(CircularMeanTest, ConcentrationReflectsSpread) {
  Rng rng(3);
  CircularMean narrow;
  CircularMean wide;
  for (int i = 0; i < 10000; ++i) {
    narrow.Add(90.0 + rng.NextGaussian() * 5.0);
    wide.Add(90.0 + rng.NextGaussian() * 80.0);
  }
  EXPECT_NEAR(narrow.MeanDeg(), 90.0, 1.0);
  EXPECT_GT(narrow.ResultantLength(), 0.98);
  EXPECT_LT(wide.ResultantLength(), 0.6);
}

TEST(CircularMeanTest, MergeMatchesSequential) {
  Rng rng(7);
  CircularMean sequential;
  CircularMean a;
  CircularMean b;
  for (int i = 0; i < 1000; ++i) {
    const double deg = rng.Uniform(0, 360);
    sequential.Add(deg);
    (i % 2 == 0 ? a : b).Add(deg);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), sequential.count());
  EXPECT_NEAR(a.MeanDeg(), sequential.MeanDeg(), 1e-9);
  EXPECT_NEAR(a.ResultantLength(), sequential.ResultantLength(), 1e-12);
}

TEST(CircularMeanTest, SerializeRoundTrip) {
  CircularMean c;
  c.Add(10);
  c.Add(20);
  c.Add(350);
  std::string buf;
  c.Serialize(&buf);
  CircularMean restored;
  std::string_view in(buf);
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_EQ(restored.count(), c.count());
  EXPECT_DOUBLE_EQ(restored.MeanDeg(), c.MeanDeg());
  EXPECT_DOUBLE_EQ(restored.ResultantLength(), c.ResultantLength());
}

}  // namespace
}  // namespace pol::stats
