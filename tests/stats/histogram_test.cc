#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pol::stats {
namespace {

TEST(HistogramTest, DegreeBinsMatchPaperConfiguration) {
  Histogram h = Histogram::ForDegrees30();
  EXPECT_EQ(h.num_bins(), 12);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 30.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(11), 360.0);
}

TEST(HistogramTest, BinAssignment) {
  Histogram h = Histogram::ForDegrees30();
  EXPECT_EQ(h.BinOf(0.0), 0);
  EXPECT_EQ(h.BinOf(29.999), 0);
  EXPECT_EQ(h.BinOf(30.0), 1);
  EXPECT_EQ(h.BinOf(359.999), 11);
}

TEST(HistogramTest, WrappingFoldsAngles) {
  Histogram h = Histogram::ForDegrees30();
  EXPECT_EQ(h.BinOf(360.0), 0);
  EXPECT_EQ(h.BinOf(365.0), 0);
  EXPECT_EQ(h.BinOf(-5.0), 11);
  EXPECT_EQ(h.BinOf(-365.0), 11);
  EXPECT_EQ(h.BinOf(725.0), 0);
}

TEST(HistogramTest, ClampingCountsEdges) {
  Histogram h(0.0, 10.0, 5, /*wrap=*/false);
  EXPECT_EQ(h.BinOf(-3.0), 0);
  EXPECT_EQ(h.BinOf(10.0), 4);
  EXPECT_EQ(h.BinOf(99.0), 4);
  EXPECT_EQ(h.BinOf(5.5), 2);
}

TEST(HistogramTest, CountsAndFractions) {
  Histogram h(0.0, 4.0, 4, false);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.7);
  h.Add(3.9);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_EQ(h.bin_count(3), 1u);
  EXPECT_DOUBLE_EQ(h.Fraction(1), 0.5);
  EXPECT_EQ(h.ModeBin(), 1);
}

TEST(HistogramTest, ModeBinOfEmptyIsMinusOne) {
  Histogram h(0.0, 1.0, 2, false);
  EXPECT_EQ(h.ModeBin(), -1);
}

TEST(HistogramTest, MergeMatchesSequential) {
  Rng rng(5);
  Histogram sequential = Histogram::ForDegrees30();
  Histogram a = Histogram::ForDegrees30();
  Histogram b = Histogram::ForDegrees30();
  for (int i = 0; i < 5000; ++i) {
    const double deg = rng.Uniform(0, 360);
    sequential.Add(deg);
    (i % 2 == 0 ? a : b).Add(deg);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.total(), sequential.total());
  for (int bin = 0; bin < 12; ++bin) {
    EXPECT_EQ(a.bin_count(bin), sequential.bin_count(bin)) << bin;
  }
}

TEST(HistogramTest, MergeRejectsMismatchedConfiguration) {
  Histogram a(0.0, 360.0, 12, true);
  Histogram b(0.0, 360.0, 36, true);
  EXPECT_EQ(a.Merge(b).code(), StatusCode::kFailedPrecondition);
  Histogram c(0.0, 180.0, 12, true);
  EXPECT_EQ(a.Merge(c).code(), StatusCode::kFailedPrecondition);
  Histogram d(0.0, 360.0, 12, false);
  EXPECT_EQ(a.Merge(d).code(), StatusCode::kFailedPrecondition);
}

TEST(HistogramTest, SerializeRoundTrip) {
  Histogram h = Histogram::ForDegrees30();
  Rng rng(6);
  for (int i = 0; i < 500; ++i) h.Add(rng.Uniform(0, 360));
  std::string buf;
  h.Serialize(&buf);
  Histogram restored(0, 1, 1, false);
  std::string_view in(buf);
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(restored.num_bins(), h.num_bins());
  EXPECT_EQ(restored.total(), h.total());
  for (int bin = 0; bin < 12; ++bin) {
    EXPECT_EQ(restored.bin_count(bin), h.bin_count(bin));
  }
}

TEST(HistogramTest, DeserializeRejectsGarbage) {
  std::string buf(3, '\x7f');
  Histogram h(0, 1, 1, false);
  std::string_view in(buf);
  EXPECT_FALSE(h.Deserialize(&in).ok());
}

}  // namespace
}  // namespace pol::stats
