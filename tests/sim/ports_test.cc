#include "sim/ports.h"

#include <gtest/gtest.h>

#include <set>

#include "geo/geodesic.h"

namespace pol::sim {
namespace {

TEST(PortDatabaseTest, GlobalTableIsLargeAndWellFormed) {
  const PortDatabase& db = PortDatabase::Global();
  EXPECT_GE(db.size(), 120u);
  std::set<std::string> names;
  for (const Port& port : db.ports()) {
    EXPECT_NE(port.id, kNoPort);
    EXPECT_TRUE(port.position.IsValid()) << port.name;
    EXPECT_GT(port.geofence_radius_km, 0.0) << port.name;
    EXPECT_TRUE(names.insert(port.name).second)
        << "duplicate port name " << port.name;
  }
}

TEST(PortDatabaseTest, IdsAreDenseAndFindable) {
  const PortDatabase& db = PortDatabase::Global();
  for (PortId id = 1; id <= db.size(); ++id) {
    const auto port = db.Find(id);
    ASSERT_TRUE(port.ok()) << id;
    EXPECT_EQ((*port)->id, id);
  }
  EXPECT_FALSE(db.Find(kNoPort).ok());
  EXPECT_FALSE(db.Find(static_cast<PortId>(db.size() + 1)).ok());
}

TEST(PortDatabaseTest, FindByName) {
  const PortDatabase& db = PortDatabase::Global();
  const auto singapore = db.FindByName("Singapore");
  ASSERT_TRUE(singapore.ok());
  EXPECT_NEAR((*singapore)->position.lat_deg, 1.26, 0.1);
  EXPECT_NEAR((*singapore)->position.lng_deg, 103.84, 0.1);
  EXPECT_FALSE(db.FindByName("Atlantis").ok());
}

TEST(PortDatabaseTest, KeyPortsOfThePaperExist) {
  // Figure 6 highlights Singapore, Shanghai and Rotterdam.
  const PortDatabase& db = PortDatabase::Global();
  for (const char* name : {"Singapore", "Shanghai", "Rotterdam"}) {
    EXPECT_TRUE(db.FindByName(name).ok()) << name;
  }
}

TEST(PortDatabaseTest, NearestFindsTheObviousPort) {
  const PortDatabase& db = PortDatabase::Global();
  const Port* nearest = db.Nearest({51.9, 4.2});
  ASSERT_NE(nearest, nullptr);
  EXPECT_EQ(nearest->name, "Rotterdam");
}

TEST(PortDatabaseTest, GeofenceContainment) {
  const PortDatabase& db = PortDatabase::Global();
  const auto rotterdam = db.FindByName("Rotterdam");
  ASSERT_TRUE(rotterdam.ok());
  // At the port centre.
  EXPECT_EQ(db.GeofenceContaining((*rotterdam)->position), (*rotterdam)->id);
  // Just inside the fence.
  const geo::LatLng inside = geo::DestinationPoint(
      (*rotterdam)->position, 90.0, (*rotterdam)->geofence_radius_km - 1.0);
  EXPECT_EQ(db.GeofenceContaining(inside), (*rotterdam)->id);
  // Mid-Atlantic: no fence.
  EXPECT_EQ(db.GeofenceContaining({45.0, -35.0}), kNoPort);
}

TEST(PortDatabaseTest, GeofencesMostlyDisjoint) {
  // Overlapping fences are resolved by proximity; sanity-check that the
  // overwhelming majority of ports own their own centre.
  const PortDatabase& db = PortDatabase::Global();
  int owned = 0;
  for (const Port& port : db.ports()) {
    if (db.GeofenceContaining(port.position) == port.id) ++owned;
  }
  EXPECT_GE(owned, static_cast<int>(db.size()) - 6);
}

TEST(PortDatabaseTest, SegmentWeightsFollowFlags) {
  const PortDatabase& db = PortDatabase::Global();
  const Port& hedland = **db.FindByName("Port Hedland");
  // A pure bulk port: strong dry-bulk weight, no container calls.
  EXPECT_GT(
      hedland.segment_weight[static_cast<int>(ais::MarketSegment::kDryBulk)],
      1.0);
  EXPECT_EQ(
      hedland.segment_weight[static_cast<int>(ais::MarketSegment::kContainer)],
      0.0);
  const Port& singapore = **db.FindByName("Singapore");
  EXPECT_GT(
      singapore
          .segment_weight[static_cast<int>(ais::MarketSegment::kContainer)],
      5.0);
}

TEST(PortDatabaseTest, CustomDatabaseReassignsIds) {
  Port a;
  a.name = "Alpha";
  a.position = {0, 0};
  Port b;
  b.name = "Beta";
  b.position = {10, 10};
  const PortDatabase db({a, b});
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ((*db.FindByName("Alpha"))->id, 1u);
  EXPECT_EQ((*db.FindByName("Beta"))->id, 2u);
}

}  // namespace
}  // namespace pol::sim
