#include "sim/fleet.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ais/messages.h"
#include "geo/geodesic.h"

namespace pol::sim {
namespace {

// A one-month, small-fleet config that runs in well under a second.
FleetConfig SmallConfig() {
  FleetConfig config;
  config.seed = 7;
  config.commercial_vessels = 12;
  config.noncommercial_vessels = 10;
  config.start_time = 1640995200;                        // 2022-01-01.
  config.end_time = 1640995200 + 30 * kSecondsPerDay;    // One month.
  return config;
}

TEST(FleetSimulatorTest, DeterministicForSameSeed) {
  FleetSimulator sim_a(SmallConfig());
  FleetSimulator sim_b(SmallConfig());
  const SimulationOutput a = sim_a.Run();
  const SimulationOutput b = sim_b.Run();
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (size_t i = 0; i < a.reports.size(); i += 97) {
    EXPECT_EQ(a.reports[i].mmsi, b.reports[i].mmsi);
    EXPECT_EQ(a.reports[i].timestamp, b.reports[i].timestamp);
    EXPECT_EQ(a.reports[i].lat_deg, b.reports[i].lat_deg);
  }
  EXPECT_EQ(a.voyages.size(), b.voyages.size());
}

TEST(FleetSimulatorTest, DifferentSeedsDiffer) {
  FleetConfig config = SmallConfig();
  config.seed = 8;
  const SimulationOutput a = FleetSimulator(SmallConfig()).Run();
  const SimulationOutput b = FleetSimulator(config).Run();
  // Same fleet sizes, different traffic.
  EXPECT_NE(a.reports.size(), b.reports.size());
}

TEST(FleetSimulatorTest, FleetCompositionMatchesConfig) {
  const SimulationOutput out = FleetSimulator(SmallConfig()).Run();
  ASSERT_EQ(out.fleet.size(), 22u);
  int commercial = 0;
  std::set<ais::Mmsi> mmsis;
  for (const auto& vessel : out.fleet) {
    EXPECT_TRUE(ais::IsPlausibleMmsi(vessel.mmsi));
    EXPECT_TRUE(mmsis.insert(vessel.mmsi).second) << "duplicate MMSI";
    if (ais::IsCommercialFleet(vessel)) ++commercial;
  }
  // All 12 commercial hulls are >5000 GT class A by construction except
  // the occasional small general-cargo draw.
  EXPECT_GE(commercial, 9);
  EXPECT_LE(commercial, 12);
}

TEST(FleetSimulatorTest, ReportsReferenceKnownVessels) {
  const SimulationOutput out = FleetSimulator(SmallConfig()).Run();
  std::set<ais::Mmsi> fleet_mmsis;
  for (const auto& vessel : out.fleet) fleet_mmsis.insert(vessel.mmsi);
  ASSERT_FALSE(out.reports.empty());
  for (size_t i = 0; i < out.reports.size(); i += 131) {
    EXPECT_TRUE(fleet_mmsis.count(out.reports[i].mmsi));
  }
}

TEST(FleetSimulatorTest, TimestampsWithinWindow) {
  const FleetConfig config = SmallConfig();
  const SimulationOutput out = FleetSimulator(config).Run();
  for (const auto& report : out.reports) {
    EXPECT_GE(report.timestamp, config.start_time);
    EXPECT_LT(report.timestamp, config.end_time + kSecondsPerDay);
  }
}

TEST(FleetSimulatorTest, MostReportsAreValid) {
  const SimulationOutput out = FleetSimulator(SmallConfig()).Run();
  size_t valid = 0;
  for (const auto& report : out.reports) {
    if (ais::ValidatePositionReport(report).ok()) ++valid;
  }
  // Corruption rates are below 1%; the overwhelming majority validates.
  EXPECT_GT(static_cast<double>(valid),
            0.97 * static_cast<double>(out.reports.size()));
  // But some corruption was injected.
  EXPECT_GT(out.injected_corrupt, 0u);
  EXPECT_LT(valid, out.reports.size());
}

TEST(FleetSimulatorTest, VoyagesAreInternallyConsistent) {
  const FleetConfig config = SmallConfig();
  const SimulationOutput out = FleetSimulator(config).Run();
  ASSERT_FALSE(out.voyages.empty());
  for (const VoyageTruth& voyage : out.voyages) {
    EXPECT_NE(voyage.origin, kNoPort);
    EXPECT_NE(voyage.destination, kNoPort);
    EXPECT_NE(voyage.origin, voyage.destination);
    EXPECT_GT(voyage.arrival, voyage.departure);
    EXPECT_GT(voyage.distance_km, 0.0);
    // Implied average speed is physically sensible for merchant ships.
    const double hours =
        static_cast<double>(voyage.arrival - voyage.departure) / 3600.0;
    const double knots =
        voyage.distance_km / geo::kKmPerNauticalMile / hours;
    EXPECT_GT(knots, 1.5);  // Anchorage waits can stretch short voyages.
    EXPECT_LT(knots, 28.0);
  }
}

TEST(FleetSimulatorTest, VoyageReportsStayNearRoute) {
  // Sailing reports of one vessel must lie between consecutive port
  // calls; crudely check that reports of a voyage are within the
  // bounding region of origin/destination expanded by 3000 km.
  FleetConfig config = SmallConfig();
  config.commercial_vessels = 4;
  config.noncommercial_vessels = 0;
  const SimulationOutput out = FleetSimulator(config).Run();
  ASSERT_FALSE(out.voyages.empty());
  const VoyageTruth& voyage = out.voyages.front();
  const PortDatabase& ports = PortDatabase::Global();
  const Port& origin = **ports.Find(voyage.origin);
  const Port& dest = **ports.Find(voyage.destination);
  const double span =
      geo::HaversineKm(origin.position, dest.position) + 3000.0;
  for (const auto& report : out.reports) {
    if (report.mmsi != voyage.mmsi) continue;
    if (report.timestamp < voyage.departure ||
        report.timestamp > voyage.arrival) {
      continue;
    }
    if (!ais::ValidatePositionReport(report).ok()) continue;
    const geo::LatLng pos{report.lat_deg, report.lng_deg};
    EXPECT_LT(geo::HaversineKm(pos, origin.position), span)
        << "report far off the voyage";
  }
}

TEST(FleetSimulatorTest, NoncommercialTrafficStaysLocal) {
  FleetConfig config = SmallConfig();
  config.commercial_vessels = 0;
  config.noncommercial_vessels = 6;
  config.position_jump_rate = 0.0;
  config.corrupt_field_rate = 0.0;
  const SimulationOutput out = FleetSimulator(config).Run();
  ASSERT_FALSE(out.reports.empty());
  // Each vessel's reports must fit inside a ~220 km disc (80 km roaming
  // range plus walk overshoot).
  std::map<ais::Mmsi, geo::LatLng> first_position;
  for (const auto& report : out.reports) {
    const geo::LatLng pos{report.lat_deg, report.lng_deg};
    const auto [it, inserted] =
        first_position.insert({report.mmsi, pos});
    if (!inserted) {
      EXPECT_LT(geo::HaversineKm(it->second, pos), 400.0);
    }
  }
}

TEST(FleetSimulatorTest, InjectionCountersTrackConfig) {
  FleetConfig config = SmallConfig();
  config.corrupt_field_rate = 0.0;
  config.duplicate_rate = 0.0;
  config.position_jump_rate = 0.0;
  config.late_delivery_rate = 0.0;
  const SimulationOutput clean = FleetSimulator(config).Run();
  EXPECT_EQ(clean.injected_corrupt, 0u);
  EXPECT_EQ(clean.injected_duplicates, 0u);
  EXPECT_EQ(clean.injected_jumps, 0u);
  EXPECT_EQ(clean.injected_late, 0u);
  for (const auto& report : clean.reports) {
    EXPECT_TRUE(ais::ValidatePositionReport(report).ok());
  }

  const SimulationOutput dirty = FleetSimulator(SmallConfig()).Run();
  EXPECT_GT(dirty.injected_corrupt + dirty.injected_duplicates +
                dirty.injected_jumps + dirty.injected_late,
            0u);
}

TEST(FleetSimulatorTest, PortStaysProduceMooredReports) {
  const SimulationOutput out = FleetSimulator(SmallConfig()).Run();
  size_t moored = 0;
  for (const auto& report : out.reports) {
    if (report.nav_status == ais::NavStatus::kMoored) ++moored;
  }
  EXPECT_GT(moored, 0u);
}

}  // namespace
}  // namespace pol::sim
