#include "sim/routes.h"

#include <gtest/gtest.h>

#include "geo/geodesic.h"

namespace pol::sim {
namespace {

PortId IdOf(const char* name) {
  return (*PortDatabase::Global().FindByName(name))->id;
}

// True when the route passes within `km` of `point`.
bool PassesNear(const std::vector<geo::LatLng>& route,
                const geo::LatLng& point, double km) {
  for (const auto& p : route) {
    if (geo::HaversineKm(p, point) <= km) return true;
  }
  return false;
}

TEST(RouteNetworkTest, RotterdamToSingaporeGoesViaSuez) {
  const auto route =
      RouteNetwork::Global().Route(IdOf("Rotterdam"), IdOf("Singapore"));
  ASSERT_TRUE(route.ok()) << route.status().ToString();
  // Dover, Gibraltar, Suez, Bab el Mandeb, Malacca — the classic lane.
  EXPECT_TRUE(PassesNear(*route, {51.0, 1.4}, 200));    // Dover.
  EXPECT_TRUE(PassesNear(*route, {35.95, -5.6}, 200));  // Gibraltar.
  EXPECT_TRUE(PassesNear(*route, {29.9, 32.5}, 250));   // Suez.
  EXPECT_TRUE(PassesNear(*route, {12.5, 43.3}, 250));   // Bab el Mandeb.
  EXPECT_TRUE(PassesNear(*route, {3.2, 100.2}, 300));   // Malacca.
  // And not around the Cape of Good Hope.
  EXPECT_FALSE(PassesNear(*route, {-35.2, 18.3}, 1000));
  // Sea distance a bit above the 8300 nm (~15400 km) of the real lane.
  const double km = RouteNetwork::PolylineLengthKm(*route);
  EXPECT_GT(km, 14000);
  EXPECT_LT(km, 18500);
}

TEST(RouteNetworkTest, ShanghaiToLosAngelesIsTranspacific) {
  const auto route =
      RouteNetwork::Global().Route(IdOf("Shanghai"), IdOf("Los Angeles"));
  ASSERT_TRUE(route.ok());
  const double km = RouteNetwork::PolylineLengthKm(*route);
  // Real lane ~ 10500-12000 km.
  EXPECT_GT(km, 9500);
  EXPECT_LT(km, 14000);
}

TEST(RouteNetworkTest, CoastalHopIsDirect) {
  const auto route =
      RouteNetwork::Global().Route(IdOf("Shanghai"), IdOf("Busan"));
  ASSERT_TRUE(route.ok());
  const double km = RouteNetwork::PolylineLengthKm(*route);
  const double direct = geo::HaversineKm({31.23, 121.60}, {35.08, 128.83});
  EXPECT_LT(km, direct * 1.5);  // No continental detours.
}

TEST(RouteNetworkTest, SantosToRotterdamCrossesAtlantic) {
  const auto route =
      RouteNetwork::Global().Route(IdOf("Santos"), IdOf("Rotterdam"));
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(PassesNear(*route, {-5.0, -34.5}, 800));  // NE Brazil corner.
  const double km = RouteNetwork::PolylineLengthKm(*route);
  EXPECT_GT(km, 9000);
  EXPECT_LT(km, 13500);
}

TEST(RouteNetworkTest, PortHedlandToQingdaoViaIndonesia) {
  const auto route =
      RouteNetwork::Global().Route(IdOf("Port Hedland"), IdOf("Qingdao"));
  ASSERT_TRUE(route.ok());
  const double km = RouteNetwork::PolylineLengthKm(*route);
  // The iron-ore lane is roughly 3600 nm (~6700 km).
  EXPECT_GT(km, 5500);
  EXPECT_LT(km, 9500);
}

TEST(RouteNetworkTest, EveryLargePortPairRoutes) {
  const PortDatabase& db = PortDatabase::Global();
  const RouteNetwork& net = RouteNetwork::Global();
  std::vector<PortId> large;
  for (const Port& port : db.ports()) {
    if (port.size == PortSize::kLarge) large.push_back(port.id);
  }
  ASSERT_GE(large.size(), 20u);
  int failures = 0;
  for (const PortId a : large) {
    for (const PortId b : large) {
      if (a >= b) continue;
      if (!net.Route(a, b).ok()) ++failures;
    }
  }
  EXPECT_EQ(failures, 0);
}

TEST(RouteNetworkTest, RouteEndpointsAreThePorts) {
  const auto route =
      RouteNetwork::Global().Route(IdOf("Rotterdam"), IdOf("Singapore"));
  ASSERT_TRUE(route.ok());
  const Port& rotterdam = **PortDatabase::Global().FindByName("Rotterdam");
  const Port& singapore = **PortDatabase::Global().FindByName("Singapore");
  EXPECT_LT(geo::HaversineKm(route->front(), rotterdam.position), 1.0);
  EXPECT_LT(geo::HaversineKm(route->back(), singapore.position), 1.0);
}

TEST(RouteNetworkTest, RouteIsSymmetricInLength) {
  const RouteNetwork& net = RouteNetwork::Global();
  const auto forward = net.SeaDistanceKm(IdOf("Rotterdam"), IdOf("Santos"));
  const auto backward = net.SeaDistanceKm(IdOf("Santos"), IdOf("Rotterdam"));
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_NEAR(*forward, *backward, 1.0);
}

TEST(RouteNetworkTest, BadInputsFail) {
  const RouteNetwork& net = RouteNetwork::Global();
  EXPECT_FALSE(net.Route(kNoPort, IdOf("Singapore")).ok());
  EXPECT_FALSE(net.Route(IdOf("Singapore"), IdOf("Singapore")).ok());
  EXPECT_FALSE(net.Route(IdOf("Singapore"), 9999).ok());
}

TEST(RouteNetworkTest, DisabledSuezReroutesAroundCape) {
  // Closing the canal leg (the Ever Given scenario) must force the
  // Asia-Europe shortest path around the Cape of Good Hope, thousands of
  // kilometres longer.
  const RouteNetwork closed(&PortDatabase::Global(),
                            {{"port-said-approach", "suez-south"}});
  const auto route = closed.Route(IdOf("Rotterdam"), IdOf("Singapore"));
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(PassesNear(*route, {-35.2, 18.3}, 800));  // The Cape.
  EXPECT_FALSE(PassesNear(*route, {29.9, 32.5}, 400));  // Not Suez.
  const double open_km =
      *RouteNetwork::Global().SeaDistanceKm(IdOf("Rotterdam"),
                                            IdOf("Singapore"));
  const double closed_km = RouteNetwork::PolylineLengthKm(*route);
  EXPECT_GT(closed_km, open_km + 5000.0);  // The +7000 nm of the intro.
}

TEST(RouteNetworkTest, SuezVsCapeDetourRatio) {
  // The motivation example of the paper's introduction: re-routing
  // around the Cape of Good Hope adds >7000 nm for Asia-Europe legs.
  // Our network must reflect that gap: the (shortest) Suez route is far
  // shorter than the Cape leg composed of its two halves.
  const RouteNetwork& net = RouteNetwork::Global();
  const double via_suez =
      *net.SeaDistanceKm(IdOf("Rotterdam"), IdOf("Singapore"));
  const double to_cape =
      *net.SeaDistanceKm(IdOf("Rotterdam"), IdOf("Cape Town"));
  const double cape_on =
      *net.SeaDistanceKm(IdOf("Cape Town"), IdOf("Singapore"));
  EXPECT_GT(to_cape + cape_on, via_suez + 5000.0);
}

}  // namespace
}  // namespace pol::sim
