#include "sim/movement.h"

#include <gtest/gtest.h>

#include "geo/geodesic.h"

namespace pol::sim {
namespace {

TEST(RoutePathTest, LengthMatchesPolyline) {
  const std::vector<geo::LatLng> waypoints = {{0, 0}, {0, 5}, {5, 5}};
  const RoutePath path(waypoints, 20.0);
  const double expected =
      geo::HaversineKm({0, 0}, {0, 5}) + geo::HaversineKm({0, 5}, {5, 5});
  EXPECT_NEAR(path.length_km(), expected, expected * 1e-6);
}

TEST(RoutePathTest, DensifiedToSampleSpacing) {
  const RoutePath path({{0, 0}, {0, 10}}, 15.0);
  const auto& points = path.points();
  ASSERT_GE(points.size(), 70u);  // ~1112 km / 15 km.
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(geo::HaversineKm(points[i - 1], points[i]), 15.1);
  }
}

TEST(RoutePathTest, AtInterpolatesMonotonically) {
  const RoutePath path({{0, 0}, {0, 10}}, 15.0);
  double prev_lng = -1.0;
  for (double d = 0.0; d <= path.length_km(); d += 50.0) {
    geo::LatLng pos;
    double course = 0.0;
    path.At(d, &pos, &course);
    EXPECT_GT(pos.lng_deg, prev_lng);
    prev_lng = pos.lng_deg;
    EXPECT_NEAR(course, 90.0, 1.0);  // Due east along the equator.
  }
}

TEST(RoutePathTest, AtClampsOutOfRange) {
  const RoutePath path({{0, 0}, {0, 10}}, 15.0);
  geo::LatLng start, end;
  path.At(-100.0, &start, nullptr);
  path.At(path.length_km() + 100.0, &end, nullptr);
  EXPECT_NEAR(start.lng_deg, 0.0, 1e-6);
  EXPECT_NEAR(end.lng_deg, 10.0, 1e-6);
}

TEST(RoutePathTest, DistanceAlongIsAccurate) {
  const RoutePath path({{10, 20}, {30, 60}}, 15.0);
  geo::LatLng mid;
  path.At(path.length_km() / 2.0, &mid, nullptr);
  // Distance from the start to the midpoint equals half the length
  // (within polyline discretization error).
  EXPECT_NEAR(geo::HaversineKm({10, 20}, mid), path.length_km() / 2.0,
              path.length_km() * 0.01);
}

TEST(SpeedProfileTest, RampsAtBothEnds) {
  SpeedProfile profile;
  profile.harbour_knots = 6.0;
  profile.cruise_knots = 18.0;
  profile.ramp_km = 40.0;
  const double total = 1000.0;
  EXPECT_NEAR(ProfileSpeedKnots(profile, 0.0, total), 6.0, 1e-9);
  EXPECT_NEAR(ProfileSpeedKnots(profile, 20.0, total), 12.0, 1e-9);
  EXPECT_NEAR(ProfileSpeedKnots(profile, 500.0, total), 18.0, 1e-9);
  EXPECT_NEAR(ProfileSpeedKnots(profile, total - 20.0, total), 12.0, 1e-9);
  EXPECT_NEAR(ProfileSpeedKnots(profile, total, total), 6.0, 1e-9);
}

TEST(SpeedProfileTest, ShortHopsShrinkRamps) {
  SpeedProfile profile;
  profile.harbour_knots = 6.0;
  profile.cruise_knots = 18.0;
  profile.ramp_km = 40.0;
  // A 60 km hop: ramps shrink to 20 km each; cruise is reached briefly.
  EXPECT_NEAR(ProfileSpeedKnots(profile, 30.0, 60.0), 18.0, 1e-9);
  EXPECT_LT(ProfileSpeedKnots(profile, 5.0, 60.0), 18.0);
}

TEST(SpeedProfileTest, DegenerateVoyage) {
  SpeedProfile profile;
  EXPECT_EQ(ProfileSpeedKnots(profile, 0.0, 0.0), profile.harbour_knots);
}

}  // namespace
}  // namespace pol::sim
