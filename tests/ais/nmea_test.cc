#include "ais/nmea.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pol::ais {
namespace {

PositionReport SampleReport() {
  PositionReport r;
  r.mmsi = 244123456;
  r.timestamp = 1651234567;
  r.lat_deg = 51.923456;
  r.lng_deg = 4.123456;
  r.sog_knots = 13.7;
  r.cog_deg = 211.3;
  r.heading_deg = 212.0;
  r.nav_status = NavStatus::kUnderWayUsingEngine;
  r.message_type = 1;
  return r;
}

TEST(ChecksumTest, KnownValue) {
  // XOR of "AIVDM" = 'A'^'I'^'V'^'D'^'M'.
  const uint8_t expected = 'A' ^ 'I' ^ 'V' ^ 'D' ^ 'M';
  EXPECT_EQ(NmeaChecksum("AIVDM"), expected);
}

TEST(EncodeTest, ProducesWellFormedSentence) {
  const auto result = EncodePositionNmea(SampleReport());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string& sentence = *result;
  EXPECT_EQ(sentence.substr(0, 7), "!AIVDM,");
  EXPECT_NE(sentence.find('*'), std::string::npos);
  // A 168-bit payload armours to exactly 28 characters with 0 fill.
  EXPECT_NE(sentence.find(",0*"), std::string::npos);
}

TEST(EncodeTest, RejectsInvalidReport) {
  PositionReport bad = SampleReport();
  bad.lat_deg = 95.0;
  EXPECT_FALSE(EncodePositionNmea(bad).ok());
}

TEST(RoundTripTest, ClassAPositionReport) {
  const PositionReport original = SampleReport();
  const auto encoded = EncodePositionNmea(original);
  ASSERT_TRUE(encoded.ok());
  NmeaDecoder decoder;
  const auto decoded = decoder.Feed(*encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->message_type, 1);
  const PositionReport& r = decoded->position;
  EXPECT_EQ(r.mmsi, original.mmsi);
  EXPECT_EQ(r.message_type, original.message_type);
  EXPECT_EQ(r.nav_status, original.nav_status);
  // Quantization: position to 1/600000 deg, speed to 0.1 kn, course to
  // 0.1 deg, heading to 1 deg.
  EXPECT_NEAR(r.lat_deg, original.lat_deg, 1e-6);
  EXPECT_NEAR(r.lng_deg, original.lng_deg, 1e-6);
  EXPECT_NEAR(r.sog_knots, original.sog_knots, 0.05);
  EXPECT_NEAR(r.cog_deg, original.cog_deg, 0.05);
  EXPECT_NEAR(r.heading_deg, original.heading_deg, 0.5);
  // The wire carries only the UTC second.
  EXPECT_EQ(r.timestamp, original.timestamp % 60);
}

TEST(RoundTripTest, ClassBPositionReport) {
  PositionReport original = SampleReport();
  original.message_type = 18;
  const auto encoded = EncodePositionNmea(original);
  ASSERT_TRUE(encoded.ok());
  NmeaDecoder decoder;
  const auto decoded = decoder.Feed(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->message_type, 18);
  EXPECT_EQ(decoded->position.mmsi, original.mmsi);
  EXPECT_NEAR(decoded->position.lat_deg, original.lat_deg, 1e-6);
  // Class B has no navigational status field.
  EXPECT_EQ(decoded->position.nav_status, NavStatus::kNotDefined);
}

TEST(RoundTripTest, UnavailableKinematics) {
  PositionReport original = SampleReport();
  original.sog_knots = kSogUnavailable;
  original.cog_deg = kCogUnavailable;
  original.heading_deg = kHeadingUnavailable;
  const auto encoded = EncodePositionNmea(original);
  ASSERT_TRUE(encoded.ok());
  NmeaDecoder decoder;
  const auto decoded = decoder.Feed(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->position.sog_knots, kSogUnavailable);
  EXPECT_EQ(decoded->position.cog_deg, kCogUnavailable);
  EXPECT_EQ(decoded->position.heading_deg, kHeadingUnavailable);
}

TEST(RoundTripTest, ExtremeCoordinates) {
  for (const auto& [lat, lng] : std::vector<std::pair<double, double>>{
           {89.999, 179.999}, {-89.999, -179.999}, {0.0, 0.0}}) {
    PositionReport original = SampleReport();
    original.lat_deg = lat;
    original.lng_deg = lng;
    const auto encoded = EncodePositionNmea(original);
    ASSERT_TRUE(encoded.ok());
    NmeaDecoder decoder;
    const auto decoded = decoder.Feed(*encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_NEAR(decoded->position.lat_deg, lat, 1e-6);
    EXPECT_NEAR(decoded->position.lng_deg, lng, 1e-6);
  }
}

TEST(RoundTripTest, RandomizedPositionSweep) {
  Rng rng(2024);
  NmeaDecoder decoder;
  for (int i = 0; i < 500; ++i) {
    PositionReport original;
    original.mmsi = static_cast<Mmsi>(100000000 + rng.NextBelow(899999999));
    original.timestamp = static_cast<UnixSeconds>(rng.NextBelow(2000000000));
    original.lat_deg = rng.Uniform(-90, 90);
    original.lng_deg = rng.Uniform(-180, 180);
    original.sog_knots = rng.Uniform(0, 102.2);
    original.cog_deg = rng.Uniform(0, 359.9);
    original.heading_deg = static_cast<double>(rng.NextBelow(360));
    original.nav_status = static_cast<NavStatus>(rng.NextBelow(9));
    original.message_type = static_cast<uint8_t>(
        rng.Bernoulli(0.8) ? 1 + rng.NextBelow(3) : 18);
    const auto encoded = EncodePositionNmea(original);
    ASSERT_TRUE(encoded.ok()) << i;
    const auto decoded = decoder.Feed(*encoded);
    ASSERT_TRUE(decoded.ok()) << i;
    EXPECT_EQ(decoded->position.mmsi, original.mmsi);
    EXPECT_NEAR(decoded->position.lat_deg, original.lat_deg, 1e-6);
    EXPECT_NEAR(decoded->position.lng_deg, original.lng_deg, 1e-6);
    EXPECT_NEAR(decoded->position.sog_knots, original.sog_knots, 0.051);
    EXPECT_NEAR(decoded->position.cog_deg, original.cog_deg, 0.051);
  }
}

TEST(RoundTripTest, StaticVoyageMultiSentence) {
  StaticVoyageReport original;
  original.mmsi = 311000999;
  original.imo_number = 9321483;
  original.callsign = "C6XS7";
  original.name = "EVER GIVEN";
  original.ship_type_code = 71;
  original.to_bow = 200;
  original.to_stern = 200;
  original.to_port = 29;
  original.to_starboard = 30;
  original.eta_month = 3;
  original.eta_day = 23;
  original.eta_hour = 5;
  original.eta_minute = 30;
  original.draught_m = 15.7;
  original.destination = "ROTTERDAM";

  const auto sentences = EncodeStaticVoyageNmea(original, 3);
  ASSERT_TRUE(sentences.ok());
  ASSERT_GE(sentences->size(), 2u);  // 424 bits never fit one sentence.

  NmeaDecoder decoder;
  for (size_t i = 0; i + 1 < sentences->size(); ++i) {
    const auto partial = decoder.Feed((*sentences)[i]);
    ASSERT_TRUE(partial.ok());
    EXPECT_EQ(partial->message_type, 0);  // Waiting for the rest.
  }
  const auto decoded = decoder.Feed(sentences->back());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->message_type, 5);
  const StaticVoyageReport& r = decoded->static_voyage;
  EXPECT_EQ(r.mmsi, original.mmsi);
  EXPECT_EQ(r.imo_number, original.imo_number);
  EXPECT_EQ(r.callsign, original.callsign);
  EXPECT_EQ(r.name, original.name);
  EXPECT_EQ(r.ship_type_code, original.ship_type_code);
  EXPECT_EQ(r.to_bow, original.to_bow);
  EXPECT_EQ(r.to_starboard, original.to_starboard);
  EXPECT_EQ(r.eta_month, original.eta_month);
  EXPECT_EQ(r.eta_minute, original.eta_minute);
  EXPECT_NEAR(r.draught_m, original.draught_m, 0.05);
  EXPECT_EQ(r.destination, original.destination);
}

TEST(RoundTripTest, MultiSentenceOutOfOrder) {
  StaticVoyageReport original;
  original.mmsi = 311000999;
  original.name = "TEST VESSEL";
  original.destination = "SINGAPORE";
  const auto sentences = EncodeStaticVoyageNmea(original, 1);
  ASSERT_TRUE(sentences.ok());
  ASSERT_EQ(sentences->size(), 2u);
  NmeaDecoder decoder;
  const auto first = decoder.Feed((*sentences)[1]);  // Part 2 first.
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->message_type, 0);
  const auto second = decoder.Feed((*sentences)[0]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->message_type, 5);
  EXPECT_EQ(second->static_voyage.name, original.name);
}

TEST(DecodeTest, RejectsChecksumMismatch) {
  const auto encoded = EncodePositionNmea(SampleReport());
  ASSERT_TRUE(encoded.ok());
  std::string corrupted = *encoded;
  // Flip a payload character (not the checksum digits).
  corrupted[10] = corrupted[10] == '0' ? '1' : '0';
  NmeaDecoder decoder;
  EXPECT_EQ(decoder.Feed(corrupted).status().code(), StatusCode::kCorruption);
}

TEST(DecodeTest, RejectsMalformedFrames) {
  NmeaDecoder decoder;
  EXPECT_FALSE(decoder.Feed("").ok());
  EXPECT_FALSE(decoder.Feed("garbage").ok());
  EXPECT_FALSE(decoder.Feed("!AIVDM,1,1,,A,nopayload").ok());
  EXPECT_FALSE(decoder.Feed("$GPGGA,123519,4807.038,N*47").ok());
}

TEST(DecodeTest, UnsupportedTypesAreCountedNotErrors) {
  // Hand-build a type 9 (SAR aircraft) payload: type bits 001001 ->
  // symbol 9 -> armoured char '9'; pad to a plausible length.
  std::string payload(28, '0');
  payload[0] = '9';
  char body[64];
  std::snprintf(body, sizeof(body), "AIVDM,1,1,,A,%s,0", payload.c_str());
  char sentence[96];
  std::snprintf(sentence, sizeof(sentence), "!%s*%02X", body,
                NmeaChecksum(body));
  NmeaDecoder decoder;
  const auto decoded = decoder.Feed(sentence);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->message_type, 9);
  EXPECT_EQ(decoder.unsupported_count(), 1u);
}

TEST(RoundTripTest, BaseStationReport) {
  BaseStationReport original;
  original.mmsi = 2655437;  // Base stations use 00-prefixed MMSIs...
  original.mmsi = 265543700;  // ...but keep plausibility for the codec.
  original.year = 2022;
  original.month = 7;
  original.day = 15;
  original.hour = 12;
  original.minute = 34;
  original.second = 56;
  original.lat_deg = 57.7;
  original.lng_deg = 11.9;
  const auto sentence = EncodeBaseStationNmea(original);
  ASSERT_TRUE(sentence.ok());
  NmeaDecoder decoder;
  const auto decoded = decoder.Feed(*sentence);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->message_type, 4);
  const BaseStationReport& r = decoded->base_station;
  EXPECT_EQ(r.mmsi, original.mmsi);
  EXPECT_EQ(r.year, 2022);
  EXPECT_EQ(r.month, 7);
  EXPECT_EQ(r.day, 15);
  EXPECT_EQ(r.hour, 12);
  EXPECT_EQ(r.minute, 34);
  EXPECT_EQ(r.second, 56);
  EXPECT_NEAR(r.lat_deg, 57.7, 1e-6);
  EXPECT_NEAR(r.lng_deg, 11.9, 1e-6);
  EXPECT_EQ(decoder.unsupported_count(), 0u);
}

TEST(RoundTripTest, ClassBStaticBothParts) {
  ClassBStaticReport part_a;
  part_a.mmsi = 511000777;
  part_a.part = 0;
  part_a.name = "LITTLE TERN";
  const auto sa = EncodeClassBStaticNmea(part_a);
  ASSERT_TRUE(sa.ok());

  ClassBStaticReport part_b;
  part_b.mmsi = 511000777;
  part_b.part = 1;
  part_b.ship_type_code = 30;  // Fishing.
  part_b.callsign = "ZM1234";
  part_b.to_bow = 8;
  part_b.to_stern = 4;
  part_b.to_port = 2;
  part_b.to_starboard = 2;
  const auto sb = EncodeClassBStaticNmea(part_b);
  ASSERT_TRUE(sb.ok());

  NmeaDecoder decoder;
  const auto da = decoder.Feed(*sa);
  ASSERT_TRUE(da.ok());
  EXPECT_EQ(da->message_type, 24);
  EXPECT_EQ(da->class_b_static.part, 0);
  EXPECT_EQ(da->class_b_static.name, "LITTLE TERN");

  const auto db = decoder.Feed(*sb);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->class_b_static.part, 1);
  EXPECT_EQ(db->class_b_static.ship_type_code, 30);
  EXPECT_EQ(db->class_b_static.callsign, "ZM1234");
  EXPECT_EQ(db->class_b_static.to_bow, 8);
  EXPECT_EQ(db->class_b_static.to_starboard, 2);
}

TEST(RoundTripTest, ExtendedClassBType19) {
  PositionReport pos = SampleReport();
  pos.message_type = 18;  // Will be emitted as 19 regardless.
  ClassBStaticReport statics;
  statics.mmsi = pos.mmsi;
  statics.name = "HARBOUR QUEEN";
  statics.ship_type_code = 60;
  statics.to_bow = 20;
  statics.to_stern = 8;
  statics.to_port = 4;
  statics.to_starboard = 4;
  const auto sentence = EncodeExtendedClassBNmea(pos, statics);
  ASSERT_TRUE(sentence.ok()) << sentence.status().ToString();
  NmeaDecoder decoder;
  const auto decoded = decoder.Feed(*sentence);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->message_type, 19);
  EXPECT_EQ(decoded->position.mmsi, pos.mmsi);
  EXPECT_NEAR(decoded->position.lat_deg, pos.lat_deg, 1e-6);
  EXPECT_NEAR(decoded->position.lng_deg, pos.lng_deg, 1e-6);
  EXPECT_NEAR(decoded->position.sog_knots, pos.sog_knots, 0.051);
  EXPECT_EQ(decoded->class_b_static.name, "HARBOUR QUEEN");
  EXPECT_EQ(decoded->class_b_static.ship_type_code, 60);
  EXPECT_EQ(decoded->class_b_static.to_bow, 20);
  EXPECT_EQ(decoded->class_b_static.to_starboard, 4);
  EXPECT_EQ(decoder.unsupported_count(), 0u);
}

TEST(EncodeTest, ClassBStaticRejectsBadPart) {
  ClassBStaticReport report;
  report.mmsi = 511000777;
  report.part = 2;
  EXPECT_FALSE(EncodeClassBStaticNmea(report).ok());
}

}  // namespace
}  // namespace pol::ais
