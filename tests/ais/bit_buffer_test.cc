#include "ais/bit_buffer.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pol::ais {
namespace {

TEST(SixBitAlphabetTest, RoundTripAllValues) {
  for (uint8_t v = 0; v < 64; ++v) {
    const char c = SixBitToChar(v);
    EXPECT_EQ(CharToSixBit(c), v) << int{v};
  }
}

TEST(SixBitAlphabetTest, KnownMappings) {
  EXPECT_EQ(SixBitToChar(0), '@');
  EXPECT_EQ(SixBitToChar(1), 'A');
  EXPECT_EQ(SixBitToChar(32), ' ');
  EXPECT_EQ(SixBitToChar(48), '0');
  EXPECT_EQ(CharToSixBit('Z'), 26);
  EXPECT_EQ(CharToSixBit('9'), 57);
  EXPECT_EQ(CharToSixBit('a'), 0xff);  // Lowercase is not in the set.
}

TEST(BitWriterTest, WritesBigEndianFields) {
  BitWriter w;
  w.WriteUint(0b101, 3);
  w.WriteUint(0b0011, 4);
  // Bits: 1010011 -> padded to 12 with 5 fill bits: 101001 100000.
  int fill = 0;
  const auto symbols = w.ToSixBitSymbols(&fill);
  ASSERT_EQ(symbols.size(), 2u);
  EXPECT_EQ(fill, 5);
  EXPECT_EQ(symbols[0], 0b101001);
  EXPECT_EQ(symbols[1], 0b100000);
}

TEST(BitRoundTripTest, UnsignedFields) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    BitWriter w;
    std::vector<std::pair<uint64_t, int>> fields;
    for (int i = 0; i < 20; ++i) {
      const int width = 1 + static_cast<int>(rng.NextBelow(30));
      const uint64_t value = rng.NextUint64() & ((1ull << width) - 1);
      fields.push_back({value, width});
      w.WriteUint(value, width);
    }
    int fill = 0;
    const auto symbols = w.ToSixBitSymbols(&fill);
    BitReader r = BitReader::FromSixBitSymbols(symbols, fill);
    for (const auto& [value, width] : fields) {
      bool ok = false;
      EXPECT_EQ(r.ReadUint(width, &ok), value);
      EXPECT_TRUE(ok);
    }
  }
}

TEST(BitRoundTripTest, SignedFields) {
  BitWriter w;
  w.WriteInt(-1, 8);
  w.WriteInt(-128, 8);
  w.WriteInt(127, 8);
  w.WriteInt(-54600000, 27);  // Latitude quantization extreme.
  w.WriteInt(108600000, 28);  // Longitude "unavailable".
  int fill = 0;
  BitReader r = BitReader::FromSixBitSymbols(w.ToSixBitSymbols(&fill), fill);
  bool ok = false;
  EXPECT_EQ(r.ReadInt(8, &ok), -1);
  EXPECT_EQ(r.ReadInt(8, &ok), -128);
  EXPECT_EQ(r.ReadInt(8, &ok), 127);
  EXPECT_EQ(r.ReadInt(27, &ok), -54600000);
  EXPECT_EQ(r.ReadInt(28, &ok), 108600000);
  EXPECT_TRUE(ok);
}

TEST(BitRoundTripTest, Strings) {
  BitWriter w;
  w.WriteString6("EVER GIVEN", 20);
  w.WriteString6("SINGAPORE", 20);
  int fill = 0;
  BitReader r = BitReader::FromSixBitSymbols(w.ToSixBitSymbols(&fill), fill);
  bool ok = false;
  EXPECT_EQ(r.ReadString6(20, &ok), "EVER GIVEN");
  EXPECT_EQ(r.ReadString6(20, &ok), "SINGAPORE");
  EXPECT_TRUE(ok);
}

TEST(BitWriterTest, StringTruncatesAndPads) {
  BitWriter w;
  w.WriteString6("ABCDEFGHIJ", 4);  // Truncates to 4 chars.
  int fill = 0;
  BitReader r = BitReader::FromSixBitSymbols(w.ToSixBitSymbols(&fill), fill);
  bool ok = false;
  EXPECT_EQ(r.ReadString6(4, &ok), "ABCD");
}

TEST(BitWriterTest, UnsupportedCharactersBecomeQuestionMark) {
  BitWriter w;
  w.WriteString6("a", 1);  // Lowercase not representable.
  int fill = 0;
  BitReader r = BitReader::FromSixBitSymbols(w.ToSixBitSymbols(&fill), fill);
  bool ok = false;
  EXPECT_EQ(r.ReadString6(1, &ok), "?");
}

TEST(BitReaderTest, OverrunSetsOkFalse) {
  BitWriter w;
  w.WriteUint(7, 3);
  int fill = 0;
  BitReader r = BitReader::FromSixBitSymbols(w.ToSixBitSymbols(&fill), fill);
  bool ok = true;
  r.ReadUint(3, &ok);
  ASSERT_TRUE(ok);
  r.ReadUint(10, &ok);
  EXPECT_FALSE(ok);
}

TEST(BitReaderTest, RemainingTracksCursor) {
  BitWriter w;
  w.WriteUint(0, 12);
  int fill = 0;
  BitReader r = BitReader::FromSixBitSymbols(w.ToSixBitSymbols(&fill), fill);
  EXPECT_EQ(r.Remaining(), 12);
  bool ok = false;
  r.ReadUint(5, &ok);
  EXPECT_EQ(r.Remaining(), 7);
}

}  // namespace
}  // namespace pol::ais
