// Robustness sweeps for the NMEA decoder: a live AIS feed contains
// garbage, truncations and bit errors; the decoder must never crash and
// must either decode or return a Status for every input.

#include <gtest/gtest.h>

#include <string>

#include "ais/nmea.h"
#include "common/rng.h"

namespace pol::ais {
namespace {

std::string ValidSentence() {
  PositionReport report;
  report.mmsi = 244123456;
  report.timestamp = 1651234567;
  report.lat_deg = 51.92;
  report.lng_deg = 4.12;
  report.sog_knots = 13.7;
  report.cog_deg = 211.3;
  report.heading_deg = 212;
  report.message_type = 1;
  return *EncodePositionNmea(report);
}

TEST(NmeaFuzzTest, SingleCharacterMutationsNeverCrash) {
  const std::string valid = ValidSentence();
  NmeaDecoder decoder;
  int decoded = 0;
  int rejected = 0;
  for (size_t pos = 0; pos < valid.size(); ++pos) {
    for (const char replacement : {'\0', '!', ',', '*', 'z', '~', ' ', '0'}) {
      std::string mutated = valid;
      mutated[pos] = replacement;
      const auto result = decoder.Feed(mutated);
      if (result.ok()) {
        ++decoded;  // Mutation kept the checksum valid (e.g. no-op).
      } else {
        ++rejected;
      }
    }
  }
  // Virtually every mutation breaks the checksum.
  EXPECT_GT(rejected, decoded * 10);
}

TEST(NmeaFuzzTest, TruncationsNeverCrash) {
  const std::string valid = ValidSentence();
  NmeaDecoder decoder;
  for (size_t len = 0; len < valid.size(); ++len) {
    const auto result = decoder.Feed(valid.substr(0, len));
    EXPECT_FALSE(result.ok()) << "prefix of length " << len;
  }
}

TEST(NmeaFuzzTest, RandomBytesNeverCrash) {
  Rng rng(2024);
  NmeaDecoder decoder;
  for (int trial = 0; trial < 5000; ++trial) {
    std::string noise;
    const size_t length = rng.NextBelow(100);
    for (size_t i = 0; i < length; ++i) {
      noise.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    // Must not crash; result may be an error or (vanishingly unlikely) a
    // decode.
    decoder.Feed(noise);
  }
  SUCCEED();
}

TEST(NmeaFuzzTest, RandomPrintableSentencesNeverCrash) {
  Rng rng(77);
  NmeaDecoder decoder;
  for (int trial = 0; trial < 5000; ++trial) {
    std::string s = "!AIVDM,";
    const size_t length = rng.NextBelow(80);
    for (size_t i = 0; i < length; ++i) {
      s.push_back(static_cast<char>(' ' + rng.NextBelow(95)));
    }
    decoder.Feed(s);
  }
  SUCCEED();
}

TEST(NmeaFuzzTest, PayloadBitFlipsDecodeOrReject) {
  // Flip payload characters and FIX the checksum: the decoder then sees
  // a "valid" frame with corrupted field content. It must either decode
  // (fields may be out of protocol range — that is the cleaner's job)
  // or reject with a Status; never crash.
  const std::string valid = ValidSentence();
  const size_t star = valid.rfind('*');
  NmeaDecoder decoder;
  Rng rng(31);
  int processed = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = valid;
    const size_t pos = 14 + rng.NextBelow(star - 15);  // Inside payload.
    mutated[pos] = static_cast<char>('0' + rng.NextBelow(40));
    // Recompute checksum over the body.
    const std::string body = mutated.substr(1, star - 1);
    char checksum[3];
    std::snprintf(checksum, sizeof(checksum), "%02X", NmeaChecksum(body));
    mutated[star + 1] = checksum[0];
    mutated[star + 2] = checksum[1];
    const auto result = decoder.Feed(mutated);
    if (result.ok()) ++processed;
  }
  // With a fixed checksum, most frames now decode.
  EXPECT_GT(processed, 1500);
}

TEST(NmeaFuzzTest, InterleavedMultipartStreamsResolve) {
  // Two multi-sentence messages with different sequence ids interleaved:
  // both must assemble.
  StaticVoyageReport a;
  a.mmsi = 311000111;
  a.name = "ALPHA";
  StaticVoyageReport b;
  b.mmsi = 311000222;
  b.name = "BRAVO";
  const auto sa = *EncodeStaticVoyageNmea(a, 1);
  const auto sb = *EncodeStaticVoyageNmea(b, 2);
  ASSERT_EQ(sa.size(), 2u);
  ASSERT_EQ(sb.size(), 2u);
  NmeaDecoder decoder;
  EXPECT_EQ(decoder.Feed(sa[0])->message_type, 0);
  EXPECT_EQ(decoder.Feed(sb[0])->message_type, 0);
  const auto da = decoder.Feed(sa[1]);
  ASSERT_TRUE(da.ok());
  EXPECT_EQ(da->static_voyage.name, "ALPHA");
  const auto db = decoder.Feed(sb[1]);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->static_voyage.name, "BRAVO");
}

}  // namespace
}  // namespace pol::ais
