// Ingest hardening: every corrupted sentence in the corpus must be
// rejected with the expected status code AND land in the attached
// QuarantineStore as a dead letter — counted per reason, raw sentence
// retained — while the decoder object stays usable for the rest of the
// feed. This is the dead-letter half of the fault-tolerance contract;
// tests/flow/concurrency_stress_test.cc covers the chunk half.

#include "ais/nmea.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/quarantine.h"
#include "common/status.h"

namespace pol::ais {
namespace {

struct CorpusCase {
  // nullopt: the sentence must be accepted (multi-part setup line).
  std::optional<StatusCode> expected_code;
  std::string sentence;
};

void LoadCorpus(std::vector<CorpusCase>* cases) {
  const std::string path =
      std::string(POL_AIS_CORPUS_DIR) + "/corrupt_nmea_corpus.txt";
  std::ifstream file(path);
  ASSERT_TRUE(file.is_open()) << path;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t bar = line.find('|');
    ASSERT_NE(bar, std::string::npos) << line;
    CorpusCase c;
    const std::string code_name = line.substr(0, bar);
    c.sentence = line.substr(bar + 1);
    if (code_name != "None") {
      const std::optional<StatusCode> code = StatusCodeFromName(code_name);
      ASSERT_TRUE(code.has_value()) << code_name;
      c.expected_code = code;
    }
    cases->push_back(std::move(c));
  }
  ASSERT_GE(cases->size(), 10u) << "corpus unexpectedly small";
}

PositionReport SampleReport() {
  PositionReport r;
  r.mmsi = 244123456;
  r.timestamp = 1651234567;
  r.lat_deg = 51.923456;
  r.lng_deg = 4.123456;
  r.sog_knots = 13.7;
  r.cog_deg = 211.3;
  r.heading_deg = 212.0;
  r.nav_status = NavStatus::kUnderWayUsingEngine;
  r.message_type = 1;
  return r;
}

TEST(NmeaQuarantineTest, CorpusSentencesAreDeadLettered) {
  std::vector<CorpusCase> corpus;
  LoadCorpus(&corpus);
  if (::testing::Test::HasFatalFailure()) return;
  QuarantineStore store;
  NmeaDecoder decoder;
  decoder.set_quarantine(&store);

  uint64_t expected_letters = 0;
  for (const CorpusCase& c : corpus) {
    const Result<Decoded> result = decoder.Feed(c.sentence);
    if (!c.expected_code.has_value()) {
      EXPECT_TRUE(result.ok()) << c.sentence;
      continue;
    }
    ++expected_letters;
    ASSERT_FALSE(result.ok()) << c.sentence;
    EXPECT_EQ(result.status().code(), *c.expected_code)
        << c.sentence << " -> " << result.status().ToString();
    EXPECT_EQ(store.total(), expected_letters) << c.sentence;
  }
  EXPECT_EQ(store.CountForSource("ingest.nmea"), expected_letters);
  EXPECT_EQ(decoder.fed_count(), corpus.size());

  // The retained letters carry the raw sentences, in feed order, with
  // 1-based sequence numbers from the decoder.
  const std::vector<DeadLetter> letters = store.Letters();
  ASSERT_EQ(letters.size(), expected_letters);
  size_t letter = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (!corpus[i].expected_code.has_value()) continue;
    EXPECT_EQ(letters[letter].source, "ingest.nmea");
    EXPECT_EQ(letters[letter].payload, corpus[i].sentence);
    EXPECT_EQ(letters[letter].sequence, static_cast<uint64_t>(i + 1));
    ++letter;
  }

  // Counters split by reason: the corpus exercises both codes.
  const auto counters = store.Counters();
  EXPECT_GT(counters.at({"ingest.nmea", StatusCode::kInvalidArgument}), 0u);
  EXPECT_GT(counters.at({"ingest.nmea", StatusCode::kCorruption}), 0u);

  // After all that abuse, a healthy sentence still decodes and records
  // nothing new.
  const auto encoded = EncodePositionNmea(SampleReport());
  ASSERT_TRUE(encoded.ok());
  const Result<Decoded> decoded = decoder.Feed(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->message_type, 1);
  EXPECT_EQ(store.total(), expected_letters);
}

TEST(NmeaQuarantineTest, NoStoreAttachedStillRejects) {
  NmeaDecoder decoder;
  EXPECT_FALSE(decoder.Feed("garbage that is long enough").ok());
}

TEST(NmeaQuarantineTest, DetachStopsRecording) {
  QuarantineStore store;
  NmeaDecoder decoder;
  decoder.set_quarantine(&store);
  EXPECT_FALSE(decoder.Feed("garbage that is long enough").ok());
  EXPECT_EQ(store.total(), 1u);
  decoder.set_quarantine(nullptr);
  EXPECT_FALSE(decoder.Feed("more garbage that is long enough").ok());
  EXPECT_EQ(store.total(), 1u);
}

TEST(NmeaQuarantineTest, RetentionCapBoundsLettersNotCounters) {
  QuarantineStore store(/*max_retained=*/2);
  NmeaDecoder decoder;
  decoder.set_quarantine(&store);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(decoder.Feed("garbage that is long enough").ok());
  }
  EXPECT_EQ(store.total(), 5u);
  EXPECT_EQ(store.Letters().size(), 2u);
  EXPECT_NE(store.CountersToString().find("ingest.nmea"), std::string::npos);
}

}  // namespace
}  // namespace pol::ais
