#include "ais/messages.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pol::ais {
namespace {

PositionReport GoodReport() {
  PositionReport r;
  r.mmsi = 215123456;
  r.timestamp = 1650000000;
  r.lat_deg = 51.9;
  r.lng_deg = 4.1;
  r.sog_knots = 14.2;
  r.cog_deg = 230.5;
  r.heading_deg = 231.0;
  r.nav_status = NavStatus::kUnderWayUsingEngine;
  r.message_type = 1;
  return r;
}

TEST(ValidateTest, AcceptsGoodReport) {
  EXPECT_TRUE(ValidatePositionReport(GoodReport()).ok());
}

TEST(ValidateTest, RejectsBadMmsi) {
  PositionReport r = GoodReport();
  r.mmsi = 0;
  EXPECT_FALSE(ValidatePositionReport(r).ok());
  r.mmsi = 99999999;  // Eight digits.
  EXPECT_FALSE(ValidatePositionReport(r).ok());
}

TEST(ValidateTest, RejectsBadMessageType) {
  PositionReport r = GoodReport();
  r.message_type = 5;
  EXPECT_FALSE(ValidatePositionReport(r).ok());
  r.message_type = 0;
  EXPECT_FALSE(ValidatePositionReport(r).ok());
  for (uint8_t type : {1, 2, 3, 18}) {
    r.message_type = type;
    EXPECT_TRUE(ValidatePositionReport(r).ok()) << int{type};
  }
}

TEST(ValidateTest, RejectsOutOfRangeLatitude) {
  PositionReport r = GoodReport();
  r.lat_deg = 90.0001;
  EXPECT_EQ(ValidatePositionReport(r).code(), StatusCode::kOutOfRange);
  r.lat_deg = -90.0001;
  EXPECT_FALSE(ValidatePositionReport(r).ok());
  r.lat_deg = kLatUnavailable;  // The protocol's "unavailable" 91.
  EXPECT_FALSE(ValidatePositionReport(r).ok());
  r.lat_deg = std::nan("");
  EXPECT_FALSE(ValidatePositionReport(r).ok());
  r.lat_deg = 90.0;
  EXPECT_TRUE(ValidatePositionReport(r).ok());
}

TEST(ValidateTest, RejectsOutOfRangeLongitude) {
  PositionReport r = GoodReport();
  r.lng_deg = 180.0001;
  EXPECT_FALSE(ValidatePositionReport(r).ok());
  r.lng_deg = kLngUnavailable;
  EXPECT_FALSE(ValidatePositionReport(r).ok());
  r.lng_deg = -180.0;
  EXPECT_TRUE(ValidatePositionReport(r).ok());
}

TEST(ValidateTest, SpeedRange) {
  PositionReport r = GoodReport();
  r.sog_knots = -0.1;
  EXPECT_FALSE(ValidatePositionReport(r).ok());
  r.sog_knots = 102.4;
  EXPECT_FALSE(ValidatePositionReport(r).ok());
  r.sog_knots = kSogUnavailable;  // 102.3 "unavailable" is in range.
  EXPECT_TRUE(ValidatePositionReport(r).ok());
  r.sog_knots = 0.0;
  EXPECT_TRUE(ValidatePositionReport(r).ok());
}

TEST(ValidateTest, CourseAndHeadingRanges) {
  PositionReport r = GoodReport();
  r.cog_deg = 360.1;
  EXPECT_FALSE(ValidatePositionReport(r).ok());
  r.cog_deg = kCogUnavailable;
  EXPECT_TRUE(ValidatePositionReport(r).ok());
  r.cog_deg = 10;
  r.heading_deg = 360.0;  // Only 0..359 and 511 are legal.
  EXPECT_FALSE(ValidatePositionReport(r).ok());
  r.heading_deg = kHeadingUnavailable;
  EXPECT_TRUE(ValidatePositionReport(r).ok());
}

TEST(ValidateTest, RejectsNegativeTimestamp) {
  PositionReport r = GoodReport();
  r.timestamp = -1;
  EXPECT_FALSE(ValidatePositionReport(r).ok());
}

TEST(KinematicsTest, FullKinematicsDetection) {
  PositionReport r = GoodReport();
  EXPECT_TRUE(HasFullKinematics(r));
  r.sog_knots = kSogUnavailable;
  EXPECT_FALSE(HasFullKinematics(r));
  r = GoodReport();
  r.cog_deg = kCogUnavailable;
  EXPECT_FALSE(HasFullKinematics(r));
  r = GoodReport();
  r.heading_deg = kHeadingUnavailable;
  EXPECT_FALSE(HasFullKinematics(r));
}

TEST(MmsiTest, PlausibilityBounds) {
  EXPECT_TRUE(IsPlausibleMmsi(100000000));
  EXPECT_TRUE(IsPlausibleMmsi(999999999));
  EXPECT_FALSE(IsPlausibleMmsi(99999999));
  EXPECT_FALSE(IsPlausibleMmsi(0));
}

}  // namespace
}  // namespace pol::ais
