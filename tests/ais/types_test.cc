#include "ais/types.h"

#include <gtest/gtest.h>

namespace pol::ais {
namespace {

TEST(TypesTest, SegmentFromShipTypeCode) {
  EXPECT_EQ(SegmentFromShipTypeCode(30), MarketSegment::kFishing);
  EXPECT_EQ(SegmentFromShipTypeCode(31), MarketSegment::kTugAndService);
  EXPECT_EQ(SegmentFromShipTypeCode(52), MarketSegment::kTugAndService);
  EXPECT_EQ(SegmentFromShipTypeCode(37), MarketSegment::kPleasure);
  EXPECT_EQ(SegmentFromShipTypeCode(60), MarketSegment::kPassenger);
  EXPECT_EQ(SegmentFromShipTypeCode(69), MarketSegment::kPassenger);
  EXPECT_EQ(SegmentFromShipTypeCode(70), MarketSegment::kGeneralCargo);
  EXPECT_EQ(SegmentFromShipTypeCode(79), MarketSegment::kGeneralCargo);
  EXPECT_EQ(SegmentFromShipTypeCode(80), MarketSegment::kTanker);
  EXPECT_EQ(SegmentFromShipTypeCode(89), MarketSegment::kTanker);
  EXPECT_EQ(SegmentFromShipTypeCode(0), MarketSegment::kOther);
  EXPECT_EQ(SegmentFromShipTypeCode(99), MarketSegment::kOther);
}

TEST(TypesTest, SegmentCodeRoundTripIsConsistent) {
  // Encoding a segment to a type code and mapping back must land in a
  // compatible coarse class.
  for (int s = 0; s < kNumMarketSegments; ++s) {
    const MarketSegment segment = static_cast<MarketSegment>(s);
    const uint8_t code = ShipTypeCodeForSegment(segment);
    const MarketSegment coarse = SegmentFromShipTypeCode(code);
    if (segment == MarketSegment::kContainer ||
        segment == MarketSegment::kDryBulk ||
        segment == MarketSegment::kGeneralCargo) {
      EXPECT_EQ(coarse, MarketSegment::kGeneralCargo);
    } else {
      EXPECT_EQ(coarse, segment);
    }
  }
}

TEST(TypesTest, CommercialFleetFilter) {
  VesselInfo vessel;
  vessel.segment = MarketSegment::kContainer;
  vessel.gross_tonnage = 90000;
  vessel.transceiver = TransceiverClass::kClassA;
  EXPECT_TRUE(IsCommercialFleet(vessel));

  // Tonnage at or below 5000 GT is excluded (paper section 3.1.1).
  vessel.gross_tonnage = 5000;
  EXPECT_FALSE(IsCommercialFleet(vessel));
  vessel.gross_tonnage = 5001;
  EXPECT_TRUE(IsCommercialFleet(vessel));

  // Class B is excluded regardless of size.
  vessel.transceiver = TransceiverClass::kClassB;
  EXPECT_FALSE(IsCommercialFleet(vessel));
  vessel.transceiver = TransceiverClass::kClassA;

  // Non-logistics segments are excluded.
  vessel.segment = MarketSegment::kFishing;
  EXPECT_FALSE(IsCommercialFleet(vessel));
  vessel.segment = MarketSegment::kPleasure;
  EXPECT_FALSE(IsCommercialFleet(vessel));
}

TEST(TypesTest, LogisticsSegments) {
  EXPECT_TRUE(IsLogisticsSegment(MarketSegment::kContainer));
  EXPECT_TRUE(IsLogisticsSegment(MarketSegment::kDryBulk));
  EXPECT_TRUE(IsLogisticsSegment(MarketSegment::kTanker));
  EXPECT_TRUE(IsLogisticsSegment(MarketSegment::kGeneralCargo));
  EXPECT_TRUE(IsLogisticsSegment(MarketSegment::kPassenger));
  EXPECT_FALSE(IsLogisticsSegment(MarketSegment::kFishing));
  EXPECT_FALSE(IsLogisticsSegment(MarketSegment::kTugAndService));
  EXPECT_FALSE(IsLogisticsSegment(MarketSegment::kPleasure));
  EXPECT_FALSE(IsLogisticsSegment(MarketSegment::kOther));
}

TEST(TypesTest, NamesAreStable) {
  EXPECT_EQ(MarketSegmentName(MarketSegment::kContainer), "container");
  EXPECT_EQ(MarketSegmentName(MarketSegment::kTanker), "tanker");
  EXPECT_EQ(NavStatusName(NavStatus::kMoored), "moored");
  EXPECT_EQ(NavStatusName(NavStatus::kUnderWayUsingEngine),
            "under way using engine");
}

}  // namespace
}  // namespace pol::ais
