#include "hexgrid/hex_math.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geo/latlng.h"

namespace pol::hex {
namespace {

TEST(AxialRoundTest, LatticePointsRoundToThemselves) {
  for (int64_t i = -5; i <= 5; ++i) {
    for (int64_t j = -5; j <= 5; ++j) {
      const Axial r = AxialRound(static_cast<double>(i), static_cast<double>(j));
      EXPECT_EQ(r.i, i);
      EXPECT_EQ(r.j, j);
    }
  }
}

TEST(AxialRoundTest, RoundingNeverMovesMoreThanOneStep) {
  Rng rng(42);
  for (int n = 0; n < 10000; ++n) {
    const double qi = rng.Uniform(-100, 100);
    const double qj = rng.Uniform(-100, 100);
    const Axial r = AxialRound(qi, qj);
    // The rounded cell's fractional distance must be under 1 hex step.
    const double di = qi - static_cast<double>(r.i);
    const double dj = qj - static_cast<double>(r.j);
    const double cube_dist =
        (std::fabs(di) + std::fabs(dj) + std::fabs(di + dj)) / 2.0;
    EXPECT_LT(cube_dist, 1.0);
  }
}

TEST(AxialDistanceTest, KnownDistances) {
  EXPECT_EQ(AxialDistance({0, 0}, {0, 0}), 0);
  EXPECT_EQ(AxialDistance({0, 0}, {1, 0}), 1);
  EXPECT_EQ(AxialDistance({0, 0}, {1, -1}), 1);
  EXPECT_EQ(AxialDistance({0, 0}, {2, -1}), 2);
  EXPECT_EQ(AxialDistance({0, 0}, {3, 3}), 6);
  EXPECT_EQ(AxialDistance({-2, 1}, {2, -1}), 4);
}

TEST(NeighborOffsetsTest, AllUnitDistance) {
  for (const Axial& offset : NeighborOffsets()) {
    EXPECT_EQ(AxialDistance({0, 0}, offset), 1);
  }
}

TEST(LatticeParamsTest, PlaneAxialRoundTrip) {
  Rng rng(4711);
  for (int res : {0, 3, 6, 7, 12, 15}) {
    const LatticeParams& params = LatticeParams::Get(res);
    for (int n = 0; n < 500; ++n) {
      const double i = rng.Uniform(-1000, 1000);
      const double j = rng.Uniform(-1000, 1000);
      const geo::PlanePoint p = params.AxialToPlane(i, j);
      double qi = 0, qj = 0;
      params.PlaneToAxialFrac(p, &qi, &qj);
      EXPECT_NEAR(qi, i, 1e-9);
      EXPECT_NEAR(qj, j, 1e-9);
    }
  }
}

TEST(LatticeParamsTest, ApertureSevenScaling) {
  for (int res = 0; res < kMaxResolution; ++res) {
    const double ratio = LatticeParams::Get(res).hex_size() /
                         LatticeParams::Get(res + 1).hex_size();
    EXPECT_NEAR(ratio, std::sqrt(7.0), 1e-12);
  }
}

TEST(LatticeParamsTest, NeighborSpacingIsSqrt3TimesSize) {
  const LatticeParams& params = LatticeParams::Get(6);
  const geo::PlanePoint origin = params.AxialToPlane(0, 0);
  for (const Axial& offset : NeighborOffsets()) {
    const geo::PlanePoint n = params.AxialToPlane(
        static_cast<double>(offset.i), static_cast<double>(offset.j));
    const double dist = std::hypot(n.u - origin.u, n.v - origin.v);
    EXPECT_NEAR(dist, std::sqrt(3.0) * params.hex_size(), 1e-12);
  }
}

TEST(LatticeParamsTest, CornersFormRegularHexagon) {
  const LatticeParams& params = LatticeParams::Get(5);
  const auto corners = params.CellCorners({7, -3});
  const geo::PlanePoint center = params.AxialToPlane(7, -3);
  for (int k = 0; k < 6; ++k) {
    const double r = std::hypot(corners[static_cast<size_t>(k)].u - center.u,
                                corners[static_cast<size_t>(k)].v - center.v);
    EXPECT_NEAR(r, params.hex_size(), 1e-12);
    // Consecutive corners are one edge length apart.
    const auto& a = corners[static_cast<size_t>(k)];
    const auto& b = corners[static_cast<size_t>((k + 1) % 6)];
    EXPECT_NEAR(std::hypot(b.u - a.u, b.v - a.v), params.hex_size(), 1e-12);
  }
}

TEST(NumCellsTest, MatchesH3Formula) {
  EXPECT_EQ(NumCells(0), 122u);
  EXPECT_EQ(NumCells(1), 842u);
  EXPECT_EQ(NumCells(6), 2u + 120u * 117649u);  // 14,117,882
  EXPECT_EQ(NumCells(7), 2u + 120u * 823543u);  // 98,825,162
}

TEST(MeanCellAreaTest, MatchesPaperQuotedSizes) {
  // Paper section 3.3.3: resolution 6 and 7 hexagons cover roughly 36 and
  // 5 square kilometres.
  EXPECT_NEAR(MeanCellAreaKm2(6), 36.0, 1.0);
  EXPECT_NEAR(MeanCellAreaKm2(7), 5.16, 0.2);
}

TEST(MeanCellAreaTest, ApertureSevenAreaRatio) {
  for (int res = 0; res < 10; ++res) {
    EXPECT_NEAR(MeanCellAreaKm2(res) / MeanCellAreaKm2(res + 1), 7.0, 0.1);
  }
}

TEST(EdgeLengthTest, DecreasesBySqrt7) {
  for (int res = 0; res < kMaxResolution; ++res) {
    EXPECT_NEAR(EdgeLengthKm(res) / EdgeLengthKm(res + 1), std::sqrt(7.0),
                1e-9);
  }
  // Res 6 edge length should be a few kilometres (H3 quotes ~3.7 km for
  // the average hexagon; ours is calibrated by area so the same order).
  EXPECT_GT(EdgeLengthKm(6), 2.0);
  EXPECT_LT(EdgeLengthKm(6), 6.0);
}

TEST(ApertureRotationTest, MatchesH3Angle) {
  EXPECT_NEAR(ApertureRotationRad() * 180.0 / geo::kPi, 19.1066, 1e-3);
}

}  // namespace
}  // namespace pol::hex
