#include "hexgrid/hexgrid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "geo/geodesic.h"

namespace pol::hex {
namespace {

const geo::LatLng kEnglishChannel{50.2, -0.9};
const geo::LatLng kMalaccaStrait{2.5, 101.0};

TEST(HexGridTest, InvalidInputsReturnInvalidCell) {
  EXPECT_EQ(LatLngToCell({91, 0}, 6), kInvalidCell);
  EXPECT_EQ(LatLngToCell({0, 181}, 6), kInvalidCell);
  EXPECT_EQ(LatLngToCell({0, 0}, -1), kInvalidCell);
  EXPECT_EQ(LatLngToCell({0, 0}, 16), kInvalidCell);
}

TEST(HexGridTest, CellCenterIsNearInputPoint) {
  for (int res : {4, 5, 6, 7}) {
    const CellIndex cell = LatLngToCell(kEnglishChannel, res);
    ASSERT_NE(cell, kInvalidCell);
    const double dist = geo::HaversineKm(kEnglishChannel, CellToLatLng(cell));
    // The centre must be within one circumradius (edge length), with
    // slack for gnomonic distortion.
    EXPECT_LT(dist, EdgeLengthKm(res) * 1.5) << "res " << res;
  }
}

TEST(HexGridTest, ResolutionIsEncoded) {
  EXPECT_EQ(CellResolution(LatLngToCell(kEnglishChannel, 6)), 6);
  EXPECT_EQ(CellResolution(LatLngToCell(kEnglishChannel, 7)), 7);
}

TEST(HexGridTest, DistinctLocationsGetDistinctCells) {
  EXPECT_NE(LatLngToCell(kEnglishChannel, 6), LatLngToCell(kMalaccaStrait, 6));
}

TEST(HexGridTest, NearbyPointsShareACell) {
  // Two points ~100 m apart should almost always share a res-6 cell
  // (~36 km^2); this pair is chosen away from any cell boundary.
  const CellIndex a = LatLngToCell({50.20000, -0.90000}, 6);
  const geo::LatLng center = CellToLatLng(a);
  const CellIndex b =
      LatLngToCell({center.lat_deg + 0.001, center.lng_deg}, 6);
  EXPECT_EQ(a, b);
}

TEST(HexGridTest, BoundaryHasSixVerticesAroundCenter) {
  const CellIndex cell = LatLngToCell(kMalaccaStrait, 6);
  const auto boundary = CellToBoundary(cell);
  ASSERT_EQ(boundary.size(), 6u);
  const geo::LatLng center = CellToLatLng(cell);
  for (const auto& vertex : boundary) {
    const double dist = geo::HaversineKm(center, vertex);
    EXPECT_GT(dist, 0.0);
    EXPECT_LT(dist, EdgeLengthKm(6) * 2.0);
  }
}

TEST(HexGridTest, BoundaryVerticesEquidistantFromCenter) {
  const CellIndex cell = LatLngToCell({35.0, 139.0}, 7);
  const auto boundary = CellToBoundary(cell);
  const geo::LatLng center = CellToLatLng(cell);
  double min_dist = 1e18;
  double max_dist = 0.0;
  for (const auto& vertex : boundary) {
    const double d = geo::HaversineKm(center, vertex);
    min_dist = std::min(min_dist, d);
    max_dist = std::max(max_dist, d);
  }
  // Gnomonic distortion keeps the spread small in a face interior.
  EXPECT_LT(max_dist / min_dist, 1.05);
}

TEST(HexGridTest, SixNeighborsInFaceInterior) {
  const CellIndex cell = LatLngToCell(kMalaccaStrait, 6);
  const auto neighbors = Neighbors(cell);
  EXPECT_EQ(neighbors.size(), 6u);
  for (const CellIndex n : neighbors) {
    EXPECT_NE(n, cell);
    EXPECT_EQ(CellResolution(n), 6);
  }
}

TEST(HexGridTest, NeighborsAreMutual) {
  const CellIndex cell = LatLngToCell(kEnglishChannel, 6);
  for (const CellIndex n : Neighbors(cell)) {
    const auto back = Neighbors(n);
    EXPECT_NE(std::find(back.begin(), back.end(), cell), back.end())
        << CellToString(n) << " does not list " << CellToString(cell);
  }
}

TEST(HexGridTest, NeighborCentersAtLatticeSpacing) {
  const CellIndex cell = LatLngToCell({-33.9, 18.4}, 6);  // Cape Town.
  const geo::LatLng center = CellToLatLng(cell);
  for (const CellIndex n : Neighbors(cell)) {
    const double d = geo::HaversineKm(center, CellToLatLng(n));
    // Center spacing = sqrt(3) * circumradius in the face plane; on the
    // sphere the gnomonic projection shrinks distances by up to
    // cos^2(37.4 deg) ~= 0.63 toward face corners.
    const double expected = std::sqrt(3.0) * EdgeLengthKm(6);
    EXPECT_GT(d, expected * 0.55);
    EXPECT_LT(d, expected * 1.1);
  }
}

TEST(HexGridTest, GridDiskSizes) {
  const CellIndex cell = LatLngToCell(kMalaccaStrait, 6);
  EXPECT_EQ(GridDisk(cell, 0).size(), 1u);
  EXPECT_EQ(GridDisk(cell, 1).size(), 7u);
  EXPECT_EQ(GridDisk(cell, 2).size(), 19u);
  EXPECT_EQ(GridDisk(cell, 3).size(), 37u);  // 1 + 3k(k+1).
}

TEST(HexGridTest, GridRingSizes) {
  const CellIndex cell = LatLngToCell(kMalaccaStrait, 6);
  EXPECT_EQ(GridRing(cell, 0).size(), 1u);
  EXPECT_EQ(GridRing(cell, 1).size(), 6u);
  EXPECT_EQ(GridRing(cell, 2).size(), 12u);
  EXPECT_EQ(GridRing(cell, 3).size(), 18u);
}

TEST(HexGridTest, GridDiskIsUnionOfRings) {
  const CellIndex cell = LatLngToCell(kEnglishChannel, 5);
  std::set<CellIndex> rings;
  for (int k = 0; k <= 3; ++k) {
    for (const CellIndex c : GridRing(cell, k)) rings.insert(c);
  }
  const auto disk = GridDisk(cell, 3);
  EXPECT_EQ(rings.size(), disk.size());
  for (const CellIndex c : disk) EXPECT_TRUE(rings.count(c)) << CellToString(c);
}

TEST(HexGridTest, ParentContainsChildCenter) {
  const CellIndex child = LatLngToCell(kMalaccaStrait, 7);
  const CellIndex parent = CellToParent(child, 6);
  ASSERT_NE(parent, kInvalidCell);
  EXPECT_EQ(CellResolution(parent), 6);
  // The child's centre must re-index into the parent at res 6.
  EXPECT_EQ(LatLngToCell(CellToLatLng(child), 6), parent);
}

TEST(HexGridTest, ParentOfSameResolutionIsSelf) {
  const CellIndex cell = LatLngToCell(kMalaccaStrait, 6);
  EXPECT_EQ(CellToParent(cell, 6), cell);
}

TEST(HexGridTest, ParentRejectsFinerResolution) {
  const CellIndex cell = LatLngToCell(kMalaccaStrait, 6);
  EXPECT_EQ(CellToParent(cell, 7), kInvalidCell);
}

TEST(HexGridTest, ChildrenRoundTripToParent) {
  const CellIndex parent = LatLngToCell(kMalaccaStrait, 5);
  const auto children = CellToChildren(parent, 6);
  // Aperture 7: about seven children (exact count varies cell to cell
  // because containment is by centre, like H3's approximate nesting).
  EXPECT_GE(children.size(), 4u);
  EXPECT_LE(children.size(), 10u);
  for (const CellIndex child : children) {
    EXPECT_EQ(CellToParent(child, 5), parent) << CellToString(child);
  }
}

TEST(HexGridTest, ChildrenAverageSevenPerParent) {
  // The aperture is exactly 7 in aggregate: averaged over many parents
  // the child count must be very close to 7.
  size_t total_children = 0;
  int parents = 0;
  for (double lat = -60; lat <= 60; lat += 17) {
    for (double lng = -170; lng <= 170; lng += 23) {
      const CellIndex parent = LatLngToCell({lat, lng}, 4);
      total_children += CellToChildren(parent, 5).size();
      ++parents;
    }
  }
  const double mean =
      static_cast<double>(total_children) / static_cast<double>(parents);
  EXPECT_NEAR(mean, 7.0, 0.35);
}

TEST(HexGridTest, ChildrenOfSameResolutionIsSelf) {
  const CellIndex cell = LatLngToCell(kMalaccaStrait, 6);
  const auto children = CellToChildren(cell, 6);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0], cell);
}

TEST(HexGridTest, CellsWithinDistanceCoversCircle) {
  const geo::LatLng center{1.26, 103.84};  // Singapore.
  const double radius_km = 20.0;
  const auto cells = CellsWithinDistanceKm(center, radius_km, 7);
  ASSERT_FALSE(cells.empty());
  // Every cell centre within the radius must be present: sample points
  // on a spiral and check their cells are included.
  std::set<CellIndex> cell_set(cells.begin(), cells.end());
  for (double r = 0.0; r < radius_km; r += 2.5) {
    for (double bearing = 0.0; bearing < 360.0; bearing += 45.0) {
      const geo::LatLng p = geo::DestinationPoint(center, bearing, r);
      EXPECT_TRUE(cell_set.count(LatLngToCell(p, 7)))
          << "missing cell at r=" << r << " b=" << bearing;
    }
  }
}

TEST(HexGridTest, CellDistanceMatchesHaversine) {
  const CellIndex a = LatLngToCell(kEnglishChannel, 6);
  const CellIndex b = LatLngToCell(kMalaccaStrait, 6);
  EXPECT_NEAR(CellDistanceKm(a, b),
              geo::HaversineKm(CellToLatLng(a), CellToLatLng(b)), 1e-9);
}

}  // namespace
}  // namespace pol::hex
