#include "hexgrid/cell_index.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hexgrid/icosahedron.h"

namespace pol::hex {
namespace {

TEST(CellIndexTest, PackUnpackRoundTrip) {
  const CellIndex cell = PackCell(6, 12, 103, -25);
  ASSERT_NE(cell, kInvalidCell);
  CellParts parts;
  ASSERT_TRUE(UnpackCell(cell, &parts));
  EXPECT_EQ(parts.res, 6);
  EXPECT_EQ(parts.face, 12);
  EXPECT_EQ(parts.i, 103);
  EXPECT_EQ(parts.j, -25);
}

TEST(CellIndexTest, RandomRoundTrip) {
  Rng rng(555);
  for (int n = 0; n < 5000; ++n) {
    const int res = static_cast<int>(rng.NextBelow(kMaxResolution + 1));
    const int face = static_cast<int>(rng.NextBelow(kNumFaces));
    const int64_t i = rng.UniformInt(-kMaxAxialCoord, kMaxAxialCoord);
    const int64_t j = rng.UniformInt(-kMaxAxialCoord, kMaxAxialCoord);
    const CellIndex cell = PackCell(res, face, i, j);
    ASSERT_NE(cell, kInvalidCell);
    CellParts parts;
    ASSERT_TRUE(UnpackCell(cell, &parts));
    EXPECT_EQ(parts.res, res);
    EXPECT_EQ(parts.face, face);
    EXPECT_EQ(parts.i, i);
    EXPECT_EQ(parts.j, j);
  }
}

TEST(CellIndexTest, OutOfRangeInputsAreInvalid) {
  EXPECT_EQ(PackCell(-1, 0, 0, 0), kInvalidCell);
  EXPECT_EQ(PackCell(16, 0, 0, 0), kInvalidCell);
  EXPECT_EQ(PackCell(0, -1, 0, 0), kInvalidCell);
  EXPECT_EQ(PackCell(0, 20, 0, 0), kInvalidCell);
  EXPECT_EQ(PackCell(0, 0, kMaxAxialCoord + 1, 0), kInvalidCell);
  EXPECT_EQ(PackCell(0, 0, 0, -kMaxAxialCoord - 1), kInvalidCell);
}

TEST(CellIndexTest, ExtremeCoordinatesPack) {
  const CellIndex cell = PackCell(15, 19, kMaxAxialCoord, -kMaxAxialCoord);
  ASSERT_NE(cell, kInvalidCell);
  CellParts parts;
  ASSERT_TRUE(UnpackCell(cell, &parts));
  EXPECT_EQ(parts.i, kMaxAxialCoord);
  EXPECT_EQ(parts.j, -kMaxAxialCoord);
}

TEST(CellIndexTest, InvalidCellIsDetected) {
  EXPECT_FALSE(IsValidCell(kInvalidCell));
  CellParts parts;
  EXPECT_FALSE(UnpackCell(kInvalidCell, &parts));
  EXPECT_EQ(CellResolution(kInvalidCell), -1);
}

TEST(CellIndexTest, ValidCellIsDetected) {
  const CellIndex cell = PackCell(7, 3, 0, 0);
  EXPECT_TRUE(IsValidCell(cell));
  EXPECT_EQ(CellResolution(cell), 7);
}

TEST(CellIndexTest, BadFaceBitsRejected) {
  // Face values 20..31 fit in the bit field but are not real faces.
  const CellIndex forged = (uint64_t{25} << 54) | (uint64_t{3} << 59);
  EXPECT_FALSE(IsValidCell(forged));
}

TEST(CellIndexTest, SortsByResolutionFirst) {
  const CellIndex r5 = PackCell(5, 19, 1000, 1000);
  const CellIndex r6 = PackCell(6, 0, -1000, -1000);
  EXPECT_LT(r5, r6);
}

TEST(CellIndexTest, ToStringFormats) {
  EXPECT_EQ(CellToString(PackCell(6, 12, 103, -25)), "r6:f12:(103,-25)");
  EXPECT_EQ(CellToString(kInvalidCell), "invalid-cell");
}

}  // namespace
}  // namespace pol::hex
