#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "common/rng.h"
#include "geo/geodesic.h"
#include "hexgrid/hexgrid.h"
#include "hexgrid/icosahedron.h"

// Property-based sweeps of the grid invariants across resolutions and
// point distributions (uniform sphere, seam-adjacent, polar).

namespace pol::hex {
namespace {

geo::LatLng RandomSpherePoint(Rng& rng) {
  // Uniform on the sphere: z uniform in [-1,1], lng uniform.
  const double z = rng.Uniform(-1.0, 1.0);
  const double lng = rng.Uniform(-180.0, 180.0);
  return {geo::RadToDeg(std::asin(z)), lng};
}

class GridPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GridPropertyTest, RoundTripExactOnUniformPoints) {
  const int res = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(res));
  for (int n = 0; n < 2000; ++n) {
    const geo::LatLng p = RandomSpherePoint(rng);
    const CellIndex cell = LatLngToCell(p, res);
    ASSERT_NE(cell, kInvalidCell) << p.ToString();
    const CellIndex again = LatLngToCell(CellToLatLng(cell), res);
    EXPECT_EQ(again, cell) << p.ToString() << " cell " << CellToString(cell);
  }
}

TEST_P(GridPropertyTest, AssignmentIsDeterministic) {
  const int res = GetParam();
  Rng rng(2000 + static_cast<uint64_t>(res));
  for (int n = 0; n < 500; ++n) {
    const geo::LatLng p = RandomSpherePoint(rng);
    EXPECT_EQ(LatLngToCell(p, res), LatLngToCell(p, res));
  }
}

TEST_P(GridPropertyTest, CenterWithinOneEdgeLength) {
  const int res = GetParam();
  Rng rng(3000 + static_cast<uint64_t>(res));
  const double limit_km = EdgeLengthKm(res) * 1.6;
  for (int n = 0; n < 1000; ++n) {
    const geo::LatLng p = RandomSpherePoint(rng);
    const CellIndex cell = LatLngToCell(p, res);
    EXPECT_LT(geo::HaversineKm(p, CellToLatLng(cell)), limit_km)
        << p.ToString();
  }
}

TEST_P(GridPropertyTest, SeamPointsStillRoundTrip) {
  const int res = GetParam();
  Rng rng(4000 + static_cast<uint64_t>(res));
  const Icosahedron& ico = Icosahedron::Get();
  // Sample points near face boundaries: midpoints of two face centres,
  // jittered by a couple of cell widths.
  const double jitter_deg = geo::RadToDeg(
      2.0 * LatticeParams::Get(res).hex_size());
  for (int f = 0; f < kNumFaces; ++f) {
    for (int g = f + 1; g < kNumFaces; ++g) {
      // Only face pairs that actually share an edge or vertex; distant
      // pairs have meaningless midpoints (antipodal ones are NaN).
      if (geo::AngleBetween(ico.FaceCenter(f), ico.FaceCenter(g)) > 1.4) {
        continue;
      }
      const geo::Vec3 mid =
          (ico.FaceCenter(f) + ico.FaceCenter(g)).Normalized();
      if (geo::AngleBetween(mid, ico.FaceCenter(f)) >
          ico.FaceCircumradiusRad()) {
        continue;
      }
      for (int n = 0; n < 8; ++n) {
        geo::LatLng p = geo::Vec3ToLatLng(mid);
        p.lat_deg += rng.Uniform(-jitter_deg, jitter_deg);
        p.lng_deg += rng.Uniform(-jitter_deg, jitter_deg);
        p = p.Normalized();
        const CellIndex cell = LatLngToCell(p, res);
        ASSERT_NE(cell, kInvalidCell);
        EXPECT_EQ(LatLngToCell(CellToLatLng(cell), res), cell)
            << p.ToString() << " near faces " << f << "/" << g;
      }
    }
  }
}

TEST_P(GridPropertyTest, PolesAndVerticesAreCovered) {
  const int res = GetParam();
  const Icosahedron& ico = Icosahedron::Get();
  // Poles.
  for (const geo::LatLng p : {geo::LatLng{90, 0}, geo::LatLng{-90, 0}}) {
    const CellIndex cell = LatLngToCell(p, res);
    ASSERT_NE(cell, kInvalidCell);
    EXPECT_EQ(LatLngToCell(CellToLatLng(cell), res), cell);
  }
  // Icosahedron vertices: the worst corners of the projection.
  for (int f = 0; f < kNumFaces; ++f) {
    for (const geo::Vec3& v : ico.FaceVertices(f)) {
      const geo::LatLng p = geo::Vec3ToLatLng(v);
      const CellIndex cell = LatLngToCell(p, res);
      ASSERT_NE(cell, kInvalidCell) << p.ToString();
      EXPECT_EQ(LatLngToCell(CellToLatLng(cell), res), cell) << p.ToString();
    }
  }
}

TEST_P(GridPropertyTest, NeighborsAreMutualEverywhere) {
  const int res = GetParam();
  Rng rng(5000 + static_cast<uint64_t>(res));
  for (int n = 0; n < 60; ++n) {
    const CellIndex cell = LatLngToCell(RandomSpherePoint(rng), res);
    for (const CellIndex nb : Neighbors(cell)) {
      const auto back = Neighbors(nb);
      EXPECT_TRUE(std::find(back.begin(), back.end(), cell) != back.end())
          << CellToString(cell) << " <-> " << CellToString(nb);
    }
  }
}

TEST_P(GridPropertyTest, NeighborCountIsFiveOrSix) {
  const int res = GetParam();
  Rng rng(6000 + static_cast<uint64_t>(res));
  int five_or_less = 0;
  constexpr int kSamples = 300;
  for (int n = 0; n < kSamples; ++n) {
    const CellIndex cell = LatLngToCell(RandomSpherePoint(rng), res);
    const size_t count = Neighbors(cell).size();
    EXPECT_GE(count, 4u) << CellToString(cell);
    EXPECT_LE(count, 6u) << CellToString(cell);
    if (count < 6) ++five_or_less;
  }
  // Seam cells are a vanishing fraction at fine resolutions.
  if (res >= 6) EXPECT_LT(five_or_less, kSamples / 10);
}

TEST_P(GridPropertyTest, ParentChildHierarchyConsistent) {
  const int res = GetParam();
  if (res == 0) return;
  Rng rng(7000 + static_cast<uint64_t>(res));
  for (int n = 0; n < 300; ++n) {
    const geo::LatLng p = RandomSpherePoint(rng);
    const CellIndex child = LatLngToCell(p, res);
    const CellIndex parent = CellToParent(child, res - 1);
    ASSERT_NE(parent, kInvalidCell);
    // The parent centre and child centre must be within one parent edge.
    EXPECT_LT(CellDistanceKm(child, parent), EdgeLengthKm(res - 1) * 1.6);
  }
}

// Exact invariants are guaranteed for res >= 3, where a hexagon is much
// smaller than an icosahedron face (the paper's working range is 5-8).
INSTANTIATE_TEST_SUITE_P(AllResolutions, GridPropertyTest,
                         ::testing::Values(3, 4, 5, 6, 7, 9, 12),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Res" + std::to_string(info.param);
                         });

// Coarse resolutions (0-2): cells are comparable in size to a whole
// icosahedron face, so only the relaxed invariants hold — assignment is
// still a deterministic total function and centres stay within one cell.
class CoarseGridTest : public ::testing::TestWithParam<int> {};

TEST_P(CoarseGridTest, TotalDeterministicAndLocal) {
  const int res = GetParam();
  Rng rng(9000 + static_cast<uint64_t>(res));
  for (int n = 0; n < 1000; ++n) {
    const geo::LatLng p = RandomSpherePoint(rng);
    const CellIndex cell = LatLngToCell(p, res);
    ASSERT_NE(cell, kInvalidCell) << p.ToString();
    EXPECT_EQ(LatLngToCell(p, res), cell);
    EXPECT_LT(geo::HaversineKm(p, CellToLatLng(cell)),
              EdgeLengthKm(res) * 2.0)
        << p.ToString();
    // Round trip may cross to an adjacent ragged cell at these
    // resolutions, but never further than one cell width.
    const CellIndex again = LatLngToCell(CellToLatLng(cell), res);
    EXPECT_LT(CellDistanceKm(cell, again), EdgeLengthKm(res) * 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(CoarseResolutions, CoarseGridTest,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Res" + std::to_string(info.param);
                         });

TEST(GridCoverageTest, EstimatedCellCountMatchesCalibration) {
  // Monte-Carlo estimate of the number of distinct res-3 cells from
  // uniform sampling; compare the implied cell area to the calibrated
  // mean. With 200k samples over 41162 cells the estimate is coarse but
  // catches gross calibration errors.
  Rng rng(99);
  std::set<CellIndex> seen;
  constexpr int kSamples = 200000;
  for (int n = 0; n < kSamples; ++n) {
    seen.insert(LatLngToCell(RandomSpherePoint(rng), 3));
  }
  const double expected = static_cast<double>(NumCells(3));
  // Coupon-collector correction: with s samples and n cells, the
  // expected number seen is n * (1 - exp(-s/n)).
  const double expected_seen =
      expected * (1.0 - std::exp(-kSamples / expected));
  // Tolerance covers Monte-Carlo noise plus the small (~2%) difference
  // between the exact tiling count and the H3 calibration formula.
  EXPECT_NEAR(static_cast<double>(seen.size()), expected_seen,
              expected_seen * 0.06);
}

TEST(GridCoverageTest, CellAreasLocallyUniform) {
  // The paper's requirement: cells in proximity have near-identical
  // size. Compare neighbour centre spacings around random cells.
  Rng rng(123);
  for (int n = 0; n < 50; ++n) {
    const CellIndex cell = LatLngToCell(RandomSpherePoint(rng), 6);
    const geo::LatLng c = CellToLatLng(cell);
    const auto neighbors = Neighbors(cell);
    if (neighbors.size() < 6) continue;  // Skip seam cells.
    double min_d = 1e18;
    double max_d = 0;
    for (const CellIndex nb : neighbors) {
      const double d = geo::HaversineKm(c, CellToLatLng(nb));
      min_d = std::min(min_d, d);
      max_d = std::max(max_d, d);
    }
    EXPECT_LT(max_d / min_d, 1.35) << CellToString(cell);
  }
}

}  // namespace
}  // namespace pol::hex
