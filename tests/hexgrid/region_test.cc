#include "hexgrid/region.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "geo/geodesic.h"
#include "hexgrid/hexgrid.h"

namespace pol::hex {
namespace {

TEST(BoxToCellsTest, CoversEveryInteriorPoint) {
  const auto cells = BoxToCells(50.0, 51.0, 0.0, 2.0, 6);
  ASSERT_FALSE(cells.empty());
  const std::set<CellIndex> cell_set(cells.begin(), cells.end());
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const geo::LatLng p{rng.Uniform(50.05, 50.95), rng.Uniform(0.05, 1.95)};
    EXPECT_TRUE(cell_set.count(LatLngToCell(p, 6))) << p.ToString();
  }
}

TEST(BoxToCellsTest, CellCountMatchesArea) {
  // 1 deg x 2 deg at lat 50: ~111 km x ~143 km ~= 15,900 km^2; res-6
  // cells average 36 km^2, so ~440 interior cells plus a boundary rim.
  const auto cells = BoxToCells(50.0, 51.0, 0.0, 2.0, 6);
  EXPECT_GT(cells.size(), 400u);
  EXPECT_LT(cells.size(), 620u);
}

TEST(BoxToCellsTest, DegenerateBoxesAreEmpty) {
  EXPECT_TRUE(BoxToCells(51.0, 50.0, 0.0, 2.0, 6).empty());
  EXPECT_TRUE(BoxToCells(50.0, 51.0, 2.0, 2.0, 6).empty());
}

TEST(BoxToCellsTest, HighLatitudeBoxesStillCover) {
  const auto cells = BoxToCells(78.0, 79.0, 10.0, 20.0, 5);
  ASSERT_FALSE(cells.empty());
  const std::set<CellIndex> cell_set(cells.begin(), cells.end());
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const geo::LatLng p{rng.Uniform(78.1, 78.9), rng.Uniform(10.5, 19.5)};
    EXPECT_TRUE(cell_set.count(LatLngToCell(p, 5))) << p.ToString();
  }
}

TEST(PointInPolygonTest, Triangle) {
  const std::vector<geo::LatLng> triangle = {{0, 0}, {10, 0}, {0, 10}};
  EXPECT_TRUE(PointInPolygon(triangle, {2, 2}));
  EXPECT_FALSE(PointInPolygon(triangle, {8, 8}));
  EXPECT_FALSE(PointInPolygon(triangle, {-1, 5}));
}

TEST(PointInPolygonTest, ConcavePolygon) {
  // A "U" shape: the notch is outside.
  const std::vector<geo::LatLng> u = {{0, 0}, {0, 10}, {10, 10}, {10, 7},
                                      {3, 7}, {3, 3},  {10, 3},  {10, 0}};
  EXPECT_TRUE(PointInPolygon(u, {1, 5}));    // Bottom bar.
  EXPECT_TRUE(PointInPolygon(u, {5, 8.5}));  // Right arm.
  EXPECT_FALSE(PointInPolygon(u, {6, 5}));   // The notch.
}

TEST(PolygonToCellsTest, MatchesPointInPolygon) {
  const std::vector<geo::LatLng> ring = {{40, -5}, {45, 0}, {42, 6},
                                         {38, 3}};
  const auto cells = PolygonToCells(ring, 5);
  ASSERT_FALSE(cells.empty());
  for (const CellIndex cell : cells) {
    EXPECT_TRUE(PointInPolygon(ring, CellToLatLng(cell)))
        << CellToString(cell);
  }
  // Interior points are covered.
  EXPECT_TRUE(std::count(cells.begin(), cells.end(),
                         LatLngToCell({41.5, 0.5}, 5)));
}

TEST(CompactTest, SevenSiblingsBecomeTheirParent) {
  const CellIndex parent = LatLngToCell({30.0, 120.0}, 5);
  const auto children = CellToChildren(parent, 6);
  ASSERT_GE(children.size(), 4u);
  const auto compacted = CompactCells(children);
  ASSERT_EQ(compacted.size(), 1u);
  EXPECT_EQ(compacted[0], parent);
}

TEST(CompactTest, IncompleteSiblingsStay) {
  const CellIndex parent = LatLngToCell({30.0, 120.0}, 5);
  auto children = CellToChildren(parent, 6);
  ASSERT_GE(children.size(), 4u);
  children.pop_back();  // Remove one sibling.
  const auto compacted = CompactCells(children);
  EXPECT_EQ(compacted.size(), children.size());  // Nothing merged.
}

TEST(CompactTest, CompactUncompactRoundTrip) {
  // A box of res-6 cells: compact then uncompact restores exactly.
  const auto original = BoxToCells(50.0, 51.5, 0.0, 3.0, 6);
  ASSERT_GT(original.size(), 100u);
  const auto compacted = CompactCells(original);
  EXPECT_LT(compacted.size(), original.size());  // Some parents formed.
  const auto restored = UncompactCells(compacted, 6);
  std::vector<CellIndex> sorted = original;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(restored, sorted);
}

TEST(CompactTest, MultiLevelCompaction) {
  // All res-7 descendants of one res-5 cell compact to that single cell.
  const CellIndex grandparent = LatLngToCell({10.0, 10.0}, 5);
  const auto grandchildren = CellToChildren(grandparent, 7);
  ASSERT_GT(grandchildren.size(), 30u);
  const auto compacted = CompactCells(grandchildren);
  ASSERT_EQ(compacted.size(), 1u);
  EXPECT_EQ(compacted[0], grandparent);
}

TEST(CompactTest, EmptyAndSingle) {
  EXPECT_TRUE(CompactCells({}).empty());
  const CellIndex cell = LatLngToCell({0, 0}, 6);
  const auto compacted = CompactCells({cell});
  ASSERT_EQ(compacted.size(), 1u);
  EXPECT_EQ(compacted[0], cell);
}

TEST(UncompactTest, SkipsCellsFinerThanTarget) {
  const CellIndex fine = LatLngToCell({0, 0}, 7);
  EXPECT_TRUE(UncompactCells({fine}, 6).empty());
}

TEST(GridPathTest, ConnectsEndpointsThroughAdjacentCells) {
  const geo::LatLng a{50.2, -0.9};
  const geo::LatLng b{51.0, 1.8};
  const auto path = GridPathCells(a, b, 6);
  ASSERT_GE(path.size(), 5u);
  EXPECT_EQ(path.front(), LatLngToCell(a, 6));
  EXPECT_EQ(path.back(), LatLngToCell(b, 6));
  // No duplicates and consecutive cells are close (within ~2 cells).
  std::set<CellIndex> unique(path.begin(), path.end());
  EXPECT_EQ(unique.size(), path.size());
  for (size_t i = 1; i < path.size(); ++i) {
    EXPECT_LT(CellDistanceKm(path[i - 1], path[i]),
              EdgeLengthKm(6) * 4.0);
  }
}

TEST(GridPathTest, SamePointIsOneCell) {
  const geo::LatLng p{10, 10};
  const auto path = GridPathCells(p, p, 6);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], LatLngToCell(p, 6));
}

TEST(GridPathTest, PathLengthTracksDistance) {
  // Path cell count ~ distance / cell width.
  const geo::LatLng a{0, 0};
  const geo::LatLng b{0, 5};  // ~556 km.
  const auto path = GridPathCells(a, b, 6);
  const double cells_expected = 556.0 / (std::sqrt(3.0) * EdgeLengthKm(6));
  EXPECT_GT(static_cast<double>(path.size()), cells_expected * 0.6);
  EXPECT_LT(static_cast<double>(path.size()), cells_expected * 2.5);
}

}  // namespace
}  // namespace pol::hex
