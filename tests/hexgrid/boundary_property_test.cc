// Boundary consistency properties: a cell's hexagon boundary must agree
// with the point-assignment partition — points just inside map to the
// cell, points just outside map to a neighbour, and edge midpoints map
// to the cell or an adjacent one.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "geo/geodesic.h"
#include "hexgrid/cell_index.h"
#include "hexgrid/hexgrid.h"

namespace pol::hex {
namespace {

geo::LatLng RandomSpherePoint(Rng& rng) {
  const double z = rng.Uniform(-1.0, 1.0);
  return {geo::RadToDeg(std::asin(z)), rng.Uniform(-180.0, 180.0)};
}

// Point at fraction t from the centre toward a target.
geo::LatLng Toward(const geo::LatLng& center, const geo::LatLng& target,
                   double t) {
  return geo::Interpolate(center, target, t);
}

class BoundaryPropertyTest : public ::testing::TestWithParam<int> {};

// True when the cell and all its neighbours live on one icosahedron
// face: away from seams, where the hexagon is the exact partition region.
bool IsFaceInterior(CellIndex cell) {
  CellParts parts;
  if (!UnpackCell(cell, &parts)) return false;
  for (const CellIndex n : Neighbors(cell)) {
    CellParts n_parts;
    if (!UnpackCell(n, &n_parts) || n_parts.face != parts.face) return false;
  }
  return true;
}

TEST_P(BoundaryPropertyTest, InteriorPointsBelongToTheCell) {
  const int res = GetParam();
  Rng rng(100 + static_cast<uint64_t>(res));
  int checked = 0;
  for (int n = 0; n < 200; ++n) {
    const CellIndex cell = LatLngToCell(RandomSpherePoint(rng), res);
    const geo::LatLng center = CellToLatLng(cell);
    const bool interior = IsFaceInterior(cell);
    const auto neighbors = Neighbors(cell);
    for (const geo::LatLng& vertex : CellToBoundary(cell)) {
      // 80% of the way to each corner is safely interior.
      const geo::LatLng inside = Toward(center, vertex, 0.8);
      const CellIndex owner = LatLngToCell(inside, res);
      if (interior) {
        // Exact in face interiors.
        EXPECT_EQ(owner, cell)
            << CellToString(cell) << " inside point " << inside.ToString();
        ++checked;
      } else {
        // Near icosahedron seams the nominal hexagon is ragged (as near
        // H3's pentagons): the point may fall into an adjacent cell.
        EXPECT_TRUE(owner == cell ||
                    std::find(neighbors.begin(), neighbors.end(), owner) !=
                        neighbors.end())
            << CellToString(cell) << " -> " << CellToString(owner);
      }
    }
  }
  EXPECT_GT(checked, 700);  // The vast majority of cells are interior.
}

TEST_P(BoundaryPropertyTest, EdgeMidpointsBelongToCellOrNeighbor) {
  const int res = GetParam();
  Rng rng(200 + static_cast<uint64_t>(res));
  for (int n = 0; n < 100; ++n) {
    const CellIndex cell = LatLngToCell(RandomSpherePoint(rng), res);
    const auto boundary = CellToBoundary(cell);
    const auto neighbors = Neighbors(cell);
    for (size_t k = 0; k < boundary.size(); ++k) {
      const geo::LatLng mid = geo::Interpolate(
          boundary[k], boundary[(k + 1) % boundary.size()], 0.5);
      const CellIndex owner = LatLngToCell(mid, res);
      const bool ok =
          owner == cell ||
          std::find(neighbors.begin(), neighbors.end(), owner) !=
              neighbors.end();
      EXPECT_TRUE(ok) << CellToString(cell) << " edge " << k << " owner "
                      << CellToString(owner);
    }
  }
}

TEST_P(BoundaryPropertyTest, BeyondCornersLandsNearby) {
  // Slightly past a corner the point belongs to the cell or something
  // within one neighbour step of it — never to a distant cell.
  const int res = GetParam();
  Rng rng(300 + static_cast<uint64_t>(res));
  for (int n = 0; n < 100; ++n) {
    const CellIndex cell = LatLngToCell(RandomSpherePoint(rng), res);
    const geo::LatLng center = CellToLatLng(cell);
    for (const geo::LatLng& vertex : CellToBoundary(cell)) {
      const geo::LatLng outside = Toward(center, vertex, 1.15);
      const CellIndex owner = LatLngToCell(outside, res);
      EXPECT_LT(CellDistanceKm(cell, owner), EdgeLengthKm(res) * 4.0)
          << CellToString(cell) << " -> " << CellToString(owner);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WorkingResolutions, BoundaryPropertyTest,
                         ::testing::Values(5, 6, 7, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Res" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pol::hex
