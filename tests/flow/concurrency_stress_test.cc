// Adversarial concurrency stress tests for the flow layer. These exist
// to give ThreadSanitizer real interleavings to bite on (they run in
// the --tsan pass of tools/run_tier1.sh) while still asserting the
// deterministic-output contract under plain builds: many small chunks
// through a StageRunner, nested ParallelFor storms launched from inside
// pool tasks, several runners sharing one pool, and pool teardown with
// work still queued.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "flow/dataset.h"
#include "flow/stage.h"
#include "flow/stage_runner.h"
#include "flow/threadpool.h"
#include "obs/metrics.h"

namespace pol::flow {
namespace {

// Stage that maps v -> v + 1 and accumulates a chain-wide record count
// behind a mutex, mimicking the core stages' guarded Stats structs.
class AddOneStage : public Stage<int, int> {
 public:
  std::string_view name() const override { return "add_one"; }

  Result<Dataset<int>> RunChunk(Dataset<int> input) override {
    Dataset<int> out = input.Map([](const int& v) { return v + 1; });
    const size_t n = out.Count();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      records_ += n;
    }
    return out;
  }

  size_t records() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
  }

 private:
  mutable std::mutex mutex_;  // guards: records_
  size_t records_ = 0;
};

// Stage that drops odd values via a nested ParallelFor over partitions
// (Filter already parallelizes; this adds a second fan-out level).
class KeepEvenStage : public Stage<int, int> {
 public:
  std::string_view name() const override { return "keep_even"; }

  Result<Dataset<int>> RunChunk(Dataset<int> input) override {
    return input.Filter([](const int& v) { return v % 2 == 0; });
  }
};

std::vector<Dataset<int>> MakeChunks(int num_chunks, int values_per_chunk,
                                     ThreadPool* pool) {
  std::vector<Dataset<int>> chunks;
  chunks.reserve(static_cast<size_t>(num_chunks));
  int next = 0;
  for (int c = 0; c < num_chunks; ++c) {
    std::vector<int> data(static_cast<size_t>(values_per_chunk));
    std::iota(data.begin(), data.end(), next);
    next += values_per_chunk;
    chunks.push_back(Dataset<int>::FromVector(std::move(data), 3, pool));
  }
  return chunks;
}

// Folds every chunk through a 2-stage chain and checks that the sink
// sees chunks strictly in order with identical totals regardless of the
// in-flight window.
void RunManyChunks(int max_in_flight, int num_chunks) {
  ThreadPool pool(4);
  auto add_one = std::make_shared<AddOneStage>();
  auto chain = StageChain<int, int>(add_one)
                   .Then<int>(std::make_shared<KeepEvenStage>());
  StageRunner<int, int>::Options options;
  options.max_in_flight = max_in_flight;
  StageRunner<int, int> runner(std::move(chain), &pool, options);

  constexpr int kValuesPerChunk = 40;
  std::vector<size_t> fold_order;
  long total = 0;
  const RunSummary summary =
      runner.Run(MakeChunks(num_chunks, kValuesPerChunk, &pool),
                 [&](size_t chunk, Dataset<int> out) {
                   fold_order.push_back(chunk);
                   for (int v : out.Collect()) total += v;
                   return Status::OK();
                 });

  EXPECT_TRUE(summary.status.ok());
  EXPECT_EQ(summary.chunks_folded, static_cast<size_t>(num_chunks));
  EXPECT_EQ(summary.chunks_quarantined, 0u);
  ASSERT_EQ(fold_order.size(), static_cast<size_t>(num_chunks));
  for (size_t i = 0; i < fold_order.size(); ++i) {
    EXPECT_EQ(fold_order[i], i) << "sink saw chunks out of order";
  }
  // Inputs are 0..N-1; +1 then keep-even keeps exactly the odd inputs
  // shifted up by one: sum of even values in 1..N.
  const long n = static_cast<long>(num_chunks) * kValuesPerChunk;
  long expected = 0;
  for (long v = 1; v <= n; ++v) {
    if (v % 2 == 0) expected += v;
  }
  EXPECT_EQ(total, expected);
  EXPECT_EQ(add_one->records(),
            static_cast<size_t>(num_chunks) * kValuesPerChunk);
}

TEST(ConcurrencyStressTest, StageRunnerManyChunksSequentialWindow) {
  RunManyChunks(/*max_in_flight=*/1, /*num_chunks=*/48);
}

TEST(ConcurrencyStressTest, StageRunnerManyChunksOverlappedWindow) {
  RunManyChunks(/*max_in_flight=*/3, /*num_chunks=*/48);
}

TEST(ConcurrencyStressTest, StageRunnerWindowWiderThanChunkCount) {
  RunManyChunks(/*max_in_flight=*/16, /*num_chunks=*/5);
}

// Stage that fails every attempt on chunks containing `poison`, and the
// first `flaky_attempts` attempts on every other chunk (keyed by the
// chunk's first value). Exercises retry and quarantine paths.
class FaultyStage : public Stage<int, int> {
 public:
  FaultyStage(int poison, int flaky_attempts)
      : poison_(poison), flaky_attempts_(flaky_attempts) {}

  std::string_view name() const override { return "faulty"; }

  Result<Dataset<int>> RunChunk(Dataset<int> input) override {
    const std::vector<int> values = input.Collect();
    for (const int v : values) {
      if (v == poison_) return Status::Corruption("poisoned chunk");
    }
    const int key = values.empty() ? -1 : values.front();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (++attempts_by_key_[key] <= flaky_attempts_) {
        return Status::Internal("transient fault");
      }
    }
    return input;
  }

 private:
  int poison_;
  int flaky_attempts_;
  std::mutex mutex_;  // guards: attempts_by_key_
  std::map<int, int> attempts_by_key_;
};

TEST(ConcurrencyStressTest, TransientFaultsRetrySucceed) {
  // Every chunk fails its first attempt; with three attempts allowed,
  // the run must still fold every chunk in order.
  ThreadPool pool(4);
  constexpr int kChunks = 12;
  auto chain = StageChain<int, int>(
      std::make_shared<FaultyStage>(/*poison=*/-1, /*flaky_attempts=*/1));
  StageRunner<int, int>::Options options;
  options.max_in_flight = 3;
  options.max_attempts = 3;
  StageRunner<int, int> runner(std::move(chain), &pool, options);

  std::vector<size_t> fold_order;
  const RunSummary summary =
      runner.Run(MakeChunks(kChunks, 10, &pool),
                 [&](size_t chunk, Dataset<int>) {
                   fold_order.push_back(chunk);
                   return Status::OK();
                 });
  EXPECT_TRUE(summary.status.ok());
  EXPECT_EQ(summary.chunks_folded, static_cast<size_t>(kChunks));
  EXPECT_EQ(summary.chunks_quarantined, 0u);
  EXPECT_EQ(summary.retries, static_cast<uint64_t>(kChunks));
  ASSERT_EQ(fold_order.size(), static_cast<size_t>(kChunks));
  for (size_t i = 0; i < fold_order.size(); ++i) EXPECT_EQ(fold_order[i], i);
  // Failed attempts land in the stage's failure metrics.
  const std::vector<StageMetrics> metrics = runner.metrics();
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].failures, static_cast<uint64_t>(kChunks));
  EXPECT_EQ(metrics[0].failures_by_reason.at("Internal"),
            static_cast<uint64_t>(kChunks));
}

TEST(ConcurrencyStressTest, PoisonedChunkIsQuarantinedRunContinues) {
  // Chunk values are contiguous: chunk 2 of 10-value chunks holds 25.
  ThreadPool pool(4);
  constexpr int kChunks = 8;
  auto chain = StageChain<int, int>(
      std::make_shared<FaultyStage>(/*poison=*/25, /*flaky_attempts=*/0));
  StageRunner<int, int>::Options options;
  options.max_attempts = 2;
  StageRunner<int, int> runner(std::move(chain), &pool, options);

  std::vector<size_t> fold_order;
  std::vector<size_t> quarantine_order;
  const RunSummary summary = runner.Run(
      MakeChunks(kChunks, 10, &pool),
      [&](size_t chunk, Dataset<int>) {
        fold_order.push_back(chunk);
        return Status::OK();
      },
      /*start_chunk=*/0,
      [&](const ChunkFailure& failure) {
        quarantine_order.push_back(failure.chunk_index);
        EXPECT_EQ(failure.attempts, 2);
        EXPECT_EQ(failure.records, 10u);
        EXPECT_EQ(failure.status.code(), StatusCode::kCorruption);
        // The error names the failing stage.
        EXPECT_NE(failure.status.message().find("faulty"), std::string::npos);
      });
  EXPECT_TRUE(summary.status.ok());
  EXPECT_EQ(summary.chunks_folded, static_cast<size_t>(kChunks - 1));
  EXPECT_EQ(summary.chunks_quarantined, 1u);
  EXPECT_EQ(summary.records_quarantined, 10u);
  ASSERT_EQ(summary.quarantined.size(), 1u);
  EXPECT_EQ(summary.quarantined[0].chunk_index, 2u);
  ASSERT_EQ(quarantine_order.size(), 1u);
  EXPECT_EQ(quarantine_order[0], 2u);
  // Every other chunk folded, in order, with chunk 2 absent.
  ASSERT_EQ(fold_order.size(), static_cast<size_t>(kChunks - 1));
  size_t expected = 0;
  for (const size_t chunk : fold_order) {
    if (expected == 2) ++expected;
    EXPECT_EQ(chunk, expected++);
  }
}

TEST(ConcurrencyStressTest, FailFastAbortsOnExhaustedChunk) {
  ThreadPool pool(4);
  auto chain = StageChain<int, int>(
      std::make_shared<FaultyStage>(/*poison=*/25, /*flaky_attempts=*/0));
  StageRunner<int, int>::Options options;
  options.fail_fast = true;
  StageRunner<int, int> runner(std::move(chain), &pool, options);

  const RunSummary summary = runner.Run(
      MakeChunks(8, 10, &pool),
      [&](size_t, Dataset<int>) { return Status::OK(); });
  EXPECT_FALSE(summary.status.ok());
  EXPECT_EQ(summary.status.code(), StatusCode::kCorruption);
  EXPECT_EQ(summary.chunks_folded, 2u);  // Chunks 0 and 1 precede the bad one.
  EXPECT_EQ(summary.chunks_quarantined, 0u);
}

TEST(ConcurrencyStressTest, SinkErrorAbortsRunAndDrains) {
  ThreadPool pool(4);
  auto chain = StageChain<int, int>(std::make_shared<AddOneStage>())
                   .Then<int>(std::make_shared<KeepEvenStage>());
  StageRunner<int, int>::Options options;
  options.max_in_flight = 4;
  StageRunner<int, int> runner(std::move(chain), &pool, options);

  size_t folds = 0;
  const RunSummary summary =
      runner.Run(MakeChunks(16, 10, &pool), [&](size_t chunk, Dataset<int>) {
        ++folds;
        if (chunk == 3) return Status::IoError("sink refused");
        return Status::OK();
      });
  EXPECT_FALSE(summary.status.ok());
  EXPECT_EQ(summary.status.code(), StatusCode::kIoError);
  EXPECT_EQ(folds, 4u);
  EXPECT_EQ(summary.chunks_folded, 3u);
  // The pool must be fully drained: no task may still reference the
  // finished Run call's stack.
  pool.Wait();
}

TEST(ConcurrencyStressTest, SinkThrowDrainsInFlightTasks) {
  // A throwing sink must not leave pool tasks referencing the destroyed
  // Run frame (slots/mutex/condvar). ASan runs of this test catch the
  // use-after-free the old runner had.
  ThreadPool pool(4);
  auto chain = StageChain<int, int>(std::make_shared<AddOneStage>())
                   .Then<int>(std::make_shared<KeepEvenStage>());
  StageRunner<int, int>::Options options;
  options.max_in_flight = 4;
  StageRunner<int, int> runner(std::move(chain), &pool, options);

  EXPECT_THROW(
      runner.Run(MakeChunks(32, 10, &pool),
                 [&](size_t chunk, Dataset<int>) {
                   if (chunk == 2) throw std::runtime_error("sink exploded");
                   return Status::OK();
                 }),
      std::runtime_error);
  // Submitting more work must find a healthy pool and no stale tasks.
  std::atomic<int> after{0};
  pool.Submit([&after] { after.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(after.load(), 1);
}

TEST(ConcurrencyStressTest, ResumeCursorSkipsAccountedChunks) {
  ThreadPool pool(4);
  auto chain = StageChain<int, int>(std::make_shared<AddOneStage>())
                   .Then<int>(std::make_shared<KeepEvenStage>());
  StageRunner<int, int> runner(std::move(chain), &pool);

  std::vector<size_t> fold_order;
  const RunSummary summary = runner.Run(
      MakeChunks(10, 10, &pool),
      [&](size_t chunk, Dataset<int>) {
        fold_order.push_back(chunk);
        return Status::OK();
      },
      /*start_chunk=*/6);
  EXPECT_TRUE(summary.status.ok());
  EXPECT_EQ(summary.chunks_skipped, 6u);
  EXPECT_EQ(summary.chunks_folded, 4u);
  ASSERT_EQ(fold_order.size(), 4u);
  for (size_t i = 0; i < fold_order.size(); ++i) {
    EXPECT_EQ(fold_order[i], i + 6);
  }
}

TEST(ConcurrencyStressTest, ConcurrentRunnersShareOnePool) {
  // Two independent StageRunners driven from separate threads over the
  // same pool: each must fold its own chunks in its own order.
  ThreadPool pool(4);
  constexpr int kChunks = 16;
  auto drive = [&pool](std::vector<size_t>* order) {
    auto chain = StageChain<int, int>(std::make_shared<AddOneStage>())
                     .Then<int>(std::make_shared<KeepEvenStage>());
    StageRunner<int, int> runner(std::move(chain), &pool);
    runner.Run(MakeChunks(kChunks, 30, &pool),
               [order](size_t chunk, Dataset<int>) {
                 order->push_back(chunk);
                 return Status::OK();
               });
  };
  std::vector<size_t> order_a;
  std::vector<size_t> order_b;
  std::thread a([&] { drive(&order_a); });
  std::thread b([&] { drive(&order_b); });
  a.join();
  b.join();
  ASSERT_EQ(order_a.size(), static_cast<size_t>(kChunks));
  ASSERT_EQ(order_b.size(), static_cast<size_t>(kChunks));
  for (size_t i = 0; i < order_a.size(); ++i) {
    EXPECT_EQ(order_a[i], i);
    EXPECT_EQ(order_b[i], i);
  }
}

TEST(ConcurrencyStressTest, ParallelForStormFromInsidePoolTasks) {
  // Pool tasks each launch their own ParallelFor, which launches
  // another ParallelFor one level down — every fan-out on the same
  // pool. Caller participation must keep all of it live-locked-free,
  // and every (task, i, j) triple must execute exactly once.
  ThreadPool pool(3);
  constexpr int kTasks = 8;
  constexpr size_t kOuter = 6;
  constexpr size_t kInner = 5;
  std::vector<std::atomic<int>> hits(kTasks * kOuter * kInner);
  std::atomic<int> tasks_done{0};
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([&, t] {
      pool.ParallelFor(kOuter, [&, t](size_t i) {
        pool.ParallelFor(kInner, [&, t, i](size_t j) {
          hits[(static_cast<size_t>(t) * kOuter + i) * kInner + j]
              .fetch_add(1);
        });
      });
      tasks_done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(tasks_done.load(), kTasks);
  for (size_t k = 0; k < hits.size(); ++k) {
    ASSERT_EQ(hits[k].load(), 1) << "slot " << k;
  }
}

TEST(ConcurrencyStressTest, TeardownUnderLoad) {
  // Destroying the pool with tasks still queued (no Wait) must drain
  // the queue and join cleanly — every submitted task runs.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&ran] {
        int local = 0;
        for (int k = 0; k < 1000; ++k) local += k % 3;
        ran.fetch_add(local > 0 ? 1 : 0);
      });
    }
    // No Wait: the destructor races the still-draining queue.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ConcurrencyStressTest, StageMetricsCollectorUnderContention) {
  // Many threads hammer one collector across interleaved stages; the
  // snapshot must account for every Record/RecordFailure exactly — this
  // is the accumulator every in-flight chunk shares during a run.
  StageMetricsCollector collector;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  constexpr size_t kStages = 3;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&collector, t] {
      const char* names[kStages] = {"clean", "enrich", "extract"};
      for (int i = 0; i < kPerThread; ++i) {
        const size_t stage = static_cast<size_t>((t + i) % kStages);
        collector.Record(stage, names[stage], /*records_in=*/10,
                         /*records_out=*/8,
                         /*peak_partition=*/static_cast<size_t>(i % 100),
                         /*wall_seconds=*/0.0);
        if (i % 10 == 0) {
          collector.RecordFailure(stage, names[stage], StatusCode::kInternal);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<StageMetrics> metrics = collector.Snapshot();
  ASSERT_EQ(metrics.size(), kStages);
  uint64_t chunks = 0;
  uint64_t failures = 0;
  for (const StageMetrics& m : metrics) {
    chunks += m.chunks;
    failures += m.failures;
    EXPECT_EQ(m.records_in, m.chunks * 10);
    EXPECT_EQ(m.records_out, m.chunks * 8);
    EXPECT_EQ(m.dropped, m.chunks * 2);
    EXPECT_EQ(m.peak_partition, 99u);
    EXPECT_EQ(m.failures_by_reason.at("Internal"), m.failures);
  }
  EXPECT_EQ(chunks, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(failures, uint64_t{kThreads} * (kPerThread / 10));
}

TEST(ConcurrencyStressTest, SharedRegistryMetricsFromPoolTasks) {
  // Pool tasks record into one global-registry counter/histogram pair
  // while ParallelFor storms run; totals must be exact. Under
  // POL_OBS=OFF recording is a no-op and the totals are zero.
  auto& registry = obs::Registry::Global();
  obs::Counter* counter = registry.counter("test.stress.events");
  obs::Histogram* histogram = registry.histogram("test.stress.latency");
  counter->Reset();
  histogram->Reset();
  constexpr int kTasks = 16;
  constexpr size_t kPerTask = 400;
  {
    ThreadPool pool(4);
    for (int t = 0; t < kTasks; ++t) {
      pool.Submit([&pool, counter, histogram] {
        pool.ParallelFor(kPerTask, [counter, histogram](size_t i) {
          counter->Increment();
          histogram->Record(1e-6 * static_cast<double>(i % 32));
        });
      });
    }
    pool.Wait();
  }
  const uint64_t expected = obs::kEnabled ? uint64_t{kTasks} * kPerTask : 0;
  EXPECT_EQ(counter->value(), expected);
  EXPECT_EQ(histogram->count(), expected);
}

TEST(ConcurrencyStressTest, TeardownRacesNestedParallelFor) {
  // Teardown while tasks are mid-ParallelFor: destruction must wait for
  // the in-flight fan-out to finish, not tear the state out from under
  // the helpers.
  std::atomic<int> hits{0};
  {
    ThreadPool pool(4);
    for (int t = 0; t < 6; ++t) {
      pool.Submit([&] {
        pool.ParallelFor(25, [&](size_t) { hits.fetch_add(1); });
      });
    }
  }
  EXPECT_EQ(hits.load(), 6 * 25);
}

}  // namespace
}  // namespace pol::flow
