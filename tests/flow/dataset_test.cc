#include "flow/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <string>

#include "common/rng.h"
#include "stats/welford.h"

namespace pol::flow {
namespace {

std::vector<int> Iota(int n) {
  std::vector<int> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(DatasetTest, FromVectorPreservesAllElements) {
  ThreadPool pool(4);
  const auto ds = Dataset<int>::FromVector(Iota(100), 7, &pool);
  EXPECT_EQ(ds.num_partitions(), 7);
  EXPECT_EQ(ds.Count(), 100u);
  const auto collected = ds.Collect();
  EXPECT_EQ(collected, Iota(100));  // Chunked split keeps global order.
}

TEST(DatasetTest, MorePartitionsThanElements) {
  // Regression: the partition count must be exactly what was asked for,
  // even when it exceeds the element count — the excess partitions are
  // empty, not dropped, so downstream per-partition plumbing (chunk
  // splitting, partition-indexed merges) never sees a surprise shape.
  ThreadPool pool(2);
  const auto ds = Dataset<int>::FromVector({1, 2, 3}, 10, &pool);
  EXPECT_EQ(ds.num_partitions(), 10);
  EXPECT_EQ(ds.Count(), 3u);
  EXPECT_EQ(ds.Collect(), (std::vector<int>{1, 2, 3}));
  size_t non_empty = 0;
  for (int p = 0; p < ds.num_partitions(); ++p) {
    EXPECT_LE(ds.partition(p).size(), 1u) << p;
    non_empty += ds.partition(p).empty() ? 0 : 1;
  }
  EXPECT_EQ(non_empty, 3u);
}

TEST(DatasetTest, FromVectorSplitIsBalanced) {
  // Partition sizes differ by at most one for every (n, p) combination,
  // and the requested partition count always holds.
  ThreadPool pool(2);
  for (const int n : {0, 1, 5, 17, 100}) {
    for (const int p : {1, 2, 3, 7, 16, 101}) {
      const auto ds = Dataset<int>::FromVector(Iota(n), p, &pool);
      ASSERT_EQ(ds.num_partitions(), p) << "n=" << n;
      size_t min_size = SIZE_MAX;
      size_t max_size = 0;
      for (int i = 0; i < p; ++i) {
        min_size = std::min(min_size, ds.partition(i).size());
        max_size = std::max(max_size, ds.partition(i).size());
      }
      EXPECT_LE(max_size - min_size, 1u) << "n=" << n << " p=" << p;
      EXPECT_EQ(ds.Collect(), Iota(n)) << "n=" << n << " p=" << p;
    }
  }
}

TEST(DatasetTest, SplitIntoChunksPreservesPartitionOrder) {
  ThreadPool pool(2);
  for (const int chunks : {1, 2, 3, 5, 7}) {
    auto ds = Dataset<int>::FromVector(Iota(100), 7, &pool);
    const auto split = std::move(ds).SplitIntoChunks(chunks);
    ASSERT_EQ(split.size(), static_cast<size_t>(chunks));
    // Concatenating the chunks' partition lists reproduces the original
    // dataset's partition list, in order.
    std::vector<int> reassembled;
    int total_partitions = 0;
    for (const auto& chunk : split) {
      EXPECT_GE(chunk.num_partitions(), 1);
      const auto collected = chunk.Collect();
      reassembled.insert(reassembled.end(), collected.begin(),
                         collected.end());
      for (int p = 0; p < chunk.num_partitions(); ++p) {
        if (!chunk.partition(p).empty()) ++total_partitions;
      }
    }
    EXPECT_EQ(reassembled, Iota(100)) << chunks;
    EXPECT_EQ(total_partitions, 7) << chunks;
  }
}

TEST(DatasetTest, SplitIntoMoreChunksThanPartitions) {
  ThreadPool pool(2);
  auto ds = Dataset<int>::FromVector(Iota(10), 3, &pool);
  const auto split = std::move(ds).SplitIntoChunks(5);
  ASSERT_EQ(split.size(), 5u);
  size_t total = 0;
  for (const auto& chunk : split) {
    EXPECT_GE(chunk.num_partitions(), 1);  // Placeholder partitions OK.
    total += chunk.Count();
  }
  EXPECT_EQ(total, 10u);
}

TEST(DatasetTest, EmptyDataset) {
  ThreadPool pool(2);
  const auto ds = Dataset<int>::FromVector({}, 4, &pool);
  EXPECT_EQ(ds.Count(), 0u);
  EXPECT_TRUE(ds.Collect().empty());
  EXPECT_EQ(ds.Map([](const int& x) { return x * 2; }).Count(), 0u);
}

TEST(DatasetTest, MapTransformsEveryElement) {
  ThreadPool pool(4);
  const auto ds = Dataset<int>::FromVector(Iota(1000), 8, &pool);
  const auto doubled = ds.Map([](const int& x) { return x * 2; });
  const auto collected = doubled.Collect();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(collected[static_cast<size_t>(i)], 2 * i);
  }
}

TEST(DatasetTest, MapCanChangeType) {
  ThreadPool pool(2);
  const auto ds = Dataset<int>::FromVector({1, 22, 333}, 2, &pool);
  const auto strings =
      ds.Map([](const int& x) { return std::to_string(x); });
  EXPECT_EQ(strings.Collect(),
            (std::vector<std::string>{"1", "22", "333"}));
}

TEST(DatasetTest, FilterKeepsMatching) {
  ThreadPool pool(4);
  const auto ds = Dataset<int>::FromVector(Iota(100), 5, &pool);
  const auto evens = ds.Filter([](const int& x) { return x % 2 == 0; });
  EXPECT_EQ(evens.Count(), 50u);
  for (const int x : evens.Collect()) EXPECT_EQ(x % 2, 0);
}

TEST(DatasetTest, FlatMapExpandsElements) {
  ThreadPool pool(2);
  const auto ds = Dataset<int>::FromVector({1, 2, 3}, 2, &pool);
  const auto repeated = ds.FlatMap([](const int& x) {
    return std::vector<int>(static_cast<size_t>(x), x);
  });
  EXPECT_EQ(repeated.Collect(), (std::vector<int>{1, 2, 2, 3, 3, 3}));
}

TEST(DatasetTest, MapPartitionsSeesWholePartition) {
  ThreadPool pool(2);
  const auto ds = Dataset<int>::FromVector(Iota(10), 2, &pool);
  // Emit one element per partition: its size.
  const auto sizes = ds.MapPartitions([](const std::vector<int>& part) {
    return std::vector<size_t>{part.size()};
  });
  const auto collected = sizes.Collect();
  ASSERT_EQ(collected.size(), 2u);
  EXPECT_EQ(collected[0] + collected[1], 10u);
}

TEST(DatasetTest, PartitionByKeyGroupsEqualKeys) {
  ThreadPool pool(4);
  const auto ds = Dataset<int>::FromVector(Iota(1000), 8, &pool);
  const auto shuffled =
      ds.PartitionByKey([](const int& x) { return x % 13; }, 5);
  EXPECT_EQ(shuffled.Count(), 1000u);
  EXPECT_EQ(shuffled.num_partitions(), 5);
  // Every residue class must live in exactly one partition.
  for (int residue = 0; residue < 13; ++residue) {
    std::set<int> partitions_seen;
    for (int p = 0; p < shuffled.num_partitions(); ++p) {
      for (const int x : shuffled.partition(p)) {
        if (x % 13 == residue) partitions_seen.insert(p);
      }
    }
    EXPECT_EQ(partitions_seen.size(), 1u) << "residue " << residue;
  }
}

TEST(DatasetTest, SortWithinPartitionsOrdersEachPartition) {
  ThreadPool pool(4);
  Rng rng(5);
  std::vector<int> data;
  for (int i = 0; i < 500; ++i) {
    data.push_back(static_cast<int>(rng.NextBelow(10000)));
  }
  const auto ds = Dataset<int>::FromVector(std::move(data), 6, &pool);
  const auto sorted = ds.SortWithinPartitions(std::less<int>());
  for (int p = 0; p < sorted.num_partitions(); ++p) {
    const auto& part = sorted.partition(p);
    EXPECT_TRUE(std::is_sorted(part.begin(), part.end())) << p;
  }
  EXPECT_EQ(sorted.Count(), 500u);
}

TEST(DatasetTest, UnionConcatenatesPartitions) {
  ThreadPool pool(2);
  const auto a = Dataset<int>::FromVector({1, 2, 3}, 2, &pool);
  const auto b = Dataset<int>::FromVector({4, 5}, 1, &pool);
  const auto u = a.Union(b);
  EXPECT_EQ(u.num_partitions(), 3);
  EXPECT_EQ(u.Collect(), (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(DatasetTest, CoalescePreservesOrder) {
  ThreadPool pool(2);
  const auto ds = Dataset<int>::FromVector(Iota(100), 10, &pool);
  const auto coalesced = ds.Coalesce(3);
  EXPECT_EQ(coalesced.num_partitions(), 3);
  EXPECT_EQ(coalesced.Collect(), Iota(100));
  // Coalescing beyond the current count is a no-op on the data.
  const auto widened = ds.Coalesce(64);
  EXPECT_EQ(widened.num_partitions(), 10);
  EXPECT_EQ(widened.Collect(), Iota(100));
  // Down to one partition.
  const auto single = ds.Coalesce(1);
  EXPECT_EQ(single.num_partitions(), 1);
  EXPECT_EQ(single.Collect(), Iota(100));
}

TEST(DatasetTest, AggregateByKeySumsCorrectly) {
  ThreadPool pool(4);
  const auto ds = Dataset<int>::FromVector(Iota(1000), 8, &pool);
  const auto sums = ds.AggregateByKey(
      [](const int& x) { return x % 10; }, []() { return int64_t{0}; },
      [](int64_t& acc, const int& x) { acc += x; },
      [](int64_t& acc, int64_t&& other) { acc += other; });
  ASSERT_EQ(sums.size(), 10u);
  // Sum of k, k+10, ..., k+990 = 100k + 10*(0+10+...+990)/10.
  for (int k = 0; k < 10; ++k) {
    int64_t expected = 0;
    for (int x = k; x < 1000; x += 10) expected += x;
    EXPECT_EQ(sums.at(k), expected) << k;
  }
}

TEST(DatasetTest, AggregateByKeyWithSketchAccumulator) {
  ThreadPool pool(4);
  Rng rng(17);
  std::vector<std::pair<int, double>> data;
  for (int i = 0; i < 20000; ++i) {
    data.push_back({static_cast<int>(rng.NextBelow(5)),
                    rng.NextGaussian() * 2.0 + 10.0});
  }
  const auto ds =
      Dataset<std::pair<int, double>>::FromVector(std::move(data), 16, &pool);
  const auto stats = ds.AggregateByKey(
      [](const auto& kv) { return kv.first; },
      []() { return stats::Welford(); },
      [](stats::Welford& acc, const auto& kv) { acc.Add(kv.second); },
      [](stats::Welford& acc, stats::Welford&& other) { acc.Merge(other); });
  ASSERT_EQ(stats.size(), 5u);
  size_t total = 0;
  for (const auto& [key, w] : stats) {
    EXPECT_NEAR(w.Mean(), 10.0, 0.2) << key;
    EXPECT_NEAR(w.StdDev(), 2.0, 0.2) << key;
    total += w.count();
  }
  EXPECT_EQ(total, 20000u);
}

TEST(DatasetTest, AggregationIndependentOfPartitioning) {
  // The Spark-contract property: identical results for any partition
  // count and any thread count.
  Rng rng(23);
  std::vector<std::pair<int, double>> data;
  for (int i = 0; i < 5000; ++i) {
    data.push_back({static_cast<int>(rng.NextBelow(7)), rng.Uniform(0, 1)});
  }
  std::vector<std::unordered_map<int, double>> results;
  for (const int partitions : {1, 3, 16}) {
    for (const int threads : {1, 4}) {
      ThreadPool pool(threads);
      const auto ds = Dataset<std::pair<int, double>>::FromVector(
          data, partitions, &pool);
      const auto sums = ds.AggregateByKey(
          [](const auto& kv) { return kv.first; }, []() { return 0.0; },
          [](double& acc, const auto& kv) { acc += kv.second; },
          [](double& acc, double&& other) { acc += other; });
      std::unordered_map<int, double> plain(sums.begin(), sums.end());
      results.push_back(std::move(plain));
    }
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].size(), results[0].size());
    for (const auto& [key, value] : results[0]) {
      // Double addition is associative enough here: per-key partials are
      // merged in ascending partition order, and each key's values are
      // added in a deterministic sequence — but the grouping differs, so
      // allow an ulp-scale tolerance.
      EXPECT_NEAR(results[i].at(key), value, 1e-9) << key;
    }
  }
}

TEST(DatasetTest, ChainedPipeline) {
  // A miniature of the paper's flow: shuffle by key, sort, per-partition
  // scan, aggregate.
  ThreadPool pool(4);
  Rng rng(31);
  struct Ping {
    int vessel;
    int time;
  };
  std::vector<Ping> pings;
  for (int i = 0; i < 3000; ++i) {
    pings.push_back({static_cast<int>(rng.NextBelow(20)),
                     static_cast<int>(rng.NextBelow(100000))});
  }
  const auto by_vessel =
      Dataset<Ping>::FromVector(std::move(pings), 8, &pool)
          .PartitionByKey([](const Ping& p) { return p.vessel; }, 8)
          .SortWithinPartitions([](const Ping& a, const Ping& b) {
            if (a.vessel != b.vessel) return a.vessel < b.vessel;
            return a.time < b.time;
          });
  // Within every partition, each vessel's pings must now be contiguous
  // and time-ordered.
  for (int p = 0; p < by_vessel.num_partitions(); ++p) {
    const auto& part = by_vessel.partition(p);
    for (size_t i = 1; i < part.size(); ++i) {
      if (part[i].vessel == part[i - 1].vessel) {
        EXPECT_LE(part[i - 1].time, part[i].time);
      }
    }
    std::set<int> seen;
    int current = -1;
    for (const Ping& ping : part) {
      if (ping.vessel != current) {
        EXPECT_TRUE(seen.insert(ping.vessel).second)
            << "vessel " << ping.vessel << " not contiguous";
        current = ping.vessel;
      }
    }
  }
  EXPECT_EQ(by_vessel.Count(), 3000u);
}

}  // namespace
}  // namespace pol::flow
