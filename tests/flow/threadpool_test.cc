#include "flow/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

namespace pol::flow {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(10); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  int calls = 0;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForBalancesSkewedWork) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.ParallelFor(64, [&](size_t i) {
    long local = 0;
    // Index 0 is 64x more work than the rest.
    const long reps = (i == 0) ? 640000 : 10000;
    for (long k = 0; k < reps; ++k) local += k % 7;
    total.fetch_add(local > 0 ? 1 : 0);
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, SequentialWaitsCompose) {
  ThreadPool pool(2);
  std::atomic<int> phase1{0};
  std::atomic<int> phase2{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&] { phase1.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(phase1.load(), 10);
  for (int i = 0; i < 10; ++i) pool.Submit([&] { phase2.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(phase2.load(), 10);
}

TEST(ThreadPoolTest, ParallelForFromInsideATask) {
  // The stage runner executes whole stage chains inside pool tasks, and
  // those stages call ParallelFor on the same pool. The caller must
  // participate in its own loop instead of parking on a global wait, or
  // this nests into deadlock.
  ThreadPool pool(2);
  std::atomic<int> inner_hits{0};
  std::atomic<int> outer_done{0};
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&] {
      pool.ParallelFor(50, [&](size_t) { inner_hits.fetch_add(1); });
      outer_done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(outer_done.load(), 4);
  EXPECT_EQ(inner_hits.load(), 200);
}

TEST(ThreadPoolTest, NestedParallelFor) {
  ThreadPool pool(3);
  std::atomic<int> hits{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { hits.fetch_add(1); });
  });
  EXPECT_EQ(hits.load(), 64);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallers) {
  // Independent threads driving ParallelFor on one shared pool: each
  // call must see exactly its own indices, and nobody may block on
  // another caller's work.
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr size_t kN = 200;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kN);
  }
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.ParallelFor(kN, [&, c](size_t i) { hits[c][i].fetch_add(1); });
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[c][i].load(), 1) << "caller " << c << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, SubmitStormFromInsideTasks) {
  // Tasks fanning out more tasks, several levels deep, with a Wait()
  // from the outside racing the expansion.
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::function<void(int)> spawn = [&](int depth) {
    counter.fetch_add(1);
    if (depth == 0) return;
    for (int i = 0; i < 3; ++i) {
      pool.Submit([&spawn, depth] { spawn(depth - 1); });
    }
  };
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&spawn] { spawn(3); });
  }
  pool.Wait();
  // 4 roots, each a 3-ary tree of depth 3: 4 * (1 + 3 + 9 + 27) = 160.
  EXPECT_EQ(counter.load(), 160);
}

TEST(ThreadPoolTest, IsWorkerThreadDistinguishesCallers) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.IsWorkerThread());
  std::atomic<int> inside{-1};
  pool.Submit([&] { inside.store(pool.IsWorkerThread() ? 1 : 0); });
  pool.Wait();
  EXPECT_EQ(inside.load(), 1);
}

#ifndef NDEBUG
TEST(ThreadPoolDeathTest, WaitFromInsideTaskAborts) {
  // Wait() from inside a task would deadlock (the caller counts as
  // active); the POL_DCHECK must turn that into a loud abort instead.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.Submit([&pool] { pool.Wait(); });
        // The destructor drains the queue, so the task runs — and the
        // worker thread hits the precondition check.
      },
      "Wait\\(\\) called from inside a pool task");
}
#endif

TEST(ThreadPoolTest, DestructionDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace pol::flow
