#include "flow/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace pol::flow {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(10); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  int calls = 0;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForBalancesSkewedWork) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.ParallelFor(64, [&](size_t i) {
    long local = 0;
    // Index 0 is 64x more work than the rest.
    const long reps = (i == 0) ? 640000 : 10000;
    for (long k = 0; k < reps; ++k) local += k % 7;
    total.fetch_add(local > 0 ? 1 : 0);
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, SequentialWaitsCompose) {
  ThreadPool pool(2);
  std::atomic<int> phase1{0};
  std::atomic<int> phase2{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&] { phase1.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(phase1.load(), 10);
  for (int i = 0; i < 10; ++i) pool.Submit([&] { phase2.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(phase2.load(), 10);
}

TEST(ThreadPoolTest, DestructionDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace pol::flow
