// ServingInventory + SnapshotStore wiring: publish-on-refresh through
// the durable store, zero-copy cold start via OpenLatest, and the chaos
// path — a publish killed mid-flight, a restart, and OpenLatest
// recovering the byte-identical previous generation while
// store.fallbacks counts the skip. The fail-point scenarios need the
// faults preset (POL_FAILPOINTS) and skip elsewhere.

#include "core/serving_inventory.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/status.h"
#include "core/inventory.h"
#include "core/snapshot_codec.h"
#include "hexgrid/hexgrid.h"
#include "obs/metrics.h"
#include "store/snapshot_store.h"
#include "store/store_metric_names.h"

namespace pol::core {
namespace {

#if defined(POL_FAILPOINTS)
constexpr bool kFailPointsEnabled = true;
#else
constexpr bool kFailPointsEnabled = false;
#endif

constexpr sim::PortId kOrigin = 3;
constexpr sim::PortId kDestination = 21;
constexpr auto kSegment = ais::MarketSegment::kContainer;

// Every generation extends the one corridor with disjoint cells, so
// corridor size witnesses exactly which snapshots were folded in.
Inventory Batch(int generation, int cells) {
  SummaryMap summaries;
  for (int i = 0; i < cells; ++i) {
    const hex::CellIndex cell =
        hex::LatLngToCell({1.0 + 0.2 * generation, 100.0 + 0.4 * i}, 6);
    PipelineRecord r;
    r.mmsi = 215000001;
    r.trip_id = static_cast<uint64_t>(generation * 1000 + i);
    r.origin = kOrigin;
    r.destination = kDestination;
    r.segment = kSegment;
    r.sog_knots = 13;
    r.cog_deg = 90;
    r.heading_deg = 90;
    r.eto_s = 3600;
    r.ata_s = 7200;
    for (const GroupKey& key :
         {KeyCell(cell), KeyCellType(cell, kSegment),
          KeyCellRouteType(cell, kOrigin, kDestination, kSegment)}) {
      summaries.try_emplace(key).first->second.Add(r);
    }
  }
  return Inventory(6, std::move(summaries));
}

size_t Corridor(const InventoryQuery& q) {
  return q.CellsForRoute(kOrigin, kDestination, kSegment).size();
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

uint64_t Fallbacks() {
  return obs::Registry::Global()
      .counter(store::kMetricStoreFallbacks)
      ->value();
}

class ServingStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = (std::filesystem::path(::testing::TempDir()) /
                  ("pol_serve_store_" +
                   std::string(::testing::UnitTest::GetInstance()
                                   ->current_test_info()
                                   ->name())))
                     .string();
    std::filesystem::remove_all(directory_);
  }

  void TearDown() override {
    FailPointRegistry::Global().DisarmAll();
    std::filesystem::remove_all(directory_);
  }

  store::SnapshotStore Store() const {
    store::SnapshotStoreOptions options;
    options.directory = directory_;
    return store::SnapshotStore(options);
  }

  std::string directory_;
};

TEST_F(ServingStoreTest, RefreshPublishesToAttachedStore) {
  store::SnapshotStore store = Store();
  ServingInventory serving(Batch(0, 4));
  serving.AttachDurableStore(&store);
  EXPECT_TRUE(store.ListGenerations().empty());  // Attach alone: no I/O.

  ASSERT_TRUE(serving.Refresh(Batch(1, 4)).ok());
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{1}));
  ASSERT_TRUE(serving.Refresh(Batch(2, 4)).ok());
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{1, 2}));

  // The newest generation serves exactly what the refresh published.
  const Result<std::shared_ptr<const InventorySnapshot>> mapped =
      OpenLatestSnapshot(store);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ((*mapped)->size(), serving.size());
  EXPECT_EQ(Corridor(**mapped), Corridor(serving));
  EXPECT_EQ(Corridor(serving), 12u);  // 3 batches x 4 disjoint cells.
}

TEST_F(ServingStoreTest, ColdStartServesWithoutSealing) {
  {
    store::SnapshotStore store = Store();
    ServingInventory serving(Batch(0, 4));
    serving.AttachDurableStore(&store);
    ASSERT_TRUE(serving.Refresh(Batch(1, 4)).ok());
  }
  // "Restart": a fresh store handle over the same directory.
  store::SnapshotStore restarted = Store();
  uint64_t generation = 0;
  const Result<std::unique_ptr<ServingInventory>> serving =
      ServingInventory::OpenLatest(restarted, &generation);
  ASSERT_TRUE(serving.ok()) << serving.status().ToString();
  EXPECT_EQ(generation, 1u);
  EXPECT_EQ(Corridor(**serving), 8u);
  EXPECT_EQ((*serving)->DistinctCells(), 8u);
  // The cold-started process keeps refreshing and publishing.
  (*serving)->AttachDurableStore(&restarted);
  ASSERT_TRUE((*serving)->Refresh(Batch(2, 4)).ok());
  EXPECT_EQ(restarted.ListGenerations(), (std::vector<uint64_t>{1, 2}));
  // The refresh sealed from the (empty) build side plus the new delta —
  // the documented caveat of the empty-base overload.
  EXPECT_EQ(Corridor(**serving), 4u);
}

TEST_F(ServingStoreTest, ColdStartWithRestoredBaseRefreshesFully) {
  {
    store::SnapshotStore store = Store();
    ServingInventory serving(Batch(0, 4));
    serving.AttachDurableStore(&store);
    ASSERT_TRUE(serving.Refresh(Batch(1, 4)).ok());
  }
  store::SnapshotStore restarted = Store();
  // Restore a build side equivalent to what was folded in, then serve
  // the mapped snapshot over it.
  Inventory base = Batch(0, 4);
  ASSERT_TRUE(base.MergeFrom(Batch(1, 4)).ok());
  const Result<std::unique_ptr<ServingInventory>> serving =
      ServingInventory::OpenLatest(restarted, std::move(base));
  ASSERT_TRUE(serving.ok()) << serving.status().ToString();
  EXPECT_EQ(Corridor(**serving), 8u);
  (*serving)->AttachDurableStore(&restarted);
  ASSERT_TRUE((*serving)->Refresh(Batch(2, 4)).ok());
  EXPECT_EQ(Corridor(**serving), 12u);  // Full history, not just deltas.
}

TEST_F(ServingStoreTest, ColdStartResolutionMismatchFails) {
  {
    store::SnapshotStore store = Store();
    ServingInventory serving(Batch(0, 2));
    serving.AttachDurableStore(&store);
    ASSERT_TRUE(serving.Refresh(Batch(1, 2)).ok());
  }
  store::SnapshotStore restarted = Store();
  const Result<std::unique_ptr<ServingInventory>> serving =
      ServingInventory::OpenLatest(restarted, Inventory(7, SummaryMap{}));
  EXPECT_EQ(serving.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServingStoreTest, EmptyStoreColdStartIsNotFound) {
  const store::SnapshotStore store = Store();
  EXPECT_EQ(ServingInventory::OpenLatest(store).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ServingStoreTest, PublishFailureKeepsReadersOnOldSnapshot) {
  if (!kFailPointsEnabled) {
    GTEST_SKIP() << "fail points compiled out (build with POL_FAILPOINTS)";
  }
  store::SnapshotStore store = Store();
  ServingInventory serving(Batch(0, 4));
  serving.AttachDurableStore(&store);
  ASSERT_TRUE(serving.Refresh(Batch(1, 4)).ok());
  const uint64_t swaps_before = serving.swap_count();

  FailPointSpec spec;
  spec.code = StatusCode::kIoError;
  FailPointRegistry::Global().Arm(store::kFailPointStoreRename, spec);
  const Status refresh = serving.Refresh(Batch(2, 4));
  FailPointRegistry::Global().Disarm(store::kFailPointStoreRename);
  EXPECT_FALSE(refresh.ok());
  // Durability before visibility: no swap happened, readers still see
  // the last durable snapshot, and the store gained no generation.
  EXPECT_EQ(serving.swap_count(), swaps_before);
  EXPECT_EQ(Corridor(serving), 8u);
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{1}));

  // The retry publishes the merged delta plus the new one.
  ASSERT_TRUE(serving.Refresh(Batch(3, 4)).ok());
  EXPECT_EQ(Corridor(serving), 16u);
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{1, 2}));
}

TEST_F(ServingStoreTest, KillDuringPublishRecoversPreviousGeneration) {
  if (!kFailPointsEnabled) {
    GTEST_SKIP() << "fail points compiled out (build with POL_FAILPOINTS)";
  }
  std::string generation_one_bytes;
  {
    store::SnapshotStore store = Store();
    ServingInventory serving(Batch(0, 4));
    serving.AttachDurableStore(&store);
    ASSERT_TRUE(serving.Refresh(Batch(1, 4)).ok());
    generation_one_bytes = FileBytes(store.GenerationPath(1));
    ASSERT_FALSE(generation_one_bytes.empty());

    // The process dies mid-publish: the rename never lands, leaving a
    // torn .tmp next to the good generation.
    FailPointSpec spec;
    spec.code = StatusCode::kIoError;
    FailPointRegistry::Global().Arm(store::kFailPointStoreRename, spec);
    EXPECT_FALSE(serving.Refresh(Batch(2, 4)).ok());
    FailPointRegistry::Global().Disarm(store::kFailPointStoreRename);
    EXPECT_TRUE(
        std::filesystem::exists(store.GenerationPath(2) + ".tmp"));
    // Crashes can also surface a renamed-but-never-synced file as
    // garbage after restart; plant that harder case too.
    std::ofstream torn(store.GenerationPath(2), std::ios::binary);
    torn << "torn write from a dying process";
  }

  // Restart: cold start must fall back past the torn generation 2 and
  // serve generation 1, byte-identical to what was published.
  store::SnapshotStore restarted = Store();
  const uint64_t fallbacks_before = Fallbacks();
  uint64_t generation = 0;
  const Result<std::unique_ptr<ServingInventory>> serving =
      ServingInventory::OpenLatest(restarted, &generation);
  ASSERT_TRUE(serving.ok()) << serving.status().ToString();
  EXPECT_EQ(generation, 1u);
  EXPECT_EQ(Corridor(**serving), 8u);
  if (obs::kEnabled) {
    EXPECT_EQ(Fallbacks(), fallbacks_before + 1);
  }
  std::string served_bytes;
  (*serving)->Acquire()->EncodeTo(&served_bytes);
  EXPECT_EQ(served_bytes, generation_one_bytes);

  // Recovery: the next publish supersedes the torn file and sweeps the
  // stray temp; a further restart serves the new generation cleanly.
  (*serving)->AttachDurableStore(&restarted);
  ASSERT_TRUE((*serving)->Refresh(Batch(3, 4)).ok());
  EXPECT_EQ(restarted.ListGenerations(), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_FALSE(
      std::filesystem::exists(restarted.GenerationPath(2) + ".tmp"));
  uint64_t recovered = 0;
  const Result<std::shared_ptr<const InventorySnapshot>> reopened =
      OpenLatestSnapshot(restarted, &recovered);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(recovered, 3u);
  EXPECT_EQ(Corridor(**reopened), 4u);  // Sealed from empty base + batch 3.
}

}  // namespace
}  // namespace pol::core
