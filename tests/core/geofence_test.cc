#include "core/geofence.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/geodesic.h"

namespace pol::core {
namespace {

TEST(GeofenceTest, DetectsPortCenter) {
  const Geofencer geofencer(&sim::PortDatabase::Global(), 6);
  const sim::Port& rotterdam =
      **sim::PortDatabase::Global().FindByName("Rotterdam");
  EXPECT_EQ(geofencer.PortAt(rotterdam.position), rotterdam.id);
}

TEST(GeofenceTest, OpenOceanIsNoPort) {
  const Geofencer geofencer(&sim::PortDatabase::Global(), 6);
  EXPECT_EQ(geofencer.PortAt({45.0, -35.0}), sim::kNoPort);
  EXPECT_EQ(geofencer.PortAt({-50.0, 100.0}), sim::kNoPort);
}

TEST(GeofenceTest, MatchesExhaustiveLookupEverywhere) {
  // The indexed lookup must agree with brute force on a dense sweep
  // around several ports (inside, near the rim, outside).
  const Geofencer geofencer(&sim::PortDatabase::Global(), 6);
  Rng rng(21);
  for (const char* name : {"Singapore", "Rotterdam", "Shanghai", "Santos"}) {
    const sim::Port& port = **sim::PortDatabase::Global().FindByName(name);
    for (int i = 0; i < 300; ++i) {
      const double bearing = rng.Uniform(0, 360);
      const double distance =
          rng.Uniform(0.0, port.geofence_radius_km * 2.5);
      const geo::LatLng p =
          geo::DestinationPoint(port.position, bearing, distance);
      EXPECT_EQ(geofencer.PortAt(p), geofencer.PortAtExhaustive(p))
          << name << " bearing " << bearing << " distance " << distance;
    }
  }
}

TEST(GeofenceTest, WorksAtFinerResolution) {
  const Geofencer geofencer(&sim::PortDatabase::Global(), 7);
  const sim::Port& singapore =
      **sim::PortDatabase::Global().FindByName("Singapore");
  EXPECT_EQ(geofencer.PortAt(singapore.position), singapore.id);
  Rng rng(22);
  for (int i = 0; i < 200; ++i) {
    const geo::LatLng p = geo::DestinationPoint(
        singapore.position, rng.Uniform(0, 360), rng.Uniform(0, 50));
    EXPECT_EQ(geofencer.PortAt(p), geofencer.PortAtExhaustive(p));
  }
}

TEST(GeofenceTest, IndexCoversAllPorts) {
  const Geofencer geofencer(&sim::PortDatabase::Global(), 6);
  // Every port's centre cell must be indexed.
  EXPECT_GT(geofencer.IndexedCellCount(),
            sim::PortDatabase::Global().size());
  for (const sim::Port& port : sim::PortDatabase::Global().ports()) {
    EXPECT_EQ(geofencer.PortAt(port.position), port.id) << port.name;
  }
}

TEST(GeofenceTest, CustomDatabase) {
  sim::Port port;
  port.name = "TestHarbour";
  port.position = {10.0, 20.0};
  port.geofence_radius_km = 5.0;
  const sim::PortDatabase db({port});
  const Geofencer geofencer(&db, 7);
  EXPECT_EQ(geofencer.PortAt({10.0, 20.0}), 1u);
  EXPECT_EQ(geofencer.PortAt(geo::DestinationPoint({10.0, 20.0}, 0, 4.9)), 1u);
  EXPECT_EQ(geofencer.PortAt(geo::DestinationPoint({10.0, 20.0}, 0, 5.5)),
            sim::kNoPort);
}

}  // namespace
}  // namespace pol::core
