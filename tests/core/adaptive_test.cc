#include "core/adaptive.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "hexgrid/hexgrid.h"
#include "sim/fleet.h"

namespace pol::core {
namespace {

class AdaptiveTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::FleetConfig config;
    config.seed = 606;
    config.commercial_vessels = 15;
    config.noncommercial_vessels = 0;
    config.start_time = 1640995200;
    config.end_time = config.start_time + 60 * kSecondsPerDay;
    config.coastal_interval_s = 300;
    config.ocean_interval_s = 900;
    output_ = new sim::SimulationOutput(sim::FleetSimulator(config).Run());

    PipelineConfig pipeline_config;
    pipeline_config.partitions = 4;
    pipeline_config.threads = 2;
    pipeline_config.resolution = 7;
    pipeline_config.extractor.gi_cell_type = false;
    pipeline_config.extractor.gi_cell_route_type = false;
    result_ = new PipelineResult(
        RunPipeline(output_->reports, output_->fleet, pipeline_config));
  }

  static void TearDownTestSuite() {
    delete result_;
    delete output_;
    result_ = nullptr;
    output_ = nullptr;
  }

  static sim::SimulationOutput* output_;
  static PipelineResult* result_;
};

constexpr uint64_t kThreshold = 20;

sim::SimulationOutput* AdaptiveTest::output_ = nullptr;
PipelineResult* AdaptiveTest::result_ = nullptr;

TEST_F(AdaptiveTest, UsesFewerCellsThanUniform) {
  const AdaptiveInventory adaptive =
      AdaptiveInventory::Build(*result_->inventory, 4, kThreshold);
  const uint64_t fine_cells = result_->inventory->DistinctCells();
  EXPECT_GT(adaptive.size(), 0u);
  EXPECT_LT(adaptive.size(), fine_cells);
  const AdaptiveStats stats = adaptive.Stats(fine_cells);
  EXPECT_GT(stats.cell_reduction, 0.3);  // Open ocean collapses hard.
}

TEST_F(AdaptiveTest, PreservesTotalRecordCount) {
  const AdaptiveInventory adaptive =
      AdaptiveInventory::Build(*result_->inventory, 4, kThreshold);
  uint64_t fine_records = 0;
  for (const auto& [key, summary] : result_->inventory->summaries()) {
    if (key.grouping_set == 0) fine_records += summary.record_count();
  }
  const AdaptiveStats stats =
      adaptive.Stats(result_->inventory->DistinctCells());
  // The cut is a partition of the merged tree: no record lost or
  // double-counted.
  EXPECT_EQ(stats.records, fine_records);
}

TEST_F(AdaptiveTest, MixesResolutions) {
  const AdaptiveInventory adaptive =
      AdaptiveInventory::Build(*result_->inventory, 4, kThreshold);
  const AdaptiveStats stats =
      adaptive.Stats(result_->inventory->DistinctCells());
  // Both coarse and fine levels must be present (dense lanes stay fine,
  // open ocean collapses).
  EXPECT_GE(stats.cells_per_resolution.size(), 2u);
  EXPECT_TRUE(stats.cells_per_resolution.count(7));
  EXPECT_TRUE(stats.cells_per_resolution.count(4) ||
              stats.cells_per_resolution.count(5));
}

TEST_F(AdaptiveTest, DenseCellsStayFine) {
  const AdaptiveInventory adaptive =
      AdaptiveInventory::Build(*result_->inventory, 4, kThreshold);
  // Every emitted non-finest cell must be below the threshold (it was
  // not split), except cells already at the coarsest level whose parent
  // chain ended.
  for (const auto& [cell, summary] : adaptive.cells()) {
    const int res = hex::CellResolution(cell);
    if (res < adaptive.fine_res() && res > adaptive.coarse_res()) {
      EXPECT_LT(summary.record_count(), kThreshold) << hex::CellToString(cell);
    }
  }
}

TEST_F(AdaptiveTest, LookupFindsCoveringCell) {
  const AdaptiveInventory adaptive =
      AdaptiveInventory::Build(*result_->inventory, 4, kThreshold);
  // Sample traffic positions that the FINE inventory covers (raw
  // reports include moored and non-trip records that never entered any
  // inventory): the adaptive inventory must answer for almost all of
  // them (boundary fuzz from approximate containment is allowed but
  // rare).
  int hits = 0;
  int samples = 0;
  for (size_t i = 0; i < output_->reports.size(); i += 501) {
    const auto& report = output_->reports[i];
    if (!ais::ValidatePositionReport(report).ok()) continue;
    if (result_->inventory->AtPosition({report.lat_deg, report.lng_deg}) ==
        nullptr) {
      continue;
    }
    ++samples;
    int res = -1;
    const CellSummary* summary =
        adaptive.Lookup({report.lat_deg, report.lng_deg}, &res);
    if (summary != nullptr) {
      ++hits;
      EXPECT_GE(res, adaptive.coarse_res());
      EXPECT_LE(res, adaptive.fine_res());
      EXPECT_GT(summary->record_count(), 0u);
    }
  }
  ASSERT_GT(samples, 50);
  EXPECT_GT(hits, samples * 97 / 100);
}

TEST_F(AdaptiveTest, ThresholdControlsGranularity) {
  const AdaptiveInventory aggressive =
      AdaptiveInventory::Build(*result_->inventory, 4, 1000000);
  const AdaptiveInventory fine_keeping =
      AdaptiveInventory::Build(*result_->inventory, 4, 1);
  // A huge threshold collapses everything to the coarse level; a tiny
  // one keeps every fine cell.
  EXPECT_LT(aggressive.size(), fine_keeping.size());
  const AdaptiveStats coarse_stats =
      aggressive.Stats(result_->inventory->DistinctCells());
  EXPECT_EQ(coarse_stats.cells_per_resolution.count(7), 0u);
}

TEST_F(AdaptiveTest, DegenerateSameResolutionBuild) {
  const AdaptiveInventory same =
      AdaptiveInventory::Build(*result_->inventory, 7, kThreshold);
  EXPECT_EQ(same.size(), result_->inventory->DistinctCells());
}

}  // namespace
}  // namespace pol::core
