// Integration test of the run report and trace export: a small
// simulated archive through RunPipeline with both output paths set,
// then the artifacts parsed back and checked against the in-memory
// PipelineResult. The structural assertions (schema, coverage, stages)
// hold under POL_OBS=OFF too — only the metrics section depends on the
// layer recording anything.

#include "core/run_report.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "sim/fleet.h"

namespace pol::core {
namespace {

sim::SimulationOutput SmallArchive() {
  sim::FleetConfig config;
  config.seed = 77;
  config.commercial_vessels = 6;
  config.noncommercial_vessels = 2;
  config.start_time = 1640995200;
  config.end_time = config.start_time + 10 * kSecondsPerDay;
  return sim::FleetSimulator(config).Run();
}

obs::Json MustParseFile(const std::string& path) {
  std::string text;
  std::string error;
  EXPECT_TRUE(obs::ReadTextFile(path, &text, &error)) << error;
  obs::Json document;
  EXPECT_TRUE(obs::Json::Parse(text, &document, &error)) << error;
  return document;
}

class RunReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "pol_run_report_test")
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(RunReportTest, ReportMatchesPipelineResult) {
  const sim::SimulationOutput archive = SmallArchive();
  PipelineConfig config;
  config.partitions = 4;
  config.chunks = 3;
  config.obs.report_path = dir_ + "/report.json";
  config.obs.trace_path = dir_ + "/trace.json";
  const PipelineResult result =
      RunPipeline(archive.reports, archive.fleet, config);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(result.wall_seconds, 0.0);

  const obs::Json report = MustParseFile(config.obs.report_path);
  EXPECT_EQ(report.GetString("schema"), "pol.run_report/1");
  EXPECT_TRUE(report.Find("status")->Find("ok")->AsBool());
  EXPECT_EQ(report.Find("status")->GetString("code"), "OK");
  EXPECT_GT(report.GetDouble("wall_seconds"), 0.0);
  EXPECT_EQ(report.GetUint64("aggregated_records"), result.aggregated_records);

  const obs::Json* report_config = report.Find("config");
  ASSERT_NE(report_config, nullptr);
  EXPECT_EQ(report_config->GetUint64("partitions"), 4u);
  EXPECT_EQ(report_config->GetUint64("chunks"), 3u);
  EXPECT_EQ(report_config->GetUint64("resolution"),
            static_cast<uint64_t>(config.resolution));

  const obs::Json* coverage = report.Find("coverage");
  ASSERT_NE(coverage, nullptr);
  EXPECT_EQ(coverage->GetUint64("chunks_total"),
            static_cast<uint64_t>(result.coverage.chunks_total));
  EXPECT_EQ(coverage->GetUint64("chunks_folded"),
            static_cast<uint64_t>(result.coverage.chunks_folded));
  EXPECT_EQ(coverage->GetUint64("chunks_quarantined"), 0u);

  const obs::Json* stages = report.Find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_EQ(stages->size(), result.stage_metrics.size());
  for (size_t i = 0; i < result.stage_metrics.size(); ++i) {
    const obs::Json& stage = stages->at(i);
    EXPECT_EQ(stage.GetString("name"), result.stage_metrics[i].name);
    EXPECT_EQ(stage.GetUint64("chunks"), result.stage_metrics[i].chunks);
    EXPECT_EQ(stage.GetUint64("records_in"),
              result.stage_metrics[i].records_in);
    EXPECT_EQ(stage.GetUint64("records_out"),
              result.stage_metrics[i].records_out);
    EXPECT_EQ(stage.GetUint64("failures"), 0u);
  }

  const obs::Json* checkpoint = report.Find("checkpoint");
  ASSERT_NE(checkpoint, nullptr);
  EXPECT_FALSE(checkpoint->Find("enabled")->AsBool());
  EXPECT_EQ(report.Find("quarantined")->size(), 0u);

  // The metrics section is present in both builds; it only has content
  // when the layer records.
  const obs::Json* metrics = report.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->Find("counters"), nullptr);
  if (obs::kEnabled) {
    EXPECT_GE(metrics->Find("counters")->GetUint64("pipeline.chunks_folded"),
              static_cast<uint64_t>(result.coverage.chunks_folded));
  }
}

TEST_F(RunReportTest, TraceExportIsLoadable) {
  const sim::SimulationOutput archive = SmallArchive();
  PipelineConfig config;
  config.partitions = 2;
  config.chunks = 2;
  config.obs.trace_path = dir_ + "/trace.json";
  const PipelineResult result =
      RunPipeline(archive.reports, archive.fleet, config);
  ASSERT_TRUE(result.status.ok());

  const obs::Json trace = MustParseFile(config.obs.trace_path);
  const obs::Json* events = trace.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  if (!obs::kEnabled) {
    EXPECT_EQ(events->size(), 0u);  // Valid but empty under POL_OBS=OFF.
    return;
  }
  ASSERT_GT(events->size(), 0u);
  bool saw_run = false;
  bool saw_stage = false;
  for (const obs::Json& event : events->items()) {
    EXPECT_EQ(event.GetString("ph"), "X");
    EXPECT_FALSE(event.GetString("name").empty());
    if (event.GetString("name") == "pipeline.run") saw_run = true;
    if (event.GetString("name") == "stage.cleaning") saw_stage = true;
  }
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_stage);
}

TEST_F(RunReportTest, NoPathsMeansNoFiles) {
  const sim::SimulationOutput archive = SmallArchive();
  PipelineConfig config;
  config.partitions = 2;
  const PipelineResult result =
      RunPipeline(archive.reports, archive.fleet, config);
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(result.wall_seconds, 0.0);  // Set even without outputs.
  EXPECT_TRUE(std::filesystem::is_empty(dir_));
}

TEST_F(RunReportTest, BuildRunReportRoundTripsThroughDump) {
  const sim::SimulationOutput archive = SmallArchive();
  PipelineConfig config;
  config.partitions = 2;
  const PipelineResult result =
      RunPipeline(archive.reports, archive.fleet, config);
  const obs::Json report = BuildRunReport(config, result);
  obs::Json reparsed;
  std::string error;
  ASSERT_TRUE(obs::Json::Parse(report.Dump(2), &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.Dump(), report.Dump());
}

TEST_F(RunReportTest, WriteRunReportFailsOnUnwritablePath) {
  // Missing parent directories are created by the atomic writer; a
  // regular file in the directory position is genuinely unwritable.
  {
    std::ofstream blocker(dir_ + "/blocker");
    blocker << "not a directory";
  }
  const PipelineConfig config;
  const PipelineResult result;
  const Status status =
      WriteRunReport(dir_ + "/blocker/report.json", config, result);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace pol::core
