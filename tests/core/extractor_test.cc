#include "core/extractor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/geodesic.h"
#include "hexgrid/hexgrid.h"

namespace pol::core {
namespace {

PipelineRecord At(ais::Mmsi mmsi, UnixSeconds t, double lat, double lng,
                  uint64_t trip, ais::MarketSegment segment) {
  PipelineRecord r;
  r.mmsi = mmsi;
  r.timestamp = t;
  r.lat_deg = lat;
  r.lng_deg = lng;
  r.sog_knots = 14;
  r.cog_deg = 90;
  r.heading_deg = 90;
  r.trip_id = trip;
  r.origin = 1;
  r.destination = 2;
  r.segment = segment;
  return r;
}

TEST(ProjectTest, AssignsCells) {
  flow::ThreadPool pool(2);
  const auto records = flow::Dataset<PipelineRecord>::FromVector(
      {At(215000001, 0, 1.3, 103.8, 7, ais::MarketSegment::kContainer)}, 1,
      &pool);
  const auto projected = ProjectToGrid(records, 6);
  const auto collected = projected.Collect();
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].cell, hex::LatLngToCell({1.3, 103.8}, 6));
  EXPECT_EQ(collected[0].next_cell, hex::kInvalidCell);
}

TEST(ProjectTest, TransitionsFollowInTripOrder) {
  flow::ThreadPool pool(2);
  // A straight eastward track crossing several res-6 cells.
  std::vector<PipelineRecord> records;
  for (int i = 0; i < 30; ++i) {
    records.push_back(At(215000001, i * 600, 0.0, i * 0.05, 7,
                         ais::MarketSegment::kContainer));
  }
  const auto projected =
      ProjectToGrid(flow::Dataset<PipelineRecord>::FromVector(records, 1, &pool), 6);
  const auto collected = projected.Collect();
  int transitions = 0;
  for (size_t i = 0; i + 1 < collected.size(); ++i) {
    if (collected[i].next_cell != hex::kInvalidCell) {
      ++transitions;
      EXPECT_EQ(collected[i].next_cell, collected[i + 1].cell);
      EXPECT_NE(collected[i].next_cell, collected[i].cell);
    } else {
      EXPECT_EQ(collected[i].cell, collected[i + 1].cell);
    }
  }
  EXPECT_GT(transitions, 5);  // The track crosses many cells.
}

TEST(ProjectTest, NoTransitionAcrossTrips) {
  flow::ThreadPool pool(2);
  std::vector<PipelineRecord> records = {
      At(215000001, 0, 0.0, 0.0, 7, ais::MarketSegment::kContainer),
      At(215000001, 600, 0.0, 1.0, 8, ais::MarketSegment::kContainer),
  };
  const auto projected =
      ProjectToGrid(flow::Dataset<PipelineRecord>::FromVector(records, 1, &pool), 6);
  EXPECT_EQ(projected.Collect()[0].next_cell, hex::kInvalidCell);
}

TEST(ProjectTest, NoTransitionAcrossVessels) {
  flow::ThreadPool pool(2);
  std::vector<PipelineRecord> records = {
      At(215000001, 0, 0.0, 0.0, 7, ais::MarketSegment::kContainer),
      At(377000002, 600, 0.0, 1.0, 7, ais::MarketSegment::kContainer),
  };
  const auto projected =
      ProjectToGrid(flow::Dataset<PipelineRecord>::FromVector(records, 1, &pool), 6);
  EXPECT_EQ(projected.Collect()[0].next_cell, hex::kInvalidCell);
}

TEST(ExtractTest, ThreeGroupingSetsPerRecord) {
  flow::ThreadPool pool(2);
  const auto projected = ProjectToGrid(
      flow::Dataset<PipelineRecord>::FromVector(
          {At(215000001, 0, 1.3, 103.8, 7, ais::MarketSegment::kContainer)},
          1, &pool),
      6);
  const SummaryMap summaries = ExtractFeatures(projected, {});
  EXPECT_EQ(summaries.size(), 3u);  // One key per grouping set.
  const hex::CellIndex cell = hex::LatLngToCell({1.3, 103.8}, 6);
  EXPECT_TRUE(summaries.count(KeyCell(cell)));
  EXPECT_TRUE(
      summaries.count(KeyCellType(cell, ais::MarketSegment::kContainer)));
  EXPECT_TRUE(summaries.count(
      KeyCellRouteType(cell, 1, 2, ais::MarketSegment::kContainer)));
}

TEST(ExtractTest, GroupingSetsCanBeDisabled) {
  flow::ThreadPool pool(2);
  const auto projected = ProjectToGrid(
      flow::Dataset<PipelineRecord>::FromVector(
          {At(215000001, 0, 1.3, 103.8, 7, ais::MarketSegment::kContainer)},
          1, &pool),
      6);
  ExtractorConfig config;
  config.gi_cell_type = false;
  config.gi_cell_route_type = false;
  const SummaryMap summaries = ExtractFeatures(projected, config);
  EXPECT_EQ(summaries.size(), 1u);
}

TEST(ExtractTest, SegmentsSplitCorrectly) {
  flow::ThreadPool pool(2);
  std::vector<PipelineRecord> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(At(215000001, i, 1.3, 103.8, 7,
                         ais::MarketSegment::kContainer));
  }
  for (int i = 0; i < 4; ++i) {
    records.push_back(
        At(377000002, i, 1.3, 103.8, 8, ais::MarketSegment::kTanker));
  }
  const auto projected = ProjectToGrid(
      flow::Dataset<PipelineRecord>::FromVector(records, 2, &pool), 6);
  const SummaryMap summaries = ExtractFeatures(projected, {});
  const hex::CellIndex cell = hex::LatLngToCell({1.3, 103.8}, 6);
  EXPECT_EQ(summaries.at(KeyCell(cell)).record_count(), 14u);
  EXPECT_EQ(
      summaries.at(KeyCellType(cell, ais::MarketSegment::kContainer))
          .record_count(),
      10u);
  EXPECT_EQ(summaries.at(KeyCellType(cell, ais::MarketSegment::kTanker))
                .record_count(),
            4u);
}

TEST(ExtractTest, ResultIndependentOfPartitioning) {
  Rng rng(13);
  std::vector<PipelineRecord> records;
  for (int i = 0; i < 3000; ++i) {
    records.push_back(At(
        static_cast<ais::Mmsi>(215000001 + rng.NextBelow(20)),
        static_cast<UnixSeconds>(i), rng.Uniform(0, 2), rng.Uniform(100, 104),
        1 + rng.NextBelow(40),
        static_cast<ais::MarketSegment>(rng.NextBelow(3))));
  }
  std::vector<size_t> sizes;
  std::vector<uint64_t> checksums;
  for (const int partitions : {1, 5, 16}) {
    flow::ThreadPool pool(3);
    const auto projected = ProjectToGrid(
        flow::Dataset<PipelineRecord>::FromVector(records, partitions, &pool),
        6);
    const SummaryMap summaries = ExtractFeatures(projected, {});
    sizes.push_back(summaries.size());
    uint64_t checksum = 0;
    for (const auto& [key, summary] : summaries) {
      checksum ^= GroupKeyHash{}(key) * (summary.record_count() + 1);
    }
    checksums.push_back(checksum);
  }
  EXPECT_EQ(sizes[0], sizes[1]);
  EXPECT_EQ(sizes[1], sizes[2]);
  EXPECT_EQ(checksums[0], checksums[1]);
  EXPECT_EQ(checksums[1], checksums[2]);
}

}  // namespace
}  // namespace pol::core
