// Property regression for the serving split: on randomized inventories,
// the legacy full-scan route query, the build-side route index, and the
// sealed snapshot must agree on every answer — point lookups
// byte-identical, corridors element-identical, including the
// reversed-pair fallback.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/inventory.h"
#include "core/inventory_snapshot.h"
#include "hexgrid/hexgrid.h"

namespace pol::core {
namespace {

struct RouteKey {
  sim::PortId origin;
  sim::PortId destination;
  ais::MarketSegment segment;
};

struct Sample {
  Inventory inventory;
  std::vector<hex::CellIndex> cells;
  std::vector<RouteKey> routes;
};

// A random inventory over a handful of ports and segments: small key
// spaces on purpose, so collisions, multi-cell corridors, and pairs
// present in both orientations all occur.
Sample RandomInventory(uint64_t seed) {
  Rng rng(seed);
  SummaryMap summaries;
  std::vector<hex::CellIndex> cells;
  std::vector<RouteKey> routes;
  const int groups = 30 + static_cast<int>(rng.NextBelow(50));
  for (int i = 0; i < groups; ++i) {
    const hex::CellIndex cell = hex::LatLngToCell(
        {rng.Uniform(-55, 55), rng.Uniform(-180, 180)}, 6);
    const auto origin = static_cast<sim::PortId>(1 + rng.NextBelow(5));
    const auto destination = static_cast<sim::PortId>(1 + rng.NextBelow(5));
    const auto segment =
        static_cast<ais::MarketSegment>(rng.NextBelow(ais::kNumMarketSegments));
    PipelineRecord r;
    r.mmsi = static_cast<ais::Mmsi>(200000000 + rng.NextBelow(20));
    r.trip_id = 1 + rng.NextBelow(40);
    r.origin = origin;
    r.destination = destination;
    r.segment = segment;
    r.sog_knots = rng.Uniform(2, 22);
    r.cog_deg = rng.Uniform(0, 360);
    r.heading_deg = r.cog_deg;
    r.eto_s = rng.Uniform(100, 100000);
    r.ata_s = rng.Uniform(100, 100000);
    cells.push_back(cell);
    routes.push_back({origin, destination, segment});
    for (const GroupKey& key :
         {KeyCell(cell), KeyCellType(cell, segment),
          KeyCellRouteType(cell, origin, destination, segment)}) {
      auto [it, inserted] = summaries.try_emplace(key);
      (void)inserted;
      const int adds = 1 + static_cast<int>(rng.NextBelow(4));
      for (int k = 0; k < adds; ++k) it->second.Add(r);
    }
  }
  return Sample{Inventory(6, std::move(summaries)), std::move(cells),
                std::move(routes)};
}

std::string Bytes(const CellSummary* summary) {
  if (summary == nullptr) return "<null>";
  std::string out;
  summary->Serialize(&out);
  return out;
}

TEST(InventoryQueryPropertyTest, ScanIndexAndSnapshotAgree) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const Sample sample = RandomInventory(seed);
    const Inventory& inv = sample.inventory;
    const std::shared_ptr<const InventorySnapshot> snap = inv.Seal();
    ASSERT_EQ(snap->size(), inv.size()) << "seed " << seed;

    // Every route key, in both orientations, plus a never-inserted one.
    std::vector<RouteKey> queries = sample.routes;
    for (const RouteKey& route : sample.routes) {
      queries.push_back({route.destination, route.origin, route.segment});
    }
    queries.push_back({200, 201, ais::MarketSegment::kTugAndService});
    for (const RouteKey& q : queries) {
      const auto scan =
          inv.CellsForRouteScan(q.origin, q.destination, q.segment);
      EXPECT_EQ(inv.CellsForRoute(q.origin, q.destination, q.segment), scan)
          << "seed " << seed << " route " << q.origin << "->"
          << q.destination;
      EXPECT_EQ(snap->CellsForRoute(q.origin, q.destination, q.segment), scan)
          << "seed " << seed << " route " << q.origin << "->"
          << q.destination;
    }

    // Point lookups byte-identical on every touched cell (and one miss).
    std::vector<hex::CellIndex> probes = sample.cells;
    probes.push_back(hex::LatLngToCell({80, 0}, 6));
    for (size_t i = 0; i < probes.size(); ++i) {
      const hex::CellIndex cell = probes[i];
      EXPECT_EQ(Bytes(snap->Cell(cell)), Bytes(inv.Cell(cell)))
          << "seed " << seed;
      const RouteKey& route = sample.routes[i % sample.routes.size()];
      EXPECT_EQ(Bytes(snap->CellType(cell, route.segment)),
                Bytes(inv.CellType(cell, route.segment)))
          << "seed " << seed;
      EXPECT_EQ(Bytes(snap->CellRouteType(cell, route.origin,
                                          route.destination, route.segment)),
                Bytes(inv.CellRouteType(cell, route.origin, route.destination,
                                        route.segment)))
          << "seed " << seed;
      EXPECT_EQ(snap->SegmentsAt(cell), inv.SegmentsAt(cell))
          << "seed " << seed;
    }
  }
}

TEST(InventoryQueryPropertyTest, IndexSurvivesMerges) {
  for (uint64_t seed = 100; seed <= 110; ++seed) {
    Sample a = RandomInventory(seed);
    Sample b = RandomInventory(seed + 1000);
    ASSERT_TRUE(a.inventory.MergeFrom(std::move(b.inventory)).ok());
    const Inventory& merged = a.inventory;
    const std::shared_ptr<const InventorySnapshot> snap = merged.Seal();
    std::vector<RouteKey> queries = a.routes;
    queries.insert(queries.end(), b.routes.begin(), b.routes.end());
    for (const RouteKey& q : queries) {
      const auto scan =
          merged.CellsForRouteScan(q.origin, q.destination, q.segment);
      EXPECT_FALSE(scan.empty()) << "seed " << seed;
      EXPECT_EQ(merged.CellsForRoute(q.origin, q.destination, q.segment),
                scan)
          << "seed " << seed;
      EXPECT_EQ(snap->CellsForRoute(q.origin, q.destination, q.segment), scan)
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace pol::core
