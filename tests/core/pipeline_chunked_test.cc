// Chunked-vs-monolithic equivalence: running the pipeline over any
// number of vessel-coherent chunks must produce a byte-identical
// serialized inventory, identical compression report, and identical
// stage statistics to the single-shot run. This is the contract that
// makes the chunk count a pure peak-memory/overlap knob.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/cleaning.h"
#include "core/inventory_builder.h"
#include "core/pipeline.h"
#include "core/stages.h"
#include "flow/stage.h"
#include "flow/threadpool.h"
#include "sim/fleet.h"

namespace pol::core {
namespace {

sim::SimulationOutput SmallArchive() {
  sim::FleetConfig config;
  config.seed = 4321;
  config.commercial_vessels = 10;
  config.noncommercial_vessels = 3;
  config.start_time = 1640995200;
  config.end_time = config.start_time + 21 * kSecondsPerDay;
  return sim::FleetSimulator(config).Run();
}

std::string SerializedBytes(const Inventory& inv) {
  std::string bytes;
  inv.SerializeTo(&bytes);
  return bytes;
}

TEST(PipelineChunkedTest, ChunkedRunsAreByteIdenticalToSingleShot) {
  const sim::SimulationOutput archive = SmallArchive();
  PipelineConfig config;
  config.partitions = 8;
  config.threads = 2;
  config.resolution = 6;

  config.chunks = 1;
  const PipelineResult reference =
      RunPipeline(archive.reports, archive.fleet, config);
  const std::string reference_bytes = SerializedBytes(*reference.inventory);
  ASSERT_FALSE(reference_bytes.empty());
  const CompressionReport reference_report = reference.Compression();

  for (const int chunks : {3, 7}) {
    PipelineConfig chunked_config = config;
    chunked_config.chunks = chunks;
    const PipelineResult chunked =
        RunPipeline(archive.reports, archive.fleet, chunked_config);

    EXPECT_EQ(SerializedBytes(*chunked.inventory), reference_bytes)
        << chunks << " chunks";

    const CompressionReport report = chunked.Compression();
    EXPECT_EQ(report.resolution, reference_report.resolution) << chunks;
    EXPECT_EQ(report.records, reference_report.records) << chunks;
    EXPECT_EQ(report.cells, reference_report.cells) << chunks;
    EXPECT_EQ(report.summaries, reference_report.summaries) << chunks;
    EXPECT_DOUBLE_EQ(report.compression, reference_report.compression)
        << chunks;
    EXPECT_DOUBLE_EQ(report.utilization, reference_report.utilization)
        << chunks;

    // Stage statistics are totals over chunks, so they must match the
    // single-shot run exactly.
    EXPECT_EQ(chunked.cleaning.input, reference.cleaning.input) << chunks;
    EXPECT_EQ(chunked.cleaning.kept, reference.cleaning.kept) << chunks;
    EXPECT_EQ(chunked.enrichment.kept, reference.enrichment.kept) << chunks;
    EXPECT_EQ(chunked.trips.trips, reference.trips.trips) << chunks;
    EXPECT_EQ(chunked.aggregated_records, reference.aggregated_records)
        << chunks;
  }
}

TEST(PipelineChunkedTest, StageMetricsCoverAllFiveStages) {
  const sim::SimulationOutput archive = SmallArchive();
  PipelineConfig config;
  config.partitions = 4;
  config.threads = 2;
  config.chunks = 3;
  const PipelineResult result =
      RunPipeline(archive.reports, archive.fleet, config);

  const std::vector<std::string> expected = {"cleaning", "enrichment",
                                             "trips", "projection",
                                             "extraction"};
  ASSERT_EQ(result.stage_metrics.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    const flow::StageMetrics& m = result.stage_metrics[i];
    EXPECT_EQ(m.name, expected[i]) << i;
    EXPECT_EQ(m.chunks, 3u) << m.name;
    EXPECT_GT(m.records_in, 0u) << m.name;
    EXPECT_GT(m.records_out, 0u) << m.name;
    EXPECT_GT(m.peak_partition, 0u) << m.name;
    EXPECT_GE(m.wall_seconds, 0.0) << m.name;
  }
  // The chain conserves records between adjacent stages.
  EXPECT_EQ(result.stage_metrics[0].records_in, archive.reports.size());
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(result.stage_metrics[i].records_in,
              result.stage_metrics[i - 1].records_out);
  }
  // The metrics table renderer mentions every stage.
  const std::string table = flow::StageMetricsTable(result.stage_metrics);
  for (const auto& name : expected) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
}

TEST(PipelineChunkedTest, ManualStageGraphMatchesRunPipeline) {
  // Assemble the graph by hand — SplitReportsByVessel + the stage
  // classes + InventoryBuilder::Fold — and check it reproduces
  // RunPipeline byte for byte. This is the path external callers take
  // to fold fresh batches into an existing builder.
  const sim::SimulationOutput archive = SmallArchive();
  PipelineConfig config;
  config.partitions = 6;
  config.threads = 2;
  const PipelineResult reference =
      RunPipeline(archive.reports, archive.fleet, config);

  flow::ThreadPool pool(2);
  CleaningConfig cleaning_config;
  cleaning_config.partitions = config.partitions;
  CleaningStage cleaning(cleaning_config);
  EnrichmentStage enrichment(archive.fleet, /*commercial_only=*/true);
  TripStage trips(&sim::PortDatabase::Global(), config.geofence_resolution);
  ProjectionStage projection(config.resolution);

  ExtractorConfig extractor_config = config.extractor;
  extractor_config.resolution = config.resolution;
  InventoryBuilder builder(extractor_config);

  auto chunks =
      SplitReportsByVessel(archive.reports, config.partitions, 4, &pool);
  ASSERT_EQ(chunks.size(), 4u);
  for (auto& chunk : chunks) {
    Result<flow::Dataset<PipelineRecord>> cleaned =
        cleaning.RunChunk(std::move(chunk));
    ASSERT_TRUE(cleaned.ok());
    Result<flow::Dataset<PipelineRecord>> enriched =
        enrichment.RunChunk(std::move(cleaned).value());
    ASSERT_TRUE(enriched.ok());
    Result<flow::Dataset<PipelineRecord>> tripped =
        trips.RunChunk(std::move(enriched).value());
    ASSERT_TRUE(tripped.ok());
    Result<flow::Dataset<PipelineRecord>> projected =
        projection.RunChunk(std::move(tripped).value());
    ASSERT_TRUE(projected.ok());
    builder.Fold(*projected);
  }
  EXPECT_EQ(builder.records_folded(), reference.aggregated_records);
  const Inventory inventory = std::move(builder).Finish();
  EXPECT_EQ(SerializedBytes(inventory),
            SerializedBytes(*reference.inventory));
  EXPECT_EQ(cleaning.stats().kept, reference.cleaning.kept);
  EXPECT_EQ(trips.stats().trips, reference.trips.trips);
}

TEST(PipelineChunkedTest, MoreChunksThanPartitionsStillExact) {
  const sim::SimulationOutput archive = SmallArchive();
  PipelineConfig config;
  config.partitions = 2;
  config.threads = 2;
  const PipelineResult reference =
      RunPipeline(archive.reports, archive.fleet, config);

  PipelineConfig oversplit = config;
  oversplit.chunks = 5;  // More chunks than partitions.
  const PipelineResult result =
      RunPipeline(archive.reports, archive.fleet, oversplit);
  EXPECT_EQ(SerializedBytes(*result.inventory),
            SerializedBytes(*reference.inventory));
}

}  // namespace
}  // namespace pol::core
