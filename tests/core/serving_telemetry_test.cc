// Query-level serving telemetry (DESIGN.md §3.8): ids flow from
// BeginQuery through the query log and the per-query trace span, the
// admitted == logged-OK + logged-errors reconciliation holds, visited
// counts land in the wide events, window gauges and SLO evaluation
// publish the serving.* gauge set, and TickTelemetry / the exporter
// thread produce a parseable OpenMetrics file.

#include "core/serving_telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "core/inventory.h"
#include "core/serving_guard.h"
#include "core/serving_metric_names.h"
#include "hexgrid/hexgrid.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/trace.h"

namespace pol::core {
namespace {

constexpr sim::PortId kOrigin = 5;
constexpr sim::PortId kDestination = 33;
constexpr auto kSegment = ais::MarketSegment::kTanker;

Inventory Batch(int generation, int cells) {
  SummaryMap summaries;
  for (int i = 0; i < cells; ++i) {
    const hex::CellIndex cell = hex::LatLngToCell(
        {4.0 + 0.2 * generation, 110.0 + 0.4 * i}, 6);
    PipelineRecord r;
    r.mmsi = 477000002;
    r.trip_id = static_cast<uint64_t>(generation * 1000 + i);
    r.origin = kOrigin;
    r.destination = kDestination;
    r.segment = kSegment;
    r.sog_knots = 11;
    r.cog_deg = 45;
    r.heading_deg = 45;
    r.eto_s = 1800;
    r.ata_s = 5400;
    for (const GroupKey& key :
         {KeyCell(cell), KeyCellType(cell, kSegment),
          KeyCellRouteType(cell, kOrigin, kDestination, kSegment)}) {
      auto [it, inserted] = summaries.try_emplace(key);
      (void)inserted;
      it->second.Add(r);
    }
  }
  return Inventory(6, std::move(summaries));
}

uint64_t CounterValue(std::string_view name) {
  return obs::Registry::Global().counter(name)->value();
}

int64_t GaugeValue(std::string_view name) {
  return obs::Registry::Global().gauge(name)->value();
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return {};
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ServingTelemetryTest, DisabledByOptionRecordsNothing) {
  ServingTelemetryOptions options;
  options.enabled = false;
  ServingTelemetry telemetry(options);
  EXPECT_FALSE(telemetry.enabled());
  EXPECT_EQ(telemetry.BeginQuery(), 0u);
  telemetry.RecordQuery(1, QueryClass::kInteractive, "query", Status::OK(),
                        0.0, 0.001, -1.0, 1, 0);
  EXPECT_EQ(telemetry.query_log().totals().events, 0u);
}

TEST(ServingTelemetryTest, GuardedQueriesLandInTheLogWithIds) {
  ServingInventory store(Batch(0, 3));
  ServingGuard guard(&store);
  if (!guard.telemetry()->enabled()) GTEST_SKIP() << "obs compiled to no-ops";
  const uint64_t admitted_before = CounterValue(kMetricServingAdmitted);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(guard
                    .Run(QueryClass::kInteractive, Deadline(),
                         [](const InventorySnapshot&) {
                           return Status::OK();
                         })
                    .ok());
  }
  const Status failed = guard.Run(
      QueryClass::kInteractive, Deadline(),
      [](const InventorySnapshot&) {
        return Status::Internal("synthetic query failure");
      });
  EXPECT_EQ(failed.code(), StatusCode::kInternal);

  const obs::QueryLog& log = guard.telemetry()->query_log();
  const obs::QueryLog::Totals totals = log.totals();
  EXPECT_EQ(totals.ok, 3u);
  EXPECT_EQ(totals.errors, 1u);
  // The reconciliation invariant: every admitted call logged once.
  EXPECT_EQ(CounterValue(kMetricServingAdmitted) - admitted_before,
            totals.ok + totals.errors);

  // The failure is notable; its wide event carries the join fields.
  const std::vector<obs::QueryEvent> notable = log.NotableEvents();
  ASSERT_EQ(notable.size(), 1u);
  EXPECT_GT(notable[0].id, 0u);
  EXPECT_EQ(notable[0].op, "query");
  EXPECT_EQ(notable[0].query_class, "interactive");
  EXPECT_FALSE(notable[0].ok);
  EXPECT_GT(notable[0].snapshot_id, 0u);  // Sealed snapshots number from 1.
  EXPECT_LT(notable[0].deadline_remaining_seconds, 0.0);  // No deadline.
}

TEST(ServingTelemetryTest, SweepAndCorridorRecordVisitedCounts) {
  ServingInventory store(Batch(0, 4));
  ServingGuard guard(&store);
  if (!guard.telemetry()->enabled()) GTEST_SKIP() << "obs compiled to no-ops";

  ASSERT_TRUE(guard
                  .VisitGroupingSet(GroupingSet::kCellRouteType, Deadline(),
                                    [](const GroupKey&, const CellSummary&) {})
                  .ok());
  const auto corridor =
      guard.CellsForRoute(kOrigin, kDestination, kSegment, Deadline());
  ASSERT_TRUE(corridor.ok());
  ASSERT_EQ(corridor.value().size(), 4u);

  bool saw_sweep = false;
  bool saw_route = false;
  for (const obs::QueryEvent& event :
       guard.telemetry()->query_log().SampledEvents()) {
    if (event.op == "visit_grouping_set") {
      saw_sweep = true;
      EXPECT_EQ(event.summaries_visited, 4u);
      EXPECT_EQ(event.query_class, "batch");
    } else if (event.op == "cells_for_route") {
      saw_route = true;
      EXPECT_EQ(event.summaries_visited, 4u);
      EXPECT_EQ(event.query_class, "interactive");
    }
  }
  EXPECT_TRUE(saw_sweep);
  EXPECT_TRUE(saw_route);
}

TEST(ServingTelemetryTest, TraceSpanJoinsLogRowOnId) {
  ServingInventory store(Batch(0, 2));
  ServingGuard guard(&store);
  if (!guard.telemetry()->enabled()) GTEST_SKIP() << "obs compiled to no-ops";

  obs::TraceRecorder::Global().Clear();
  obs::TraceRecorder::Global().Start();
  ASSERT_TRUE(guard
                  .Run(QueryClass::kInteractive, Deadline(),
                       [](const InventorySnapshot&) { return Status::OK(); })
                  .ok());
  obs::TraceRecorder::Global().Stop();

  // The guard's freshest query id names the span.
  uint64_t last_id = 0;
  for (const obs::QueryEvent& event :
       guard.telemetry()->query_log().SampledEvents()) {
    last_id = std::max(last_id, event.id);
  }
  ASSERT_GT(last_id, 0u);
  const std::string expected = std::string(kSpanServingQueryPrefix) +
                               "query#" + std::to_string(last_id);
  bool found = false;
  for (const obs::TraceEvent& event : obs::TraceRecorder::Global().Events()) {
    found = found || event.name == expected;
  }
  EXPECT_TRUE(found) << "missing span " << expected;
  obs::TraceRecorder::Global().Clear();
}

TEST(ServingTelemetryTest, RejectionsFeedRatesButNotTheLog) {
  ServingInventory store(Batch(0, 2));
  ServingGuardOptions options;
  options.max_concurrent_interactive = 1;
  options.max_queue_wait_seconds = 0.0;  // Saturation sheds immediately.
  ServingGuard guard(&store, options);
  if (!guard.telemetry()->enabled()) GTEST_SKIP() << "obs compiled to no-ops";

  std::atomic<bool> inside{false};
  std::atomic<bool> release{false};
  std::thread holder([&guard, &inside, &release] {
    ASSERT_TRUE(guard
                    .Run(QueryClass::kInteractive, Deadline(),
                         [&inside, &release](const InventorySnapshot&) {
                           inside.store(true, std::memory_order_release);
                           while (!release.load(std::memory_order_acquire)) {
                             std::this_thread::yield();
                           }
                           return Status::OK();
                         })
                    .ok());
  });
  while (!inside.load(std::memory_order_acquire)) std::this_thread::yield();

  const Status shed = guard.Run(QueryClass::kInteractive, Deadline(),
                                [](const InventorySnapshot&) {
                                  return Status::OK();
                                });
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  release.store(true, std::memory_order_release);
  holder.join();

  // The shed call fed the error and shed rates but wrote no log row:
  // totals reconcile against admissions, not attempts.
  EXPECT_GE(guard.telemetry()->error_rate().Total(0), 1u);
  EXPECT_GE(guard.telemetry()->shed_rate().Total(0), 1u);
  EXPECT_EQ(guard.telemetry()->query_log().totals().events, 1u);
}

TEST(ServingTelemetryTest, WindowGaugesPublishTrailingState) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  ServingTelemetryOptions options;
  options.window_seconds = 1.0;
  options.window_count = 64;
  options.gauge_windows = 5;
  ServingTelemetry telemetry(options);
  ASSERT_TRUE(telemetry.enabled());

  // Five OK interactive queries at a constant 1ms scan, all in one
  // 5-window gauge span: QPS = 1/s, p50 = p99 = 1000us, no errors.
  for (int i = 0; i < 5; ++i) {
    telemetry.RecordQueryAt(1000.5, telemetry.BeginQuery(),
                            QueryClass::kInteractive, "query", Status::OK(),
                            0.0, 0.001, -1.0, 1, 0);
  }
  telemetry.UpdateWindowGaugesAt(1000.9);
  EXPECT_EQ(GaugeValue(kMetricServingQueryQpsMilli), 1000);
  EXPECT_EQ(GaugeValue(kMetricServingQueryErrorRateMilli), 0);
  EXPECT_EQ(GaugeValue(kMetricServingInteractiveP50Us), 1000);
  EXPECT_EQ(GaugeValue(kMetricServingInteractiveP99Us), 1000);
  EXPECT_EQ(GaugeValue(kMetricServingQuerylogEvents), 5);
  EXPECT_EQ(GaugeValue(kMetricServingQuerylogOk), 5);
}

TEST(ServingTelemetryTest, SloStormBurnsAndRecovers) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  ServingTelemetryOptions options;
  options.window_seconds = 1.0;
  options.window_count = 64;
  options.slo_fast_windows = 2;
  options.slo_slow_windows = 20;
  ServingTelemetry telemetry(options);
  ASSERT_TRUE(telemetry.enabled());

  // A pure failure storm: availability burns in both windows.
  for (int i = 0; i < 100; ++i) {
    telemetry.RecordQueryAt(500.5, telemetry.BeginQuery(),
                            QueryClass::kInteractive, "query",
                            Status::Internal("storm"), 0.0, 0.001, -1.0, 1, 0);
  }
  std::vector<obs::SloStatus> statuses = telemetry.EvaluateSlosAt(500.9);
  ASSERT_EQ(statuses.size(), 3u);  // availability + two latency SLOs.
  EXPECT_EQ(statuses[0].name, "availability");
  EXPECT_TRUE(statuses[0].burning);
  EXPECT_EQ(statuses[0].breaches, 1u);
  EXPECT_EQ(statuses[1].name, "interactive_p99");
  EXPECT_EQ(statuses[2].name, "batch_p99");
  EXPECT_EQ(GaugeValue("serving.slo.availability.burning"), 1);

  // The windows drain: the SLO recovers, the breach count sticks.
  statuses = telemetry.EvaluateSlosAt(600.9);
  EXPECT_FALSE(statuses[0].burning);
  EXPECT_EQ(statuses[0].breaches, 1u);
  EXPECT_EQ(GaugeValue("serving.slo.availability.burning"), 0);
}

TEST(ServingTelemetryTest, TickTelemetryWritesOpenMetrics) {
  ServingInventory store(Batch(0, 3));
  ServingGuard guard(&store);
  if (!guard.telemetry()->enabled()) GTEST_SKIP() << "obs compiled to no-ops";
  const uint64_t exports_before = CounterValue(kMetricServingTelemetryExports);

  ASSERT_TRUE(guard
                  .Run(QueryClass::kInteractive, Deadline(),
                       [](const InventorySnapshot&) { return Status::OK(); })
                  .ok());
  const std::string path =
      testing::TempDir() + "serving_telemetry_test_metrics.txt";
  ASSERT_TRUE(guard.TickTelemetry(path).ok());
  EXPECT_EQ(CounterValue(kMetricServingTelemetryExports), exports_before + 1);

  const std::string text = ReadFileOrEmpty(path);
  ASSERT_FALSE(text.empty());
  const std::vector<obs::OpenMetricsSample> samples =
      obs::ParseOpenMetrics(text);
  EXPECT_NE(obs::FindSample(samples, "serving_admitted_total"), nullptr);
  EXPECT_NE(obs::FindSample(samples, "serving_query_qps_milli"), nullptr);
  EXPECT_NE(obs::FindSample(samples, "serving_slo_availability_burning"),
            nullptr);
  const obs::OpenMetricsSample* snapshot_id =
      obs::FindSample(samples, "serving_snapshot_active_id");
  ASSERT_NE(snapshot_id, nullptr);
  EXPECT_GT(snapshot_id->value, 0.0);
  std::remove(path.c_str());
}

TEST(ServingTelemetryTest, ExporterThreadLifecycle) {
  ServingInventory store(Batch(0, 2));
  ServingGuard guard(&store);
  if (!guard.telemetry()->enabled()) GTEST_SKIP() << "obs compiled to no-ops";
  const std::string path =
      testing::TempDir() + "serving_telemetry_test_exporter.txt";
  std::remove(path.c_str());

  TelemetryExporterOptions exporter;
  exporter.openmetrics_path = path;
  exporter.period_seconds = 0.01;
  ASSERT_TRUE(guard.StartTelemetryExporter(exporter).ok());
  EXPECT_TRUE(guard.telemetry_exporter_running());
  EXPECT_FALSE(guard.StartTelemetryExporter(exporter).ok());  // One at a time.

  // The loop must produce a parseable export within a few periods.
  std::string text;
  for (int i = 0; i < 500 && text.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    text = ReadFileOrEmpty(path);
  }
  ASSERT_FALSE(text.empty()) << "exporter never wrote " << path;
  EXPECT_NE(
      obs::FindSample(obs::ParseOpenMetrics(text), "serving_admitted_total"),
      nullptr);

  guard.StopTelemetryExporter();
  EXPECT_FALSE(guard.telemetry_exporter_running());
  guard.StopTelemetryExporter();  // Idempotent.
  std::remove(path.c_str());
}

TEST(ServingTelemetryTest, GuardWithTelemetryDisabledStillServes) {
  ServingInventory store(Batch(0, 2));
  ServingGuardOptions options;
  options.telemetry.enabled = false;
  ServingGuard guard(&store, options);
  EXPECT_FALSE(guard.telemetry()->enabled());
  EXPECT_TRUE(guard
                  .Run(QueryClass::kInteractive, Deadline(),
                       [](const InventorySnapshot&) { return Status::OK(); })
                  .ok());
  EXPECT_EQ(guard.telemetry()->query_log().totals().events, 0u);
}

}  // namespace
}  // namespace pol::core
