// Pipeline-level properties: the inventory must be a pure function of
// the archive CONTENT — invariant to input row order (receivers deliver
// out of order), to partitioning, and reproducible run to run.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.h"
#include "core/pipeline.h"
#include "sim/fleet.h"

namespace pol::core {
namespace {

sim::SimulationOutput SmallArchive() {
  sim::FleetConfig config;
  config.seed = 1234;
  config.commercial_vessels = 8;
  config.noncommercial_vessels = 4;
  config.start_time = 1640995200;
  config.end_time = config.start_time + 30 * kSecondsPerDay;
  return sim::FleetSimulator(config).Run();
}

// Order-insensitive digest of an inventory's exact contents (used for
// comparisons where bit-exact equality is expected: same partitioning).
uint64_t InventoryDigest(const Inventory& inv) {
  uint64_t digest = 0;
  for (const auto& [key, summary] : inv.summaries()) {
    std::string bytes;
    summary.Serialize(&bytes);
    uint64_t h = GroupKeyHash{}(key);
    for (const char c : bytes) {
      h = h * 1099511628211ULL + static_cast<uint8_t>(c);
    }
    digest ^= h;
  }
  return digest;
}

// Digest of the integer-exact statistics only (counts, bins, distinct
// sets): these must be bit-identical for ANY partitioning, because
// their merges are exactly associative and commutative. Floating-point
// moments merge in different trees under different partition counts, so
// they are only tolerance-comparable.
uint64_t IntegerStatsDigest(const Inventory& inv) {
  uint64_t digest = 0;
  for (const auto& [key, summary] : inv.summaries()) {
    uint64_t h = GroupKeyHash{}(key);
    auto mix = [&h](uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(summary.record_count());
    for (int bin = 0; bin < 12; ++bin) {
      mix(summary.course_bins().bin_count(bin));
      mix(summary.heading_bins().bin_count(bin));
    }
    mix(static_cast<uint64_t>(summary.ships().Estimate() * 1024.0));
    mix(static_cast<uint64_t>(summary.trips().Estimate() * 1024.0));
    mix(summary.speed().count());
    mix(summary.eto().count());
    digest ^= h;
  }
  return digest;
}

TEST(PipelinePropertyTest, InvariantToInputOrder) {
  const sim::SimulationOutput archive = SmallArchive();
  PipelineConfig config;
  config.partitions = 4;
  config.threads = 2;
  config.resolution = 6;

  const PipelineResult original =
      RunPipeline(archive.reports, archive.fleet, config);

  // Shuffle the archive rows: the cleaner re-sorts per vessel, so the
  // result must be identical.
  std::vector<ais::PositionReport> shuffled = archive.reports;
  Rng rng(9);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBelow(i)]);
  }
  const PipelineResult reordered =
      RunPipeline(shuffled, archive.fleet, config);

  EXPECT_EQ(original.inventory->size(), reordered.inventory->size());
  EXPECT_EQ(InventoryDigest(*original.inventory),
            InventoryDigest(*reordered.inventory));
  EXPECT_EQ(original.trips.trips, reordered.trips.trips);
  EXPECT_EQ(original.cleaning.kept, reordered.cleaning.kept);
}

TEST(PipelinePropertyTest, InvariantToPartitionAndThreadCount) {
  const sim::SimulationOutput archive = SmallArchive();
  std::unique_ptr<Inventory> reference;
  uint64_t reference_digest = 0;
  for (const int partitions : {1, 3, 8}) {
    for (const int threads : {1, 3}) {
      PipelineConfig config;
      config.partitions = partitions;
      config.threads = threads;
      config.resolution = 6;
      PipelineResult result =
          RunPipeline(archive.reports, archive.fleet, config);
      const uint64_t digest = IntegerStatsDigest(*result.inventory);
      if (reference == nullptr) {
        reference_digest = digest;
        reference = std::move(result.inventory);
        continue;
      }
      EXPECT_EQ(result.inventory->size(), reference->size())
          << partitions << "p/" << threads << "t";
      EXPECT_EQ(digest, reference_digest)
          << partitions << "p/" << threads << "t";
      // Floating-point moments agree within merge-tree rounding noise.
      int sampled = 0;
      for (const auto& [key, summary] : result.inventory->summaries()) {
        if (summary.speed().count() == 0 || ++sampled > 500) continue;
        const auto it = reference->summaries().find(key);
        ASSERT_NE(it, reference->summaries().end());
        EXPECT_NEAR(summary.speed().Mean(), it->second.speed().Mean(), 1e-9);
        EXPECT_NEAR(summary.course_mean().MeanDeg(),
                    it->second.course_mean().MeanDeg(), 1e-9);
      }
    }
  }
}

TEST(PipelinePropertyTest, RunToRunReproducible) {
  const sim::SimulationOutput archive = SmallArchive();
  PipelineConfig config;
  config.partitions = 4;
  config.threads = 2;
  config.resolution = 6;
  const PipelineResult a = RunPipeline(archive.reports, archive.fleet, config);
  const PipelineResult b = RunPipeline(archive.reports, archive.fleet, config);
  EXPECT_EQ(InventoryDigest(*a.inventory), InventoryDigest(*b.inventory));
}

}  // namespace
}  // namespace pol::core
