#include "core/cleaning.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/geodesic.h"

namespace pol::core {
namespace {

ais::PositionReport Report(ais::Mmsi mmsi, UnixSeconds t, double lat,
                           double lng, double sog = 12.0) {
  ais::PositionReport r;
  r.mmsi = mmsi;
  r.timestamp = t;
  r.lat_deg = lat;
  r.lng_deg = lng;
  r.sog_knots = sog;
  r.cog_deg = 90.0;
  r.heading_deg = 91.0;
  r.nav_status = ais::NavStatus::kUnderWayUsingEngine;
  r.message_type = 1;
  return r;
}

TEST(CleaningTest, KeepsValidOrderedTrack) {
  flow::ThreadPool pool(2);
  std::vector<ais::PositionReport> reports;
  for (int i = 0; i < 100; ++i) {
    // 12 kn due east: ~0.0037 deg longitude per minute at the equator.
    reports.push_back(Report(215000001, 1000 + i * 60, 0.0, i * 0.0037));
  }
  CleaningStats stats;
  const auto cleaned = CleanReports(reports, {}, &pool, &stats);
  EXPECT_EQ(stats.input, 100u);
  EXPECT_EQ(stats.kept, 100u);
  EXPECT_EQ(stats.invalid_fields, 0u);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.infeasible_jumps, 0u);
}

TEST(CleaningTest, DropsFieldViolations) {
  flow::ThreadPool pool(2);
  std::vector<ais::PositionReport> reports = {
      Report(215000001, 1000, 0.0, 0.0),
      Report(215000001, 1060, 91.0, 0.0),     // Lat unavailable.
      Report(215000001, 1120, 0.0, 181.0),    // Lng unavailable.
      Report(215000001, 1180, 0.0, 0.01, 170.0),  // Speed out of range.
      Report(215000001, 1240, 0.0, 0.01),
  };
  CleaningStats stats;
  const auto cleaned = CleanReports(reports, {}, &pool, &stats);
  EXPECT_EQ(stats.invalid_fields, 3u);
  EXPECT_EQ(stats.kept, 2u);
}

TEST(CleaningTest, SortsOutOfOrderTimestamps) {
  flow::ThreadPool pool(2);
  std::vector<ais::PositionReport> reports = {
      Report(215000001, 3000, 0.0, 0.02),
      Report(215000001, 1000, 0.0, 0.00),
      Report(215000001, 2000, 0.0, 0.01),
  };
  CleaningStats stats;
  const auto cleaned = CleanReports(reports, {}, &pool, &stats);
  const auto records = cleaned.Collect();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].timestamp, 1000);
  EXPECT_EQ(records[1].timestamp, 2000);
  EXPECT_EQ(records[2].timestamp, 3000);
}

TEST(CleaningTest, RemovesExactDuplicates) {
  flow::ThreadPool pool(2);
  std::vector<ais::PositionReport> reports = {
      Report(215000001, 1000, 10.0, 20.0),
      Report(215000001, 1000, 10.0, 20.0),  // Duplicate reception.
      Report(215000001, 1000, 10.0, 20.0),  // Triplicate.
      Report(215000001, 1060, 10.0, 20.005),
  };
  CleaningStats stats;
  const auto cleaned = CleanReports(reports, {}, &pool, &stats);
  EXPECT_EQ(stats.duplicates, 2u);
  EXPECT_EQ(stats.kept, 2u);
}

TEST(CleaningTest, DropsInfeasibleJumps) {
  flow::ThreadPool pool(2);
  std::vector<ais::PositionReport> reports = {
      Report(215000001, 1000, 0.0, 0.0),
      Report(215000001, 1060, 2.0, 0.0),  // ~120 nm in a minute.
      Report(215000001, 1120, 0.0, 0.007),
  };
  CleaningStats stats;
  const auto cleaned = CleanReports(reports, {}, &pool, &stats);
  EXPECT_EQ(stats.infeasible_jumps, 1u);
  EXPECT_EQ(stats.kept, 2u);
  for (const auto& record : cleaned.Collect()) {
    EXPECT_NEAR(record.lat_deg, 0.0, 0.01);
  }
}

TEST(CleaningTest, FiftyKnotThresholdIsConfigurable) {
  flow::ThreadPool pool(2);
  // 1 degree of longitude at the equator in one hour = 60 kn.
  std::vector<ais::PositionReport> reports = {
      Report(215000001, 0, 0.0, 0.0),
      Report(215000001, 3600, 0.0, 1.0),
  };
  CleaningConfig strict;
  strict.max_speed_knots = 50.0;
  CleaningStats stats;
  CleanReports(reports, strict, &pool, &stats);
  EXPECT_EQ(stats.infeasible_jumps, 1u);

  CleaningConfig lenient;
  lenient.max_speed_knots = 70.0;
  CleanReports(reports, lenient, &pool, &stats);
  EXPECT_EQ(stats.infeasible_jumps, 0u);
}

TEST(CleaningTest, JumpFilterRecoversAfterOutlier) {
  // A single GPS jump must not poison the rest of the track: the filter
  // compares against the last KEPT point.
  flow::ThreadPool pool(2);
  std::vector<ais::PositionReport> reports;
  for (int i = 0; i < 20; ++i) {
    reports.push_back(Report(215000001, i * 600, 0.0, i * 0.03));
  }
  // Inject a far-away fix mid-track.
  reports[10].lat_deg = 45.0;
  CleaningStats stats;
  const auto cleaned = CleanReports(reports, {}, &pool, &stats);
  EXPECT_EQ(stats.infeasible_jumps, 1u);
  EXPECT_EQ(stats.kept, 19u);
}

TEST(CleaningTest, VesselsDoNotInterfere) {
  flow::ThreadPool pool(4);
  std::vector<ais::PositionReport> reports;
  // Two vessels far apart, interleaved in the input: per-vessel
  // partitioning must keep their tracks independent (no cross-vessel
  // "jump" filtering).
  for (int i = 0; i < 50; ++i) {
    reports.push_back(Report(215000001, 1000 + i * 60, 0.0, i * 0.0037));
    reports.push_back(Report(377000002, 1000 + i * 60, 50.0, i * 0.0037));
  }
  CleaningStats stats;
  const auto cleaned = CleanReports(reports, {}, &pool, &stats);
  EXPECT_EQ(stats.kept, 100u);
  EXPECT_EQ(stats.infeasible_jumps, 0u);
  // Vessel runs must be contiguous in partitions.
  for (int p = 0; p < cleaned.num_partitions(); ++p) {
    const auto& part = cleaned.partition(p);
    for (size_t i = 1; i < part.size(); ++i) {
      if (part[i].mmsi == part[i - 1].mmsi) {
        EXPECT_GE(part[i].timestamp, part[i - 1].timestamp);
      }
    }
  }
}

TEST(CleaningTest, ResultIndependentOfPartitionCount) {
  Rng rng(9);
  std::vector<ais::PositionReport> reports;
  for (int v = 0; v < 7; ++v) {
    double lng = rng.Uniform(-10, 10);
    for (int i = 0; i < 200; ++i) {
      lng += 0.003;
      reports.push_back(Report(static_cast<ais::Mmsi>(215000001 + v),
                               1000 + i * 60, 0.0, lng));
    }
  }
  std::vector<uint64_t> kept;
  for (const int partitions : {1, 4, 16}) {
    flow::ThreadPool pool(2);
    CleaningConfig config;
    config.partitions = partitions;
    CleaningStats stats;
    CleanReports(reports, config, &pool, &stats);
    kept.push_back(stats.kept);
  }
  EXPECT_EQ(kept[0], kept[1]);
  EXPECT_EQ(kept[1], kept[2]);
}

}  // namespace
}  // namespace pol::core
