// Incremental-update property: building per-period inventories and
// merging them equals one build over the whole archive — the operational
// mode a production deployment needs (daily batches folded into the
// global inventory).

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "hexgrid/hexgrid.h"
#include "sim/fleet.h"

namespace pol::core {
namespace {

PipelineConfig Config() {
  PipelineConfig config;
  config.partitions = 4;
  config.threads = 2;
  config.resolution = 6;
  return config;
}

TEST(InventoryMergeTest, PeriodMergeEqualsWholeBuild) {
  sim::FleetConfig fleet_config;
  fleet_config.seed = 909;
  fleet_config.commercial_vessels = 25;
  fleet_config.noncommercial_vessels = 0;
  fleet_config.start_time = 1640995200;
  fleet_config.end_time = fleet_config.start_time + 120 * kSecondsPerDay;
  const sim::SimulationOutput archive =
      sim::FleetSimulator(fleet_config).Run();

  // Split the archive at mid-window.
  const UnixSeconds mid = fleet_config.start_time + 60 * kSecondsPerDay;
  std::vector<ais::PositionReport> first_half;
  std::vector<ais::PositionReport> second_half;
  for (const auto& report : archive.reports) {
    (report.timestamp < mid ? first_half : second_half).push_back(report);
  }
  ASSERT_FALSE(first_half.empty());
  ASSERT_FALSE(second_half.empty());

  PipelineResult whole = RunPipeline(archive.reports, archive.fleet, Config());
  PipelineResult part_a = RunPipeline(first_half, archive.fleet, Config());
  PipelineResult part_b = RunPipeline(second_half, archive.fleet, Config());
  ASSERT_TRUE(part_a.inventory->MergeFrom(std::move(*part_b.inventory)).ok());
  const Inventory& merged = *part_a.inventory;

  // NOTE: exact equality is not expected — a voyage straddling the split
  // is cut in half (its second part has no origin), which is the real
  // operational behaviour of batch boundaries too. The merged inventory
  // must cover at least all cells of both halves and approximate the
  // whole build closely.
  // Voyages average ~2 weeks, so roughly an eighth of them straddle a
  // 60-day boundary; their cells can drop out of the halves.
  EXPECT_GT(merged.DistinctCells(),
            whole.inventory->DistinctCells() * 7 / 10);
  EXPECT_LE(merged.DistinctCells(), whole.inventory->DistinctCells());

  // Cells covered by both builds must agree on per-record statistics
  // derived from non-straddling traffic: compare record counts loosely
  // and speed means tightly where both have solid support.
  int compared = 0;
  for (const auto& [key, summary] : merged.summaries()) {
    if (key.grouping_set != 0 || summary.speed().count() < 30) continue;
    const CellSummary* reference = whole.inventory->Cell(key.cell);
    if (reference == nullptr || reference->speed().count() < 30) continue;
    ++compared;
    EXPECT_NEAR(summary.speed().Mean(), reference->speed().Mean(), 1.5)
        << GroupKeyToString(key);
  }
  EXPECT_GT(compared, 5);
}

TEST(InventoryMergeTest, MergeOfIdenticalPeriodsDoublesCounts) {
  sim::FleetConfig fleet_config;
  fleet_config.seed = 910;
  fleet_config.commercial_vessels = 5;
  fleet_config.noncommercial_vessels = 0;
  fleet_config.start_time = 1640995200;
  fleet_config.end_time = fleet_config.start_time + 20 * kSecondsPerDay;
  const sim::SimulationOutput archive =
      sim::FleetSimulator(fleet_config).Run();
  PipelineResult a = RunPipeline(archive.reports, archive.fleet, Config());
  PipelineResult b = RunPipeline(archive.reports, archive.fleet, Config());
  const uint64_t single_records = [&] {
    uint64_t n = 0;
    for (const auto& [key, s] : a.inventory->summaries()) {
      if (key.grouping_set == 0) n += s.record_count();
    }
    return n;
  }();
  ASSERT_TRUE(a.inventory->MergeFrom(std::move(*b.inventory)).ok());
  uint64_t merged_records = 0;
  for (const auto& [key, s] : a.inventory->summaries()) {
    if (key.grouping_set == 0) merged_records += s.record_count();
  }
  EXPECT_EQ(merged_records, 2 * single_records);
}

TEST(InventoryMergeTest, ResolutionMismatchFails) {
  Inventory a(6, SummaryMap{});
  Inventory b(7, SummaryMap{});
  EXPECT_EQ(a.MergeFrom(std::move(b)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(InventoryMergeTest, MergeIsAssociativeOnCounts) {
  // (A + B) + C == A + (B + C) for record counts per key.
  auto make = [](uint64_t seed) {
    sim::FleetConfig fc;
    fc.seed = seed;
    fc.commercial_vessels = 4;
    fc.noncommercial_vessels = 0;
    fc.start_time = 1640995200;
    fc.end_time = fc.start_time + 15 * kSecondsPerDay;
    const sim::SimulationOutput archive = sim::FleetSimulator(fc).Run();
    return RunPipeline(archive.reports, archive.fleet, Config());
  };
  PipelineResult a1 = make(1);
  PipelineResult b1 = make(2);
  PipelineResult c1 = make(3);
  PipelineResult a2 = make(1);
  PipelineResult b2 = make(2);
  PipelineResult c2 = make(3);

  ASSERT_TRUE(a1.inventory->MergeFrom(std::move(*b1.inventory)).ok());
  ASSERT_TRUE(a1.inventory->MergeFrom(std::move(*c1.inventory)).ok());

  ASSERT_TRUE(b2.inventory->MergeFrom(std::move(*c2.inventory)).ok());
  ASSERT_TRUE(a2.inventory->MergeFrom(std::move(*b2.inventory)).ok());

  ASSERT_EQ(a1.inventory->size(), a2.inventory->size());
  for (const auto& [key, summary] : a1.inventory->summaries()) {
    const auto it = a2.inventory->summaries().find(key);
    ASSERT_NE(it, a2.inventory->summaries().end()) << GroupKeyToString(key);
    EXPECT_EQ(summary.record_count(), it->second.record_count());
    EXPECT_DOUBLE_EQ(summary.speed().Mean(), it->second.speed().Mean());
  }
}

}  // namespace
}  // namespace pol::core
