#include "core/group_key.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.h"
#include "hexgrid/hexgrid.h"

namespace pol::core {
namespace {

TEST(GroupKeyTest, ConstructorsSetDimensions) {
  const hex::CellIndex cell = hex::LatLngToCell({1.3, 103.8}, 6);

  const GroupKey k1 = KeyCell(cell);
  EXPECT_EQ(k1.grouping_set, static_cast<uint8_t>(GroupingSet::kCell));
  EXPECT_EQ(k1.segment, kAnySegment);
  EXPECT_EQ(k1.origin, kAnyPort);

  const GroupKey k2 = KeyCellType(cell, ais::MarketSegment::kTanker);
  EXPECT_EQ(k2.grouping_set, static_cast<uint8_t>(GroupingSet::kCellType));
  EXPECT_EQ(k2.segment, static_cast<uint8_t>(ais::MarketSegment::kTanker));

  const GroupKey k3 =
      KeyCellRouteType(cell, 12, 47, ais::MarketSegment::kContainer);
  EXPECT_EQ(k3.grouping_set,
            static_cast<uint8_t>(GroupingSet::kCellRouteType));
  EXPECT_EQ(k3.origin, 12);
  EXPECT_EQ(k3.destination, 47);
}

TEST(GroupKeyTest, GroupingSetsNeverCollide) {
  const hex::CellIndex cell = hex::LatLngToCell({1.3, 103.8}, 6);
  const GroupKey k1 = KeyCell(cell);
  const GroupKey k2 = KeyCellType(cell, ais::MarketSegment::kOther);
  const GroupKey k3 =
      KeyCellRouteType(cell, kAnyPort, kAnyPort, ais::MarketSegment::kOther);
  EXPECT_FALSE(k1 == k2);
  EXPECT_FALSE(k2 == k3);
  EXPECT_FALSE(k1 == k3);
}

TEST(GroupKeyTest, PackedDimsRoundTripThroughInventoryDecoding) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    GroupKey key;
    key.cell = rng.NextUint64() >> 1;
    key.grouping_set = static_cast<uint8_t>(rng.NextBelow(3));
    key.segment = static_cast<uint8_t>(rng.NextBelow(256));
    key.origin = static_cast<uint16_t>(rng.NextBelow(65536));
    key.destination = static_cast<uint16_t>(rng.NextBelow(65536));
    const uint64_t dims = GroupKeyDimsPacked(key);
    GroupKey decoded;
    decoded.cell = key.cell;
    decoded.grouping_set = static_cast<uint8_t>(dims & 0xff);
    decoded.segment = static_cast<uint8_t>((dims >> 8) & 0xff);
    decoded.origin = static_cast<uint16_t>((dims >> 16) & 0xffff);
    decoded.destination = static_cast<uint16_t>((dims >> 32) & 0xffff);
    EXPECT_TRUE(decoded == key);
  }
}

TEST(GroupKeyTest, HashSpreadsKeys) {
  // Distinct keys across cells and dimensions should hash distinctly
  // (no systematic collisions that would skew the reduce buckets).
  std::unordered_set<size_t> hashes;
  int keys = 0;
  for (double lat = -60; lat <= 60; lat += 8) {
    for (double lng = -170; lng <= 170; lng += 16) {
      const hex::CellIndex cell = hex::LatLngToCell({lat, lng}, 6);
      for (int s = 0; s < 3; ++s) {
        hashes.insert(GroupKeyHash{}(
            KeyCellType(cell, static_cast<ais::MarketSegment>(s))));
        ++keys;
      }
    }
  }
  EXPECT_EQ(hashes.size(), static_cast<size_t>(keys));
}

TEST(GroupKeyTest, ToStringIsReadable) {
  const hex::CellIndex cell = hex::LatLngToCell({1.3, 103.8}, 6);
  const std::string s =
      GroupKeyToString(KeyCellRouteType(cell, 3, 9, ais::MarketSegment::kTanker));
  EXPECT_NE(s.find("gs2"), std::string::npos);
  EXPECT_NE(s.find("o3"), std::string::npos);
  EXPECT_NE(s.find("d9"), std::string::npos);
}

}  // namespace
}  // namespace pol::core
