// ServingInventory under fire: reader threads keep querying through
// repeated snapshot swaps. Runs in the --tsan pass of
// tools/run_tier1.sh, where torn reads, use-after-free on a retired
// snapshot, or an unsynchronized publish would be caught; under plain
// builds it still asserts the visible contract — readers only ever see
// fully sealed snapshots, and metrics land in the run report.

#include "core/serving_inventory.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/inventory.h"
#include "core/run_report.h"
#include "hexgrid/hexgrid.h"
#include "obs/metrics.h"

namespace pol::core {
namespace {

constexpr sim::PortId kOrigin = 3;
constexpr sim::PortId kDestination = 21;
constexpr auto kSegment = ais::MarketSegment::kContainer;

// A batch whose route corridor carries `cells` cells; every batch keyed
// the same way, so merged generations grow the same route.
Inventory Batch(int generation, int cells) {
  SummaryMap summaries;
  for (int i = 0; i < cells; ++i) {
    const hex::CellIndex cell = hex::LatLngToCell(
        {1.0 + 0.2 * generation, 100.0 + 0.4 * i}, 6);
    PipelineRecord r;
    r.mmsi = 215000001;
    r.trip_id = static_cast<uint64_t>(generation * 1000 + i);
    r.origin = kOrigin;
    r.destination = kDestination;
    r.segment = kSegment;
    r.sog_knots = 13;
    r.cog_deg = 90;
    r.heading_deg = 90;
    r.eto_s = 3600;
    r.ata_s = 7200;
    for (const GroupKey& key :
         {KeyCell(cell), KeyCellType(cell, kSegment),
          KeyCellRouteType(cell, kOrigin, kDestination, kSegment)}) {
      auto [it, inserted] = summaries.try_emplace(key);
      (void)inserted;
      it->second.Add(r);
    }
  }
  return Inventory(6, std::move(summaries));
}

TEST(ServingInventoryTest, PublishesOnConstructionAndRefresh) {
  ServingInventory serving(Batch(0, 3));
  EXPECT_EQ(serving.swap_count(), 1u);
  const size_t before = serving.size();
  ASSERT_TRUE(serving.Refresh(Batch(1, 3)).ok());
  EXPECT_EQ(serving.swap_count(), 2u);
  EXPECT_GT(serving.size(), before);
  // A mismatched-resolution delta is rejected and nothing is published.
  SummaryMap empty;
  EXPECT_FALSE(serving.Refresh(Inventory(7, std::move(empty))).ok());
  EXPECT_EQ(serving.swap_count(), 2u);
}

TEST(ServingInventoryTest, FailedRefreshLeavesBothSidesByteIdentical) {
  // A resolution-mismatched delta must be a complete no-op: build side
  // byte-identical, the very same snapshot object still published, and
  // no swap recorded.
  ServingInventory serving(Batch(0, 3));
  std::string before;
  serving.SerializeBuildSide(&before);
  const std::shared_ptr<const InventorySnapshot> active = serving.Acquire();
  const uint64_t swaps = serving.swap_count();

  SummaryMap mismatched;
  const Status status = serving.Refresh(Inventory(7, std::move(mismatched)));
  ASSERT_FALSE(status.ok());
  // A caller error, not a transient store fault — the circuit breaker
  // and retry loops must not treat it as retryable.
  EXPECT_FALSE(status.IsRetryable());

  std::string after;
  serving.SerializeBuildSide(&after);
  EXPECT_EQ(before, after);
  EXPECT_EQ(serving.Acquire().get(), active.get());
  EXPECT_EQ(serving.swap_count(), swaps);
}

TEST(ServingInventoryTest, AcquireKeepsRetiredSnapshotsAlive) {
  ServingInventory serving(Batch(0, 3));
  const std::shared_ptr<const InventorySnapshot> pinned = serving.Acquire();
  const size_t pinned_size = pinned->size();
  ASSERT_TRUE(serving.Refresh(Batch(1, 4)).ok());
  // The pinned snapshot still answers from its own generation.
  EXPECT_EQ(pinned->size(), pinned_size);
  EXPECT_LT(pinned->size(), serving.Acquire()->size());
}

TEST(ServingInventoryTest, ReadersNeverSeeTornSnapshotsAcrossSwaps) {
  constexpr int kReaders = 4;
  constexpr int kRefreshes = 40;
  ServingInventory serving(Batch(0, 2));

  // Legal snapshot sizes: generation g holds batches 0..g, each batch
  // adding 3 new groups per cell with disjoint cells per generation.
  std::set<size_t> legal_sizes;
  {
    Inventory accumulated = Batch(0, 2);
    legal_sizes.insert(accumulated.size());
    for (int g = 1; g <= kRefreshes; ++g) {
      ASSERT_TRUE(accumulated.MergeFrom(Batch(g, 2)).ok());
      legal_sizes.insert(accumulated.size());
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&serving, &stop, &reads, &torn, &legal_sizes] {
      while (!stop.load(std::memory_order_acquire)) {
        // One consistent view across several queries.
        const std::shared_ptr<const InventorySnapshot> snap =
            serving.Acquire();
        if (legal_sizes.count(snap->size()) == 0) torn.fetch_add(1);
        const std::vector<hex::CellIndex> corridor =
            snap->CellsForRoute(kOrigin, kDestination, kSegment);
        // Reversed pair answers the same corridor on every generation.
        if (snap->CellsForRoute(kDestination, kOrigin, kSegment) != corridor) {
          torn.fetch_add(1);
        }
        uint64_t visited = 0;
        snap->VisitGroupingSet(GroupingSet::kCellRouteType,
                               [&visited](const GroupKey&,
                                          const CellSummary&) { ++visited; });
        if (visited != corridor.size()) torn.fetch_add(1);
        // And the delegating interface path (thread-local anchoring).
        for (const hex::CellIndex cell : corridor) {
          if (serving.Cell(cell) == nullptr) torn.fetch_add(1);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int g = 1; g <= kRefreshes; ++g) {
    ASSERT_TRUE(serving.Refresh(Batch(g, 2)).ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(serving.swap_count(), static_cast<uint64_t>(kRefreshes) + 1);
}

TEST(ServingInventoryTest, MetricsSurfaceInRunReport) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with POL_OBS=OFF";
  ServingInventory serving(Batch(0, 2));
  ASSERT_TRUE(serving.Refresh(Batch(1, 2)).ok());
  (void)serving.Acquire();

  PipelineConfig config;
  PipelineResult result;
  const obs::Json report = BuildRunReport(config, result);
  EXPECT_EQ(report.GetString("schema"), "pol.run_report/1");
  const obs::Json* metrics = report.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const obs::Json* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->GetUint64("serving.seals"), 2u);
  EXPECT_GE(counters->GetUint64("serving.swaps"), 2u);
  EXPECT_GE(counters->GetUint64("serving.reader_acquisitions"), 1u);
  const obs::Json* gauges = metrics->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->GetUint64("serving.active_snapshot_summaries"),
            serving.size());
  const obs::Json* histograms = metrics->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const obs::Json* seal = histograms->Find("serving.seal_seconds");
  ASSERT_NE(seal, nullptr);
  EXPECT_GE(seal->GetUint64("count"), 2u);
}

}  // namespace
}  // namespace pol::core
