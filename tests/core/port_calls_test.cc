#include "core/port_calls.h"

#include <gtest/gtest.h>

#include "core/cleaning.h"
#include "sim/fleet.h"

namespace pol::core {
namespace {

sim::PortDatabase TwoPorts() {
  sim::Port a;
  a.name = "Alpha";
  a.position = {0.0, 0.0};
  a.geofence_radius_km = 10.0;
  sim::Port b;
  b.name = "Beta";
  b.position = {0.0, 4.5};
  b.geofence_radius_km = 10.0;
  return sim::PortDatabase({a, b});
}

PipelineRecord At(ais::Mmsi mmsi, UnixSeconds t, double lat, double lng,
                  double sog) {
  PipelineRecord r;
  r.mmsi = mmsi;
  r.timestamp = t;
  r.lat_deg = lat;
  r.lng_deg = lng;
  r.sog_knots = sog;
  r.cog_deg = 90;
  r.heading_deg = 90;
  return r;
}

TEST(PortCallsTest, ReconstructsASimpleCall) {
  const sim::PortDatabase ports = TwoPorts();
  const Geofencer geofencer(&ports, 7);
  flow::ThreadPool pool(2);
  std::vector<PipelineRecord> records;
  // Two hours alongside in Alpha, reports every 10 minutes.
  for (int i = 0; i <= 12; ++i) {
    records.push_back(At(215000001, 10000 + i * 600, 0.0, 0.0, 0.2));
  }
  const auto calls = ExtractPortCalls(
      flow::Dataset<PipelineRecord>::FromVector(records, 1, &pool),
      geofencer);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].mmsi, 215000001u);
  EXPECT_EQ(calls[0].port, 1u);
  EXPECT_EQ(calls[0].arrival, 10000);
  EXPECT_EQ(calls[0].departure, 10000 + 12 * 600);
  EXPECT_EQ(calls[0].records, 13u);
  EXPECT_EQ(calls[0].DurationSeconds(), 7200);
}

TEST(PortCallsTest, ShortNoiseIsDiscarded) {
  const sim::PortDatabase ports = TwoPorts();
  const Geofencer geofencer(&ports, 7);
  flow::ThreadPool pool(2);
  // A single slow fix inside the fence: below the 15-minute minimum.
  const auto calls = ExtractPortCalls(
      flow::Dataset<PipelineRecord>::FromVector(
          {At(215000001, 10000, 0.0, 0.0, 0.2)}, 1, &pool),
      geofencer);
  EXPECT_TRUE(calls.empty());
}

TEST(PortCallsTest, TransitDoesNotCreateCalls) {
  const sim::PortDatabase ports = TwoPorts();
  const Geofencer geofencer(&ports, 7);
  flow::ThreadPool pool(2);
  std::vector<PipelineRecord> records;
  // Sailing straight through Alpha's fence at 14 knots for an hour.
  for (int i = 0; i <= 6; ++i) {
    records.push_back(
        At(215000001, 10000 + i * 600, 0.0, -0.06 + i * 0.02, 14.0));
  }
  const auto calls = ExtractPortCalls(
      flow::Dataset<PipelineRecord>::FromVector(records, 1, &pool),
      geofencer);
  EXPECT_TRUE(calls.empty());
}

TEST(PortCallsTest, ReceptionGapsMergeIntoOneCall) {
  const sim::PortDatabase ports = TwoPorts();
  const Geofencer geofencer(&ports, 7);
  flow::ThreadPool pool(2);
  std::vector<PipelineRecord> records;
  // Alongside, with a 6-hour reception hole in the middle.
  for (int i = 0; i <= 6; ++i) {
    records.push_back(At(215000001, 10000 + i * 600, 0.0, 0.0, 0.2));
  }
  const UnixSeconds resume = 10000 + 6 * 600 + 6 * 3600;
  for (int i = 0; i <= 6; ++i) {
    records.push_back(At(215000001, resume + i * 600, 0.0, 0.0, 0.2));
  }
  const auto calls = ExtractPortCalls(
      flow::Dataset<PipelineRecord>::FromVector(records, 1, &pool),
      geofencer);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].arrival, 10000);
  EXPECT_EQ(calls[0].departure, resume + 6 * 600);
}

TEST(PortCallsTest, LongAbsenceSplitsCalls) {
  const sim::PortDatabase ports = TwoPorts();
  const Geofencer geofencer(&ports, 7);
  flow::ThreadPool pool(2);
  std::vector<PipelineRecord> records;
  for (int i = 0; i <= 3; ++i) {
    records.push_back(At(215000001, 10000 + i * 600, 0.0, 0.0, 0.2));
  }
  const UnixSeconds later = 10000 + 3 * 600 + 48 * 3600;  // Two days.
  for (int i = 0; i <= 3; ++i) {
    records.push_back(At(215000001, later + i * 600, 0.0, 0.0, 0.2));
  }
  const auto calls = ExtractPortCalls(
      flow::Dataset<PipelineRecord>::FromVector(records, 1, &pool),
      geofencer);
  EXPECT_EQ(calls.size(), 2u);
}

TEST(PortCallsTest, MooredStatusCountsEvenWithSpeedNoise) {
  const sim::PortDatabase ports = TwoPorts();
  const Geofencer geofencer(&ports, 7);
  flow::ThreadPool pool(2);
  std::vector<PipelineRecord> records;
  for (int i = 0; i <= 4; ++i) {
    // GPS speed noise of 3 kn, but status says moored.
    PipelineRecord r = At(215000001, 10000 + i * 600, 0.0, 0.0, 3.0);
    r.nav_status = ais::NavStatus::kMoored;
    records.push_back(r);
  }
  const auto calls = ExtractPortCalls(
      flow::Dataset<PipelineRecord>::FromVector(records, 1, &pool),
      geofencer);
  ASSERT_EQ(calls.size(), 1u);
}

TEST(PortCallsTest, EndToEndAgainstSimulatedStays) {
  // Every simulated port stay should reconstruct as one call at the
  // right port; counts line up with the number of completed voyages.
  sim::FleetConfig config;
  config.seed = 33;
  config.commercial_vessels = 8;
  config.noncommercial_vessels = 0;
  config.start_time = 1640995200;
  config.end_time = config.start_time + 45 * kSecondsPerDay;
  config.corrupt_field_rate = 0.0;
  config.position_jump_rate = 0.0;
  const sim::SimulationOutput out = sim::FleetSimulator(config).Run();

  flow::ThreadPool pool(2);
  CleaningStats cleaning;
  const auto cleaned = CleanReports(out.reports, {}, &pool, &cleaning);
  const Geofencer geofencer(&sim::PortDatabase::Global(), 6);
  const auto calls = ExtractPortCalls(cleaned, geofencer);

  // One stay per completed voyage (the final stay may be cut by the
  // window end; anchorage waits are not calls).
  EXPECT_GT(calls.size(), out.voyages.size() / 2);
  EXPECT_LT(calls.size(), out.voyages.size() * 2);
  for (const PortCall& call : calls) {
    EXPECT_GE(call.DurationSeconds(), 15 * 60);
    EXPECT_LT(call.DurationSeconds(), 10 * kSecondsPerDay);
    EXPECT_NE(call.port, sim::kNoPort);
  }
  // Sorted by (mmsi, arrival).
  for (size_t i = 1; i < calls.size(); ++i) {
    if (calls[i].mmsi == calls[i - 1].mmsi) {
      EXPECT_GE(calls[i].arrival, calls[i - 1].departure);
    }
  }
}

}  // namespace
}  // namespace pol::core
