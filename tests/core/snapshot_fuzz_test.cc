// Format hostility: a snapshot generation damaged in any way —
// truncated at any length, any bit flipped, or rewritten as a
// container-valid file whose payload sections lie about each other —
// must come back from the open path as a clean kDataLoss. Never a
// crash, never a silently wrong snapshot. Runs in the --faults pass of
// tools/run_tier1.sh (no fail points needed; the damage is literal).

#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/varint.h"
#include "core/cell_summary.h"
#include "core/group_key.h"
#include "core/inventory.h"
#include "core/inventory_snapshot.h"
#include "core/route_index.h"
#include "core/snapshot_codec.h"
#include "hexgrid/hexgrid.h"
#include "store/snapshot_format.h"
#include "store/snapshot_store.h"

namespace pol::core {
namespace {

// A small but fully populated inventory: all three grouping sets, a
// route corridor, a segment mask — so every payload section is
// non-empty and every truncation/flip lands somewhere that matters.
Inventory SmallInventory() {
  Rng rng(42);
  SummaryMap summaries;
  for (int i = 0; i < 6; ++i) {
    const hex::CellIndex cell =
        hex::LatLngToCell({10.0 + 0.5 * i, 20.0 + 0.5 * i}, 6);
    PipelineRecord r;
    r.mmsi = 215000001;
    r.trip_id = static_cast<uint64_t>(i + 1);
    r.origin = 3;
    r.destination = 21;
    r.segment = ais::MarketSegment::kContainer;
    r.sog_knots = rng.Uniform(5, 20);
    r.cog_deg = rng.Uniform(0, 360);
    r.heading_deg = r.cog_deg;
    r.eto_s = 3600;
    r.ata_s = 7200;
    for (const GroupKey& key :
         {KeyCell(cell), KeyCellType(cell, r.segment),
          KeyCellRouteType(cell, r.origin, r.destination, r.segment)}) {
      summaries.try_emplace(key).first->second.Add(r);
    }
  }
  return Inventory(6, std::move(summaries));
}

class SnapshotFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = (std::filesystem::path(::testing::TempDir()) /
                  ("pol_fuzz_" +
                   std::string(::testing::UnitTest::GetInstance()
                                   ->current_test_info()
                                   ->name())))
                     .string();
    std::filesystem::remove_all(directory_);
    std::filesystem::create_directories(directory_);
  }

  void TearDown() override { std::filesystem::remove_all(directory_); }

  store::SnapshotStore Store() const {
    store::SnapshotStoreOptions options;
    options.directory = directory_;
    // Hostile images are published as successive generations; keep
    // them all so each one can be opened by number.
    options.keep = 1000;
    return store::SnapshotStore(options);
  }

  // Overwrites generation 1 with raw bytes (simulating disk damage
  // after a valid publish) and runs the full open path on it.
  Status OpenDamaged(const store::SnapshotStore& store,
                     std::string_view bytes) const {
    const std::string path = store.GenerationPath(1);
    {
      std::ofstream file(path, std::ios::binary | std::ios::trunc);
      file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    return OpenGenerationSnapshot(store, 1).status();
  }

  std::string directory_;
};

std::string EncodedImage() {
  std::string image;
  SmallInventory().Seal()->EncodeTo(&image);
  return image;
}

TEST_F(SnapshotFuzzTest, UntamperedImageOpens) {
  const store::SnapshotStore store = Store();
  const Status status = OpenDamaged(store, EncodedImage());
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST_F(SnapshotFuzzTest, EveryTruncationIsCleanDataLoss) {
  const std::string image = EncodedImage();
  const store::SnapshotStore store = Store();
  // Every length through the header and table, then a dense sample of
  // the section region (the stride is far below any section size, so
  // every section gets cut mid-record many times).
  std::vector<size_t> lengths;
  for (size_t keep = 0; keep < image.size() && keep < 320; ++keep) {
    lengths.push_back(keep);
  }
  for (size_t keep = 320; keep < image.size(); keep += 13) {
    lengths.push_back(keep);
  }
  for (const size_t keep : lengths) {
    const Status status = OpenDamaged(store, image.substr(0, keep));
    ASSERT_FALSE(status.ok()) << keep << " bytes kept";
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << keep << " bytes kept";
  }
}

TEST_F(SnapshotFuzzTest, EveryBitFlipIsCleanDataLoss) {
  const std::string image = EncodedImage();
  const store::SnapshotStore store = Store();
  // One flipped bit per probed byte, rotating which bit, with a stride
  // small enough to land inside every header field, table entry and
  // payload section. The padding-byte flips matter too: the container
  // validates padding is zero, so no byte in the file is a blind spot.
  for (size_t i = 0; i < image.size(); i += (i < 320 ? 1 : 7)) {
    std::string corrupt = image;
    corrupt[i] = static_cast<char>(corrupt[i] ^ (1u << (i % 8)));
    const Status status = OpenDamaged(store, corrupt);
    ASSERT_FALSE(status.ok()) << "byte " << i;
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << "byte " << i;
  }
}

// --- Container-valid, payload-hostile images. -------------------------
// The container CRCs pass (the builder recomputes them), so only the
// codec's cross-section validation stands between these and a crash.

struct Payloads {
  std::string meta;
  std::array<std::string, kNumGroupingSets> keys;
  std::array<std::string, kNumGroupingSets> offsets;
  std::array<std::string, kNumGroupingSets> blobs;
  std::string spans;
  std::string route_cells;
  std::string segments;
  bool omit_set2_keys = false;

  std::string Finish() const {
    store::SnapshotFileBuilder builder;
    builder.AddSection(kSnapSectionMeta, meta);
    for (uint32_t s = 0; s < kNumGroupingSets; ++s) {
      if (!(s == 2 && omit_set2_keys)) {
        builder.AddSection(kSnapSectionKeysBase + s, keys[s]);
      }
      builder.AddSection(kSnapSectionSummaryOffsetsBase + s, offsets[s]);
      builder.AddSection(kSnapSectionSummaryBlobBase + s, blobs[s]);
    }
    builder.AddSection(kSnapSectionRouteSpans, spans);
    builder.AddSection(kSnapSectionRouteCells, route_cells);
    builder.AddSection(kSnapSectionSegmentIndex, segments);
    return builder.Finish();
  }
};

std::string MetaBytes(uint64_t version, uint64_t resolution,
                      const std::array<uint64_t, kNumGroupingSets>& counts,
                      uint64_t routes, uint64_t route_cells,
                      uint64_t segment_cells) {
  std::string meta;
  PutVarint64(&meta, version);
  PutVarint64(&meta, resolution);
  uint64_t total = 0;
  for (const uint64_t count : counts) total += count;
  PutVarint64(&meta, total);
  for (const uint64_t count : counts) PutVarint64(&meta, count);
  PutVarint64(&meta, routes);
  PutVarint64(&meta, route_cells);
  PutVarint64(&meta, segment_cells);
  PutDouble(&meta, 0.25);       // seal_seconds
  PutVarint64(&meta, 1);        // seal_sequence
  return meta;
}

// A hand-built two-summary snapshot: grouping set 0 holds cells {100,
// 200}, a one-route index, and a one-cell segment mask — the smallest
// payload where ordering and bounds can all be violated.
Payloads ValidPayloads() {
  Payloads p;
  std::string blob;
  const CellSummary summary;
  std::string offsets;
  store::AppendU64(&offsets, blob.size());
  summary.Serialize(&blob);
  store::AppendU64(&offsets, blob.size());
  summary.Serialize(&blob);
  store::AppendU64(&offsets, blob.size());

  std::string keys;
  store::AppendU64(&keys, 100);
  store::AppendU64(&keys, GroupKeyDimsPacked(KeyCell(100)));
  store::AppendU64(&keys, 200);
  store::AppendU64(&keys, GroupKeyDimsPacked(KeyCell(200)));

  p.meta = MetaBytes(kSnapPayloadVersion, 6, {2, 0, 0}, 1, 1, 1);
  p.keys[0] = keys;
  p.offsets[0] = offsets;
  p.blobs[0] = blob;
  for (int s = 1; s < kNumGroupingSets; ++s) {
    store::AppendU64(&p.offsets[static_cast<size_t>(s)], 0);
  }
  store::AppendU64(
      &p.spans, RouteIndex::PackRouteKey(3, 21, ais::MarketSegment::kContainer));
  store::AppendU64(&p.spans, 0);  // begin
  store::AppendU64(&p.spans, 1);  // end
  store::AppendU64(&p.route_cells, 100);
  store::AppendU64(&p.segments, 100);
  store::AppendU64(&p.segments, 1);  // segment mask
  return p;
}

class SnapshotHostileTest : public SnapshotFuzzTest {
 protected:
  // Publishes a container-valid image and opens it through the codec.
  Status OpenHostile(const Payloads& payloads) {
    store::SnapshotStore store = Store();
    const Result<uint64_t> generation = store.Publish(payloads.Finish());
    EXPECT_TRUE(generation.ok()) << generation.status().ToString();
    if (!generation.ok()) return generation.status();
    return OpenGenerationSnapshot(store, *generation).status();
  }
};

TEST_F(SnapshotHostileTest, BaselineOpens) {
  const Status status = OpenHostile(ValidPayloads());
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST_F(SnapshotHostileTest, UnsupportedPayloadVersion) {
  Payloads p = ValidPayloads();
  p.meta = MetaBytes(kSnapPayloadVersion + 1, 6, {2, 0, 0}, 1, 1, 1);
  EXPECT_EQ(OpenHostile(p).code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotHostileTest, AbsurdResolution) {
  Payloads p = ValidPayloads();
  p.meta = MetaBytes(kSnapPayloadVersion, 99, {2, 0, 0}, 1, 1, 1);
  EXPECT_EQ(OpenHostile(p).code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotHostileTest, TruncatedMeta) {
  Payloads p = ValidPayloads();
  p.meta = p.meta.substr(0, 3);
  EXPECT_EQ(OpenHostile(p).code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotHostileTest, MissingKeySection) {
  Payloads p = ValidPayloads();
  p.omit_set2_keys = true;
  EXPECT_EQ(OpenHostile(p).code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotHostileTest, KeySectionSizeDisagreesWithMeta) {
  Payloads p = ValidPayloads();
  p.keys[0].resize(p.keys[0].size() - 8);
  EXPECT_EQ(OpenHostile(p).code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotHostileTest, KeysOutOfOrder) {
  Payloads p = ValidPayloads();
  std::string swapped = p.keys[0].substr(16, 16) + p.keys[0].substr(0, 16);
  p.keys[0] = swapped;
  EXPECT_EQ(OpenHostile(p).code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotHostileTest, DuplicateKeys) {
  Payloads p = ValidPayloads();
  p.keys[0] = p.keys[0].substr(0, 16) + p.keys[0].substr(0, 16);
  EXPECT_EQ(OpenHostile(p).code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotHostileTest, OffsetsNotMonotone) {
  Payloads p = ValidPayloads();
  // Swap the first two offsets: [0, a, b] -> [a, 0, b].
  std::string swapped = p.offsets[0].substr(8, 8) + p.offsets[0].substr(0, 8) +
                        p.offsets[0].substr(16, 8);
  p.offsets[0] = swapped;
  EXPECT_EQ(OpenHostile(p).code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotHostileTest, OffsetBeyondBlob) {
  Payloads p = ValidPayloads();
  std::string overrun = p.offsets[0].substr(0, 16);
  store::AppendU64(&overrun, p.blobs[0].size() + 1000);
  p.offsets[0] = overrun;
  EXPECT_EQ(OpenHostile(p).code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotHostileTest, BlobTrailingBytes) {
  Payloads p = ValidPayloads();
  p.blobs[0] += "stowaway";
  EXPECT_EQ(OpenHostile(p).code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotHostileTest, RouteSpanOutOfBounds) {
  Payloads p = ValidPayloads();
  p.spans.clear();
  store::AppendU64(
      &p.spans, RouteIndex::PackRouteKey(3, 21, ais::MarketSegment::kContainer));
  store::AppendU64(&p.spans, 0);
  store::AppendU64(&p.spans, 7);  // end > route cell count (1)
  EXPECT_EQ(OpenHostile(p).code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotHostileTest, RouteSpansOutOfOrder) {
  Payloads p = ValidPayloads();
  std::string second;
  store::AppendU64(&second, 1);  // Route key below the first span's.
  store::AppendU64(&second, 0);
  store::AppendU64(&second, 0);
  p.spans += second;
  p.meta = MetaBytes(kSnapPayloadVersion, 6, {2, 0, 0}, 2, 1, 1);
  EXPECT_EQ(OpenHostile(p).code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotHostileTest, SegmentIndexOutOfOrder) {
  Payloads p = ValidPayloads();
  std::string duplicate;
  store::AppendU64(&duplicate, 100);  // Same cell again: not ascending.
  store::AppendU64(&duplicate, 2);
  p.segments += duplicate;
  p.meta = MetaBytes(kSnapPayloadVersion, 6, {2, 0, 0}, 1, 1, 2);
  EXPECT_EQ(OpenHostile(p).code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotHostileTest, SegmentSectionSizeDisagreesWithMeta) {
  Payloads p = ValidPayloads();
  p.segments += "xtra";
  EXPECT_EQ(OpenHostile(p).code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace pol::core
