// End-to-end integration: simulator output through the full pipeline.

#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "geo/geodesic.h"
#include "hexgrid/hexgrid.h"
#include "sim/fleet.h"

namespace pol::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::FleetConfig config;
    config.seed = 99;
    config.commercial_vessels = 15;
    config.noncommercial_vessels = 12;
    config.start_time = 1640995200;
    config.end_time = config.start_time + 45 * kSecondsPerDay;
    config.coastal_interval_s = 300;
    config.ocean_interval_s = 1200;
    output_ = new sim::SimulationOutput(sim::FleetSimulator(config).Run());

    PipelineConfig pipeline_config;
    pipeline_config.partitions = 4;
    pipeline_config.threads = 2;
    pipeline_config.resolution = 6;
    result_ = new PipelineResult(
        RunPipeline(output_->reports, output_->fleet, pipeline_config));
  }

  static void TearDownTestSuite() {
    delete result_;
    delete output_;
    result_ = nullptr;
    output_ = nullptr;
  }

  static sim::SimulationOutput* output_;
  static PipelineResult* result_;
};

sim::SimulationOutput* PipelineTest::output_ = nullptr;
PipelineResult* PipelineTest::result_ = nullptr;

TEST_F(PipelineTest, CleaningCatchesInjectedErrors) {
  const CleaningStats& stats = result_->cleaning;
  EXPECT_EQ(stats.input, output_->reports.size());
  // Every injected corrupt field fails validation.
  EXPECT_GE(stats.invalid_fields, output_->injected_corrupt);
  // Injected duplicates are exact copies: nearly all must be caught (a
  // duplicate of a corrupted report is removed by field validation
  // before the dedup scan sees it).
  EXPECT_GE(stats.duplicates, output_->injected_duplicates * 9 / 10);
  // Most injected jumps violate the 50 kn limit (a few small offsets at
  // low reporting rates can be feasible).
  EXPECT_GT(stats.infeasible_jumps, output_->injected_jumps / 2);
  EXPECT_LT(stats.kept, stats.input);
}

TEST_F(PipelineTest, CommercialFilterShrinksData) {
  const EnrichmentStats& stats = result_->enrichment;
  EXPECT_GT(stats.non_commercial, 0u);
  EXPECT_LT(stats.kept, stats.input);
  EXPECT_EQ(stats.unknown_vessel, 0u);  // Registry covers the whole fleet.
}

TEST_F(PipelineTest, TripsAreFound) {
  const TripStats& stats = result_->trips;
  EXPECT_GT(stats.trips, 0u);
  EXPECT_GT(stats.annotated, 0u);
  // Trip count is in the neighbourhood of the simulator's ground truth
  // (exact equality is not expected: cleaning drops reports, fences
  // differ slightly from the simulator's berth placement).
  // Upper slack: a voyage passing through an intermediate port's fence
  // legitimately splits into two trips.
  EXPECT_GT(stats.trips, output_->voyages.size() / 2);
  EXPECT_LT(stats.trips, output_->voyages.size() * 3);
}

TEST_F(PipelineTest, InventoryIsBuilt) {
  const Inventory& inv = *result_->inventory;
  EXPECT_EQ(inv.resolution(), 6);
  EXPECT_GT(inv.size(), 100u);
  EXPECT_GT(inv.DistinctCells(), 50u);
}

TEST_F(PipelineTest, CompressionIsMassive) {
  const CompressionReport report = result_->Compression();
  // The paper reports >98% compression at res 6/7 (Table 4) on a year of
  // data; this 45-day small-fleet config shows the same effect at
  // reduced strength (the full-scale shape is checked by the Table 4
  // bench).
  EXPECT_GT(report.compression, 0.45);
  EXPECT_GT(report.records, report.cells);
  EXPECT_GT(report.utilization, 0.0);
  EXPECT_LT(report.utilization, 0.2);
}

TEST_F(PipelineTest, SummariesReflectVoyageGroundTruth) {
  // Pick a completed voyage and check the inventory around its midpoint:
  // the route-level summary for (origin, destination, segment) must
  // exist along the way.
  const Inventory& inv = *result_->inventory;
  int checked = 0;
  for (const sim::VoyageTruth& voyage : output_->voyages) {
    const auto cells = inv.CellsForRoute(
        voyage.origin, voyage.destination,
        [&]() {
          for (const auto& vessel : output_->fleet) {
            if (vessel.mmsi == voyage.mmsi) return vessel.segment;
          }
          return ais::MarketSegment::kOther;
        }());
    if (cells.empty()) continue;  // Short or heavily-filtered voyage.
    ++checked;
    // The recorded cells must lie within the voyage's reach.
    const sim::Port& origin =
        **sim::PortDatabase::Global().Find(voyage.origin);
    for (const hex::CellIndex cell : cells) {
      EXPECT_LT(geo::HaversineKm(hex::CellToLatLng(cell), origin.position),
                voyage.distance_km + 500.0);
    }
  }
  EXPECT_GT(checked, 0);
}

TEST_F(PipelineTest, SpeedStatisticsArephysical) {
  const Inventory& inv = *result_->inventory;
  for (const auto& [key, summary] : inv.summaries()) {
    if (summary.speed().count() == 0) continue;
    EXPECT_GE(summary.speed().min(), 0.0);
    EXPECT_LE(summary.speed().max(), 102.3);
    EXPECT_LE(summary.speed().Mean(), 30.0) << GroupKeyToString(key);
  }
}

TEST_F(PipelineTest, EtoPlusAtaIsTripDuration) {
  // For every summary, mean(ETO) + mean(ATA) must be a plausible trip
  // duration (positive, below the simulation window).
  const Inventory& inv = *result_->inventory;
  for (const auto& [key, summary] : inv.summaries()) {
    if (summary.eto().count() == 0) continue;
    const double total = summary.eto().Mean() + summary.ata().Mean();
    EXPECT_GT(total, 0.0);
    EXPECT_LT(total, 45.0 * kSecondsPerDay);
  }
}

TEST_F(PipelineTest, ResolutionSevenProducesMoreCells) {
  PipelineConfig config;
  config.partitions = 4;
  config.threads = 2;
  config.resolution = 7;
  const PipelineResult res7 =
      RunPipeline(output_->reports, output_->fleet, config);
  // Finer grid: more cells, lower compression (Table 4's shape).
  EXPECT_GT(res7.inventory->DistinctCells(),
            result_->inventory->DistinctCells());
  EXPECT_LT(res7.Compression().compression,
            result_->Compression().compression);
  EXPECT_LT(res7.Compression().utilization,
            result_->Compression().utilization);
}

}  // namespace
}  // namespace pol::core
