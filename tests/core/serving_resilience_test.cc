// ServingGuard under fire: per-call deadlines (admission-time and
// mid-scan), two-class admission control with bounded queue waits and
// load shedding, and the refresh circuit breaker riding out injected
// merge/seal/swap faults while readers keep getting whole snapshots.
// The chaos soak at the bottom runs in the --tsan and --faults passes
// of tools/run_tier1.sh (--soak); the scripted breaker tests need the
// faults preset (POL_FAILPOINTS) and skip elsewhere.

#include "core/serving_guard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/failpoint.h"
#include "core/inventory.h"
#include "hexgrid/hexgrid.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/querylog.h"
#include "obs/slo.h"

namespace pol::core {
namespace {

#if defined(POL_FAILPOINTS)
constexpr bool kFailPointsEnabled = true;
#else
constexpr bool kFailPointsEnabled = false;
#endif

constexpr sim::PortId kOrigin = 3;
constexpr sim::PortId kDestination = 21;
constexpr auto kSegment = ais::MarketSegment::kContainer;

// Same shape as the serving_inventory_test batches: every generation
// extends the one (origin, destination, segment) route with disjoint
// cells, so corridor size == kCellRouteType group count on every
// generation — the torn-snapshot witness.
Inventory Batch(int generation, int cells) {
  SummaryMap summaries;
  for (int i = 0; i < cells; ++i) {
    const hex::CellIndex cell = hex::LatLngToCell(
        {1.0 + 0.2 * generation, 100.0 + 0.4 * i}, 6);
    PipelineRecord r;
    r.mmsi = 215000001;
    r.trip_id = static_cast<uint64_t>(generation * 1000 + i);
    r.origin = kOrigin;
    r.destination = kDestination;
    r.segment = kSegment;
    r.sog_knots = 13;
    r.cog_deg = 90;
    r.heading_deg = 90;
    r.eto_s = 3600;
    r.ata_s = 7200;
    for (const GroupKey& key :
         {KeyCell(cell), KeyCellType(cell, kSegment),
          KeyCellRouteType(cell, kOrigin, kDestination, kSegment)}) {
      auto [it, inserted] = summaries.try_emplace(key);
      (void)inserted;
      it->second.Add(r);
    }
  }
  return Inventory(6, std::move(summaries));
}

uint64_t CounterValue(const char* name) {
  return obs::Registry::Global().counter(name)->value();
}

TEST(ServingGuardTest, ExpiredDeadlineRejectedBeforeAdmission) {
  ServingInventory store(Batch(0, 3));
  ServingGuard guard(&store);
  bool entered = false;
  const Status status = guard.Run(
      QueryClass::kInteractive, Deadline::AtSeconds(0.0),
      [&entered](const InventorySnapshot&) {
        entered = true;
        return Status::OK();
      });
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(entered);
}

TEST(ServingGuardTest, LongScanCanceledMidFlight) {
  ServingInventory store(Batch(0, 3));
  ServingGuardOptions options;
  options.deadline_check_stride = 1;  // Poll on every summary.
  ServingGuard guard(&store, options);
  const uint64_t scans_before = CounterValue("serving.scan_deadline_exceeded");

  const Deadline deadline = Deadline::AfterSeconds(0.05);
  uint64_t visited = 0;
  const Status status = guard.VisitGroupingSet(
      GroupingSet::kCellRouteType, deadline,
      [&visited, &deadline](const GroupKey&, const CellSummary&) {
        ++visited;
        // Burn past the deadline inside the scan so the next stride
        // check must cancel cooperatively.
        while (!deadline.Expired()) {
        }
      });
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(visited, 1u);
  if (obs::kEnabled) {
    EXPECT_EQ(CounterValue("serving.scan_deadline_exceeded"),
              scans_before + 1);
  }
}

TEST(ServingGuardTest, InfiniteDeadlineAnswersLikeTheRawStore) {
  ServingInventory store(Batch(0, 4));
  ServingGuard guard(&store);

  uint64_t visited = 0;
  ASSERT_TRUE(guard
                  .VisitGroupingSet(
                      GroupingSet::kCellRouteType, Deadline(),
                      [&visited](const GroupKey&, const CellSummary&) {
                        ++visited;
                      })
                  .ok());
  const auto corridor =
      guard.CellsForRoute(kOrigin, kDestination, kSegment, Deadline());
  ASSERT_TRUE(corridor.ok());
  EXPECT_EQ(corridor.value().size(), 4u);
  EXPECT_EQ(visited, corridor.value().size());
  EXPECT_EQ(corridor.value(),
            store.CellsForRoute(kOrigin, kDestination, kSegment));
}

TEST(ServingGuardTest, SaturatedClassShedsInsteadOfQueueingForever) {
  ServingInventory store(Batch(0, 2));
  ServingGuardOptions options;
  options.max_concurrent_interactive = 1;
  options.max_queue_wait_seconds = 0.0;  // Full class = immediate shed.
  ServingGuard guard(&store, options);

  std::atomic<bool> inside{false};
  std::atomic<bool> release{false};
  std::thread holder([&guard, &inside, &release] {
    const Status status = guard.Run(
        QueryClass::kInteractive, Deadline(),
        [&inside, &release](const InventorySnapshot&) {
          inside.store(true, std::memory_order_release);
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
          return Status::OK();
        });
    EXPECT_TRUE(status.ok());
  });
  while (!inside.load(std::memory_order_acquire)) std::this_thread::yield();

  // The one interactive slot is held: the next interactive call sheds,
  // while the batch class is unaffected.
  const Status shed = guard.Run(QueryClass::kInteractive, Deadline(),
                                [](const InventorySnapshot&) {
                                  return Status::OK();
                                });
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(guard
                  .Run(QueryClass::kBatch, Deadline(),
                       [](const InventorySnapshot&) { return Status::OK(); })
                  .ok());

  release.store(true, std::memory_order_release);
  holder.join();
}

TEST(ServingGuardTest, QueuedCallerAdmittedWhenSlotFrees) {
  ServingInventory store(Batch(0, 2));
  ServingGuardOptions options;
  options.max_concurrent_interactive = 1;
  options.max_queue_wait_seconds = 30.0;  // Plenty; Release must wake us.
  ServingGuard guard(&store, options);
  const uint64_t queued_before = CounterValue("serving.queued");

  std::atomic<bool> inside{false};
  std::atomic<bool> release{false};
  std::thread holder([&guard, &inside, &release] {
    ASSERT_TRUE(guard
                    .Run(QueryClass::kInteractive, Deadline(),
                         [&inside, &release](const InventorySnapshot&) {
                           inside.store(true, std::memory_order_release);
                           while (!release.load(std::memory_order_acquire)) {
                             std::this_thread::yield();
                           }
                           return Status::OK();
                         })
                    .ok());
  });
  while (!inside.load(std::memory_order_acquire)) std::this_thread::yield();

  std::atomic<bool> waiter_started{false};
  std::thread waiter([&guard, &waiter_started] {
    waiter_started.store(true, std::memory_order_release);
    const Status status =
        guard.Run(QueryClass::kInteractive, Deadline(),
                  [](const InventorySnapshot&) { return Status::OK(); });
    EXPECT_TRUE(status.ok());
  });
  while (!waiter_started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  release.store(true, std::memory_order_release);
  holder.join();
  waiter.join();
  if (obs::kEnabled) {
    EXPECT_GE(CounterValue("serving.queued"), queued_before);
  }
}

TEST(ServingGuardTest, QueuedCallerHonorsItsOwnDeadline) {
  ServingInventory store(Batch(0, 2));
  ServingGuardOptions options;
  options.max_concurrent_interactive = 1;
  options.max_queue_wait_seconds = 30.0;  // Queue budget far beyond it.
  ServingGuard guard(&store, options);

  std::atomic<bool> inside{false};
  std::atomic<bool> release{false};
  std::thread holder([&guard, &inside, &release] {
    ASSERT_TRUE(guard
                    .Run(QueryClass::kInteractive, Deadline(),
                         [&inside, &release](const InventorySnapshot&) {
                           inside.store(true, std::memory_order_release);
                           while (!release.load(std::memory_order_acquire)) {
                             std::this_thread::yield();
                           }
                           return Status::OK();
                         })
                    .ok());
  });
  while (!inside.load(std::memory_order_acquire)) std::this_thread::yield();

  const double start = obs::NowSeconds();
  const Status status =
      guard.Run(QueryClass::kInteractive, Deadline::AfterSeconds(0.02),
                [](const InventorySnapshot&) { return Status::OK(); });
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(obs::NowSeconds() - start, 0.02);

  release.store(true, std::memory_order_release);
  holder.join();
}

TEST(ServingGuardTest, NonRetryableRefreshFailuresNeverTripTheBreaker) {
  ServingInventory store(Batch(0, 2));
  ServingGuardOptions options;
  options.breaker_trip_failures = 2;
  ServingGuard guard(&store, options);

  // A resolution-mismatched delta is a caller error; even a run of them
  // far past the threshold must leave the breaker closed.
  for (int i = 0; i < 5; ++i) {
    SummaryMap mismatched;
    const Status status = guard.Refresh(Inventory(7, std::move(mismatched)));
    ASSERT_FALSE(status.ok());
    ASSERT_FALSE(status.IsRetryable());
  }
  EXPECT_EQ(guard.breaker_state(), BreakerState::kClosed);
  EXPECT_FALSE(guard.degraded());
  // The staleness gauge still records the refreshes that went nowhere.
  EXPECT_EQ(guard.snapshot_age_refreshes(), 5u);

  ASSERT_TRUE(guard.Refresh(Batch(1, 2)).ok());
  EXPECT_EQ(guard.snapshot_age_refreshes(), 0u);
}

TEST(ServingGuardTest, BreakerTripsProbesAndCloses) {
  if (!kFailPointsEnabled) {
    GTEST_SKIP() << "fail points compiled out (build with POL_FAILPOINTS)";
  }
  FailPointRegistry::Global().Reset();
  ServingInventory store(Batch(0, 2));
  ServingGuardOptions options;
  options.breaker_trip_failures = 2;
  options.breaker_open_seconds = 0.0;  // Every rejected epoch may probe.
  ServingGuard guard(&store, options);
  const uint64_t swaps_before = store.swap_count();

  FailPointSpec spec;
  spec.code = StatusCode::kIoError;
  FailPointRegistry::Global().Arm("serving.merge", spec);

  // Two consecutive retryable failures trip the breaker...
  EXPECT_EQ(guard.Refresh(Batch(1, 2)).code(), StatusCode::kIoError);
  EXPECT_EQ(guard.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(guard.Refresh(Batch(1, 2)).code(), StatusCode::kIoError);
  EXPECT_EQ(guard.breaker_state(), BreakerState::kOpen);
  EXPECT_TRUE(guard.degraded());

  // ...a failing half-open probe re-opens it...
  EXPECT_EQ(guard.Refresh(Batch(1, 2)).code(), StatusCode::kIoError);
  EXPECT_EQ(guard.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(guard.snapshot_age_refreshes(), 3u);
  EXPECT_EQ(store.swap_count(), swaps_before);  // Last good still serving.

  // ...and once the fault clears, the next probe closes it and the
  // merged generation is published.
  FailPointRegistry::Global().DisarmAll();
  ASSERT_TRUE(guard.Refresh(Batch(1, 2)).ok());
  EXPECT_EQ(guard.breaker_state(), BreakerState::kClosed);
  EXPECT_FALSE(guard.degraded());
  EXPECT_EQ(guard.snapshot_age_refreshes(), 0u);
  EXPECT_EQ(store.swap_count(), swaps_before + 1);
}

TEST(ServingGuardTest, OpenBreakerRejectsWhileReadersKeepServing) {
  if (!kFailPointsEnabled) {
    GTEST_SKIP() << "fail points compiled out (build with POL_FAILPOINTS)";
  }
  FailPointRegistry::Global().Reset();
  ServingInventory store(Batch(0, 3));
  ServingGuardOptions options;
  options.breaker_trip_failures = 1;
  options.breaker_open_seconds = 3600.0;  // Stay open for the whole test.
  ServingGuard guard(&store, options);
  const uint64_t swaps_before = store.swap_count();
  const size_t size_before = store.size();

  FailPointSpec spec;
  spec.code = StatusCode::kUnavailable;
  FailPointRegistry::Global().Arm("serving.seal", spec);
  EXPECT_EQ(guard.Refresh(Batch(1, 3)).code(), StatusCode::kUnavailable);
  EXPECT_EQ(guard.breaker_state(), BreakerState::kOpen);
  FailPointRegistry::Global().DisarmAll();

  // While open, refreshes are rejected without touching the store...
  const Status rejected = guard.Refresh(Batch(2, 3));
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_EQ(guard.snapshot_age_refreshes(), 2u);
  EXPECT_EQ(store.swap_count(), swaps_before);

  // ...and guarded reads still answer from the last good snapshot.
  const Status read = guard.Run(
      QueryClass::kInteractive, Deadline(),
      [size_before](const InventorySnapshot& snapshot) {
        EXPECT_EQ(snapshot.size(), size_before);
        return Status::OK();
      });
  EXPECT_TRUE(read.ok());
}

// The chaos soak: concurrent readers, a faulting refresher, and a
// deadline storm against one guard. Asserts (a) readers only ever see
// whole snapshots — corridor == grouping-set sweep, reversed corridor
// identical, (b) the admission counters account for every issued call
// exactly once, (c) with fail points armed the breaker trips and closes
// as the fault window passes, and the final inventory holds every
// generation despite the injected merge/seal/swap faults.
TEST(ServingResilienceSoakTest, ChaosSoak) {
  FailPointRegistry::Global().Reset();
  const uint64_t admitted_before = CounterValue("serving.admitted");
  const uint64_t shed_before = CounterValue("serving.shed");
  const uint64_t deadline_before = CounterValue("serving.deadline_exceeded");
  const uint64_t scan_before = CounterValue("serving.scan_deadline_exceeded");

  constexpr int kReaders = 4;
  constexpr int kIterations = 250;
  constexpr int kGenerations = 24;
  constexpr int kCellsPerBatch = 2;

  ServingInventory store(Batch(0, kCellsPerBatch));
  ServingGuardOptions options;
  options.max_concurrent_interactive = 3;
  options.max_concurrent_batch = 2;
  options.max_queue_wait_seconds = 0.002;  // Saturation sheds quickly.
  options.breaker_trip_failures = 3;
  options.breaker_open_seconds = 0.0;  // Deterministic probing.
  options.deadline_check_stride = 16;
  // Small telemetry windows so the SLO burn trips — and recovers —
  // within the soak's own lifetime.
  options.telemetry.window_seconds = 0.05;
  options.telemetry.window_count = 32;
  options.telemetry.slo_fast_windows = 4;
  options.telemetry.slo_slow_windows = 20;
  ServingGuard guard(&store, options);
  const size_t initial_size = store.size();

  if (kFailPointsEnabled) {
    // Three deterministic fault windows, one per refresh boundary. The
    // serving.seal window is long enough (3 consecutive retryable
    // failures) to trip the breaker; cooldown 0 lets the retry loop
    // probe straight through it once the window passes.
    FailPointSpec merge;
    merge.fire_from = 2;
    merge.fire_count = 2;
    merge.code = StatusCode::kIoError;
    FailPointRegistry::Global().Arm("serving.merge", merge);
    FailPointSpec seal;
    seal.fire_from = 8;
    seal.fire_count = 3;
    seal.code = StatusCode::kUnavailable;
    FailPointRegistry::Global().Arm("serving.seal", seal);
    FailPointSpec swap;
    swap.fire_from = 14;
    swap.fire_count = 1;
    swap.code = StatusCode::kInternal;
    FailPointRegistry::Global().Arm("serving.swap", swap);
  }

  std::atomic<uint64_t> issued{0};
  std::atomic<uint64_t> ok_calls{0};
  std::atomic<uint64_t> shed_calls{0};
  std::atomic<uint64_t> deadline_calls{0};
  std::atomic<uint64_t> unexpected{0};
  std::atomic<uint64_t> torn{0};
  std::atomic<bool> stop_storm{false};

  const auto tally = [&](const Status& status) {
    issued.fetch_add(1, std::memory_order_relaxed);
    switch (status.code()) {
      case StatusCode::kOk:
        ok_calls.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kResourceExhausted:
        shed_calls.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kDeadlineExceeded:
        deadline_calls.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        unexpected.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&guard, &tally, &torn, initial_size, t] {
      for (int i = 0; i < kIterations; ++i) {
        // Interactive: one consistent multi-query view inside one
        // guarded call — this is the torn-snapshot witness.
        tally(guard.Run(
            QueryClass::kInteractive, Deadline::AfterSeconds(0.5),
            [&torn, initial_size](const InventorySnapshot& snapshot) {
              if (snapshot.resolution() != 6 ||
                  snapshot.size() < initial_size) {
                torn.fetch_add(1);
              }
              const std::vector<hex::CellIndex> corridor =
                  snapshot.CellsForRoute(kOrigin, kDestination, kSegment);
              if (snapshot.CellsForRoute(kDestination, kOrigin, kSegment) !=
                  corridor) {
                torn.fetch_add(1);
              }
              uint64_t visited = 0;
              snapshot.VisitGroupingSetWhile(
                  GroupingSet::kCellRouteType,
                  [&visited](const GroupKey&, const CellSummary&) {
                    ++visited;
                    return true;
                  });
              if (visited != corridor.size()) torn.fetch_add(1);
              for (const hex::CellIndex cell : corridor) {
                if (snapshot.Cell(cell) == nullptr) torn.fetch_add(1);
              }
              return Status::OK();
            }));
        // Batch: guarded sweeps, some under a deadline tight enough to
        // cancel mid-scan now and then.
        const Deadline sweep_deadline = (i % 3 == static_cast<int>(t) % 3)
                                            ? Deadline::AfterSeconds(0.0001)
                                            : Deadline();
        tally(guard.VisitGroupingSet(GroupingSet::kCell, sweep_deadline,
                                     [](const GroupKey&,
                                        const CellSummary&) {}));
        // Interactive corridor through the Result<> wrapper.
        const auto corridor = guard.CellsForRoute(
            kOrigin, kDestination, kSegment, Deadline::AfterSeconds(0.5));
        tally(corridor.ok() ? Status::OK() : corridor.status());
        if (corridor.ok() && corridor.value().empty()) torn.fetch_add(1);
      }
    });
  }

  // Deadline storm: every call arrives already expired and must be
  // rejected at admission without ever reaching a snapshot.
  std::thread storm([&guard, &tally, &stop_storm] {
    while (!stop_storm.load(std::memory_order_acquire)) {
      tally(guard.Run(QueryClass::kInteractive, Deadline::AtSeconds(0.0),
                      [](const InventorySnapshot&) { return Status::OK(); }));
      std::this_thread::yield();
    }
  });

  // Refresher: folds every generation through the breaker, retrying
  // over the injected fault windows (bounded so a wedged breaker fails
  // the test instead of hanging it).
  uint64_t refresh_failures = 0;
  bool saw_degraded = false;
  for (int g = 1; g <= kGenerations; ++g) {
    bool folded = false;
    for (int attempt = 0; attempt < 200 && !folded; ++attempt) {
      const Status status = guard.Refresh(Batch(g, kCellsPerBatch));
      if (status.ok()) {
        folded = true;
      } else {
        ASSERT_TRUE(status.IsRetryable()) << status.message();
        ++refresh_failures;
        saw_degraded = saw_degraded || guard.degraded();
      }
    }
    ASSERT_TRUE(folded) << "generation " << g
                        << " never folded; breaker wedged";
  }

  // While the deadline storm still rages: every storm call feeds the
  // error rate, so the availability SLO must report burning once both
  // trailing windows (fast 4 x 50ms, slow 20 x 50ms) have seen it.
  bool saw_burning = false;
  uint64_t availability_breaches = 0;
  if (guard.telemetry()->enabled()) {
    const double evaluate_until = obs::NowSeconds() + 5.0;
    while (!saw_burning && obs::NowSeconds() < evaluate_until) {
      const std::vector<obs::SloStatus> statuses =
          guard.telemetry()->EvaluateSlos();
      ASSERT_FALSE(statuses.empty());
      saw_burning = statuses[0].burning;
      availability_breaches = statuses[0].breaches;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  stop_storm.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  storm.join();

  // (a) No torn or partial snapshot, ever; no status outside the
  // resilience vocabulary.
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(unexpected.load(), 0u);

  // (b) Every issued call accounted for exactly once.
  EXPECT_EQ(ok_calls.load() + shed_calls.load() + deadline_calls.load(),
            issued.load());
  if (obs::kEnabled) {
    const uint64_t admitted = CounterValue("serving.admitted") -
                              admitted_before;
    const uint64_t shed = CounterValue("serving.shed") - shed_before;
    const uint64_t deadline =
        CounterValue("serving.deadline_exceeded") - deadline_before;
    const uint64_t scans =
        CounterValue("serving.scan_deadline_exceeded") - scan_before;
    EXPECT_EQ(admitted + shed + deadline, issued.load());
    EXPECT_EQ(shed, shed_calls.load());
    EXPECT_EQ(deadline + scans, deadline_calls.load());
    EXPECT_EQ(ok_calls.load(), admitted - scans);

    // Query-level telemetry reconciles against the same ledger: every
    // admitted call wrote exactly one wide event, OK or not, and
    // nothing else did.
    const obs::QueryLog::Totals logged =
        guard.telemetry()->query_log().totals();
    EXPECT_EQ(logged.ok + logged.errors, admitted);
    EXPECT_EQ(logged.ok, ok_calls.load());
    EXPECT_EQ(logged.errors, scans);

    // The storm tripped the availability SLO; with the storm gone and
    // the fast window drained, the alert clears (the slow window may
    // still remember the incident — burning needs both).
    EXPECT_TRUE(saw_burning);
    EXPECT_GE(availability_breaches, 1u);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    const std::vector<obs::SloStatus> recovered =
        guard.telemetry()->EvaluateSlos();
    ASSERT_FALSE(recovered.empty());
    EXPECT_FALSE(recovered[0].burning);
    EXPECT_GE(recovered[0].breaches, 1u);
  }

  // (c) The fault windows passed: the breaker closed again, every
  // generation folded, and the final snapshot carries all of them.
  EXPECT_EQ(guard.breaker_state(), BreakerState::kClosed);
  EXPECT_FALSE(guard.degraded());
  EXPECT_EQ(guard.snapshot_age_refreshes(), 0u);
  Inventory expected = Batch(0, kCellsPerBatch);
  for (int g = 1; g <= kGenerations; ++g) {
    ASSERT_TRUE(expected.MergeFrom(Batch(g, kCellsPerBatch)).ok());
  }
  EXPECT_EQ(store.size(), expected.size());
  if (kFailPointsEnabled) {
    EXPECT_GE(refresh_failures, 6u);  // 2 merge + 3 seal + 1 swap windows.
    EXPECT_TRUE(saw_degraded);
    EXPECT_GE(FailPointRegistry::Global().HitCount("serving.merge"),
              static_cast<uint64_t>(kGenerations));
  } else {
    EXPECT_EQ(refresh_failures, 0u);
  }
  FailPointRegistry::Global().Reset();
}

}  // namespace
}  // namespace pol::core
