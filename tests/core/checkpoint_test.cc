// CheckpointManager: snapshot framing (magic/varint/CRC), atomic write
// + rotation, newest-valid-wins loading with corrupt fallback, and the
// InventoryBuilder state round-trip the snapshots carry.

#include "core/checkpoint.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/time_util.h"
#include "core/cleaning.h"
#include "core/inventory_builder.h"
#include "core/stages.h"
#include "flow/stage.h"
#include "flow/threadpool.h"
#include "sim/fleet.h"

namespace pol::core {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = (std::filesystem::path(::testing::TempDir()) /
                  ("pol_ckpt_" +
                   std::string(::testing::UnitTest::GetInstance()
                                   ->current_test_info()
                                   ->name())))
                     .string();
    std::filesystem::remove_all(directory_);
  }

  void TearDown() override { std::filesystem::remove_all(directory_); }

  CheckpointConfig Config(int interval = 2, int keep = 2) const {
    CheckpointConfig config;
    config.directory = directory_;
    config.interval_chunks = interval;
    config.keep = keep;
    return config;
  }

  std::string directory_;
};

CheckpointState SampleState() {
  CheckpointState state;
  state.cursor = 7;
  state.total_chunks = 12;
  CheckpointQuarantineEntry entry;
  entry.chunk_index = 3;
  entry.records = 41;
  entry.attempts = 2;
  entry.code = StatusCode::kCorruption;
  entry.message = "cleaning: poisoned chunk";
  state.quarantined.push_back(entry);
  state.builder_state = "opaque builder bytes";
  return state;
}

void ExpectStatesEqual(const CheckpointState& a, const CheckpointState& b) {
  EXPECT_EQ(a.cursor, b.cursor);
  EXPECT_EQ(a.total_chunks, b.total_chunks);
  ASSERT_EQ(a.quarantined.size(), b.quarantined.size());
  for (size_t i = 0; i < a.quarantined.size(); ++i) {
    EXPECT_EQ(a.quarantined[i].chunk_index, b.quarantined[i].chunk_index);
    EXPECT_EQ(a.quarantined[i].records, b.quarantined[i].records);
    EXPECT_EQ(a.quarantined[i].attempts, b.quarantined[i].attempts);
    EXPECT_EQ(a.quarantined[i].code, b.quarantined[i].code);
    EXPECT_EQ(a.quarantined[i].message, b.quarantined[i].message);
  }
  EXPECT_EQ(a.builder_state, b.builder_state);
}

TEST_F(CheckpointTest, EncodeDecodeRoundTrip) {
  const CheckpointState state = SampleState();
  std::string bytes;
  CheckpointManager::Encode(state, &bytes);
  const Result<CheckpointState> decoded = CheckpointManager::Decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectStatesEqual(*decoded, state);
}

TEST_F(CheckpointTest, DecodeRejectsCorruptInput) {
  std::string bytes;
  CheckpointManager::Encode(SampleState(), &bytes);

  EXPECT_EQ(CheckpointManager::Decode("short").status().code(),
            StatusCode::kCorruption);

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_EQ(CheckpointManager::Decode(bad_magic).status().code(),
            StatusCode::kCorruption);

  std::string truncated = bytes.substr(0, bytes.size() - 5);
  EXPECT_EQ(CheckpointManager::Decode(truncated).status().code(),
            StatusCode::kCorruption);

  std::string flipped = bytes;
  flipped[bytes.size() / 2] =
      static_cast<char>(flipped[bytes.size() / 2] ^ 0x40);
  EXPECT_FALSE(CheckpointManager::Decode(flipped).ok());
}

TEST_F(CheckpointTest, WriteLoadRoundTripAndSequenceNumbers) {
  CheckpointManager manager(Config());
  ASSERT_TRUE(manager.enabled());
  EXPECT_EQ(manager.LoadLatest().status().code(), StatusCode::kNotFound);

  CheckpointState state = SampleState();
  state.cursor = 2;
  ASSERT_TRUE(manager.Write(state).ok());
  state.cursor = 4;
  ASSERT_TRUE(manager.Write(state).ok());

  const Result<CheckpointState> loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->cursor, 4u);

  // A fresh manager over the same directory continues the numbering
  // instead of overwriting.
  CheckpointManager resumed(Config());
  state.cursor = 6;
  ASSERT_TRUE(resumed.Write(state).ok());
  const Result<CheckpointState> newest = resumed.LoadLatest();
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(newest->cursor, 6u);
}

TEST_F(CheckpointTest, RotationKeepsNewestSnapshots) {
  CheckpointManager manager(Config(/*interval=*/1, /*keep=*/2));
  CheckpointState state = SampleState();
  for (uint64_t cursor = 1; cursor <= 5; ++cursor) {
    state.cursor = cursor;
    ASSERT_TRUE(manager.Write(state).ok());
  }
  const std::vector<std::string> snapshots = manager.ListSnapshots();
  EXPECT_EQ(snapshots.size(), 2u);
  const Result<CheckpointState> loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->cursor, 5u);
}

TEST_F(CheckpointTest, CorruptNewestFallsBackToPrevious) {
  CheckpointManager manager(Config());
  CheckpointState state = SampleState();
  state.cursor = 2;
  ASSERT_TRUE(manager.Write(state).ok());
  state.cursor = 4;
  ASSERT_TRUE(manager.Write(state).ok());

  // Scribble over the newest snapshot.
  const std::vector<std::string> snapshots = manager.ListSnapshots();
  ASSERT_EQ(snapshots.size(), 2u);
  {
    std::ofstream file(snapshots.back(),
                       std::ios::binary | std::ios::trunc);
    file << "not a snapshot";
  }
  const Result<CheckpointState> loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->cursor, 2u);

  // Scribble over the older one too: nothing loadable remains.
  {
    std::ofstream file(snapshots.front(),
                       std::ios::binary | std::ios::trunc);
    file << "also not a snapshot";
  }
  EXPECT_EQ(manager.LoadLatest().status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, DisabledManagerRefusesIo) {
  CheckpointManager manager(CheckpointConfig{});
  EXPECT_FALSE(manager.enabled());
  EXPECT_EQ(manager.Write(SampleState()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.LoadLatest().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointTest, BuilderStateRoundTripsByteIdentically) {
  // Fold a real archive chunk-by-chunk, snapshot mid-build, restore
  // into a fresh builder, and check both serialized state and the final
  // inventory come out byte-identical.
  sim::FleetConfig fleet_config;
  fleet_config.seed = 777;
  fleet_config.commercial_vessels = 6;
  fleet_config.noncommercial_vessels = 2;
  fleet_config.start_time = 1640995200;
  fleet_config.end_time = fleet_config.start_time + 10 * kSecondsPerDay;
  const sim::SimulationOutput archive =
      sim::FleetSimulator(fleet_config).Run();

  flow::ThreadPool pool(2);
  CleaningConfig cleaning_config;
  cleaning_config.partitions = 4;
  CleaningStage cleaning(cleaning_config);
  EnrichmentStage enrichment(archive.fleet, /*commercial_only=*/true);
  TripStage trips(&sim::PortDatabase::Global(), 6);
  ProjectionStage projection(6);

  ExtractorConfig extractor_config;
  extractor_config.resolution = 6;

  auto run_chain = [&](flow::Dataset<ais::PositionReport> chunk) {
    auto cleaned = cleaning.RunChunk(std::move(chunk));
    auto enriched = enrichment.RunChunk(std::move(cleaned).value());
    auto tripped = trips.RunChunk(std::move(enriched).value());
    return projection.RunChunk(std::move(tripped).value());
  };

  auto chunks = SplitReportsByVessel(archive.reports, 4, 4, &pool);
  ASSERT_EQ(chunks.size(), 4u);

  InventoryBuilder original(extractor_config);
  original.Fold(*run_chain(std::move(chunks[0])));
  original.Fold(*run_chain(std::move(chunks[1])));

  std::string mid_state;
  original.SerializeState(&mid_state);

  InventoryBuilder restored(extractor_config);
  ASSERT_TRUE(restored.RestoreState(mid_state).ok());
  EXPECT_EQ(restored.records_folded(), original.records_folded());
  EXPECT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.metrics().chunks, original.metrics().chunks);

  // Restored state re-serializes to the same bytes.
  std::string restored_state;
  restored.SerializeState(&restored_state);
  EXPECT_EQ(restored_state, mid_state);

  // Both builders finish the remaining chunks identically.
  auto chunk2 = *run_chain(std::move(chunks[2]));
  auto chunk3 = *run_chain(std::move(chunks[3]));
  original.Fold(chunk2);
  original.Fold(chunk3);
  restored.Fold(chunk2);
  restored.Fold(chunk3);

  std::string original_bytes;
  std::string restored_bytes;
  std::move(original).Finish().SerializeTo(&original_bytes);
  std::move(restored).Finish().SerializeTo(&restored_bytes);
  EXPECT_EQ(restored_bytes, original_bytes);
}

TEST_F(CheckpointTest, RestoreRejectsResolutionMismatch) {
  ExtractorConfig config6;
  config6.resolution = 6;
  InventoryBuilder source(config6);
  std::string state;
  source.SerializeState(&state);

  ExtractorConfig config5;
  config5.resolution = 5;
  InventoryBuilder target(config5);
  EXPECT_EQ(target.RestoreState(state).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointTest, RestoreRejectsGarbage) {
  ExtractorConfig config;
  InventoryBuilder builder(config);
  EXPECT_FALSE(builder.RestoreState("definitely not builder state").ok());
}

}  // namespace
}  // namespace pol::core
