// The sealed serving-side snapshot: flat-array lookups, seal-time
// secondary indexes, and stats must all agree with the build-side
// Inventory they were sealed from.

#include "core/inventory_snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/inventory.h"
#include "hexgrid/hexgrid.h"

namespace pol::core {
namespace {

PipelineRecord SampleRecord(ais::Mmsi mmsi, uint64_t trip, sim::PortId origin,
                            sim::PortId destination,
                            ais::MarketSegment segment) {
  PipelineRecord r;
  r.mmsi = mmsi;
  r.trip_id = trip;
  r.origin = origin;
  r.destination = destination;
  r.segment = segment;
  r.sog_knots = 13;
  r.cog_deg = 45;
  r.heading_deg = 44;
  r.eto_s = 3600;
  r.ata_s = 7200;
  return r;
}

// Same shape as the inventory_test fixture: two cells, two segments,
// one container route across both cells.
Inventory SmallInventory() {
  const hex::CellIndex cell_a = hex::LatLngToCell({1.3, 103.8}, 6);
  const hex::CellIndex cell_b = hex::LatLngToCell({1.3, 104.2}, 6);
  SummaryMap summaries;
  auto add = [&summaries](const GroupKey& key, const PipelineRecord& r,
                          int times) {
    auto [it, inserted] = summaries.try_emplace(key, SummaryParams());
    (void)inserted;
    for (int i = 0; i < times; ++i) it->second.Add(r);
  };
  const auto rec_container =
      SampleRecord(215000001, 11, 3, 21, ais::MarketSegment::kContainer);
  const auto rec_tanker =
      SampleRecord(377000002, 12, 4, 22, ais::MarketSegment::kTanker);
  add(KeyCell(cell_a), rec_container, 5);
  add(KeyCell(cell_a), rec_tanker, 3);
  add(KeyCellType(cell_a, ais::MarketSegment::kContainer), rec_container, 5);
  add(KeyCellType(cell_a, ais::MarketSegment::kTanker), rec_tanker, 3);
  add(KeyCellRouteType(cell_a, 3, 21, ais::MarketSegment::kContainer),
      rec_container, 5);
  add(KeyCell(cell_b), rec_container, 2);
  add(KeyCellType(cell_b, ais::MarketSegment::kContainer), rec_container, 2);
  add(KeyCellRouteType(cell_b, 3, 21, ais::MarketSegment::kContainer),
      rec_container, 2);
  return Inventory(6, std::move(summaries));
}

std::string Bytes(const CellSummary& summary) {
  std::string out;
  summary.Serialize(&out);
  return out;
}

TEST(InventorySnapshotTest, LookupsMatchBuildSide) {
  const Inventory inv = SmallInventory();
  const std::shared_ptr<const InventorySnapshot> snap = inv.Seal();
  const hex::CellIndex cell_a = hex::LatLngToCell({1.3, 103.8}, 6);
  const hex::CellIndex cell_b = hex::LatLngToCell({1.3, 104.2}, 6);

  EXPECT_EQ(snap->resolution(), inv.resolution());
  EXPECT_EQ(snap->size(), inv.size());
  EXPECT_EQ(snap->DistinctCells(), inv.DistinctCells());

  for (const hex::CellIndex cell : {cell_a, cell_b}) {
    ASSERT_NE(snap->Cell(cell), nullptr);
    EXPECT_EQ(Bytes(*snap->Cell(cell)), Bytes(*inv.Cell(cell)));
  }
  ASSERT_NE(snap->CellType(cell_a, ais::MarketSegment::kTanker), nullptr);
  EXPECT_EQ(Bytes(*snap->CellType(cell_a, ais::MarketSegment::kTanker)),
            Bytes(*inv.CellType(cell_a, ais::MarketSegment::kTanker)));
  ASSERT_NE(
      snap->CellRouteType(cell_b, 3, 21, ais::MarketSegment::kContainer),
      nullptr);
  EXPECT_EQ(snap->Cell(hex::LatLngToCell({50, 0}, 6)), nullptr);
  EXPECT_EQ(snap->CellType(cell_b, ais::MarketSegment::kTanker), nullptr);
}

TEST(InventorySnapshotTest, RouteIndexAnswersBothOrientations) {
  const Inventory inv = SmallInventory();
  const std::shared_ptr<const InventorySnapshot> snap = inv.Seal();
  const auto forward =
      snap->CellsForRoute(3, 21, ais::MarketSegment::kContainer);
  EXPECT_EQ(forward.size(), 2u);
  EXPECT_TRUE(std::is_sorted(forward.begin(), forward.end()));
  EXPECT_EQ(snap->CellsForRoute(21, 3, ais::MarketSegment::kContainer),
            forward);
  EXPECT_EQ(forward, inv.CellsForRoute(3, 21, ais::MarketSegment::kContainer));
  EXPECT_TRUE(
      snap->CellsForRoute(3, 21, ais::MarketSegment::kTanker).empty());
}

TEST(InventorySnapshotTest, SegmentIndexListsPresentSegments) {
  const Inventory inv = SmallInventory();
  const std::shared_ptr<const InventorySnapshot> snap = inv.Seal();
  const hex::CellIndex cell_a = hex::LatLngToCell({1.3, 103.8}, 6);
  const hex::CellIndex cell_b = hex::LatLngToCell({1.3, 104.2}, 6);

  const std::vector<ais::MarketSegment> at_a = snap->SegmentsAt(cell_a);
  ASSERT_EQ(at_a.size(), 2u);
  EXPECT_EQ(at_a[0], ais::MarketSegment::kContainer);
  EXPECT_EQ(at_a[1], ais::MarketSegment::kTanker);
  EXPECT_EQ(snap->SegmentsAt(cell_a), inv.SegmentsAt(cell_a));
  EXPECT_EQ(snap->SegmentsAt(cell_b),
            std::vector<ais::MarketSegment>{ais::MarketSegment::kContainer});
  EXPECT_TRUE(snap->SegmentsAt(hex::LatLngToCell({50, 0}, 6)).empty());
}

TEST(InventorySnapshotTest, VisitGroupingSetIsSortedAndComplete) {
  const Inventory inv = SmallInventory();
  const std::shared_ptr<const InventorySnapshot> snap = inv.Seal();
  size_t total = 0;
  for (int set = 0; set < kNumGroupingSets; ++set) {
    std::vector<GroupKey> keys;
    snap->VisitGroupingSet(static_cast<GroupingSet>(set),
                           [&keys](const GroupKey& key, const CellSummary&) {
                             keys.push_back(key);
                           });
    total += keys.size();
    for (size_t i = 1; i < keys.size(); ++i) {
      const bool ordered =
          keys[i - 1].cell < keys[i].cell ||
          (keys[i - 1].cell == keys[i].cell &&
           GroupKeyDimsPacked(keys[i - 1]) < GroupKeyDimsPacked(keys[i]));
      EXPECT_TRUE(ordered) << "set " << set << " position " << i;
    }
    for (const GroupKey& key : keys) {
      EXPECT_EQ(key.grouping_set, static_cast<uint8_t>(set));
    }
  }
  EXPECT_EQ(total, inv.size());
}

TEST(InventorySnapshotTest, StatsCountIndexSizes) {
  const Inventory inv = SmallInventory();
  const std::shared_ptr<const InventorySnapshot> snap = inv.Seal();
  const InventorySnapshotStats& stats = snap->stats();
  EXPECT_EQ(stats.summaries_per_set[0], 2u);  // (cell)
  EXPECT_EQ(stats.summaries_per_set[1], 3u);  // (cell, type)
  EXPECT_EQ(stats.summaries_per_set[2], 2u);  // (cell, o, d, type)
  EXPECT_EQ(stats.route_index_routes, 1u);
  EXPECT_EQ(stats.route_index_cells, 2u);
  EXPECT_EQ(stats.segment_index_cells, 2u);
  EXPECT_GE(stats.seal_seconds, 0.0);
}

TEST(InventorySnapshotTest, SharedQueryHelpersWork) {
  const Inventory inv = SmallInventory();
  const std::shared_ptr<const InventorySnapshot> snap = inv.Seal();
  const CellSummary* at = snap->AtPosition({1.3, 103.8});
  ASSERT_NE(at, nullptr);
  EXPECT_EQ(at->record_count(), 8u);
  const hex::CellIndex cell_a = hex::LatLngToCell({1.3, 103.8}, 6);
  const sim::PortId top = snap->TopDestination(
      cell_a, ais::MarketSegment::kContainer, /*any_segment=*/false);
  EXPECT_EQ(top, 21u);
  EXPECT_EQ(snap->TopDestination(hex::LatLngToCell({50, 0}, 6),
                                 ais::MarketSegment::kContainer,
                                 /*any_segment=*/true),
            sim::kNoPort);
}

}  // namespace
}  // namespace pol::core
