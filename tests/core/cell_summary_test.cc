#include "core/cell_summary.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pol::core {
namespace {

PipelineRecord TripRecord(ais::Mmsi mmsi, uint64_t trip, double sog,
                          double cog, int64_t eto, int64_t ata) {
  PipelineRecord r;
  r.mmsi = mmsi;
  r.trip_id = trip;
  r.sog_knots = sog;
  r.cog_deg = cog;
  r.heading_deg = cog;
  r.eto_s = eto;
  r.ata_s = ata;
  r.origin = 3;
  r.destination = 7;
  return r;
}

TEST(CellSummaryTest, EmptySummary) {
  CellSummary summary;
  EXPECT_EQ(summary.record_count(), 0u);
  EXPECT_EQ(summary.ships().Estimate(), 0.0);
  EXPECT_EQ(summary.speed().count(), 0u);
  EXPECT_TRUE(summary.destinations().TopN(1).empty());
}

TEST(CellSummaryTest, TracksAllTableThreeFeatures) {
  CellSummary summary;
  for (int i = 0; i < 100; ++i) {
    summary.Add(TripRecord(215000001 + (i % 5), 900 + (i % 10), 12.0 + i % 3,
                           90.0, i * 60, (100 - i) * 60));
  }
  EXPECT_EQ(summary.record_count(), 100u);
  EXPECT_DOUBLE_EQ(summary.ships().Estimate(), 5.0);
  EXPECT_DOUBLE_EQ(summary.trips().Estimate(), 10.0);
  EXPECT_NEAR(summary.speed().Mean(), 13.0, 0.2);
  EXPECT_NEAR(summary.course_mean().MeanDeg(), 90.0, 1e-9);
  EXPECT_EQ(summary.course_bins().ModeBin(), 3);  // 90 deg -> bin [90,120).
  EXPECT_NEAR(summary.eto().Mean(), 49.5 * 60, 60);
  EXPECT_NEAR(summary.ata().Mean(), 50.5 * 60, 60);
  const auto origins = summary.origins().TopN(1);
  ASSERT_EQ(origins.size(), 1u);
  EXPECT_EQ(origins[0].key, 3u);
  const auto dests = summary.destinations().TopN(1);
  ASSERT_EQ(dests.size(), 1u);
  EXPECT_EQ(dests[0].key, 7u);
}

TEST(CellSummaryTest, SkipsUnavailableKinematics) {
  CellSummary summary;
  PipelineRecord r = TripRecord(215000001, 1, 10.0, 45.0, 0, 0);
  r.sog_knots = ais::kSogUnavailable;
  r.cog_deg = ais::kCogUnavailable;
  r.heading_deg = ais::kHeadingUnavailable;
  summary.Add(r);
  EXPECT_EQ(summary.record_count(), 1u);
  EXPECT_EQ(summary.speed().count(), 0u);
  EXPECT_EQ(summary.course_mean().count(), 0u);
  EXPECT_EQ(summary.heading_bins().total(), 0u);
}

TEST(CellSummaryTest, NonTripRecordSkipsTripFeatures) {
  CellSummary summary;
  PipelineRecord r = TripRecord(215000001, 0, 10.0, 45.0, 100, 100);
  summary.Add(r);
  EXPECT_EQ(summary.record_count(), 1u);
  EXPECT_EQ(summary.trips().Estimate(), 0.0);
  EXPECT_EQ(summary.eto().count(), 0u);
  EXPECT_TRUE(summary.origins().TopN(1).empty());
}

TEST(CellSummaryTest, TransitionsTracked) {
  CellSummary summary;
  PipelineRecord r = TripRecord(215000001, 1, 10.0, 45.0, 0, 0);
  r.next_cell = 12345;
  summary.Add(r);
  r.next_cell = 12345;
  summary.Add(r);
  r.next_cell = 99999;
  summary.Add(r);
  const auto top = summary.transitions().TopN(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 12345u);
  EXPECT_EQ(top[0].count, 2u);
}

TEST(CellSummaryTest, MergeMatchesSequential) {
  Rng rng(5);
  CellSummary whole;
  CellSummary a;
  CellSummary b;
  for (int i = 0; i < 5000; ++i) {
    const PipelineRecord r = TripRecord(
        static_cast<ais::Mmsi>(215000001 + rng.NextBelow(50)),
        1 + rng.NextBelow(200), rng.Uniform(5, 20), rng.Uniform(0, 360),
        static_cast<int64_t>(rng.NextBelow(100000)),
        static_cast<int64_t>(rng.NextBelow(100000)));
    whole.Add(r);
    if (i % 2 == 0) {
      a.Add(r);
    } else {
      b.Add(r);
    }
  }
  a.Merge(std::move(b));
  EXPECT_EQ(a.record_count(), whole.record_count());
  EXPECT_DOUBLE_EQ(a.ships().Estimate(), whole.ships().Estimate());
  EXPECT_DOUBLE_EQ(a.trips().Estimate(), whole.trips().Estimate());
  EXPECT_NEAR(a.speed().Mean(), whole.speed().Mean(), 1e-9);
  EXPECT_NEAR(a.speed().StdDev(), whole.speed().StdDev(), 1e-9);
  EXPECT_NEAR(a.course_mean().MeanDeg(), whole.course_mean().MeanDeg(), 1e-6);
  for (int bin = 0; bin < 12; ++bin) {
    EXPECT_EQ(a.course_bins().bin_count(bin),
              whole.course_bins().bin_count(bin));
  }
  EXPECT_NEAR(a.eto_percentiles().Quantile(0.5),
              whole.eto_percentiles().Quantile(0.5), 3000);
}

TEST(CellSummaryTest, SerializeRoundTrip) {
  Rng rng(6);
  CellSummary summary;
  for (int i = 0; i < 2000; ++i) {
    PipelineRecord r = TripRecord(
        static_cast<ais::Mmsi>(215000001 + rng.NextBelow(30)),
        1 + rng.NextBelow(100), rng.Uniform(5, 20), rng.Uniform(0, 360),
        static_cast<int64_t>(rng.NextBelow(50000)),
        static_cast<int64_t>(rng.NextBelow(50000)));
    r.next_cell = 1000 + rng.NextBelow(5);
    summary.Add(r);
  }
  std::string buffer;
  summary.Serialize(&buffer);
  CellSummary restored;
  std::string_view input(buffer);
  ASSERT_TRUE(restored.Deserialize(&input).ok());
  EXPECT_TRUE(input.empty());
  EXPECT_EQ(restored.record_count(), summary.record_count());
  EXPECT_DOUBLE_EQ(restored.ships().Estimate(), summary.ships().Estimate());
  EXPECT_DOUBLE_EQ(restored.speed().Mean(), summary.speed().Mean());
  EXPECT_DOUBLE_EQ(restored.speed_percentiles().Quantile(0.9),
                   summary.speed_percentiles().Quantile(0.9));
  EXPECT_DOUBLE_EQ(restored.course_mean().MeanDeg(),
                   summary.course_mean().MeanDeg());
  const auto expected_top = summary.transitions().TopN(3);
  const auto actual_top = restored.transitions().TopN(3);
  ASSERT_EQ(actual_top.size(), expected_top.size());
  for (size_t i = 0; i < actual_top.size(); ++i) {
    EXPECT_EQ(actual_top[i].key, expected_top[i].key);
    EXPECT_EQ(actual_top[i].count, expected_top[i].count);
  }
}

TEST(CellSummaryTest, DeserializeRejectsTruncation) {
  CellSummary summary;
  summary.Add(TripRecord(215000001, 1, 10, 45, 100, 200));
  std::string buffer;
  summary.Serialize(&buffer);
  for (const size_t cut : {buffer.size() / 4, buffer.size() / 2,
                           buffer.size() - 1}) {
    CellSummary restored;
    std::string_view input(buffer.data(), cut);
    EXPECT_FALSE(restored.Deserialize(&input).ok()) << cut;
  }
}

TEST(CellSummaryTest, FootprintIsModest) {
  // Capacity planning: a typical low-traffic cell must stay small.
  CellSummary sparse;
  for (int i = 0; i < 10; ++i) {
    sparse.Add(TripRecord(215000001 + i, 100 + i, 12, 90, 1000, 2000));
  }
  EXPECT_LT(sparse.MemoryFootprint(), 4096u);
}

}  // namespace
}  // namespace pol::core
