// Robustness sweeps of the inventory's binary format: every truncation
// and random corruption must be detected (or decode to a valid
// inventory), never crash or read out of bounds.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/inventory.h"
#include "hexgrid/hexgrid.h"

namespace pol::core {
namespace {

Inventory BuildSample() {
  SummaryMap summaries;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const hex::CellIndex cell = hex::LatLngToCell(
        {rng.Uniform(-60, 60), rng.Uniform(-180, 180)}, 6);
    PipelineRecord r;
    r.mmsi = static_cast<ais::Mmsi>(200000000 + i);
    r.trip_id = static_cast<uint64_t>(i + 1);
    r.origin = 3;
    r.destination = 9;
    r.sog_knots = rng.Uniform(5, 20);
    r.cog_deg = rng.Uniform(0, 360);
    r.heading_deg = r.cog_deg;
    r.eto_s = 1000;
    r.ata_s = 2000;
    auto [it, inserted] = summaries.try_emplace(KeyCell(cell));
    (void)inserted;
    for (int k = 0; k < 5; ++k) it->second.Add(r);
  }
  return Inventory(6, std::move(summaries));
}

TEST(InventoryFuzzTest, EveryTruncationIsHandled) {
  const Inventory inv = BuildSample();
  std::string bytes;
  inv.SerializeTo(&bytes);
  for (size_t len = 0; len < bytes.size(); ++len) {
    const auto result = Inventory::DeserializeFrom(bytes.substr(0, len));
    EXPECT_FALSE(result.ok()) << "prefix length " << len;
  }
  EXPECT_TRUE(Inventory::DeserializeFrom(bytes).ok());
}

TEST(InventoryFuzzTest, RandomByteFlipsAreDetected) {
  const Inventory inv = BuildSample();
  std::string bytes;
  inv.SerializeTo(&bytes);
  Rng rng(6);
  int detected = 0;
  constexpr int kTrials = 500;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::string corrupted = bytes;
    const size_t pos = rng.NextBelow(bytes.size());
    corrupted[pos] = static_cast<char>(
        corrupted[pos] ^ static_cast<char>(1 + rng.NextBelow(255)));
    const auto result = Inventory::DeserializeFrom(corrupted);
    if (!result.ok()) ++detected;
  }
  // The CRC catches every body flip; header flips fail the magic/size
  // checks. (A flip inside the CRC bytes themselves also mismatches.)
  EXPECT_EQ(detected, kTrials);
}

TEST(InventoryFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string noise = "POLINV01";  // Correct magic, garbage body.
    const size_t length = rng.NextBelow(300);
    for (size_t i = 0; i < length; ++i) {
      noise.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    Inventory::DeserializeFrom(noise);
  }
  SUCCEED();
}

TEST(InventoryFuzzTest, AppendedTrailingBytesTolerated) {
  // Extra bytes after the checksum do not invalidate the inventory
  // (files may be padded by storage layers).
  const Inventory inv = BuildSample();
  std::string bytes;
  inv.SerializeTo(&bytes);
  bytes += "trailing junk";
  const auto result = Inventory::DeserializeFrom(bytes);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result->size(), inv.size());
}

}  // namespace
}  // namespace pol::core
