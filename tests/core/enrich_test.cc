#include "core/enrich.h"

#include <gtest/gtest.h>

namespace pol::core {
namespace {

std::vector<ais::VesselInfo> TestRegistry() {
  ais::VesselInfo big_container;
  big_container.mmsi = 215000001;
  big_container.segment = ais::MarketSegment::kContainer;
  big_container.gross_tonnage = 150000;
  big_container.transceiver = ais::TransceiverClass::kClassA;

  ais::VesselInfo small_fisher;
  small_fisher.mmsi = 512000002;
  small_fisher.segment = ais::MarketSegment::kFishing;
  small_fisher.gross_tonnage = 300;
  small_fisher.transceiver = ais::TransceiverClass::kClassB;

  ais::VesselInfo small_cargo;
  small_cargo.mmsi = 240000003;
  small_cargo.segment = ais::MarketSegment::kGeneralCargo;
  small_cargo.gross_tonnage = 3000;  // Below the 5000 GT cut.
  small_cargo.transceiver = ais::TransceiverClass::kClassA;
  return {big_container, small_fisher, small_cargo};
}

PipelineRecord RecordFor(ais::Mmsi mmsi) {
  PipelineRecord r;
  r.mmsi = mmsi;
  r.timestamp = 1000;
  r.lat_deg = 10;
  r.lng_deg = 10;
  return r;
}

TEST(EnrichTest, FindLooksUpRegistry) {
  const Enricher enricher(TestRegistry());
  ASSERT_NE(enricher.Find(215000001), nullptr);
  EXPECT_EQ(enricher.Find(215000001)->segment,
            ais::MarketSegment::kContainer);
  EXPECT_EQ(enricher.Find(999999999), nullptr);
}

TEST(EnrichTest, AnnotatesSegments) {
  flow::ThreadPool pool(2);
  const Enricher enricher(TestRegistry());
  const auto records = flow::Dataset<PipelineRecord>::FromVector(
      {RecordFor(215000001), RecordFor(512000002)}, 2, &pool);
  EnrichmentStats stats;
  const auto enriched = enricher.Enrich(records, /*commercial_only=*/false,
                                        &stats);
  const auto collected = enriched.Collect();
  ASSERT_EQ(collected.size(), 2u);
  for (const auto& record : collected) {
    if (record.mmsi == 215000001) {
      EXPECT_EQ(record.segment, ais::MarketSegment::kContainer);
    } else {
      EXPECT_EQ(record.segment, ais::MarketSegment::kFishing);
    }
  }
}

TEST(EnrichTest, CommercialFilterDropsNonCommercial) {
  flow::ThreadPool pool(2);
  const Enricher enricher(TestRegistry());
  const auto records = flow::Dataset<PipelineRecord>::FromVector(
      {RecordFor(215000001), RecordFor(512000002), RecordFor(240000003),
       RecordFor(888000004)},  // Unknown vessel.
      2, &pool);
  EnrichmentStats stats;
  const auto enriched = enricher.Enrich(records, /*commercial_only=*/true,
                                        &stats);
  EXPECT_EQ(stats.input, 4u);
  EXPECT_EQ(stats.kept, 1u);
  EXPECT_EQ(stats.unknown_vessel, 1u);
  EXPECT_EQ(stats.non_commercial, 2u);
  const auto collected = enriched.Collect();
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].mmsi, 215000001u);
}

TEST(EnrichTest, WithoutFilterUnknownVesselsPassThrough) {
  flow::ThreadPool pool(2);
  const Enricher enricher(TestRegistry());
  const auto records = flow::Dataset<PipelineRecord>::FromVector(
      {RecordFor(888000004)}, 1, &pool);
  EnrichmentStats stats;
  const auto enriched =
      enricher.Enrich(records, /*commercial_only=*/false, &stats);
  EXPECT_EQ(enriched.Count(), 1u);
  EXPECT_EQ(enriched.Collect()[0].segment, ais::MarketSegment::kOther);
}

}  // namespace
}  // namespace pol::core
