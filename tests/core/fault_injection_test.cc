// Fault-injection suite for the failure-containment layer: a run killed
// at any fail point — stage boundaries, checkpoint I/O — and then
// resumed from its snapshots must produce a byte-identical inventory to
// an uninterrupted run. Tests that arm fail points skip unless the
// build compiles them in (faults preset / tools/run_tier1.sh --faults);
// the resume and corrupt-fallback paths are exercised unconditionally.
//
// Determinism notes baked into the config below:
//  - max_in_flight_chunks = 1 makes fail-point hit indices line up with
//    chunk indices (concurrent chunks would interleave evaluations).
//  - Every byte-compared run checkpoints on the same interval, because
//    snapshot serialization flushes t-digest buffers (see
//    InventoryBuilder::SerializeState).

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ais/nmea.h"
#include "common/failpoint.h"
#include "common/quarantine.h"
#include "common/status.h"
#include "common/time_util.h"
#include "core/checkpoint.h"
#include "core/pipeline.h"
#include "sim/fleet.h"

namespace pol::core {
namespace {

#if defined(POL_FAILPOINTS)
constexpr bool kFailPointsEnabled = true;
#else
constexpr bool kFailPointsEnabled = false;
#endif

constexpr int kChunks = 6;
constexpr int kCheckpointInterval = 2;

const sim::SimulationOutput& Archive() {
  static const sim::SimulationOutput* archive = [] {
    sim::FleetConfig config;
    config.seed = 97531;
    config.commercial_vessels = 10;
    config.noncommercial_vessels = 3;
    config.start_time = 1640995200;
    config.end_time = config.start_time + 12 * kSecondsPerDay;
    return new sim::SimulationOutput(sim::FleetSimulator(config).Run());
  }();
  return *archive;
}

PipelineConfig BaseConfig(const std::string& checkpoint_dir) {
  PipelineConfig config;
  config.partitions = kChunks;
  config.threads = 2;
  config.chunks = kChunks;
  config.max_in_flight_chunks = 1;
  config.resolution = 6;
  config.checkpoint.directory = checkpoint_dir;
  config.checkpoint.interval_chunks = kCheckpointInterval;
  config.checkpoint.keep = 2;
  return config;
}

std::string InventoryBytes(const PipelineResult& result) {
  std::string bytes;
  result.inventory->SerializeTo(&bytes);
  return bytes;
}

// Serialized inventory of an uninterrupted checkpointed run — the
// baseline every killed-and-resumed run must reproduce exactly.
const std::string& ReferenceBytes() {
  static const std::string* bytes = [] {
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / "pol_fault_reference")
            .string();
    std::filesystem::remove_all(dir);
    const PipelineResult result =
        RunPipeline(Archive().reports, Archive().fleet, BaseConfig(dir));
    auto* out = new std::string(InventoryBytes(result));
    std::filesystem::remove_all(dir);
    return out;
  }();
  return *bytes;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPointRegistry::Global().Reset();
    directory_ = (std::filesystem::path(::testing::TempDir()) /
                  ("pol_fault_" +
                   std::string(::testing::UnitTest::GetInstance()
                                   ->current_test_info()
                                   ->name())))
                     .string();
    std::filesystem::remove_all(directory_);
  }

  void TearDown() override {
    FailPointRegistry::Global().Reset();
    std::filesystem::remove_all(directory_);
  }

  PipelineResult Run(const PipelineConfig& config) {
    return RunPipeline(Archive().reports, Archive().fleet, config);
  }

  std::string directory_;
};

TEST_F(FaultInjectionTest, RerunAfterCompleteRunResumesAtFinalCursor) {
  const PipelineConfig config = BaseConfig(directory_);
  const PipelineResult first = Run(config);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.coverage.resumed);
  // Snapshots at cursors 2, 4 and 6.
  EXPECT_EQ(first.coverage.checkpoints_written, 3u);
  EXPECT_EQ(InventoryBytes(first), ReferenceBytes());

  const PipelineResult rerun = Run(config);
  ASSERT_TRUE(rerun.status.ok()) << rerun.status.ToString();
  EXPECT_TRUE(rerun.coverage.resumed);
  EXPECT_EQ(rerun.coverage.resume_cursor, static_cast<uint64_t>(kChunks));
  EXPECT_EQ(rerun.coverage.chunks_folded, static_cast<size_t>(kChunks));
  EXPECT_EQ(rerun.coverage.checkpoints_written, 0u);
  EXPECT_EQ(rerun.aggregated_records, first.aggregated_records);
  EXPECT_EQ(InventoryBytes(rerun), ReferenceBytes());
}

TEST_F(FaultInjectionTest, CorruptNewestSnapshotFallsBackToOlder) {
  const PipelineConfig config = BaseConfig(directory_);
  const PipelineResult first = Run(config);
  ASSERT_TRUE(first.status.ok());

  // keep=2 leaves the cursor-4 and cursor-6 snapshots; corrupt the
  // newest so resume must fall back to cursor 4 and refold the tail.
  const std::vector<std::string> snapshots =
      CheckpointManager(config.checkpoint).ListSnapshots();
  ASSERT_EQ(snapshots.size(), 2u);
  {
    std::ofstream file(snapshots.back(), std::ios::binary | std::ios::trunc);
    file << "scribbled over by a disk fault";
  }

  const PipelineResult resumed = Run(config);
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
  EXPECT_TRUE(resumed.coverage.resumed);
  EXPECT_EQ(resumed.coverage.resume_cursor, 4u);
  EXPECT_EQ(resumed.coverage.chunks_folded, static_cast<size_t>(kChunks));
  EXPECT_EQ(InventoryBytes(resumed), ReferenceBytes());
}

TEST_F(FaultInjectionTest, ResumeRefusesMismatchedChunkCount) {
  const PipelineConfig config = BaseConfig(directory_);
  ASSERT_TRUE(Run(config).status.ok());

  PipelineConfig mismatched = config;
  mismatched.chunks = 3;
  const PipelineResult refused = Run(mismatched);
  EXPECT_EQ(refused.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(refused.coverage.resumed);
  ASSERT_NE(refused.inventory, nullptr);  // Empty, but never null.
  EXPECT_EQ(refused.aggregated_records, 0u);
}

// --- Armed fail points below; skipped unless compiled in. ---

// Kills a fail_fast run by arming `point` with `spec`, then disarms and
// reruns over the same snapshot directory: the resumed run must succeed
// and reproduce the uninterrupted inventory byte for byte.
void KillAndResume(const std::string& directory, const std::string& point,
                   const FailPointSpec& spec) {
  SCOPED_TRACE(point);
  FailPointRegistry& registry = FailPointRegistry::Global();
  registry.Reset();

  PipelineConfig killed_config = BaseConfig(directory);
  killed_config.fail_fast = true;
  registry.Arm(point, spec);
  const PipelineResult killed =
      RunPipeline(Archive().reports, Archive().fleet, killed_config);
  registry.Reset();
  ASSERT_FALSE(killed.status.ok()) << "fail point never fired";
  ASSERT_GT(CheckpointManager(killed_config.checkpoint).ListSnapshots().size(),
            0u)
      << "no snapshot survived the kill";

  const PipelineResult resumed = RunPipeline(
      Archive().reports, Archive().fleet, BaseConfig(directory));
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
  EXPECT_TRUE(resumed.coverage.resumed);
  EXPECT_GT(resumed.coverage.resume_cursor, 0u);
  EXPECT_EQ(resumed.coverage.chunks_folded, static_cast<size_t>(kChunks));
  EXPECT_EQ(resumed.coverage.chunks_quarantined, 0u);
  EXPECT_EQ(InventoryBytes(resumed), ReferenceBytes());
}

TEST_F(FaultInjectionTest, KilledAndResumedRunIsByteIdenticalAtEveryStage) {
  if (!kFailPointsEnabled) {
    GTEST_SKIP() << "fail points compiled out; use the faults preset";
  }
  // Hit index == chunk index (max_in_flight = 1, no retries): firing
  // from hit 3 kills chunk 3, after the cursor-2 snapshot was written.
  FailPointSpec spec;
  spec.fire_from = 3;
  int scenario = 0;
  for (const char* point :
       {"stage.cleaning", "stage.enrichment", "stage.trips",
        "stage.projection"}) {
    const std::string dir =
        directory_ + "_" + std::to_string(scenario++);
    std::filesystem::remove_all(dir);
    KillAndResume(dir, point, spec);
    std::filesystem::remove_all(dir);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(FaultInjectionTest, KilledAndResumedRunSurvivesCheckpointWriteFault) {
  if (!kFailPointsEnabled) {
    GTEST_SKIP() << "fail points compiled out; use the faults preset";
  }
  // The second snapshot write (cursor 4) fails; the cursor-2 snapshot
  // already on disk carries the resume.
  FailPointSpec spec;
  spec.fire_from = 1;
  spec.code = StatusCode::kIoError;
  KillAndResume(directory_, "checkpoint.write", spec);
}

TEST_F(FaultInjectionTest, ReadFaultFallsBackAcrossSnapshots) {
  if (!kFailPointsEnabled) {
    GTEST_SKIP() << "fail points compiled out; use the faults preset";
  }
  const PipelineConfig config = BaseConfig(directory_);
  ASSERT_TRUE(Run(config).status.ok());

  // The newest snapshot (cursor 6) becomes unreadable; LoadLatest must
  // fall back to the cursor-4 one instead of starting fresh.
  FailPointSpec spec;
  spec.fire_from = 0;
  spec.fire_count = 1;
  spec.code = StatusCode::kIoError;
  FailPointRegistry::Global().Arm("checkpoint.read", spec);
  const PipelineResult resumed = Run(config);
  FailPointRegistry::Global().Reset();
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
  EXPECT_TRUE(resumed.coverage.resumed);
  EXPECT_EQ(resumed.coverage.resume_cursor, 4u);
  EXPECT_EQ(InventoryBytes(resumed), ReferenceBytes());
}

TEST_F(FaultInjectionTest, TransientStageFaultIsRetriedNotQuarantined) {
  if (!kFailPointsEnabled) {
    GTEST_SKIP() << "fail points compiled out; use the faults preset";
  }
  // Chunk 1's first chain attempt fails (hit 1); the retry succeeds and
  // the run stays byte-identical to the no-fault baseline.
  PipelineConfig config = BaseConfig(directory_);
  config.max_attempts = 2;
  FailPointSpec spec;
  spec.fire_from = 1;
  spec.fire_count = 1;
  FailPointRegistry::Global().Arm("stage.enrichment", spec);
  const PipelineResult result = Run(config);
  FailPointRegistry::Global().Reset();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.coverage.retries, 1u);
  EXPECT_EQ(result.coverage.chunks_quarantined, 0u);
  EXPECT_EQ(result.coverage.chunks_folded, static_cast<size_t>(kChunks));
  EXPECT_EQ(InventoryBytes(result), ReferenceBytes());
}

TEST_F(FaultInjectionTest, ExhaustedChunkIsQuarantinedAndRunContinues) {
  if (!kFailPointsEnabled) {
    GTEST_SKIP() << "fail points compiled out; use the faults preset";
  }
  // Both attempts of chunk 1 fail (hits 1 and 2): the chunk is
  // quarantined with the stage-annotated error and the rest still folds.
  PipelineConfig config = BaseConfig(/*checkpoint_dir=*/"");
  config.max_attempts = 2;
  FailPointSpec spec;
  spec.fire_from = 1;
  spec.fire_count = 2;
  spec.code = StatusCode::kCorruption;
  FailPointRegistry::Global().Arm("stage.trips", spec);
  const PipelineResult result = Run(config);
  FailPointRegistry::Global().Reset();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.coverage.retries, 1u);
  EXPECT_EQ(result.coverage.chunks_quarantined, 1u);
  EXPECT_EQ(result.coverage.chunks_folded, static_cast<size_t>(kChunks - 1));
  ASSERT_EQ(result.quarantined.size(), 1u);
  EXPECT_EQ(result.quarantined[0].chunk_index, 1u);
  EXPECT_EQ(result.quarantined[0].attempts, 2);
  EXPECT_EQ(result.quarantined[0].status.code(), StatusCode::kCorruption);
  EXPECT_NE(result.quarantined[0].status.message().find("trips"),
            std::string::npos);
  EXPECT_EQ(result.coverage.records_quarantined,
            result.quarantined[0].records);
}

TEST_F(FaultInjectionTest, IngestFailPointDeadLettersTheSentence) {
  if (!kFailPointsEnabled) {
    GTEST_SKIP() << "fail points compiled out; use the faults preset";
  }
  ais::PositionReport report;
  report.mmsi = 244123456;
  report.timestamp = 1651234567;
  report.lat_deg = 51.9;
  report.lng_deg = 4.1;
  report.sog_knots = 12.0;
  report.cog_deg = 180.0;
  report.heading_deg = 181.0;
  report.nav_status = ais::NavStatus::kUnderWayUsingEngine;
  report.message_type = 1;
  const auto sentence = ais::EncodePositionNmea(report);
  ASSERT_TRUE(sentence.ok());

  QuarantineStore store;
  ais::NmeaDecoder decoder;
  decoder.set_quarantine(&store);

  // A healthy sentence decodes while the point is quiet...
  ASSERT_TRUE(decoder.Feed(*sentence).ok());

  // ...and dead-letters once it is armed, even though the sentence
  // itself is fine.
  FailPointSpec spec;
  spec.code = StatusCode::kIoError;
  spec.message = "injected ingest fault";
  FailPointRegistry::Global().Arm("ingest.nmea", spec);
  const Result<ais::Decoded> decoded = decoder.Feed(*sentence);
  FailPointRegistry::Global().Reset();
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kIoError);
  EXPECT_EQ(store.total(), 1u);
  const std::vector<DeadLetter> letters = store.Letters();
  ASSERT_EQ(letters.size(), 1u);
  EXPECT_EQ(letters[0].source, "ingest.nmea");
  EXPECT_EQ(letters[0].payload, *sentence);
}

}  // namespace
}  // namespace pol::core
