// Snapshot codec: a sealed InventorySnapshot round-trips through the
// POLSNAP1 store and comes back as a mapped snapshot that answers every
// query byte-identically — the property holds on randomized inventories
// against the legacy full scan, the sealed snapshot, and the mapping.

#include "core/snapshot_codec.h"

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "core/inventory.h"
#include "core/inventory_snapshot.h"
#include "hexgrid/hexgrid.h"
#include "obs/metrics.h"
#include "store/snapshot_format.h"
#include "store/snapshot_store.h"
#include "store/store_metric_names.h"

namespace pol::core {
namespace {

struct RouteKey {
  sim::PortId origin;
  sim::PortId destination;
  ais::MarketSegment segment;
};

struct Sample {
  Inventory inventory;
  std::vector<hex::CellIndex> cells;
  std::vector<RouteKey> routes;
};

// Same shape as inventory_query_property_test: small key spaces so
// collisions, multi-cell corridors, and reversed pairs all occur.
Sample RandomInventory(uint64_t seed) {
  Rng rng(seed);
  SummaryMap summaries;
  std::vector<hex::CellIndex> cells;
  std::vector<RouteKey> routes;
  const int groups = 30 + static_cast<int>(rng.NextBelow(50));
  for (int i = 0; i < groups; ++i) {
    const hex::CellIndex cell = hex::LatLngToCell(
        {rng.Uniform(-55, 55), rng.Uniform(-180, 180)}, 6);
    const auto origin = static_cast<sim::PortId>(1 + rng.NextBelow(5));
    const auto destination = static_cast<sim::PortId>(1 + rng.NextBelow(5));
    const auto segment =
        static_cast<ais::MarketSegment>(rng.NextBelow(ais::kNumMarketSegments));
    PipelineRecord r;
    r.mmsi = static_cast<ais::Mmsi>(200000000 + rng.NextBelow(20));
    r.trip_id = 1 + rng.NextBelow(40);
    r.origin = origin;
    r.destination = destination;
    r.segment = segment;
    r.sog_knots = rng.Uniform(2, 22);
    r.cog_deg = rng.Uniform(0, 360);
    r.heading_deg = r.cog_deg;
    r.eto_s = rng.Uniform(100, 100000);
    r.ata_s = rng.Uniform(100, 100000);
    cells.push_back(cell);
    routes.push_back({origin, destination, segment});
    for (const GroupKey& key :
         {KeyCell(cell), KeyCellType(cell, segment),
          KeyCellRouteType(cell, origin, destination, segment)}) {
      auto [it, inserted] = summaries.try_emplace(key);
      (void)inserted;
      const int adds = 1 + static_cast<int>(rng.NextBelow(4));
      for (int k = 0; k < adds; ++k) it->second.Add(r);
    }
  }
  return Sample{Inventory(6, std::move(summaries)), std::move(cells),
                std::move(routes)};
}

std::string Bytes(const CellSummary* summary) {
  if (summary == nullptr) return "<null>";
  std::string out;
  summary->Serialize(&out);
  return out;
}

// Every (key, summary bytes) pair of one grouping set, in visit order.
std::vector<std::pair<GroupKey, std::string>> Walk(const InventoryQuery& q,
                                                   GroupingSet set) {
  std::vector<std::pair<GroupKey, std::string>> out;
  q.VisitGroupingSet(set, [&out](const GroupKey& key,
                                 const CellSummary& summary) {
    std::string bytes;
    summary.Serialize(&bytes);
    out.emplace_back(key, std::move(bytes));
  });
  return out;
}

class SnapshotCodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = (std::filesystem::path(::testing::TempDir()) /
                  ("pol_codec_" +
                   std::string(::testing::UnitTest::GetInstance()
                                   ->current_test_info()
                                   ->name())))
                     .string();
    std::filesystem::remove_all(directory_);
  }

  void TearDown() override { std::filesystem::remove_all(directory_); }

  store::SnapshotStore Store() const {
    store::SnapshotStoreOptions options;
    options.directory = directory_;
    return store::SnapshotStore(options);
  }

  std::string directory_;
};

TEST_F(SnapshotCodecTest, WriteToPublishesAndRestoresMeta) {
  const Sample sample = RandomInventory(7);
  const std::shared_ptr<const InventorySnapshot> sealed =
      sample.inventory.Seal();
  store::SnapshotStore store = Store();
  uint64_t generation = 0;
  ASSERT_TRUE(sealed->WriteTo(&store, &generation).ok());
  EXPECT_EQ(generation, 1u);

  uint64_t served = 0;
  const Result<std::shared_ptr<const InventorySnapshot>> mapped =
      OpenLatestSnapshot(store, &served);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(served, 1u);
  EXPECT_EQ((*mapped)->resolution(), sealed->resolution());
  EXPECT_EQ((*mapped)->size(), sealed->size());

  const InventorySnapshotStats& a = sealed->stats();
  const InventorySnapshotStats& b = (*mapped)->stats();
  EXPECT_EQ(a.summaries_per_set, b.summaries_per_set);
  EXPECT_EQ(a.route_index_routes, b.route_index_routes);
  EXPECT_EQ(a.route_index_cells, b.route_index_cells);
  EXPECT_EQ(a.segment_index_cells, b.segment_index_cells);
  EXPECT_EQ(a.seal_sequence, b.seal_sequence);
  EXPECT_DOUBLE_EQ(a.seal_seconds, b.seal_seconds);
}

TEST_F(SnapshotCodecTest, EncodeIsDeterministic) {
  const Sample sample = RandomInventory(11);
  const std::shared_ptr<const InventorySnapshot> sealed =
      sample.inventory.Seal();
  std::string first;
  std::string second;
  sealed->EncodeTo(&first);
  sealed->EncodeTo(&second);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST_F(SnapshotCodecTest, DecodeSnapshotMetaMatchesStats) {
  const Sample sample = RandomInventory(13);
  const std::shared_ptr<const InventorySnapshot> sealed =
      sample.inventory.Seal();
  store::SnapshotStore store = Store();
  ASSERT_TRUE(sealed->WriteTo(&store).ok());
  const Result<store::SnapshotStore::Opened> opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok());
  const Result<SnapshotMeta> meta = DecodeSnapshotMeta(opened->view);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta->resolution, sealed->resolution());
  EXPECT_EQ(meta->total, sealed->size());
  EXPECT_EQ(meta->stats.summaries_per_set, sealed->stats().summaries_per_set);
  EXPECT_EQ(meta->stats.seal_sequence, sealed->stats().seal_sequence);
}

TEST_F(SnapshotCodecTest, ScanSealedAndMappedAgreeOnRandomInventories) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    const Sample sample = RandomInventory(seed);
    const Inventory& inv = sample.inventory;
    const std::shared_ptr<const InventorySnapshot> sealed = inv.Seal();

    store::SnapshotStoreOptions options;
    options.directory =
        (std::filesystem::path(directory_) / std::to_string(seed)).string();
    store::SnapshotStore store(options);
    ASSERT_TRUE(sealed->WriteTo(&store).ok());
    const Result<std::shared_ptr<const InventorySnapshot>> opened =
        OpenLatestSnapshot(store);
    ASSERT_TRUE(opened.ok()) << "seed " << seed << ": "
                             << opened.status().ToString();
    const InventorySnapshot& mapped = **opened;

    ASSERT_EQ(mapped.size(), inv.size()) << "seed " << seed;
    EXPECT_EQ(mapped.DistinctCells(), inv.DistinctCells()) << "seed " << seed;

    // Corridors: every inserted route, both orientations, plus a miss —
    // mapped answers must equal the legacy full scan element-for-element.
    std::vector<RouteKey> queries = sample.routes;
    for (const RouteKey& route : sample.routes) {
      queries.push_back({route.destination, route.origin, route.segment});
    }
    queries.push_back({200, 201, ais::MarketSegment::kTugAndService});
    for (const RouteKey& q : queries) {
      const auto scan =
          inv.CellsForRouteScan(q.origin, q.destination, q.segment);
      EXPECT_EQ(mapped.CellsForRoute(q.origin, q.destination, q.segment),
                scan)
          << "seed " << seed << " route " << q.origin << "->"
          << q.destination;
    }

    // Point lookups byte-identical on every touched cell (and a miss).
    std::vector<hex::CellIndex> probes = sample.cells;
    probes.push_back(hex::LatLngToCell({80, 0}, 6));
    for (size_t i = 0; i < probes.size(); ++i) {
      const hex::CellIndex cell = probes[i];
      EXPECT_EQ(Bytes(mapped.Cell(cell)), Bytes(inv.Cell(cell)))
          << "seed " << seed;
      const RouteKey& route = sample.routes[i % sample.routes.size()];
      EXPECT_EQ(Bytes(mapped.CellType(cell, route.segment)),
                Bytes(inv.CellType(cell, route.segment)))
          << "seed " << seed;
      EXPECT_EQ(Bytes(mapped.CellRouteType(cell, route.origin,
                                           route.destination, route.segment)),
                Bytes(inv.CellRouteType(cell, route.origin, route.destination,
                                        route.segment)))
          << "seed " << seed;
      EXPECT_EQ(mapped.SegmentsAt(cell), inv.SegmentsAt(cell))
          << "seed " << seed;
    }

    // Full visitation: the mapped walk must equal the sealed walk in
    // order, keys and summary bytes — the snapshots are byte-identical
    // stores, not merely equivalent ones.
    for (int s = 0; s < kNumGroupingSets; ++s) {
      const auto set = static_cast<GroupingSet>(s);
      const auto from_sealed = Walk(*sealed, set);
      const auto from_mapped = Walk(mapped, set);
      ASSERT_EQ(from_mapped.size(), from_sealed.size())
          << "seed " << seed << " set " << s;
      for (size_t i = 0; i < from_sealed.size(); ++i) {
        EXPECT_EQ(from_mapped[i].first, from_sealed[i].first)
            << "seed " << seed << " set " << s << " entry " << i;
        EXPECT_EQ(from_mapped[i].second, from_sealed[i].second)
            << "seed " << seed << " set " << s << " entry " << i;
      }
    }
  }
}

TEST_F(SnapshotCodecTest, VisitWhileStopsEarlyOnMappedSnapshot) {
  const Sample sample = RandomInventory(17);
  store::SnapshotStore store = Store();
  ASSERT_TRUE(sample.inventory.Seal()->WriteTo(&store).ok());
  const Result<std::shared_ptr<const InventorySnapshot>> opened =
      OpenLatestSnapshot(store);
  ASSERT_TRUE(opened.ok());
  int visits = 0;
  const bool completed = (*opened)->VisitGroupingSetWhile(
      GroupingSet::kCell, [&visits](const GroupKey&, const CellSummary&) {
        return ++visits < 3;
      });
  EXPECT_FALSE(completed);
  EXPECT_EQ(visits, 3);
}

TEST_F(SnapshotCodecTest, PayloadDamageFallsBackToPreviousGeneration) {
  const Sample sample = RandomInventory(19);
  const std::shared_ptr<const InventorySnapshot> sealed =
      sample.inventory.Seal();
  store::SnapshotStore store = Store();
  ASSERT_TRUE(sealed->WriteTo(&store).ok());
  // A container-valid image whose payload is not a snapshot: the store
  // layer accepts it (framing and CRCs check out), so only the codec's
  // own fallback walk can catch it.
  store::SnapshotFileBuilder builder;
  builder.AddSection(0x01, "not a meta section");
  ASSERT_TRUE(store.Publish(builder.Finish()).ok());

  const uint64_t fallbacks_before =
      obs::Registry::Global().counter(store::kMetricStoreFallbacks)->value();
  uint64_t generation = 0;
  const Result<std::shared_ptr<const InventorySnapshot>> opened =
      OpenLatestSnapshot(store, &generation);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(generation, 1u);
  EXPECT_EQ((*opened)->size(), sealed->size());
  if (obs::kEnabled) {
    EXPECT_EQ(
        obs::Registry::Global().counter(store::kMetricStoreFallbacks)->value(),
        fallbacks_before + 1);
  }
}

TEST_F(SnapshotCodecTest, EmptyInventoryRoundTrips) {
  const Inventory empty(6, SummaryMap{});
  const std::shared_ptr<const InventorySnapshot> sealed = empty.Seal();
  store::SnapshotStore store = Store();
  ASSERT_TRUE(sealed->WriteTo(&store).ok());
  const Result<std::shared_ptr<const InventorySnapshot>> opened =
      OpenLatestSnapshot(store);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->size(), 0u);
  EXPECT_EQ((*opened)->DistinctCells(), 0u);
  EXPECT_EQ((*opened)->Cell(hex::LatLngToCell({10, 10}, 6)), nullptr);
  EXPECT_TRUE(
      (*opened)->CellsForRoute(1, 2, ais::MarketSegment::kContainer).empty());
}

}  // namespace
}  // namespace pol::core
