#include "core/inventory.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "hexgrid/hexgrid.h"

namespace pol::core {
namespace {

PipelineRecord SampleRecord(ais::Mmsi mmsi, uint64_t trip,
                            sim::PortId origin, sim::PortId destination,
                            ais::MarketSegment segment) {
  PipelineRecord r;
  r.mmsi = mmsi;
  r.trip_id = trip;
  r.origin = origin;
  r.destination = destination;
  r.segment = segment;
  r.sog_knots = 13;
  r.cog_deg = 45;
  r.heading_deg = 44;
  r.eto_s = 3600;
  r.ata_s = 7200;
  return r;
}

// Builds a small inventory by hand: two cells, two segments, one route.
Inventory SmallInventory() {
  const hex::CellIndex cell_a = hex::LatLngToCell({1.3, 103.8}, 6);
  const hex::CellIndex cell_b = hex::LatLngToCell({1.3, 104.2}, 6);
  SummaryMap summaries;
  auto add = [&summaries](const GroupKey& key, const PipelineRecord& r,
                          int times) {
    auto [it, inserted] = summaries.try_emplace(key, SummaryParams());
    (void)inserted;
    for (int i = 0; i < times; ++i) it->second.Add(r);
  };
  const auto rec_container = SampleRecord(
      215000001, 11, 3, 21, ais::MarketSegment::kContainer);
  const auto rec_tanker =
      SampleRecord(377000002, 12, 4, 22, ais::MarketSegment::kTanker);
  add(KeyCell(cell_a), rec_container, 5);
  add(KeyCell(cell_a), rec_tanker, 3);
  add(KeyCellType(cell_a, ais::MarketSegment::kContainer), rec_container, 5);
  add(KeyCellType(cell_a, ais::MarketSegment::kTanker), rec_tanker, 3);
  add(KeyCellRouteType(cell_a, 3, 21, ais::MarketSegment::kContainer),
      rec_container, 5);
  add(KeyCell(cell_b), rec_container, 2);
  add(KeyCellType(cell_b, ais::MarketSegment::kContainer), rec_container, 2);
  add(KeyCellRouteType(cell_b, 3, 21, ais::MarketSegment::kContainer),
      rec_container, 2);
  return Inventory(6, std::move(summaries));
}

TEST(InventoryTest, PointLookups) {
  const Inventory inv = SmallInventory();
  const hex::CellIndex cell_a = hex::LatLngToCell({1.3, 103.8}, 6);

  const CellSummary* all = inv.Cell(cell_a);
  ASSERT_NE(all, nullptr);
  EXPECT_EQ(all->record_count(), 8u);

  const CellSummary* containers =
      inv.CellType(cell_a, ais::MarketSegment::kContainer);
  ASSERT_NE(containers, nullptr);
  EXPECT_EQ(containers->record_count(), 5u);

  const CellSummary* route = inv.CellRouteType(
      cell_a, 3, 21, ais::MarketSegment::kContainer);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->record_count(), 5u);

  EXPECT_EQ(inv.CellType(cell_a, ais::MarketSegment::kPassenger), nullptr);
  EXPECT_EQ(inv.Cell(hex::LatLngToCell({50, 0}, 6)), nullptr);
}

TEST(InventoryTest, AtPositionUsesTheRightCell) {
  const Inventory inv = SmallInventory();
  const CellSummary* summary = inv.AtPosition({1.3, 103.8});
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->record_count(), 8u);
  EXPECT_EQ(inv.AtPosition({50.0, 0.0}), nullptr);
}

TEST(InventoryTest, TopDestination) {
  const Inventory inv = SmallInventory();
  const hex::CellIndex cell_a = hex::LatLngToCell({1.3, 103.8}, 6);
  // All traffic: container route to 21 dominates (5 vs 3 records).
  EXPECT_EQ(inv.TopDestination(cell_a, ais::MarketSegment::kOther, true),
            21u);
  // Tanker-only view: destination 22.
  EXPECT_EQ(
      inv.TopDestination(cell_a, ais::MarketSegment::kTanker, false), 22u);
  // Unknown cell.
  EXPECT_EQ(inv.TopDestination(hex::LatLngToCell({50, 0}, 6),
                               ais::MarketSegment::kOther, true),
            sim::kNoPort);
}

TEST(InventoryTest, CellsForRoute) {
  const Inventory inv = SmallInventory();
  const auto cells =
      inv.CellsForRoute(3, 21, ais::MarketSegment::kContainer);
  EXPECT_EQ(cells.size(), 2u);
  EXPECT_TRUE(inv.CellsForRoute(9, 9, ais::MarketSegment::kTanker).empty());
}

// Regression: a route keyed (3, 21) used to silently match nothing when
// queried as (21, 3). The reversed pair now answers with the same
// corridor, and the exact orientation still wins when both exist.
TEST(InventoryTest, CellsForRouteAnswersReversedPortPairs) {
  const Inventory inv = SmallInventory();
  const auto forward =
      inv.CellsForRoute(3, 21, ais::MarketSegment::kContainer);
  const auto reversed =
      inv.CellsForRoute(21, 3, ais::MarketSegment::kContainer);
  ASSERT_EQ(forward.size(), 2u);
  EXPECT_EQ(reversed, forward);
  // The fallback is per (pair, segment): no tanker traffic on 3 -> 21
  // in either orientation.
  EXPECT_TRUE(inv.CellsForRoute(21, 3, ais::MarketSegment::kTanker).empty());
  // The scan reference path implements the same contract.
  EXPECT_EQ(inv.CellsForRouteScan(21, 3, ais::MarketSegment::kContainer),
            forward);
}

TEST(InventoryTest, CompressionReportMath) {
  const Inventory inv = SmallInventory();
  EXPECT_EQ(inv.DistinctCells(), 2u);
  const CompressionReport report = inv.Compression(1000);
  EXPECT_EQ(report.records, 1000u);
  EXPECT_EQ(report.cells, 2u);
  EXPECT_DOUBLE_EQ(report.compression, 1.0 - 2.0 / 1000.0);
  EXPECT_GT(report.utilization, 0.0);
  EXPECT_LT(report.utilization, 1e-5);  // 2 cells of 14.1 M.
  EXPECT_GT(report.serialized_bytes, 0u);
}

TEST(InventoryTest, SerializeRoundTrip) {
  const Inventory inv = SmallInventory();
  std::string bytes;
  inv.SerializeTo(&bytes);
  const auto restored = Inventory::DeserializeFrom(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->resolution(), 6);
  EXPECT_EQ(restored->size(), inv.size());
  const hex::CellIndex cell_a = hex::LatLngToCell({1.3, 103.8}, 6);
  ASSERT_NE(restored->Cell(cell_a), nullptr);
  EXPECT_EQ(restored->Cell(cell_a)->record_count(), 8u);
  EXPECT_EQ(
      restored->TopDestination(cell_a, ais::MarketSegment::kTanker, false),
      22u);
}

TEST(InventoryTest, SerializationIsCanonical) {
  // The same logical inventory must serialize to identical bytes
  // regardless of hash-map iteration order; round-tripping is the
  // easiest way to scramble the order.
  const Inventory inv = SmallInventory();
  std::string first;
  inv.SerializeTo(&first);
  const auto restored = Inventory::DeserializeFrom(first);
  ASSERT_TRUE(restored.ok());
  std::string second;
  restored->SerializeTo(&second);
  EXPECT_EQ(first, second);
}

TEST(InventoryTest, CorruptionIsDetected) {
  const Inventory inv = SmallInventory();
  std::string bytes;
  inv.SerializeTo(&bytes);

  // Bit flip in the body.
  std::string corrupted = bytes;
  corrupted[bytes.size() / 2] =
      static_cast<char>(corrupted[bytes.size() / 2] ^ 0x10);
  EXPECT_EQ(Inventory::DeserializeFrom(corrupted).status().code(),
            StatusCode::kCorruption);

  // Truncation.
  EXPECT_FALSE(
      Inventory::DeserializeFrom(bytes.substr(0, bytes.size() - 10)).ok());

  // Wrong magic.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(Inventory::DeserializeFrom(bad_magic).ok());
}

TEST(InventoryTest, FileRoundTrip) {
  const Inventory inv = SmallInventory();
  const std::string path = "/tmp/pol_inventory_test.polinv";
  ASSERT_TRUE(inv.SaveToFile(path).ok());
  const auto loaded = Inventory::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), inv.size());
  std::remove(path.c_str());
  EXPECT_FALSE(Inventory::LoadFromFile("/tmp/does_not_exist.polinv").ok());
}

}  // namespace
}  // namespace pol::core
