#include "core/trips.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "geo/geodesic.h"

namespace pol::core {
namespace {

// Two synthetic harbours 500 km apart on the equator.
sim::PortDatabase TwoPorts() {
  sim::Port a;
  a.name = "Alpha";
  a.position = {0.0, 0.0};
  a.geofence_radius_km = 10.0;
  sim::Port b;
  b.name = "Beta";
  b.position = {0.0, 4.5};  // ~500 km east.
  b.geofence_radius_km = 10.0;
  return sim::PortDatabase({a, b});
}

PipelineRecord At(ais::Mmsi mmsi, UnixSeconds t, double lat, double lng,
                  double sog = 12.0) {
  PipelineRecord r;
  r.mmsi = mmsi;
  r.timestamp = t;
  r.lat_deg = lat;
  r.lng_deg = lng;
  r.sog_knots = sog;
  r.cog_deg = 90;
  r.heading_deg = 90;
  return r;
}

// A berth record: inside a fence AND stationary (a stop needs both).
PipelineRecord Berth(ais::Mmsi mmsi, UnixSeconds t, double lat, double lng) {
  return At(mmsi, t, lat, lng, 0.3);
}

// A voyage Alpha -> Beta: berth reports, sea leg, berth reports.
std::vector<PipelineRecord> AlphaToBeta(ais::Mmsi mmsi, UnixSeconds start) {
  std::vector<PipelineRecord> records;
  // In Alpha's fence, moored.
  records.push_back(Berth(mmsi, start, 0.0, 0.0));
  records.push_back(Berth(mmsi, start + 600, 0.0, 0.02));
  // At sea: longitudes 0.2 .. 4.3 (outside both 10 km fences).
  for (int i = 0; i < 20; ++i) {
    records.push_back(At(mmsi, start + 3600 + i * 3600, 0.0, 0.3 + i * 0.2));
  }
  // In Beta's fence, moored.
  records.push_back(Berth(mmsi, start + 24 * 3600, 0.0, 4.5));
  records.push_back(Berth(mmsi, start + 24 * 3600 + 600, 0.0, 4.52));
  return records;
}

TEST(TripsTest, ExtractsASingleTrip) {
  flow::ThreadPool pool(2);
  const sim::PortDatabase ports = TwoPorts();
  const Geofencer geofencer(&ports, 7);
  const auto records = flow::Dataset<PipelineRecord>::FromVector(
      AlphaToBeta(215000001, 10000), 1, &pool);
  TripStats stats;
  const auto annotated = ExtractTrips(records, geofencer, &stats);
  EXPECT_EQ(stats.trips, 1u);
  EXPECT_EQ(stats.annotated, 20u);  // Only the sea-leg records.
  EXPECT_EQ(stats.excluded, 4u);    // The berth records.

  const auto collected = annotated.Collect();
  ASSERT_EQ(collected.size(), 20u);
  const uint64_t trip_id = collected[0].trip_id;
  EXPECT_NE(trip_id, 0u);
  const UnixSeconds departure = collected[0].timestamp;
  const UnixSeconds arrival = 10000 + 24 * 3600;  // First Beta record.
  for (const auto& record : collected) {
    EXPECT_EQ(record.trip_id, trip_id);
    EXPECT_EQ(record.origin, 1u);       // Alpha.
    EXPECT_EQ(record.destination, 2u);  // Beta.
    EXPECT_EQ(record.eto_s, record.timestamp - departure);
    EXPECT_EQ(record.ata_s, arrival - record.timestamp);
    EXPECT_GE(record.eto_s, 0);
    EXPECT_GE(record.ata_s, 0);
  }
}

TEST(TripsTest, LeadingAndTrailingLegsAreExcluded) {
  flow::ThreadPool pool(2);
  const sim::PortDatabase ports = TwoPorts();
  const Geofencer geofencer(&ports, 7);
  std::vector<PipelineRecord> records;
  // Starts at sea (no known origin) ...
  for (int i = 0; i < 5; ++i) {
    records.push_back(At(215000001, 1000 + i * 600, 0.0, 2.0 + i * 0.01));
  }
  // ... calls at Beta ...
  records.push_back(Berth(215000001, 10000, 0.0, 4.5));
  // ... and leaves again without reaching another port.
  for (int i = 0; i < 5; ++i) {
    records.push_back(At(215000001, 20000 + i * 600, 0.0, 3.0 - i * 0.01));
  }
  TripStats stats;
  const auto annotated = ExtractTrips(
      flow::Dataset<PipelineRecord>::FromVector(records, 1, &pool),
      geofencer, &stats);
  EXPECT_EQ(stats.trips, 0u);
  EXPECT_EQ(stats.annotated, 0u);
  EXPECT_EQ(stats.excluded, 11u);
}

TEST(TripsTest, RoundTripGivesTwoTrips) {
  flow::ThreadPool pool(2);
  const sim::PortDatabase ports = TwoPorts();
  const Geofencer geofencer(&ports, 7);
  std::vector<PipelineRecord> records = AlphaToBeta(215000001, 10000);
  // Return leg Beta -> Alpha.
  const UnixSeconds back = 200000;
  for (int i = 0; i < 10; ++i) {
    records.push_back(At(215000001, back + i * 3600, 0.0, 4.3 - i * 0.4));
  }
  records.push_back(Berth(215000001, back + 11 * 3600, 0.0, 0.01));
  TripStats stats;
  const auto annotated = ExtractTrips(
      flow::Dataset<PipelineRecord>::FromVector(records, 1, &pool),
      geofencer, &stats);
  EXPECT_EQ(stats.trips, 2u);
  std::set<uint64_t> trip_ids;
  std::set<sim::PortId> origins;
  for (const auto& record : annotated.Collect()) {
    trip_ids.insert(record.trip_id);
    origins.insert(record.origin);
  }
  EXPECT_EQ(trip_ids.size(), 2u);
  EXPECT_EQ(origins.size(), 2u);  // Alpha->Beta and Beta->Alpha.
}

TEST(TripsTest, MultipleVesselsInOnePartition) {
  flow::ThreadPool pool(2);
  const sim::PortDatabase ports = TwoPorts();
  const Geofencer geofencer(&ports, 7);
  std::vector<PipelineRecord> records = AlphaToBeta(215000001, 10000);
  const auto second = AlphaToBeta(377000002, 50000);
  records.insert(records.end(), second.begin(), second.end());
  TripStats stats;
  const auto annotated = ExtractTrips(
      flow::Dataset<PipelineRecord>::FromVector(records, 1, &pool),
      geofencer, &stats);
  EXPECT_EQ(stats.trips, 2u);
  std::set<uint64_t> trip_ids;
  for (const auto& record : annotated.Collect()) {
    EXPECT_NE(record.trip_id, 0u);
    trip_ids.insert(record.trip_id);
  }
  EXPECT_EQ(trip_ids.size(), 2u);
}

TEST(TripsTest, TransitThroughAFenceDoesNotSplitTheTrip) {
  // A third port sits right on the Alpha-Beta lane (like Singapore on
  // the Singapore Strait): sailing through its fence at sea speed must
  // NOT close the trip — only an actual stop does.
  sim::Port a;
  a.name = "Alpha";
  a.position = {0.0, 0.0};
  a.geofence_radius_km = 10.0;
  sim::Port b;
  b.name = "Beta";
  b.position = {0.0, 4.5};
  b.geofence_radius_km = 10.0;
  sim::Port chokepoint;
  chokepoint.name = "Chokepoint";
  chokepoint.position = {0.0, 2.25};  // Mid-lane.
  chokepoint.geofence_radius_km = 15.0;
  const sim::PortDatabase ports({a, b, chokepoint});
  const Geofencer geofencer(&ports, 7);

  flow::ThreadPool pool(2);
  const auto records = flow::Dataset<PipelineRecord>::FromVector(
      AlphaToBeta(215000001, 10000), 1, &pool);
  TripStats stats;
  const auto annotated = ExtractTrips(records, geofencer, &stats);
  EXPECT_EQ(stats.trips, 1u);  // NOT split at the chokepoint.
  for (const auto& record : annotated.Collect()) {
    EXPECT_EQ(record.origin, 1u);
    EXPECT_EQ(record.destination, 2u);
  }

  // The same track with an actual stop at the chokepoint splits in two.
  std::vector<PipelineRecord> with_stop = AlphaToBeta(215000001, 10000);
  // Insert stationary records at the chokepoint mid-voyage (timestamps
  // between the 10th and 11th sea records).
  with_stop.push_back(Berth(215000001, 10000 + 3600 + 9 * 3600 + 1800,
                            0.0, 2.25));
  std::sort(with_stop.begin(), with_stop.end(),
            [](const PipelineRecord& x, const PipelineRecord& y) {
              return x.timestamp < y.timestamp;
            });
  TripStats split_stats;
  ExtractTrips(flow::Dataset<PipelineRecord>::FromVector(with_stop, 1, &pool),
               geofencer, &split_stats);
  EXPECT_EQ(split_stats.trips, 2u);
}

TEST(TripsTest, TripIdIsStableAndNonZero) {
  const uint64_t id1 = MakeTripId(215000001, 123456);
  const uint64_t id2 = MakeTripId(215000001, 123456);
  const uint64_t id3 = MakeTripId(215000001, 123457);
  EXPECT_EQ(id1, id2);
  EXPECT_NE(id1, id3);
  EXPECT_NE(id1, 0u);
}

TEST(TripsTest, EmptyInput) {
  flow::ThreadPool pool(2);
  const sim::PortDatabase ports = TwoPorts();
  const Geofencer geofencer(&ports, 7);
  TripStats stats;
  const auto annotated = ExtractTrips(
      flow::Dataset<PipelineRecord>::FromVector({}, 2, &pool), geofencer,
      &stats);
  EXPECT_EQ(annotated.Count(), 0u);
  EXPECT_EQ(stats.trips, 0u);
}

}  // namespace
}  // namespace pol::core
