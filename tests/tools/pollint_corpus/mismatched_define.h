#ifndef POL_CORPUS_MISMATCHED_DEFINE_H_
#define POL_CORPUS_MISMATCHED_DEFINE_X

// Corpus: the #ifndef is right but the #define does not match it.
int MismatchedDefine();

#endif
