// inventory-query corpus: direct summary-map access outside src/core.

void Consume(const pol::core::Inventory& inv) {
  for (const auto& [key, summary] : inv.summaries()) {
    (void)key;
    (void)summary;
  }
  auto spaced = inv . summaries ( );
  (void)spaced;
  auto ok = inv.summaries();  // NOLINT(pollint:inventory-query)
  (void)ok;
  // NOLINTNEXTLINE(pollint:inventory-query)
  auto also_ok = inv.summaries();
  (void)also_ok;
  // A different identifier that merely ends in the word stays quiet.
  auto quiet = inv.chunk_summaries();
  (void)quiet;
}
