#ifndef POL_CORPUS_MUTEX_MEMBER_H_
#define POL_CORPUS_MUTEX_MEMBER_H_

// Corpus: std::mutex members must carry a '// guards:' comment.
#include <mutex>

class Counters {
 public:
  void Tick();

 private:
  std::mutex mutex_;
  // guards: slow_
  mutable std::mutex slow_mutex_;
  std::shared_mutex rw_mutex_;  // guards: totals_
  int slow_ = 0;
  int totals_ = 0;
};

inline void LocalMutexIsFine() {
  static std::mutex local;  // Not a member: trailing underscore absent.
  (void)local;
}

#endif  // POL_CORPUS_MUTEX_MEMBER_H_
