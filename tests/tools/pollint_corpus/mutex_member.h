#ifndef POL_CORPUS_MUTEX_MEMBER_H_
#define POL_CORPUS_MUTEX_MEMBER_H_

// Corpus: mutex-annotation — raw std::mutex family types are banned in
// library code, and a pol::Mutex member (trailing underscore) must
// guard at least one POL_GUARDED_BY field in the file.
#include <mutex>
#include <shared_mutex>

#include "common/mutex.h"
#include "common/thread_annotations.h"

class Counters {
 public:
  void Tick();

 private:
  std::mutex raw_;
  mutable std::shared_mutex rw_;
  Mutex unguarded_;
  mutable pol::Mutex mutex_;
  int total_ POL_GUARDED_BY(mutex_) = 0;
};

inline void LocalsAreNotMembers() {
  pol::Mutex local;  // No trailing underscore: guard check skips it.
  (void)local;
}

#endif  // POL_CORPUS_MUTEX_MEMBER_H_
