// Corpus: naked new/delete in library code.
#include <memory>

struct Widget {
  Widget() = default;
  Widget(const Widget&) = delete;  // Deleted member, not a deallocation.
};

Widget* Bad() {
  Widget* w = new Widget();
  delete w;
  return new Widget();
}

std::unique_ptr<Widget> Fine() {
  auto owned = std::make_unique<Widget>();
  // NOLINTNEXTLINE(pollint:naked-new): arena handed to the C API.
  Widget* arena = new Widget();
  (void)arena;
  return owned;
}
