// Corpus: header with no include guard at all.
int NoGuard();
