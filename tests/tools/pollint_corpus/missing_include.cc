// Corpus: direct std usage without the matching direct #include.
#include <string>

std::string Join(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& part : parts) out += part;
  return out;
}
