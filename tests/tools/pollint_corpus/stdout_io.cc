// Corpus: stdout writes in library code. Linted twice by pollint_test:
// under src/corpus/stdout_io.cc (findings) and under
// tools/corpus/stdout_io.cc (clean — tools may print).
#include <cstdio>
#include <iostream>

void Bad() {
  std::cout << "progress\n";
  printf("done\n");
  std::printf("done\n");
}

void Fine() {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "ok");   // snprintf formats, no I/O.
  std::fprintf(stderr, "to stderr\n");     // stderr is the log channel.
  std::cout << "suppressed\n";             // NOLINT(pollint:stdout-io)
}
