#include <stdexcept>

void Swallowed() {
  try {
    throw std::runtime_error("boom");
  } catch (...) {
  }
}

void SwallowedWithCosmetics(int* counter) {
  try {
    throw std::runtime_error("boom");
  } catch (const std::exception& e) {
    ++*counter;
  }
}

void Rethrown() {
  try {
    throw std::runtime_error("boom");
  } catch (...) {
    throw;
  }
}

int ConvertedToReturn() {
  try {
    throw std::runtime_error("boom");
  } catch (const std::exception&) {
    return -1;
  }
}

void Suppressed() {
  try {
    throw std::runtime_error("boom");
    // NOLINTNEXTLINE(pollint:catch-swallow): probe may legally fail.
  } catch (...) {
  }
}
