// serving-wait corpus: raw condition variables and sleep-based waiting
// in the serving path must go through pol::CondVar::WaitFor instead.
#include <chrono>
#include <condition_variable>
#include <thread>

std::condition_variable cv;
std::condition_variable_any cv_any;

void Wait() {
  std::chrono::steady_clock::time_point wake;
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::this_thread::sleep_until(wake);
  usleep(100);
  nanosleep(nullptr, nullptr);
  // NOLINTNEXTLINE(pollint:serving-wait)
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
