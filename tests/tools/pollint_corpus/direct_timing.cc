// direct-timing corpus: raw monotonic-clock reads in library code.
#include <chrono>

void Timing() {
  auto a = std::chrono::steady_clock::now();
  auto b = std::chrono::high_resolution_clock::now();
  using clock = std::chrono::steady_clock;
  auto c = clock::now();  // Alias still names steady_clock? No: stays quiet.
  auto d = std::chrono::steady_clock::now();  // NOLINT(pollint:direct-timing)
  // NOLINTNEXTLINE(pollint:direct-timing)
  auto e = std::chrono::steady_clock::now();
  // system_clock is calendar time, not a measurement clock: no finding.
  auto f = std::chrono::system_clock::now();
  (void)a; (void)b; (void)c; (void)d; (void)e; (void)f;
}
