#ifndef POL_CORPUS_GOOD_GUARD_H_
#define POL_CORPUS_GOOD_GUARD_H_

// Corpus: fully clean header — correct guard for the virtual path
// src/corpus/good_guard.h, annotated mutex, direct includes.
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

class GoodGuard {
 public:
  void Add(int v) {
    pol::MutexLock lock(mutex_);
    values_.push_back(v);
  }

 private:
  mutable pol::Mutex mutex_;
  std::vector<int> values_ POL_GUARDED_BY(mutex_);
};

#endif  // POL_CORPUS_GOOD_GUARD_H_
