#ifndef POL_CORPUS_GOOD_GUARD_H_
#define POL_CORPUS_GOOD_GUARD_H_

// Corpus: fully clean header — correct guard for the virtual path
// src/corpus/good_guard.h, documented mutex, direct includes.
#include <mutex>
#include <vector>

class GoodGuard {
 public:
  void Add(int v) {
    std::lock_guard<std::mutex> lock(mutex_);
    values_.push_back(v);
  }

 private:
  std::mutex mutex_;  // guards: values_
  std::vector<int> values_;
};

#endif  // POL_CORPUS_GOOD_GUARD_H_
