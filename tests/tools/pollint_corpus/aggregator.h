#ifndef POL_CORPUS_AGGREGATOR_H_
#define POL_CORPUS_AGGREGATOR_H_

// Corpus: an aggregator header that pulls in <vector> for its own
// types. Files including it see std::vector transitively — the
// missing-include false positive poldeps' include graph suppresses.
#include <vector>

struct Batch {
  std::vector<int> values;
};

#endif  // POL_CORPUS_AGGREGATOR_H_
