// Corpus: raw buffered file output in the persistence layer. Linted
// twice by pollint_test: under a src/store/ virtual path every raw
// write below is a banned-call finding; under src/core/ the rule
// stays silent (other layers may buffer freely).
#include <cstdio>
#include <fstream>

void Bad(const char* path) {
  std::ofstream out(path);
  std::fstream both(path);
  FILE* f = fopen(path, "wb");
  if (f != nullptr) (void)fclose(f);
  (void)out;
  (void)both;
}

void Fine() {
  // ofstream in a comment is fine, as is "fopen(" in a string:
  const char* s = "fopen(x)";
  (void)s;
  std::ofstream log("x");  // NOLINT(pollint:banned-call)
  (void)log;
}
