// Corpus: banned C library calls in library code. Linted under the
// virtual path src/corpus/banned_calls.cc by pollint_test.
#include <ctime>

int Bad() {
  int x = rand();
  srand(42);
  std::time_t t = 0;
  (void)gmtime(&t);
  (void)localtime(&t);
  char buf[4] = {0};
  (void)strtok(buf, ",");
  return x;
}

int Fine() {
  // rand() in a comment is fine, as is "srand(1)" in a string:
  const char* s = "srand(1)";
  (void)s;
  int my_rand = 3;      // Identifier containing 'rand'.
  int brand = my_rand;  // Ditto.
  (void)std::rand();    // NOLINT(pollint:banned-call)
  return brand;
}
