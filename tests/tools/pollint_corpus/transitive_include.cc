// Corpus: uses std::vector with <vector> visible only through the
// aggregator header. Single-file lint reports missing-include (line 5);
// project lint, which knows the include graph, stays quiet.
#include "corpus/aggregator.h"
std::vector<int> Twice(Batch batch);
