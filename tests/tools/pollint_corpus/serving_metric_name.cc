// serving-metric-name corpus: ad-hoc "serving.*" metric-name literals
// in the serving path must come from core/serving_metric_names.h.
#include <string_view>

void Names() {
  const std::string_view adhoc = "serving.refreshes";
  const std::string_view nested = "serving.breaker.trips";
  // Literal-start only: "serving." appearing mid-string (log messages)
  // and dot-free prose stay quiet.
  const std::string_view message = "falling back to serving.stale data";
  const std::string_view prose = "serving last good snapshot";
  // NOLINTNEXTLINE(pollint:serving-metric-name)
  const std::string_view suppressed = "serving.suppressed";
  static_cast<void>(adhoc);
  static_cast<void>(nested);
  static_cast<void>(message);
  static_cast<void>(prose);
  static_cast<void>(suppressed);
}
