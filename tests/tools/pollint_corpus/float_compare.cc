// Corpus: floating-point ==/!= comparisons.

bool Bad(double a, float b, double c) {
  bool r = a == 1.0;
  r = r || (b != 0.5f);
  r = r || (1e-9 == c);
  r = r || (c == .25);
  return r;
}

struct Meters {
  double value;
  // operator definitions are exempt even with literals nearby:
  bool operator==(const Meters& other) const = default;
};

bool Fine(int n, double a, double b) {
  bool r = n == 1;          // Integer literal: fine.
  r = r || (a == b);        // No literal operand: assumed deliberate.
  r = r || (a <= 1.0);      // Ordering, not equality.
  r = r || (a == 0.0);      // NOLINT(pollint:float-compare)
  // NOLINTNEXTLINE(pollint:float-compare): exact sentinel.
  r = r || (b != -1.0);
  return r;
}
