#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

// Corpus: include guard does not follow POL_<PATH>_H_.
int BadGuard();

#endif  // WRONG_GUARD_H
