// poldeps self-check: runs the whole-project analysis over the real
// repository tree (src/ + tools/, same collection as `pollint
// --project`) and asserts it is clean. This is the live guarantee that
// the layer DAG in tools/pollint/layers.txt matches the code — any
// upward include, cycle, or unannotated mutex someone lands turns this
// test red with the same path:line diagnostic the CLI prints.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/pollint/fileset.h"
#include "tools/pollint/poldeps.h"
#include "tools/pollint/pollint.h"

namespace pol::tools::pollint {
namespace {

#ifndef POL_REPO_ROOT
#error "POL_REPO_ROOT must point at the repository root"
#endif

TEST(PoldepsSelfCheckTest, RepositoryTreeIsClean) {
  const std::string root = POL_REPO_ROOT;
  std::string error;
  std::vector<std::string> paths;
  ASSERT_TRUE(CollectFiles(root, "src", &paths, &error)) << error;
  ASSERT_TRUE(CollectFiles(root, "tools", &paths, &error)) << error;
  ASSERT_GT(paths.size(), 50u) << "suspiciously few files collected";

  std::string layers_text;
  ASSERT_TRUE(ReadFile(root + "/tools/pollint/layers.txt", &layers_text,
                       &error))
      << error;
  const LayerSpecParse parsed = ParseLayerSpec(layers_text);
  ASSERT_TRUE(parsed.errors.empty()) << parsed.errors.front();

  std::vector<SourceFile> sources;
  ASSERT_TRUE(ReadSources(root, paths, &sources, &error)) << error;
  const ProjectLintResult result = ProjectLint(parsed.spec, sources);
  for (const Finding& finding : result.findings) {
    ADD_FAILURE() << FormatFinding(finding);
  }
  // The graph itself should be substantial: every src/ file has a
  // layer, and the tree produces a few hundred resolved edges.
  EXPECT_GT(result.graph.edges.size(), 100u);
}

}  // namespace
}  // namespace pol::tools::pollint
