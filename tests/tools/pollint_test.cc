// pollint self-tests: every corpus fixture is linted under a virtual
// repo path and must produce exactly the expected (rule, line) set —
// ids and line numbers both, so rule regressions cannot hide behind
// "still finds something on that file".

#include "tools/pollint/pollint.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace pol::tools::pollint {
namespace {

#ifndef POLLINT_CORPUS_DIR
#error "POLLINT_CORPUS_DIR must point at tests/tools/pollint_corpus"
#endif

std::string ReadCorpusFile(const std::string& name) {
  const std::string path = std::string(POLLINT_CORPUS_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus fixture: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

using RuleLine = std::pair<std::string, int>;

std::vector<RuleLine> Lint(const std::string& fixture,
                           const std::string& virtual_path) {
  std::vector<RuleLine> got;
  for (const Finding& finding :
       LintSource(virtual_path, ReadCorpusFile(fixture))) {
    EXPECT_EQ(finding.path, virtual_path);
    got.emplace_back(finding.rule, finding.line);
  }
  return got;
}

TEST(PollintCorpusTest, BannedCalls) {
  const std::vector<RuleLine> expected = {
      {"banned-call", 6},  {"banned-call", 7},  {"banned-call", 9},
      {"banned-call", 10}, {"banned-call", 12},
  };
  EXPECT_EQ(Lint("banned_calls.cc", "src/corpus/banned_calls.cc"), expected);
}

TEST(PollintCorpusTest, StoreRawWriteBannedInStore) {
  const std::vector<RuleLine> expected = {
      {"banned-call", 9},
      {"banned-call", 10},
      {"banned-call", 11},
  };
  EXPECT_EQ(Lint("store_raw_write.cc", "src/store/store_raw_write.cc"),
            expected);
}

TEST(PollintCorpusTest, StoreRawWriteAllowedOutsideStore) {
  EXPECT_TRUE(Lint("store_raw_write.cc", "src/core/store_raw_write.cc").empty());
}

TEST(PollintCorpusTest, StdoutIoInLibraryCode) {
  const std::vector<RuleLine> expected = {
      {"stdout-io", 8},
      {"stdout-io", 9},
      {"stdout-io", 10},
  };
  EXPECT_EQ(Lint("stdout_io.cc", "src/corpus/stdout_io.cc"), expected);
}

TEST(PollintCorpusTest, StdoutIoAllowedInTools) {
  EXPECT_TRUE(Lint("stdout_io.cc", "tools/corpus/stdout_io.cc").empty());
}

TEST(PollintCorpusTest, NakedNewDelete) {
  const std::vector<RuleLine> expected = {
      {"naked-new", 10},
      {"naked-new", 11},
      {"naked-new", 12},
  };
  EXPECT_EQ(Lint("naked_new.cc", "src/corpus/naked_new.cc"), expected);
}

TEST(PollintCorpusTest, FloatCompare) {
  const std::vector<RuleLine> expected = {
      {"float-compare", 4},
      {"float-compare", 5},
      {"float-compare", 6},
      {"float-compare", 7},
  };
  EXPECT_EQ(Lint("float_compare.cc", "src/corpus/float_compare.cc"),
            expected);
}

TEST(PollintCorpusTest, WrongGuardName) {
  const std::vector<RuleLine> expected = {{"include-guard", 1}};
  EXPECT_EQ(Lint("bad_guard.h", "src/corpus/bad_guard.h"), expected);
}

TEST(PollintCorpusTest, MissingGuard) {
  const std::vector<RuleLine> expected = {{"include-guard", 1}};
  EXPECT_EQ(Lint("no_guard.h", "src/corpus/no_guard.h"), expected);
}

TEST(PollintCorpusTest, MismatchedDefine) {
  const std::vector<RuleLine> expected = {{"include-guard", 2}};
  EXPECT_EQ(Lint("mismatched_define.h", "src/corpus/mismatched_define.h"),
            expected);
}

TEST(PollintCorpusTest, CleanHeaderHasNoFindings) {
  EXPECT_TRUE(Lint("good_guard.h", "src/corpus/good_guard.h").empty());
}

TEST(PollintCorpusTest, MutexAnnotations) {
  // Raw std::mutex / std::shared_mutex members fire part (a); the
  // pol::Mutex member guarding nothing fires part (b); the annotated
  // member and the function-local Mutex stay quiet.
  const std::vector<RuleLine> expected = {
      {"mutex-annotation", 18},
      {"mutex-annotation", 19},
      {"mutex-annotation", 20},
  };
  EXPECT_EQ(Lint("mutex_member.h", "src/corpus/mutex_member.h"), expected);
}

TEST(PollintCorpusTest, MutexAnnotationsOnlyInLibraryCode) {
  // Under a tools/ path only the path-derived include-guard rule may
  // fire; the mutex rule is library-code-only.
  for (const RuleLine& finding :
       Lint("mutex_member.h", "tools/corpus/mutex_member.h")) {
    EXPECT_NE(finding.first, "mutex-annotation");
  }
}

TEST(PollintTest, MutexWrapperHeaderIsExempt) {
  // The one legitimate home of a raw std::mutex.
  const auto findings = LintSource(
      "src/common/mutex.h",
      "#ifndef POL_COMMON_MUTEX_H_\n#define POL_COMMON_MUTEX_H_\n"
      "#include <mutex>\nclass Mutex { std::mutex mu_; };\n#endif\n");
  EXPECT_TRUE(findings.empty());
}

TEST(PollintTest, TransitiveStdIncludesSuppressMissingInclude) {
  // The LintOptions overload treats project-propagated std headers as
  // satisfied; the plain overload keeps demanding a direct include.
  const std::string content = "std::vector<int> v;\n";
  ASSERT_EQ(LintSource("src/x/y.cc", content).size(), 1u);
  LintOptions options;
  options.transitive_std_includes.insert("vector");
  EXPECT_TRUE(LintSource("src/x/y.cc", content, options).empty());
}

TEST(PollintCorpusTest, CatchSwallow) {
  // Fires on the empty handler and the cosmetic-only one; rethrow,
  // return, and the NOLINTNEXTLINE-suppressed handler stay clean.
  const std::vector<RuleLine> expected = {
      {"catch-swallow", 6},
      {"catch-swallow", 13},
  };
  EXPECT_EQ(Lint("catch_swallow.cc", "src/corpus/catch_swallow.cc"),
            expected);
}

TEST(PollintCorpusTest, CatchSwallowOnlyInLibraryCode) {
  EXPECT_TRUE(Lint("catch_swallow.cc", "tools/corpus/catch_swallow.cc")
                  .empty());
}

TEST(PollintCorpusTest, DirectTiming) {
  // Raw steady_clock / high_resolution_clock reads fire; suppressed
  // lines and system_clock (calendar time) stay quiet.
  const std::vector<RuleLine> expected = {
      {"direct-timing", 5},
      {"direct-timing", 6},
  };
  EXPECT_EQ(Lint("direct_timing.cc", "src/corpus/direct_timing.cc"),
            expected);
}

TEST(PollintCorpusTest, DirectTimingAllowedInObsAndTools) {
  // src/obs is the timing authority, and non-library code may read the
  // clock directly.
  EXPECT_TRUE(Lint("direct_timing.cc", "src/obs/direct_timing.cc").empty());
  EXPECT_TRUE(
      Lint("direct_timing.cc", "tools/corpus/direct_timing.cc").empty());
}

TEST(PollintCorpusTest, InventoryQueryBoundary) {
  // Direct summaries() iteration fires everywhere outside src/core —
  // library, bench, examples and tools alike; suppressions and
  // identifiers merely ending in "summaries" stay quiet.
  const std::vector<RuleLine> expected = {
      {"inventory-query", 4},
      {"inventory-query", 8},
  };
  EXPECT_EQ(Lint("direct_summaries.cc", "src/usecases/direct_summaries.cc"),
            expected);
  EXPECT_EQ(Lint("direct_summaries.cc", "bench/direct_summaries.cc"),
            expected);
  EXPECT_EQ(Lint("direct_summaries.cc", "tools/direct_summaries.cc"),
            expected);
}

TEST(PollintCorpusTest, InventoryQueryAllowedInCore) {
  // src/core owns the summary map; the rule must not fire there.
  EXPECT_TRUE(
      Lint("direct_summaries.cc", "src/core/direct_summaries.cc").empty());
}

TEST(PollintCorpusTest, ServingWait) {
  // Raw condition variables and every sleep flavor fire inside the
  // serving path; the NOLINTNEXTLINE-suppressed sleep stays quiet.
  const std::vector<RuleLine> expected = {
      {"serving-wait", 7},  {"serving-wait", 8},  {"serving-wait", 12},
      {"serving-wait", 13}, {"serving-wait", 14}, {"serving-wait", 15},
  };
  EXPECT_EQ(Lint("serving_wait.cc", "src/core/serving_wait.cc"), expected);
}

TEST(PollintCorpusTest, ServingWaitScopedToServingPath) {
  // The same text is legal elsewhere — the rule polices the serving
  // path only (other core files, other layers, non-library trees).
  EXPECT_TRUE(Lint("serving_wait.cc", "src/core/inventory_wait.cc").empty());
  EXPECT_TRUE(Lint("serving_wait.cc", "src/flow/serving_wait.cc").empty());
  EXPECT_TRUE(Lint("serving_wait.cc", "tools/serving_wait.cc").empty());
}

TEST(PollintCorpusTest, ServingMetricName) {
  // Ad-hoc "serving.*" name literals fire in the serving path; prose
  // mentioning serving, mid-string occurrences, and the NOLINT'd line
  // stay quiet.
  const std::vector<RuleLine> expected = {
      {"serving-metric-name", 6},
      {"serving-metric-name", 7},
  };
  EXPECT_EQ(Lint("serving_metric_name.cc", "src/core/serving_metric_name.cc"),
            expected);
}

TEST(PollintCorpusTest, ServingMetricNameScopedToServingPath) {
  // Outside src/core/serving* the literals are legal, and the constants
  // header itself — the one place the names are allowed to live as
  // literals — is exempt.
  EXPECT_TRUE(
      Lint("serving_metric_name.cc", "src/core/inventory_names.cc").empty());
  EXPECT_TRUE(
      Lint("serving_metric_name.cc", "src/flow/serving_metric_name.cc")
          .empty());
  EXPECT_TRUE(
      Lint("serving_metric_name.cc", "tools/serving_metric_name.cc").empty());
  // The header path still gets the other rules (include-guard, &c), so
  // only assert the metric-name rule is muted there.
  for (const RuleLine& finding :
       Lint("serving_metric_name.cc", "src/core/serving_metric_names.h")) {
    EXPECT_NE(finding.first, "serving-metric-name") << finding.second;
  }
}

TEST(PollintCorpusTest, MissingDirectInclude) {
  const std::vector<RuleLine> expected = {{"missing-include", 4}};
  EXPECT_EQ(Lint("missing_include.cc", "src/corpus/missing_include.cc"),
            expected);
}

TEST(PollintTest, GuardNamesDeriveFromPath) {
  // Library headers drop the src/ prefix; everything else keeps the
  // full path (bench/bench_util.h -> POL_BENCH_BENCH_UTIL_H_).
  const std::string content =
      "#ifndef POL_BENCH_X_H_\n#define POL_BENCH_X_H_\n#endif\n";
  EXPECT_TRUE(LintSource("bench/x.h", content).empty());
  // Under src/ the prefix is stripped, so the same text expects
  // POL_X_H_ and the bench-style guard is a finding.
  const auto findings = LintSource("src/x.h", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");
}

TEST(PollintTest, RuleIdsAreSortedAndUnique) {
  const std::vector<std::string>& ids = RuleIds();
  EXPECT_FALSE(ids.empty());
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(PollintTest, FormatFindingIsGrepFriendly) {
  Finding finding;
  finding.path = "src/flow/dataset.h";
  finding.line = 42;
  finding.rule = "naked-new";
  finding.message = "boom";
  EXPECT_EQ(FormatFinding(finding),
            "src/flow/dataset.h:42: pollint:naked-new: boom");
}

TEST(PollintTest, BlanketNolintSuppressesEveryRule) {
  const auto findings = LintSource(
      "src/x/y.cc", "int a = rand();  // NOLINT(pollint)\n");
  EXPECT_TRUE(findings.empty());
}

TEST(PollintTest, CommentsAndStringsDoNotTrigger) {
  const auto findings = LintSource(
      "src/x/y.cc",
      "// rand() gmtime() new delete std::cout 1.0 == 2.0\n"
      "const char* s = \"rand() new std::cout\";\n"
      "/* delete printf(\"x\") */\n");
  EXPECT_TRUE(findings.empty());
}

}  // namespace
}  // namespace pol::tools::pollint
