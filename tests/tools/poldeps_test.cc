// poldeps self-tests: layer-spec parsing, include-graph construction,
// and the project rules (layer violations, cycles, unknown layers,
// dangling includes) over hermetic in-memory fixture projects, plus
// the missing-include transitive regression over corpus files.

#include "tools/pollint/poldeps.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace pol::tools::pollint {
namespace {

#ifndef POLLINT_CORPUS_DIR
#error "POLLINT_CORPUS_DIR must point at tests/tools/pollint_corpus"
#endif

std::string ReadCorpusFile(const std::string& name) {
  const std::string path = std::string(POLLINT_CORPUS_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus fixture: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

LayerSpec Parse(const std::string& text) {
  LayerSpecParse parse = ParseLayerSpec(text);
  EXPECT_TRUE(parse.errors.empty())
      << "unexpected spec error: " << parse.errors.front();
  return std::move(parse.spec);
}

// A miniature of the real DAG, enough for every graph rule.
const char kSpec[] =
    "# comment\n"
    "layer base\n"
    "layer obs : base\n"
    "layer common : obs\n"
    "layer core : common\n"
    "layer tools : core\n"
    "assign src/common/special.h base\n";

using RuleLine = std::pair<std::string, int>;

std::vector<RuleLine> RulesOf(const std::vector<Finding>& findings) {
  std::vector<RuleLine> out;
  for (const Finding& finding : findings) {
    out.emplace_back(finding.rule, finding.line);
  }
  return out;
}

TEST(LayerSpecTest, ClosesDependenciesTransitively) {
  const LayerSpec spec = Parse(kSpec);
  const std::vector<std::string> expected_order = {"base", "obs", "common",
                                                   "core", "tools"};
  EXPECT_EQ(spec.order, expected_order);
  // tools : core closes over common, obs, base.
  const std::set<std::string> expected_deps = {"base", "common", "core",
                                               "obs"};
  EXPECT_EQ(spec.allowed.at("tools"), expected_deps);
  EXPECT_TRUE(spec.allowed.at("base").empty());
}

TEST(LayerSpecTest, ColonMayTouchTheLayerName) {
  const LayerSpec spec = Parse("layer a\nlayer b: a\n");
  EXPECT_EQ(spec.allowed.at("b"), std::set<std::string>{"a"});
}

TEST(LayerSpecTest, RejectsForwardAndUnknownDeps) {
  // Deps must be declared above — that is what makes the spec a DAG by
  // construction.
  const LayerSpecParse parse = ParseLayerSpec("layer a : b\nlayer b\n");
  ASSERT_EQ(parse.errors.size(), 1u);
  EXPECT_NE(parse.errors[0].find("line 1"), std::string::npos);
  EXPECT_NE(parse.errors[0].find("'b'"), std::string::npos);
}

TEST(LayerSpecTest, RejectsDuplicatesBadAssignsAndUnknownDirectives) {
  const LayerSpecParse parse = ParseLayerSpec(
      "layer a\n"
      "layer a\n"
      "assign src/x.h nope\n"
      "frobnicate\n");
  EXPECT_EQ(parse.errors.size(), 3u);
}

TEST(LayerSpecTest, LayerForPathUsesOverridesThenDirectories) {
  const LayerSpec spec = Parse(kSpec);
  EXPECT_EQ(LayerForPath(spec, "src/common/special.h"), "base");
  EXPECT_EQ(LayerForPath(spec, "src/common/check.h"), "common");
  EXPECT_EQ(LayerForPath(spec, "tools/pollint/pollint.cc"), "tools");
  EXPECT_EQ(LayerForPath(spec, "src/unheard_of/x.h"), "");
  EXPECT_EQ(LayerForPath(spec, "bench/bench_util.h"), "");
}

TEST(PoldepsTest, AcceptsDownwardAndSameLayerIncludes) {
  const LayerSpec spec = Parse(kSpec);
  const std::vector<SourceFile> files = {
      {"src/core/api.h", "#include \"common/check.h\"\n"},
      {"src/common/check.h", "#include \"common/special.h\"\n"},
      {"src/common/special.h", ""},
      {"src/obs/metrics.h", "#include \"common/special.h\"\n"},
  };
  const ProjectGraph graph = BuildProjectGraph(files, spec);
  EXPECT_TRUE(CheckProject(graph, spec).empty());
  EXPECT_EQ(graph.edges.size(), 3u);
}

TEST(PoldepsTest, ReportsUpwardIncludeAsLayerViolation) {
  // The canonical breakage: the dependency-free obs layer reaching up
  // into core.
  const LayerSpec spec = Parse(kSpec);
  const std::vector<SourceFile> files = {
      {"src/obs/metrics.h", "// preamble\n#include \"core/api.h\"\n"},
      {"src/core/api.h", ""},
  };
  const std::vector<Finding> findings =
      CheckProject(BuildProjectGraph(files, spec), spec);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/obs/metrics.h");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].rule, "layer-violation");
  EXPECT_NE(findings[0].message.find("layer core"), std::string::npos);
  EXPECT_NE(findings[0].message.find("layer obs"), std::string::npos);
}

TEST(PoldepsTest, ReportsTwoNodeIncludeCycle) {
  const LayerSpec spec = Parse(kSpec);
  const std::vector<SourceFile> files = {
      {"src/core/a.h", "#include \"core/b.h\"\n"},
      {"src/core/b.h", "#include \"core/a.h\"\n"},
  };
  const std::vector<Finding> findings =
      CheckProject(BuildProjectGraph(files, spec), spec);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-cycle");
  EXPECT_EQ(findings[0].path, "src/core/a.h");
  EXPECT_NE(findings[0].message.find(
                "src/core/a.h -> src/core/b.h -> src/core/a.h"),
            std::string::npos);
}

TEST(PoldepsTest, ReportsThreeNodeIncludeCycleOnce) {
  const LayerSpec spec = Parse(kSpec);
  const std::vector<SourceFile> files = {
      {"src/core/a.h", "#include \"core/b.h\"\n"},
      {"src/core/b.h", "#include \"core/c.h\"\n"},
      {"src/core/c.h", "#include \"core/a.h\"\n"},
      {"src/core/acyclic.h", "#include \"core/a.h\"\n"},
  };
  const std::vector<Finding> findings =
      CheckProject(BuildProjectGraph(files, spec), spec);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-cycle");
  EXPECT_EQ(findings[0].path, "src/core/a.h");
}

TEST(PoldepsTest, ReportsUnknownLayer) {
  const LayerSpec spec = Parse(kSpec);
  const std::vector<SourceFile> files = {
      {"src/mystery/thing.h", ""},
  };
  const std::vector<Finding> findings =
      CheckProject(BuildProjectGraph(files, spec), spec);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unknown-layer");
  EXPECT_EQ(findings[0].path, "src/mystery/thing.h");
}

TEST(PoldepsTest, ReportsDanglingIncludeOnlyForLayerPaths) {
  const LayerSpec spec = Parse(kSpec);
  const std::vector<SourceFile> files = {
      // "core/gone.h" names a declared layer but resolves to nothing;
      // <vector> and the non-layer "third_party/x.h" are exempt.
      {"src/core/api.h",
       "#include <vector>\n"
       "#include \"core/gone.h\"\n"
       "#include \"third_party/x.h\"\n"},
  };
  const std::vector<Finding> findings =
      CheckProject(BuildProjectGraph(files, spec), spec);
  const std::vector<RuleLine> expected = {{"dangling-include", 2}};
  EXPECT_EQ(RulesOf(findings), expected);
}

TEST(PoldepsTest, TransitiveStdIncludesCrossHeadersButNotSelf) {
  const LayerSpec spec = Parse(kSpec);
  const std::vector<SourceFile> files = {
      {"src/core/use.cc",
       "#include <string>\n#include \"core/mid.h\"\n"},
      {"src/core/mid.h", "#include \"common/check.h\"\n"},
      {"src/common/check.h", "#include <vector>\n"},
  };
  const ProjectGraph graph = BuildProjectGraph(files, spec);
  const std::set<std::string> through = {"vector"};
  // <string> is use.cc's own direct include, not a transitive one;
  // <vector> arrives through mid.h -> check.h.
  EXPECT_EQ(TransitiveStdIncludes(graph, "src/core/use.cc"), through);
  EXPECT_EQ(TransitiveStdIncludes(graph, "src/core/mid.h"), through);
  EXPECT_TRUE(TransitiveStdIncludes(graph, "src/common/check.h").empty());
}

TEST(PoldepsTest, ProjectLintSuppressesTransitiveMissingInclude) {
  // Corpus regression: transitive_include.cc uses std::vector with
  // <vector> visible only through aggregator.h. Single-file lint
  // reports it; project lint knows the include graph and stays quiet.
  const std::string consumer = ReadCorpusFile("transitive_include.cc");
  const std::vector<RuleLine> single = {{"missing-include", 5}};
  EXPECT_EQ(RulesOf(LintSource("src/corpus/transitive_include.cc", consumer)),
            single);

  const LayerSpec spec = Parse("layer corpus\n");
  const std::vector<SourceFile> files = {
      {"src/corpus/aggregator.h", ReadCorpusFile("aggregator.h")},
      {"src/corpus/transitive_include.cc", consumer},
  };
  const ProjectLintResult result = ProjectLint(spec, files);
  EXPECT_TRUE(result.findings.empty())
      << FormatFinding(result.findings.front());
}

TEST(PoldepsTest, DotExportIsDeterministic) {
  const LayerSpec spec = Parse(kSpec);
  const std::vector<SourceFile> files = {
      {"src/core/api.h", "#include \"common/check.h\"\n"},
      {"src/common/check.h", ""},
      {"bench/loose.cc", ""},
  };
  const ProjectGraph graph = BuildProjectGraph(files, spec);
  EXPECT_EQ(ToDot(graph, spec),
            "digraph poldeps {\n"
            "  rankdir=LR;\n"
            "  node [shape=box, fontsize=10];\n"
            "  subgraph cluster_common {\n"
            "    label=\"common\";\n"
            "    \"src/common/check.h\";\n"
            "  }\n"
            "  subgraph cluster_core {\n"
            "    label=\"core\";\n"
            "    \"src/core/api.h\";\n"
            "  }\n"
            "  \"bench/loose.cc\";\n"
            "  \"src/core/api.h\" -> \"src/common/check.h\";\n"
            "}\n");
}

TEST(PoldepsTest, ProjectRuleIdsAreSortedAndUnique) {
  const std::vector<std::string>& ids = ProjectRuleIds();
  EXPECT_FALSE(ids.empty());
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

}  // namespace
}  // namespace pol::tools::pollint
