// OpenMetrics exposition: name sanitization, the counter/_total and
// gauge/histogram renderings of a MetricsSnapshot, the mandatory
// trailing "# EOF", the tolerant line parser used by `polinv watch`,
// and the atomic file write — all round-tripped through ParseOpenMetrics.

#include "obs/openmetrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace pol::obs {
namespace {

std::vector<const OpenMetricsSample*> SamplesNamed(
    const std::vector<OpenMetricsSample>& samples, std::string_view name) {
  std::vector<const OpenMetricsSample*> out;
  for (const OpenMetricsSample& sample : samples) {
    if (sample.name == name) out.push_back(&sample);
  }
  return out;
}

TEST(OpenMetricsNameTest, SanitizesIllegalCharacters) {
  EXPECT_EQ(OpenMetricsName("serving.query.p99_us"), "serving_query_p99_us");
  EXPECT_EQ(OpenMetricsName("stage.clean-up.seconds"),
            "stage_clean_up_seconds");
  EXPECT_EQ(OpenMetricsName("9lives"), "_9lives");
  EXPECT_EQ(OpenMetricsName(""), "_");
  EXPECT_EQ(OpenMetricsName("already_legal:name"), "already_legal:name");
}

TEST(OpenMetricsRenderTest, EmptySnapshotIsJustEof) {
  const std::string text = RenderOpenMetrics(MetricsSnapshot{});
  EXPECT_EQ(text, "# EOF\n");
  EXPECT_TRUE(ParseOpenMetrics(text).empty());
}

TEST(OpenMetricsRenderTest, CountersAndGaugesRoundTrip) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  Registry registry;
  registry.counter("om.test.requests")->Increment(5);
  registry.gauge("om.test.depth")->Set(-3);
  const std::string text = RenderOpenMetrics(registry.Snapshot());

  EXPECT_NE(text.find("# TYPE om_test_requests counter"), std::string::npos);
  EXPECT_NE(text.find("om_test_requests_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE om_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("om_test_depth -3"), std::string::npos);
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

  const std::vector<OpenMetricsSample> samples = ParseOpenMetrics(text);
  const OpenMetricsSample* requests =
      FindSample(samples, "om_test_requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_DOUBLE_EQ(requests->value, 5.0);
  const OpenMetricsSample* depth = FindSample(samples, "om_test_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value, -3.0);
  EXPECT_EQ(FindSample(samples, "om_test_absent"), nullptr);
}

TEST(OpenMetricsRenderTest, HistogramSeriesIsCumulative) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  Registry registry;
  Histogram* hist = registry.histogram("om.test.latency");
  hist->Record(0.0005);  // Bucket [256us, 512us).
  hist->Record(0.0005);
  hist->Record(0.002);  // Bucket [1024us, 2048us).
  const std::string text = RenderOpenMetrics(registry.Snapshot());
  const std::vector<OpenMetricsSample> samples = ParseOpenMetrics(text);

  const std::vector<const OpenMetricsSample*> buckets =
      SamplesNamed(samples, "om_test_latency_bucket");
  ASSERT_EQ(buckets.size(), 2u);
  // Cumulative counts, keyed by each bucket's upper bound in seconds.
  ASSERT_EQ(buckets[0]->labels.size(), 1u);
  EXPECT_EQ(buckets[0]->labels[0].first, "le");
  EXPECT_NEAR(std::stod(buckets[0]->labels[0].second), 512e-6, 1e-12);
  EXPECT_DOUBLE_EQ(buckets[0]->value, 2.0);
  EXPECT_NEAR(std::stod(buckets[1]->labels[0].second), 2048e-6, 1e-12);
  EXPECT_DOUBLE_EQ(buckets[1]->value, 3.0);

  const OpenMetricsSample* sum = FindSample(samples, "om_test_latency_sum");
  ASSERT_NE(sum, nullptr);
  EXPECT_NEAR(sum->value, 0.003, 1e-9);
  const OpenMetricsSample* count =
      FindSample(samples, "om_test_latency_count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->value, 3.0);
}

TEST(OpenMetricsRenderTest, TopBucketClosesWithInf) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  Registry registry;
  Histogram* hist = registry.histogram("om.test.tail");
  hist->Record(0.0005);
  hist->Record(4000.0);  // Top (open-ended) bucket.
  const std::vector<OpenMetricsSample> samples =
      ParseOpenMetrics(RenderOpenMetrics(registry.Snapshot()));

  const std::vector<const OpenMetricsSample*> buckets =
      SamplesNamed(samples, "om_test_tail_bucket");
  ASSERT_GE(buckets.size(), 2u);
  const OpenMetricsSample* last = buckets.back();
  ASSERT_EQ(last->labels.size(), 1u);
  EXPECT_EQ(last->labels[0].first, "le");
  EXPECT_EQ(last->labels[0].second, "+Inf");
  EXPECT_DOUBLE_EQ(last->value, 2.0);  // +Inf closes at the full count.
}

TEST(OpenMetricsParseTest, ToleratesCommentsBlanksAndJunk) {
  const std::string text =
      "# TYPE a counter\n"
      "\n"
      "a_total 7\n"
      "   \t b{le=\"0.001\",code=\"ok\"} 2.5\n"
      "malformed line without a value\n"
      "c{unclosed 9\n"
      "d +Inf\n"
      "# EOF\n";
  const std::vector<OpenMetricsSample> samples = ParseOpenMetrics(text);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a_total");
  EXPECT_DOUBLE_EQ(samples[0].value, 7.0);
  EXPECT_EQ(samples[1].name, "b");
  ASSERT_EQ(samples[1].labels.size(), 2u);
  EXPECT_EQ(samples[1].labels[0].first, "le");
  EXPECT_EQ(samples[1].labels[0].second, "0.001");
  EXPECT_EQ(samples[1].labels[1].second, "ok");
  EXPECT_DOUBLE_EQ(samples[1].value, 2.5);
  EXPECT_EQ(samples[2].name, "d");
  EXPECT_GT(samples[2].value, 1e300);  // +Inf sentinel.
}

TEST(OpenMetricsFileTest, WritesParseableFileAtomically) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  Registry registry;
  registry.counter("om.file.writes")->Increment(11);
  const std::string path =
      testing::TempDir() + "openmetrics_test_metrics.txt";
  std::string error;
  ASSERT_TRUE(WriteOpenMetricsFile(path, registry.Snapshot(), &error))
      << error;

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  const OpenMetricsSample* writes =
      FindSample(ParseOpenMetrics(text), "om_file_writes_total");
  ASSERT_NE(writes, nullptr);
  EXPECT_DOUBLE_EQ(writes->value, 11.0);
  std::remove(path.c_str());
}

TEST(OpenMetricsFileTest, ReportsUnwritablePath) {
  // A path whose parent component is a regular file fails for every
  // caller (even root), unlike a missing directory the writer may create.
  const std::string blocker = testing::TempDir() + "openmetrics_blocker";
  {
    std::ofstream out(blocker);
    ASSERT_TRUE(out.good());
  }
  std::string error;
  EXPECT_FALSE(WriteOpenMetricsFile(blocker + "/metrics.txt",
                                    MetricsSnapshot{}, &error));
  EXPECT_FALSE(error.empty());
  std::remove(blocker.c_str());
}

}  // namespace
}  // namespace pol::obs
