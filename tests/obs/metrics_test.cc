// Unit tests for the metrics registry. Recording assertions are gated
// on obs::kEnabled so the same suite passes under POL_OBS=OFF, where
// every Record/Increment compiles to a no-op; the structural pieces
// (bucket math, snapshot shape) hold in both builds.

#include "obs/metrics.h"

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace pol::obs {
namespace {

TEST(CounterTest, IncrementAccumulates) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.value(), -3);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(HistogramTest, BucketIndexBoundaries) {
  // Bucket 0: zero micros. Bucket i >= 1: [2^(i-1), 2^i) micros.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // The last bucket absorbs everything past the top boundary.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kBucketCount - 1);
}

TEST(HistogramTest, BucketLowerBounds) {
  EXPECT_DOUBLE_EQ(Histogram::BucketLowerBoundSeconds(0), 0.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketLowerBoundSeconds(1), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketLowerBoundSeconds(11), 1024e-6);
  // Lower bounds are consistent with BucketIndex: the bound of bucket i
  // lands in bucket i.
  for (size_t i = 1; i + 1 < Histogram::kBucketCount; ++i) {
    const auto micros = static_cast<uint64_t>(
        Histogram::BucketLowerBoundSeconds(i) * 1e6 + 0.5);
    EXPECT_EQ(Histogram::BucketIndex(micros), i) << "bucket " << i;
  }
}

TEST(HistogramTest, RecordTracksCountSumMinMax) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.min_seconds(), 0.0);  // No-sample sentinel.
  histogram.Record(0.002);
  histogram.Record(0.010);
  histogram.Record(0.001);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_NEAR(histogram.sum_seconds(), 0.013, 1e-9);
  EXPECT_NEAR(histogram.min_seconds(), 0.001, 1e-9);
  EXPECT_NEAR(histogram.max_seconds(), 0.010, 1e-9);
  // 1 ms = 1000 us -> bucket 10 holds [512, 1024) us; 1000 us is there.
  EXPECT_EQ(histogram.bucket(Histogram::BucketIndex(1000)), 1u);
}

TEST(HistogramTest, NegativeAndNanClampToZero) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  Histogram histogram;
  histogram.Record(-5.0);
  histogram.Record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_EQ(histogram.bucket(0), 2u);
  EXPECT_DOUBLE_EQ(histogram.sum_seconds(), 0.0);
}

TEST(HistogramTest, OverflowCountsSamplesPastLastFiniteBound) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  Histogram histogram;
  histogram.Record(2000.0);  // 2e9 us: top bucket, still under 2^31 us.
  EXPECT_EQ(histogram.overflow_count(), 0u);
  histogram.Record(3000.0);  // 3e9 us: past the last finite bound.
  histogram.Record(4000.0);
  EXPECT_EQ(histogram.overflow_count(), 2u);
  // Overflow samples still land in the top bucket — the count is an
  // annotation for quantile consumers, not a separate bin.
  EXPECT_EQ(histogram.bucket(Histogram::kBucketCount - 1), 3u);
  EXPECT_LE(histogram.overflow_count(),
            histogram.bucket(Histogram::kBucketCount - 1));
  histogram.Reset();
  EXPECT_EQ(histogram.overflow_count(), 0u);
}

TEST(HistogramTest, SnapshotCarriesOverflowAndMax) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  Registry registry;
  Histogram* histogram = registry.histogram("of.latency");
  histogram->Record(0.001);
  histogram->Record(5000.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 2u);
  EXPECT_EQ(snapshot.histograms[0].overflow_count, 1u);
  EXPECT_NEAR(snapshot.histograms[0].max_seconds, 5000.0, 1e-6);
}

TEST(RegistryTest, HandlesAreStableAndNamed) {
  Registry registry;
  Counter* counter = registry.counter("test.counter");
  // Repeat lookup returns the same stable handle in both builds (under
  // POL_OBS=OFF every counter is one shared dummy).
  EXPECT_EQ(counter, registry.counter("test.counter"));
  // Kind-spaced: the same name as a different kind is a distinct metric.
  EXPECT_NE(static_cast<void*>(counter),
            static_cast<void*>(registry.gauge("test.counter")));
  if (kEnabled) {
    EXPECT_NE(counter, registry.counter("test.other"));
  }
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  Registry registry;
  registry.counter("zulu")->Increment(1);
  registry.counter("alpha")->Increment(2);
  registry.counter("mike")->Increment(3);
  registry.gauge("depth")->Set(4);
  registry.histogram("latency")->Record(0.5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].first, "alpha");
  EXPECT_EQ(snapshot.counters[1].first, "mike");
  EXPECT_EQ(snapshot.counters[2].first, "zulu");
  EXPECT_EQ(snapshot.counters[2].second, 1u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 4);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
}

TEST(RegistryTest, ResetZeroesButKeepsHandles) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  Registry registry;
  Counter* counter = registry.counter("c");
  Histogram* histogram = registry.histogram("h");
  counter->Increment(9);
  histogram->Record(1.0);
  registry.Reset();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(histogram->count(), 0u);
  EXPECT_EQ(registry.counter("c"), counter);  // Same handle after reset.
}

TEST(RegistryTest, SnapshotJsonShape) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  Registry registry;
  registry.counter("events")->Increment(5);
  registry.histogram("wait")->Record(0.001);
  const Json json = MetricsSnapshotToJson(registry.Snapshot());
  ASSERT_NE(json.Find("counters"), nullptr);
  EXPECT_EQ(json.Find("counters")->GetUint64("events"), 5u);
  const Json* histograms = json.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const Json* wait = histograms->Find("wait");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->GetUint64("count"), 1u);
}

TEST(RegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&Registry::Global(), &Registry::Global());
}

TEST(RegistryConcurrencyTest, ConcurrentIncrementsAreExact) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Half the lookups race registration, half hit the cached-handle
      // pattern call sites use.
      Counter* cached = registry.counter("stress.cached");
      Histogram* histogram = registry.histogram("stress.latency");
      for (int i = 0; i < kIterations; ++i) {
        cached->Increment();
        registry.counter("stress.looked_up")->Increment();
        histogram->Record(1e-6 * (i % 64));
        registry.gauge("stress.level")->Set(i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const uint64_t expected = uint64_t{kThreads} * kIterations;
  EXPECT_EQ(registry.counter("stress.cached")->value(), expected);
  EXPECT_EQ(registry.counter("stress.looked_up")->value(), expected);
  Histogram* histogram = registry.histogram("stress.latency");
  EXPECT_EQ(histogram->count(), expected);
  uint64_t bucket_total = 0;
  for (size_t b = 0; b < Histogram::kBucketCount; ++b) {
    bucket_total += histogram->bucket(b);
  }
  EXPECT_EQ(bucket_total, expected);  // Every sample landed in a bucket.
}

}  // namespace
}  // namespace pol::obs
