// QueryLog: process-unique ids, always-on totals reconciliation,
// notable-ring and reservoir retention, and the JSONL export — every
// row must parse back through obs::Json with exact 64-bit ids, escaped
// strings, and no NaN/Infinity leaking into the document.

#include "obs/querylog.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace pol::obs {
namespace {

// Event string fields must be static storage (see obs/querylog.h).
constexpr std::string_view kInteractive = "interactive";
constexpr std::string_view kQueryOp = "query";
constexpr std::string_view kOkStatus = "Ok";
constexpr std::string_view kErrorStatus = "Internal";

QueryEvent OkEvent(uint64_t id, double scan_seconds = 0.001) {
  QueryEvent event;
  event.id = id;
  event.query_class = kInteractive;
  event.op = kQueryOp;
  event.status = kOkStatus;
  event.ok = true;
  event.scan_seconds = scan_seconds;
  return event;
}

QueryEvent ErrorEvent(uint64_t id) {
  QueryEvent event = OkEvent(id);
  event.status = kErrorStatus;
  event.ok = false;
  return event;
}

// Every non-empty line of `jsonl`, parsed; fails the test on a line
// that does not parse.
std::vector<Json> ParseJsonl(const std::string& jsonl) {
  std::vector<Json> rows;
  size_t begin = 0;
  while (begin < jsonl.size()) {
    size_t end = jsonl.find('\n', begin);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(begin, end - begin);
    begin = end + 1;
    if (line.empty()) continue;
    Json row;
    std::string error;
    EXPECT_TRUE(Json::Parse(line, &row, &error)) << error << ": " << line;
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST(QueryLogTest, IdsStartAtOneAndIncrement) {
  QueryLog log;
  if (!kEnabled) {
    EXPECT_EQ(log.NextId(), 0u);  // 0 = "no id" in disabled builds.
    return;
  }
  EXPECT_EQ(log.NextId(), 1u);
  EXPECT_EQ(log.NextId(), 2u);
  EXPECT_EQ(log.NextId(), 3u);
}

TEST(QueryLogTest, TotalsReconcileAcrossOutcomes) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  QueryLogOptions options;
  options.slow_seconds = 0.1;
  QueryLog log(options);
  log.Record(OkEvent(1));
  log.Record(OkEvent(2));
  log.Record(OkEvent(3));
  log.Record(OkEvent(4, 0.2));  // OK but slow.
  log.Record(ErrorEvent(5));
  QueryEvent slow_error = ErrorEvent(6);
  slow_error.scan_seconds = 0.5;  // Slow counts regardless of status.
  log.Record(slow_error);

  const QueryLog::Totals totals = log.totals();
  EXPECT_EQ(totals.ok, 4u);
  EXPECT_EQ(totals.errors, 2u);
  EXPECT_EQ(totals.events, totals.ok + totals.errors);
  EXPECT_EQ(totals.slow, 2u);
}

TEST(QueryLogTest, NotableRingKeepsFreshestIncidents) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  QueryLogOptions options;
  options.notable_capacity = 2;
  QueryLog log(options);
  log.Record(ErrorEvent(1));
  log.Record(ErrorEvent(2));
  log.Record(ErrorEvent(3));  // Overwrites the oldest (id 1).

  const std::vector<QueryEvent> notable = log.NotableEvents();
  ASSERT_EQ(notable.size(), 2u);
  EXPECT_EQ(notable[0].id, 2u);  // Sorted by id.
  EXPECT_EQ(notable[1].id, 3u);
  // Totals are independent of ring retention.
  EXPECT_EQ(log.totals().errors, 3u);
}

TEST(QueryLogTest, SlowQueriesAreNotableEvenWhenOk) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  QueryLogOptions options;
  options.slow_seconds = 0.05;
  QueryLog log(options);
  log.Record(OkEvent(1, 0.001));  // Healthy -> reservoir.
  log.Record(OkEvent(2, 0.08));   // Slow -> notable ring.
  const std::vector<QueryEvent> notable = log.NotableEvents();
  ASSERT_EQ(notable.size(), 1u);
  EXPECT_EQ(notable[0].id, 2u);
  const std::vector<QueryEvent> sampled = log.SampledEvents();
  ASSERT_EQ(sampled.size(), 1u);
  EXPECT_EQ(sampled[0].id, 1u);
}

TEST(QueryLogTest, ReservoirStaysBoundedAndUniformish) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  constexpr uint64_t kEvents = 1000;
  QueryLogOptions options;
  options.sampled_capacity = 8;
  QueryLog log(options);
  for (uint64_t id = 1; id <= kEvents; ++id) log.Record(OkEvent(id));

  const std::vector<QueryEvent> sampled = log.SampledEvents();
  ASSERT_EQ(sampled.size(), 8u);
  std::set<uint64_t> ids;
  for (const QueryEvent& event : sampled) {
    EXPECT_GE(event.id, 1u);
    EXPECT_LE(event.id, kEvents);
    ids.insert(event.id);
  }
  EXPECT_EQ(ids.size(), sampled.size());  // Distinct slots, sorted set.
  // The stateless draw must keep replacing: with 1000 candidates for 8
  // slots it would be wildly improbable for the sample to still be the
  // first 8 events.
  EXPECT_GT(*ids.rbegin(), 8u);
  EXPECT_EQ(log.totals().ok, kEvents);
}

TEST(QueryLogTest, JsonlRoundTripsExactIdsAndEscapes) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  constexpr uint64_t kWideId = (uint64_t{1} << 40) + 123;  // Past 32 bits.
  static constexpr std::string_view kTrickyOp = "route \"hot\"\\backslash";
  QueryLog log;
  QueryEvent event = ErrorEvent(kWideId);
  event.op = kTrickyOp;
  event.snapshot_id = (uint64_t{1} << 33) + 7;
  event.summaries_visited = 5760;
  event.queue_wait_seconds = 0.0125;
  event.scan_seconds = 0.75;  // Slow -> notable, so the ring retains it.
  event.deadline_remaining_seconds = 0.25;
  log.Record(event);

  const std::vector<Json> rows = ParseJsonl(log.ExportJsonl());
  ASSERT_EQ(rows.size(), 1u);
  const Json& row = rows[0];
  EXPECT_EQ(row.GetUint64("id"), kWideId);
  EXPECT_EQ(row.GetString("op"), kTrickyOp);
  EXPECT_EQ(row.GetString("class"), "interactive");
  EXPECT_EQ(row.GetString("status"), "Internal");
  ASSERT_NE(row.Find("ok"), nullptr);
  EXPECT_FALSE(row.Find("ok")->AsBool(true));
  EXPECT_EQ(row.GetUint64("snapshot_id"), (uint64_t{1} << 33) + 7);
  EXPECT_EQ(row.GetUint64("summaries_visited"), 5760u);
  EXPECT_DOUBLE_EQ(row.GetDouble("queue_wait_seconds"), 0.0125);
  EXPECT_DOUBLE_EQ(row.GetDouble("scan_seconds"), 0.75);
  EXPECT_DOUBLE_EQ(row.GetDouble("deadline_remaining_seconds"), 0.25);
}

TEST(QueryLogTest, NonFiniteDoublesExportAsSentinel) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  QueryLog log;
  QueryEvent event = ErrorEvent(1);
  event.queue_wait_seconds = std::numeric_limits<double>::quiet_NaN();
  event.deadline_remaining_seconds =
      std::numeric_limits<double>::infinity();
  log.Record(event);

  // The export must stay parseable — obs::Json has no NaN/Infinity —
  // and the poisoned fields land as the -1.0 "no value" sentinel.
  const std::vector<Json> rows = ParseJsonl(log.ExportJsonl());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].GetDouble("queue_wait_seconds"), -1.0);
  EXPECT_DOUBLE_EQ(rows[0].GetDouble("deadline_remaining_seconds"), -1.0);
}

TEST(QueryLogTest, ExportMergesRingsSortedById) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  QueryLog log;
  log.Record(OkEvent(4));
  log.Record(ErrorEvent(2));
  log.Record(OkEvent(3));
  log.Record(ErrorEvent(1));

  const std::vector<Json> rows = ParseJsonl(log.ExportJsonl());
  ASSERT_EQ(rows.size(), 4u);
  uint64_t previous = 0;
  for (const Json& row : rows) {
    const uint64_t id = row.GetUint64("id");
    EXPECT_GT(id, previous);  // Strictly ascending across both rings.
    previous = id;
  }
}

TEST(QueryLogDisabledTest, RecordingIsANoOp) {
  if (kEnabled) GTEST_SKIP() << "covers the POL_OBS=OFF build only";
  QueryLog log;
  EXPECT_EQ(log.NextId(), 0u);
  log.Record(OkEvent(1));
  const QueryLog::Totals totals = log.totals();
  EXPECT_EQ(totals.events, 0u);
  EXPECT_TRUE(log.ExportJsonl().empty());
}

}  // namespace
}  // namespace pol::obs
