#include "obs/json.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

namespace pol::obs {
namespace {

Json MustParse(std::string_view text) {
  Json value;
  std::string error;
  EXPECT_TRUE(Json::Parse(text, &value, &error)) << error << " in " << text;
  return value;
}

TEST(JsonTest, ScalarConstructionAndAccess) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).AsBool());
  EXPECT_FALSE(Json(false).AsBool(true));
  EXPECT_DOUBLE_EQ(Json(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Json(42).AsInt64(), 42);
  EXPECT_EQ(Json("hello").AsString(), "hello");
  EXPECT_EQ(Json(std::string("world")).AsString(), "world");
  // Wrong-type access falls back rather than throwing.
  EXPECT_EQ(Json("text").AsInt64(7), 7);
  EXPECT_EQ(Json(3).AsString(), "");
  EXPECT_FALSE(Json(3).AsBool());
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json object = Json::Object();
  object.Set("zulu", 1);
  object.Set("alpha", 2);
  object.Set("mike", 3);
  ASSERT_EQ(object.members().size(), 3u);
  EXPECT_EQ(object.members()[0].first, "zulu");
  EXPECT_EQ(object.members()[1].first, "alpha");
  EXPECT_EQ(object.members()[2].first, "mike");
  EXPECT_EQ(object.Dump(), R"({"zulu":1,"alpha":2,"mike":3})");
}

TEST(JsonTest, SetOverwritesInPlace) {
  Json object = Json::Object();
  object.Set("a", 1);
  object.Set("b", 2);
  object.Set("a", 9);
  ASSERT_EQ(object.size(), 2u);
  EXPECT_EQ(object.GetUint64("a"), 9u);
  EXPECT_EQ(object.members()[0].first, "a");  // Position kept.
}

TEST(JsonTest, FindReturnsNullWhenAbsent) {
  Json object = Json::Object();
  object.Set("present", 1);
  EXPECT_NE(object.Find("present"), nullptr);
  EXPECT_EQ(object.Find("absent"), nullptr);
  EXPECT_EQ(Json(3).Find("anything"), nullptr);  // Non-object.
}

TEST(JsonTest, Int64RoundTripsExactly) {
  // Values above 2^53 lose precision through double; the int channel
  // must carry them exactly through dump + parse.
  const int64_t big = int64_t{9007199254740993};  // 2^53 + 1.
  Json object = Json::Object();
  object.Set("big", big);
  object.Set("negative", int64_t{-1234567890123456789});
  const Json parsed = MustParse(object.Dump());
  EXPECT_EQ(parsed.Find("big")->AsInt64(), big);
  EXPECT_EQ(parsed.Find("negative")->AsInt64(), -1234567890123456789);
}

TEST(JsonTest, Uint64AboveInt64MaxStillSerializes) {
  const uint64_t huge = ~uint64_t{0};
  const Json value(huge);
  EXPECT_TRUE(value.is_number());
  // Falls back to double above int64 max: approximate but finite.
  EXPECT_GT(value.AsDouble(), 1e19);
}

TEST(JsonTest, StringEscaping) {
  Json object = Json::Object();
  object.Set("text", "a\"b\\c\nd\te\x01");
  const std::string dumped = object.Dump();
  EXPECT_NE(dumped.find(R"(a\"b\\c\nd\te\u0001)"), std::string::npos);
  const Json parsed = MustParse(dumped);
  EXPECT_EQ(parsed.GetString("text"), "a\"b\\c\nd\te\x01");
}

TEST(JsonTest, ParseUnicodeEscapes) {
  const Json value = MustParse(R"("caf\u00e9")");
  EXPECT_EQ(value.AsString(), "caf\xc3\xa9");
  // Surrogate pair: U+1F600.
  const Json emoji = MustParse(R"("\ud83d\ude00")");
  EXPECT_EQ(emoji.AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, ParseRejectsMalformedDocuments) {
  Json value;
  std::string error;
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "1 2", "{\"a\" 1}", "\"unterminated",
        "[1, 2", "nul", "+5", "\"\\ud83d\""}) {
    EXPECT_FALSE(Json::Parse(bad, &value, &error)) << "accepted: " << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(JsonTest, ParseRejectsExcessiveDepth) {
  std::string deep;
  for (int i = 0; i < 1000; ++i) deep += "[";
  for (int i = 0; i < 1000; ++i) deep += "]";
  Json value;
  std::string error;
  EXPECT_FALSE(Json::Parse(deep, &value, &error));
}

TEST(JsonTest, RoundTripNestedDocument) {
  const std::string text =
      R"({"status":"ok","count":3,"ratio":0.25,"tags":["a","b"],)"
      R"("nested":{"deep":[1,2,{"x":null}],"flag":true}})";
  const Json value = MustParse(text);
  EXPECT_EQ(value.GetString("status"), "ok");
  EXPECT_EQ(value.GetUint64("count"), 3u);
  EXPECT_DOUBLE_EQ(value.GetDouble("ratio"), 0.25);
  ASSERT_NE(value.Find("tags"), nullptr);
  EXPECT_EQ(value.Find("tags")->size(), 2u);
  const Json* nested = value.Find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_TRUE(nested->Find("flag")->AsBool());
  EXPECT_TRUE(nested->Find("deep")->at(2).Find("x")->is_null());
  // Dump of a parse re-parses to the same dump (fixed point).
  EXPECT_EQ(MustParse(value.Dump()).Dump(), value.Dump());
}

TEST(JsonTest, PrettyPrintIndents) {
  Json object = Json::Object();
  object.Set("a", 1);
  Json array = Json::Array();
  array.Append(2);
  object.Set("b", std::move(array));
  const std::string pretty = object.Dump(2);
  EXPECT_NE(pretty.find("{\n  \"a\": 1"), std::string::npos);
  EXPECT_EQ(MustParse(pretty).Dump(), object.Dump());
}

TEST(JsonTest, ParseRejectsTrailingGarbage) {
  Json value;
  std::string error;
  EXPECT_FALSE(Json::Parse("{} extra", &value, &error));
  EXPECT_TRUE(Json::Parse("{}  \n ", &value, &error)) << error;
}

TEST(JsonTest, DuplicateKeysKeepLastOnLookup) {
  const Json value = MustParse(R"({"k":1,"k":2})");
  EXPECT_EQ(value.GetUint64("k"), 2u);
}

}  // namespace
}  // namespace pol::obs
