// Unit tests for the trace recorder and the scoped-span macro. The
// recording tests drive local TraceRecorder instances; the macro tests
// go through the global recorder (cleared per test) because that is
// what POL_TRACE_SPAN records into. Under POL_OBS=OFF every test still
// runs: the export must stay valid (and empty).

#include "obs/trace.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace pol::obs {
namespace {

Json ParseExport(const TraceRecorder& recorder) {
  Json document;
  std::string error;
  EXPECT_TRUE(Json::Parse(recorder.ExportChromeTraceJson(), &document, &error))
      << error;
  return document;
}

TEST(TraceRecorderTest, RecordsArriveSortedByTimestamp) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  TraceRecorder recorder;
  recorder.Record("late", 300, 10);
  recorder.Record("early", 100, 5);
  recorder.Record("middle", 200, 7);
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "early");
  EXPECT_EQ(events[1].name, "middle");
  EXPECT_EQ(events[2].name, "late");
  EXPECT_EQ(recorder.event_count(), 3u);
}

TEST(TraceRecorderTest, ClearDropsEvents) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  TraceRecorder recorder;
  recorder.Record("span", 1, 1);
  recorder.Clear();
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(TraceRecorderTest, ExportIsWellFormedChromeTrace) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  TraceRecorder recorder;
  recorder.Record("stage.cleaning", 1000, 250);
  const Json document = ParseExport(recorder);
  EXPECT_EQ(document.GetString("displayTimeUnit"), "ms");
  const Json* events = document.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 1u);
  const Json& event = events->at(0);
  EXPECT_EQ(event.GetString("name"), "stage.cleaning");
  EXPECT_EQ(event.GetString("ph"), "X");  // Complete event.
  EXPECT_EQ(event.GetUint64("ts"), 1000u);
  EXPECT_EQ(event.GetUint64("dur"), 250u);
  EXPECT_EQ(event.GetUint64("pid"), 1u);
  EXPECT_GE(event.GetUint64("tid"), 1u);
}

TEST(TraceRecorderTest, EmptyExportIsValidJson) {
  // Holds in both builds: a stopped/empty recorder still exports a
  // loadable document.
  TraceRecorder recorder;
  const Json document = ParseExport(recorder);
  ASSERT_NE(document.Find("traceEvents"), nullptr);
  EXPECT_EQ(document.Find("traceEvents")->size(), 0u);
}

TEST(TraceRecorderTest, ThreadsGetDistinctTids) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  TraceRecorder recorder;
  std::thread a([&] { recorder.Record("a", 1, 1); });
  std::thread b([&] { recorder.Record("b", 2, 1); });
  a.join();
  b.join();
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

class ScopedSpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Stop();
    TraceRecorder::Global().Clear();
  }
  void TearDown() override {
    TraceRecorder::Global().Stop();
    TraceRecorder::Global().Clear();
  }
};

TEST_F(ScopedSpanTest, SpanRecordsWhileStarted) {
  TraceRecorder::Global().Start();
  { POL_TRACE_SPAN("test.span"); }
  TraceRecorder::Global().Stop();
  if (!kEnabled) {
    EXPECT_EQ(TraceRecorder::Global().event_count(), 0u);
    return;
  }
  const std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.span");
}

TEST_F(ScopedSpanTest, SpanWhileStoppedRecordsNothing) {
  { POL_TRACE_SPAN("test.silent"); }
  EXPECT_EQ(TraceRecorder::Global().event_count(), 0u);
}

TEST_F(ScopedSpanTest, SpanBegunWhileStoppedStaysSilentAfterStart) {
  // The gate is sampled at construction: starting the recorder mid-span
  // must not retroactively record it.
  {
    POL_TRACE_SPAN("test.preexisting");
    TraceRecorder::Global().Start();
  }
  TraceRecorder::Global().Stop();
  EXPECT_EQ(TraceRecorder::Global().event_count(), 0u);
}

TEST_F(ScopedSpanTest, SpanBegunWhileStartedRecordsAfterStop) {
  // The converse also holds: a span that began while recording lands
  // even if the recorder stops before the span closes. RunPipeline
  // relies on this to close the "pipeline.run" span after Stop().
  TraceRecorder::Global().Start();
  {
    POL_TRACE_SPAN("test.straddler");
    TraceRecorder::Global().Stop();
  }
  if (!kEnabled) {
    EXPECT_EQ(TraceRecorder::Global().event_count(), 0u);
    return;
  }
  EXPECT_EQ(TraceRecorder::Global().event_count(), 1u);
}

TEST_F(ScopedSpanTest, NestedSpansAllRecord) {
  TraceRecorder::Global().Start();
  {
    POL_TRACE_SPAN("outer");
    {
      POL_TRACE_SPAN(std::string("inner.") + "dynamic");
    }
  }
  TraceRecorder::Global().Stop();
  if (!kEnabled) {
    EXPECT_EQ(TraceRecorder::Global().event_count(), 0u);
    return;
  }
  const std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& outer = events[0].name == "outer" ? events[0] : events[1];
  const TraceEvent& inner =
      events[0].name == "outer" ? events[1] : events[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.name, "inner.dynamic");
  // The outer span fully contains the inner one.
  EXPECT_LE(outer.ts_micros, inner.ts_micros);
  EXPECT_GE(outer.ts_micros + outer.dur_micros,
            inner.ts_micros + inner.dur_micros);
}

}  // namespace
}  // namespace pol::obs
