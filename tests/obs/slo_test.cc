// SloTracker: burn-rate math over good/bad rates and latency
// histograms, the multi-window AND rule (both fast and slow burns must
// clear the threshold), breach counting on transitions into burning,
// and the published <prefix><name>.* gauge set. Gauge prefixes are
// unique per test: the tracker publishes into the global Registry.

#include "obs/slo.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/window.h"

namespace pol::obs {
namespace {

int64_t GaugeValue(const std::string& name) {
  return Registry::Global().gauge(name)->value();
}

uint64_t CounterValue(const std::string& name) {
  return Registry::Global().counter(name)->value();
}

TEST(SloTrackerTest, AvailabilityBurnRateMath) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  WindowedRate good(1.0, 64);
  WindowedRate bad(1.0, 64);
  good.IncrementAt(100.5, 9);
  bad.IncrementAt(100.5, 1);  // 10% bad against a 0.1% budget.

  SloTracker tracker("slo_test.avail.");
  SloSpec spec;
  spec.name = "availability";
  spec.kind = SloKind::kAvailability;
  spec.objective = 0.999;
  spec.fast_windows = 5;
  spec.slow_windows = 60;
  spec.burn_threshold = 1.0;
  SloSource source;
  source.good = &good;
  source.bad = &bad;
  tracker.Add(spec, source);

  const std::vector<SloStatus> statuses = tracker.EvaluateAt(100.9);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].name, "availability");
  // burn = (bad / total) / (1 - objective) = 0.1 / 0.001.
  EXPECT_NEAR(statuses[0].burn_fast, 100.0, 1e-9);
  EXPECT_NEAR(statuses[0].burn_slow, 100.0, 1e-9);
  EXPECT_TRUE(statuses[0].burning);
  EXPECT_EQ(statuses[0].breaches, 1u);

  EXPECT_EQ(GaugeValue("slo_test.avail.availability.burning"), 1);
  EXPECT_EQ(GaugeValue("slo_test.avail.availability.burn_fast_milli"),
            100000);
  EXPECT_EQ(GaugeValue("slo_test.avail.availability.burn_slow_milli"),
            100000);
  EXPECT_EQ(CounterValue("slo_test.avail.availability.breaches"), 1u);
}

TEST(SloTrackerTest, NoTrafficSpendsNoBudget) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  WindowedRate good(1.0, 64);
  WindowedRate bad(1.0, 64);
  SloTracker tracker("slo_test.idle.");
  SloSpec spec;
  spec.name = "availability";
  spec.kind = SloKind::kAvailability;
  SloSource source;
  source.good = &good;
  source.bad = &bad;
  tracker.Add(spec, source);

  const std::vector<SloStatus> statuses = tracker.EvaluateAt(100.9);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].burn_fast, 0.0);
  EXPECT_FALSE(statuses[0].burning);
  EXPECT_EQ(statuses[0].breaches, 0u);
}

// The multi-window policy: a fresh spike trips the fast window but not
// the slow one (no page on a blip); an old, drained incident shows in
// the slow window only. Neither alone reports burning.
TEST(SloTrackerTest, BurnsOnlyWhenBothWindowsOverThreshold) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  WindowedRate good(1.0, 64);
  WindowedRate bad(1.0, 64);
  // 21 seconds of healthy traffic...
  for (int epoch = 0; epoch <= 20; ++epoch) {
    good.IncrementAt(static_cast<double>(epoch) + 0.5, 1000);
  }
  // ...then a fresh spike in the newest window only.
  bad.IncrementAt(20.5, 10);

  SloTracker tracker("slo_test.window.");
  SloSpec spec;
  spec.name = "availability";
  spec.kind = SloKind::kAvailability;
  spec.objective = 0.999;
  spec.fast_windows = 2;
  spec.slow_windows = 60;
  spec.burn_threshold = 1.0;
  SloSource source;
  source.good = &good;
  source.bad = &bad;
  tracker.Add(spec, source);

  std::vector<SloStatus> statuses = tracker.EvaluateAt(20.9);
  ASSERT_EQ(statuses.size(), 1u);
  // Fast (2 windows): 10 bad vs 2010 events ≈ 5x budget. Slow (60
  // windows): 10 bad vs 21010 events ≈ 0.5x budget.
  EXPECT_GE(statuses[0].burn_fast, 1.0);
  EXPECT_LT(statuses[0].burn_slow, 1.0);
  EXPECT_FALSE(statuses[0].burning);
  EXPECT_EQ(statuses[0].breaches, 0u);
  EXPECT_EQ(GaugeValue("slo_test.window.availability.burning"), 0);

  // Sustain the errors until the slow window catches up too: now both
  // burns clear the threshold and the SLO reports burning.
  for (int epoch = 21; epoch <= 44; ++epoch) {
    good.IncrementAt(static_cast<double>(epoch) + 0.5, 10);
    bad.IncrementAt(static_cast<double>(epoch) + 0.5, 10);
  }
  statuses = tracker.EvaluateAt(44.9);
  EXPECT_GE(statuses[0].burn_fast, 1.0);
  EXPECT_GE(statuses[0].burn_slow, 1.0);
  EXPECT_TRUE(statuses[0].burning);
  EXPECT_EQ(statuses[0].breaches, 1u);
}

TEST(SloTrackerTest, LatencyQuantileBurnAndRecovery) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  WindowedHistogram latency(1.0, 64);
  SloTracker tracker("slo_test.lat.");
  SloSpec spec;
  spec.name = "interactive_p99";
  spec.kind = SloKind::kLatencyQuantile;
  spec.objective = 0.99;           // 1% of scans may run long...
  spec.threshold_seconds = 0.001;  // ...longer than 1ms.
  spec.fast_windows = 2;
  spec.slow_windows = 60;
  spec.burn_threshold = 1.0;
  SloSource source;
  source.latency = &latency;
  tracker.Add(spec, source);

  // Every scan 10x over the bound: the whole population is bad, so
  // burn = 1.0 / 0.01 budget = 100 in both windows.
  for (int i = 0; i < 100; ++i) latency.RecordAt(50.5, 0.010);
  std::vector<SloStatus> statuses = tracker.EvaluateAt(50.9);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_NEAR(statuses[0].burn_fast, 100.0, 1.0);
  EXPECT_TRUE(statuses[0].burning);
  EXPECT_EQ(statuses[0].breaches, 1u);

  // Still burning on the next tick: no double-counted breach.
  statuses = tracker.EvaluateAt(51.0);
  EXPECT_TRUE(statuses[0].burning);
  EXPECT_EQ(statuses[0].breaches, 1u);

  // The windows drain past the incident: burn returns to zero.
  statuses = tracker.EvaluateAt(200.9);
  EXPECT_EQ(statuses[0].burn_fast, 0.0);
  EXPECT_FALSE(statuses[0].burning);
  EXPECT_EQ(statuses[0].breaches, 1u);

  // A second incident is a second breach.
  for (int i = 0; i < 100; ++i) latency.RecordAt(201.5, 0.010);
  statuses = tracker.EvaluateAt(201.9);
  EXPECT_TRUE(statuses[0].burning);
  EXPECT_EQ(statuses[0].breaches, 2u);
  EXPECT_EQ(CounterValue("slo_test.lat.interactive_p99.breaches"), 2u);
}

TEST(SloTrackerTest, LatencyUnderBoundDoesNotBurn) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  WindowedHistogram latency(1.0, 64);
  for (int i = 0; i < 100; ++i) latency.RecordAt(10.5, 10e-6);
  SloTracker tracker("slo_test.fastlat.");
  SloSpec spec;
  spec.name = "p99";
  spec.kind = SloKind::kLatencyQuantile;
  spec.objective = 0.99;
  spec.threshold_seconds = 0.001;
  spec.fast_windows = 2;
  spec.slow_windows = 60;
  SloSource source;
  source.latency = &latency;
  tracker.Add(spec, source);

  const std::vector<SloStatus> statuses = tracker.EvaluateAt(10.9);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_NEAR(statuses[0].burn_fast, 0.0, 1e-9);
  EXPECT_FALSE(statuses[0].burning);
}

TEST(SloTrackerTest, EvaluationPreservesAddOrder) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  WindowedRate good(1.0, 8);
  WindowedRate bad(1.0, 8);
  WindowedHistogram latency(1.0, 8);
  SloTracker tracker("slo_test.order.");
  SloSpec first;
  first.name = "alpha";
  first.kind = SloKind::kAvailability;
  SloSource first_source;
  first_source.good = &good;
  first_source.bad = &bad;
  tracker.Add(first, first_source);
  SloSpec second;
  second.name = "beta";
  second.kind = SloKind::kLatencyQuantile;
  second.threshold_seconds = 0.001;
  SloSource second_source;
  second_source.latency = &latency;
  tracker.Add(second, second_source);

  ASSERT_EQ(tracker.size(), 2u);
  const std::vector<SloStatus> statuses = tracker.EvaluateAt(5.0);
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0].name, "alpha");
  EXPECT_EQ(statuses[1].name, "beta");
}

}  // namespace
}  // namespace pol::obs
