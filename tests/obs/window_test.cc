// WindowedHistogram / WindowedRate: rotation and expiry driven through
// the deterministic *At entry points, the ±1-bucket quantile guarantee
// checked against exact sample quantiles on synthetic distributions,
// overflow accounting past the last finite bucket bound, and the
// lock-free record path hammered by concurrent writers (the --tsan pass
// of tools/run_tier1.sh runs this binary under ThreadSanitizer).

#include "obs/window.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace pol::obs {
namespace {

// Micros the way Histogram::Record computes them, so exact-vs-estimate
// comparisons share the rounding.
uint64_t MicrosOf(double seconds) {
  return static_cast<uint64_t>(seconds * 1e9) / 1000;
}

// Exact sample quantile: the value at rank ceil(p * n) (1-based) of the
// sorted sample set — the same "p of the mass is at or below" reading
// the bucket walk uses.
double ExactQuantile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  const double rank = std::ceil(p * static_cast<double>(samples.size()));
  const size_t index =
      rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  return samples[std::min(index, samples.size() - 1)];
}

TEST(FastClockTest, TracksNowSecondsClosely) {
  // Warm the one-time calibration, then the two clocks must agree far
  // tighter than any window tick this project uses.
  static_cast<void>(NowSecondsFast());
  for (int i = 0; i < 3; ++i) {
    const double fast = NowSecondsFast();
    const double exact = NowSeconds();
    EXPECT_NEAR(fast, exact, 0.005) << "iteration " << i;
  }
}

TEST(WindowedHistogramTest, EmptyReadsAreZero) {
  WindowedHistogram hist(1.0, 8);
  const WindowedSnapshot snapshot = hist.TrailingSnapshotAt(5.0);
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.overflow_count, 0u);
  EXPECT_EQ(hist.QuantileEstimateAt(5.0, 0.99), 0.0);
  EXPECT_EQ(snapshot.span_seconds, 8.0);
}

TEST(WindowedHistogramTest, GeometryIsClamped) {
  WindowedHistogram hist(-1.0, 0);
  EXPECT_GT(hist.window_seconds(), 0.0);
  EXPECT_GE(hist.window_count(), 2u);
}

TEST(WindowedHistogramTest, RecordLandsInItsWindow) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  WindowedHistogram hist(1.0, 8);
  hist.RecordAt(0.5, 0.001);
  const WindowedSnapshot snapshot = hist.TrailingSnapshotAt(0.5, 1);
  EXPECT_EQ(snapshot.count, 1u);
  EXPECT_NEAR(snapshot.sum_seconds, 0.001, 1e-9);
  EXPECT_NEAR(snapshot.min_seconds, 0.001, 1e-9);
  EXPECT_NEAR(snapshot.max_seconds, 0.001, 1e-9);
  EXPECT_EQ(snapshot.span_seconds, 1.0);
}

TEST(WindowedHistogramTest, TrailingWindowsExcludeOlderEpochs) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  WindowedHistogram hist(1.0, 4);
  hist.RecordAt(0.5, 0.001);  // Epoch 0.
  hist.RecordAt(1.5, 0.002);  // Epoch 1.
  EXPECT_EQ(hist.TrailingSnapshotAt(1.9, 1).count, 1u);
  EXPECT_EQ(hist.TrailingSnapshotAt(1.9, 2).count, 2u);
  EXPECT_EQ(hist.TrailingSnapshotAt(1.9, 0).count, 2u);  // 0 = whole ring.
  // The one-window view sees only epoch 1's sample.
  EXPECT_NEAR(hist.TrailingSnapshotAt(1.9, 1).min_seconds, 0.002, 1e-9);
}

TEST(WindowedHistogramTest, RingRecyclingExpiresOldSamples) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  WindowedHistogram hist(1.0, 4);
  hist.RecordAt(0.5, 0.001);  // Epoch 0.
  hist.RecordAt(1.5, 0.002);  // Epoch 1.
  hist.RecordAt(4.5, 0.004);  // Epoch 4 recycles epoch 0's slot.
  // The whole ring at t=4.9 spans epochs 1..4: epoch 0's sample is
  // gone, whether its slot was rewritten or merely expired.
  const WindowedSnapshot snapshot = hist.TrailingSnapshotAt(4.9, 0);
  EXPECT_EQ(snapshot.count, 2u);
  EXPECT_NEAR(snapshot.min_seconds, 0.002, 1e-9);
  EXPECT_NEAR(snapshot.max_seconds, 0.004, 1e-9);
}

TEST(WindowedHistogramTest, StaleStragglerDropsItsSampleBounded) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  WindowedHistogram hist(1.0, 4);
  hist.RecordAt(6.5, 0.001);  // Epoch 6 owns slot 2.
  hist.RecordAt(2.5, 0.002);  // Epoch 2 maps to slot 2 — already newer.
  const WindowedSnapshot snapshot = hist.TrailingSnapshotAt(6.9, 0);
  EXPECT_EQ(snapshot.count, 1u);  // The straggler was dropped, not mixed in.
  EXPECT_NEAR(snapshot.max_seconds, 0.001, 1e-9);
}

// The acceptance bar from DESIGN.md §3.8: the log-linear interpolated
// estimate lands within one power-of-two bucket of the exact sample
// quantile, on distributions shaped like real scan latencies.
TEST(WindowedHistogramTest, QuantileWithinOneBucketOfExact) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  struct Case {
    const char* name;
    std::vector<double> samples;
  };
  std::vector<Case> cases;

  Case log_sweep;
  log_sweep.name = "log sweep 1us..64ms";
  for (int k = 0; k <= 16; ++k) {
    for (int copies = 0; copies < 8; ++copies) {
      log_sweep.samples.push_back(static_cast<double>(1u << k) * 1e-6);
    }
  }
  cases.push_back(std::move(log_sweep));

  Case heavy_tail;
  heavy_tail.name = "heavy tail";
  for (int i = 0; i < 950; ++i) heavy_tail.samples.push_back(120e-6);
  for (int i = 0; i < 45; ++i) heavy_tail.samples.push_back(3e-3);
  for (int i = 0; i < 5; ++i) heavy_tail.samples.push_back(0.25);
  cases.push_back(std::move(heavy_tail));

  Case bimodal;
  bimodal.name = "bimodal cache hit/miss";
  for (int i = 0; i < 500; ++i) bimodal.samples.push_back(8e-6);
  for (int i = 0; i < 500; ++i) bimodal.samples.push_back(900e-6);
  cases.push_back(std::move(bimodal));

  for (const Case& test_case : cases) {
    WindowedHistogram hist(1.0, 4);
    for (const double sample : test_case.samples) {
      hist.RecordAt(100.5, sample);
    }
    for (const double p : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
      const double exact = ExactQuantile(test_case.samples, p);
      const double estimate = hist.QuantileEstimateAt(100.9, p, 1);
      const auto exact_bucket =
          static_cast<int>(Histogram::BucketIndex(MicrosOf(exact)));
      const auto estimate_bucket =
          static_cast<int>(Histogram::BucketIndex(MicrosOf(estimate)));
      EXPECT_LE(std::abs(exact_bucket - estimate_bucket), 1)
          << test_case.name << " p=" << p << " exact=" << exact
          << " estimate=" << estimate;
    }
  }
}

TEST(WindowedHistogramTest, QuantileClampedToObservedRange) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  WindowedHistogram hist(1.0, 4);
  for (int i = 0; i < 100; ++i) hist.RecordAt(10.5, 0.003);
  // A constant distribution collapses the clamp to one point: every
  // quantile is exactly the observed value.
  for (const double p : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(hist.QuantileEstimateAt(10.9, p, 1), 0.003) << p;
  }
  // NaN p clamps to 0 instead of poisoning the walk.
  EXPECT_DOUBLE_EQ(
      hist.QuantileEstimateAt(10.9, std::numeric_limits<double>::quiet_NaN(),
                              1),
      0.003);
}

TEST(WindowedHistogramTest, OverflowSamplesAreCountedAndBounded) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  WindowedHistogram hist(1.0, 4);
  hist.RecordAt(10.5, 2500.0);  // ~2.5e9 us: past the last finite bound.
  hist.RecordAt(10.5, 5000.0);
  hist.RecordAt(10.5, 0.001);  // An ordinary sample alongside.
  const WindowedSnapshot snapshot = hist.TrailingSnapshotAt(10.9, 1);
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_EQ(snapshot.overflow_count, 2u);
  EXPECT_NEAR(snapshot.max_seconds, 5000.0, 1e-6);
  // Top-bucket interpolation steers toward the observed max and never
  // leaves the observed range.
  const double p99 = hist.QuantileEstimateAt(10.9, 0.99, 1);
  EXPECT_GE(p99, 0.001);
  EXPECT_LE(p99, 5000.0);
  EXPECT_DOUBLE_EQ(hist.QuantileEstimateAt(10.9, 1.0, 1), 5000.0);
}

// Same epoch from many threads: no rotation in play, so (after a
// pre-touch that settles the first-sample slot reset) every record
// must land — the lock-free path loses nothing off the window edge.
TEST(WindowedHistogramTest, ConcurrentSameEpochCountsExactly) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  WindowedHistogram hist(1.0, 4);
  hist.RecordAt(100.5, 1e-4);  // Pre-touch: the slot reset happens here.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.RecordAt(100.5, 1e-6 * static_cast<double>((t + i) % 1000));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(hist.TrailingSnapshotAt(100.9, 1).count,
            static_cast<uint64_t>(kThreads) * kPerThread + 1);
}

// Writers racing each other across epoch boundaries while a reader
// merges trailing snapshots: the TSan target for the slot-rotation CAS.
// Losses at window edges are bounded and allowed; torn values are not.
TEST(WindowedHistogramTest, ConcurrentRotationUnderReaders) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  constexpr int kWriters = 4;
  constexpr int kEpochs = 5000;
  constexpr double kTick = 0.001;
  WindowedHistogram hist(kTick, 16);
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&hist] {
      for (int i = 0; i < kEpochs; ++i) {
        hist.RecordAt(kTick * static_cast<double>(i) + kTick / 2, 1e-5);
      }
    });
  }
  std::thread reader([&hist] {
    for (int i = 0; i < kEpochs; i += 7) {
      const double now = kTick * static_cast<double>(i) + kTick / 2;
      const WindowedSnapshot snapshot = hist.TrailingSnapshotAt(now, 0);
      ASSERT_LE(snapshot.count,
                static_cast<uint64_t>(kWriters) * kEpochs);
      const double q = WindowedHistogram::QuantileFromSnapshot(snapshot, 0.99);
      ASSERT_GE(q, 0.0);
    }
  });
  for (std::thread& writer : writers) writer.join();
  reader.join();
  const WindowedSnapshot final_snapshot =
      hist.TrailingSnapshotAt(kTick * kEpochs, 0);
  EXPECT_LE(final_snapshot.count, static_cast<uint64_t>(kWriters) * kEpochs);
}

TEST(WindowedRateTest, TrailingTotalsAndRates) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  WindowedRate rate(1.0, 4);
  rate.IncrementAt(0.5, 3);  // Epoch 0.
  rate.IncrementAt(1.5, 2);  // Epoch 1.
  EXPECT_EQ(rate.TotalAt(1.9, 1), 2u);
  EXPECT_EQ(rate.TotalAt(1.9, 2), 5u);
  EXPECT_DOUBLE_EQ(rate.RatePerSecondAt(1.9, 2), 2.5);
  // Whole-ring reads clamp `windows` to the ring size.
  EXPECT_EQ(rate.TotalAt(1.9, 0), 5u);
  EXPECT_EQ(rate.TotalAt(1.9, 100), 5u);
}

TEST(WindowedRateTest, RecyclingDropsExpiredCounts) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  WindowedRate rate(1.0, 4);
  rate.IncrementAt(0.5, 7);   // Epoch 0.
  rate.IncrementAt(5.5, 1);   // Epoch 5: epoch 0 is out of the ring span.
  EXPECT_EQ(rate.TotalAt(5.9, 0), 1u);
  // A straggler from a recycled epoch is dropped, not misfiled.
  rate.IncrementAt(1.5, 9);  // Epoch 1 maps to epoch 5's slot.
  EXPECT_EQ(rate.TotalAt(5.9, 0), 1u);
}

TEST(WindowedRateTest, ConcurrentSameEpochCountsExactly) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops";
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  WindowedRate rate(1.0, 4);
  rate.IncrementAt(100.5);  // Pre-touch.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rate] {
      for (int i = 0; i < kPerThread; ++i) rate.IncrementAt(100.5);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(rate.TotalAt(100.9, 1),
            static_cast<uint64_t>(kThreads) * kPerThread + 1);
}

TEST(WindowedDisabledTest, EverythingIsEmptyWhenCompiledOut) {
  if (kEnabled) GTEST_SKIP() << "covers the POL_OBS=OFF build only";
  WindowedHistogram hist(1.0, 4);
  hist.Record(0.5);
  hist.RecordAt(1.5, 0.5);
  EXPECT_EQ(hist.TrailingSnapshotAt(1.9, 0).count, 0u);
  EXPECT_EQ(hist.QuantileEstimateAt(1.9, 0.99), 0.0);
  WindowedRate rate(1.0, 4);
  rate.Increment();
  rate.IncrementAt(1.5, 5);
  EXPECT_EQ(rate.TotalAt(1.9, 0), 0u);
}

}  // namespace
}  // namespace pol::obs
