// Table 4 reproduction: "Coverage and Compression results for 2022
// commercial fleet AIS dataset".
//
// Paper (full scale):
//   res 6:  7.30 M cells   99.73% compression   51.69% H3 utilization
//   res 7: 42.47 M cells   98.44% compression   42.96% H3 utilization
//
// Reproduced shape: compression far above 90% at both resolutions and
// decreasing with finer cells; utilization DECREASING from res 6 to
// res 7 (gaps appear as the cell size shrinks — the paper's key
// observation). Absolute utilization is much lower here because the
// simulated fleet is ~600x smaller than the real one.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/pipeline.h"
#include "flow/stage.h"

namespace pol {
namespace {

int Run() {
  bench::PrintHeader("Table 4: coverage and compression (simulated year)");
  sim::FleetConfig config = bench::GlobalYearConfig();
  config.noncommercial_vessels = 0;  // The table covers the commercial fleet.
  // Denser reception than the default scenario: Table 4's compression is
  // records-per-cell, and the real archive averages ~64 records/cell at
  // res 7; this keeps the simulated ratio in a comparable regime.
  config.coastal_interval_s = 240;
  config.ocean_interval_s = 720;
  sim::SimulationOutput sim_output;
  const double sim_s = bench::TimeSeconds(
      [&] { sim_output = sim::FleetSimulator(config).Run(); });
  std::printf("simulated %s raw reports in %.1fs\n",
              bench::FormatCount(sim_output.reports.size()).c_str(), sim_s);

  const std::vector<int> w = {14, 14, 14, 14, 16, 12};
  bench::PrintRow({"H3 resolution", "#Cells", "Compression", "Utilization",
                   "Inventory size", "Build (s)"},
                  w);

  struct RowResult {
    int res;
    core::CompressionReport report;
  };
  std::vector<RowResult> rows;
  std::vector<flow::StageMetrics> stage_metrics;
  for (const int res : {5, 6, 7}) {
    core::PipelineConfig pipeline_config;
    pipeline_config.partitions = 8;
    pipeline_config.resolution = res;
    // Table 4's quantities (#cells, compression, utilization) all derive
    // from the (cell) grouping set; the finer sets are disabled here to
    // keep the res-7 run inside a laptop's memory budget.
    pipeline_config.extractor.gi_cell_type = false;
    pipeline_config.extractor.gi_cell_route_type = false;
    core::PipelineResult result;
    const double build_s = bench::TimeSeconds([&] {
      result = core::RunPipeline(sim_output.reports, sim_output.fleet,
                                 pipeline_config);
    });
    const core::CompressionReport report = result.Compression();
    if (res == 6) stage_metrics = result.stage_metrics;
    rows.push_back({res, report});
    char build_buf[16];
    std::snprintf(build_buf, sizeof(build_buf), "%.1f", build_s);
    bench::PrintRow({std::to_string(res), bench::FormatCount(report.cells),
                     bench::FormatPercent(report.compression),
                     bench::FormatPercent(report.utilization, 4),
                     bench::FormatBytes(report.serialized_bytes), build_buf},
                    w);
  }

  bench::PrintHeader("Per-stage breakdown (res 6 build)");
  std::printf("%s", flow::StageMetricsTable(stage_metrics).c_str());

  bench::PrintHeader("Paper reference (full scale)");
  bench::PrintRow({"6", "7.3 million", "99.73%", "51.69%", "-", "-"}, w);
  bench::PrintRow({"7", "42.47 million", "98.44%", "42.96%", "-", "-"}, w);

  bench::PrintHeader("Shape checks");
  const auto& r6 = rows[1].report;
  const auto& r7 = rows[2].report;
  std::printf("compression > 90%% at res 6:            %s (%.2f%%)\n",
              r6.compression > 0.9 ? "PASS" : "FAIL", r6.compression * 100);
  std::printf("compression > 90%% at res 7:            %s (%.2f%%)\n",
              r7.compression > 0.9 ? "PASS" : "FAIL", r7.compression * 100);
  std::printf("finer res has more cells:              %s (%llu -> %llu)\n",
              r7.cells > r6.cells ? "PASS" : "FAIL",
              static_cast<unsigned long long>(r6.cells),
              static_cast<unsigned long long>(r7.cells));
  std::printf("finer res has lower compression:       %s\n",
              r7.compression < r6.compression ? "PASS" : "FAIL");
  std::printf("finer res has lower utilization:       %s (%.4f%% -> %.4f%%)\n",
              r7.utilization < r6.utilization ? "PASS" : "FAIL",
              r6.utilization * 100, r7.utilization * 100);
  std::printf(
      "\n(only the (cell) grouping set is materialized here — the Table 4 "
      "quantities derive from it alone)\n");
  return 0;
}

}  // namespace
}  // namespace pol

int main() { return pol::Run(); }
