// Figure 1 reproduction: global per-cell average speed and course of the
// commercial fleet (the "patterns of life" world maps).
//
// Reproduced shape: per-cell circular course means align with the lane
// bearings (strong directional concentration along corridors), speed is
// low in port-approach cells and high on open-ocean legs. Also prints
// the Table 3 feature set for one busy cell to show every statistic the
// paper lists.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/pipeline.h"
#include "geo/geodesic.h"
#include "hexgrid/hexgrid.h"

namespace pol {
namespace {

int Run() {
  bench::PrintHeader("Figure 1: global average speed / course maps (res 6)");
  sim::FleetConfig config = bench::GlobalYearConfig();
  config.noncommercial_vessels = 0;
  sim::SimulationOutput sim_output = sim::FleetSimulator(config).Run();

  core::PipelineConfig pipeline_config;
  pipeline_config.partitions = 8;
  pipeline_config.resolution = 6;
  pipeline_config.extractor.gi_cell_route_type = false;  // Maps need GI 1+2.
  core::PipelineResult result;
  const double build_s = bench::TimeSeconds([&] {
    result = core::RunPipeline(sim_output.reports, sim_output.fleet,
                               pipeline_config);
  });
  const core::Inventory& inv = *result.inventory;
  std::printf("pipeline: %s records -> %s summaries in %.1fs\n",
              bench::FormatCount(result.aggregated_records).c_str(),
              bench::FormatCount(inv.size()).c_str(), build_s);

  bench::RenderAsciiMap(
      "Average speed over ground, knots (global, res 6)", -65, 70, -180, 180,
      110, 34, 6, [&inv](hex::CellIndex cell) {
        const core::CellSummary* s = inv.Cell(cell);
        if (s == nullptr || s->speed().count() == 0) return std::nan("");
        return s->speed().Mean();
      });

  bench::RenderCourseMap(
      "Average course (circular mean) per cell", -65, 70, -180, 180, 110, 34,
      6, [&inv](hex::CellIndex cell) {
        const core::CellSummary* s = inv.Cell(cell);
        if (s == nullptr || s->course_mean().count() == 0) {
          return std::nan("");
        }
        return s->course_mean().MeanDeg();
      });

  // Quantitative shape checks.
  bench::PrintHeader("Shape checks");
  uint64_t lane_cells = 0;
  uint64_t directional = 0;
  double port_speed_sum = 0;
  uint64_t port_speed_n = 0;
  double ocean_speed_sum = 0;
  uint64_t ocean_speed_n = 0;
  inv.VisitGroupingSet(core::GroupingSet::kCell, [&](const core::GroupKey& key,
                                                     const core::CellSummary&
                                                         summary) {
    if (summary.course_mean().count() >= 10) {
      ++lane_cells;
      if (summary.course_mean().ResultantLength() > 0.8) ++directional;
    }
    if (summary.speed().count() < 5) return;
    const geo::LatLng center = hex::CellToLatLng(key.cell);
    const sim::Port* nearest = sim::PortDatabase::Global().Nearest(center);
    const double port_km = geo::HaversineKm(center, nearest->position);
    if (port_km < 50) {
      port_speed_sum += summary.speed().Mean();
      ++port_speed_n;
    } else if (port_km > 500) {
      ocean_speed_sum += summary.speed().Mean();
      ++ocean_speed_n;
    }
  });
  const double port_speed = port_speed_sum / std::max<uint64_t>(1, port_speed_n);
  const double ocean_speed =
      ocean_speed_sum / std::max<uint64_t>(1, ocean_speed_n);
  std::printf("cells with >=10 course samples:        %s\n",
              bench::FormatCount(lane_cells).c_str());
  std::printf(
      "  strongly directional (R > 0.8):      %s (%.1f%%) — traffic lanes\n",
      bench::FormatCount(directional).c_str(),
      100.0 * directional / std::max<uint64_t>(1, lane_cells));
  std::printf("mean speed near ports (<50 km):        %.1f kn\n", port_speed);
  std::printf("mean speed open ocean (>500 km):       %.1f kn\n", ocean_speed);
  std::printf("ocean faster than port approaches:     %s\n",
              ocean_speed > port_speed ? "PASS" : "FAIL");

  // The Table 3 feature set of the busiest cell.
  bench::PrintHeader("Table 3 feature set for the busiest cell");
  const core::CellSummary* busiest = nullptr;
  hex::CellIndex busiest_cell = hex::kInvalidCell;
  inv.VisitGroupingSet(
      core::GroupingSet::kCell,
      [&](const core::GroupKey& key, const core::CellSummary& summary) {
        if (busiest == nullptr ||
            summary.record_count() > busiest->record_count()) {
          busiest = &summary;
          busiest_cell = key.cell;
        }
      });
  if (busiest != nullptr) {
    const geo::LatLng c = hex::CellToLatLng(busiest_cell);
    std::printf("cell %s at %s\n", hex::CellToString(busiest_cell).c_str(),
                c.ToString().c_str());
    std::printf("  Records (Cnt):        %llu\n",
                static_cast<unsigned long long>(busiest->record_count()));
    std::printf("  Ships (Dist):         %.0f\n", busiest->ships().Estimate());
    std::printf("  Trips (Dist):         %.0f\n", busiest->trips().Estimate());
    std::printf("  Speed mean/std:       %.1f / %.1f kn\n",
                busiest->speed().Mean(), busiest->speed().StdDev());
    std::printf("  Speed p10/p50/p90:    %.1f / %.1f / %.1f kn\n",
                busiest->speed_percentiles().Quantile(0.1),
                busiest->speed_percentiles().Quantile(0.5),
                busiest->speed_percentiles().Quantile(0.9));
    std::printf("  Course mean* (circ):  %.0f deg (R=%.2f)\n",
                busiest->course_mean().MeanDeg(),
                busiest->course_mean().ResultantLength());
    std::printf("  Course bins (30deg):  mode bin [%g, %g)\n",
                busiest->course_bins().bin_lo(busiest->course_bins().ModeBin()),
                busiest->course_bins().bin_hi(busiest->course_bins().ModeBin()));
    std::printf("  ETO mean p50:         %.1f h / %.1f h\n",
                busiest->eto().Mean() / 3600,
                busiest->eto_percentiles().Quantile(0.5) / 3600);
    std::printf("  ATA mean p50:         %.1f h / %.1f h\n",
                busiest->ata().Mean() / 3600,
                busiest->ata_percentiles().Quantile(0.5) / 3600);
    const auto top_dest = busiest->destinations().TopN(3);
    std::printf("  Top destinations:     ");
    for (const auto& entry : top_dest) {
      const auto port = sim::PortDatabase::Global().Find(
          static_cast<sim::PortId>(entry.key));
      std::printf("%s(%llu) ", port.ok() ? (*port)->name.c_str() : "?",
                  static_cast<unsigned long long>(entry.count));
    }
    std::printf("\n  Top transitions:      %zu tracked next-cells\n",
                busiest->transitions().TopN(12).size());
  }
  return 0;
}

}  // namespace
}  // namespace pol

int main() { return pol::Run(); }
