# Bench targets are defined at the top level (via include()) so that
# build/bench/ contains ONLY the runnable binaries:
#
#   for b in build/bench/*; do $b; done
#
# regenerates every table and figure of the paper.

add_library(pol_bench_util STATIC ${PROJECT_SOURCE_DIR}/bench/bench_util.cc)
target_include_directories(pol_bench_util PUBLIC ${PROJECT_SOURCE_DIR})
target_link_libraries(pol_bench_util PUBLIC pol_usecases pol_core pol_sim
  pol_flow pol_ais pol_stats pol_hexgrid pol_geo pol_common)
set_target_properties(pol_bench_util PROPERTIES
  ARCHIVE_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/lib)

function(pol_add_bench name)
  add_executable(${name} ${PROJECT_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE pol_bench_util)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

pol_add_bench(bench_table1_dataset)
pol_add_bench(bench_table4_compression)
pol_add_bench(bench_fig1_global_maps)
pol_add_bench(bench_fig4_baltic)
pol_add_bench(bench_fig5_ata)
pol_add_bench(bench_fig6_destinations)
pol_add_bench(bench_query_speedup)
pol_add_bench(bench_eta)
pol_add_bench(bench_route_forecast)

pol_add_bench(bench_adaptive_ablation)
pol_add_bench(bench_suez_disruption)
pol_add_bench(bench_checkpoint)
pol_add_bench(bench_obs_overhead)
pol_add_bench(bench_serving_guard)
pol_add_bench(bench_serving_telemetry)
pol_add_bench(bench_snapshot_store)

# Microbenchmarks use google-benchmark.
pol_add_bench(bench_micro)
target_link_libraries(bench_micro PRIVATE benchmark::benchmark)
