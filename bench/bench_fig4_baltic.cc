// Figure 4 reproduction: local patterns of life for the Baltic Sea.
//
// The paper's three panels for the Baltic: trip frequency (routes),
// average speed (loitering/anchorage areas), average course (the traffic
// separation schema). A dense regional simulation over the built-in
// Baltic/North-Sea ports drives a res-7 inventory; the reproduced shape:
// lanes visible as high-frequency corridors, low speeds clustered near
// ports/anchorages, opposite-direction bands along the lanes.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/pipeline.h"
#include "geo/geodesic.h"
#include "hexgrid/hexgrid.h"
#include "usecases/lane_analysis.h"

namespace pol {
namespace {

// The Figure 4 viewport: southern/central Baltic.
constexpr double kLatMin = 53.5;
constexpr double kLatMax = 61.0;
constexpr double kLngMin = 9.0;
constexpr double kLngMax = 31.0;

int Run() {
  bench::PrintHeader("Figure 4: Baltic Sea local patterns (res 7)");

  sim::FleetConfig base;
  base.seed = 20220404;
  base.commercial_vessels = 60;
  base.noncommercial_vessels = 40;
  base.start_time = 1640995200;
  base.end_time = base.start_time + 180 * kSecondsPerDay;
  base.coastal_interval_s = 240;  // Dense terrestrial coverage inshore.
  base.ocean_interval_s = 480;
  bench::RegionalScenario scenario(
      bench::PortsInBox(kLatMin, kLatMax, kLngMin, kLngMax), base);
  std::printf("regional port set: %zu ports\n", scenario.ports.size());

  sim::SimulationOutput sim_output =
      sim::FleetSimulator(scenario.config).Run();
  std::printf("simulated %s reports\n",
              bench::FormatCount(sim_output.reports.size()).c_str());

  core::PipelineConfig pipeline_config;
  pipeline_config.partitions = 8;
  pipeline_config.resolution = 7;
  pipeline_config.geofence_resolution = 7;
  pipeline_config.ports = &scenario.ports;
  pipeline_config.extractor.gi_cell_route_type = false;
  core::PipelineResult result = core::RunPipeline(
      sim_output.reports, sim_output.fleet, pipeline_config);
  const core::Inventory& inv = *result.inventory;
  std::printf("inventory: %s summaries over %s cells\n",
              bench::FormatCount(inv.size()).c_str(),
              bench::FormatCount(inv.DistinctCells()).c_str());

  // Panel 1 (top): trip frequency.
  bench::RenderAsciiMap(
      "Trip frequency (distinct trips per cell)", kLatMin, kLatMax, kLngMin,
      kLngMax, 100, 28, 7, [&inv](hex::CellIndex cell) {
        const core::CellSummary* s = inv.Cell(cell);
        if (s == nullptr) return std::nan("");
        return s->trips().Estimate();
      });

  // Panel 2 (middle): average speed.
  bench::RenderAsciiMap(
      "Average speed (knots) — dark areas near ports are loitering",
      kLatMin, kLatMax, kLngMin, kLngMax, 100, 28, 7,
      [&inv](hex::CellIndex cell) {
        const core::CellSummary* s = inv.Cell(cell);
        if (s == nullptr || s->speed().count() == 0) return std::nan("");
        return s->speed().Mean();
      });

  // Panel 3 (bottom): average course.
  bench::RenderCourseMap(
      "Average course — opposing bands are the traffic separation schema",
      kLatMin, kLatMax, kLngMin, kLngMax, 100, 28, 7,
      [&inv](hex::CellIndex cell) {
        const core::CellSummary* s = inv.Cell(cell);
        if (s == nullptr || s->course_mean().count() < 3) {
          return std::nan("");
        }
        return s->course_mean().MeanDeg();
      });

  // Programmatic reading of the panels: lane classification.
  uc::LaneAnalysisConfig lane_config;
  lane_config.min_records = 10;
  const uc::LaneAnalyzer analyzer(result.inventory.get(), lane_config);
  const uc::LaneAnalysisReport lanes = analyzer.AnalyzeAll();
  bench::PrintHeader("Cell classification (the Figure 4 structures)");
  for (const auto& [cell_class, count] : lanes.cells_per_class) {
    std::printf("  %-14s %s\n", uc::CellClassName(cell_class),
                bench::FormatCount(count).c_str());
  }

  // Shape checks.
  bench::PrintHeader("Shape checks");
  uint64_t cells = 0;
  uint64_t low_speed_near_port = 0;
  uint64_t low_speed_total = 0;
  inv.VisitGroupingSet(
      core::GroupingSet::kCell,
      [&](const core::GroupKey& key, const core::CellSummary& summary) {
        if (summary.speed().count() < 5) return;
        ++cells;
        if (summary.speed().Mean() < 3.0) {
          ++low_speed_total;
          const geo::LatLng center = hex::CellToLatLng(key.cell);
          double nearest_km = 1e18;
          for (const sim::Port& port : scenario.ports.ports()) {
            nearest_km =
                std::min(nearest_km, geo::HaversineKm(center, port.position));
          }
          if (nearest_km < 40.0) ++low_speed_near_port;
        }
      });
  std::printf("cells with speed stats:                  %s\n",
              bench::FormatCount(cells).c_str());
  std::printf("loitering cells (<3 kn):                 %s\n",
              bench::FormatCount(low_speed_total).c_str());
  std::printf("  of which within 40 km of a port:       %s (%.0f%%)\n",
              bench::FormatCount(low_speed_near_port).c_str(),
              100.0 * low_speed_near_port /
                  std::max<uint64_t>(1, low_speed_total));
  std::printf("loitering concentrated near ports:       %s\n",
              low_speed_near_port * 2 > low_speed_total ? "PASS" : "FAIL");
  const auto lane_count = lanes.cells_per_class.find(uc::CellClass::kLane);
  const auto bidir_count =
      lanes.cells_per_class.find(uc::CellClass::kBidirectional);
  std::printf("directional lanes detected:              %s\n",
              lane_count != lanes.cells_per_class.end() &&
                      lane_count->second > 0
                  ? "PASS"
                  : "FAIL");
  std::printf("separation (bidirectional) cells found:  %s\n",
              bidir_count != lanes.cells_per_class.end() &&
                      bidir_count->second > 0
                  ? "PASS"
                  : "FAIL");
  return 0;
}

}  // namespace
}  // namespace pol

int main() { return pol::Run(); }
