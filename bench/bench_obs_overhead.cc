// Observability overhead: what the metrics/trace instrumentation adds
// to an end-to-end chunked pipeline run. Three configurations share one
// simulated archive:
//
//   idle    - instrumentation compiled in, recorder stopped, no outputs
//             (the default production shape; under POL_OBS=OFF this is
//             the layer compiled to no-ops)
//   traced  - trace recording on plus run-report emission
//
// The acceptance bar is `traced` within 2% of `idle`, estimated as the
// median of per-round paired wall-clock ratios (adjacent runs share
// machine state, so ambient load cancels inside a pair); the bench
// exits non-zero past the threshold so tools/run_tier1.sh --obs gates
// on it.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/pipeline.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/querylog.h"
#include "obs/report.h"
#include "obs/window.h"
#include "sim/fleet.h"

namespace pol {
namespace {

constexpr int kRounds = 9;
constexpr double kMaxOverhead = 0.02;

// Windowed-telemetry micro-timings: ns per record for the serving-path
// primitives (cumulative Histogram as the baseline, then the windowed
// ring variants and the query log). Informational — the end-to-end bar
// for the serving path lives in bench_serving_telemetry — but recorded
// into the summary so regressions in the record fast path are visible
// across runs.
struct WindowedMicros {
  double histogram_ns = 0.0;
  double windowed_histogram_ns = 0.0;
  double windowed_rate_ns = 0.0;
  double query_log_ns = 0.0;
};

WindowedMicros MeasureWindowedMicros() {
  constexpr int kOps = 2'000'000;
  constexpr int kMicroRounds = 5;
  WindowedMicros out;
  obs::Histogram histogram;
  obs::WindowedHistogram windowed(1.0, 60);
  obs::WindowedRate rate(1.0, 60);
  obs::QueryLog log;
  obs::QueryEvent event;
  event.query_class = "interactive";
  event.op = "bench";
  event.status = "Ok";
  event.scan_seconds = 0.0001;
  const auto per_op_ns = [&](auto&& body) {
    double best = 1e300;
    for (int round = 0; round < kMicroRounds; ++round) {
      best = std::min(best, bench::TimeSeconds([&] {
        for (int i = 0; i < kOps; ++i) body(i);
      }));
    }
    return best / kOps * 1e9;
  };
  out.histogram_ns =
      per_op_ns([&](int i) { histogram.Record(1e-6 * (i & 1023)); });
  out.windowed_histogram_ns =
      per_op_ns([&](int i) { windowed.Record(1e-6 * (i & 1023)); });
  out.windowed_rate_ns = per_op_ns([&](int i) {
    (void)i;
    rate.Increment();
  });
  out.query_log_ns = per_op_ns([&](int i) {
    event.id = static_cast<uint64_t>(i);
    log.Record(event);
  });
  return out;
}

sim::SimulationOutput BenchArchive() {
  sim::FleetConfig config;
  config.seed = 20240606;
  config.commercial_vessels = 50;
  config.noncommercial_vessels = 8;
  config.start_time = 1640995200;
  config.end_time = config.start_time + 45 * kSecondsPerDay;
  return sim::FleetSimulator(config).Run();
}

int Run(int argc, char** argv) {
  std::string summary_path = "BENCH_obs_overhead.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--report-out=", 0) == 0) {
      summary_path = arg.substr(std::string("--report-out=").size());
    }
  }

  bench::PrintHeader("Observability overhead (chunked pipeline)");
  const sim::SimulationOutput archive = BenchArchive();
  std::printf("archive: %s records, obs compiled %s\n\n",
              bench::FormatCount(archive.reports.size()).c_str(),
              obs::kEnabled ? "ON" : "OFF (no-op layer)");

  const std::string out_dir =
      (std::filesystem::temp_directory_path() / "pol_bench_obs").string();
  std::filesystem::create_directories(out_dir);

  core::PipelineConfig idle_config;
  idle_config.partitions = 16;
  idle_config.chunks = 8;

  core::PipelineConfig traced_config = idle_config;
  traced_config.obs.trace_path = out_dir + "/trace.json";
  traced_config.obs.report_path = out_dir + "/report.json";

  // One untimed warmup per shape first (page cache, allocator pools,
  // lazy singletons). Then paired rounds: each round times the two
  // shapes back to back and keeps their ratio — adjacent runs share
  // machine state (load bursts, turbo level), so the noise that
  // dominates absolute wall clock cancels inside a pair. The estimate
  // is the median ratio, which discards rounds where a burst hit only
  // one half of the pair.
  core::RunPipeline(archive.reports, archive.fleet, idle_config);
  core::RunPipeline(archive.reports, archive.fleet, traced_config);
  double idle_s = 1e300;
  double traced_s = 1e300;
  std::vector<double> ratios;
  ratios.reserve(kRounds);
  for (int round = 0; round < kRounds; ++round) {
    const double idle_round = bench::TimeSeconds([&] {
      core::RunPipeline(archive.reports, archive.fleet, idle_config);
    });
    const double traced_round = bench::TimeSeconds([&] {
      core::RunPipeline(archive.reports, archive.fleet, traced_config);
    });
    idle_s = std::min(idle_s, idle_round);
    traced_s = std::min(traced_s, traced_round);
    ratios.push_back(traced_round / idle_round);
  }
  std::sort(ratios.begin(), ratios.end());
  const double median_ratio = ratios[ratios.size() / 2];

  const double overhead = median_ratio - 1.0;
  std::printf("idle   (no outputs):      %.4f s (min of %d)\n", idle_s,
              kRounds);
  std::printf("traced (trace + report):  %.4f s (min of %d)\n", traced_s,
              kRounds);
  std::printf("overhead:                 %s (median paired ratio, bar: %s)\n",
              bench::FormatPercent(overhead).c_str(),
              bench::FormatPercent(kMaxOverhead).c_str());

  const WindowedMicros micros = MeasureWindowedMicros();
  std::printf("\nwindowed-telemetry record path (best of 5 x 2M ops):\n");
  std::printf("  Histogram::Record          %6.1f ns/op\n",
              micros.histogram_ns);
  std::printf("  WindowedHistogram::Record  %6.1f ns/op\n",
              micros.windowed_histogram_ns);
  std::printf("  WindowedRate::Increment    %6.1f ns/op\n",
              micros.windowed_rate_ns);
  std::printf("  QueryLog::Record           %6.1f ns/op\n",
              micros.query_log_ns);

  std::printf(
      "BENCH {\"bench\":\"obs_overhead\",\"records\":%llu,\"rounds\":%d,"
      "\"obs_enabled\":%s,\"idle_s\":%.4f,\"traced_s\":%.4f,"
      "\"overhead_frac\":%.4f}\n",
      static_cast<unsigned long long>(archive.reports.size()), kRounds,
      obs::kEnabled ? "true" : "false", idle_s, traced_s, overhead);

  if (!summary_path.empty()) {
    obs::Json summary = obs::Json::Object();
    summary.Set("schema", "pol.bench_summary/1");
    summary.Set("bench", "obs_overhead");
    summary.Set("records", static_cast<uint64_t>(archive.reports.size()));
    summary.Set("rounds", kRounds);
    summary.Set("obs_enabled", obs::kEnabled);
    summary.Set("idle_s", idle_s);
    summary.Set("traced_s", traced_s);
    summary.Set("overhead_frac", overhead);
    summary.Set("max_overhead_frac", kMaxOverhead);
    obs::Json windowed = obs::Json::Object();
    windowed.Set("histogram_ns", micros.histogram_ns);
    windowed.Set("windowed_histogram_ns", micros.windowed_histogram_ns);
    windowed.Set("windowed_rate_ns", micros.windowed_rate_ns);
    windowed.Set("query_log_ns", micros.query_log_ns);
    summary.Set("windowed_record_ns", std::move(windowed));
    std::string error;
    if (!obs::WriteJsonFile(summary_path, summary, &error)) {
      std::fprintf(stderr, "cannot write %s: %s\n", summary_path.c_str(),
                   error.c_str());
    }
  }

  std::filesystem::remove_all(out_dir);
  if (overhead > kMaxOverhead) {
    std::fprintf(stderr, "FAIL: observability overhead %.2f%% exceeds %.2f%%\n",
                 overhead * 100.0, kMaxOverhead * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pol

int main(int argc, char** argv) { return pol::Run(argc, argv); }
