// Table 1 reproduction: "Data Used for Methodology".
//
// The paper's 2022 archive: 600 GB of raw positional reports reduced to
// 60 GB / 2.7 B rows of commercial-fleet reports from ~60 k vessels,
// plus a 20 k-port table. The reproduced *shape*: the commercial filter
// removes the large majority of raw rows/bytes, vessel and port counts
// are reported alongside, and cleaning accounts for every dropped row.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/cleaning.h"
#include "core/enrich.h"

namespace pol {
namespace {

int Run() {
  bench::PrintHeader("Table 1: data used for methodology (simulated year)");

  sim::FleetConfig config = bench::GlobalYearConfig();
  // Table 1 is about raw vs commercial volume, so the local fleet is
  // scaled up relative to the other benches (which filter it out anyway).
  config.noncommercial_vessels = 400;
  config.noncommercial_interval_s = 240;
  std::printf("simulating %d commercial + %d local vessels, year 2022...\n",
              config.commercial_vessels, config.noncommercial_vessels);
  sim::SimulationOutput sim_output;
  const double sim_s = bench::TimeSeconds(
      [&] { sim_output = sim::FleetSimulator(config).Run(); });

  const uint64_t raw_rows = sim_output.reports.size();
  const uint64_t raw_bytes = raw_rows * sizeof(ais::PositionReport);

  flow::ThreadPool pool(0);
  core::CleaningStats cleaning;
  core::CleaningConfig cleaning_config;
  auto cleaned =
      core::CleanReports(sim_output.reports, cleaning_config, &pool,
                         &cleaning);
  const core::Enricher enricher(sim_output.fleet);
  core::EnrichmentStats enrichment;
  auto commercial = enricher.Enrich(cleaned, true, &enrichment);

  uint64_t commercial_vessels = 0;
  for (const auto& vessel : sim_output.fleet) {
    if (ais::IsCommercialFleet(vessel)) ++commercial_vessels;
  }
  const uint64_t commercial_rows = commercial.Count();
  const uint64_t commercial_bytes =
      commercial_rows * sizeof(core::PipelineRecord);

  const std::vector<int> w = {38, 18, 14, 24};
  bench::PrintRow({"Description", "Rows", "Size", "Paper (full scale)"}, w);
  bench::PrintRow({"Raw positional reports (all vessels)",
                   bench::FormatCount(raw_rows), bench::FormatBytes(raw_bytes),
                   "~ 600 GB"},
                  w);
  bench::PrintRow({"Commercial fleet positional reports",
                   bench::FormatCount(commercial_rows),
                   bench::FormatBytes(commercial_bytes),
                   "2.7 Billion / 60 GB"},
                  w);
  bench::PrintRow({"Vessel static information",
                   bench::FormatCount(sim_output.fleet.size()), "few KB",
                   "60 Thousand / few MB"},
                  w);
  bench::PrintRow({"  of which commercial fleet",
                   bench::FormatCount(commercial_vessels), "", "~60 Thousand"},
                  w);
  bench::PrintRow({"Port information",
                   bench::FormatCount(sim::PortDatabase::Global().size()),
                   "few KB", "20 Thousand / few MB"},
                  w);

  bench::PrintHeader("Cleaning & filter accounting");
  std::printf("input rows:            %s\n",
              bench::FormatCount(cleaning.input).c_str());
  std::printf("invalid fields:        %s (injected corrupt: %s)\n",
              bench::FormatCount(cleaning.invalid_fields).c_str(),
              bench::FormatCount(sim_output.injected_corrupt).c_str());
  std::printf("duplicates removed:    %s (injected: %s)\n",
              bench::FormatCount(cleaning.duplicates).c_str(),
              bench::FormatCount(sim_output.injected_duplicates).c_str());
  std::printf("infeasible jumps:      %s (injected: %s)\n",
              bench::FormatCount(cleaning.infeasible_jumps).c_str(),
              bench::FormatCount(sim_output.injected_jumps).c_str());
  std::printf("non-commercial rows:   %s\n",
              bench::FormatCount(enrichment.non_commercial).c_str());
  std::printf("commercial rows kept:  %s\n",
              bench::FormatCount(commercial_rows).c_str());

  const double commercial_fraction =
      static_cast<double>(commercial_rows) / static_cast<double>(raw_rows);
  std::printf(
      "\nshape check: commercial fraction of raw archive = %s "
      "(paper: 60 GB / 600 GB = 10%%)\n",
      bench::FormatPercent(commercial_fraction).c_str());
  std::printf("simulation took %.1fs\n", sim_s);
  return 0;
}

}  // namespace
}  // namespace pol

int main() { return pol::Run(); }
