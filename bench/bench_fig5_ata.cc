// Figure 5 reproduction: global average actual-time-to-destination (ATA)
// per cell.
//
// Reproduced shape: ATA is small in port-approach cells and grows with
// distance from destinations; along any single voyage the per-cell mean
// ATA decreases monotonically (checked quantitatively below).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/pipeline.h"
#include "geo/geodesic.h"
#include "hexgrid/hexgrid.h"

namespace pol {
namespace {

int Run() {
  bench::PrintHeader("Figure 5: global mean time-to-destination map (res 6)");
  sim::FleetConfig config = bench::GlobalYearConfig();
  config.noncommercial_vessels = 0;
  sim::SimulationOutput sim_output = sim::FleetSimulator(config).Run();

  core::PipelineConfig pipeline_config;
  pipeline_config.partitions = 8;
  pipeline_config.resolution = 6;
  pipeline_config.extractor.gi_cell_route_type = false;
  core::PipelineResult result = core::RunPipeline(
      sim_output.reports, sim_output.fleet, pipeline_config);
  const core::Inventory& inv = *result.inventory;
  std::printf("aggregated %s records into %s summaries\n",
              bench::FormatCount(result.aggregated_records).c_str(),
              bench::FormatCount(inv.size()).c_str());

  bench::RenderAsciiMap(
      "Mean ATA per cell, hours (dark = arriving soon)", -65, 70, -180, 180,
      110, 34, 6, [&inv](hex::CellIndex cell) {
        const core::CellSummary* s = inv.Cell(cell);
        if (s == nullptr || s->ata().count() == 0) return std::nan("");
        return s->ata().Mean() / 3600.0;
      });

  // Shape check 1: cells near ports have lower ATA than mid-ocean cells.
  double near_sum = 0;
  uint64_t near_n = 0;
  double far_sum = 0;
  uint64_t far_n = 0;
  inv.VisitGroupingSet(
      core::GroupingSet::kCell,
      [&](const core::GroupKey& key, const core::CellSummary& summary) {
        if (summary.ata().count() < 5) return;
        const geo::LatLng center = hex::CellToLatLng(key.cell);
        const sim::Port* nearest = sim::PortDatabase::Global().Nearest(center);
        const double km = geo::HaversineKm(center, nearest->position);
        if (km < 100) {
          near_sum += summary.ata().Mean();
          ++near_n;
        } else if (km > 1000) {
          far_sum += summary.ata().Mean();
          ++far_n;
        }
      });
  bench::PrintHeader("Shape checks");
  const double near_h = near_sum / std::max<uint64_t>(1, near_n) / 3600;
  const double far_h = far_sum / std::max<uint64_t>(1, far_n) / 3600;
  std::printf("mean ATA near ports (<100 km):     %.1f h over %s cells\n",
              near_h, bench::FormatCount(near_n).c_str());
  std::printf("mean ATA mid-ocean (>1000 km):     %.1f h over %s cells\n",
              far_h, bench::FormatCount(far_n).c_str());
  std::printf("ATA grows away from destinations:  %s\n",
              far_h > near_h ? "PASS" : "FAIL");

  // Shape check 2: along individual voyages the cell-mean ATA decreases.
  int monotone = 0;
  int voyages_checked = 0;
  for (const auto& voyage : sim_output.voyages) {
    if (voyage.distance_km < 3000) continue;
    // Sample the voyage's own reports in time order.
    std::vector<double> atas;
    UnixSeconds last_t = 0;
    for (const auto& report : sim_output.reports) {
      if (report.mmsi != voyage.mmsi || report.timestamp < voyage.departure ||
          report.timestamp > voyage.arrival || report.timestamp <= last_t) {
        continue;
      }
      const core::CellSummary* s =
          inv.Cell(hex::LatLngToCell({report.lat_deg, report.lng_deg}, 6));
      if (s == nullptr || s->ata().count() == 0) continue;
      atas.push_back(s->ata().Mean());
      last_t = report.timestamp;
    }
    if (atas.size() < 10) continue;
    ++voyages_checked;
    // Spearman-ish check: compare first and last third means.
    double head = 0;
    double tail = 0;
    const size_t third = atas.size() / 3;
    for (size_t i = 0; i < third; ++i) head += atas[i];
    for (size_t i = atas.size() - third; i < atas.size(); ++i) {
      tail += atas[i];
    }
    if (tail < head) ++monotone;
    if (voyages_checked >= 40) break;
  }
  std::printf(
      "voyages whose inventory ATA falls en route: %d / %d  %s\n", monotone,
      voyages_checked, monotone * 4 > voyages_checked * 3 ? "PASS" : "FAIL");
  return 0;
}

}  // namespace
}  // namespace pol

int main() { return pol::Run(); }
