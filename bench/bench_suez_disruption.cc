// The paper's motivating scenario, reproduced end to end: "we build a
// model of normalcy that can then be used to identify any outliers from
// this e.g. Covid-19 or Suez Canal" (section 2), referencing the 2021
// Ever Given grounding that forced re-routing around the Cape of Good
// Hope (+7000 nm, introduction).
//
// Setup: two simulated months of normal traffic train the normalcy
// inventory; then the Suez Canal leg is removed from the sea-lane
// network for a month. The disruption must be visible in the inventory
// deltas (Suez cells empty out, Cape corridor lights up) and the
// anomaly detector must flag the re-routed traffic as off-lane.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/pipeline.h"
#include "geo/geodesic.h"
#include "hexgrid/hexgrid.h"
#include "usecases/anomaly.h"

namespace pol {
namespace {

// Records within `km` of a reference point.
uint64_t RecordsNear(const core::InventoryQuery& inv, const geo::LatLng& center,
                     double km) {
  uint64_t records = 0;
  inv.VisitGroupingSet(
      core::GroupingSet::kCell,
      [&](const core::GroupKey& key, const core::CellSummary& summary) {
        if (geo::HaversineKm(hex::CellToLatLng(key.cell), center) <= km) {
          records += summary.record_count();
        }
      });
  return records;
}

int Run() {
  bench::PrintHeader("Disruption scenario: the Suez Canal closure");

  // Normal period.
  sim::FleetConfig normal = bench::GlobalYearConfig(20210301);
  normal.noncommercial_vessels = 0;
  normal.commercial_vessels = 80;
  normal.start_time = 1609459200;  // 2021-01-01.
  normal.end_time = normal.start_time + 60 * kSecondsPerDay;
  const sim::SimulationOutput before = sim::FleetSimulator(normal).Run();

  // Disrupted period: the canal leg is gone; Dijkstra re-routes
  // Asia-Europe traffic around the Cape of Good Hope.
  const sim::RouteNetwork closed_suez(
      &sim::PortDatabase::Global(),
      {{"port-said-approach", "suez-south"}});
  sim::FleetConfig disrupted = normal;
  disrupted.seed = 20210323;
  disrupted.start_time = normal.end_time;
  // Long enough for Cape-routed Asia-Europe voyages (~36 days at sea) to
  // complete and enter the inventory.
  disrupted.end_time = disrupted.start_time + 60 * kSecondsPerDay;
  disrupted.routes = &closed_suez;
  const sim::SimulationOutput during = sim::FleetSimulator(disrupted).Run();

  core::PipelineConfig config;
  config.partitions = 8;
  config.resolution = 6;
  config.extractor.gi_cell_route_type = false;
  core::PipelineResult normal_result =
      core::RunPipeline(before.reports, before.fleet, config);
  core::PipelineResult disrupted_result =
      core::RunPipeline(during.reports, during.fleet, config);
  const core::Inventory& inv_before = *normal_result.inventory;
  const core::Inventory& inv_during = *disrupted_result.inventory;
  std::printf("normal period: %s records; disruption period: %s records\n",
              bench::FormatCount(normal_result.aggregated_records).c_str(),
              bench::FormatCount(disrupted_result.aggregated_records).c_str());

  // Region probes (daily rates normalize the different period lengths).
  const geo::LatLng suez{30.5, 32.4};
  const geo::LatLng cape{-35.2, 18.3};
  const double suez_before =
      static_cast<double>(RecordsNear(inv_before, suez, 400)) / 60.0;
  const double suez_during =
      static_cast<double>(RecordsNear(inv_during, suez, 400)) / 60.0;
  const double cape_before =
      static_cast<double>(RecordsNear(inv_before, cape, 700)) / 60.0;
  const double cape_during =
      static_cast<double>(RecordsNear(inv_during, cape, 700)) / 60.0;

  bench::PrintHeader("Regional traffic rates (records/day in the inventory)");
  const std::vector<int> w = {26, 14, 14, 10};
  bench::PrintRow({"region", "normal", "disrupted", "change"}, w);
  char change[16];
  std::snprintf(change, sizeof(change), "%+.0f%%",
                100.0 * (suez_during - suez_before) /
                    std::max(1.0, suez_before));
  bench::PrintRow({"Suez Canal (400 km)",
                   std::to_string(static_cast<int>(suez_before)),
                   std::to_string(static_cast<int>(suez_during)), change},
                  w);
  std::snprintf(change, sizeof(change), "%+.0f%%",
                100.0 * (cape_during - cape_before) /
                    std::max(1.0, cape_before));
  bench::PrintRow({"Cape of Good Hope (700 km)",
                   std::to_string(static_cast<int>(cape_before)),
                   std::to_string(static_cast<int>(cape_during)), change},
                  w);

  // Anomaly screening: during the disruption, traffic in the Cape
  // corridor is off the normalcy model's lanes.
  uc::AnomalyConfig anomaly_config;
  anomaly_config.min_support = 3;
  const uc::AnomalyDetector detector(&inv_before, anomaly_config);
  uint64_t cape_reports = 0;
  uint64_t cape_flagged = 0;
  for (const auto& report : during.reports) {
    if (!ais::ValidatePositionReport(report).ok()) continue;
    const geo::LatLng p{report.lat_deg, report.lng_deg};
    if (geo::HaversineKm(p, cape) > 700) continue;
    ++cape_reports;
    if (detector.Assess(p, report.sog_knots, report.cog_deg,
                        ais::MarketSegment::kContainer)
            .score > 0) {
      ++cape_flagged;
    }
  }

  bench::PrintHeader("Shape checks");
  std::printf("Suez traffic collapses during closure:   %s (%.0f -> %.0f "
              "records/day)\n",
              suez_during < suez_before * 0.35 ? "PASS" : "FAIL",
              suez_before, suez_during);
  std::printf("Cape traffic surges during closure:      %s (%.0f -> %.0f "
              "records/day)\n",
              cape_during > cape_before * 1.8 ? "PASS" : "FAIL", cape_before,
              cape_during);
  const double flagged_share =
      cape_reports == 0
          ? 0.0
          : static_cast<double>(cape_flagged) /
                static_cast<double>(cape_reports);
  std::printf("re-routed traffic flagged vs normalcy:   %s (%.0f%% of %s "
              "Cape-area reports)\n",
              flagged_share > 0.5 ? "PASS" : "FAIL", flagged_share * 100,
              bench::FormatCount(cape_reports).c_str());
  return 0;
}

}  // namespace
}  // namespace pol

int main() { return pol::Run(); }
