// ServingGuard overhead: what the serving-resilience layer (admission
// control + deadline bookkeeping) adds to the hot read path. Two shapes
// share one sealed inventory:
//
//   raw     - ServingInventory::Acquire() + a batch of point lookups
//   guarded - the same batch inside ServingGuard::Run with an infinite
//             deadline (admission fast path: two atomics + one clock
//             read per call, amortized over the batch)
//
// Each timed call does kLookupsPerCall point lookups, mirroring one
// real request answering a corridor. The acceptance bar is `guarded`
// within 2% of `raw`, estimated as the ratio of the per-shape minimum
// round times: ambient load only ever adds time, so the min over
// interleaved rounds converges to the true cost of each shape and the
// bar measures the guard, not the machine's background noise. The
// verdict is sequential: a pass that ends over the bar runs another
// block of rounds into the same minima (up to three blocks total)
// before failing — more samples only ever tighten a min, so a load
// burst has to outlast every block to produce a false failure. Exits
// non-zero past the threshold so tools/run_tier1.sh can gate on it.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/deadline.h"
#include "core/inventory.h"
#include "core/serving_guard.h"
#include "core/serving_inventory.h"
#include "hexgrid/hexgrid.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace pol {
namespace {

constexpr int kRounds = 11;
constexpr double kMaxOverhead = 0.02;
constexpr int kCallsPerRound = 12000;
constexpr int kLookupsPerCall = 128;

constexpr sim::PortId kOrigin = 3;
constexpr sim::PortId kDestination = 21;
constexpr auto kSegment = ais::MarketSegment::kContainer;

// One route whose corridor carries `cells` cells across `generations`
// merged batches — the same shape the serving tests use, scaled up so
// the lookup arrays are comfortably larger than L1.
core::Inventory BuildInventory(int generations, int cells) {
  core::SummaryMap summaries;
  for (int g = 0; g < generations; ++g) {
    for (int i = 0; i < cells; ++i) {
      const hex::CellIndex cell =
          hex::LatLngToCell({1.0 + 0.2 * g, 100.0 + 0.4 * i}, 6);
      core::PipelineRecord r;
      r.mmsi = 215000001;
      r.trip_id = static_cast<uint64_t>(g * 1000 + i);
      r.origin = kOrigin;
      r.destination = kDestination;
      r.segment = kSegment;
      r.sog_knots = 13;
      r.cog_deg = 90;
      r.heading_deg = 90;
      r.eto_s = 3600;
      r.ata_s = 7200;
      for (const core::GroupKey& key :
           {core::KeyCell(cell), core::KeyCellType(cell, kSegment),
            core::KeyCellRouteType(cell, kOrigin, kDestination, kSegment)}) {
        auto [it, inserted] = summaries.try_emplace(key);
        (void)inserted;
        it->second.Add(r);
      }
    }
  }
  return core::Inventory(6, std::move(summaries));
}

uint64_t RawRound(const core::ServingInventory& store,
                  const std::vector<hex::CellIndex>& probes) {
  uint64_t found = 0;
  size_t cursor = 0;
  for (int call = 0; call < kCallsPerRound; ++call) {
    const auto snapshot = store.Acquire();
    for (int i = 0; i < kLookupsPerCall; ++i) {
      if (snapshot->Cell(probes[cursor]) != nullptr) ++found;
      cursor = (cursor + 1) % probes.size();
    }
  }
  return found;
}

uint64_t GuardedRound(core::ServingGuard& guard,
                      const std::vector<hex::CellIndex>& probes) {
  uint64_t found = 0;
  size_t cursor = 0;
  for (int call = 0; call < kCallsPerRound; ++call) {
    const Status status = guard.Run(
        core::QueryClass::kInteractive, Deadline(),
        [&found, &cursor, &probes](const core::InventorySnapshot& snapshot) {
          for (int i = 0; i < kLookupsPerCall; ++i) {
            if (snapshot.Cell(probes[cursor]) != nullptr) ++found;
            cursor = (cursor + 1) % probes.size();
          }
          return Status::OK();
        });
    if (!status.ok()) return 0;  // Admission must never fail here.
  }
  return found;
}

int Run(int argc, char** argv) {
  std::string summary_path = "BENCH_serving_guard.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--report-out=", 0) == 0) {
      summary_path = arg.substr(std::string("--report-out=").size());
    }
  }

  bench::PrintHeader("ServingGuard overhead (admission + deadline path)");
  core::ServingInventory store(BuildInventory(48, 40));
  // Telemetry off: this bar measures admission + deadline bookkeeping
  // alone. The fully-telemetered path has its own bar in
  // bench_serving_telemetry.
  core::ServingGuardOptions guard_options;
  guard_options.telemetry.enabled = false;
  core::ServingGuard guard(&store, guard_options);
  std::printf("snapshot: %s summaries, %d calls x %d lookups per round\n\n",
              bench::FormatCount(store.size()).c_str(), kCallsPerRound,
              kLookupsPerCall);

  // Probe every corridor cell plus misses (cells from a resolution the
  // inventory never saw), cycled, so both shapes hit the same mix.
  std::vector<hex::CellIndex> probes =
      store.CellsForRoute(kOrigin, kDestination, kSegment);
  const size_t hits = probes.size();
  for (size_t i = 0; i < hits / 4 + 1; ++i) {
    probes.push_back(hex::LatLngToCell({-40.0 - 0.3 * i, 10.0}, 6));
  }
  std::printf("probes: %llu (%llu corridor hits)\n",
              static_cast<unsigned long long>(probes.size()),
              static_cast<unsigned long long>(hits));

  // Untimed warmup, then interleaved rounds. The bar compares the two
  // per-shape minima: noise bursts only inflate a round, so the min is
  // the noise-free estimate of each shape's cost.
  uint64_t checksum = RawRound(store, probes);
  checksum += GuardedRound(guard, probes);
  double raw_s = 1e300;
  double guarded_s = 1e300;
  double overhead = 1e300;
  bool diverged = false;
  auto measure = [&] {
    for (int round = 0; round < kRounds; ++round) {
      uint64_t raw_found = 0;
      uint64_t guarded_found = 0;
      const double raw_round = bench::TimeSeconds(
          [&] { raw_found = RawRound(store, probes); });
      const double guarded_round = bench::TimeSeconds(
          [&] { guarded_found = GuardedRound(guard, probes); });
      if (guarded_found != raw_found) {
        diverged = true;
        return;
      }
      checksum += raw_found + guarded_found;
      raw_s = std::min(raw_s, raw_round);
      guarded_s = std::min(guarded_s, guarded_round);
    }
    overhead = guarded_s / raw_s - 1.0;
  };
  for (int block = 0; block < 3; ++block) {
    measure();
    if (diverged || overhead <= kMaxOverhead) break;
    std::printf("overhead %s over the bar after block %d; extending\n",
                bench::FormatPercent(overhead).c_str(), block + 1);
  }
  if (diverged) {
    std::fprintf(stderr, "FAIL: guarded lookups diverge from raw\n");
    return 1;
  }

  const double lookups =
      static_cast<double>(kCallsPerRound) * kLookupsPerCall;
  std::printf("raw     (Acquire + lookups): %.4f s (min of %d, %.0f ns/op)\n",
              raw_s, kRounds, raw_s / lookups * 1e9);
  std::printf("guarded (ServingGuard::Run): %.4f s (min of %d, %.0f ns/op)\n",
              guarded_s, kRounds, guarded_s / lookups * 1e9);
  std::printf("overhead:                    %s (min-round ratio, bar: %s)\n",
              bench::FormatPercent(overhead).c_str(),
              bench::FormatPercent(kMaxOverhead).c_str());

  std::printf(
      "BENCH {\"bench\":\"serving_guard\",\"summaries\":%llu,\"rounds\":%d,"
      "\"calls_per_round\":%d,\"lookups_per_call\":%d,\"raw_s\":%.4f,"
      "\"guarded_s\":%.4f,\"overhead_frac\":%.4f,\"checksum\":%llu}\n",
      static_cast<unsigned long long>(store.size()), kRounds, kCallsPerRound,
      kLookupsPerCall, raw_s, guarded_s, overhead,
      static_cast<unsigned long long>(checksum));

  if (!summary_path.empty()) {
    obs::Json summary = obs::Json::Object();
    summary.Set("schema", "pol.bench_summary/1");
    summary.Set("bench", "serving_guard");
    summary.Set("summaries", static_cast<uint64_t>(store.size()));
    summary.Set("rounds", kRounds);
    summary.Set("calls_per_round", kCallsPerRound);
    summary.Set("lookups_per_call", kLookupsPerCall);
    summary.Set("raw_s", raw_s);
    summary.Set("guarded_s", guarded_s);
    summary.Set("overhead_frac", overhead);
    summary.Set("max_overhead_frac", kMaxOverhead);
    std::string error;
    if (!obs::WriteJsonFile(summary_path, summary, &error)) {
      std::fprintf(stderr, "cannot write %s: %s\n", summary_path.c_str(),
                   error.c_str());
    }
  }

  if (overhead > kMaxOverhead) {
    std::fprintf(stderr, "FAIL: serving guard overhead %.2f%% exceeds %.2f%%\n",
                 overhead * 100.0, kMaxOverhead * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pol

int main(int argc, char** argv) { return pol::Run(argc, argv); }
