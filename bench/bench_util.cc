#include "bench/bench_util.h"

#include <cmath>
#include <cstdio>

#include "hexgrid/hexgrid.h"

namespace pol::bench {

sim::FleetConfig GlobalYearConfig(uint64_t seed) {
  sim::FleetConfig config;
  config.seed = seed;
  config.commercial_vessels = 100;
  config.noncommercial_vessels = 220;
  config.start_time = 1640995200;  // 2022-01-01.
  config.end_time = 1672531200;    // 2023-01-01.
  config.coastal_interval_s = 600;
  config.ocean_interval_s = 2400;
  return config;
}

RegionalScenario::RegionalScenario(std::vector<sim::Port> region_ports,
                                   const sim::FleetConfig& base)
    : ports(std::move(region_ports)), routes(&ports), config(base) {
  config.ports = &ports;
  config.routes = &routes;
}

std::vector<sim::Port> PortsInBox(double lat_min, double lat_max,
                                  double lng_min, double lng_max) {
  std::vector<sim::Port> selected;
  for (const sim::Port& port : sim::PortDatabase::Global().ports()) {
    if (port.position.lat_deg >= lat_min && port.position.lat_deg <= lat_max &&
        port.position.lng_deg >= lng_min && port.position.lng_deg <= lng_max) {
      selected.push_back(port);
    }
  }
  return selected;
}

double TimeSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths) {
  std::string line;
  for (size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 16;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-*s", width, cells[i].c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
}

std::string FormatCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter > 0 && counter % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++counter;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  return buf;
}

std::string FormatPercent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

namespace {

// Collects the per-character aggregate for a map box.
template <typename CellValue>
void ForEachMapChar(double lat_min, double lat_max, double lng_min,
                    double lng_max, int width, int height, int resolution,
                    const CellValue& value,
                    const std::function<void(int, int, double, bool)>& emit) {
  const double dlat = (lat_max - lat_min) / height;
  const double dlng = (lng_max - lng_min) / width;
  // Sample a few points per character box (enough to hit res-6 cells).
  const int subsamples = 3;
  for (int row = 0; row < height; ++row) {
    for (int col = 0; col < width; ++col) {
      double sum = 0.0;
      int hits = 0;
      for (int sy = 0; sy < subsamples; ++sy) {
        for (int sx = 0; sx < subsamples; ++sx) {
          const double lat = lat_max - (row + (sy + 0.5) / subsamples) * dlat;
          const double lng = lng_min + (col + (sx + 0.5) / subsamples) * dlng;
          const hex::CellIndex cell = hex::LatLngToCell({lat, lng}, resolution);
          const double v = value(cell);
          if (!std::isnan(v)) {
            sum += v;
            ++hits;
          }
        }
      }
      emit(row, col, hits > 0 ? sum / hits : 0.0, hits > 0);
    }
  }
}

}  // namespace

void RenderAsciiMap(const std::string& title, double lat_min, double lat_max,
                    double lng_min, double lng_max, int width, int height,
                    int resolution,
                    const std::function<double(hex::CellIndex)>& value) {
  // First pass: range.
  double lo = 1e300;
  double hi = -1e300;
  std::vector<std::vector<double>> grid(
      static_cast<size_t>(height),
      std::vector<double>(static_cast<size_t>(width), std::nan("")));
  ForEachMapChar(lat_min, lat_max, lng_min, lng_max, width, height,
                 resolution, value,
                 [&](int row, int col, double v, bool has) {
                   if (!has) return;
                   grid[static_cast<size_t>(row)][static_cast<size_t>(col)] = v;
                   lo = std::min(lo, v);
                   hi = std::max(hi, v);
                 });
  std::printf("%s", ("\n" + title).c_str());
  if (lo > hi) {
    std::printf(" (no data)\n");
    return;
  }
  std::printf("  [low %.1f .. high %.1f]\n", lo, hi);
  static const char kScale[] = " .:-=+*#%@";
  const double span = hi > lo ? hi - lo : 1.0;
  for (int row = 0; row < height; ++row) {
    std::string line;
    for (int col = 0; col < width; ++col) {
      const double v = grid[static_cast<size_t>(row)][static_cast<size_t>(col)];
      if (std::isnan(v)) {
        line.push_back(' ');
      } else {
        const int idx = 1 + static_cast<int>((v - lo) / span * 8.999);
        line.push_back(kScale[std::min(9, std::max(1, idx))]);
      }
    }
    std::printf("|%s|\n", line.c_str());
  }
}

void RenderCourseMap(const std::string& title, double lat_min,
                     double lat_max, double lng_min, double lng_max,
                     int width, int height, int resolution,
                     const std::function<double(hex::CellIndex)>& course) {
  std::printf("%s", ("\n" + title + "\n").c_str());
  // Eight compass sectors rendered with distinct glyphs.
  static const char kGlyphs[8] = {'^', '/', '>', 'L', 'v', 'J', '<', '\\'};
  // One centre sample per character: directions are circular, so the
  // box-mean used for scalar maps would corrupt values near north.
  std::vector<std::vector<char>> grid(
      static_cast<size_t>(height),
      std::vector<char>(static_cast<size_t>(width), ' '));
  const double dlat = (lat_max - lat_min) / height;
  const double dlng = (lng_max - lng_min) / width;
  for (int row = 0; row < height; ++row) {
    for (int col = 0; col < width; ++col) {
      const double lat = lat_max - (row + 0.5) * dlat;
      const double lng = lng_min + (col + 0.5) * dlng;
      const double deg =
          course(hex::LatLngToCell({lat, lng}, resolution));
      if (std::isnan(deg)) continue;
      const int sector =
          static_cast<int>(std::fmod(deg + 22.5 + 360.0, 360.0) / 45.0) % 8;
      grid[static_cast<size_t>(row)][static_cast<size_t>(col)] =
          kGlyphs[sector];
    }
  }
  for (int row = 0; row < height; ++row) {
    std::printf("|%s|\n",
                std::string(grid[static_cast<size_t>(row)].begin(),
                            grid[static_cast<size_t>(row)].end())
                    .c_str());
  }
  std::printf("(glyphs: ^ north, > east, v south, < west, diagonals /L J\\)\n");
}

}  // namespace pol::bench
