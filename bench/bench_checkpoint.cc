// Checkpoint cost: what snapshotting the incremental InventoryBuilder
// every K chunks adds to a chunked pipeline run, and what a resume
// costs. Reported per interval K as human-readable rows plus one
// machine-readable `BENCH {...}` json line per configuration, and the
// same rows land in a summary file (default BENCH_checkpoint.json;
// `--report-out=<path>` overrides, empty disables), so the perf
// trajectory of the failure-containment layer can be tracked across
// commits.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/bench_util.h"
#include "core/checkpoint.h"
#include "core/inventory_builder.h"
#include "core/pipeline.h"
#include "obs/json.h"
#include "obs/report.h"
#include "sim/fleet.h"

namespace pol {
namespace {

constexpr int kChunks = 32;

sim::SimulationOutput BenchArchive() {
  sim::FleetConfig config;
  config.seed = 20240315;
  config.commercial_vessels = 60;
  config.noncommercial_vessels = 10;
  config.start_time = 1640995200;
  config.end_time = config.start_time + 60 * kSecondsPerDay;
  return sim::FleetSimulator(config).Run();
}

core::PipelineConfig BaseConfig() {
  core::PipelineConfig config;
  config.partitions = kChunks;
  config.chunks = kChunks;
  config.resolution = 6;
  return config;
}

uint64_t NewestSnapshotBytes(const core::CheckpointConfig& checkpoint) {
  const auto snapshots = core::CheckpointManager(checkpoint).ListSnapshots();
  if (snapshots.empty()) return 0;
  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(snapshots.back(), ec);
  return ec ? 0 : size;
}

int Run(int argc, char** argv) {
  std::string summary_path = "BENCH_checkpoint.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--report-out=", 0) == 0) {
      summary_path = arg.substr(std::string("--report-out=").size());
    }
  }

  bench::PrintHeader("Checkpoint cost vs interval K (chunked pipeline)");
  const sim::SimulationOutput archive = BenchArchive();
  std::printf("archive: %s records, %d chunks\n\n",
              bench::FormatCount(archive.reports.size()).c_str(), kChunks);

  // Baseline: same chunked run, checkpointing disabled.
  double baseline_s = 0.0;
  {
    const core::PipelineConfig config = BaseConfig();
    baseline_s = bench::TimeSeconds([&] {
      core::RunPipeline(archive.reports, archive.fleet, config);
    });
  }
  std::printf("baseline (no checkpointing): %.3f s\n\n", baseline_s);

  bench::PrintRow({"K", "snapshots", "snapshot size", "wall", "overhead",
                   "restore"},
                  {4, 10, 14, 9, 9, 9});
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pol_bench_checkpoint")
          .string();
  obs::Json results = obs::Json::Array();
  for (const int interval : {1, 2, 4, 8, 16}) {
    std::filesystem::remove_all(dir);
    core::PipelineConfig config = BaseConfig();
    config.checkpoint.directory = dir;
    config.checkpoint.interval_chunks = interval;
    config.checkpoint.keep = 2;

    core::PipelineResult result;
    const double wall_s = bench::TimeSeconds([&] {
      result = core::RunPipeline(archive.reports, archive.fleet, config);
    });
    const uint64_t snapshot_bytes = NewestSnapshotBytes(config.checkpoint);

    // Resume cost: detect the newest snapshot and restore the builder.
    core::ExtractorConfig extractor_config = config.extractor;
    extractor_config.resolution = config.resolution;
    double restore_s = bench::TimeSeconds([&] {
      const core::CheckpointManager manager(config.checkpoint);
      const Result<core::CheckpointState> state = manager.LoadLatest();
      if (state.ok()) {
        core::InventoryBuilder builder(extractor_config);
        (void)builder.RestoreState(state->builder_state);
      }
    });

    const double overhead = wall_s / baseline_s - 1.0;
    bench::PrintRow(
        {std::to_string(interval),
         std::to_string(result.coverage.checkpoints_written),
         bench::FormatBytes(snapshot_bytes),
         std::to_string(wall_s).substr(0, 5) + " s",
         bench::FormatPercent(overhead),
         std::to_string(restore_s).substr(0, 5) + " s"},
        {4, 10, 14, 9, 9, 9});

    std::printf(
        "BENCH {\"bench\":\"checkpoint\",\"interval_chunks\":%d,"
        "\"chunks\":%d,\"records\":%llu,\"snapshots\":%llu,"
        "\"snapshot_bytes\":%llu,\"wall_s\":%.4f,\"baseline_wall_s\":%.4f,"
        "\"overhead_frac\":%.4f,\"restore_s\":%.4f}\n",
        interval, kChunks,
        static_cast<unsigned long long>(archive.reports.size()),
        static_cast<unsigned long long>(result.coverage.checkpoints_written),
        static_cast<unsigned long long>(snapshot_bytes), wall_s, baseline_s,
        overhead, restore_s);

    obs::Json entry = obs::Json::Object();
    entry.Set("interval_chunks", interval);
    entry.Set("snapshots", result.coverage.checkpoints_written);
    entry.Set("snapshot_bytes", snapshot_bytes);
    entry.Set("wall_s", wall_s);
    entry.Set("overhead_frac", overhead);
    entry.Set("restore_s", restore_s);
    results.Append(std::move(entry));
  }
  std::filesystem::remove_all(dir);

  if (!summary_path.empty()) {
    obs::Json summary = obs::Json::Object();
    summary.Set("schema", "pol.bench_summary/1");
    summary.Set("bench", "checkpoint");
    summary.Set("records", static_cast<uint64_t>(archive.reports.size()));
    summary.Set("chunks", kChunks);
    summary.Set("baseline_wall_s", baseline_s);
    summary.Set("results", std::move(results));
    std::string error;
    if (!obs::WriteJsonFile(summary_path, summary, &error)) {
      std::fprintf(stderr, "cannot write %s: %s\n", summary_path.c_str(),
                   error.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace pol

int main(int argc, char** argv) { return pol::Run(argc, argv); }
