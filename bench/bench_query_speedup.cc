// Section 4 "hits" reproduction plus the serving-side index benchmark.
//
// Part 1 — the paper's claim: answering a per-location query from the
// inventory touches 99.73% (res 6) / 98.44% (res 7) fewer rows than a
// full scan of the archive. This bench materializes both sides: (a)
// online computation of a cell's statistics by scanning every record,
// (b) one lookup into the sealed inventory snapshot.
//
// Part 2 — CellsForRoute scan vs snapshot route index: a synthetic
// inventory with >= 10k route-grouping summaries, querying corridor
// cells per (origin, destination, segment) key through the legacy
// full-scan reference path and through the seal-time secondary index.
//
// `--report-out=<path>` writes the measured numbers as a
// pol.bench_summary/1 JSON file (default BENCH_query.json).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/inventory_snapshot.h"
#include "core/pipeline.h"
#include "hexgrid/hexgrid.h"
#include "obs/json.h"
#include "obs/report.h"
#include "stats/welford.h"

namespace pol {
namespace {

struct RouteKey {
  sim::PortId origin;
  sim::PortId destination;
  ais::MarketSegment segment;
};

// A synthetic inventory whose (cell, origin, destination, type) grouping
// set carries `routes` port pairs of ~`cells_per_route` corridor cells
// each — the scale knob for the route-index benchmark.
core::Inventory SyntheticRouteInventory(int routes, int cells_per_route,
                                        std::vector<RouteKey>* keys) {
  Rng rng(20260808);
  core::SummaryMap map;
  for (int r = 0; r < routes; ++r) {
    const auto origin = static_cast<sim::PortId>(1 + rng.NextBelow(400));
    const auto destination =
        static_cast<sim::PortId>(1 + rng.NextBelow(400));
    const auto segment =
        static_cast<ais::MarketSegment>(rng.NextBelow(ais::kNumMarketSegments));
    keys->push_back({origin, destination, segment});
    for (int c = 0; c < cells_per_route; ++c) {
      const geo::LatLng position{rng.Uniform(-60.0, 60.0),
                                 rng.Uniform(-180.0, 180.0)};
      const hex::CellIndex cell = hex::LatLngToCell(position, 6);
      map.emplace(core::KeyCellRouteType(cell, origin, destination, segment),
                  core::CellSummary());
    }
  }
  return core::Inventory(6, std::move(map));
}

int Run(int argc, char** argv) {
  std::string summary_path = "BENCH_query.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--report-out=", 0) == 0) {
      summary_path =
          std::string(arg.substr(std::string("--report-out=").size()));
    }
  }

  bench::PrintHeader("Query cost: inventory lookup vs full scan");
  sim::FleetConfig config = bench::GlobalYearConfig();
  config.noncommercial_vessels = 0;
  sim::SimulationOutput sim_output = sim::FleetSimulator(config).Run();

  core::PipelineConfig pipeline_config;
  pipeline_config.partitions = 8;
  pipeline_config.resolution = 6;
  core::PipelineResult result = core::RunPipeline(
      sim_output.reports, sim_output.fleet, pipeline_config);
  const core::Inventory& inv = *result.inventory;
  const std::shared_ptr<const core::InventorySnapshot> snapshot = inv.Seal();
  const uint64_t archive_rows = sim_output.reports.size();

  // Query workload: the busiest 50 cells (realistic monitoring targets).
  std::vector<hex::CellIndex> queries;
  {
    std::vector<std::pair<uint64_t, hex::CellIndex>> ranked;
    snapshot->VisitGroupingSet(
        core::GroupingSet::kCell,
        [&ranked](const core::GroupKey& key,
                  const core::CellSummary& summary) {
          ranked.push_back({summary.record_count(), key.cell});
        });
    std::sort(ranked.rbegin(), ranked.rend());
    for (size_t i = 0; i < std::min<size_t>(50, ranked.size()); ++i) {
      queries.push_back(ranked[i].second);
    }
  }

  // (a) Full scan per query: compute the cell's mean speed online.
  volatile double sink = 0.0;
  uint64_t scan_rows_touched = 0;
  const double scan_s = bench::TimeSeconds([&] {
    for (const hex::CellIndex target : queries) {
      stats::Welford speed;
      for (const auto& report : sim_output.reports) {
        ++scan_rows_touched;
        if (hex::LatLngToCell({report.lat_deg, report.lng_deg}, 6) ==
            target) {
          speed.Add(report.sog_knots);
        }
      }
      sink = sink + speed.Mean();
    }
  });

  // (b) Snapshot lookups — the serving read path.
  uint64_t lookup_rows_touched = 0;
  const double lookup_s = bench::TimeSeconds([&] {
    for (int repeat = 0; repeat < 1000; ++repeat) {
      for (const hex::CellIndex target : queries) {
        const core::CellSummary* summary = snapshot->Cell(target);
        ++lookup_rows_touched;  // One summary row per query.
        if (summary != nullptr) sink = sink + summary->speed().Mean();
      }
    }
  });
  const double lookup_per_query_s =
      lookup_s / (1000.0 * static_cast<double>(queries.size()));
  const double scan_per_query_s =
      scan_s / static_cast<double>(queries.size());

  bench::PrintHeader("Results (50 location queries)");
  std::printf("archive rows:                     %s\n",
              bench::FormatCount(archive_rows).c_str());
  std::printf("full scan  — rows/query:          %s, %.3f s/query\n",
              bench::FormatCount(archive_rows).c_str(), scan_per_query_s);
  std::printf("snapshot   — rows/query:          1, %.9f s/query\n",
              lookup_per_query_s);
  const double fewer_hits =
      1.0 - 1.0 / static_cast<double>(archive_rows);
  std::printf("fewer rows touched:               %s (paper: 99.73%% at res 6)\n",
              bench::FormatPercent(fewer_hits, 4).c_str());
  std::printf("wall-clock speedup:               %.0fx\n",
              scan_per_query_s / lookup_per_query_s);
  const bool hits_pass = fewer_hits > 0.99;
  std::printf("shape check (>99%% fewer hits):   %s\n",
              hits_pass ? "PASS" : "FAIL");

  // Part 2: CellsForRoute, legacy full scan vs the seal-time route
  // index, on >= 10k route-grouping summaries.
  bench::PrintHeader("CellsForRoute: summary-map scan vs snapshot index");
  std::vector<RouteKey> route_keys;
  const core::Inventory synthetic =
      SyntheticRouteInventory(/*routes=*/250, /*cells_per_route=*/45,
                              &route_keys);
  const std::shared_ptr<const core::InventorySnapshot> synthetic_snapshot =
      synthetic.Seal();
  const uint64_t route_summaries = synthetic.size();
  std::printf("route-grouping summaries:         %s across %zu routes\n",
              bench::FormatCount(route_summaries).c_str(), route_keys.size());

  // Workload: every synthetic route once, half of them queried through
  // the reversed-pair fallback.
  std::vector<RouteKey> workload = route_keys;
  for (size_t i = 0; i < workload.size(); i += 2) {
    std::swap(workload[i].origin, workload[i].destination);
  }

  // Both paths must return identical corridors before timing them.
  for (const RouteKey& q : workload) {
    const auto scanned =
        synthetic.CellsForRouteScan(q.origin, q.destination, q.segment);
    const auto indexed =
        synthetic_snapshot->CellsForRoute(q.origin, q.destination, q.segment);
    if (scanned != indexed) {
      std::printf("scan/index mismatch for route %u -> %u — FAIL\n",
                  static_cast<unsigned>(q.origin),
                  static_cast<unsigned>(q.destination));
      return 1;
    }
  }

  uint64_t scan_cells = 0;
  const double route_scan_s = bench::TimeSeconds([&] {
    for (const RouteKey& q : workload) {
      scan_cells +=
          synthetic.CellsForRouteScan(q.origin, q.destination, q.segment)
              .size();
    }
  });
  constexpr int kIndexRepeats = 50;
  uint64_t indexed_cells = 0;
  const double route_index_s = bench::TimeSeconds([&] {
    for (int repeat = 0; repeat < kIndexRepeats; ++repeat) {
      for (const RouteKey& q : workload) {
        indexed_cells += synthetic_snapshot
                             ->CellsForRoute(q.origin, q.destination,
                                             q.segment)
                             .size();
      }
    }
  });
  const double route_scan_per_query_s =
      route_scan_s / static_cast<double>(workload.size());
  const double route_index_per_query_s =
      route_index_s /
      static_cast<double>(kIndexRepeats * workload.size());
  const double route_speedup = route_scan_per_query_s / route_index_per_query_s;
  std::printf("summary-map scan:                 %.9f s/query\n",
              route_scan_per_query_s);
  std::printf("snapshot route index:             %.9f s/query\n",
              route_index_per_query_s);
  std::printf("speedup:                          %.0fx\n", route_speedup);
  const bool route_pass = route_speedup >= 10.0;
  std::printf("shape check (>=10x):              %s\n",
              route_pass ? "PASS" : "FAIL");
  (void)sink;
  (void)scan_cells;
  (void)indexed_cells;

  if (!summary_path.empty()) {
    obs::Json summary = obs::Json::Object();
    summary.Set("schema", "pol.bench_summary/1");
    summary.Set("bench", "query_speedup");
    obs::Json location = obs::Json::Object();
    location.Set("archive_rows", static_cast<int64_t>(archive_rows));
    location.Set("scan_s_per_query", scan_per_query_s);
    location.Set("snapshot_s_per_query", lookup_per_query_s);
    location.Set("fewer_hits_fraction", fewer_hits);
    location.Set("pass", hits_pass);
    summary.Set("location_query", std::move(location));
    obs::Json route = obs::Json::Object();
    route.Set("route_summaries", static_cast<int64_t>(route_summaries));
    route.Set("routes", static_cast<int64_t>(route_keys.size()));
    route.Set("scan_s_per_query", route_scan_per_query_s);
    route.Set("indexed_s_per_query", route_index_per_query_s);
    route.Set("speedup", route_speedup);
    route.Set("pass", route_pass);
    summary.Set("route_query", std::move(route));
    std::string error;
    if (!obs::WriteJsonFile(summary_path, summary, &error)) {
      std::fprintf(stderr, "cannot write %s: %s\n", summary_path.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("\nreport written to %s\n", summary_path.c_str());
  }
  return (hits_pass && route_pass) ? 0 : 1;
}

}  // namespace
}  // namespace pol

int main(int argc, char** argv) { return pol::Run(argc, argv); }
