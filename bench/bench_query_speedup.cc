// Section 4 "hits" reproduction: the paper reports that answering a
// per-location query from the inventory touches 99.73% (res 6) / 98.44%
// (res 7) fewer rows than a full scan of the archive.
//
// This bench materializes both sides: (a) online computation of a cell's
// statistics by scanning every record, (b) one hash lookup into the
// prebuilt inventory. It reports rows touched and wall-clock time.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/pipeline.h"
#include "hexgrid/hexgrid.h"
#include "stats/welford.h"

namespace pol {
namespace {

int Run() {
  bench::PrintHeader("Query cost: inventory lookup vs full scan");
  sim::FleetConfig config = bench::GlobalYearConfig();
  config.noncommercial_vessels = 0;
  sim::SimulationOutput sim_output = sim::FleetSimulator(config).Run();

  core::PipelineConfig pipeline_config;
  pipeline_config.partitions = 8;
  pipeline_config.resolution = 6;
  core::PipelineResult result = core::RunPipeline(
      sim_output.reports, sim_output.fleet, pipeline_config);
  const core::Inventory& inv = *result.inventory;
  const uint64_t archive_rows = sim_output.reports.size();

  // Query workload: the busiest 50 cells (realistic monitoring targets).
  std::vector<hex::CellIndex> queries;
  {
    std::vector<std::pair<uint64_t, hex::CellIndex>> ranked;
    for (const auto& [key, summary] : inv.summaries()) {
      if (key.grouping_set == 0) {
        ranked.push_back({summary.record_count(), key.cell});
      }
    }
    std::sort(ranked.rbegin(), ranked.rend());
    for (size_t i = 0; i < std::min<size_t>(50, ranked.size()); ++i) {
      queries.push_back(ranked[i].second);
    }
  }

  // (a) Full scan per query: compute the cell's mean speed online.
  volatile double sink = 0.0;
  uint64_t scan_rows_touched = 0;
  const double scan_s = bench::TimeSeconds([&] {
    for (const hex::CellIndex target : queries) {
      stats::Welford speed;
      for (const auto& report : sim_output.reports) {
        ++scan_rows_touched;
        if (hex::LatLngToCell({report.lat_deg, report.lng_deg}, 6) ==
            target) {
          speed.Add(report.sog_knots);
        }
      }
      sink = sink + speed.Mean();
    }
  });

  // (b) Inventory lookups.
  uint64_t lookup_rows_touched = 0;
  const double lookup_s = bench::TimeSeconds([&] {
    for (int repeat = 0; repeat < 1000; ++repeat) {
      for (const hex::CellIndex target : queries) {
        const core::CellSummary* summary = inv.Cell(target);
        ++lookup_rows_touched;  // One summary row per query.
        if (summary != nullptr) sink = sink + summary->speed().Mean();
      }
    }
  });
  const double lookup_per_query_s =
      lookup_s / (1000.0 * static_cast<double>(queries.size()));
  const double scan_per_query_s =
      scan_s / static_cast<double>(queries.size());

  bench::PrintHeader("Results (50 location queries)");
  std::printf("archive rows:                     %s\n",
              bench::FormatCount(archive_rows).c_str());
  std::printf("full scan  — rows/query:          %s, %.3f s/query\n",
              bench::FormatCount(archive_rows).c_str(), scan_per_query_s);
  std::printf("inventory  — rows/query:          1, %.9f s/query\n",
              lookup_per_query_s);
  const double fewer_hits =
      1.0 - 1.0 / static_cast<double>(archive_rows);
  std::printf("fewer rows touched:               %s (paper: 99.73%% at res 6)\n",
              bench::FormatPercent(fewer_hits, 4).c_str());
  std::printf("wall-clock speedup:               %.0fx\n",
              scan_per_query_s / lookup_per_query_s);
  std::printf("shape check (>99%% fewer hits):   %s\n",
              fewer_hits > 0.99 ? "PASS" : "FAIL");
  (void)sink;
  return 0;
}

}  // namespace
}  // namespace pol

int main() { return pol::Run(); }
