// Snapshot-store cold start: time-to-first-query from durable bytes.
// One sealed inventory is persisted two ways, then restored both ways:
//
//   load+seal - Inventory::LoadFromFile (parse + rebuild the hash map)
//               followed by Seal() (sort keys, build the route and
//               segment indexes) — the only cold-start path before the
//               store subsystem existed
//   mmap      - core::OpenLatestSnapshot over a SnapshotStore: map the
//               newest POLSNAP1 generation, CRC-validate, serve in
//               place; summaries decode lazily on first access
//
// Every restored snapshot answers the same probe battery (corridor
// fetch + point lookups) and the checksums must agree, so the timed
// paths are proven to serve identical data. The acceptance bar is
// mmap cold start at least kMinSpeedup x faster than load+seal,
// estimated as the ratio of per-path minimum round times (min over
// interleaved rounds converges to the true cost; ambient load only
// ever adds time). The verdict is sequential: a pass ending under the
// bar runs another block of rounds into the same minima (up to three
// blocks) before failing. Exits non-zero below the bar so
// tools/run_tier1.sh --store can gate on it.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/status.h"
#include "core/inventory.h"
#include "core/inventory_snapshot.h"
#include "core/snapshot_codec.h"
#include "hexgrid/hexgrid.h"
#include "obs/json.h"
#include "obs/report.h"
#include "store/snapshot_store.h"

namespace pol {
namespace {

constexpr int kRounds = 9;
constexpr double kMinSpeedup = 10.0;
constexpr int kGenerations = 96;
constexpr int kCellsPerGeneration = 64;

constexpr sim::PortId kOrigin = 3;
constexpr sim::PortId kDestination = 21;
constexpr auto kSegment = ais::MarketSegment::kContainer;

// Same corridor shape as bench_serving_telemetry, scaled up: the cost
// being amortized is per-summary parse + sort work, so size matters.
core::Inventory BuildInventory() {
  core::SummaryMap summaries;
  for (int g = 0; g < kGenerations; ++g) {
    for (int i = 0; i < kCellsPerGeneration; ++i) {
      const hex::CellIndex cell =
          hex::LatLngToCell({1.0 + 0.2 * g, 100.0 + 0.4 * i}, 6);
      core::PipelineRecord r;
      r.mmsi = 215000001;
      r.trip_id = static_cast<uint64_t>(g * 1000 + i);
      r.origin = kOrigin;
      r.destination = kDestination;
      r.segment = kSegment;
      r.sog_knots = 13;
      r.cog_deg = 90;
      r.heading_deg = 90;
      r.eto_s = 3600;
      r.ata_s = 7200;
      for (const core::GroupKey& key :
           {core::KeyCell(cell), core::KeyCellType(cell, kSegment),
            core::KeyCellRouteType(cell, kOrigin, kDestination, kSegment)}) {
        auto [it, inserted] = summaries.try_emplace(key);
        (void)inserted;
        it->second.Add(r);
      }
    }
  }
  return core::Inventory(6, std::move(summaries));
}

// Time-to-first-query probe: the corridor fetch plus a sample of point
// lookups. Runs against each freshly restored snapshot inside the
// timed region, so both paths are measured end-to-end to answers (the
// mmap path pays its lazy first-touch decodes for the sampled cells) —
// but the probe is a serving request, not a full-table replay, because
// cold start is over once the first queries answer.
uint64_t Probe(const core::InventoryQuery& q) {
  constexpr size_t kSampledLookups = 64;
  uint64_t checksum = q.DistinctCells();
  const std::vector<hex::CellIndex> corridor =
      q.CellsForRoute(kOrigin, kDestination, kSegment);
  checksum += corridor.size();
  const size_t stride = corridor.size() / kSampledLookups + 1;
  for (size_t i = 0; i < corridor.size(); i += stride) {
    const core::CellSummary* s = q.Cell(corridor[i]);
    if (s != nullptr) checksum += s->record_count();
    checksum += q.SegmentsAt(corridor[i]).size();
  }
  return checksum;
}

// Full-table checksum: every corridor cell materialized. Untimed — it
// proves both restore paths serve byte-identical data before any round
// is scored.
uint64_t FullChecksum(const core::InventoryQuery& q) {
  uint64_t checksum = q.DistinctCells();
  const std::vector<hex::CellIndex> corridor =
      q.CellsForRoute(kOrigin, kDestination, kSegment);
  checksum += corridor.size();
  for (const hex::CellIndex cell : corridor) {
    const core::CellSummary* s = q.Cell(cell);
    if (s != nullptr) checksum += s->record_count();
    checksum += q.SegmentsAt(cell).size();
  }
  return checksum;
}

int Run(int argc, char** argv) {
  std::string summary_path = "BENCH_snapshot_store.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--report-out=", 0) == 0) {
      summary_path = arg.substr(std::string("--report-out=").size());
    }
  }

  bench::PrintHeader("Snapshot-store cold start (mmap vs load+seal)");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pol_bench_snapshot_store")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string legacy_path = dir + "/inventory.bin";

  const core::Inventory inventory = BuildInventory();
  const Status saved = inventory.SaveToFile(legacy_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "FAIL: SaveToFile: %s\n", saved.message().c_str());
    return 1;
  }
  store::SnapshotStoreOptions options;
  options.directory = dir + "/snapshots";
  store::SnapshotStore snapshot_store(options);
  const std::shared_ptr<const core::InventorySnapshot> sealed =
      inventory.Seal();
  uint64_t generation = 0;
  const Status published = sealed->WriteTo(&snapshot_store, &generation);
  if (!published.ok()) {
    std::fprintf(stderr, "FAIL: WriteTo: %s\n", published.message().c_str());
    return 1;
  }

  const uint64_t store_bytes =
      std::filesystem::file_size(snapshot_store.GenerationPath(generation));
  std::printf("inventory: %s summaries, legacy file %s, POLSNAP1 %s\n\n",
              bench::FormatCount(inventory.size()).c_str(),
              bench::FormatBytes(std::filesystem::file_size(legacy_path))
                  .c_str(),
              bench::FormatBytes(store_bytes).c_str());

  const uint64_t expected = Probe(*sealed);
  bool failed = false;
  auto load_seal_round = [&]() -> uint64_t {
    Result<core::Inventory> loaded = core::Inventory::LoadFromFile(legacy_path);
    if (!loaded.ok()) {
      failed = true;
      return 0;
    }
    return Probe(*loaded->Seal());
  };
  auto mmap_round = [&]() -> uint64_t {
    const Result<std::shared_ptr<const core::InventorySnapshot>> mapped =
        core::OpenLatestSnapshot(snapshot_store);
    if (!mapped.ok()) {
      failed = true;
      return 0;
    }
    return Probe(**mapped);
  };

  // Untimed full-table equality: both restore paths must serve exactly
  // what was sealed before any round is scored.
  {
    const uint64_t full_expected = FullChecksum(*sealed);
    const Result<core::Inventory> loaded =
        core::Inventory::LoadFromFile(legacy_path);
    const Result<std::shared_ptr<const core::InventorySnapshot>> mapped =
        core::OpenLatestSnapshot(snapshot_store);
    if (!loaded.ok() || !mapped.ok() ||
        FullChecksum(*loaded->Seal()) != full_expected ||
        FullChecksum(**mapped) != full_expected) {
      std::fprintf(stderr,
                   "FAIL: restored snapshots disagree with the sealed one\n");
      return 1;
    }
  }

  // Untimed warmup (page cache, allocator), then interleaved rounds.
  uint64_t checksum = load_seal_round() + mmap_round();
  double load_seal_s = 1e300;
  double mmap_s = 1e300;
  double speedup = 0.0;
  bool diverged = false;
  auto measure = [&] {
    for (int round = 0; round < kRounds; ++round) {
      uint64_t load_seal_probe = 0;
      uint64_t mmap_probe = 0;
      const double load_round =
          bench::TimeSeconds([&] { load_seal_probe = load_seal_round(); });
      const double map_round =
          bench::TimeSeconds([&] { mmap_probe = mmap_round(); });
      if (failed) return;
      if (load_seal_probe != expected || mmap_probe != expected) {
        diverged = true;
        return;
      }
      checksum += load_seal_probe + mmap_probe;
      load_seal_s = std::min(load_seal_s, load_round);
      mmap_s = std::min(mmap_s, map_round);
    }
    speedup = load_seal_s / mmap_s;
  };
  for (int block = 0; block < 3; ++block) {
    measure();
    if (failed || diverged || speedup >= kMinSpeedup) break;
    std::printf("speedup %.1fx under the bar after block %d; extending\n",
                speedup, block + 1);
  }
  std::filesystem::remove_all(dir);
  if (failed) {
    std::fprintf(stderr, "FAIL: a cold-start path returned an error\n");
    return 1;
  }
  if (diverged) {
    std::fprintf(stderr,
                 "FAIL: restored snapshots disagree with the sealed one\n");
    return 1;
  }

  std::printf("load+seal (parse + rebuild + sort): %.4f s (min of %d)\n",
              load_seal_s, kRounds);
  std::printf("mmap      (map + CRC + lazy serve): %.4f s (min of %d)\n",
              mmap_s, kRounds);
  std::printf("cold-start speedup:                 %.1fx (bar: %.0fx)\n",
              speedup, kMinSpeedup);

  std::printf(
      "BENCH {\"bench\":\"snapshot_store\",\"summaries\":%llu,"
      "\"file_bytes\":%llu,\"rounds\":%d,\"load_seal_s\":%.4f,"
      "\"mmap_s\":%.4f,\"speedup\":%.1f,\"checksum\":%llu}\n",
      static_cast<unsigned long long>(inventory.size()),
      static_cast<unsigned long long>(store_bytes), kRounds, load_seal_s,
      mmap_s, speedup, static_cast<unsigned long long>(checksum));

  if (!summary_path.empty()) {
    obs::Json summary = obs::Json::Object();
    summary.Set("schema", "pol.bench_summary/1");
    summary.Set("bench", "snapshot_store");
    summary.Set("summaries", static_cast<uint64_t>(inventory.size()));
    summary.Set("file_bytes", store_bytes);
    summary.Set("rounds", kRounds);
    summary.Set("load_seal_s", load_seal_s);
    summary.Set("mmap_s", mmap_s);
    summary.Set("speedup", speedup);
    summary.Set("min_speedup", kMinSpeedup);
    std::string error;
    if (!obs::WriteJsonFile(summary_path, summary, &error)) {
      std::fprintf(stderr, "cannot write %s: %s\n", summary_path.c_str(),
                   error.c_str());
    }
  }

  if (speedup < kMinSpeedup) {
    std::fprintf(stderr, "FAIL: cold-start speedup %.1fx below %.0fx bar\n",
                 speedup, kMinSpeedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pol

int main(int argc, char** argv) { return pol::Run(argc, argv); }
