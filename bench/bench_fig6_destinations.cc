// Figure 6 reproduction: cells whose most frequent destination is the
// port of Singapore, Shanghai or Rotterdam.
//
// Reproduced shape: each port's cell set forms a coherent corridor
// leading toward it (quantified via the mean bearing alignment between
// cell positions and the port), and the three sets are largely disjoint.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/pipeline.h"
#include "geo/geodesic.h"
#include "hexgrid/hexgrid.h"

namespace pol {
namespace {

int Run() {
  bench::PrintHeader(
      "Figure 6: cells with top destination Singapore / Shanghai / "
      "Rotterdam (res 6)");
  sim::FleetConfig config = bench::GlobalYearConfig();
  config.noncommercial_vessels = 0;
  sim::SimulationOutput sim_output = sim::FleetSimulator(config).Run();

  core::PipelineConfig pipeline_config;
  pipeline_config.partitions = 8;
  pipeline_config.resolution = 6;
  pipeline_config.extractor.gi_cell_route_type = false;
  core::PipelineResult result = core::RunPipeline(
      sim_output.reports, sim_output.fleet, pipeline_config);
  const core::Inventory& inv = *result.inventory;

  const sim::PortDatabase& ports = sim::PortDatabase::Global();
  const sim::PortId singapore = (*ports.FindByName("Singapore"))->id;
  const sim::PortId shanghai = (*ports.FindByName("Shanghai"))->id;
  const sim::PortId rotterdam = (*ports.FindByName("Rotterdam"))->id;

  // Per-cell top destination from the (cell) grouping set.
  std::vector<std::pair<hex::CellIndex, sim::PortId>> top;
  inv.VisitGroupingSet(
      core::GroupingSet::kCell,
      [&top](const core::GroupKey& key, const core::CellSummary& summary) {
        const auto ranked = summary.destinations().TopN(1);
        if (ranked.empty()) return;
        top.push_back({key.cell, static_cast<sim::PortId>(ranked[0].key)});
      });

  auto analyze = [&](const char* name, sim::PortId port_id) {
    const sim::Port& port = **ports.Find(port_id);
    uint64_t cells = 0;
    double sum_km = 0;
    uint64_t within_reach = 0;
    for (const auto& [cell, dest] : top) {
      if (dest != port_id) continue;
      ++cells;
      const double km =
          geo::HaversineKm(hex::CellToLatLng(cell), port.position);
      sum_km += km;
      if (km < 15000) ++within_reach;
    }
    std::printf("%-12s top-destination cells: %6s  mean distance %7.0f km\n",
                name, bench::FormatCount(cells).c_str(),
                cells == 0 ? 0.0 : sum_km / cells);
    return cells;
  };

  bench::PrintHeader("Cell counts per highlighted port");
  const uint64_t n_sg = analyze("Singapore", singapore);
  const uint64_t n_sh = analyze("Shanghai", shanghai);
  const uint64_t n_rt = analyze("Rotterdam", rotterdam);

  // Map: 1/2/3 marks the three ports' cells.
  bench::PrintHeader(
      "Corridor map (S = to Singapore, H = to Shanghai, R = to Rotterdam)");
  const int width = 110;
  const int height = 34;
  const double lat_max = 70, lat_min = -65, lng_min = -180, lng_max = 180;
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (const auto& [cell, dest] : top) {
    char mark = 0;
    if (dest == singapore) mark = 'S';
    if (dest == shanghai) mark = 'H';
    if (dest == rotterdam) mark = 'R';
    if (mark == 0) continue;
    const geo::LatLng p = hex::CellToLatLng(cell);
    const int row = static_cast<int>((lat_max - p.lat_deg) /
                                     (lat_max - lat_min) * height);
    const int col = static_cast<int>((p.lng_deg - lng_min) /
                                     (lng_max - lng_min) * width);
    if (row >= 0 && row < height && col >= 0 && col < width) {
      grid[static_cast<size_t>(row)][static_cast<size_t>(col)] = mark;
    }
  }
  for (const auto& line : grid) std::printf("|%s|\n", line.c_str());

  // Shape check: each port's cell set forms connected corridors rather
  // than scattered noise — the paper notes "the cell distribution is
  // sparse, however the routes vessels follow towards those ports ...
  // are evident". Measured as the fraction of cells with another
  // same-destination cell within ~3 cell widths. (Distance to the port
  // itself is NOT a valid check: corridors legitimately stretch across
  // the globe — a Channel cell bound for Singapore is nearer Rotterdam.)
  bench::PrintHeader("Shape checks");
  auto corridor_continuity = [&](sim::PortId port_id) {
    std::vector<geo::LatLng> own;
    for (const auto& [cell, dest] : top) {
      if (dest == port_id) own.push_back(hex::CellToLatLng(cell));
    }
    if (own.size() < 2) return 0.0;
    const double reach_km = hex::EdgeLengthKm(6) * 6.0;
    uint64_t chained = 0;
    for (size_t i = 0; i < own.size(); ++i) {
      for (size_t j = 0; j < own.size(); ++j) {
        if (i != j && geo::HaversineKm(own[i], own[j]) <= reach_km) {
          ++chained;
          break;
        }
      }
    }
    return static_cast<double>(chained) / static_cast<double>(own.size());
  };
  std::printf("cells exist for all three ports:   %s (%llu/%llu/%llu)\n",
              (n_sg > 0 && n_sh > 0 && n_rt > 0) ? "PASS" : "FAIL",
              static_cast<unsigned long long>(n_sg),
              static_cast<unsigned long long>(n_sh),
              static_cast<unsigned long long>(n_rt));
  const double cont_sg = corridor_continuity(singapore);
  const double cont_sh = corridor_continuity(shanghai);
  const double cont_rt = corridor_continuity(rotterdam);
  std::printf(
      "corridor continuity (cells with a same-destination neighbour): "
      "%.0f%% / %.0f%% / %.0f%%  %s\n",
      cont_sg * 100, cont_sh * 100, cont_rt * 100,
      (cont_sg > 0.7 && cont_sh > 0.7 && cont_rt > 0.7) ? "PASS" : "FAIL");
  return 0;
}

}  // namespace
}  // namespace pol

int main() { return pol::Run(); }
