// Ablation: uniform vs adaptive (non-uniform) inventory — the paper's
// section-5 future work ("larger cells in open sea areas ... high
// resolution in dense areas"), implemented and measured here.
//
// Sweeps the density threshold and reports cell counts, footprint and
// lookup behaviour against the uniform fine-resolution inventory.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/adaptive.h"
#include "core/pipeline.h"
#include "hexgrid/hexgrid.h"

namespace pol {
namespace {

int Run() {
  bench::PrintHeader(
      "Ablation: uniform vs adaptive inventory (future work, section 5)");
  sim::FleetConfig config = bench::GlobalYearConfig();
  config.noncommercial_vessels = 0;
  sim::SimulationOutput sim_output = sim::FleetSimulator(config).Run();

  core::PipelineConfig pipeline_config;
  pipeline_config.partitions = 8;
  pipeline_config.resolution = 7;
  pipeline_config.extractor.gi_cell_type = false;
  pipeline_config.extractor.gi_cell_route_type = false;
  core::PipelineResult result = core::RunPipeline(
      sim_output.reports, sim_output.fleet, pipeline_config);
  const core::Inventory& fine = *result.inventory;
  const uint64_t fine_cells = fine.DistinctCells();
  std::printf("uniform res-7 inventory: %s cells\n",
              bench::FormatCount(fine_cells).c_str());

  // Lookup workload: trip positions (covered by the fine inventory).
  std::vector<geo::LatLng> probes;
  for (size_t i = 0; i < sim_output.reports.size() && probes.size() < 3000;
       i += 97) {
    const auto& report = sim_output.reports[i];
    if (!ais::ValidatePositionReport(report).ok()) continue;
    const geo::LatLng p{report.lat_deg, report.lng_deg};
    if (fine.AtPosition(p) != nullptr) probes.push_back(p);
  }

  const std::vector<int> w = {12, 12, 14, 12, 14, 16};
  bench::PrintRow({"threshold", "cells", "reduction", "coverage",
                   "mean support", "res mix (5/6/7)"},
                  w);
  for (const uint64_t threshold : {10ull, 25ull, 50ull, 100ull, 400ull}) {
    const core::AdaptiveInventory adaptive =
        core::AdaptiveInventory::Build(fine, 5, threshold);
    const core::AdaptiveStats stats = adaptive.Stats(fine_cells);
    int covered = 0;
    double support_sum = 0;
    for (const geo::LatLng& p : probes) {
      if (const core::CellSummary* s = adaptive.Lookup(p)) {
        ++covered;
        support_sum += static_cast<double>(s->record_count());
      }
    }
    char mix[48];
    auto level = [&stats](int res) {
      const auto it = stats.cells_per_resolution.find(res);
      return it == stats.cells_per_resolution.end() ? uint64_t{0}
                                                    : it->second;
    };
    std::snprintf(mix, sizeof(mix), "%llu/%llu/%llu",
                  static_cast<unsigned long long>(level(5)),
                  static_cast<unsigned long long>(level(6)),
                  static_cast<unsigned long long>(level(7)));
    char support[24];
    std::snprintf(support, sizeof(support), "%.0f",
                  covered == 0 ? 0.0 : support_sum / covered);
    bench::PrintRow(
        {std::to_string(threshold), bench::FormatCount(stats.cells),
         bench::FormatPercent(stats.cell_reduction),
         bench::FormatPercent(static_cast<double>(covered) /
                              static_cast<double>(probes.size())),
         support, mix},
        w);
  }

  bench::PrintHeader("Shape checks");
  const core::AdaptiveInventory mid =
      core::AdaptiveInventory::Build(fine, 5, 50);
  const core::AdaptiveStats mid_stats = mid.Stats(fine_cells);
  std::printf("adaptive shrinks the inventory:           %s (%.0f%% fewer "
              "cells at threshold 50)\n",
              mid_stats.cell_reduction > 0.3 ? "PASS" : "FAIL",
              mid_stats.cell_reduction * 100);
  std::printf("dense areas keep the fine resolution:     %s\n",
              mid_stats.cells_per_resolution.count(7) ? "PASS" : "FAIL");
  std::printf("open sea collapses to coarse cells:       %s\n",
              mid_stats.cells_per_resolution.count(5) ? "PASS" : "FAIL");
  return 0;
}

}  // namespace
}  // namespace pol

int main() { return pol::Run(); }
