#ifndef POL_BENCH_BENCH_UTIL_H_
#define POL_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "sim/fleet.h"

// Shared plumbing for the reproduction benches: standard simulated
// scenarios, wall-clock timing, table and ASCII-map rendering. Every
// bench binary prints the paper's reference numbers next to the
// measured ones so the reproduced *shape* is visible at a glance.

namespace pol::bench {

// The standard full-year global scenario (scaled for a single-core run;
// see DESIGN.md section 6 for the scale calibration).
sim::FleetConfig GlobalYearConfig(uint64_t seed = 20221231);

// A denser regional scenario over the Baltic/North-Sea ports only
// (drives the Figure 4 local-patterns bench).
struct RegionalScenario {
  sim::PortDatabase ports;
  sim::RouteNetwork routes;
  sim::FleetConfig config;

  RegionalScenario(std::vector<sim::Port> region_ports,
                   const sim::FleetConfig& base);
};

// Ports of the built-in table within a bounding box.
std::vector<sim::Port> PortsInBox(double lat_min, double lat_max,
                                  double lng_min, double lng_max);

// Wall-clock seconds of a callable.
double TimeSeconds(const std::function<void()>& fn);

// Section header / table row helpers (fixed-width, plain ASCII).
void PrintHeader(const std::string& title);
void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);

// Human-readable quantities.
std::string FormatCount(uint64_t n);      // 12,345,678
std::string FormatBytes(uint64_t bytes);  // 1.23 GB
std::string FormatPercent(double fraction, int decimals = 2);

// Renders an ASCII heat map of per-cell values over a lat/lng box.
// `value(cell)` returns NaN for cells without data. Cells are sampled at
// the inventory resolution; each character aggregates the mean of the
// values inside its box. The scale uses the characters " .:-=+*#%@".
void RenderAsciiMap(const std::string& title, double lat_min, double lat_max,
                    double lng_min, double lng_max, int width, int height,
                    int resolution,
                    const std::function<double(hex::CellIndex)>& value);

// As above, but the value is a direction in degrees rendered as one of
// eight arrow-ish characters (the Figure 1 right-panel analogue).
void RenderCourseMap(const std::string& title, double lat_min,
                     double lat_max, double lng_min, double lng_max,
                     int width, int height, int resolution,
                     const std::function<double(hex::CellIndex)>& course);

}  // namespace pol::bench

#endif  // POL_BENCH_BENCH_UTIL_H_
