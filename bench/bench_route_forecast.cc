// Section 4.1.3 reproduction: destination prediction and route
// forecasting from the inventory.
//
// Destination prediction: streaming top-N vote over the cells a vessel
// crosses; accuracy reported as a function of voyage progress (shape:
// rises along the voyage). Route forecasting: A* over the (origin,
// destination, type) transition graph; success rate and path/corridor
// agreement reported.

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "core/inventory_snapshot.h"
#include "core/pipeline.h"
#include "geo/geodesic.h"
#include "hexgrid/hexgrid.h"
#include "usecases/destination.h"
#include "usecases/route_forecast.h"

namespace pol {
namespace {

int Run() {
  bench::PrintHeader(
      "Destination prediction & route forecasting (section 4.1.3)");
  sim::FleetConfig config = bench::GlobalYearConfig();
  config.noncommercial_vessels = 0;
  sim::SimulationOutput sim_output = sim::FleetSimulator(config).Run();

  const UnixSeconds split = 1667260800;  // Train Jan-Oct, test Nov-Dec.
  std::vector<ais::PositionReport> train;
  for (const auto& report : sim_output.reports) {
    if (report.timestamp < split) train.push_back(report);
  }
  core::PipelineConfig pipeline_config;
  pipeline_config.partitions = 8;
  pipeline_config.resolution = 6;
  core::PipelineResult result =
      core::RunPipeline(train, sim_output.fleet, pipeline_config);
  // Forecast through the sealed serving snapshot, as a live deployment
  // would.
  const std::shared_ptr<const core::InventorySnapshot> snapshot =
      result.inventory->Seal();
  const core::InventorySnapshot& inv = *snapshot;
  std::printf("inventory trained on %s reports (%s summaries)\n",
              bench::FormatCount(train.size()).c_str(),
              bench::FormatCount(inv.size()).c_str());

  std::map<ais::Mmsi, ais::MarketSegment> segments;
  for (const auto& vessel : sim_output.fleet) {
    segments[vessel.mmsi] = vessel.segment;
  }

  // --- Destination prediction accuracy vs progress. ---
  constexpr int kCheckpoints = 5;
  int top1_hits[kCheckpoints] = {};
  int top3_hits[kCheckpoints] = {};
  int evaluated = 0;
  for (const auto& voyage : sim_output.voyages) {
    if (voyage.departure < split || voyage.distance_km < 1000) continue;
    std::vector<const ais::PositionReport*> reports;
    for (const auto& report : sim_output.reports) {
      if (report.mmsi == voyage.mmsi &&
          report.timestamp >= voyage.departure &&
          report.timestamp <= voyage.arrival) {
        reports.push_back(&report);
      }
    }
    if (reports.size() < 25) continue;
    ++evaluated;
    uc::DestinationPredictor predictor(&inv);
    size_t fed = 0;
    for (int checkpoint = 0; checkpoint < kCheckpoints; ++checkpoint) {
      const size_t until =
          reports.size() * static_cast<size_t>(checkpoint + 1) / kCheckpoints;
      for (; fed < until; ++fed) {
        predictor.Observe({reports[fed]->lat_deg, reports[fed]->lng_deg},
                          segments[voyage.mmsi]);
      }
      const auto ranking = predictor.Ranking(3);
      if (!ranking.empty() && ranking[0].port == voyage.destination) {
        ++top1_hits[checkpoint];
      }
      for (const auto& guess : ranking) {
        if (guess.port == voyage.destination) {
          ++top3_hits[checkpoint];
          break;
        }
      }
    }
    if (evaluated >= 60) break;
  }

  bench::PrintHeader("Destination prediction accuracy vs voyage progress");
  const std::vector<int> w = {12, 12, 12};
  bench::PrintRow({"progress", "top-1", "top-3"}, w);
  for (int checkpoint = 0; checkpoint < kCheckpoints; ++checkpoint) {
    char progress[16];
    std::snprintf(progress, sizeof(progress), "%d%%",
                  (checkpoint + 1) * 100 / kCheckpoints);
    bench::PrintRow(
        {progress,
         bench::FormatPercent(
             static_cast<double>(top1_hits[checkpoint]) /
             std::max(1, evaluated), 0),
         bench::FormatPercent(
             static_cast<double>(top3_hits[checkpoint]) /
             std::max(1, evaluated), 0)},
        w);
  }
  std::printf("(%d held-out voyages; chance is ~%.1f%% over %zu ports)\n",
              evaluated, 100.0 / sim::PortDatabase::Global().size(),
              sim::PortDatabase::Global().size());

  // --- Route forecasting. ---
  const uc::RouteForecaster forecaster(&inv, &sim::PortDatabase::Global());
  int attempted = 0;
  int succeeded = 0;
  double ratio_sum = 0;
  for (const auto& voyage : sim_output.voyages) {
    if (voyage.departure >= split || voyage.distance_km < 2000) continue;
    // Forecast from one third into the (training-period) voyage.
    std::vector<const ais::PositionReport*> reports;
    for (const auto& report : sim_output.reports) {
      if (report.mmsi == voyage.mmsi &&
          report.timestamp >= voyage.departure &&
          report.timestamp <= voyage.arrival) {
        reports.push_back(&report);
      }
    }
    if (reports.size() < 30) continue;
    ++attempted;
    const auto& mid = *reports[reports.size() / 3];
    const auto forecast = forecaster.Forecast(
        {mid.lat_deg, mid.lng_deg}, voyage.origin, voyage.destination,
        segments[voyage.mmsi]);
    if (forecast.ok()) {
      ++succeeded;
      // Compare the forecast length to the actually remaining distance.
      const sim::Port& dest =
          **sim::PortDatabase::Global().Find(voyage.destination);
      const double remaining_direct =
          geo::HaversineKm({mid.lat_deg, mid.lng_deg}, dest.position);
      if (remaining_direct > 100) {
        ratio_sum += forecast->distance_km / remaining_direct;
      }
    }
    if (attempted >= 60) break;
  }

  bench::PrintHeader("Route forecast (A* over the transition graph)");
  std::printf("forecasts attempted:      %d\n", attempted);
  std::printf("forecasts produced:       %d (%.0f%%)\n", succeeded,
              100.0 * succeeded / std::max(1, attempted));
  std::printf("path length / great-circle remaining: %.2fx mean\n",
              succeeded == 0 ? 0.0 : ratio_sum / succeeded);

  bench::PrintHeader("Shape checks");
  std::printf("top-3 accuracy rises along the voyage: %s (%d -> %d hits)\n",
              top3_hits[kCheckpoints - 1] >= top3_hits[0] ? "PASS" : "FAIL",
              top3_hits[0], top3_hits[kCheckpoints - 1]);
  std::printf("late top-3 well above chance:          %s\n",
              top3_hits[kCheckpoints - 1] >
                      evaluated * 5 / 100  // 5x chance of ~1%.
                  ? "PASS"
                  : "FAIL");
  std::printf("most route forecasts succeed:          %s\n",
              succeeded * 2 > attempted ? "PASS" : "FAIL");
  return 0;
}

}  // namespace
}  // namespace pol

int main() { return pol::Run(); }
