// Serving-telemetry overhead: what the query-level telemetry layer
// (windowed latency histograms, QPS/error rates, wide-event query log,
// background OpenMetrics exporter) adds on top of the bare ServingGuard
// admission path. Two guards share one sealed inventory:
//
//   plain      - ServingGuard with telemetry disabled (the shape
//                bench_serving_guard holds to its own 2% bar)
//   telemetered - telemetry on: every call records into two windowed
//                rings and the query log, with the exporter thread
//                rendering OpenMetrics to a temp file in the background
//
// Each timed call does kLookupsPerCall point lookups, mirroring one
// real request answering a corridor. The acceptance bar is
// `telemetered` within 2% of `plain`, estimated as the ratio of the
// per-shape minimum round times (min over interleaved rounds converges
// to the true cost of each shape; ambient load only ever adds time).
// The verdict is sequential: a pass that ends over the bar runs another
// block of rounds into the same minima (up to three blocks total)
// before failing. Exits non-zero past the threshold so
// tools/run_tier1.sh --obs can gate on it.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/deadline.h"
#include "core/inventory.h"
#include "core/serving_guard.h"
#include "core/serving_inventory.h"
#include "hexgrid/hexgrid.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/querylog.h"
#include "obs/report.h"

namespace pol {
namespace {

constexpr int kRounds = 11;
constexpr double kMaxOverhead = 0.02;
constexpr int kCallsPerRound = 12000;
constexpr int kLookupsPerCall = 128;

constexpr sim::PortId kOrigin = 3;
constexpr sim::PortId kDestination = 21;
constexpr auto kSegment = ais::MarketSegment::kContainer;

// Same corridor shape as bench_serving_guard, scaled past L1.
core::Inventory BuildInventory(int generations, int cells) {
  core::SummaryMap summaries;
  for (int g = 0; g < generations; ++g) {
    for (int i = 0; i < cells; ++i) {
      const hex::CellIndex cell =
          hex::LatLngToCell({1.0 + 0.2 * g, 100.0 + 0.4 * i}, 6);
      core::PipelineRecord r;
      r.mmsi = 215000001;
      r.trip_id = static_cast<uint64_t>(g * 1000 + i);
      r.origin = kOrigin;
      r.destination = kDestination;
      r.segment = kSegment;
      r.sog_knots = 13;
      r.cog_deg = 90;
      r.heading_deg = 90;
      r.eto_s = 3600;
      r.ata_s = 7200;
      for (const core::GroupKey& key :
           {core::KeyCell(cell), core::KeyCellType(cell, kSegment),
            core::KeyCellRouteType(cell, kOrigin, kDestination, kSegment)}) {
        auto [it, inserted] = summaries.try_emplace(key);
        (void)inserted;
        it->second.Add(r);
      }
    }
  }
  return core::Inventory(6, std::move(summaries));
}

uint64_t GuardRound(core::ServingGuard& guard,
                    const std::vector<hex::CellIndex>& probes) {
  uint64_t found = 0;
  size_t cursor = 0;
  for (int call = 0; call < kCallsPerRound; ++call) {
    const Status status = guard.Run(
        core::QueryClass::kInteractive, Deadline(),
        [&found, &cursor, &probes](const core::InventorySnapshot& snapshot) {
          for (int i = 0; i < kLookupsPerCall; ++i) {
            if (snapshot.Cell(probes[cursor]) != nullptr) ++found;
            cursor = (cursor + 1) % probes.size();
          }
          return Status::OK();
        });
    if (!status.ok()) return 0;  // Admission must never fail here.
  }
  return found;
}

int Run(int argc, char** argv) {
  std::string summary_path = "BENCH_serving_telemetry.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--report-out=", 0) == 0) {
      summary_path = arg.substr(std::string("--report-out=").size());
    }
  }

  bench::PrintHeader("Serving telemetry overhead (windows + log + exporter)");
  core::ServingInventory store(BuildInventory(48, 40));

  core::ServingGuardOptions plain_options;
  plain_options.telemetry.enabled = false;
  core::ServingGuard plain(&store, plain_options);

  core::ServingGuardOptions telemetered_options;  // Telemetry on by default.
  core::ServingGuard telemetered(&store, telemetered_options);

  // The exporter renders the full registry to a temp file throughout
  // the telemetered rounds, so the bar covers the whole subsystem, not
  // just the record path.
  const std::string out_dir =
      (std::filesystem::temp_directory_path() / "pol_bench_serving_telemetry")
          .string();
  std::filesystem::create_directories(out_dir);
  core::TelemetryExporterOptions exporter;
  exporter.openmetrics_path = out_dir + "/metrics.txt";
  exporter.period_seconds = 0.25;
  const Status exporter_status = telemetered.StartTelemetryExporter(exporter);
  if (!exporter_status.ok() && obs::kEnabled) {
    std::fprintf(stderr, "FAIL: cannot start exporter: %s\n",
                 exporter_status.message().c_str());
    return 1;
  }

  std::printf("snapshot: %s summaries, %d calls x %d lookups per round\n",
              bench::FormatCount(store.size()).c_str(), kCallsPerRound,
              kLookupsPerCall);
  std::printf("telemetry compiled %s, exporter period %.2fs\n\n",
              obs::kEnabled ? "ON" : "OFF (no-op layer)",
              exporter.period_seconds);

  std::vector<hex::CellIndex> probes =
      store.CellsForRoute(kOrigin, kDestination, kSegment);
  const size_t hits = probes.size();
  for (size_t i = 0; i < hits / 4 + 1; ++i) {
    probes.push_back(hex::LatLngToCell({-40.0 - 0.3 * i, 10.0}, 6));
  }
  std::printf("probes: %llu (%llu corridor hits)\n",
              static_cast<unsigned long long>(probes.size()),
              static_cast<unsigned long long>(hits));

  // Untimed warmup, then interleaved rounds; min-over-rounds per shape.
  uint64_t checksum = GuardRound(plain, probes);
  checksum += GuardRound(telemetered, probes);
  double plain_s = 1e300;
  double telemetered_s = 1e300;
  double overhead = 1e300;
  bool diverged = false;
  auto measure = [&] {
    for (int round = 0; round < kRounds; ++round) {
      uint64_t plain_found = 0;
      uint64_t telemetered_found = 0;
      const double plain_round =
          bench::TimeSeconds([&] { plain_found = GuardRound(plain, probes); });
      const double telemetered_round = bench::TimeSeconds(
          [&] { telemetered_found = GuardRound(telemetered, probes); });
      if (telemetered_found != plain_found) {
        diverged = true;
        return;
      }
      checksum += plain_found + telemetered_found;
      plain_s = std::min(plain_s, plain_round);
      telemetered_s = std::min(telemetered_s, telemetered_round);
    }
    overhead = telemetered_s / plain_s - 1.0;
  };
  for (int block = 0; block < 3; ++block) {
    measure();
    if (diverged || overhead <= kMaxOverhead) break;
    std::printf("overhead %s over the bar after block %d; extending\n",
                bench::FormatPercent(overhead).c_str(), block + 1);
  }
  telemetered.StopTelemetryExporter();
  std::filesystem::remove_all(out_dir);
  if (diverged) {
    std::fprintf(stderr, "FAIL: telemetered lookups diverge from plain\n");
    return 1;
  }

  // Every telemetered call must have landed in the query log, and the
  // log totals must reconcile exactly (admitted == ok + errors).
  const obs::QueryLog::Totals totals =
      telemetered.telemetry()->query_log().totals();
  if (obs::kEnabled && totals.events != totals.ok + totals.errors) {
    std::fprintf(stderr, "FAIL: query log totals do not reconcile\n");
    return 1;
  }

  const double lookups =
      static_cast<double>(kCallsPerRound) * kLookupsPerCall;
  std::printf("plain       (telemetry off): %.4f s (min of %d, %.0f ns/op)\n",
              plain_s, kRounds, plain_s / lookups * 1e9);
  std::printf("telemetered (windows + log): %.4f s (min of %d, %.0f ns/op)\n",
              telemetered_s, kRounds, telemetered_s / lookups * 1e9);
  std::printf("overhead:                    %s (min-round ratio, bar: %s)\n",
              bench::FormatPercent(overhead).c_str(),
              bench::FormatPercent(kMaxOverhead).c_str());
  std::printf("query log: %llu events (%llu ok, %llu errors, %llu slow)\n",
              static_cast<unsigned long long>(totals.events),
              static_cast<unsigned long long>(totals.ok),
              static_cast<unsigned long long>(totals.errors),
              static_cast<unsigned long long>(totals.slow));

  std::printf(
      "BENCH {\"bench\":\"serving_telemetry\",\"summaries\":%llu,"
      "\"rounds\":%d,\"calls_per_round\":%d,\"lookups_per_call\":%d,"
      "\"plain_s\":%.4f,\"telemetered_s\":%.4f,\"overhead_frac\":%.4f,"
      "\"logged_events\":%llu,\"checksum\":%llu}\n",
      static_cast<unsigned long long>(store.size()), kRounds, kCallsPerRound,
      kLookupsPerCall, plain_s, telemetered_s, overhead,
      static_cast<unsigned long long>(totals.events),
      static_cast<unsigned long long>(checksum));

  if (!summary_path.empty()) {
    obs::Json summary = obs::Json::Object();
    summary.Set("schema", "pol.bench_summary/1");
    summary.Set("bench", "serving_telemetry");
    summary.Set("summaries", static_cast<uint64_t>(store.size()));
    summary.Set("rounds", kRounds);
    summary.Set("calls_per_round", kCallsPerRound);
    summary.Set("lookups_per_call", kLookupsPerCall);
    summary.Set("obs_enabled", obs::kEnabled);
    summary.Set("plain_s", plain_s);
    summary.Set("telemetered_s", telemetered_s);
    summary.Set("overhead_frac", overhead);
    summary.Set("max_overhead_frac", kMaxOverhead);
    summary.Set("logged_events", totals.events);
    std::string error;
    if (!obs::WriteJsonFile(summary_path, summary, &error)) {
      std::fprintf(stderr, "cannot write %s: %s\n", summary_path.c_str(),
                   error.c_str());
    }
  }

  if (overhead > kMaxOverhead) {
    std::fprintf(stderr,
                 "FAIL: serving telemetry overhead %.2f%% exceeds %.2f%%\n",
                 overhead * 100.0, kMaxOverhead * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pol

int main(int argc, char** argv) { return pol::Run(argc, argv); }
