// Engineering microbenchmarks (google-benchmark): the per-operation
// costs behind the pipeline's throughput — grid indexing, sketch
// updates, geofence probes, NMEA codec, and end-to-end stage rates.
//
// Next to the console table the bench writes a machine-readable
// summary (default BENCH_micro.json; `--report-out=<path>` overrides,
// empty disables) so per-operation costs can be tracked across commits
// the same way the BENCH_* summaries of the macro benches are.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "ais/nmea.h"
#include "obs/json.h"
#include "obs/report.h"
#include "common/rng.h"
#include "geo/geodesic.h"
#include "core/geofence.h"
#include "core/pipeline.h"
#include "hexgrid/hexgrid.h"
#include "hexgrid/region.h"
#include "sim/fleet.h"
#include "stats/hyperloglog.h"
#include "stats/spacesaving.h"
#include "stats/p2_quantile.h"
#include "stats/tdigest.h"

namespace pol {
namespace {

geo::LatLng RandomPoint(Rng& rng) {
  return {geo::RadToDeg(std::asin(rng.Uniform(-1, 1))),
          rng.Uniform(-180, 180)};
}

void BM_LatLngToCell(benchmark::State& state) {
  Rng rng(1);
  std::vector<geo::LatLng> points;
  for (int i = 0; i < 1024; ++i) points.push_back(RandomPoint(rng));
  size_t i = 0;
  const int res = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hex::LatLngToCell(points[i++ & 1023], res));
  }
}
BENCHMARK(BM_LatLngToCell)->Arg(6)->Arg(7)->Arg(9);

void BM_CellToLatLng(benchmark::State& state) {
  Rng rng(2);
  std::vector<hex::CellIndex> cells;
  for (int i = 0; i < 1024; ++i) {
    cells.push_back(hex::LatLngToCell(RandomPoint(rng), 6));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hex::CellToLatLng(cells[i++ & 1023]));
  }
}
BENCHMARK(BM_CellToLatLng);

void BM_Neighbors(benchmark::State& state) {
  Rng rng(3);
  std::vector<hex::CellIndex> cells;
  for (int i = 0; i < 256; ++i) {
    cells.push_back(hex::LatLngToCell(RandomPoint(rng), 6));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hex::Neighbors(cells[i++ & 255]));
  }
}
BENCHMARK(BM_Neighbors);

void BM_GridDisk(benchmark::State& state) {
  const hex::CellIndex center = hex::LatLngToCell({30, 120}, 6);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hex::GridDisk(center, k));
  }
}
BENCHMARK(BM_GridDisk)->Arg(1)->Arg(3)->Arg(8);

void BM_BoxToCells(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(hex::BoxToCells(50.0, 51.0, 0.0, 2.0, 6));
  }
}
BENCHMARK(BM_BoxToCells)->Unit(benchmark::kMillisecond);

void BM_CompactCells(benchmark::State& state) {
  const auto cells = hex::BoxToCells(50.0, 51.0, 0.0, 2.0, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hex::CompactCells(cells));
  }
}
BENCHMARK(BM_CompactCells)->Unit(benchmark::kMillisecond);

void BM_TDigestAdd(benchmark::State& state) {
  Rng rng(4);
  stats::TDigest digest(100);
  for (auto _ : state) {
    digest.Add(rng.NextGaussian());
  }
  benchmark::DoNotOptimize(digest.Quantile(0.5));
}
BENCHMARK(BM_TDigestAdd);

void BM_P2QuantileAdd(benchmark::State& state) {
  // Ablation partner of BM_TDigestAdd: the P2 estimator is the cheaper
  // non-mergeable alternative the inventory deliberately does not use
  // (the reduce phase requires mergeable sketches).
  Rng rng(41);
  stats::P2Quantile median(0.5);
  for (auto _ : state) {
    median.Add(rng.NextGaussian());
  }
  benchmark::DoNotOptimize(median.Value());
}
BENCHMARK(BM_P2QuantileAdd);

void BM_HyperLogLogAdd(benchmark::State& state) {
  Rng rng(5);
  stats::HyperLogLog hll(12);
  for (auto _ : state) {
    hll.Add(rng.NextUint64());
  }
  benchmark::DoNotOptimize(hll.Estimate());
}
BENCHMARK(BM_HyperLogLogAdd);

void BM_SpaceSavingAdd(benchmark::State& state) {
  Rng rng(6);
  stats::SpaceSaving top(16);
  for (auto _ : state) {
    top.Add(rng.NextBelow(1000));
  }
  benchmark::DoNotOptimize(top.TopN(3));
}
BENCHMARK(BM_SpaceSavingAdd);

void BM_GeofenceProbe(benchmark::State& state) {
  static const core::Geofencer* geofencer =
      new core::Geofencer(&sim::PortDatabase::Global(), 6);
  Rng rng(7);
  std::vector<geo::LatLng> points;
  // Half near ports, half open ocean.
  const auto& ports = sim::PortDatabase::Global().ports();
  for (int i = 0; i < 512; ++i) {
    if (i % 2 == 0) {
      const auto& port = ports[rng.NextBelow(ports.size())];
      points.push_back(geo::DestinationPoint(port.position,
                                             rng.Uniform(0, 360),
                                             rng.Uniform(0, 30)));
    } else {
      points.push_back(RandomPoint(rng));
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(geofencer->PortAt(points[i++ & 511]));
  }
}
BENCHMARK(BM_GeofenceProbe);

void BM_GeofenceExhaustive(benchmark::State& state) {
  static const core::Geofencer* geofencer =
      new core::Geofencer(&sim::PortDatabase::Global(), 6);
  Rng rng(8);
  std::vector<geo::LatLng> points;
  for (int i = 0; i < 512; ++i) points.push_back(RandomPoint(rng));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(geofencer->PortAtExhaustive(points[i++ & 511]));
  }
}
BENCHMARK(BM_GeofenceExhaustive);

void BM_NmeaEncodeDecode(benchmark::State& state) {
  ais::PositionReport report;
  report.mmsi = 244123456;
  report.timestamp = 1651234567;
  report.lat_deg = 51.92;
  report.lng_deg = 4.12;
  report.sog_knots = 13.7;
  report.cog_deg = 211.3;
  report.heading_deg = 212;
  report.message_type = 1;
  ais::NmeaDecoder decoder;
  for (auto _ : state) {
    const auto sentence = ais::EncodePositionNmea(report);
    benchmark::DoNotOptimize(decoder.Feed(*sentence));
  }
}
BENCHMARK(BM_NmeaEncodeDecode);

void BM_PipelineEndToEnd(benchmark::State& state) {
  // One small simulated month through the whole pipeline; reports/s is
  // the figure of merit.
  sim::FleetConfig config;
  config.seed = 11;
  config.commercial_vessels = 10;
  config.noncommercial_vessels = 5;
  config.start_time = 1640995200;
  config.end_time = config.start_time + 30 * 86400;
  static const sim::SimulationOutput* sim_output =
      new sim::SimulationOutput(sim::FleetSimulator(config).Run());
  core::PipelineConfig pipeline_config;
  pipeline_config.partitions = 4;
  pipeline_config.threads = 1;
  for (auto _ : state) {
    auto result = core::RunPipeline(sim_output->reports, sim_output->fleet,
                                    pipeline_config);
    benchmark::DoNotOptimize(result.inventory->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sim_output->reports.size()));
}
BENCHMARK(BM_PipelineEndToEnd)->Unit(benchmark::kMillisecond);

// Console reporter that additionally collects every finished run for
// the JSON summary.
class JsonCollector : public benchmark::ConsoleReporter {
 public:
  JsonCollector() { results_ = obs::Json::Array(); }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      obs::Json entry = obs::Json::Object();
      entry.Set("name", run.benchmark_name());
      entry.Set("iterations", static_cast<int64_t>(run.iterations));
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      entry.Set("real_s_per_iter", run.real_accumulated_time / iters);
      entry.Set("cpu_s_per_iter", run.cpu_accumulated_time / iters);
      if (!run.counters.empty()) {
        obs::Json counters = obs::Json::Object();
        for (const auto& [name, counter] : run.counters) {
          counters.Set(name, static_cast<double>(counter));
        }
        entry.Set("counters", std::move(counters));
      }
      results_.Append(std::move(entry));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const obs::Json& results() const { return results_; }

 private:
  obs::Json results_;
};

int RunMicro(int argc, char** argv) {
  // Strip our own flag before handing argv to google-benchmark.
  std::string summary_path = "BENCH_micro.json";
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--report-out=", 0) == 0) {
      summary_path = std::string(arg.substr(std::string("--report-out=").size()));
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  JsonCollector reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!summary_path.empty()) {
    obs::Json summary = obs::Json::Object();
    summary.Set("schema", "pol.bench_summary/1");
    summary.Set("bench", "micro");
    summary.Set("results", reporter.results());
    std::string error;
    if (!obs::WriteJsonFile(summary_path, summary, &error)) {
      std::fprintf(stderr, "cannot write %s: %s\n", summary_path.c_str(),
                   error.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace pol

int main(int argc, char** argv) { return pol::RunMicro(argc, argv); }
