// Section 4.1.2 reproduction: ETA estimation from historical ATA.
//
// Trains the inventory on ten months of the simulated year and evaluates
// on the final two months (held-out voyages). Reports the median and
// P90 absolute ETA error as a function of voyage progress — the shape:
// error shrinks as the vessel advances, and the route-specific grouping
// set answers most queries.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "core/inventory_snapshot.h"
#include "core/pipeline.h"
#include "usecases/eta.h"

namespace pol {
namespace {

int Run() {
  bench::PrintHeader("ETA baseline from the inventory (paper section 4.1.2)");
  sim::FleetConfig config = bench::GlobalYearConfig();
  config.noncommercial_vessels = 0;
  sim::SimulationOutput sim_output = sim::FleetSimulator(config).Run();

  // Temporal split: train before Nov 1, evaluate after.
  const UnixSeconds split = 1667260800;  // 2022-11-01.
  std::vector<ais::PositionReport> train;
  for (const auto& report : sim_output.reports) {
    if (report.timestamp < split) train.push_back(report);
  }
  std::printf("training on %s of %s reports (Jan-Oct)\n",
              bench::FormatCount(train.size()).c_str(),
              bench::FormatCount(sim_output.reports.size()).c_str());

  core::PipelineConfig pipeline_config;
  pipeline_config.partitions = 8;
  pipeline_config.resolution = 6;
  core::PipelineResult result =
      core::RunPipeline(train, sim_output.fleet, pipeline_config);
  // Estimate through the sealed serving snapshot, as a live deployment
  // would.
  const std::shared_ptr<const core::InventorySnapshot> snapshot =
      result.inventory->Seal();
  const uc::EtaEstimator estimator(snapshot.get());

  std::map<ais::Mmsi, ais::MarketSegment> segments;
  for (const auto& vessel : sim_output.fleet) {
    segments[vessel.mmsi] = vessel.segment;
  }

  // Evaluate held-out voyages at ten progress buckets.
  struct Bucket {
    std::vector<double> rel_errors;
  };
  Bucket buckets[10];
  uint64_t answered_by_gi[3] = {0, 0, 0};
  uint64_t no_answer = 0;
  int voyages = 0;
  for (const auto& voyage : sim_output.voyages) {
    if (voyage.departure < split || voyage.distance_km < 1000) continue;
    std::vector<const ais::PositionReport*> reports;
    for (const auto& report : sim_output.reports) {
      if (report.mmsi == voyage.mmsi &&
          report.timestamp >= voyage.departure &&
          report.timestamp <= voyage.arrival) {
        reports.push_back(&report);
      }
    }
    if (reports.size() < 20) continue;
    ++voyages;
    const double duration =
        static_cast<double>(voyage.arrival - voyage.departure);
    for (int b = 0; b < 10; ++b) {
      const auto& report =
          *reports[static_cast<size_t>((b + 0.5) / 10.0 *
                                       static_cast<double>(reports.size()))];
      const auto estimate = estimator.Estimate(
          {report.lat_deg, report.lng_deg}, segments[voyage.mmsi],
          voyage.origin, voyage.destination);
      if (!estimate.ok()) {
        ++no_answer;
        continue;
      }
      ++answered_by_gi[estimate->grouping_set];
      const double truth =
          static_cast<double>(voyage.arrival - report.timestamp);
      buckets[b].rel_errors.push_back(
          std::fabs(estimate->seconds - truth) / duration);
    }
  }

  bench::PrintHeader("ETA error vs voyage progress (held-out voyages)");
  const std::vector<int> w = {12, 10, 16, 16};
  bench::PrintRow({"progress", "samples", "median |err|", "p90 |err|"}, w);
  auto percentile = [](std::vector<double> v, double q) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    return v[static_cast<size_t>(q * static_cast<double>(v.size() - 1))];
  };
  double first_median = -1;
  double last_median = -1;
  for (int b = 0; b < 10; ++b) {
    const double median = percentile(buckets[b].rel_errors, 0.5);
    const double p90 = percentile(buckets[b].rel_errors, 0.9);
    if (b == 0) first_median = median;
    if (b == 9) last_median = median;
    char progress[16], med[16], p90s[16];
    std::snprintf(progress, sizeof(progress), "%d-%d%%", b * 10, b * 10 + 10);
    std::snprintf(med, sizeof(med), "%.1f%% of trip", median * 100);
    std::snprintf(p90s, sizeof(p90s), "%.1f%% of trip", p90 * 100);
    bench::PrintRow({progress, std::to_string(buckets[b].rel_errors.size()),
                     med, p90s},
                    w);
  }

  bench::PrintHeader("Shape checks");
  std::printf("held-out voyages evaluated:          %d\n", voyages);
  std::printf("answers by grouping set (route/type/cell): %llu / %llu / %llu"
              ", unanswered: %llu\n",
              static_cast<unsigned long long>(answered_by_gi[2]),
              static_cast<unsigned long long>(answered_by_gi[1]),
              static_cast<unsigned long long>(answered_by_gi[0]),
              static_cast<unsigned long long>(no_answer));
  std::printf("error shrinks along the voyage:      %s (%.1f%% -> %.1f%%)\n",
              last_median < first_median ? "PASS" : "FAIL",
              first_median * 100, last_median * 100);
  std::printf("late-voyage median error < 25%%:      %s\n",
              last_median < 0.25 ? "PASS" : "FAIL");
  return 0;
}

}  // namespace
}  // namespace pol

int main() { return pol::Run(); }
