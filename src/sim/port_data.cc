// The embedded world port table: the ~140 largest commercial ports with
// real coordinates, which carry the overwhelming majority of global
// commercial port calls. Substitutes the paper's proprietary 20k-port
// database (see DESIGN.md, substitution table).

#include "sim/ports.h"

#include <vector>

namespace pol::sim {
namespace {

struct PortRow {
  const char* name;
  const char* country;
  double lat;
  double lng;
  PortSize size;
  bool container;
  bool tanker;
  bool bulk;
  bool passenger;
};

constexpr PortSize L = PortSize::kLarge;
constexpr PortSize M = PortSize::kMedium;
constexpr PortSize S = PortSize::kSmall;

constexpr PortRow kWorldPorts[] = {
    // East Asia.
    {"Shanghai", "CN", 31.23, 121.60, L, true, false, true, false},
    {"Ningbo-Zhoushan", "CN", 29.94, 121.85, L, true, true, true, false},
    {"Shenzhen", "CN", 22.49, 113.87, L, true, false, false, false},
    {"Guangzhou", "CN", 22.80, 113.60, L, true, false, true, false},
    {"Hong Kong", "HK", 22.30, 114.17, L, true, false, false, true},
    {"Qingdao", "CN", 36.08, 120.32, L, true, false, true, false},
    {"Tianjin", "CN", 38.97, 117.80, L, true, false, true, false},
    {"Dalian", "CN", 38.93, 121.65, M, true, true, false, false},
    {"Xiamen", "CN", 24.45, 118.07, M, true, false, false, false},
    {"Busan", "KR", 35.08, 128.83, L, true, false, false, true},
    {"Gwangyang", "KR", 34.90, 127.70, M, false, true, true, false},
    {"Ulsan", "KR", 35.50, 129.38, M, false, true, false, false},
    {"Incheon", "KR", 37.45, 126.60, M, true, false, false, true},
    {"Tokyo", "JP", 35.60, 139.80, L, true, false, false, true},
    {"Yokohama", "JP", 35.45, 139.65, L, true, false, false, false},
    {"Nagoya", "JP", 35.03, 136.85, L, true, false, true, false},
    {"Kobe", "JP", 34.67, 135.20, M, true, false, false, false},
    {"Osaka", "JP", 34.63, 135.43, M, true, false, false, true},
    {"Kaohsiung", "TW", 22.61, 120.28, L, true, false, false, false},
    {"Keelung", "TW", 25.13, 121.75, M, true, false, false, false},
    // Southeast Asia.
    {"Singapore", "SG", 1.26, 103.84, L, true, true, false, true},
    {"Port Klang", "MY", 3.00, 101.35, L, true, false, false, false},
    {"Tanjung Pelepas", "MY", 1.36, 103.55, L, true, false, false, false},
    {"Penang", "MY", 5.40, 100.33, M, true, false, false, false},
    {"Laem Chabang", "TH", 13.08, 100.88, L, true, false, false, false},
    {"Bangkok", "TH", 13.53, 100.58, M, true, false, false, false},
    {"Cai Mep", "VN", 10.58, 107.03, M, true, false, false, false},
    {"Haiphong", "VN", 20.85, 106.75, M, true, false, false, false},
    {"Manila", "PH", 14.60, 120.95, M, true, false, false, true},
    {"Tanjung Priok", "ID", -6.10, 106.88, L, true, false, false, false},
    {"Surabaya", "ID", -7.20, 112.73, M, true, false, true, false},
    {"Balikpapan", "ID", -1.27, 116.80, S, false, true, false, false},
    // South Asia.
    {"Colombo", "LK", 6.95, 79.84, L, true, false, false, false},
    {"Nhava Sheva", "IN", 18.95, 72.95, L, true, false, false, false},
    {"Mundra", "IN", 22.74, 69.70, M, true, false, true, false},
    {"Chennai", "IN", 13.10, 80.30, M, true, false, false, false},
    {"Visakhapatnam", "IN", 17.68, 83.28, M, false, false, true, false},
    {"Chittagong", "BD", 22.25, 91.80, M, true, false, false, false},
    {"Karachi", "PK", 24.80, 66.97, M, true, false, false, false},
    // Middle East.
    {"Jebel Ali", "AE", 25.01, 55.06, L, true, false, false, false},
    {"Fujairah", "AE", 25.17, 56.37, M, false, true, false, false},
    {"Ras Tanura", "SA", 26.64, 50.16, L, false, true, false, false},
    {"Jubail", "SA", 27.05, 49.60, M, false, true, false, false},
    {"Jeddah", "SA", 21.47, 39.17, L, true, false, false, false},
    {"Mina Al Ahmadi", "KW", 29.07, 48.17, M, false, true, false, false},
    {"Bandar Abbas", "IR", 27.14, 56.21, M, true, false, false, false},
    {"Umm Qasr", "IQ", 30.03, 47.95, S, false, true, false, false},
    {"Salalah", "OM", 16.94, 54.00, L, true, false, false, false},
    {"Sohar", "OM", 24.52, 56.63, M, false, true, true, false},
    {"Hamad", "QA", 25.00, 51.61, M, true, false, false, false},
    {"Ras Laffan", "QA", 25.91, 51.58, M, false, true, false, false},
    // Europe.
    {"Rotterdam", "NL", 51.95, 4.05, L, true, true, true, false},
    {"Antwerp", "BE", 51.28, 4.30, L, true, true, false, false},
    {"Hamburg", "DE", 53.54, 9.93, L, true, false, false, false},
    {"Bremerhaven", "DE", 53.56, 8.55, L, true, false, false, false},
    {"Amsterdam", "NL", 52.41, 4.80, M, false, true, true, false},
    {"Le Havre", "FR", 49.47, 0.15, L, true, true, false, false},
    {"Marseille", "FR", 43.33, 5.33, M, false, true, false, true},
    {"Algeciras", "ES", 36.13, -5.43, L, true, false, false, false},
    {"Valencia", "ES", 39.45, -0.32, L, true, false, false, false},
    {"Barcelona", "ES", 41.35, 2.16, M, true, false, false, true},
    {"Piraeus", "GR", 37.94, 23.62, L, true, false, false, true},
    {"Genoa", "IT", 44.40, 8.92, M, true, false, false, true},
    {"Gioia Tauro", "IT", 38.45, 15.90, M, true, false, false, false},
    {"Trieste", "IT", 45.62, 13.77, M, false, true, false, false},
    {"Civitavecchia", "IT", 42.09, 11.79, M, false, false, false, true},
    {"Felixstowe", "GB", 51.95, 1.35, L, true, false, false, false},
    {"Southampton", "GB", 50.90, -1.40, M, true, false, false, true},
    {"London Gateway", "GB", 51.50, 0.45, M, true, false, false, false},
    {"Immingham", "GB", 53.63, -0.19, M, false, true, true, false},
    {"Zeebrugge", "BE", 51.35, 3.20, M, true, false, false, true},
    {"Gdansk", "PL", 54.40, 18.67, M, true, false, true, false},
    {"Gothenburg", "SE", 57.68, 11.85, M, true, true, false, false},
    {"Aarhus", "DK", 56.15, 10.25, M, true, false, false, false},
    {"Oslo", "NO", 59.90, 10.73, S, false, false, false, true},
    {"Bergen", "NO", 60.40, 5.30, S, false, true, false, true},
    {"St Petersburg", "RU", 59.88, 30.20, M, true, false, false, false},
    {"Primorsk", "RU", 60.34, 28.71, M, false, true, false, false},
    {"Klaipeda", "LT", 55.70, 21.13, S, false, false, true, false},
    {"Riga", "LV", 57.03, 24.02, S, false, false, true, false},
    {"Tallinn", "EE", 59.44, 24.77, S, false, false, false, true},
    {"Helsinki", "FI", 60.15, 24.95, M, true, false, false, true},
    {"Constanta", "RO", 44.10, 28.65, M, true, false, true, false},
    {"Ambarli", "TR", 40.97, 28.68, M, true, false, false, false},
    {"Izmir", "TR", 38.44, 27.15, S, true, false, false, false},
    {"Novorossiysk", "RU", 44.72, 37.80, M, false, true, true, false},
    {"Odesa", "UA", 46.50, 30.75, M, false, false, true, false},
    // Africa.
    {"Port Said", "EG", 31.26, 32.30, L, true, false, false, false},
    {"Alexandria", "EG", 31.18, 29.87, M, true, false, true, false},
    {"Damietta", "EG", 31.47, 31.76, M, true, false, false, false},
    {"Tanger Med", "MA", 35.88, -5.50, L, true, false, false, false},
    {"Casablanca", "MA", 33.61, -7.62, M, true, false, false, false},
    {"Dakar", "SN", 14.68, -17.43, S, true, false, false, false},
    {"Abidjan", "CI", 5.25, -4.00, M, true, false, false, false},
    {"Tema", "GH", 5.63, 0.01, M, true, false, false, false},
    {"Lagos", "NG", 6.43, 3.38, M, true, false, false, false},
    {"Lome", "TG", 6.13, 1.28, M, true, false, false, false},
    {"Durban", "ZA", -29.87, 31.03, L, true, false, false, false},
    {"Richards Bay", "ZA", -28.80, 32.04, M, false, false, true, false},
    {"Cape Town", "ZA", -33.91, 18.43, M, true, false, false, false},
    {"Mombasa", "KE", -4.07, 39.67, M, true, false, false, false},
    {"Dar es Salaam", "TZ", -6.82, 39.30, S, true, false, false, false},
    {"Djibouti", "DJ", 11.60, 43.14, M, true, false, false, false},
    // North America.
    {"Los Angeles", "US", 33.74, -118.26, L, true, false, false, false},
    {"Long Beach", "US", 33.76, -118.21, L, true, true, false, false},
    {"Oakland", "US", 37.80, -122.32, M, true, false, false, false},
    {"Seattle", "US", 47.60, -122.35, M, true, false, false, false},
    {"Tacoma", "US", 47.27, -122.41, M, true, false, false, false},
    {"Vancouver", "CA", 49.29, -123.11, L, true, false, true, false},
    {"Prince Rupert", "CA", 54.30, -130.33, M, true, false, true, false},
    {"Houston", "US", 29.73, -94.98, L, true, true, false, false},
    {"Corpus Christi", "US", 27.81, -97.40, M, false, true, false, false},
    {"New Orleans", "US", 29.93, -90.06, M, false, false, true, false},
    {"Mobile", "US", 30.69, -88.04, S, false, false, true, false},
    {"Savannah", "US", 32.08, -81.09, L, true, false, false, false},
    {"Charleston", "US", 32.78, -79.92, M, true, false, false, false},
    {"Norfolk", "US", 36.90, -76.33, M, true, false, false, false},
    {"New York-New Jersey", "US", 40.67, -74.05, L, true, false, false, true},
    {"Boston", "US", 42.35, -71.02, S, true, false, false, true},
    {"Montreal", "CA", 45.50, -73.55, M, true, false, false, false},
    {"Halifax", "CA", 44.65, -63.57, M, true, false, false, false},
    {"Miami", "US", 25.77, -80.17, L, false, false, false, true},
    {"Port Everglades", "US", 26.09, -80.12, M, false, true, false, true},
    {"Nassau", "BS", 25.08, -77.35, M, false, false, false, true},
    {"Cozumel", "MX", 20.51, -86.95, M, false, false, false, true},
    // Latin America.
    {"Veracruz", "MX", 19.21, -96.13, M, true, false, false, false},
    {"Manzanillo MX", "MX", 19.05, -104.31, M, true, false, false, false},
    {"Lazaro Cardenas", "MX", 17.94, -102.18, M, true, false, false, false},
    {"Colon", "PA", 9.37, -79.88, L, true, false, false, false},
    {"Balboa", "PA", 8.95, -79.57, L, true, false, false, false},
    {"Cartagena", "CO", 10.40, -75.53, M, true, false, false, false},
    {"Callao", "PE", -12.05, -77.15, M, true, false, true, false},
    {"Valparaiso", "CL", -33.03, -71.63, M, true, false, false, false},
    {"San Antonio", "CL", -33.59, -71.62, M, true, false, false, false},
    {"Santos", "BR", -23.98, -46.30, L, true, false, true, false},
    {"Rio de Janeiro", "BR", -22.89, -43.18, M, true, true, false, false},
    {"Paranagua", "BR", -25.50, -48.52, M, false, false, true, false},
    {"Itaqui", "BR", -2.57, -44.37, M, false, false, true, false},
    {"Tubarao", "BR", -20.28, -40.24, L, false, false, true, false},
    {"Buenos Aires", "AR", -34.58, -58.37, M, true, false, true, false},
    {"Montevideo", "UY", -34.90, -56.21, S, true, false, false, false},
    // Oceania.
    {"Port Botany", "AU", -33.97, 151.22, M, true, false, false, true},
    {"Melbourne", "AU", -37.83, 144.92, L, true, false, false, false},
    {"Brisbane", "AU", -27.38, 153.17, M, true, false, true, false},
    {"Fremantle", "AU", -32.05, 115.74, M, true, false, false, false},
    {"Port Hedland", "AU", -20.31, 118.58, L, false, false, true, false},
    {"Dampier", "AU", -20.66, 116.71, M, false, true, true, false},
    {"Newcastle", "AU", -32.92, 151.78, L, false, false, true, false},
    {"Gladstone", "AU", -23.83, 151.25, M, false, false, true, false},
    {"Hay Point", "AU", -21.28, 149.30, M, false, false, true, false},
    {"Auckland", "NZ", -36.84, 174.78, M, true, false, false, true},
    {"Tauranga", "NZ", -37.64, 176.18, M, true, false, true, false},
};

std::vector<Port> BuildWorldPorts() {
  std::vector<Port> ports;
  ports.reserve(std::size(kWorldPorts));
  for (const PortRow& row : kWorldPorts) {
    Port port;
    port.name = row.name;
    port.country = row.country;
    port.position = {row.lat, row.lng};
    port.size = row.size;
    port.geofence_radius_km = row.size == PortSize::kLarge    ? 20.0
                              : row.size == PortSize::kMedium ? 12.0
                                                              : 8.0;
    for (int s = 0; s < ais::kNumMarketSegments; ++s) {
      port.segment_weight[s] = DefaultSegmentWeight(
          static_cast<ais::MarketSegment>(s), row.size, row.container,
          row.tanker, row.bulk, row.passenger);
    }
    ports.push_back(std::move(port));
  }
  return ports;
}

}  // namespace

const PortDatabase& PortDatabase::Global() {
  // NOLINTNEXTLINE(pollint:naked-new): leaky singleton, no destruction order.
  static const PortDatabase& instance = *new PortDatabase(BuildWorldPorts());
  return instance;
}

}  // namespace pol::sim
