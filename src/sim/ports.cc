#include "sim/ports.h"

#include <limits>
#include <string>
#include <vector>

#include "geo/geodesic.h"

namespace pol::sim {

PortDatabase::PortDatabase(std::vector<Port> ports)
    : ports_(std::move(ports)) {
  for (size_t i = 0; i < ports_.size(); ++i) {
    ports_[i].id = static_cast<PortId>(i + 1);
  }
}

Result<const Port*> PortDatabase::Find(PortId id) const {
  if (id == kNoPort || id > ports_.size()) {
    return Status::NotFound("unknown port id");
  }
  return &ports_[id - 1];
}

Result<const Port*> PortDatabase::FindByName(const std::string& name) const {
  for (const Port& port : ports_) {
    if (port.name == name) return &port;
  }
  return Status::NotFound("unknown port name: " + name);
}

const Port* PortDatabase::Nearest(const geo::LatLng& p) const {
  const Port* best = nullptr;
  double best_km = std::numeric_limits<double>::max();
  for (const Port& port : ports_) {
    const double d = geo::HaversineKm(p, port.position);
    if (d < best_km) {
      best_km = d;
      best = &port;
    }
  }
  return best;
}

PortId PortDatabase::GeofenceContaining(const geo::LatLng& p) const {
  PortId best = kNoPort;
  double best_km = std::numeric_limits<double>::max();
  for (const Port& port : ports_) {
    const double d = geo::HaversineKm(p, port.position);
    if (d <= port.geofence_radius_km && d < best_km) {
      best_km = d;
      best = port.id;
    }
  }
  return best;
}

double DefaultSegmentWeight(ais::MarketSegment segment, PortSize size,
                            bool container_hub, bool tanker_terminal,
                            bool bulk_terminal, bool passenger_hub) {
  const double size_factor =
      size == PortSize::kLarge ? 3.0 : (size == PortSize::kMedium ? 1.5 : 1.0);
  switch (segment) {
    case ais::MarketSegment::kContainer:
      return container_hub ? 4.0 * size_factor : 0.0;
    case ais::MarketSegment::kDryBulk:
      return bulk_terminal ? 3.0 * size_factor : 0.2 * size_factor;
    case ais::MarketSegment::kTanker:
      return tanker_terminal ? 3.0 * size_factor : 0.2 * size_factor;
    case ais::MarketSegment::kGeneralCargo:
      return 1.0 * size_factor;
    case ais::MarketSegment::kPassenger:
      return passenger_hub ? 2.0 * size_factor : 0.0;
    case ais::MarketSegment::kFishing:
    case ais::MarketSegment::kTugAndService:
    case ais::MarketSegment::kPleasure:
    case ais::MarketSegment::kOther:
      return 0.5 * size_factor;  // Local traffic around any port.
  }
  return 0.0;
}

}  // namespace pol::sim
