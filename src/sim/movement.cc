#include "sim/movement.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "geo/geodesic.h"

namespace pol::sim {

RoutePath::RoutePath(const std::vector<geo::LatLng>& waypoints,
                     double sample_km) {
  POL_CHECK(!waypoints.empty());
  points_.push_back(waypoints[0]);
  for (size_t i = 1; i < waypoints.size(); ++i) {
    // Sample each leg along the great circle; skip the first point of
    // every leg (it duplicates the previous leg's last point).
    const std::vector<geo::LatLng> leg =
        geo::SampleGreatCircle(waypoints[i - 1], waypoints[i], sample_km);
    for (size_t j = 1; j < leg.size(); ++j) points_.push_back(leg[j]);
  }
  cumulative_km_.resize(points_.size(), 0.0);
  for (size_t i = 1; i < points_.size(); ++i) {
    cumulative_km_[i] =
        cumulative_km_[i - 1] + geo::HaversineKm(points_[i - 1], points_[i]);
  }
  length_km_ = cumulative_km_.back();
}

void RoutePath::At(double distance_km, geo::LatLng* position,
                   double* course_deg) const {
  const double d = std::clamp(distance_km, 0.0, length_km_);
  // Find the segment containing d.
  const auto it =
      std::upper_bound(cumulative_km_.begin(), cumulative_km_.end(), d);
  size_t hi = static_cast<size_t>(it - cumulative_km_.begin());
  if (hi >= points_.size()) hi = points_.size() - 1;
  if (hi == 0) hi = 1;
  const size_t lo = hi - 1;
  const double seg_len = cumulative_km_[hi] - cumulative_km_[lo];
  const double t = seg_len <= 1e-12 ? 0.0 : (d - cumulative_km_[lo]) / seg_len;
  if (position != nullptr) {
    *position = geo::Interpolate(points_[lo], points_[hi], t);
  }
  if (course_deg != nullptr) {
    *course_deg = geo::InitialBearingDeg(points_[lo], points_[hi]);
  }
}

double ProfileSpeedKnots(const SpeedProfile& profile, double distance_km,
                         double total_km) {
  if (total_km <= 0.0) return profile.harbour_knots;
  const double d = std::clamp(distance_km, 0.0, total_km);
  // Short hops may not have room for full ramps.
  const double ramp = std::min(profile.ramp_km, total_km / 3.0);
  double speed = profile.cruise_knots;
  if (d < ramp) {
    const double t = d / ramp;
    speed = profile.harbour_knots +
            (profile.cruise_knots - profile.harbour_knots) * t;
  } else if (total_km - d < ramp) {
    const double t = (total_km - d) / ramp;
    speed = profile.harbour_knots +
            (profile.cruise_knots - profile.harbour_knots) * t;
  }
  return speed;
}

}  // namespace pol::sim
