#ifndef POL_SIM_MOVEMENT_H_
#define POL_SIM_MOVEMENT_H_

#include <vector>

#include "geo/latlng.h"

// Kinematics along a route: densified polylines addressable by distance,
// and the speed profile of a commercial voyage (harbour manoeuvring,
// acceleration to sea speed, cruise, approach deceleration).

namespace pol::sim {

// A route polyline densified to ~`sample_km` spacing, addressable by
// cumulative distance from the origin.
class RoutePath {
 public:
  explicit RoutePath(const std::vector<geo::LatLng>& waypoints,
                     double sample_km = 15.0);

  double length_km() const { return length_km_; }

  // Position and course (degrees true) at `distance_km` along the route;
  // distances are clamped to [0, length].
  void At(double distance_km, geo::LatLng* position,
          double* course_deg) const;

  const std::vector<geo::LatLng>& points() const { return points_; }

 private:
  std::vector<geo::LatLng> points_;
  std::vector<double> cumulative_km_;  // Same size as points_.
  double length_km_ = 0.0;
};

// Voyage speed profile. Vessels leave the berth at harbour speed, reach
// cruise speed after the acceleration stretch, and slow down over the
// approach stretch before the destination.
struct SpeedProfile {
  double harbour_knots = 6.0;
  double cruise_knots = 14.0;
  double ramp_km = 40.0;  // Length of the acceleration/deceleration zones.
};

// Target speed at `distance_km` along a voyage of `total_km`.
double ProfileSpeedKnots(const SpeedProfile& profile, double distance_km,
                         double total_km);

}  // namespace pol::sim

#endif  // POL_SIM_MOVEMENT_H_
