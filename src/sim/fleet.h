#ifndef POL_SIM_FLEET_H_
#define POL_SIM_FLEET_H_

#include <cstdint>
#include <vector>

#include "ais/messages.h"
#include "ais/types.h"
#include "common/rng.h"
#include "common/time_util.h"
#include "sim/ports.h"
#include "sim/routes.h"

// The fleet simulator: generates a year (or any window) of global AIS
// traffic — the stand-in for the paper's proprietary 2022 archive.
//
// Commercial vessels sail port-to-port rotations over the sea-lane
// network with realistic speed profiles and port stays; non-commercial
// craft (fishing, tugs, pleasure) produce local traffic around their
// home ports. Reports are sampled at reception-model intervals (denser
// near the coast, sparser mid-ocean, mimicking terrestrial vs satellite
// AIS coverage) and pass through an error-injection stage reproducing
// the archive's real failure modes: corrupt fields, duplicates, GPS
// position jumps and late (out-of-order) delivery.
//
// Output is deterministic for a given config (seeded, thread-free).

namespace pol::sim {

struct FleetConfig {
  uint64_t seed = 20220101;

  int commercial_vessels = 150;
  int noncommercial_vessels = 400;

  UnixSeconds start_time = 1640995200;  // 2022-01-01 00:00:00 UTC.
  UnixSeconds end_time = 1672531200;    // 2023-01-01 00:00:00 UTC.

  // Reception model: mean seconds between ARCHIVED reports (the on-air
  // rate is seconds, but only a fraction reaches the archive; the paper's
  // 2.7B reports / 60k vessels / year works out to one report per ~700s).
  double coastal_interval_s = 600.0;
  double ocean_interval_s = 2400.0;
  // Non-commercial craft operate inshore under dense terrestrial
  // coverage, so their archived cadence is faster. This drives the raw
  // archive being dominated by non-commercial rows (Table 1's 600 GB ->
  // 60 GB reduction).
  double noncommercial_interval_s = 300.0;
  // Distance from a route's ends treated as coastal for the model.
  double coastal_band_km = 250.0;

  // Error injection rates (per emitted report).
  double corrupt_field_rate = 0.006;
  double duplicate_rate = 0.004;
  double position_jump_rate = 0.002;
  double late_delivery_rate = 0.01;

  const PortDatabase* ports = nullptr;    // Defaults to PortDatabase::Global.
  const RouteNetwork* routes = nullptr;   // Defaults to RouteNetwork::Global.
};

// Ground truth for one completed voyage (used to evaluate the ETA and
// destination-prediction use cases against reality).
struct VoyageTruth {
  ais::Mmsi mmsi = 0;
  PortId origin = kNoPort;
  PortId destination = kNoPort;
  UnixSeconds departure = 0;
  UnixSeconds arrival = 0;
  double distance_km = 0.0;
};

struct SimulationOutput {
  std::vector<ais::VesselInfo> fleet;
  std::vector<ais::PositionReport> reports;
  std::vector<VoyageTruth> voyages;

  // Injection accounting (lets tests assert the cleaner's recall).
  uint64_t injected_corrupt = 0;
  uint64_t injected_duplicates = 0;
  uint64_t injected_jumps = 0;
  uint64_t injected_late = 0;
};

class FleetSimulator {
 public:
  explicit FleetSimulator(FleetConfig config);

  // Runs the full simulation. Deterministic for a given config.
  SimulationOutput Run();

 private:
  struct VesselState;

  ais::VesselInfo MakeCommercialVessel(int index, Rng& rng) const;
  ais::VesselInfo MakeNoncommercialVessel(int index, Rng& rng) const;

  // Picks a port for a vessel segment (weighted), excluding `exclude`.
  PortId SamplePort(ais::MarketSegment segment, PortId exclude,
                    const geo::LatLng* near, Rng& rng) const;

  void SimulateCommercialVessel(const ais::VesselInfo& vessel, Rng rng,
                                SimulationOutput* out);
  void SimulateNoncommercialVessel(const ais::VesselInfo& vessel, Rng rng,
                                   SimulationOutput* out);

  // Applies the error-injection stage and appends to out->reports.
  void Emit(ais::PositionReport report, Rng& rng, SimulationOutput* out);

  FleetConfig config_;
};

}  // namespace pol::sim

#endif  // POL_SIM_FLEET_H_
