#include "sim/routes.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "common/check.h"
#include "geo/geodesic.h"

namespace pol::sim {
namespace {

struct WaypointRow {
  const char* name;
  double lat;
  double lng;
};

// Named corners of the world's sea lanes.
constexpr WaypointRow kWaypoints[] = {
    {"dover", 51.0, 1.4},
    {"north-sea-south", 52.5, 3.0},
    {"skagerrak", 57.8, 10.5},
    {"baltic-south", 55.0, 14.0},
    {"gulf-of-finland", 59.8, 26.0},
    {"ushant", 48.5, -5.5},
    {"finisterre", 43.5, -9.5},
    {"gibraltar", 35.95, -5.6},
    {"sicily-channel", 37.2, 11.3},
    {"crete-south", 34.5, 24.0},
    {"aegean-south", 36.5, 25.0},
    {"bosphorus", 41.2, 29.1},
    {"black-sea", 43.0, 32.0},
    {"port-said-approach", 31.6, 32.4},
    {"suez-south", 29.5, 32.6},
    {"red-sea-north", 27.5, 34.5},
    {"red-sea-mid", 20.0, 38.5},
    {"bab-el-mandeb", 12.5, 43.3},
    {"gulf-of-aden", 12.8, 48.0},
    {"arabian-sea", 12.0, 60.0},
    {"gulf-of-oman", 24.5, 59.0},
    {"hormuz", 26.4, 56.6},
    {"persian-gulf", 27.0, 51.5},
    {"dondra-head", 5.5, 80.6},
    {"bay-of-bengal", 13.0, 85.0},
    {"malacca-northwest", 5.5, 97.0},
    {"malacca-mid", 3.2, 100.2},
    {"singapore-strait", 1.2, 103.9},
    {"gulf-of-thailand", 9.5, 101.5},
    {"south-china-sea-south", 5.0, 108.0},
    {"south-china-sea-north", 15.0, 113.5},
    {"luzon-strait", 21.0, 120.8},
    {"taiwan-strait", 24.5, 119.5},
    {"east-china-sea", 29.0, 124.0},
    {"korea-strait", 34.2, 129.0},
    {"tokyo-approach", 34.8, 139.8},
    {"java-sea", -5.5, 110.0},
    {"lombok-strait", -9.0, 115.7},
    {"makassar-strait", 0.5, 118.0},
    {"celebes-sea", 5.5, 122.0},
    {"cape-of-good-hope", -35.2, 18.3},
    {"durban-approach", -30.8, 31.5},
    {"mozambique-north", -12.0, 41.5},
    {"canary", 28.0, -15.0},
    {"west-africa", 10.0, -18.0},
    {"gulf-of-guinea", 3.0, 3.0},
    {"angola-coast", -15.0, 8.0},
    {"northeast-brazil", -5.0, -34.5},
    {"south-brazil", -27.0, -46.5},
    {"rio-de-la-plata", -36.0, -54.0},
    {"cape-horn", -56.5, -67.0},
    {"chile-coast", -30.0, -72.5},
    {"panama-pacific", 8.8, -79.5},
    {"panama-caribbean", 9.5, -79.9},
    {"caribbean-east", 15.0, -68.0},
    {"yucatan-channel", 21.8, -85.5},
    {"gulf-of-mexico", 26.5, -90.0},
    {"florida-strait", 24.4, -81.5},
    {"hatteras", 35.0, -75.0},
    {"new-york-approach", 40.4, -73.5},
    {"baja-california", 23.0, -110.5},
    {"california-coast", 34.0, -121.0},
    {"juan-de-fuca", 48.4, -124.8},
    {"bass-strait", -39.5, 145.5},
    {"australian-bight", -35.5, 130.0},
    {"coral-sea", -18.0, 152.5},
    {"north-pacific", 45.0, 175.0},
};

// Navigable legs between waypoints, by name.
constexpr const char* kEdges[][2] = {
    {"dover", "north-sea-south"},
    {"north-sea-south", "skagerrak"},
    {"skagerrak", "baltic-south"},
    {"baltic-south", "gulf-of-finland"},
    {"dover", "ushant"},
    {"ushant", "finisterre"},
    {"finisterre", "gibraltar"},
    {"gibraltar", "sicily-channel"},
    {"sicily-channel", "crete-south"},
    {"crete-south", "port-said-approach"},
    {"crete-south", "aegean-south"},
    {"aegean-south", "bosphorus"},
    {"bosphorus", "black-sea"},
    {"port-said-approach", "suez-south"},  // The Suez Canal.
    {"suez-south", "red-sea-north"},
    {"red-sea-north", "red-sea-mid"},
    {"red-sea-mid", "bab-el-mandeb"},
    {"bab-el-mandeb", "gulf-of-aden"},
    {"gulf-of-aden", "arabian-sea"},
    {"arabian-sea", "gulf-of-oman"},
    {"gulf-of-oman", "hormuz"},
    {"hormuz", "persian-gulf"},
    {"arabian-sea", "dondra-head"},
    {"dondra-head", "bay-of-bengal"},
    {"bay-of-bengal", "malacca-northwest"},
    {"dondra-head", "malacca-northwest"},
    {"malacca-northwest", "malacca-mid"},
    {"malacca-mid", "singapore-strait"},
    {"singapore-strait", "south-china-sea-south"},
    {"singapore-strait", "gulf-of-thailand"},
    {"gulf-of-thailand", "south-china-sea-south"},
    {"south-china-sea-south", "south-china-sea-north"},
    {"south-china-sea-north", "luzon-strait"},
    {"south-china-sea-north", "taiwan-strait"},
    {"taiwan-strait", "east-china-sea"},
    {"luzon-strait", "east-china-sea"},
    {"east-china-sea", "korea-strait"},
    {"east-china-sea", "tokyo-approach"},
    {"korea-strait", "tokyo-approach"},
    {"singapore-strait", "java-sea"},
    {"java-sea", "lombok-strait"},
    {"lombok-strait", "makassar-strait"},
    {"makassar-strait", "celebes-sea"},
    {"celebes-sea", "luzon-strait"},
    {"gibraltar", "canary"},
    {"canary", "west-africa"},
    {"west-africa", "gulf-of-guinea"},
    {"gulf-of-guinea", "angola-coast"},
    {"angola-coast", "cape-of-good-hope"},
    {"cape-of-good-hope", "durban-approach"},
    {"durban-approach", "mozambique-north"},
    {"mozambique-north", "gulf-of-aden"},
    {"west-africa", "northeast-brazil"},
    {"cape-of-good-hope", "northeast-brazil"},
    {"northeast-brazil", "caribbean-east"},
    {"northeast-brazil", "south-brazil"},
    {"south-brazil", "rio-de-la-plata"},
    {"rio-de-la-plata", "cape-horn"},
    {"cape-horn", "chile-coast"},
    {"chile-coast", "panama-pacific"},
    {"panama-pacific", "panama-caribbean"},  // The Panama Canal.
    {"panama-caribbean", "caribbean-east"},
    {"panama-caribbean", "yucatan-channel"},
    {"caribbean-east", "florida-strait"},
    {"yucatan-channel", "gulf-of-mexico"},
    {"yucatan-channel", "florida-strait"},
    {"gulf-of-mexico", "florida-strait"},
    {"florida-strait", "hatteras"},
    {"hatteras", "new-york-approach"},
    {"new-york-approach", "ushant"},   // North Atlantic crossing.
    {"new-york-approach", "finisterre"},
    {"panama-pacific", "baja-california"},
    {"baja-california", "california-coast"},
    {"california-coast", "juan-de-fuca"},
    {"california-coast", "north-pacific"},  // Transpacific great circle.
    {"juan-de-fuca", "north-pacific"},
    {"north-pacific", "tokyo-approach"},
    {"bass-strait", "australian-bight"},
    {"bass-strait", "coral-sea"},
    {"coral-sea", "celebes-sea"},
    {"australian-bight", "cape-of-good-hope"},  // Southern Indian Ocean.
    {"australian-bight", "dondra-head"},
    {"australian-bight", "lombok-strait"},
    {"coral-sea", "lombok-strait"},
};

// Ports attach to their nearest waypoint unconditionally, plus up to two
// more that are near-ties (within this factor of the nearest distance).
// The near-tie rule keeps attachments in the port's own basin — a
// distance cap alone would attach Mediterranean ports to Dover straight
// across France.
constexpr int kPortAttachCount = 3;
constexpr double kAttachTieFactor = 1.5;

// Ports sharing a bay or harbour approach get direct legs (Los Angeles /
// Long Beach, Kobe / Osaka). Longer direct legs are deliberately NOT
// created: with no coastline model they would cut across continents
// (e.g. Le Havre - Marseille through France); regional hops instead run
// via the attached waypoints.
constexpr double kDirectPortLegKm = 300.0;

}  // namespace

RouteNetwork::RouteNetwork(
    const PortDatabase* ports,
    const std::vector<std::pair<std::string, std::string>>& disabled_legs)
    : ports_(ports) {
  POL_CHECK(ports_ != nullptr);
  waypoints_.reserve(std::size(kWaypoints));
  std::map<std::string, int> index;
  for (const WaypointRow& row : kWaypoints) {
    index[row.name] = static_cast<int>(waypoints_.size());
    waypoints_.push_back({row.name, {row.lat, row.lng}});
  }
  const int num_nodes =
      static_cast<int>(waypoints_.size() + ports_->size());
  adjacency_.assign(static_cast<size_t>(num_nodes), {});

  auto is_disabled = [&disabled_legs](const char* a, const char* b) {
    for (const auto& [x, y] : disabled_legs) {
      if ((x == a && y == b) || (x == b && y == a)) return true;
    }
    return false;
  };
  for (const auto& edge : kEdges) {
    if (is_disabled(edge[0], edge[1])) continue;
    const auto a = index.find(edge[0]);
    const auto b = index.find(edge[1]);
    POL_CHECK(a != index.end() && b != index.end())
        << edge[0] << " - " << edge[1];
    AddEdge(a->second, b->second);
  }

  // Attach every port to its nearest waypoints.
  for (const Port& port : ports_->ports()) {
    std::vector<std::pair<double, int>> distances;
    for (size_t w = 0; w < waypoints_.size(); ++w) {
      distances.push_back(
          {geo::HaversineKm(port.position, waypoints_[w].position),
           static_cast<int>(w)});
    }
    std::sort(distances.begin(), distances.end());
    const double nearest_km = distances.front().first;
    int attached = 0;
    for (const auto& [km, node] : distances) {
      if (attached >= kPortAttachCount) break;
      if (attached > 0 && km > nearest_km * kAttachTieFactor) break;
      AddEdge(PortNode(port.id), node);
      ++attached;
    }
  }

  // Direct coastal legs between nearby ports.
  for (const Port& a : ports_->ports()) {
    for (const Port& b : ports_->ports()) {
      if (b.id <= a.id) continue;
      if (geo::HaversineKm(a.position, b.position) <= kDirectPortLegKm) {
        AddEdge(PortNode(a.id), PortNode(b.id));
      }
    }
  }
}

const RouteNetwork& RouteNetwork::Global() {
  static const RouteNetwork& instance =
      // NOLINTNEXTLINE(pollint:naked-new): leaky singleton, no destruction order.
      *new RouteNetwork(&PortDatabase::Global());
  return instance;
}

geo::LatLng RouteNetwork::NodePosition(int node) const {
  if (node < static_cast<int>(waypoints_.size())) {
    return waypoints_[static_cast<size_t>(node)].position;
  }
  const size_t port_index =
      static_cast<size_t>(node) - waypoints_.size();
  return ports_->ports()[port_index].position;
}

void RouteNetwork::AddEdge(int a, int b) {
  const double km = geo::HaversineKm(NodePosition(a), NodePosition(b));
  adjacency_[static_cast<size_t>(a)].push_back({b, km});
  adjacency_[static_cast<size_t>(b)].push_back({a, km});
}

Result<std::vector<int>> RouteNetwork::ShortestPath(int from, int to) const {
  const size_t n = adjacency_.size();
  std::vector<double> dist(n, std::numeric_limits<double>::max());
  std::vector<int> prev(n, -1);
  using QueueEntry = std::pair<double, int>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  dist[static_cast<size_t>(from)] = 0.0;
  queue.push({0.0, from});
  while (!queue.empty()) {
    const auto [d, node] = queue.top();
    queue.pop();
    if (d > dist[static_cast<size_t>(node)]) continue;
    if (node == to) break;
    // Ports are terminals, never transit nodes: routing through a port
    // would exploit its attachment edges as land-crossing shortcuts.
    if (node != from && node >= static_cast<int>(waypoints_.size())) {
      continue;
    }
    for (const auto& [next, km] : adjacency_[static_cast<size_t>(node)]) {
      const double candidate = d + km;
      if (candidate < dist[static_cast<size_t>(next)]) {
        dist[static_cast<size_t>(next)] = candidate;
        prev[static_cast<size_t>(next)] = node;
        queue.push({candidate, next});
      }
    }
  }
  if (dist[static_cast<size_t>(to)] == std::numeric_limits<double>::max()) {
    return Status::NotFound("no sea route between nodes");
  }
  std::vector<int> path;
  for (int node = to; node != -1; node = prev[static_cast<size_t>(node)]) {
    path.push_back(node);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Result<std::vector<geo::LatLng>> RouteNetwork::Route(PortId from,
                                                     PortId to) const {
  POL_RETURN_IF_ERROR(ports_->Find(from).status());
  POL_RETURN_IF_ERROR(ports_->Find(to).status());
  if (from == to) return Status::InvalidArgument("route to the same port");
  POL_ASSIGN_OR_RETURN(const std::vector<int> path,
                       ShortestPath(PortNode(from), PortNode(to)));
  std::vector<geo::LatLng> polyline;
  polyline.reserve(path.size());
  for (const int node : path) polyline.push_back(NodePosition(node));
  return polyline;
}

double RouteNetwork::PolylineLengthKm(
    const std::vector<geo::LatLng>& polyline) {
  double total = 0.0;
  for (size_t i = 1; i < polyline.size(); ++i) {
    total += geo::HaversineKm(polyline[i - 1], polyline[i]);
  }
  return total;
}

Result<double> RouteNetwork::SeaDistanceKm(PortId from, PortId to) const {
  POL_ASSIGN_OR_RETURN(const std::vector<geo::LatLng> route, Route(from, to));
  return PolylineLengthKm(route);
}

}  // namespace pol::sim
