#include "sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "geo/geodesic.h"
#include "sim/movement.h"

namespace pol::sim {
namespace {

// Segment mix of the commercial fleet (rough world-fleet proportions).
constexpr ais::MarketSegment kCommercialMix[] = {
    ais::MarketSegment::kContainer,    ais::MarketSegment::kContainer,
    ais::MarketSegment::kContainer,    ais::MarketSegment::kContainer,
    ais::MarketSegment::kContainer,    ais::MarketSegment::kDryBulk,
    ais::MarketSegment::kDryBulk,      ais::MarketSegment::kDryBulk,
    ais::MarketSegment::kDryBulk,      ais::MarketSegment::kDryBulk,
    ais::MarketSegment::kDryBulk,      ais::MarketSegment::kTanker,
    ais::MarketSegment::kTanker,       ais::MarketSegment::kTanker,
    ais::MarketSegment::kTanker,       ais::MarketSegment::kTanker,
    ais::MarketSegment::kGeneralCargo, ais::MarketSegment::kGeneralCargo,
    ais::MarketSegment::kGeneralCargo, ais::MarketSegment::kPassenger,
};

struct SegmentSpec {
  double min_gt;
  double max_gt;
  double min_cruise;
  double max_cruise;
};

SegmentSpec SpecFor(ais::MarketSegment segment) {
  switch (segment) {
    case ais::MarketSegment::kContainer:
      return {20000, 220000, 16.0, 22.0};
    case ais::MarketSegment::kDryBulk:
      return {15000, 200000, 11.0, 14.5};
    case ais::MarketSegment::kTanker:
      return {10000, 300000, 11.0, 15.5};
    case ais::MarketSegment::kGeneralCargo:
      return {5500, 40000, 12.0, 16.0};
    case ais::MarketSegment::kPassenger:
      return {20000, 150000, 17.0, 22.0};
    case ais::MarketSegment::kFishing:
      return {100, 2500, 8.0, 12.0};
    case ais::MarketSegment::kTugAndService:
      return {200, 3000, 8.0, 13.0};
    case ais::MarketSegment::kPleasure:
      return {50, 500, 5.0, 20.0};
    case ais::MarketSegment::kOther:
      return {300, 4000, 8.0, 14.0};
  }
  return {300, 4000, 8.0, 14.0};
}

std::string MakeName(const char* prefix, int index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s %04d", prefix, index);
  return buf;
}

}  // namespace

FleetSimulator::FleetSimulator(FleetConfig config) : config_(config) {
  if (config_.ports == nullptr) config_.ports = &PortDatabase::Global();
  if (config_.routes == nullptr) config_.routes = &RouteNetwork::Global();
  POL_CHECK(config_.end_time > config_.start_time);
}

ais::VesselInfo FleetSimulator::MakeCommercialVessel(int index,
                                                     Rng& rng) const {
  ais::VesselInfo vessel;
  vessel.mmsi = static_cast<ais::Mmsi>(200000000 + index * 37 + 13);
  vessel.segment = kCommercialMix[rng.NextBelow(std::size(kCommercialMix))];
  const SegmentSpec spec = SpecFor(vessel.segment);
  // Log-uniform tonnage: fleets have many mid-size and few giant ships.
  const double log_gt = rng.Uniform(std::log(spec.min_gt), std::log(spec.max_gt));
  vessel.gross_tonnage = static_cast<int>(std::exp(log_gt));
  vessel.design_speed_knots = rng.Uniform(spec.min_cruise, spec.max_cruise);
  vessel.length_m = 60.0 + std::pow(vessel.gross_tonnage, 0.38);
  vessel.ship_type_code = ais::ShipTypeCodeForSegment(vessel.segment);
  vessel.transceiver = ais::TransceiverClass::kClassA;
  vessel.name = MakeName("POLARIS", index);
  return vessel;
}

ais::VesselInfo FleetSimulator::MakeNoncommercialVessel(int index,
                                                        Rng& rng) const {
  ais::VesselInfo vessel;
  vessel.mmsi = static_cast<ais::Mmsi>(500000000 + index * 41 + 7);
  const double pick = rng.NextDouble();
  vessel.segment = pick < 0.5   ? ais::MarketSegment::kFishing
                   : pick < 0.75 ? ais::MarketSegment::kTugAndService
                                 : ais::MarketSegment::kPleasure;
  const SegmentSpec spec = SpecFor(vessel.segment);
  vessel.gross_tonnage =
      static_cast<int>(rng.Uniform(spec.min_gt, spec.max_gt));
  vessel.design_speed_knots = rng.Uniform(spec.min_cruise, spec.max_cruise);
  vessel.length_m = 8.0 + std::pow(vessel.gross_tonnage, 0.4);
  vessel.ship_type_code = ais::ShipTypeCodeForSegment(vessel.segment);
  // Small craft mostly carry class B transceivers.
  vessel.transceiver = rng.Bernoulli(0.8) ? ais::TransceiverClass::kClassB
                                          : ais::TransceiverClass::kClassA;
  vessel.name = MakeName("LOCAL", index);
  return vessel;
}

PortId FleetSimulator::SamplePort(ais::MarketSegment segment, PortId exclude,
                                  const geo::LatLng* near, Rng& rng) const {
  const auto& ports = config_.ports->ports();
  double total = 0.0;
  std::vector<double> weights(ports.size(), 0.0);
  for (size_t i = 0; i < ports.size(); ++i) {
    if (ports[i].id == exclude) continue;
    double w = ports[i].segment_weight[static_cast<int>(segment)];
    if (w <= 0.0) continue;
    if (near != nullptr) {
      // Regional bias: real rotations favour nearby ports, with a tail
      // of long-haul legs.
      const double km = geo::HaversineKm(*near, ports[i].position);
      w /= 1.0 + km / 5000.0;
    }
    weights[i] = w;
    total += w;
  }
  if (total <= 0.0) return kNoPort;
  double target = rng.NextDouble() * total;
  for (size_t i = 0; i < ports.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0 && weights[i] > 0.0) return ports[i].id;
  }
  for (size_t i = ports.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return ports[i - 1].id;
  }
  return kNoPort;
}

void FleetSimulator::Emit(ais::PositionReport report, Rng& rng,
                          SimulationOutput* out) {
  // Late delivery: the archive timestamps by reception, and satellite
  // passes deliver batches late, so a slice of messages lands with a
  // timestamp earlier than the previously emitted one.
  if (rng.Bernoulli(config_.late_delivery_rate)) {
    report.timestamp -= rng.UniformInt(60, 900);
    if (report.timestamp < config_.start_time) {
      report.timestamp = config_.start_time;
    }
    ++out->injected_late;
  }
  // GPS jumps: a single wildly wrong fix.
  if (rng.Bernoulli(config_.position_jump_rate)) {
    ais::PositionReport jump = report;
    jump.lat_deg =
        std::clamp(jump.lat_deg + rng.Uniform(-8.0, 8.0), -89.9, 89.9);
    jump.lng_deg = geo::LatLng(0.0, jump.lng_deg + rng.Uniform(-8.0, 8.0))
                       .Normalized()
                       .lng_deg;
    ++out->injected_jumps;
    out->reports.push_back(jump);
    return;  // The jump replaces the true fix.
  }
  // Field corruption: decoder bugs, truncation, bad transceivers.
  if (rng.Bernoulli(config_.corrupt_field_rate)) {
    switch (rng.NextBelow(5)) {
      case 0:
        report.lat_deg = ais::kLatUnavailable;
        break;
      case 1:
        report.lng_deg = ais::kLngUnavailable;
        break;
      case 2:
        report.sog_knots = 170.0;
        break;
      case 3:
        report.cog_deg = 404.0;
        break;
      case 4:
        report.heading_deg = 720.0;
        break;
    }
    ++out->injected_corrupt;
  }
  out->reports.push_back(report);
  // Duplicates: the same message received by several stations.
  if (rng.Bernoulli(config_.duplicate_rate)) {
    out->reports.push_back(report);
    ++out->injected_duplicates;
  }
}

void FleetSimulator::SimulateCommercialVessel(const ais::VesselInfo& vessel,
                                              Rng rng,
                                              SimulationOutput* out) {
  PortId current = SamplePort(vessel.segment, kNoPort, nullptr, rng);
  if (current == kNoPort) return;
  UnixSeconds now =
      config_.start_time + rng.UniformInt(0, 5 * kSecondsPerDay);

  // The vessel is alongside before its first departure: emit an initial
  // berth period so the first voyage has a known origin (otherwise the
  // trip extractor rightly discards it as a leading leg).
  {
    const Port* home = *config_.ports->Find(current);
    const geo::LatLng berth = geo::DestinationPoint(
        home->position, rng.Uniform(0, 360), rng.Uniform(0.0, 3.0));
    const UnixSeconds berth_end = now + static_cast<UnixSeconds>(
        rng.Uniform(0.15, 0.8) * static_cast<double>(kSecondsPerDay));
    while (now < berth_end && now < config_.end_time) {
      now += static_cast<UnixSeconds>(std::clamp(
          rng.Exponential(1.0 / (config_.coastal_interval_s * 3.0)), 30.0,
          config_.coastal_interval_s * 12.0));
      ais::PositionReport report;
      report.mmsi = vessel.mmsi;
      report.timestamp = now;
      report.lat_deg = berth.lat_deg;
      report.lng_deg = berth.lng_deg;
      report.sog_knots = rng.Uniform(0.0, 0.3);
      report.cog_deg = rng.Uniform(0.0, 359.9);
      report.heading_deg = ais::kHeadingUnavailable;
      report.nav_status = ais::NavStatus::kMoored;
      report.message_type = static_cast<uint8_t>(1 + rng.NextBelow(3));
      Emit(report, rng, out);
    }
  }

  while (now < config_.end_time) {
    // Pick the next leg of the rotation.
    const Port* current_port = *config_.ports->Find(current);
    PortId next = kNoPort;
    std::vector<geo::LatLng> route;
    for (int attempt = 0; attempt < 10 && next == kNoPort; ++attempt) {
      const PortId candidate =
          SamplePort(vessel.segment, current, &current_port->position, rng);
      if (candidate == kNoPort) break;
      auto routed = config_.routes->Route(current, candidate);
      if (routed.ok()) {
        next = candidate;
        route = std::move(routed).value();
      }
    }
    if (next == kNoPort) return;

    const RoutePath path(route, 15.0);
    SpeedProfile profile;
    profile.cruise_knots =
        vessel.design_speed_knots * rng.Uniform(0.92, 1.02);
    const double total_km = path.length_km();

    VoyageTruth truth;
    truth.mmsi = vessel.mmsi;
    truth.origin = current;
    truth.destination = next;
    truth.departure = now;
    truth.distance_km = total_km;

    // Sail the leg, sampling reports at reception-model intervals.
    double d = 0.0;
    bool completed = true;
    // Per-voyage systematic heading drift (current/wind leeway).
    const double drift_deg = rng.NextGaussian() * 3.0;
    // Traffic separation: vessels keep to the starboard side of the
    // lane, so opposite directions sail parallel offset tracks (the
    // separation schema visible in the paper's Figure 4).
    const double lane_offset_km = rng.Uniform(2.5, 5.0);
    while (d < total_km) {
      const bool coastal = d < config_.coastal_band_km ||
                           total_km - d < config_.coastal_band_km;
      const double mean_interval =
          coastal ? config_.coastal_interval_s : config_.ocean_interval_s;
      const double interval =
          std::clamp(rng.Exponential(1.0 / mean_interval), 10.0, 4.0 * mean_interval);
      const double speed =
          std::max(0.5, ProfileSpeedKnots(profile, d, total_km) +
                            rng.NextGaussian() * 0.3);
      now += static_cast<UnixSeconds>(interval);
      d += speed * (interval / 3600.0) * geo::kKmPerNauticalMile;
      if (now >= config_.end_time) {
        completed = false;
        break;
      }
      if (d >= total_km) break;  // Arrival; the port stay reports follow.

      geo::LatLng position;
      double course = 0.0;
      path.At(d, &position, &course);
      // Keep right of the lane centreline (except in harbour approaches,
      // where pilots converge on the fairway).
      if (d > 20.0 && total_km - d > 20.0) {
        position = geo::DestinationPoint(position, course + 90.0,
                                         lane_offset_km);
      }

      ais::PositionReport report;
      report.mmsi = vessel.mmsi;
      report.timestamp = now;
      report.lat_deg = position.lat_deg;
      report.lng_deg = position.lng_deg;
      report.sog_knots = std::min(102.2, speed + rng.NextGaussian() * 0.2);
      report.cog_deg =
          std::fmod(course + rng.NextGaussian() * 1.5 + 360.0, 360.0);
      report.heading_deg =
          std::fmod(course + drift_deg + rng.NextGaussian() * 1.0 + 360.0,
                    360.0);
      report.nav_status = ais::NavStatus::kUnderWayUsingEngine;
      report.message_type = static_cast<uint8_t>(1 + rng.NextBelow(3));
      Emit(report, rng, out);
    }
    if (!completed) return;

    const Port* dest_port = *config_.ports->Find(next);

    // Congestion: a share of arrivals waits at the anchorage outside the
    // port limits before proceeding in — the "loitering areas" visible
    // in the paper's Figure 4 speed panel. Anchorage reports are at sea
    // (outside the geofence), so they stay part of the trip.
    if (rng.Bernoulli(0.35)) {
      const geo::LatLng anchorage = geo::DestinationPoint(
          dest_port->position, rng.Uniform(0, 360),
          dest_port->geofence_radius_km + rng.Uniform(3.0, 12.0));
      const UnixSeconds anchor_end =
          now + static_cast<UnixSeconds>(rng.Uniform(4.0, 36.0) * 3600.0);
      while (now < anchor_end && now < config_.end_time) {
        now += static_cast<UnixSeconds>(std::clamp(
            rng.Exponential(1.0 / config_.coastal_interval_s), 30.0,
            4.0 * config_.coastal_interval_s));
        const geo::LatLng swing = geo::DestinationPoint(
            anchorage, rng.Uniform(0, 360), rng.Uniform(0.0, 0.4));
        ais::PositionReport report;
        report.mmsi = vessel.mmsi;
        report.timestamp = now;
        report.lat_deg = swing.lat_deg;
        report.lng_deg = swing.lng_deg;
        report.sog_knots = rng.Uniform(0.0, 0.8);
        report.cog_deg = rng.Uniform(0.0, 359.9);
        report.heading_deg = ais::kHeadingUnavailable;
        report.nav_status = ais::NavStatus::kAtAnchor;
        report.message_type = static_cast<uint8_t>(1 + rng.NextBelow(3));
        Emit(report, rng, out);
      }
      if (now >= config_.end_time) return;
    }

    truth.arrival = now;
    out->voyages.push_back(truth);

    // Port stay: moored reports at the destination berth.
    const UnixSeconds stay_end =
        now + static_cast<UnixSeconds>(
                  rng.Uniform(0.5, 3.5) * static_cast<double>(kSecondsPerDay));
    const geo::LatLng berth = geo::DestinationPoint(
        dest_port->position, rng.Uniform(0, 360), rng.Uniform(0.0, 3.0));
    while (now < stay_end && now < config_.end_time) {
      now += static_cast<UnixSeconds>(std::clamp(
          rng.Exponential(1.0 / (config_.coastal_interval_s * 3.0)), 30.0,
          config_.coastal_interval_s * 12.0));
      ais::PositionReport report;
      report.mmsi = vessel.mmsi;
      report.timestamp = now;
      const geo::LatLng swing =
          geo::DestinationPoint(berth, rng.Uniform(0, 360),
                                rng.Uniform(0.0, 0.05));
      report.lat_deg = swing.lat_deg;
      report.lng_deg = swing.lng_deg;
      report.sog_knots = rng.Uniform(0.0, 0.3);
      report.cog_deg = rng.Uniform(0.0, 359.9);
      report.heading_deg = ais::kHeadingUnavailable;
      report.nav_status = ais::NavStatus::kMoored;
      report.message_type = static_cast<uint8_t>(1 + rng.NextBelow(3));
      Emit(report, rng, out);
    }
    current = next;
  }
}

void FleetSimulator::SimulateNoncommercialVessel(const ais::VesselInfo& vessel,
                                                 Rng rng,
                                                 SimulationOutput* out) {
  // Home port: any port attracts some local traffic.
  const auto& ports = config_.ports->ports();
  const Port& home = ports[rng.NextBelow(ports.size())];
  const double range_km =
      vessel.segment == ais::MarketSegment::kFishing ? 80.0 : 40.0;

  UnixSeconds now = config_.start_time;
  while (now < config_.end_time) {
    // Next working session starts after an idle gap of 0.5 - 4 days.
    now += static_cast<UnixSeconds>(
        rng.Uniform(0.5, 4.0) * static_cast<double>(kSecondsPerDay));
    if (now >= config_.end_time) break;
    const UnixSeconds session_end =
        now + static_cast<UnixSeconds>(rng.Uniform(2.0, 10.0) * 3600.0);

    geo::LatLng position = geo::DestinationPoint(
        home.position, rng.Uniform(0, 360), rng.Uniform(0.0, 10.0));
    double course = rng.Uniform(0, 360);
    while (now < session_end && now < config_.end_time) {
      const double interval = std::clamp(
          rng.Exponential(1.0 / config_.noncommercial_interval_s), 10.0,
          4.0 * config_.noncommercial_interval_s);
      now += static_cast<UnixSeconds>(interval);
      const double speed =
          std::max(0.0, rng.Uniform(0.3, vessel.design_speed_knots));
      // Meandering track; pulled back toward home when straying.
      course += rng.NextGaussian() * 25.0;
      if (geo::HaversineKm(position, home.position) > range_km) {
        course = geo::InitialBearingDeg(position, home.position) +
                 rng.NextGaussian() * 10.0;
      }
      course = std::fmod(course + 360.0, 360.0);
      position = geo::DestinationPoint(
          position, course, speed * (interval / 3600.0) * geo::kKmPerNauticalMile);

      ais::PositionReport report;
      report.mmsi = vessel.mmsi;
      report.timestamp = now;
      report.lat_deg = position.lat_deg;
      report.lng_deg = position.lng_deg;
      report.sog_knots = speed;
      report.cog_deg = course;
      report.heading_deg = std::fmod(course + rng.NextGaussian() * 5.0 + 360.0, 360.0);
      report.nav_status = vessel.segment == ais::MarketSegment::kFishing
                              ? ais::NavStatus::kEngagedInFishing
                              : ais::NavStatus::kUnderWayUsingEngine;
      report.message_type =
          vessel.transceiver == ais::TransceiverClass::kClassB ? 18 : 1;
      Emit(report, rng, out);
    }
  }
}

SimulationOutput FleetSimulator::Run() {
  SimulationOutput out;
  Rng master(config_.seed);

  // Registry first: vessel identities are independent of traffic RNG.
  Rng registry_rng = master.Fork();
  for (int i = 0; i < config_.commercial_vessels; ++i) {
    out.fleet.push_back(MakeCommercialVessel(i, registry_rng));
  }
  for (int i = 0; i < config_.noncommercial_vessels; ++i) {
    out.fleet.push_back(MakeNoncommercialVessel(i, registry_rng));
  }

  // Each vessel gets an independent deterministic stream.
  for (int i = 0; i < config_.commercial_vessels; ++i) {
    uint64_t state = config_.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    SimulateCommercialVessel(out.fleet[static_cast<size_t>(i)],
                             Rng(SplitMix64(state)), &out);
  }
  for (int i = 0; i < config_.noncommercial_vessels; ++i) {
    uint64_t state =
        config_.seed ^ (0xc2b2ae3d27d4eb4fULL * (i + 1));
    SimulateNoncommercialVessel(
        out.fleet[static_cast<size_t>(config_.commercial_vessels + i)],
        Rng(SplitMix64(state)), &out);
  }
  return out;
}

}  // namespace pol::sim
