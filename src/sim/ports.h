#ifndef POL_SIM_PORTS_H_
#define POL_SIM_PORTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ais/types.h"
#include "common/status.h"
#include "geo/latlng.h"

// The world port database — the stand-in for the paper's external port
// information dataset (Table 1: ~20k ports; we embed the ~120 largest,
// which carry the overwhelming share of commercial calls). Coordinates
// are real; geofence radii are realistic approximations of the port
// approach areas used for port-call reconstruction.

namespace pol::sim {

using PortId = uint32_t;

inline constexpr PortId kNoPort = 0;  // Valid port ids start at 1.

// Size classes scale call frequency and geofence radius.
enum class PortSize : uint8_t { kSmall = 0, kMedium = 1, kLarge = 2 };

struct Port {
  PortId id = kNoPort;
  std::string name;
  std::string country;
  geo::LatLng position;
  double geofence_radius_km = 10.0;
  PortSize size = PortSize::kMedium;
  // Relative attractiveness per market segment (0 = never calls here).
  double segment_weight[ais::kNumMarketSegments] = {};
};

class PortDatabase {
 public:
  // The built-in world port table.
  static const PortDatabase& Global();

  // Builds a database from explicit ports (tests use small synthetic
  // sets). Ids are reassigned to 1..n in input order.
  explicit PortDatabase(std::vector<Port> ports);

  size_t size() const { return ports_.size(); }
  const std::vector<Port>& ports() const { return ports_; }

  // Port by id; NotFound when the id is unknown.
  Result<const Port*> Find(PortId id) const;

  // Port whose name matches exactly (case-sensitive); NotFound otherwise.
  Result<const Port*> FindByName(const std::string& name) const;

  // The nearest port to `p`, or nullptr for an empty database.
  const Port* Nearest(const geo::LatLng& p) const;

  // The port whose geofence contains `p`, or kNoPort. When geofences
  // overlap the nearest port wins.
  PortId GeofenceContaining(const geo::LatLng& p) const;

 private:
  std::vector<Port> ports_;
};

// Convenience: a weight table for how often each segment calls at each
// port size (large container hubs dominate container rotations, etc.).
double DefaultSegmentWeight(ais::MarketSegment segment, PortSize size,
                            bool container_hub, bool tanker_terminal,
                            bool bulk_terminal, bool passenger_hub);

}  // namespace pol::sim

#endif  // POL_SIM_PORTS_H_
