#ifndef POL_SIM_ROUTES_H_
#define POL_SIM_ROUTES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geo/latlng.h"
#include "sim/ports.h"

// The global sea-lane network: a hand-authored graph of ~60 named
// waypoints (straits, canals, capes, coastal corners) connected by
// navigable legs, with every port attached to its nearby waypoints.
// Port-to-port routes are shortest paths over this graph, which is what
// concentrates simulated traffic into realistic lanes (Dover-Gibraltar-
// Suez-Malacca and friends) instead of great circles through land.
//
// There is no coastline model; a few legs cut close to shore. That is an
// accepted approximation (documented in DESIGN.md): the reproduced
// results depend on traffic being concentrated and lane-like, not on
// hydrographic fidelity.

namespace pol::sim {

struct SeaWaypoint {
  std::string name;
  geo::LatLng position;
};

class RouteNetwork {
 public:
  // Builds the network over `ports` (not owned; must outlive this).
  // `disabled_legs` removes waypoint legs by name pair (order-agnostic):
  // e.g. {{"port-said-approach", "suez-south"}} closes the Suez Canal —
  // the disruption scenario of the paper's introduction.
  explicit RouteNetwork(
      const PortDatabase* ports,
      const std::vector<std::pair<std::string, std::string>>&
          disabled_legs = {});

  // The network over the built-in world port table.
  static const RouteNetwork& Global();

  // Shortest sea route between two ports: a polyline starting at the
  // origin port and ending at the destination. NotFound when either id
  // is unknown or no path exists.
  Result<std::vector<geo::LatLng>> Route(PortId from, PortId to) const;

  // Total length of a polyline, km.
  static double PolylineLengthKm(const std::vector<geo::LatLng>& polyline);

  // Sea distance between two ports (shortest path over the network).
  Result<double> SeaDistanceKm(PortId from, PortId to) const;

  const std::vector<SeaWaypoint>& waypoints() const { return waypoints_; }

 private:
  // Node ids: [0, W) waypoints, [W, W + P) ports (port id - 1 + W).
  int PortNode(PortId id) const {
    return static_cast<int>(waypoints_.size()) + static_cast<int>(id) - 1;
  }
  geo::LatLng NodePosition(int node) const;
  void AddEdge(int a, int b);

  Result<std::vector<int>> ShortestPath(int from, int to) const;

  const PortDatabase* ports_;
  std::vector<SeaWaypoint> waypoints_;
  std::vector<std::vector<std::pair<int, double>>> adjacency_;
};

}  // namespace pol::sim

#endif  // POL_SIM_ROUTES_H_
