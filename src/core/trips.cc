#include "core/trips.h"

#include <atomic>
#include <vector>

#include "common/rng.h"

namespace pol::core {

uint64_t MakeTripId(ais::Mmsi mmsi, UnixSeconds departure) {
  // SplitMix of the packed pair: cheap, stable, collision-negligible.
  uint64_t state = (static_cast<uint64_t>(mmsi) << 32) ^
                   static_cast<uint64_t>(departure);
  const uint64_t id = SplitMix64(state);
  return id == 0 ? 1 : id;  // 0 is reserved for "no trip".
}

namespace {

// True when the record shows the vessel actually stopped (as opposed to
// transiting a port's approach area at sea speed).
bool IsStationary(const PipelineRecord& record, double stop_speed_knots) {
  if (record.nav_status == ais::NavStatus::kMoored ||
      record.nav_status == ais::NavStatus::kAtAnchor ||
      record.nav_status == ais::NavStatus::kAground) {
    return true;
  }
  return record.sog_knots < stop_speed_knots;
}

// Scans one vessel's contiguous, time-sorted run [begin, end) and
// appends annotated in-trip records to `out`.
void AnnotateVessel(const std::vector<PipelineRecord>& part, size_t begin,
                    size_t end, const Geofencer& geofencer,
                    const TripConfig& config,
                    std::vector<PipelineRecord>* out, uint64_t* trips) {
  // Segment the run into port visits and sea legs. A sea leg between two
  // port visits is a trip.
  sim::PortId last_port = sim::kNoPort;  // Last port visit seen.
  size_t leg_start = end;                // First at-sea index of the leg.
  for (size_t i = begin; i < end; ++i) {
    sim::PortId port = geofencer.PortAt({part[i].lat_deg, part[i].lng_deg});
    if (port != sim::kNoPort &&
        !IsStationary(part[i], config.stop_speed_knots)) {
      port = sim::kNoPort;  // Transit through a fence, not a call.
    }
    if (port == sim::kNoPort) {
      if (leg_start == end) leg_start = i;
      continue;
    }
    // Inside a port: close any open sea leg.
    if (leg_start != end && last_port != sim::kNoPort) {
      const UnixSeconds departure = part[leg_start].timestamp;
      const UnixSeconds arrival = part[i].timestamp;
      const uint64_t trip_id = MakeTripId(part[leg_start].mmsi, departure);
      ++*trips;
      for (size_t j = leg_start; j < i; ++j) {
        PipelineRecord record = part[j];
        record.trip_id = trip_id;
        record.origin = last_port;
        record.destination = port;
        record.eto_s = record.timestamp - departure;
        record.ata_s = arrival - record.timestamp;
        out->push_back(record);
      }
    }
    last_port = port;
    leg_start = end;
  }
  // A trailing open leg has no known destination: excluded.
}

}  // namespace

flow::Dataset<PipelineRecord> ExtractTrips(
    const flow::Dataset<PipelineRecord>& records, const Geofencer& geofencer,
    TripStats* stats, const TripConfig& config) {
  std::atomic<uint64_t> trips{0};
  flow::Dataset<PipelineRecord> annotated = records.MapPartitions(
      [&geofencer, &trips, &config](const std::vector<PipelineRecord>& part) {
        std::vector<PipelineRecord> out;
        uint64_t local_trips = 0;
        size_t run_start = 0;
        for (size_t i = 1; i <= part.size(); ++i) {
          if (i == part.size() || part[i].mmsi != part[run_start].mmsi) {
            AnnotateVessel(part, run_start, i, geofencer, config, &out,
                           &local_trips);
            run_start = i;
          }
        }
        trips.fetch_add(local_trips, std::memory_order_relaxed);
        return out;
      });
  if (stats != nullptr) {
    const uint64_t input = records.Count();
    const uint64_t kept = annotated.Count();
    stats->input += input;
    stats->trips += trips.load();
    stats->annotated += kept;
    stats->excluded += input - kept;
  }
  return annotated;
}

}  // namespace pol::core
