#include "core/inventory_query.h"

#include "hexgrid/hexgrid.h"

namespace pol::core {

InventoryQuery::~InventoryQuery() = default;

bool InventoryQuery::VisitGroupingSetWhile(
    GroupingSet set, const CancellableVisitor& visitor) const {
  // Fallback over the unconditional walk: visits stop the moment the
  // visitor asks, but the underlying iteration still runs to the end of
  // the set. Concrete stores override this with a real early exit; the
  // semantics — no visits after a stop, return value reports whether
  // the walk completed — are identical.
  bool keep_going = true;
  VisitGroupingSet(set, [&keep_going, &visitor](const GroupKey& key,
                                                const CellSummary& summary) {
    if (keep_going) keep_going = visitor(key, summary);
  });
  return keep_going;
}

uint64_t InventoryQuery::DistinctCells() const {
  uint64_t cells = 0;
  VisitGroupingSet(GroupingSet::kCell,
                   [&cells](const GroupKey&, const CellSummary&) { ++cells; });
  return cells;
}

const CellSummary* InventoryQuery::AtPosition(
    const geo::LatLng& position) const {
  return Cell(hex::LatLngToCell(position, resolution()));
}

sim::PortId InventoryQuery::TopDestination(hex::CellIndex cell,
                                           ais::MarketSegment segment,
                                           bool any_segment) const {
  const CellSummary* summary =
      any_segment ? Cell(cell) : CellType(cell, segment);
  if (summary == nullptr) return sim::kNoPort;
  const auto top = summary->destinations().TopN(1);
  if (top.empty()) return sim::kNoPort;
  return static_cast<sim::PortId>(top[0].key);
}

}  // namespace pol::core
