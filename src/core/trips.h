#ifndef POL_CORE_TRIPS_H_
#define POL_CORE_TRIPS_H_

#include <cstdint>

#include "core/geofence.h"
#include "core/records.h"
#include "flow/dataset.h"

// Trip semantics extraction (paper section 3.3.2). All messages of a
// vessel captured between two consecutive port stops form a trip; the
// first and last records outside the port geometries carry the origin
// and destination timestamps. Records that cannot be attributed to a
// trip — inside a port, before the first observed call, after the last —
// are excluded from further analysis, exactly as in the paper.
//
// A port *stop* requires more than geofence presence: several strait and
// fairway chokepoints lie inside port approach areas (the Singapore
// Strait crosses Singapore's, Gibraltar passes Tanger Med's), and a
// vessel transiting at sea speed is not calling. A fence record counts
// as a stop only when the vessel is actually stationary there — SOG
// below `stop_speed_knots` or a moored/anchored navigational status.
// Transit records inside a fence remain part of the running trip.
//
// Each annotated record carries:
//   * the trip identifier (a hash of vessel and departure time);
//   * origin / destination port ids;
//   * ETO, the elapsed time from the origin;
//   * ATA, the actual (remaining) time to arrival.

namespace pol::core {

// Stats ACCUMULATE across ExtractTrips calls (the stage graph extracts
// chunk by chunk); pass a fresh struct for single-call totals.
struct TripStats {
  uint64_t input = 0;
  uint64_t trips = 0;
  uint64_t annotated = 0;
  uint64_t excluded = 0;
};

// Stable trip identifier.
uint64_t MakeTripId(ais::Mmsi mmsi, UnixSeconds departure);

struct TripConfig {
  // Fence records at or above this speed are transits, not stops.
  double stop_speed_knots = 1.5;
};

// Extracts trips. `records` must be vessel-partitioned and time-sorted
// (the output of CleanReports). The result keeps only trip-annotated
// records and preserves per-vessel ordering.
flow::Dataset<PipelineRecord> ExtractTrips(
    const flow::Dataset<PipelineRecord>& records, const Geofencer& geofencer,
    TripStats* stats, const TripConfig& config = TripConfig());

}  // namespace pol::core

#endif  // POL_CORE_TRIPS_H_
