#include "core/serving_inventory.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/mutex.h"
#include "core/serving_metric_names.h"
#include "core/snapshot_codec.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pol::core {

ServingInventory::ServingInventory(Inventory base) : base_(std::move(base)) {
  // No concurrency yet, but sealing reads the guarded build side — take
  // the lock so the access is inside the analyzed discipline.
  MutexLock lock(refresh_mutex_);
  Swap(base_.Seal());
}

ServingInventory::ServingInventory(
    Inventory base, std::shared_ptr<const InventorySnapshot> initial)
    : base_(std::move(base)) {
  POL_CHECK(initial != nullptr);
  {
    MutexLock lock(refresh_mutex_);
    POL_CHECK(base_.resolution() == initial->resolution())
        << "build side and initial snapshot disagree on resolution";
  }
  Swap(std::move(initial));
}

Result<std::unique_ptr<ServingInventory>> ServingInventory::OpenLatest(
    const store::SnapshotStore& store, uint64_t* generation) {
  POL_ASSIGN_OR_RETURN(std::shared_ptr<const InventorySnapshot> snapshot,
                       OpenLatestSnapshot(store, generation));
  Inventory base(snapshot->resolution(), SummaryMap{});
  return std::make_unique<ServingInventory>(std::move(base),
                                            std::move(snapshot));
}

Result<std::unique_ptr<ServingInventory>> ServingInventory::OpenLatest(
    const store::SnapshotStore& store, Inventory base, uint64_t* generation) {
  POL_ASSIGN_OR_RETURN(std::shared_ptr<const InventorySnapshot> snapshot,
                       OpenLatestSnapshot(store, generation));
  if (base.resolution() != snapshot->resolution()) {
    return Status::FailedPrecondition(
        "restored build side resolution " +
        std::to_string(base.resolution()) + " != stored snapshot's " +
        std::to_string(snapshot->resolution()));
  }
  return std::make_unique<ServingInventory>(std::move(base),
                                            std::move(snapshot));
}

void ServingInventory::AttachDurableStore(store::SnapshotStore* durable) {
  MutexLock lock(refresh_mutex_);
  durable_store_ = durable;
}

std::shared_ptr<const InventorySnapshot> ServingInventory::Acquire() const {
  obs::Registry::Global()
      .counter(kMetricServingReaderAcquisitions)
      ->Increment();
#if defined(POL_SERVING_SNAPSHOT_ATOMIC)
  return snapshot_.load(std::memory_order_acquire);
#else
  MutexLock lock(snapshot_mutex_);
  return snapshot_;
#endif
}

void ServingInventory::Swap(std::shared_ptr<const InventorySnapshot> next) {
  POL_CHECK(next != nullptr);
  POL_TRACE_SPAN(kSpanServingSwap);
  const uint64_t seal_sequence = next->stats().seal_sequence;
#if defined(POL_SERVING_SNAPSHOT_ATOMIC)
  snapshot_.store(std::move(next), std::memory_order_release);
#else
  {
    MutexLock lock(snapshot_mutex_);
    snapshot_ = std::move(next);
  }
#endif
  swap_count_.fetch_add(1, std::memory_order_relaxed);
  active_seal_sequence_.store(seal_sequence, std::memory_order_relaxed);
  published_at_micros_.store(obs::NowMicros(), std::memory_order_relaxed);
  auto& registry = obs::Registry::Global();
  registry.counter(kMetricServingSwaps)->Increment();
  registry.gauge(kMetricServingActiveSnapshotSummaries)
      ->Set(static_cast<int64_t>(Acquire()->size()));
}

double ServingInventory::active_snapshot_age_seconds() const {
  const uint64_t published = published_at_micros_.load(
      std::memory_order_relaxed);
  const uint64_t now = obs::NowMicros();
  return now > published ? static_cast<double>(now - published) * 1e-6 : 0.0;
}

Status ServingInventory::Refresh(Inventory&& delta) {
  POL_TRACE_SPAN(kSpanServingRefresh);
  MutexLock lock(refresh_mutex_);
  POL_RETURN_IF_ERROR(POL_FAILPOINT(kFailPointServingMerge));
  POL_RETURN_IF_ERROR(base_.MergeFrom(std::move(delta)));
  POL_RETURN_IF_ERROR(POL_FAILPOINT(kFailPointServingSeal));
  std::shared_ptr<const InventorySnapshot> next = base_.Seal();
  if (durable_store_ != nullptr) {
    // Durability before visibility: the sealed snapshot must be on
    // disk before any reader can acquire it. On failure the refresh
    // fails retryably with the merged delta intact — identical
    // semantics to the serving.swap fail point below.
    POL_RETURN_IF_ERROR(next->WriteTo(durable_store_));
  }
  POL_RETURN_IF_ERROR(POL_FAILPOINT(kFailPointServingSwap));
  Swap(std::move(next));
  return Status::OK();
}

void ServingInventory::SerializeBuildSide(std::string* out) const {
  MutexLock lock(refresh_mutex_);
  base_.SerializeTo(out);
}

namespace {

// Read-side anchor for the pointer-returning queries: the snapshot a
// pointer was answered from must outlive the caller's use of it, and
// the temporary shared_ptr of a plain `Acquire()->Cell(...)` would die
// at the end of the statement — a use-after-free the moment a
// concurrent Swap dropped the other reference. Parking the acquired
// snapshot in a thread-local keeps it alive until the same thread's
// next ServingInventory query (RCU-style), which is exactly the
// documented pointer-validity contract.
const InventorySnapshot* AnchorForThisThread(
    std::shared_ptr<const InventorySnapshot> snapshot) {
  thread_local std::shared_ptr<const InventorySnapshot> anchor;
  anchor = std::move(snapshot);
  return anchor.get();
}

}  // namespace

const CellSummary* ServingInventory::Cell(hex::CellIndex cell) const {
  return AnchorForThisThread(Acquire())->Cell(cell);
}

const CellSummary* ServingInventory::CellType(
    hex::CellIndex cell, ais::MarketSegment segment) const {
  return AnchorForThisThread(Acquire())->CellType(cell, segment);
}

const CellSummary* ServingInventory::CellRouteType(
    hex::CellIndex cell, sim::PortId origin, sim::PortId destination,
    ais::MarketSegment segment) const {
  return AnchorForThisThread(Acquire())
      ->CellRouteType(cell, origin, destination, segment);
}

std::vector<hex::CellIndex> ServingInventory::CellsForRoute(
    sim::PortId origin, sim::PortId destination,
    ais::MarketSegment segment) const {
  return Acquire()->CellsForRoute(origin, destination, segment);
}

std::vector<ais::MarketSegment> ServingInventory::SegmentsAt(
    hex::CellIndex cell) const {
  return Acquire()->SegmentsAt(cell);
}

void ServingInventory::VisitGroupingSet(GroupingSet set,
                                        const SummaryVisitor& visitor) const {
  Acquire()->VisitGroupingSet(set, visitor);
}

bool ServingInventory::VisitGroupingSetWhile(
    GroupingSet set, const CancellableVisitor& visitor) const {
  return Acquire()->VisitGroupingSetWhile(set, visitor);
}

uint64_t ServingInventory::DistinctCells() const {
  return Acquire()->DistinctCells();
}

}  // namespace pol::core
