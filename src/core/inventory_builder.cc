#include "core/inventory_builder.h"

#include <chrono>
#include <vector>

#include "hexgrid/hexgrid.h"

namespace pol::core {

void InventoryBuilder::Fold(const flow::Dataset<PipelineRecord>& projected) {
  const auto start = std::chrono::steady_clock::now();
  const size_t partitions = static_cast<size_t>(projected.num_partitions());
  const SummaryParams& params = config_.summary_params;

  // Map phase: per-partition grouping. Each record feeds up to three
  // grouping sets (Table 2).
  std::vector<SummaryMap> locals(partitions);
  size_t peak_partition = 0;
  projected.pool()->ParallelFor(partitions, [&](size_t p) {
    SummaryMap& local = locals[p];
    for (const PipelineRecord& record :
         projected.partition(static_cast<int>(p))) {
      if (record.cell == hex::kInvalidCell) continue;
      if (config_.gi_cell) {
        local.try_emplace(KeyCell(record.cell), params)
            .first->second.Add(record);
      }
      if (config_.gi_cell_type) {
        local.try_emplace(KeyCellType(record.cell, record.segment), params)
            .first->second.Add(record);
      }
      if (config_.gi_cell_route_type && record.trip_id != 0) {
        local
            .try_emplace(KeyCellRouteType(record.cell, record.origin,
                                          record.destination, record.segment),
                         params)
            .first->second.Add(record);
      }
    }
  });

  // Reduce phase: fold partials into the builder's map in ascending
  // partition order (deterministic; summaries are mergeable by
  // construction). Deliberately sequential: inventories hold millions
  // of summaries and the dominant cost is memory, so each local map is
  // released the moment it has been folded — a bucket-parallel merge
  // would pin every partial until the end. The map phase above carries
  // the parallelism.
  for (size_t p = 0; p < partitions; ++p) {
    peak_partition = std::max(
        peak_partition, projected.partition(static_cast<int>(p)).size());
    for (auto& [key, summary] : locals[p]) {
      auto [it, inserted] = summaries_.try_emplace(key, params);
      if (inserted) {
        it->second = std::move(summary);
      } else {
        it->second.Merge(std::move(summary));
      }
    }
    SummaryMap().swap(locals[p]);  // Free before touching the next one.
  }

  const uint64_t records_in = projected.Count();
  records_ += records_in;
  ++metrics_.chunks;
  metrics_.records_in += records_in;
  metrics_.records_out = summaries_.size();
  metrics_.peak_partition = std::max(metrics_.peak_partition, peak_partition);
  metrics_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

}  // namespace pol::core
