#include "core/inventory_builder.h"

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/varint.h"
#include "hexgrid/hexgrid.h"
#include "obs/clock.h"
#include "obs/trace.h"

namespace pol::core {

void InventoryBuilder::Fold(const flow::Dataset<PipelineRecord>& projected) {
  POL_TRACE_SPAN("stage.extraction");
  const double start = obs::NowSeconds();
  const size_t partitions = static_cast<size_t>(projected.num_partitions());
  const SummaryParams& params = config_.summary_params;

  // Map phase: per-partition grouping. Each record feeds up to three
  // grouping sets (Table 2).
  std::vector<SummaryMap> locals(partitions);
  size_t peak_partition = 0;
  projected.pool()->ParallelFor(partitions, [&](size_t p) {
    SummaryMap& local = locals[p];
    for (const PipelineRecord& record :
         projected.partition(static_cast<int>(p))) {
      if (record.cell == hex::kInvalidCell) continue;
      if (config_.gi_cell) {
        local.try_emplace(KeyCell(record.cell), params)
            .first->second.Add(record);
      }
      if (config_.gi_cell_type) {
        local.try_emplace(KeyCellType(record.cell, record.segment), params)
            .first->second.Add(record);
      }
      if (config_.gi_cell_route_type && record.trip_id != 0) {
        local
            .try_emplace(KeyCellRouteType(record.cell, record.origin,
                                          record.destination, record.segment),
                         params)
            .first->second.Add(record);
      }
    }
  });

  // Reduce phase: fold partials into the builder's map in ascending
  // partition order (deterministic; summaries are mergeable by
  // construction). Deliberately sequential: inventories hold millions
  // of summaries and the dominant cost is memory, so each local map is
  // released the moment it has been folded — a bucket-parallel merge
  // would pin every partial until the end. The map phase above carries
  // the parallelism.
  for (size_t p = 0; p < partitions; ++p) {
    peak_partition = std::max(
        peak_partition, projected.partition(static_cast<int>(p)).size());
    for (auto& [key, summary] : locals[p]) {
      auto [it, inserted] = summaries_.try_emplace(key, params);
      if (inserted) {
        it->second = std::move(summary);
      } else {
        it->second.Merge(std::move(summary));
      }
    }
    SummaryMap().swap(locals[p]);  // Free before touching the next one.
  }

  const uint64_t records_in = projected.Count();
  records_ += records_in;
  ++metrics_.chunks;
  metrics_.records_in += records_in;
  metrics_.records_out = summaries_.size();
  metrics_.peak_partition = std::max(metrics_.peak_partition, peak_partition);
  const double seconds = obs::NowSeconds() - start;
  metrics_.wall_seconds += seconds;
  flow::internal::RecordStageRegistryMetrics(metrics_.name, seconds);
}

void InventoryBuilder::SerializeState(std::string* out) const {
  PutVarint64(out, static_cast<uint64_t>(config_.resolution));
  PutVarint64(out, records_);
  PutVarint64(out, metrics_.chunks);
  PutVarint64(out, metrics_.records_in);
  PutVarint64(out, metrics_.peak_partition);
  PutDouble(out, metrics_.wall_seconds);
  PutVarint64(out, summaries_.size());
  // Canonical key order, shared with Inventory::SerializeTo, so two
  // builders with equal state serialize to equal bytes.
  std::vector<const GroupKey*> keys;
  keys.reserve(summaries_.size());
  for (const auto& [key, summary] : summaries_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const GroupKey* a, const GroupKey* b) {
              if (a->cell != b->cell) return a->cell < b->cell;
              return GroupKeyDimsPacked(*a) < GroupKeyDimsPacked(*b);
            });
  for (const GroupKey* key : keys) {
    PutVarint64(out, key->cell);
    PutVarint64(out, GroupKeyDimsPacked(*key));
    std::string summary_bytes;
    summaries_.at(*key).Serialize(&summary_bytes);
    PutLengthPrefixed(out, summary_bytes);
  }
}

Status InventoryBuilder::RestoreState(std::string_view input) {
  uint64_t resolution = 0;
  uint64_t records = 0;
  uint64_t chunks = 0;
  uint64_t records_in = 0;
  uint64_t peak_partition = 0;
  double wall_seconds = 0.0;
  uint64_t count = 0;
  POL_RETURN_IF_ERROR(GetVarint64(&input, &resolution));
  POL_RETURN_IF_ERROR(GetVarint64(&input, &records));
  POL_RETURN_IF_ERROR(GetVarint64(&input, &chunks));
  POL_RETURN_IF_ERROR(GetVarint64(&input, &records_in));
  POL_RETURN_IF_ERROR(GetVarint64(&input, &peak_partition));
  POL_RETURN_IF_ERROR(GetDouble(&input, &wall_seconds));
  POL_RETURN_IF_ERROR(GetVarint64(&input, &count));
  if (resolution != static_cast<uint64_t>(config_.resolution)) {
    return Status::FailedPrecondition(
        "checkpoint resolution does not match builder config");
  }
  SummaryMap summaries;
  summaries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t cell = 0;
    uint64_t dims = 0;
    POL_RETURN_IF_ERROR(GetVarint64(&input, &cell));
    POL_RETURN_IF_ERROR(GetVarint64(&input, &dims));
    GroupKey key;
    key.cell = cell;
    key.grouping_set = static_cast<uint8_t>(dims & 0xff);
    key.segment = static_cast<uint8_t>((dims >> 8) & 0xff);
    key.origin = static_cast<uint16_t>((dims >> 16) & 0xffff);
    key.destination = static_cast<uint16_t>((dims >> 32) & 0xffff);
    std::string_view summary_bytes;
    POL_RETURN_IF_ERROR(GetLengthPrefixed(&input, &summary_bytes));
    CellSummary summary;
    POL_RETURN_IF_ERROR(summary.Deserialize(&summary_bytes));
    if (!summary_bytes.empty()) {
      return Status::Corruption("trailing bytes in summary");
    }
    summaries.emplace(key, std::move(summary));
  }
  if (!input.empty()) {
    return Status::Corruption("trailing bytes in builder state");
  }
  summaries_ = std::move(summaries);
  records_ = records;
  metrics_.chunks = chunks;
  metrics_.records_in = records_in;
  metrics_.records_out = summaries_.size();
  metrics_.peak_partition = static_cast<size_t>(peak_partition);
  metrics_.wall_seconds = wall_seconds;
  return Status::OK();
}

}  // namespace pol::core
