#include "core/cleaning.h"

#include <atomic>
#include <vector>

#include "geo/geodesic.h"

namespace pol::core {

std::vector<flow::Dataset<ais::PositionReport>> SplitReportsByVessel(
    const std::vector<ais::PositionReport>& reports, int partitions,
    int chunks, flow::ThreadPool* pool) {
  return flow::Dataset<ais::PositionReport>::FromVector(reports, partitions,
                                                        pool)
      .PartitionByKey([](const ais::PositionReport& r) { return r.mmsi; },
                      partitions)
      .SplitIntoChunks(chunks);
}

flow::Dataset<PipelineRecord> CleanChunk(
    const flow::Dataset<ais::PositionReport>& chunk,
    const CleaningConfig& config, CleaningStats* stats) {
  std::atomic<uint64_t> invalid{0};
  std::atomic<uint64_t> duplicates{0};
  std::atomic<uint64_t> jumps{0};

  // Field-range validation (the chunk is already vessel-partitioned;
  // filtering before or after the shuffle is equivalent because both
  // preserve relative record order), then per-vessel time ordering.
  flow::Dataset<ais::PositionReport> by_vessel =
      chunk
          .Filter([&invalid](const ais::PositionReport& report) {
            if (ais::ValidatePositionReport(report).ok()) return true;
            invalid.fetch_add(1, std::memory_order_relaxed);
            return false;
          })
          .SortWithinPartitions(
              [](const ais::PositionReport& a, const ais::PositionReport& b) {
                if (a.mmsi != b.mmsi) return a.mmsi < b.mmsi;
                return a.timestamp < b.timestamp;
              });

  // Per-vessel scan: duplicates and kinematically infeasible jumps.
  const double max_speed = config.max_speed_knots;
  flow::Dataset<PipelineRecord> cleaned = by_vessel.MapPartitions(
      [&duplicates, &jumps,
       max_speed](const std::vector<ais::PositionReport>& part) {
        std::vector<PipelineRecord> out;
        out.reserve(part.size());
        ais::Mmsi current = 0;
        const ais::PositionReport* last_kept = nullptr;
        for (const ais::PositionReport& report : part) {
          if (report.mmsi != current) {
            current = report.mmsi;
            last_kept = nullptr;
          }
          if (last_kept != nullptr) {
            // Exact duplicate: same instant and position.
            if (report.timestamp == last_kept->timestamp &&
                report.lat_deg == last_kept->lat_deg &&
                report.lng_deg == last_kept->lng_deg) {
              duplicates.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            const double implied = geo::ImpliedSpeedKnots(
                {last_kept->lat_deg, last_kept->lng_deg},
                {report.lat_deg, report.lng_deg},
                static_cast<double>(report.timestamp -
                                    last_kept->timestamp));
            if (implied > max_speed) {
              jumps.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
          }
          out.push_back(MakeRecord(report));
          last_kept = &report;
        }
        return out;
      });

  if (stats != nullptr) {
    stats->input += chunk.Count();
    stats->invalid_fields += invalid.load();
    stats->duplicates += duplicates.load();
    stats->infeasible_jumps += jumps.load();
    stats->kept += cleaned.Count();
  }
  return cleaned;
}

flow::Dataset<PipelineRecord> CleanReports(
    const std::vector<ais::PositionReport>& reports,
    const CleaningConfig& config, flow::ThreadPool* pool,
    CleaningStats* stats) {
  if (stats != nullptr) *stats = CleaningStats();
  std::vector<flow::Dataset<ais::PositionReport>> chunks =
      SplitReportsByVessel(reports, config.partitions, 1, pool);
  return CleanChunk(chunks.front(), config, stats);
}

}  // namespace pol::core
