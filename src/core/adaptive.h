#ifndef POL_CORE_ADAPTIVE_H_
#define POL_CORE_ADAPTIVE_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "core/inventory.h"

// Adaptive (non-uniform) inventory — the paper's stated future work
// ("using larger cells in open sea areas which are known to have low
// vessel traffic density, preserving at the same time high resolution in
// dense areas, such as the ones near the ports", section 5), implemented
// here on top of the hierarchical grid.
//
// Construction is bottom-up from a uniform fine-resolution inventory:
// summaries are merged into parents level by level (all Table-3
// statistics are mergeable), then the tree is cut top-down — a cell is
// split into its children only while it carries at least
// `dense_threshold` records and has not reached the fine resolution.
// The emitted cells form a (near-)partition of the covered area at mixed
// resolutions.
//
// Note on exactness: parent/child containment in the grid is
// approximate (as in H3), so a point close to a cell boundary can fall
// into a sibling at the finer level; Lookup therefore probes the
// coarse-to-fine ancestor chain and falls back to the point's immediate
// neighbours at the finest level.

namespace pol::core {

struct AdaptiveStats {
  uint64_t cells = 0;
  uint64_t records = 0;
  // Cells per resolution level.
  std::map<int, uint64_t> cells_per_resolution;
  // Size relative to the uniform fine inventory it was built from.
  double cell_reduction = 0.0;  // 1 - adaptive_cells / fine_cells.
};

class AdaptiveInventory {
 public:
  // Builds from the (cell) grouping set of a uniform inventory at
  // `fine.resolution()`. Cells coarser than `coarse_res` are never
  // produced; `dense_threshold` is the record count above which a cell
  // keeps its children.
  static AdaptiveInventory Build(const Inventory& fine, int coarse_res,
                                 uint64_t dense_threshold);

  // The summary of the (variable-resolution) cell containing `position`,
  // and the resolution it was answered at; nullptr when uncovered.
  const CellSummary* Lookup(const geo::LatLng& position,
                            int* resolution = nullptr) const;

  size_t size() const { return cells_.size(); }
  int coarse_res() const { return coarse_res_; }
  int fine_res() const { return fine_res_; }

  AdaptiveStats Stats(uint64_t fine_cells) const;

  // All cells (mixed resolutions) with their summaries.
  const std::unordered_map<hex::CellIndex, CellSummary>& cells() const {
    return cells_;
  }

 private:
  AdaptiveInventory(int coarse_res, int fine_res,
                    std::unordered_map<hex::CellIndex, CellSummary> cells)
      : coarse_res_(coarse_res),
        fine_res_(fine_res),
        cells_(std::move(cells)) {}

  int coarse_res_;
  int fine_res_;
  std::unordered_map<hex::CellIndex, CellSummary> cells_;
};

}  // namespace pol::core

#endif  // POL_CORE_ADAPTIVE_H_
