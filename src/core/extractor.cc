#include "core/extractor.h"

#include <utility>
#include <vector>

#include "core/inventory_builder.h"
#include "hexgrid/hexgrid.h"

namespace pol::core {

flow::Dataset<PipelineRecord> ProjectToGrid(
    const flow::Dataset<PipelineRecord>& records, int resolution) {
  return records.MapPartitions(
      [resolution](const std::vector<PipelineRecord>& part) {
        std::vector<PipelineRecord> out;
        out.reserve(part.size());
        for (const PipelineRecord& record : part) {
          PipelineRecord projected = record;
          projected.cell =
              hex::LatLngToCell({record.lat_deg, record.lng_deg}, resolution);
          projected.next_cell = hex::kInvalidCell;
          out.push_back(projected);
        }
        // Transitions: consecutive in-trip records of the same vessel
        // landing in different cells (order within the partition is the
        // vessel's time order).
        for (size_t i = 0; i + 1 < out.size(); ++i) {
          if (out[i].mmsi == out[i + 1].mmsi &&
              out[i].trip_id == out[i + 1].trip_id && out[i].trip_id != 0 &&
              out[i].cell != out[i + 1].cell &&
              out[i + 1].cell != hex::kInvalidCell) {
            out[i].next_cell = out[i + 1].cell;
          }
        }
        return out;
      });
}

SummaryMap ExtractFeatures(const flow::Dataset<PipelineRecord>& projected,
                           const ExtractorConfig& config) {
  InventoryBuilder builder(config);
  builder.Fold(projected);
  return std::move(builder).TakeSummaries();
}

}  // namespace pol::core
