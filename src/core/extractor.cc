#include "core/extractor.h"

#include <vector>

#include "hexgrid/hexgrid.h"

namespace pol::core {

flow::Dataset<PipelineRecord> ProjectToGrid(
    const flow::Dataset<PipelineRecord>& records, int resolution) {
  return records.MapPartitions(
      [resolution](const std::vector<PipelineRecord>& part) {
        std::vector<PipelineRecord> out;
        out.reserve(part.size());
        for (const PipelineRecord& record : part) {
          PipelineRecord projected = record;
          projected.cell =
              hex::LatLngToCell({record.lat_deg, record.lng_deg}, resolution);
          projected.next_cell = hex::kInvalidCell;
          out.push_back(projected);
        }
        // Transitions: consecutive in-trip records of the same vessel
        // landing in different cells (order within the partition is the
        // vessel's time order).
        for (size_t i = 0; i + 1 < out.size(); ++i) {
          if (out[i].mmsi == out[i + 1].mmsi &&
              out[i].trip_id == out[i + 1].trip_id && out[i].trip_id != 0 &&
              out[i].cell != out[i + 1].cell &&
              out[i + 1].cell != hex::kInvalidCell) {
            out[i].next_cell = out[i + 1].cell;
          }
        }
        return out;
      });
}

SummaryMap ExtractFeatures(const flow::Dataset<PipelineRecord>& projected,
                           const ExtractorConfig& config) {
  const size_t partitions =
      static_cast<size_t>(projected.num_partitions());
  const SummaryParams& params = config.summary_params;

  // Map phase: per-partition grouping. Each record feeds up to three
  // grouping sets (Table 2).
  std::vector<SummaryMap> locals(partitions);
  projected.pool()->ParallelFor(partitions, [&](size_t p) {
    SummaryMap& local = locals[p];
    for (const PipelineRecord& record :
         projected.partition(static_cast<int>(p))) {
      if (record.cell == hex::kInvalidCell) continue;
      if (config.gi_cell) {
        auto [it, inserted] =
            local.try_emplace(KeyCell(record.cell), params);
        (void)inserted;
        it->second.Add(record);
      }
      if (config.gi_cell_type) {
        auto [it, inserted] = local.try_emplace(
            KeyCellType(record.cell, record.segment), params);
        (void)inserted;
        it->second.Add(record);
      }
      if (config.gi_cell_route_type && record.trip_id != 0) {
        auto [it, inserted] = local.try_emplace(
            KeyCellRouteType(record.cell, record.origin, record.destination,
                             record.segment),
            params);
        (void)inserted;
        it->second.Add(record);
      }
    }
  });

  // Reduce phase: fold partials into the result in ascending partition
  // order (deterministic; summaries are mergeable by construction).
  // Deliberately sequential: inventories hold millions of summaries and
  // the dominant cost is memory, so each local map is released the
  // moment it has been folded — a bucket-parallel merge would pin every
  // partial until the end. The map phase above carries the parallelism.
  SummaryMap result = std::move(locals[0]);
  for (size_t p = 1; p < partitions; ++p) {
    for (auto& [key, summary] : locals[p]) {
      auto [it, inserted] = result.try_emplace(key, params);
      if (inserted) {
        it->second = std::move(summary);
      } else {
        it->second.Merge(std::move(summary));
      }
    }
    SummaryMap().swap(locals[p]);  // Free before touching the next one.
  }
  return result;
}

}  // namespace pol::core
