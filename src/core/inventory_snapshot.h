#ifndef POL_CORE_INVENTORY_SNAPSHOT_H_
#define POL_CORE_INVENTORY_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/inventory.h"
#include "core/inventory_query.h"
#include "core/route_index.h"

// The serving side of the inventory: an immutable, fully indexed
// snapshot sealed from a build-side Inventory (Inventory::Seal()).
//
// Layout (see DESIGN.md §3.5): one flat, (cell, dims)-sorted key array
// plus a parallel summary array per grouping set — point lookups are a
// binary search, visitation is a linear walk in deterministic order —
// and two secondary indexes built once at seal time: the RouteIndex
// ((origin, destination, segment) -> cell list, backing CellsForRoute
// in O(log n + k)) and a cell -> present-segments bitmask table.
// Nothing mutates after sealing, so any number of threads may query
// concurrently without synchronization; ServingInventory hot-swaps
// whole snapshots to refresh.

namespace pol::store {
class SnapshotStore;
}  // namespace pol::store

namespace pol::core {

// Index sizes and seal cost of one snapshot (polinv `stats` prints
// these; serving.seal_seconds records the duration distribution).
struct InventorySnapshotStats {
  std::array<uint64_t, kNumGroupingSets> summaries_per_set{};
  uint64_t route_index_routes = 0;   // Distinct (o, d, segment) keys.
  uint64_t route_index_cells = 0;    // Total indexed route cells.
  uint64_t segment_index_cells = 0;  // Cells with a per-type summary.
  double seal_seconds = 0.0;
  // Process-wide seal ordinal, from 1: the snapshot id the serving
  // telemetry stamps into query-log rows and the
  // serving.snapshot.active_id gauge, so a logged query pins down
  // exactly which generation answered it.
  uint64_t seal_sequence = 0;
};

// Not `final`: core/snapshot_codec.h derives MappedSnapshot, the
// mmap-backed implementation that serves a POLSNAP1 file zero-copy.
class InventorySnapshot : public InventoryQuery {
 public:
  int resolution() const override { return resolution_; }
  size_t size() const override { return total_; }

  const CellSummary* Cell(hex::CellIndex cell) const override;
  const CellSummary* CellType(hex::CellIndex cell,
                              ais::MarketSegment segment) const override;
  const CellSummary* CellRouteType(hex::CellIndex cell, sim::PortId origin,
                                   sim::PortId destination,
                                   ais::MarketSegment segment) const override;

  std::vector<hex::CellIndex> CellsForRoute(
      sim::PortId origin, sim::PortId destination,
      ais::MarketSegment segment) const override;

  std::vector<ais::MarketSegment> SegmentsAt(
      hex::CellIndex cell) const override;

  void VisitGroupingSet(GroupingSet set,
                        const SummaryVisitor& visitor) const override;
  bool VisitGroupingSetWhile(GroupingSet set,
                             const CancellableVisitor& visitor) const override;

  uint64_t DistinctCells() const override;

  const InventorySnapshotStats& stats() const { return stats_; }

  // Encodes this snapshot as a complete POLSNAP1 file image (the
  // columnar sections of core/snapshot_codec.h inside the store/
  // container framing). Deterministic for a given snapshot. Virtual:
  // a mapped snapshot re-encodes as the exact bytes it was opened
  // from, so republishing one is a byte-identical copy, not a re-seal.
  virtual void EncodeTo(std::string* out) const;

  // Encodes and durably publishes this snapshot as the store's next
  // generation; the new generation number lands in `*generation` when
  // non-null. Defined in snapshot_codec.cc.
  Status WriteTo(store::SnapshotStore* store,
                 uint64_t* generation = nullptr) const;

 private:
  friend class Inventory;       // Inventory::Seal() is the only builder.
  friend class MappedSnapshot;  // Restores the base fields from a file.
  struct SealTag {};

 public:
  // Constructible only through Inventory::Seal() (the tag is private);
  // public so std::make_shared can reach it.
  explicit InventorySnapshot(SealTag) {}

 private:
  // One grouping set: keys sorted by (cell, packed dims), values
  // parallel to keys.
  struct GroupArray {
    std::vector<GroupKey> keys;
    std::vector<CellSummary> values;
  };

  struct CellSegments {
    hex::CellIndex cell = hex::kInvalidCell;
    uint16_t mask = 0;  // Bit i set = MarketSegment(i) present.
  };

  const CellSummary* Lookup(GroupingSet set, const GroupKey& key) const;

  int resolution_ = 0;
  size_t total_ = 0;
  std::array<GroupArray, kNumGroupingSets> groups_;
  RouteIndex route_index_;
  std::vector<CellSegments> segment_index_;  // Sorted by cell.
  InventorySnapshotStats stats_;
};

}  // namespace pol::core

#endif  // POL_CORE_INVENTORY_SNAPSHOT_H_
