#ifndef POL_CORE_STAGES_H_
#define POL_CORE_STAGES_H_

#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/cleaning.h"
#include "core/enrich.h"
#include "core/extractor.h"
#include "core/geofence.h"
#include "core/trips.h"
#include "flow/stage.h"

// The paper's pipeline stages expressed as flow::Stage nodes, ready for
// composition into a StageChain and chunked execution by a StageRunner
// (pipeline.cc wires them; they are public so callers can assemble
// custom graphs — e.g. fold fresh batches into an existing
// InventoryBuilder without re-running the archive).
//
// Each stage instance serves every chunk of a run: per-stage Stats
// accumulate across chunks behind a mutex, so a stage may process
// several chunks concurrently. Chunks must come from
// SplitReportsByVessel (vessel-coherent, partition-ordered) for the
// per-vessel scans to see whole trajectories.

namespace pol::core {

// Stage 1 — cleaning: validation, per-vessel time order, dedup,
// kinematic feasibility.
class CleaningStage
    : public flow::Stage<ais::PositionReport, PipelineRecord> {
 public:
  explicit CleaningStage(const CleaningConfig& config) : config_(config) {}

  std::string_view name() const override { return "cleaning"; }

  Result<flow::Dataset<PipelineRecord>> RunChunk(
      flow::Dataset<ais::PositionReport> input) override {
    CleaningStats local;
    flow::Dataset<PipelineRecord> out = CleanChunk(input, config_, &local);
    MutexLock lock(mutex_);
    stats_.Accumulate(local);
    return out;
  }

  CleaningStats stats() const {
    MutexLock lock(mutex_);
    return stats_;
  }

 private:
  CleaningConfig config_;
  mutable Mutex mutex_;
  CleaningStats stats_ POL_GUARDED_BY(mutex_);
};

// Stage 2 — enrichment: vessel-registry join + commercial filter.
class EnrichmentStage
    : public flow::Stage<PipelineRecord, PipelineRecord> {
 public:
  EnrichmentStage(const std::vector<ais::VesselInfo>& registry,
                  bool commercial_only)
      : enricher_(registry), commercial_only_(commercial_only) {}

  std::string_view name() const override { return "enrichment"; }

  Result<flow::Dataset<PipelineRecord>> RunChunk(
      flow::Dataset<PipelineRecord> input) override {
    EnrichmentStats local;
    flow::Dataset<PipelineRecord> out =
        enricher_.Enrich(input, commercial_only_, &local);
    MutexLock lock(mutex_);
    stats_.input += local.input;
    stats_.unknown_vessel += local.unknown_vessel;
    stats_.non_commercial += local.non_commercial;
    stats_.kept += local.kept;
    return out;
  }

  EnrichmentStats stats() const {
    MutexLock lock(mutex_);
    return stats_;
  }

 private:
  Enricher enricher_;
  bool commercial_only_;
  mutable Mutex mutex_;
  EnrichmentStats stats_ POL_GUARDED_BY(mutex_);
};

// Stage 3 — trip semantics via port geofencing.
class TripStage : public flow::Stage<PipelineRecord, PipelineRecord> {
 public:
  TripStage(const sim::PortDatabase* ports, int geofence_resolution,
            const TripConfig& config = TripConfig())
      : geofencer_(ports, geofence_resolution), config_(config) {}

  std::string_view name() const override { return "trips"; }

  Result<flow::Dataset<PipelineRecord>> RunChunk(
      flow::Dataset<PipelineRecord> input) override {
    TripStats local;
    flow::Dataset<PipelineRecord> out =
        ExtractTrips(input, geofencer_, &local, config_);
    MutexLock lock(mutex_);
    stats_.input += local.input;
    stats_.trips += local.trips;
    stats_.annotated += local.annotated;
    stats_.excluded += local.excluded;
    return out;
  }

  TripStats stats() const {
    MutexLock lock(mutex_);
    return stats_;
  }

  const Geofencer& geofencer() const { return geofencer_; }

 private:
  Geofencer geofencer_;
  TripConfig config_;
  mutable Mutex mutex_;
  TripStats stats_ POL_GUARDED_BY(mutex_);
};

// Stage 4 — projection to the hexagonal grid (+ in-trip transitions).
class ProjectionStage : public flow::Stage<PipelineRecord, PipelineRecord> {
 public:
  explicit ProjectionStage(int resolution) : resolution_(resolution) {}

  std::string_view name() const override { return "projection"; }

  Result<flow::Dataset<PipelineRecord>> RunChunk(
      flow::Dataset<PipelineRecord> input) override {
    return ProjectToGrid(input, resolution_);
  }

 private:
  int resolution_;
};

// Stage 5 — feature extraction — is the graph's sink, not a chain node:
// InventoryBuilder::Fold consumes the projected chunks in ascending
// chunk order (see inventory_builder.h).

}  // namespace pol::core

#endif  // POL_CORE_STAGES_H_
