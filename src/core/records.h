#ifndef POL_CORE_RECORDS_H_
#define POL_CORE_RECORDS_H_

#include <cstdint>

#include "ais/messages.h"
#include "ais/types.h"
#include "common/time_util.h"
#include "hexgrid/cell_index.h"
#include "sim/ports.h"

// The record types flowing through the pipeline stages (Figure 3 of the
// paper): a positional report is progressively annotated with static
// vessel data, trip semantics and its grid cell.

namespace pol::core {

// One fully annotated positional report. Fields are filled in stage
// order; a default-initialized tail means the stage has not run.
struct PipelineRecord {
  // From the positional report (cleaning stage).
  ais::Mmsi mmsi = 0;
  UnixSeconds timestamp = 0;
  double lat_deg = 0.0;
  double lng_deg = 0.0;
  double sog_knots = ais::kSogUnavailable;
  double cog_deg = ais::kCogUnavailable;
  double heading_deg = ais::kHeadingUnavailable;
  ais::NavStatus nav_status = ais::NavStatus::kNotDefined;

  // Enrichment stage.
  ais::MarketSegment segment = ais::MarketSegment::kOther;

  // Trip semantics stage. trip_id == 0 means "no trip" (the record is
  // inside a port, or before the first / after the last known call).
  uint64_t trip_id = 0;
  sim::PortId origin = sim::kNoPort;
  sim::PortId destination = sim::kNoPort;
  int64_t eto_s = 0;  // Elapsed time from origin at this report.
  int64_t ata_s = 0;  // Actual (remaining) time to arrival.

  // Projection stage.
  hex::CellIndex cell = hex::kInvalidCell;
  // Cell of the next in-trip report when it differs (a transition);
  // kInvalidCell otherwise.
  hex::CellIndex next_cell = hex::kInvalidCell;
};

// Builds the cleaned base record from a raw report.
inline PipelineRecord MakeRecord(const ais::PositionReport& report) {
  PipelineRecord record;
  record.mmsi = report.mmsi;
  record.timestamp = report.timestamp;
  record.lat_deg = report.lat_deg;
  record.lng_deg = report.lng_deg;
  record.sog_knots = report.sog_knots;
  record.cog_deg = report.cog_deg;
  record.heading_deg = report.heading_deg;
  record.nav_status = report.nav_status;
  return record;
}

}  // namespace pol::core

#endif  // POL_CORE_RECORDS_H_
