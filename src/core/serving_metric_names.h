#ifndef POL_CORE_SERVING_METRIC_NAMES_H_
#define POL_CORE_SERVING_METRIC_NAMES_H_

#include <string_view>

// The central name table of the serving path: every `serving.*` metric,
// trace-span and fail-point name used by src/core/serving* lives here,
// in one greppable place, so a dashboard (or `polinv watch`, or the
// run-report scanners in run_report.cc) never chases a typo'd literal.
// pollint's `serving-metric-name` rule enforces the discipline: an
// ad-hoc "serving."-prefixed string literal anywhere else in
// src/core/serving* is a finding.

namespace pol::core {

// --- ServingGuard admission + breaker (serving_guard.cc). ---
inline constexpr std::string_view kMetricServingAdmitted = "serving.admitted";
inline constexpr std::string_view kMetricServingQueued = "serving.queued";
inline constexpr std::string_view kMetricServingShed = "serving.shed";
inline constexpr std::string_view kMetricServingDeadlineExceeded =
    "serving.deadline_exceeded";
inline constexpr std::string_view kMetricServingScanDeadlineExceeded =
    "serving.scan_deadline_exceeded";
inline constexpr std::string_view kMetricServingBreakerTrips =
    "serving.breaker_trips";
inline constexpr std::string_view kMetricServingBreakerProbes =
    "serving.breaker_probes";
inline constexpr std::string_view kMetricServingBreakerCloses =
    "serving.breaker_closes";
inline constexpr std::string_view kMetricServingBreakerRejected =
    "serving.breaker_rejected_refreshes";
inline constexpr std::string_view kMetricServingDegraded = "serving.degraded";
inline constexpr std::string_view kMetricServingBreakerState =
    "serving.breaker_state";
inline constexpr std::string_view kMetricServingSnapshotAgeRefreshes =
    "serving.snapshot_age_refreshes";

// --- ServingInventory store (serving_inventory.cc). ---
inline constexpr std::string_view kMetricServingReaderAcquisitions =
    "serving.reader_acquisitions";
inline constexpr std::string_view kMetricServingSwaps = "serving.swaps";
inline constexpr std::string_view kMetricServingSeals = "serving.seals";
inline constexpr std::string_view kMetricServingSealSeconds =
    "serving.seal_seconds";
inline constexpr std::string_view kMetricServingActiveSnapshotSummaries =
    "serving.active_snapshot_summaries";
inline constexpr std::string_view kMetricServingActiveSnapshotId =
    "serving.snapshot.active_id";
inline constexpr std::string_view kMetricServingSnapshotAgeMs =
    "serving.snapshot.age_ms";

// --- Windowed query telemetry (serving_telemetry.cc). Milli-unit
// gauges carry fixed-point fractions (x1000) because gauges are int64.
inline constexpr std::string_view kMetricServingQueryQpsMilli =
    "serving.query.qps_milli";
inline constexpr std::string_view kMetricServingQueryErrorRateMilli =
    "serving.query.error_rate_milli";
inline constexpr std::string_view kMetricServingQueryShedRateMilli =
    "serving.query.shed_rate_milli";
inline constexpr std::string_view kMetricServingInteractiveP50Us =
    "serving.query.interactive.p50_us";
inline constexpr std::string_view kMetricServingInteractiveP95Us =
    "serving.query.interactive.p95_us";
inline constexpr std::string_view kMetricServingInteractiveP99Us =
    "serving.query.interactive.p99_us";
inline constexpr std::string_view kMetricServingBatchP50Us =
    "serving.query.batch.p50_us";
inline constexpr std::string_view kMetricServingBatchP95Us =
    "serving.query.batch.p95_us";
inline constexpr std::string_view kMetricServingBatchP99Us =
    "serving.query.batch.p99_us";
inline constexpr std::string_view kMetricServingQuerylogEvents =
    "serving.querylog.events";
inline constexpr std::string_view kMetricServingQuerylogOk =
    "serving.querylog.ok";
inline constexpr std::string_view kMetricServingQuerylogErrors =
    "serving.querylog.errors";
inline constexpr std::string_view kMetricServingQuerylogSlow =
    "serving.querylog.slow";
inline constexpr std::string_view kMetricServingTelemetryExports =
    "serving.telemetry.exports";
inline constexpr std::string_view kMetricServingTelemetryExportFailures =
    "serving.telemetry.export_failures";

// SLO gauges are published as <prefix><slo name>.<field> by
// obs::SloTracker; run_report.cc scans the same prefix back out.
inline constexpr std::string_view kServingSloGaugePrefix = "serving.slo.";

// --- Trace spans. ---
inline constexpr std::string_view kSpanServingGuardRefresh =
    "serving.guard_refresh";
inline constexpr std::string_view kSpanServingRefresh = "serving.refresh";
inline constexpr std::string_view kSpanServingSwap = "serving.swap";
// Per-query spans are "<prefix><op>#<query id>", so a trace and its
// query-log row join on the id.
inline constexpr std::string_view kSpanServingQueryPrefix = "serving.query.";

// --- Fail points (see common/failpoint.h; faults preset only). ---
inline constexpr std::string_view kFailPointServingMerge = "serving.merge";
inline constexpr std::string_view kFailPointServingSeal = "serving.seal";
inline constexpr std::string_view kFailPointServingSwap = "serving.swap";

}  // namespace pol::core

#endif  // POL_CORE_SERVING_METRIC_NAMES_H_
