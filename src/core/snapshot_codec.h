#ifndef POL_CORE_SNAPSHOT_CODEC_H_
#define POL_CORE_SNAPSHOT_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/inventory_snapshot.h"
#include "store/snapshot_store.h"

// The inventory payload schema inside a POLSNAP1 container (the
// container framing itself lives in store/snapshot_format.h). A sealed
// InventorySnapshot encodes into columnar sections that mirror its
// in-memory layout exactly, so a reader can mmap the file and serve
// queries straight from the mapping:
//
//   id 0x01  meta            varints: payload version, resolution,
//                            total, per-set counts, route span/cell
//                            counts, segment count, seal stats
//   id 0x10+s keys           16 B records {u64 cell, u64 packed dims},
//                            (cell, dims)-sorted — the binary-search
//                            array of grouping set s
//   id 0x20+s summary offs   u64[count+1] byte offsets into the blob
//   id 0x30+s summary blob   concatenated CellSummary::Serialize bytes
//   id 0x40  route spans     24 B records {u64 packed route, u64 begin,
//                            u64 end}, sorted by route key
//   id 0x41  route cells     u64 cell ids, span-ordered
//   id 0x42  segment index   16 B records {u64 cell, u64 mask}, sorted
//
// MappedSnapshot is the zero-copy server: fixed-width sections (keys,
// offsets, route index, segment masks) are binary-searched in place;
// variable-width CellSummary blobs are materialized lazily, one CAS-
// cached decode per entry on first access — cold start is mmap + CRC
// validation, with zero parsing and no re-Seal.

namespace pol::core {

// Section ids of the payload schema. `s` is the grouping-set ordinal.
inline constexpr uint32_t kSnapSectionMeta = 0x01;
inline constexpr uint32_t kSnapSectionKeysBase = 0x10;
inline constexpr uint32_t kSnapSectionSummaryOffsetsBase = 0x20;
inline constexpr uint32_t kSnapSectionSummaryBlobBase = 0x30;
inline constexpr uint32_t kSnapSectionRouteSpans = 0x40;
inline constexpr uint32_t kSnapSectionRouteCells = 0x41;
inline constexpr uint32_t kSnapSectionSegmentIndex = 0x42;

inline constexpr uint64_t kSnapPayloadVersion = 1;

// The meta section, decoded — also what `polinv snapshots` prints per
// generation without touching any payload section.
struct SnapshotMeta {
  int resolution = 0;
  uint64_t total = 0;
  InventorySnapshotStats stats;
};

// Decodes just the meta section of a validated view. kDataLoss when the
// section is missing, short, or disagrees with the payload version.
Result<SnapshotMeta> DecodeSnapshotMeta(const store::SnapshotFileView& view);

// Opens the store's newest readable generation as a serving snapshot
// backed by the mapping (the returned snapshot owns the mapping for its
// lifetime). The snapshot's stats() are the seal-time stats restored
// from the file — seal_sequence identifies the sealing process's
// ordinal, not this process's. `generation` (optional) receives the
// generation number served.
Result<std::shared_ptr<const InventorySnapshot>> OpenLatestSnapshot(
    const store::SnapshotStore& store, uint64_t* generation = nullptr);

// Same, for one specific generation (polinv tooling, tests).
Result<std::shared_ptr<const InventorySnapshot>> OpenGenerationSnapshot(
    const store::SnapshotStore& store, uint64_t generation);

// Wraps an already-opened generation. Exposed so callers that did their
// own fallback walk can still get a serving snapshot from it.
Result<std::shared_ptr<const InventorySnapshot>> SnapshotFromOpened(
    store::SnapshotStore::Opened opened);

}  // namespace pol::core

#endif  // POL_CORE_SNAPSHOT_CODEC_H_
