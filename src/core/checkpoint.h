#ifndef POL_CORE_CHECKPOINT_H_
#define POL_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

// Checkpoint/resume for the chunked pipeline. Every K accounted chunks
// (folded or quarantined — the fold cursor), RunPipeline serializes the
// InventoryBuilder state plus the cursor and the quarantine ledger into
// a snapshot file; a restarted run detects the newest valid snapshot,
// restores the builder, and resumes folding at the cursor. Because the
// sink runs strictly in ascending chunk order, a snapshot at cursor c
// is exactly the state of an uninterrupted run after c chunks, so a
// killed-and-resumed run produces a byte-identical inventory (the
// fault-injection suite asserts this at every fail point).
//
// Snapshot file format (one file per snapshot, "pol-ckpt-<seq>.snap"):
//
//   magic "POLCKP01" | varint body_size | body | crc32(body) LE32
//
//   body: varint version (=1)
//         varint cursor              chunks accounted so far
//         varint total_chunks        of the run being checkpointed
//         varint quarantine count
//           per entry: varint chunk_index, varint records,
//                      varint attempts, varint status code,
//                      length-prefixed message
//         length-prefixed builder state (InventoryBuilder::SerializeState)
//
// Writes are atomic (tmp file + rename) and rotated (newest `keep`
// snapshots survive), so a crash mid-write never destroys the previous
// good snapshot. Loading walks snapshots newest-first and falls back
// across corrupt or unreadable ones. Checkpoint I/O carries the
// "checkpoint.write" and "checkpoint.read" fail points.

namespace pol::core {

struct CheckpointConfig {
  // Snapshot directory; empty disables checkpointing. Created on the
  // first write if missing.
  std::string directory;
  // Write a snapshot every this many accounted chunks. The interval is
  // part of the determinism contract: serialization flushes t-digest
  // buffers, so byte-identity between two runs requires the same
  // schedule on both (see InventoryBuilder::SerializeState).
  int interval_chunks = 8;
  // Snapshots retained after rotation (>= 1).
  int keep = 2;
};

// One quarantined chunk as persisted in a snapshot, so a resumed run
// still reports full-run coverage.
struct CheckpointQuarantineEntry {
  uint64_t chunk_index = 0;
  uint64_t records = 0;
  uint64_t attempts = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
};

// Everything a snapshot carries.
struct CheckpointState {
  uint64_t cursor = 0;        // Chunks accounted (folded or quarantined).
  uint64_t total_chunks = 0;  // Chunk count of the checkpointed run.
  std::vector<CheckpointQuarantineEntry> quarantined;
  std::string builder_state;  // InventoryBuilder::SerializeState bytes.
};

class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointConfig config);

  bool enabled() const { return !config_.directory.empty(); }
  const CheckpointConfig& config() const { return config_; }

  // Writes one snapshot atomically and rotates old ones down to
  // `keep`. Sequence numbers continue past any snapshots already in the
  // directory, so a resumed run never overwrites its predecessor's
  // files. Fail point: "checkpoint.write".
  Status Write(const CheckpointState& state);

  // Loads the newest snapshot that validates (magic, size, CRC, body),
  // falling back to older ones on corruption; NotFound when the
  // directory holds no loadable snapshot. Fail point: "checkpoint.read"
  // (a fired read makes the snapshot under inspection unreadable, so
  // fallback — and ultimately a fresh start — still works).
  Result<CheckpointState> LoadLatest() const;

  // Snapshot paths currently on disk, ascending by sequence.
  std::vector<std::string> ListSnapshots() const;

  // Serialization of one snapshot, exposed for tests.
  static void Encode(const CheckpointState& state, std::string* out);
  static Result<CheckpointState> Decode(std::string_view input);

 private:
  CheckpointConfig config_;
  uint64_t next_sequence_ = 1;  // Advanced on construction and per write.
};

}  // namespace pol::core

#endif  // POL_CORE_CHECKPOINT_H_
