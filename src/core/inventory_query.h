#ifndef POL_CORE_INVENTORY_QUERY_H_
#define POL_CORE_INVENTORY_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/cell_summary.h"
#include "core/group_key.h"

// The narrow read-side interface of the global inventory (the paper's
// section 4 query surface). Every consumer — the usecases, polinv, the
// examples and the benches — binds to this interface, never to a
// concrete store: the same estimator runs against the mutable
// build-side `Inventory`, an immutable `InventorySnapshot` sealed from
// it, or a hot-swappable `ServingInventory`. pollint's
// `inventory-query` rule enforces the boundary by flagging direct
// `summaries()` map iteration outside src/core/.

namespace pol::core {

class InventoryQuery {
 public:
  virtual ~InventoryQuery();

  // Grid resolution all keys are expressed at.
  virtual int resolution() const = 0;

  // Total summaries across all grouping sets.
  virtual size_t size() const = 0;

  // Point lookups per grouping set; nullptr when the group is absent.
  // Returned pointers stay valid for the lifetime of the queried store
  // (for ServingInventory: of the snapshot they were answered from).
  virtual const CellSummary* Cell(hex::CellIndex cell) const = 0;
  virtual const CellSummary* CellType(hex::CellIndex cell,
                                      ais::MarketSegment segment) const = 0;
  virtual const CellSummary* CellRouteType(hex::CellIndex cell,
                                           sim::PortId origin,
                                           sim::PortId destination,
                                           ais::MarketSegment segment)
      const = 0;

  // All cells carrying a summary for an (origin, destination, segment)
  // key — the route-forecasting query of section 4.1.3 — in ascending
  // cell order. A route key with no summaries answers with the
  // *reversed* pair's cells when those exist: corridors are recorded
  // directionally, and the silent empty answer on a return voyage was a
  // long-standing trap (see DESIGN.md §3.5).
  virtual std::vector<hex::CellIndex> CellsForRoute(
      sim::PortId origin, sim::PortId destination,
      ais::MarketSegment segment) const = 0;

  // Market segments with a (cell, type) summary at `cell`, ascending.
  virtual std::vector<ais::MarketSegment> SegmentsAt(
      hex::CellIndex cell) const = 0;

  // Visits every summary of one grouping set. Visit order is
  // unspecified for map-backed stores and ascending (cell, dims) for
  // snapshots; aggregations must not depend on it.
  using SummaryVisitor =
      std::function<void(const GroupKey&, const CellSummary&)>;
  virtual void VisitGroupingSet(GroupingSet set,
                                const SummaryVisitor& visitor) const = 0;

  // Like VisitGroupingSet, but the visitor returns false to stop the
  // walk — the cooperative-cancellation hook the serving guard threads
  // per-call deadlines through (see core/serving_guard.h). Returns true
  // when every summary was visited, false when a visitor stopped early.
  // The base implementation suppresses visits after a stop (correct for
  // any store); Inventory and InventorySnapshot override it with a real
  // early exit out of the walk.
  using CancellableVisitor =
      std::function<bool(const GroupKey&, const CellSummary&)>;
  virtual bool VisitGroupingSetWhile(GroupingSet set,
                                     const CancellableVisitor& visitor) const;

  // Distinct cells in grouping set 1 (the Table 4 "#Cells"). Default
  // counts via VisitGroupingSet; snapshots answer in O(1).
  virtual uint64_t DistinctCells() const;

  // --- Conveniences shared by every implementation. ---

  // Summary of the cell containing a position (the "query for a
  // specific location" of the paper's abstract).
  const CellSummary* AtPosition(const geo::LatLng& position) const;

  // The most frequent destination port for a cell (optionally per
  // segment); kNoPort when unknown.
  sim::PortId TopDestination(hex::CellIndex cell, ais::MarketSegment segment,
                             bool any_segment) const;
};

}  // namespace pol::core

#endif  // POL_CORE_INVENTORY_QUERY_H_
