#include "core/cell_summary.h"

#include <string>
#include <string_view>
#include <utility>

#include "common/varint.h"

namespace pol::core {

CellSummary::CellSummary(const SummaryParams& params)
    : ships_(params.hll_precision),
      trips_(params.hll_precision),
      course_bins_(stats::Histogram::ForDegrees30()),
      heading_bins_(stats::Histogram::ForDegrees30()),
      speed_q_(params.tdigest_compression),
      eto_q_(params.tdigest_compression),
      ata_q_(params.tdigest_compression),
      origins_(params.topn_capacity),
      destinations_(params.topn_capacity),
      transitions_(params.topn_capacity) {}

void CellSummary::Add(const PipelineRecord& record) {
  ++record_count_;
  ships_.Add(record.mmsi);
  if (record.trip_id != 0) {
    trips_.Add(record.trip_id);
    eto_.Add(static_cast<double>(record.eto_s));
    eto_q_.Add(static_cast<double>(record.eto_s));
    ata_.Add(static_cast<double>(record.ata_s));
    ata_q_.Add(static_cast<double>(record.ata_s));
    if (record.origin != sim::kNoPort) origins_.Add(record.origin);
    if (record.destination != sim::kNoPort) {
      destinations_.Add(record.destination);
    }
  }
  if (record.sog_knots < ais::kSogUnavailable) {
    speed_.Add(record.sog_knots);
    speed_q_.Add(record.sog_knots);
  }
  if (record.cog_deg < ais::kCogUnavailable) {
    course_mean_.Add(record.cog_deg);
    course_bins_.Add(record.cog_deg);
  }
  if (record.heading_deg != ais::kHeadingUnavailable) {
    heading_mean_.Add(record.heading_deg);
    heading_bins_.Add(record.heading_deg);
  }
  if (record.next_cell != hex::kInvalidCell) {
    transitions_.Add(record.next_cell);
  }
}

void CellSummary::Merge(CellSummary&& other) {
  record_count_ += other.record_count_;
  ships_.Merge(other.ships_);
  trips_.Merge(other.trips_);
  course_mean_.Merge(other.course_mean_);
  heading_mean_.Merge(other.heading_mean_);
  course_bins_.Merge(other.course_bins_).ok();
  heading_bins_.Merge(other.heading_bins_).ok();
  speed_.Merge(other.speed_);
  speed_q_.Merge(other.speed_q_);
  eto_.Merge(other.eto_);
  eto_q_.Merge(other.eto_q_);
  ata_.Merge(other.ata_);
  ata_q_.Merge(other.ata_q_);
  origins_.Merge(other.origins_);
  destinations_.Merge(other.destinations_);
  transitions_.Merge(other.transitions_);
}

void CellSummary::Serialize(std::string* out) const {
  PutVarint64(out, record_count_);
  ships_.Serialize(out);
  trips_.Serialize(out);
  course_mean_.Serialize(out);
  heading_mean_.Serialize(out);
  course_bins_.Serialize(out);
  heading_bins_.Serialize(out);
  speed_.Serialize(out);
  speed_q_.Serialize(out);
  eto_.Serialize(out);
  eto_q_.Serialize(out);
  ata_.Serialize(out);
  ata_q_.Serialize(out);
  origins_.Serialize(out);
  destinations_.Serialize(out);
  transitions_.Serialize(out);
}

Status CellSummary::Deserialize(std::string_view* input) {
  POL_RETURN_IF_ERROR(GetVarint64(input, &record_count_));
  POL_RETURN_IF_ERROR(ships_.Deserialize(input));
  POL_RETURN_IF_ERROR(trips_.Deserialize(input));
  POL_RETURN_IF_ERROR(course_mean_.Deserialize(input));
  POL_RETURN_IF_ERROR(heading_mean_.Deserialize(input));
  POL_RETURN_IF_ERROR(course_bins_.Deserialize(input));
  POL_RETURN_IF_ERROR(heading_bins_.Deserialize(input));
  POL_RETURN_IF_ERROR(speed_.Deserialize(input));
  POL_RETURN_IF_ERROR(speed_q_.Deserialize(input));
  POL_RETURN_IF_ERROR(eto_.Deserialize(input));
  POL_RETURN_IF_ERROR(eto_q_.Deserialize(input));
  POL_RETURN_IF_ERROR(ata_.Deserialize(input));
  POL_RETURN_IF_ERROR(ata_q_.Deserialize(input));
  POL_RETURN_IF_ERROR(origins_.Deserialize(input));
  POL_RETURN_IF_ERROR(destinations_.Deserialize(input));
  POL_RETURN_IF_ERROR(transitions_.Deserialize(input));
  return Status::OK();
}

size_t CellSummary::MemoryFootprint() const {
  // Approximate: serialized size tracks the dynamic parts closely.
  std::string buffer;
  Serialize(&buffer);
  return sizeof(CellSummary) + buffer.size();
}

}  // namespace pol::core
