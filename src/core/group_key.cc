#include "core/group_key.h"

#include <cstdio>
#include <string>

namespace pol::core {

GroupKey KeyCell(hex::CellIndex cell) {
  GroupKey key;
  key.cell = cell;
  key.grouping_set = static_cast<uint8_t>(GroupingSet::kCell);
  return key;
}

GroupKey KeyCellType(hex::CellIndex cell, ais::MarketSegment segment) {
  GroupKey key;
  key.cell = cell;
  key.grouping_set = static_cast<uint8_t>(GroupingSet::kCellType);
  key.segment = static_cast<uint8_t>(segment);
  return key;
}

GroupKey KeyCellRouteType(hex::CellIndex cell, sim::PortId origin,
                          sim::PortId destination,
                          ais::MarketSegment segment) {
  GroupKey key;
  key.cell = cell;
  key.grouping_set = static_cast<uint8_t>(GroupingSet::kCellRouteType);
  key.segment = static_cast<uint8_t>(segment);
  key.origin = static_cast<uint16_t>(origin);
  key.destination = static_cast<uint16_t>(destination);
  return key;
}

uint64_t GroupKeyDimsPacked(const GroupKey& key) {
  return static_cast<uint64_t>(key.grouping_set) |
         (static_cast<uint64_t>(key.segment) << 8) |
         (static_cast<uint64_t>(key.origin) << 16) |
         (static_cast<uint64_t>(key.destination) << 32);
}

GroupKey GroupKeyFromPacked(uint64_t cell, uint64_t dims) {
  GroupKey key;
  key.cell = cell;
  key.grouping_set = static_cast<uint8_t>(dims & 0xff);
  key.segment = static_cast<uint8_t>((dims >> 8) & 0xff);
  key.origin = static_cast<uint16_t>((dims >> 16) & 0xffff);
  key.destination = static_cast<uint16_t>((dims >> 32) & 0xffff);
  return key;
}

std::string GroupKeyToString(const GroupKey& key) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "gs%u:%s:seg%u:o%u:d%u", key.grouping_set,
                hex::CellToString(key.cell).c_str(), key.segment, key.origin,
                key.destination);
  return buf;
}

}  // namespace pol::core
