#include "core/inventory_snapshot.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "core/serving_metric_names.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pol::core {
namespace {

// The canonical key order of the flat arrays (and of the serialized
// inventory format): cell first, then the packed dimensions.
bool KeyLess(const GroupKey& a, const GroupKey& b) {
  if (a.cell != b.cell) return a.cell < b.cell;
  return GroupKeyDimsPacked(a) < GroupKeyDimsPacked(b);
}

}  // namespace

const CellSummary* InventorySnapshot::Lookup(GroupingSet set,
                                             const GroupKey& key) const {
  const GroupArray& group = groups_[static_cast<size_t>(set)];
  const auto it =
      std::lower_bound(group.keys.begin(), group.keys.end(), key, KeyLess);
  if (it == group.keys.end() || !(*it == key)) return nullptr;
  return &group.values[static_cast<size_t>(it - group.keys.begin())];
}

const CellSummary* InventorySnapshot::Cell(hex::CellIndex cell) const {
  return Lookup(GroupingSet::kCell, KeyCell(cell));
}

const CellSummary* InventorySnapshot::CellType(
    hex::CellIndex cell, ais::MarketSegment segment) const {
  return Lookup(GroupingSet::kCellType, KeyCellType(cell, segment));
}

const CellSummary* InventorySnapshot::CellRouteType(
    hex::CellIndex cell, sim::PortId origin, sim::PortId destination,
    ais::MarketSegment segment) const {
  return Lookup(GroupingSet::kCellRouteType,
                KeyCellRouteType(cell, origin, destination, segment));
}

std::vector<hex::CellIndex> InventorySnapshot::CellsForRoute(
    sim::PortId origin, sim::PortId destination,
    ais::MarketSegment segment) const {
  return route_index_.CellsWithReversedFallback(origin, destination, segment);
}

std::vector<ais::MarketSegment> InventorySnapshot::SegmentsAt(
    hex::CellIndex cell) const {
  const auto it = std::lower_bound(
      segment_index_.begin(), segment_index_.end(), cell,
      [](const CellSegments& entry, hex::CellIndex c) {
        return entry.cell < c;
      });
  std::vector<ais::MarketSegment> segments;
  if (it == segment_index_.end() || it->cell != cell) return segments;
  for (int bit = 0; bit < ais::kNumMarketSegments; ++bit) {
    if ((it->mask >> bit) & 1) {
      segments.push_back(static_cast<ais::MarketSegment>(bit));
    }
  }
  return segments;
}

void InventorySnapshot::VisitGroupingSet(GroupingSet set,
                                         const SummaryVisitor& visitor) const {
  const GroupArray& group = groups_[static_cast<size_t>(set)];
  for (size_t i = 0; i < group.keys.size(); ++i) {
    visitor(group.keys[i], group.values[i]);
  }
}

bool InventorySnapshot::VisitGroupingSetWhile(
    GroupingSet set, const CancellableVisitor& visitor) const {
  const GroupArray& group = groups_[static_cast<size_t>(set)];
  for (size_t i = 0; i < group.keys.size(); ++i) {
    if (!visitor(group.keys[i], group.values[i])) return false;
  }
  return true;
}

uint64_t InventorySnapshot::DistinctCells() const {
  return groups_[static_cast<size_t>(GroupingSet::kCell)].keys.size();
}

std::shared_ptr<const InventorySnapshot> Inventory::Seal() const {
  POL_TRACE_SPAN("inventory.seal");
  const double start = obs::NowSeconds();
  auto snapshot =
      std::make_shared<InventorySnapshot>(InventorySnapshot::SealTag{});
  snapshot->resolution_ = resolution_;
  snapshot->total_ = summaries_.size();

  // Flat sorted key/summary arrays per grouping set. Sort pointers into
  // the map first so each summary is copied exactly once, directly into
  // its final slot.
  std::array<std::vector<const SummaryMap::value_type*>, kNumGroupingSets>
      per_set;
  for (const auto& entry : summaries_) {
    const size_t set = entry.first.grouping_set;
    if (set < kNumGroupingSets) per_set[set].push_back(&entry);
  }
  for (size_t set = 0; set < kNumGroupingSets; ++set) {
    auto& pointers = per_set[set];
    std::sort(pointers.begin(), pointers.end(),
              [](const SummaryMap::value_type* a,
                 const SummaryMap::value_type* b) {
                return KeyLess(a->first, b->first);
              });
    InventorySnapshot::GroupArray& group = snapshot->groups_[set];
    group.keys.reserve(pointers.size());
    group.values.reserve(pointers.size());
    for (const SummaryMap::value_type* entry : pointers) {
      group.keys.push_back(entry->first);
      group.values.push_back(entry->second);
    }
    snapshot->stats_.summaries_per_set[set] = pointers.size();
  }

  // Secondary index 1: (origin, destination, segment) -> cells.
  snapshot->route_index_.Build(summaries_);
  snapshot->stats_.route_index_routes = snapshot->route_index_.routes();
  snapshot->stats_.route_index_cells = snapshot->route_index_.cells();

  // Secondary index 2: cell -> present-segments bitmask, derived from
  // the already-sorted (cell, type) key array.
  const InventorySnapshot::GroupArray& cell_type =
      snapshot->groups_[static_cast<size_t>(GroupingSet::kCellType)];
  for (const GroupKey& key : cell_type.keys) {
    if (key.segment >= ais::kNumMarketSegments) continue;
    if (snapshot->segment_index_.empty() ||
        snapshot->segment_index_.back().cell != key.cell) {
      snapshot->segment_index_.push_back(
          InventorySnapshot::CellSegments{key.cell, 0});
    }
    snapshot->segment_index_.back().mask = static_cast<uint16_t>(
        snapshot->segment_index_.back().mask | (uint16_t{1} << key.segment));
  }
  snapshot->stats_.segment_index_cells = snapshot->segment_index_.size();

  snapshot->stats_.seal_seconds = obs::NowSeconds() - start;
  // Process-wide seal ordinal: the snapshot id the serving telemetry
  // joins query-log rows and the active_id gauge on.
  static std::atomic<uint64_t> seal_counter{0};
  snapshot->stats_.seal_sequence =
      seal_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  auto& registry = obs::Registry::Global();
  registry.histogram(kMetricServingSealSeconds)
      ->Record(snapshot->stats_.seal_seconds);
  registry.counter(kMetricServingSeals)->Increment();
  return snapshot;
}

}  // namespace pol::core
