#ifndef POL_CORE_GEOFENCE_H_
#define POL_CORE_GEOFENCE_H_

#include <unordered_map>
#include <vector>

#include "geo/latlng.h"
#include "hexgrid/hexgrid.h"
#include "sim/ports.h"

// Port geofencing (paper section 3.3.2): the spatial technique that
// detects records inside port areas. A naive implementation tests every
// point against every port; this one pre-indexes port geofences on the
// hexagonal grid, so a lookup is one cell hash probe plus exact distance
// checks against the handful of candidate ports sharing the cell.

namespace pol::core {

class Geofencer {
 public:
  // Indexes the geofences of `ports` at grid resolution `res` (cells
  // must be comfortably smaller than a geofence; 6 or 7 both work).
  explicit Geofencer(const sim::PortDatabase* ports, int res = 6);

  // The port whose geofence contains `position`, or kNoPort.
  sim::PortId PortAt(const geo::LatLng& position) const;

  // Exhaustive (non-indexed) lookup, for verification and benchmarks.
  sim::PortId PortAtExhaustive(const geo::LatLng& position) const;

  int resolution() const { return res_; }
  size_t IndexedCellCount() const { return index_.size(); }

 private:
  const sim::PortDatabase* ports_;
  int res_;
  // Cell -> ports whose geofence intersects the cell.
  std::unordered_map<hex::CellIndex, std::vector<sim::PortId>> index_;
};

}  // namespace pol::core

#endif  // POL_CORE_GEOFENCE_H_
