#ifndef POL_CORE_EXTRACTOR_H_
#define POL_CORE_EXTRACTOR_H_

#include <unordered_map>

#include "core/cell_summary.h"
#include "core/group_key.h"
#include "core/records.h"
#include "flow/dataset.h"

// Projection to the spatial index (paper section 3.3.3) and feature
// extraction over the grouping sets (section 3.3.4).
//
// Projection assigns each record its grid cell and, preserving the
// in-trip message order, the next distinct cell (the raw material of the
// Transitions feature). Extraction is a MapReduce over GroupKeys: local
// per-partition maps (map phase) merged bucket-parallel in ascending
// partition order (reduce phase) — the same structure Spark gives the
// original system.

namespace pol::core {

struct ExtractorConfig {
  int resolution = 6;
  // Which grouping sets of Table 2 to materialize.
  bool gi_cell = true;
  bool gi_cell_type = true;
  bool gi_cell_route_type = true;
  SummaryParams summary_params;
};

using SummaryMap =
    std::unordered_map<GroupKey, CellSummary, GroupKeyHash>;

// Assigns `cell` and `next_cell` at the configured resolution. Records
// must be vessel-partitioned and time-sorted (ExtractTrips output).
flow::Dataset<PipelineRecord> ProjectToGrid(
    const flow::Dataset<PipelineRecord>& records, int resolution);

// Aggregates projected records into per-group summaries in one shot.
// (Single-Fold convenience over InventoryBuilder — see
// inventory_builder.h for the incremental, chunk-by-chunk form.)
SummaryMap ExtractFeatures(const flow::Dataset<PipelineRecord>& projected,
                           const ExtractorConfig& config);

}  // namespace pol::core

#endif  // POL_CORE_EXTRACTOR_H_
