#include "core/inventory.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/crc32.h"
#include "common/varint.h"
#include "hexgrid/hex_math.h"
#include "hexgrid/hexgrid.h"

namespace pol::core {
namespace {

constexpr char kMagic[] = "POLINV01";
constexpr size_t kMagicLen = 8;

}  // namespace

Inventory::Inventory(int resolution, SummaryMap summaries)
    : resolution_(resolution), summaries_(std::move(summaries)) {
  route_index_.Build(summaries_);
}

const CellSummary* Inventory::Cell(hex::CellIndex cell) const {
  const auto it = summaries_.find(KeyCell(cell));
  return it == summaries_.end() ? nullptr : &it->second;
}

const CellSummary* Inventory::CellType(hex::CellIndex cell,
                                       ais::MarketSegment segment) const {
  const auto it = summaries_.find(KeyCellType(cell, segment));
  return it == summaries_.end() ? nullptr : &it->second;
}

const CellSummary* Inventory::CellRouteType(
    hex::CellIndex cell, sim::PortId origin, sim::PortId destination,
    ais::MarketSegment segment) const {
  const auto it = summaries_.find(
      KeyCellRouteType(cell, origin, destination, segment));
  return it == summaries_.end() ? nullptr : &it->second;
}

std::vector<hex::CellIndex> Inventory::CellsForRoute(
    sim::PortId origin, sim::PortId destination,
    ais::MarketSegment segment) const {
  return route_index_.CellsWithReversedFallback(origin, destination, segment);
}

std::vector<hex::CellIndex> Inventory::CellsForRouteScan(
    sim::PortId origin, sim::PortId destination,
    ais::MarketSegment segment) const {
  const auto scan = [this, segment](sim::PortId o, sim::PortId d) {
    std::vector<hex::CellIndex> cells;
    for (const auto& [key, summary] : summaries_) {
      if (key.grouping_set !=
          static_cast<uint8_t>(GroupingSet::kCellRouteType)) {
        continue;
      }
      if (key.origin == o && key.destination == d &&
          key.segment == static_cast<uint8_t>(segment)) {
        cells.push_back(key.cell);
      }
    }
    std::sort(cells.begin(), cells.end());
    return cells;
  };
  std::vector<hex::CellIndex> cells = scan(origin, destination);
  if (cells.empty()) cells = scan(destination, origin);
  return cells;
}

std::vector<ais::MarketSegment> Inventory::SegmentsAt(
    hex::CellIndex cell) const {
  std::vector<ais::MarketSegment> segments;
  for (const auto& [key, summary] : summaries_) {
    if (key.grouping_set == static_cast<uint8_t>(GroupingSet::kCellType) &&
        key.cell == cell) {
      segments.push_back(static_cast<ais::MarketSegment>(key.segment));
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

void Inventory::VisitGroupingSet(GroupingSet set,
                                 const SummaryVisitor& visitor) const {
  for (const auto& [key, summary] : summaries_) {
    if (key.grouping_set == static_cast<uint8_t>(set)) {
      visitor(key, summary);
    }
  }
}

bool Inventory::VisitGroupingSetWhile(
    GroupingSet set, const CancellableVisitor& visitor) const {
  for (const auto& [key, summary] : summaries_) {
    if (key.grouping_set != static_cast<uint8_t>(set)) continue;
    if (!visitor(key, summary)) return false;
  }
  return true;
}

uint64_t Inventory::DistinctCells() const {
  uint64_t cells = 0;
  for (const auto& [key, summary] : summaries_) {
    if (key.grouping_set == static_cast<uint8_t>(GroupingSet::kCell)) {
      ++cells;
    }
  }
  return cells;
}

CompressionReport Inventory::Compression(uint64_t records) const {
  CompressionReport report;
  report.resolution = resolution_;
  report.records = records;
  report.cells = DistinctCells();
  report.summaries = summaries_.size();
  report.compression =
      records == 0 ? 0.0
                   : 1.0 - static_cast<double>(report.cells) /
                               static_cast<double>(records);
  report.utilization = static_cast<double>(report.cells) /
                       static_cast<double>(hex::NumCells(resolution_));
  std::string bytes;
  SerializeTo(&bytes);
  report.serialized_bytes = bytes.size();
  return report;
}

Status Inventory::MergeFrom(Inventory&& other) {
  if (other.resolution_ != resolution_) {
    return Status::FailedPrecondition(
        "cannot merge inventories of different resolutions");
  }
  for (auto& [key, summary] : other.summaries_) {
    auto [it, inserted] = summaries_.try_emplace(key);
    if (inserted) {
      it->second = std::move(summary);
    } else {
      it->second.Merge(std::move(summary));
    }
  }
  other.summaries_.clear();
  other.route_index_.Clear();
  route_index_.Build(summaries_);
  return Status::OK();
}

void Inventory::SerializeTo(std::string* out) const {
  out->append(kMagic, kMagicLen);
  std::string body;
  PutVarint64(&body, static_cast<uint64_t>(resolution_));
  PutVarint64(&body, summaries_.size());
  // Deterministic order: sort keys. (The map is unordered; canonical
  // bytes make file-level comparisons and CRCs meaningful.)
  std::vector<const GroupKey*> keys;
  keys.reserve(summaries_.size());
  for (const auto& [key, summary] : summaries_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const GroupKey* a, const GroupKey* b) {
              if (a->cell != b->cell) return a->cell < b->cell;
              return GroupKeyDimsPacked(*a) < GroupKeyDimsPacked(*b);
            });
  for (const GroupKey* key : keys) {
    PutVarint64(&body, key->cell);
    PutVarint64(&body, GroupKeyDimsPacked(*key));
    std::string summary_bytes;
    summaries_.at(*key).Serialize(&summary_bytes);
    PutLengthPrefixed(&body, summary_bytes);
  }
  // Footer: body size + CRC of the body.
  PutVarint64(out, body.size());
  out->append(body);
  const uint32_t crc = Crc32(body);
  out->push_back(static_cast<char>(crc & 0xff));
  out->push_back(static_cast<char>((crc >> 8) & 0xff));
  out->push_back(static_cast<char>((crc >> 16) & 0xff));
  out->push_back(static_cast<char>((crc >> 24) & 0xff));
}

Result<Inventory> Inventory::DeserializeFrom(std::string_view input) {
  if (input.size() < kMagicLen ||
      input.substr(0, kMagicLen) != std::string_view(kMagic, kMagicLen)) {
    return Status::Corruption("bad inventory magic");
  }
  input.remove_prefix(kMagicLen);
  uint64_t body_size = 0;
  POL_RETURN_IF_ERROR(GetVarint64(&input, &body_size));
  if (input.size() < body_size + 4) {
    return Status::Corruption("truncated inventory body");
  }
  const std::string_view body_bytes = input.substr(0, body_size);
  const std::string_view crc_bytes = input.substr(body_size, 4);
  uint32_t declared = 0;
  for (int i = 3; i >= 0; --i) {
    declared = (declared << 8) | static_cast<uint8_t>(crc_bytes[static_cast<size_t>(i)]);
  }
  if (Crc32(body_bytes) != declared) {
    return Status::Corruption("inventory checksum mismatch");
  }

  std::string_view body = body_bytes;
  uint64_t resolution = 0;
  uint64_t count = 0;
  POL_RETURN_IF_ERROR(GetVarint64(&body, &resolution));
  POL_RETURN_IF_ERROR(GetVarint64(&body, &count));
  if (resolution > hex::kMaxResolution) {
    return Status::Corruption("bad inventory resolution");
  }
  SummaryMap summaries;
  summaries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t cell = 0;
    uint64_t dims = 0;
    POL_RETURN_IF_ERROR(GetVarint64(&body, &cell));
    POL_RETURN_IF_ERROR(GetVarint64(&body, &dims));
    const GroupKey key = GroupKeyFromPacked(cell, dims);
    std::string_view summary_bytes;
    POL_RETURN_IF_ERROR(GetLengthPrefixed(&body, &summary_bytes));
    CellSummary summary;
    POL_RETURN_IF_ERROR(summary.Deserialize(&summary_bytes));
    if (!summary_bytes.empty()) {
      return Status::Corruption("trailing bytes in summary");
    }
    summaries.emplace(key, std::move(summary));
  }
  return Inventory(static_cast<int>(resolution), std::move(summaries));
}

Status Inventory::SaveToFile(const std::string& path) const {
  std::string bytes;
  SerializeTo(&bytes);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) return Status::IoError("short write: " + path);
  return Status::OK();
}

Result<Inventory> Inventory::LoadFromFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  return DeserializeFrom(bytes);
}

}  // namespace pol::core
