#ifndef POL_CORE_CELL_SUMMARY_H_
#define POL_CORE_CELL_SUMMARY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/records.h"
#include "stats/circular.h"
#include "stats/histogram.h"
#include "stats/hyperloglog.h"
#include "stats/spacesaving.h"
#include "stats/tdigest.h"
#include "stats/welford.h"

// The per-group statistical summary — the feature set of Table 3:
//
//   Records      Cnt
//   Ships        Dist           (HyperLogLog over MMSIs)
//   Course       Mean*, Bins    (circular mean; 30-degree bins)
//   Heading      Mean*, Bins
//   Speed        Mean, Std, Percentiles (10/50/90)
//   Trips        Dist           (HyperLogLog over trip ids)
//   ETO          Mean, Std, Percentiles
//   ATA          Mean, Std, Percentiles
//   Origin       Top-N          (SpaceSaving over port ids)
//   Destination  Top-N
//   Transitions  Top-N          (SpaceSaving over next-cell ids)
//
// Summaries are mergeable (the reduce contract) and serialize into the
// inventory's binary format.

namespace pol::core {

// Size/accuracy knobs. Inventories hold millions of summaries, so the
// defaults favour compactness; the error envelopes stay well inside what
// the use cases need (see the accuracy tests).
struct SummaryParams {
  double tdigest_compression = 25.0;
  size_t topn_capacity = 12;
  int hll_precision = 10;
};

class CellSummary {
 public:
  explicit CellSummary(const SummaryParams& params = SummaryParams());

  // Folds one trip-annotated record. Unavailable kinematic fields are
  // skipped; transition/next-cell is recorded when present.
  void Add(const PipelineRecord& record);

  void Merge(CellSummary&& other);

  // Feature accessors (Table 3 naming).
  uint64_t record_count() const { return record_count_; }
  const stats::HyperLogLog& ships() const { return ships_; }
  const stats::HyperLogLog& trips() const { return trips_; }
  const stats::CircularMean& course_mean() const { return course_mean_; }
  const stats::CircularMean& heading_mean() const { return heading_mean_; }
  const stats::Histogram& course_bins() const { return course_bins_; }
  const stats::Histogram& heading_bins() const { return heading_bins_; }
  const stats::Welford& speed() const { return speed_; }
  const stats::TDigest& speed_percentiles() const { return speed_q_; }
  const stats::Welford& eto() const { return eto_; }
  const stats::TDigest& eto_percentiles() const { return eto_q_; }
  const stats::Welford& ata() const { return ata_; }
  const stats::TDigest& ata_percentiles() const { return ata_q_; }
  const stats::SpaceSaving& origins() const { return origins_; }
  const stats::SpaceSaving& destinations() const { return destinations_; }
  const stats::SpaceSaving& transitions() const { return transitions_; }

  void Serialize(std::string* out) const;
  Status Deserialize(std::string_view* input);

  // Rough in-memory footprint, bytes (for capacity planning tests).
  size_t MemoryFootprint() const;

 private:
  uint64_t record_count_ = 0;
  stats::HyperLogLog ships_;
  stats::HyperLogLog trips_;
  stats::CircularMean course_mean_;
  stats::CircularMean heading_mean_;
  stats::Histogram course_bins_;
  stats::Histogram heading_bins_;
  stats::Welford speed_;
  stats::TDigest speed_q_;
  stats::Welford eto_;
  stats::TDigest eto_q_;
  stats::Welford ata_;
  stats::TDigest ata_q_;
  stats::SpaceSaving origins_;
  stats::SpaceSaving destinations_;
  stats::SpaceSaving transitions_;
};

}  // namespace pol::core

#endif  // POL_CORE_CELL_SUMMARY_H_
