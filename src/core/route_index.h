#ifndef POL_CORE_ROUTE_INDEX_H_
#define POL_CORE_ROUTE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/extractor.h"

// Secondary index over the (cell, origin, destination, type) grouping
// set: (origin, destination, segment) -> the ascending list of cells
// that carry a summary for that route key. Turns CellsForRoute — and
// therefore the corridor lookup at the head of every A* route forecast —
// from a full scan of all summaries into one binary search plus a copy
// of the k result cells. Built once (at Inventory construction / merge,
// and at snapshot seal time); read-only afterwards, so concurrent
// lookups need no locking.

namespace pol::core {

class RouteIndex {
 public:
  // (Re)builds the index from the route-grouping-set keys of a summary
  // map. Any previous contents are discarded.
  void Build(const SummaryMap& summaries);

  void Clear();

  // Cells of the exact (origin, destination, segment) key, ascending;
  // empty when the key has no summaries. O(log routes + k).
  std::vector<hex::CellIndex> Cells(sim::PortId origin,
                                    sim::PortId destination,
                                    ais::MarketSegment segment) const;

  // The CellsForRoute answer policy: the exact key's cells, or — when
  // that key is empty — the reversed pair's cells, so a query against
  // the return direction of a recorded corridor no longer silently
  // matches nothing.
  std::vector<hex::CellIndex> CellsWithReversedFallback(
      sim::PortId origin, sim::PortId destination,
      ais::MarketSegment segment) const;

  // Index sizes (for polinv stats and the snapshot stats block).
  size_t routes() const { return spans_.size(); }
  size_t cells() const { return cells_.size(); }

  // The canonical packed (origin, destination, segment) route key —
  // also the on-disk span key of the POLSNAP1 route-index section, so
  // the mapped snapshot can binary-search spans straight off the file.
  static uint64_t PackRouteKey(sim::PortId origin, sim::PortId destination,
                               ais::MarketSegment segment);

  // Visits every span as (packed_route, begin, end) in sorted route
  // order, for the snapshot codec's columnar writer.
  template <typename Fn>
  void ForEachSpan(Fn&& fn) const {
    for (const Span& span : spans_) fn(span.route, span.begin, span.end);
  }

  // The flat, span-ordered cell array the spans index into.
  const std::vector<hex::CellIndex>& cell_array() const { return cells_; }

 private:
  struct Span {
    uint64_t route = 0;  // Packed (origin, destination, segment).
    size_t begin = 0;    // Range into cells_.
    size_t end = 0;
  };

  const Span* Find(uint64_t packed) const;

  std::vector<Span> spans_;          // Sorted by packed route key.
  std::vector<hex::CellIndex> cells_;  // Ascending within each span.
};

}  // namespace pol::core

#endif  // POL_CORE_ROUTE_INDEX_H_
