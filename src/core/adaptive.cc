#include "core/adaptive.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "hexgrid/hexgrid.h"

namespace pol::core {

AdaptiveInventory AdaptiveInventory::Build(const Inventory& fine,
                                           int coarse_res,
                                           uint64_t dense_threshold) {
  const int fine_res = fine.resolution();
  POL_CHECK(coarse_res >= 0 && coarse_res <= fine_res);

  // Bottom-up: per-level summary maps, each level the merge of the one
  // below. levels[r - coarse_res] holds resolution r.
  const int num_levels = fine_res - coarse_res + 1;
  std::vector<std::unordered_map<hex::CellIndex, CellSummary>> levels(
      static_cast<size_t>(num_levels));
  // Children of each cell, per level (for the top-down cut).
  std::vector<std::unordered_map<hex::CellIndex, std::vector<hex::CellIndex>>>
      children(static_cast<size_t>(num_levels));

  // Seed the finest level from the (cell) grouping set.
  auto& finest = levels[static_cast<size_t>(num_levels - 1)];
  for (const auto& [key, summary] : fine.summaries()) {
    if (key.grouping_set != static_cast<uint8_t>(GroupingSet::kCell)) {
      continue;
    }
    finest.emplace(key.cell, summary);  // CellSummary is copyable.
  }

  // Merge upward level by level.
  for (int level = num_levels - 1; level > 0; --level) {
    auto& lower = levels[static_cast<size_t>(level)];
    auto& upper = levels[static_cast<size_t>(level - 1)];
    auto& kids = children[static_cast<size_t>(level - 1)];
    const int upper_res = coarse_res + level - 1;
    for (auto& [cell, summary] : lower) {
      const hex::CellIndex parent = hex::CellToParent(cell, upper_res);
      // The lower-level summary must stay intact (it may be emitted by
      // the cut), so the parent gets a copy.
      CellSummary copy = summary;
      auto [it, inserted] = upper.try_emplace(parent);
      if (inserted) {
        it->second = std::move(copy);
      } else {
        it->second.Merge(std::move(copy));
      }
      kids[parent].push_back(cell);
    }
  }

  // Top-down cut: keep a cell when it is sparse or already finest;
  // otherwise descend into its children.
  std::unordered_map<hex::CellIndex, CellSummary> result;
  std::vector<std::pair<int, hex::CellIndex>> stack;
  for (const auto& [cell, summary] : levels[0]) {
    stack.push_back({0, cell});
  }
  while (!stack.empty()) {
    const auto [level, cell] = stack.back();
    stack.pop_back();
    auto& level_map = levels[static_cast<size_t>(level)];
    const auto it = level_map.find(cell);
    if (it == level_map.end()) continue;
    const bool can_split = level + 1 < num_levels;
    if (can_split && it->second.record_count() >= dense_threshold) {
      for (const hex::CellIndex child :
           children[static_cast<size_t>(level)][cell]) {
        stack.push_back({level + 1, child});
      }
    } else {
      result.emplace(cell, std::move(it->second));
    }
  }
  return AdaptiveInventory(coarse_res, fine_res, std::move(result));
}

const CellSummary* AdaptiveInventory::Lookup(const geo::LatLng& position,
                                             int* resolution) const {
  // Probe coarse to fine along the point's own ancestor chain.
  for (int res = coarse_res_; res <= fine_res_; ++res) {
    const hex::CellIndex cell = hex::LatLngToCell(position, res);
    const auto it = cells_.find(cell);
    if (it != cells_.end()) {
      if (resolution != nullptr) *resolution = res;
      return &it->second;
    }
  }
  // Containment is approximate near boundaries: fall back to the finest
  // level's immediate neighbours.
  const hex::CellIndex fine_cell = hex::LatLngToCell(position, fine_res_);
  for (const hex::CellIndex neighbor : hex::Neighbors(fine_cell)) {
    const auto it = cells_.find(neighbor);
    if (it != cells_.end()) {
      if (resolution != nullptr) *resolution = fine_res_;
      return &it->second;
    }
  }
  return nullptr;
}

AdaptiveStats AdaptiveInventory::Stats(uint64_t fine_cells) const {
  AdaptiveStats stats;
  stats.cells = cells_.size();
  for (const auto& [cell, summary] : cells_) {
    stats.records += summary.record_count();
    ++stats.cells_per_resolution[hex::CellResolution(cell)];
  }
  stats.cell_reduction =
      fine_cells == 0
          ? 0.0
          : 1.0 - static_cast<double>(stats.cells) /
                      static_cast<double>(fine_cells);
  return stats;
}

}  // namespace pol::core
