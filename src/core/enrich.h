#ifndef POL_CORE_ENRICH_H_
#define POL_CORE_ENRICH_H_

#include <unordered_map>
#include <vector>

#include "ais/types.h"
#include "core/records.h"
#include "flow/dataset.h"

// Enrichment (paper section 3.3.1, second half): joins positional
// records with the static vessel registry to annotate each record with
// its market segment, and applies the commercial-fleet filter that cuts
// the dataset by an order of magnitude (Table 1: 600 GB -> 60 GB).

namespace pol::core {

// Stats ACCUMULATE across Enrich calls (the stage graph enriches chunk
// by chunk); pass a fresh struct for single-call totals.
struct EnrichmentStats {
  uint64_t input = 0;
  uint64_t unknown_vessel = 0;
  uint64_t non_commercial = 0;
  uint64_t kept = 0;
};

class Enricher {
 public:
  explicit Enricher(const std::vector<ais::VesselInfo>& registry);

  // Annotates records with vessel segments. When `commercial_only`,
  // records of unknown vessels and of vessels outside the commercial
  // fleet (segment, tonnage, transceiver class; see IsCommercialFleet)
  // are dropped.
  flow::Dataset<PipelineRecord> Enrich(
      const flow::Dataset<PipelineRecord>& records, bool commercial_only,
      EnrichmentStats* stats) const;

  const ais::VesselInfo* Find(ais::Mmsi mmsi) const;

 private:
  std::unordered_map<ais::Mmsi, ais::VesselInfo> registry_;
};

}  // namespace pol::core

#endif  // POL_CORE_ENRICH_H_
