#ifndef POL_CORE_SERVING_TELEMETRY_H_
#define POL_CORE_SERVING_TELEMETRY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/querylog.h"
#include "obs/slo.h"
#include "obs/window.h"

// Query-level serving telemetry (DESIGN.md §3.8): the windowed state
// the ServingGuard records every guarded call into, and the evaluation
// half the telemetry exporter ticks.
//
//  - Per-class latency WindowedHistograms and ok/error/shed
//    WindowedRates answer "what are p50/p95/p99 and QPS *right now*"
//    (trailing window), where the cumulative Registry histograms answer
//    "since process start".
//  - A QueryLog ring keeps the wide event of every admitted query —
//    slow and failed queries preferentially — joinable to trace spans
//    on the query id.
//  - An SloTracker evaluates availability and per-class p99 latency
//    objectives over fast/slow windows and publishes `serving.slo.*`
//    burn-rate gauges (run_report.cc folds them into the
//    "serving_slo" report block).
//
// Threading: BeginQuery / RecordQuery / RecordRejected are safe from
// any number of query threads (windowed recording is lock-free; the
// query log takes its own short lock off the measured scan path).
// UpdateWindowGauges / EvaluateSlos follow obs::SloTracker's contract:
// one evaluator at a time — the exporter thread, or a test.
//
// Reconciliation invariant (the chaos soak asserts it): every admitted
// query is recorded exactly once, so
//   serving.admitted == query_log().totals().ok + totals().errors
// for a guard whose telemetry was enabled from construction.

namespace pol::core {

// Admission class of one guarded call. Interactive: point lookups and
// corridor queries a user is waiting on. Batch: whole-grouping-set
// sweeps (LaneAnalyzer-style analytics) that must not crowd them out.
enum class QueryClass { kInteractive = 0, kBatch = 1 };

inline constexpr size_t kNumQueryClasses = 2;

// "interactive" / "batch" — static storage, usable directly as the
// query-log `query_class` field.
std::string_view QueryClassName(QueryClass cls);

struct ServingTelemetryOptions {
  // Master switch; obs::kEnabled (POL_OBS) still gates everything.
  bool enabled = true;
  // Window geometry shared by the latency histograms and the rates.
  double window_seconds = 1.0;
  size_t window_count = 64;
  // Trailing spans for SLO burn-rate evaluation, in windows: the fast
  // window trips quickly on a storm, the slow window keeps a blip from
  // paging. Both must be <= window_count.
  size_t slo_fast_windows = 5;
  size_t slo_slow_windows = 60;
  // Trailing span for the instantaneous QPS / rate / quantile gauges.
  size_t gauge_windows = 5;
  // Objectives. Availability counts admitted-or-rejected outcomes;
  // latency objectives are per-class p99 bounds on scan time.
  double availability_objective = 0.999;
  double interactive_p99_seconds = 0.050;
  double batch_p99_seconds = 2.0;
  // Burn-rate threshold (1.0 = burning exactly at budget-exhaustion
  // pace) that both windows must meet before an SLO reports burning.
  double burn_threshold = 1.0;
  obs::QueryLogOptions query_log;
};

class ServingTelemetry {
 public:
  explicit ServingTelemetry(
      ServingTelemetryOptions options = ServingTelemetryOptions());

  ServingTelemetry(const ServingTelemetry&) = delete;
  ServingTelemetry& operator=(const ServingTelemetry&) = delete;

  // options.enabled && obs::kEnabled. When false every Record* below is
  // a no-op and BeginQuery returns 0.
  bool enabled() const { return enabled_; }

  // Issues the query id an admitted query logs and traces under.
  uint64_t BeginQuery();

  // One admitted query's outcome. `op` and the strings reachable from
  // `status` must be static-storage (see obs/querylog.h); the guard
  // passes operation-name literals. Feeds the latency window, the
  // ok/error rates, and the query log. The At variant takes the
  // caller's clock read (the guard already timed the scan) so the hot
  // path pays no extra one.
  void RecordQuery(uint64_t id, QueryClass cls, std::string_view op,
                   const Status& status, double queue_wait_seconds,
                   double scan_seconds, double deadline_remaining_seconds,
                   uint64_t snapshot_id, uint64_t summaries_visited);
  void RecordQueryAt(double now_seconds, uint64_t id, QueryClass cls,
                     std::string_view op, const Status& status,
                     double queue_wait_seconds, double scan_seconds,
                     double deadline_remaining_seconds, uint64_t snapshot_id,
                     uint64_t summaries_visited);

  // A query rejected before admission (shed, queue-expired deadline,
  // ...). Feeds the error rate — and the shed rate for
  // kResourceExhausted — but writes no query-log row: log totals
  // reconcile against serving.admitted, not attempts.
  void RecordRejected(QueryClass cls, std::string_view op,
                      const Status& status);

  // Publishes the trailing-window gauges (serving.query.* QPS, error /
  // shed fractions, per-class p50/p95/p99, serving.querylog.* totals).
  // Evaluator thread only.
  void UpdateWindowGauges();
  void UpdateWindowGaugesAt(double now_seconds);

  // Evaluates every SLO and publishes the serving.slo.* gauge set.
  // Evaluator thread only.
  std::vector<obs::SloStatus> EvaluateSlos();
  std::vector<obs::SloStatus> EvaluateSlosAt(double now_seconds);

  // --- Introspection (tests, soak assertions, polinv watch). ---
  const obs::QueryLog& query_log() const { return query_log_; }
  obs::QueryLog* mutable_query_log() { return &query_log_; }
  const obs::WindowedHistogram& latency(QueryClass cls) const {
    return cls == QueryClass::kInteractive ? interactive_latency_
                                           : batch_latency_;
  }
  const obs::WindowedRate& ok_rate() const { return ok_rate_; }
  const obs::WindowedRate& error_rate() const { return error_rate_; }
  const obs::WindowedRate& shed_rate() const { return shed_rate_; }
  const ServingTelemetryOptions& options() const { return options_; }

 private:
  const ServingTelemetryOptions options_;
  const bool enabled_;

  // Named members (not an array) because WindowedHistogram is
  // noncopyable and each needs the configured window geometry.
  obs::WindowedHistogram interactive_latency_;
  obs::WindowedHistogram batch_latency_;
  obs::WindowedRate ok_rate_;
  obs::WindowedRate error_rate_;
  obs::WindowedRate shed_rate_;
  obs::QueryLog query_log_;
  obs::SloTracker slos_;

  // Gauge handles, resolved once when enabled (all null otherwise).
  obs::Gauge* qps_gauge_ = nullptr;
  obs::Gauge* error_rate_gauge_ = nullptr;
  obs::Gauge* shed_rate_gauge_ = nullptr;
  obs::Gauge* quantile_gauges_[kNumQueryClasses][3] = {};
  obs::Gauge* querylog_events_gauge_ = nullptr;
  obs::Gauge* querylog_ok_gauge_ = nullptr;
  obs::Gauge* querylog_errors_gauge_ = nullptr;
  obs::Gauge* querylog_slow_gauge_ = nullptr;
};

}  // namespace pol::core

#endif  // POL_CORE_SERVING_TELEMETRY_H_
