#ifndef POL_CORE_RUN_REPORT_H_
#define POL_CORE_RUN_REPORT_H_

#include <string>

#include "common/status.h"
#include "core/pipeline.h"
#include "obs/json.h"

// The machine-readable run report: one JSON document per RunPipeline
// call, assembled from PipelineResult (so it exists under POL_OBS=OFF
// too) plus a snapshot of the metrics registry. Schema
// "pol.run_report/1" (see DESIGN.md §3.4):
//
//   {
//     "schema": "pol.run_report/1",
//     "status": {"ok", "code", "message"},
//     "wall_seconds": <run wall clock>,
//     "config": {...},           // The knobs that shaped the run.
//     "coverage": {...},         // Fold/quarantine/retry counts.
//     "aggregated_records": N,
//     "stages": [{name, chunks, records_in, records_out, dropped,
//                 peak_partition, wall_seconds, failures,
//                 failures_by_reason: {code: count}}, ...],
//     "quarantined": [{chunk_index, records, attempts, code, message}],
//     "checkpoint": {enabled, directory, interval_chunks, resumed,
//                    resume_cursor, written, failures},
//     "serving": {degraded, breaker_state,      // Guard health (all
//                 snapshot_age_refreshes},      // healthy defaults when
//                                               // no guard ran).
//     "metrics": {counters, gauges, histograms}  // Registry snapshot.
//   }
//
// `polinv report <file>` pretty-prints a report; tests parse it back
// with obs::Json::Parse and check it against the PipelineResult.

namespace pol::core {

// Builds the report document. Pure: reads only its arguments and the
// global metrics registry.
obs::Json BuildRunReport(const PipelineConfig& config,
                         const PipelineResult& result);

// Builds and writes the report to `path` (atomic, pretty-printed).
Status WriteRunReport(const std::string& path, const PipelineConfig& config,
                      const PipelineResult& result);

}  // namespace pol::core

#endif  // POL_CORE_RUN_REPORT_H_
