#ifndef POL_CORE_SERVING_INVENTORY_H_
#define POL_CORE_SERVING_INVENTORY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>
#include <version>

#include "common/mutex.h"
#include "common/thread_annotations.h"

#include "core/inventory.h"
#include "core/inventory_query.h"
#include "core/inventory_snapshot.h"

// The hot-swap serving store: an atomic holder of the current immutable
// InventorySnapshot plus the build-side Inventory it was sealed from.
// Readers Acquire() the active snapshot (one atomic shared_ptr load)
// and query it lock-free; Refresh() folds a new batch into the build
// side, seals a fresh snapshot in the background, and publishes it with
// Swap() — concurrent readers keep querying the old snapshot, which
// stays alive until its last shared_ptr drops. This is the paper's
// daily incremental fold turned into a zero-downtime refresh.
//
// ServingInventory also implements InventoryQuery directly: each call
// acquires the active snapshot and answers from it, so single-shot
// callers need no explicit Acquire. Pointers returned by the summary
// lookups stay valid until the calling thread's next ServingInventory
// query (the answering snapshot is anchored in a thread-local).
// Multi-call consumers that need one consistent view across calls
// (e.g. a LaneAnalyzer sweep) should Acquire() once and query the
// snapshot.
//
// Metrics (obs::Registry, surfaced in the pol.run_report/1 metrics
// block): serving.seal_seconds (histogram, recorded by Seal),
// serving.seals / serving.swaps / serving.reader_acquisitions
// (counters), serving.active_snapshot_summaries (gauge).

// Snapshot-holder backend selection. The lock-free path needs library
// support for std::atomic<std::shared_ptr>; ThreadSanitizer builds use
// the mutex fallback instead, because TSan cannot see through
// libstdc++'s _Sp_atomic spinlock (the lock bit lives inside the
// control-block word) and reports its internal pointer swap as a race.
#if defined(__SANITIZE_THREAD__)
#define POL_SERVING_SNAPSHOT_MUTEX 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define POL_SERVING_SNAPSHOT_MUTEX 1
#endif
#endif
#if !defined(POL_SERVING_SNAPSHOT_MUTEX) && \
    defined(__cpp_lib_atomic_shared_ptr)
#define POL_SERVING_SNAPSHOT_ATOMIC 1
#endif

namespace pol::store {
class SnapshotStore;
}  // namespace pol::store

namespace pol::core {

class ServingInventory final : public InventoryQuery {
 public:
  // Takes ownership of the build side and publishes its first snapshot.
  explicit ServingInventory(Inventory base);

  // Takes ownership of the build side and publishes `initial` as-is —
  // no seal. This is the zero-copy cold-start path: `initial` is
  // typically a mapped snapshot (core/snapshot_codec.h) served straight
  // off a store file. Resolutions must agree (POL_CHECKed).
  ServingInventory(Inventory base,
                   std::shared_ptr<const InventorySnapshot> initial);

  // Cold start from a snapshot store: maps the newest readable
  // generation (falling back past corrupt ones) and serves it
  // immediately over an *empty* build side — queries are answered in
  // mmap time, no LoadFromFile, no Seal. Note a later Refresh seals
  // from the build side, which starts empty here: processes that also
  // restore build-side state should use the second overload, which
  // serves the mapped snapshot while keeping `base` as the refresh
  // foundation (resolutions must match).
  static Result<std::unique_ptr<ServingInventory>> OpenLatest(
      const store::SnapshotStore& store, uint64_t* generation = nullptr);
  static Result<std::unique_ptr<ServingInventory>> OpenLatest(
      const store::SnapshotStore& store, Inventory base,
      uint64_t* generation = nullptr);

  // Publish-on-refresh: after this, every successful Refresh writes the
  // freshly sealed snapshot to `durable` (InventorySnapshot::WriteTo)
  // *before* swapping it in, so readers never see a snapshot that is
  // not durable. A publish failure fails the Refresh with the build
  // side holding the merged delta and the old snapshot still serving —
  // the same retryable contract as the serving.swap fail point, so the
  // refresh circuit breaker (core/serving_guard.h) trips on a
  // persistently failing store. Pass nullptr to detach. The store must
  // outlive this object; publishes are serialized by the refresh lock.
  void AttachDurableStore(store::SnapshotStore* durable);

  // The active snapshot; never null. Holding the returned shared_ptr
  // keeps that snapshot (and every pointer queried from it) alive
  // across any number of concurrent Swap()s.
  std::shared_ptr<const InventorySnapshot> Acquire() const;

  // Folds `delta` into the build side, seals, and publishes. Readers
  // see either the old or the new snapshot, never a partial merge.
  // Serialized against concurrent Refresh() calls; fails on resolution
  // mismatch (the build side is left unchanged on failure, and the
  // active snapshot is never republished on any failure path).
  //
  // Fail points (faults preset): "serving.merge" fires before the fold
  // (build side untouched — a poisoned delta), "serving.seal" after the
  // fold but before sealing, "serving.swap" after sealing but before
  // publishing. The latter two model a refresh that died mid-flight:
  // the build side holds the merged delta, the last good snapshot keeps
  // serving, and the next successful Refresh publishes everything. The
  // refresh circuit breaker (core/serving_guard.h) trips on consecutive
  // failures from any of the three.
  Status Refresh(Inventory&& delta);

  // Publishes an externally built snapshot (e.g. sealed from a
  // full rebuild). Must not be null.
  void Swap(std::shared_ptr<const InventorySnapshot> next);

  // Snapshots published so far, the initial one included.
  uint64_t swap_count() const {
    return swap_count_.load(std::memory_order_relaxed);
  }

  // Seal sequence of the active snapshot (the process-wide ordinal
  // Inventory::Seal stamped into InventorySnapshotStats) — the
  // snapshot id query-log rows and the serving.snapshot.active_id
  // gauge carry. 0 only before the constructor's first Swap.
  uint64_t active_seal_sequence() const {
    return active_seal_sequence_.load(std::memory_order_relaxed);
  }

  // Seconds since the active snapshot was published (obs clock); the
  // staleness the serving.snapshot.age_ms gauge tracks.
  double active_snapshot_age_seconds() const;

  // Canonical bytes of the build side (Inventory::SerializeTo under the
  // refresh lock): the persistence hook for checkpointing the serving
  // store, and the byte-identity witness the refresh-failure guarantees
  // are tested against.
  void SerializeBuildSide(std::string* out) const;

  // --- InventoryQuery over the active snapshot. ---
  int resolution() const override { return Acquire()->resolution(); }
  size_t size() const override { return Acquire()->size(); }
  const CellSummary* Cell(hex::CellIndex cell) const override;
  const CellSummary* CellType(hex::CellIndex cell,
                              ais::MarketSegment segment) const override;
  const CellSummary* CellRouteType(hex::CellIndex cell, sim::PortId origin,
                                   sim::PortId destination,
                                   ais::MarketSegment segment) const override;
  std::vector<hex::CellIndex> CellsForRoute(
      sim::PortId origin, sim::PortId destination,
      ais::MarketSegment segment) const override;
  std::vector<ais::MarketSegment> SegmentsAt(
      hex::CellIndex cell) const override;
  void VisitGroupingSet(GroupingSet set,
                        const SummaryVisitor& visitor) const override;
  bool VisitGroupingSetWhile(GroupingSet set,
                             const CancellableVisitor& visitor) const override;
  uint64_t DistinctCells() const override;

 private:
  mutable Mutex refresh_mutex_;
  Inventory base_ POL_GUARDED_BY(refresh_mutex_);
  // Durable publish target of Refresh; nullptr = in-memory only.
  store::SnapshotStore* durable_store_ POL_GUARDED_BY(refresh_mutex_) =
      nullptr;
  std::atomic<uint64_t> swap_count_{0};
  std::atomic<uint64_t> active_seal_sequence_{0};
  std::atomic<uint64_t> published_at_micros_{0};
#if defined(POL_SERVING_SNAPSHOT_ATOMIC)
  std::atomic<std::shared_ptr<const InventorySnapshot>> snapshot_;
#else
  mutable Mutex snapshot_mutex_;
  std::shared_ptr<const InventorySnapshot> snapshot_
      POL_GUARDED_BY(snapshot_mutex_);
#endif
};

}  // namespace pol::core

#endif  // POL_CORE_SERVING_INVENTORY_H_
