#include "core/port_calls.h"

#include <algorithm>
#include <vector>

#include "common/mutex.h"

namespace pol::core {
namespace {

// True when the record is a stationary fence hit (same condition the
// trip extractor uses for stops).
bool IsStop(const PipelineRecord& record, const Geofencer& geofencer,
            const PortCallConfig& config, sim::PortId* port) {
  *port = geofencer.PortAt({record.lat_deg, record.lng_deg});
  if (*port == sim::kNoPort) return false;
  if (record.nav_status == ais::NavStatus::kMoored ||
      record.nav_status == ais::NavStatus::kAtAnchor ||
      record.nav_status == ais::NavStatus::kAground) {
    return true;
  }
  return record.sog_knots < config.trip.stop_speed_knots;
}

}  // namespace

std::vector<PortCall> ExtractPortCalls(
    const flow::Dataset<PipelineRecord>& records, const Geofencer& geofencer,
    const PortCallConfig& config) {
  Mutex mutex;
  std::vector<PortCall> calls;

  records.pool()->ParallelFor(
      static_cast<size_t>(records.num_partitions()), [&](size_t p) {
        std::vector<PortCall> local;
        PortCall open;  // open.port == kNoPort means no call in progress.
        auto close_call = [&local, &config](PortCall* call) {
          if (call->port != sim::kNoPort &&
              call->DurationSeconds() >= config.min_duration_s) {
            local.push_back(*call);
          }
          call->port = sim::kNoPort;
        };
        for (const PipelineRecord& record :
             records.partition(static_cast<int>(p))) {
          if (open.port != sim::kNoPort && record.mmsi != open.mmsi) {
            close_call(&open);
          }
          sim::PortId port = sim::kNoPort;
          const bool stop = IsStop(record, geofencer, config, &port);
          if (!stop) {
            // A call stays open across non-stop records until the merge
            // gap expires (a vessel shifting berth keeps its call).
            if (open.port != sim::kNoPort &&
                record.timestamp - open.departure > config.merge_gap_s) {
              close_call(&open);
            }
            continue;
          }
          if (open.port == port && open.mmsi == record.mmsi &&
              record.timestamp - open.departure <= config.merge_gap_s) {
            open.departure = record.timestamp;
            ++open.records;
            continue;
          }
          close_call(&open);
          open.mmsi = record.mmsi;
          open.port = port;
          open.arrival = record.timestamp;
          open.departure = record.timestamp;
          open.records = 1;
        }
        close_call(&open);
        const MutexLock lock(mutex);
        calls.insert(calls.end(), local.begin(), local.end());
      });

  std::sort(calls.begin(), calls.end(),
            [](const PortCall& a, const PortCall& b) {
              if (a.mmsi != b.mmsi) return a.mmsi < b.mmsi;
              return a.arrival < b.arrival;
            });
  return calls;
}

}  // namespace pol::core
