#include "core/enrich.h"

#include <atomic>
#include <vector>

namespace pol::core {

Enricher::Enricher(const std::vector<ais::VesselInfo>& registry) {
  registry_.reserve(registry.size());
  for (const ais::VesselInfo& vessel : registry) {
    registry_.emplace(vessel.mmsi, vessel);
  }
}

const ais::VesselInfo* Enricher::Find(ais::Mmsi mmsi) const {
  const auto it = registry_.find(mmsi);
  return it == registry_.end() ? nullptr : &it->second;
}

flow::Dataset<PipelineRecord> Enricher::Enrich(
    const flow::Dataset<PipelineRecord>& records, bool commercial_only,
    EnrichmentStats* stats) const {
  std::atomic<uint64_t> unknown{0};
  std::atomic<uint64_t> non_commercial{0};
  flow::Dataset<PipelineRecord> enriched = records.MapPartitions(
      [this, commercial_only, &unknown,
       &non_commercial](const std::vector<PipelineRecord>& part) {
        std::vector<PipelineRecord> out;
        out.reserve(part.size());
        ais::Mmsi current = 0;
        const ais::VesselInfo* vessel = nullptr;
        for (const PipelineRecord& record : part) {
          if (record.mmsi != current) {
            current = record.mmsi;
            vessel = Find(current);
          }
          if (vessel == nullptr) {
            unknown.fetch_add(1, std::memory_order_relaxed);
            if (commercial_only) continue;
            out.push_back(record);
            continue;
          }
          if (commercial_only && !ais::IsCommercialFleet(*vessel)) {
            non_commercial.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          PipelineRecord annotated = record;
          annotated.segment = vessel->segment;
          out.push_back(annotated);
        }
        return out;
      });
  if (stats != nullptr) {
    stats->input += records.Count();
    stats->unknown_vessel += unknown.load();
    stats->non_commercial += non_commercial.load();
    stats->kept += enriched.Count();
  }
  return enriched;
}

}  // namespace pol::core
