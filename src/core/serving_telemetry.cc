#include "core/serving_telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/serving_metric_names.h"
#include "obs/clock.h"

namespace pol::core {
namespace {

constexpr double kMaxGaugeValue = 9e15;  // Saturation before int64 cast.

int64_t SaturatingRound(double value) {
  if (!(value >= 0.0)) value = 0.0;
  if (value > kMaxGaugeValue) value = kMaxGaugeValue;
  return static_cast<int64_t>(std::llround(value));
}

// Fraction / rate -> fixed-point x1000 (gauges are integers).
int64_t Milli(double value) { return SaturatingRound(value * 1000.0); }

// Seconds -> microseconds for the quantile gauges.
int64_t Micros(double seconds) { return SaturatingRound(seconds * 1e6); }

ServingTelemetryOptions Sanitize(ServingTelemetryOptions options) {
  if (!(options.window_seconds > 0.0)) options.window_seconds = 1.0;
  options.window_count = std::max<size_t>(options.window_count, 2);
  const auto clamp_windows = [&](size_t windows) {
    return std::min(std::max<size_t>(windows, 1), options.window_count);
  };
  options.slo_fast_windows = clamp_windows(options.slo_fast_windows);
  options.slo_slow_windows = clamp_windows(options.slo_slow_windows);
  options.gauge_windows = clamp_windows(options.gauge_windows);
  return options;
}

}  // namespace

std::string_view QueryClassName(QueryClass cls) {
  switch (cls) {
    case QueryClass::kInteractive:
      return "interactive";
    case QueryClass::kBatch:
      return "batch";
  }
  return "unknown";
}

ServingTelemetry::ServingTelemetry(ServingTelemetryOptions options)
    : options_(Sanitize(std::move(options))),
      enabled_(options_.enabled && obs::kEnabled),
      interactive_latency_(options_.window_seconds, options_.window_count),
      batch_latency_(options_.window_seconds, options_.window_count),
      ok_rate_(options_.window_seconds, options_.window_count),
      error_rate_(options_.window_seconds, options_.window_count),
      shed_rate_(options_.window_seconds, options_.window_count),
      query_log_(options_.query_log),
      slos_(std::string(kServingSloGaugePrefix)) {
  if (!enabled_) return;

  auto& registry = obs::Registry::Global();
  qps_gauge_ = registry.gauge(kMetricServingQueryQpsMilli);
  error_rate_gauge_ = registry.gauge(kMetricServingQueryErrorRateMilli);
  shed_rate_gauge_ = registry.gauge(kMetricServingQueryShedRateMilli);
  const size_t interactive = static_cast<size_t>(QueryClass::kInteractive);
  const size_t batch = static_cast<size_t>(QueryClass::kBatch);
  quantile_gauges_[interactive][0] =
      registry.gauge(kMetricServingInteractiveP50Us);
  quantile_gauges_[interactive][1] =
      registry.gauge(kMetricServingInteractiveP95Us);
  quantile_gauges_[interactive][2] =
      registry.gauge(kMetricServingInteractiveP99Us);
  quantile_gauges_[batch][0] = registry.gauge(kMetricServingBatchP50Us);
  quantile_gauges_[batch][1] = registry.gauge(kMetricServingBatchP95Us);
  quantile_gauges_[batch][2] = registry.gauge(kMetricServingBatchP99Us);
  querylog_events_gauge_ = registry.gauge(kMetricServingQuerylogEvents);
  querylog_ok_gauge_ = registry.gauge(kMetricServingQuerylogOk);
  querylog_errors_gauge_ = registry.gauge(kMetricServingQuerylogErrors);
  querylog_slow_gauge_ = registry.gauge(kMetricServingQuerylogSlow);

  // The three stock SLOs. Availability spans every outcome (rejected
  // calls feed error_rate_), so an admission storm burns it even though
  // shed queries never reach a latency histogram.
  obs::SloSpec availability;
  availability.name = "availability";
  availability.kind = obs::SloKind::kAvailability;
  availability.objective = options_.availability_objective;
  availability.fast_windows = options_.slo_fast_windows;
  availability.slow_windows = options_.slo_slow_windows;
  availability.burn_threshold = options_.burn_threshold;
  obs::SloSource availability_source;
  availability_source.good = &ok_rate_;
  availability_source.bad = &error_rate_;
  availability_source.latency = nullptr;
  slos_.Add(std::move(availability), availability_source);

  const auto add_latency_slo = [&](std::string name, double threshold_seconds,
                                   const obs::WindowedHistogram* latency) {
    obs::SloSpec spec;
    spec.name = std::move(name);
    spec.kind = obs::SloKind::kLatencyQuantile;
    spec.objective = 0.99;
    spec.threshold_seconds = threshold_seconds;
    spec.fast_windows = options_.slo_fast_windows;
    spec.slow_windows = options_.slo_slow_windows;
    spec.burn_threshold = options_.burn_threshold;
    obs::SloSource source;
    source.good = nullptr;
    source.bad = nullptr;
    source.latency = latency;
    slos_.Add(std::move(spec), source);
  };
  add_latency_slo("interactive_p99", options_.interactive_p99_seconds,
                  &interactive_latency_);
  add_latency_slo("batch_p99", options_.batch_p99_seconds, &batch_latency_);

  // Warm the fast clock's one-time TSC calibration here so the first
  // guarded query never pays it.
  static_cast<void>(obs::NowSecondsFast());
}

uint64_t ServingTelemetry::BeginQuery() {
  if (!enabled_) return 0;
  return query_log_.NextId();
}

void ServingTelemetry::RecordQuery(uint64_t id, QueryClass cls,
                                   std::string_view op, const Status& status,
                                   double queue_wait_seconds,
                                   double scan_seconds,
                                   double deadline_remaining_seconds,
                                   uint64_t snapshot_id,
                                   uint64_t summaries_visited) {
  if (!enabled_) return;
  RecordQueryAt(obs::NowSecondsFast(), id, cls, op, status, queue_wait_seconds,
                scan_seconds, deadline_remaining_seconds, snapshot_id,
                summaries_visited);
}

void ServingTelemetry::RecordQueryAt(
    double now, uint64_t id, QueryClass cls, std::string_view op,
    const Status& status, double queue_wait_seconds, double scan_seconds,
    double deadline_remaining_seconds, uint64_t snapshot_id,
    uint64_t summaries_visited) {
  if (!enabled_) return;
  obs::WindowedHistogram& latency = cls == QueryClass::kInteractive
                                        ? interactive_latency_
                                        : batch_latency_;
  latency.RecordAt(now, scan_seconds);
  if (status.ok()) {
    ok_rate_.IncrementAt(now);
  } else {
    error_rate_.IncrementAt(now);
  }

  obs::QueryEvent event;
  event.id = id;
  event.query_class = QueryClassName(cls);
  event.op = op;
  event.status = StatusCodeName(status.code());
  event.ok = status.ok();
  event.queue_wait_seconds = queue_wait_seconds;
  event.scan_seconds = scan_seconds;
  event.deadline_remaining_seconds = deadline_remaining_seconds;
  event.snapshot_id = snapshot_id;
  event.summaries_visited = summaries_visited;
  query_log_.Record(event);
}

void ServingTelemetry::RecordRejected(QueryClass cls, std::string_view op,
                                      const Status& status) {
  static_cast<void>(cls);  // Rejections are counted store-wide today;
  static_cast<void>(op);   // the params keep the call sites honest.
  if (!enabled_) return;
  const double now = obs::NowSecondsFast();
  error_rate_.IncrementAt(now);
  if (status.code() == StatusCode::kResourceExhausted) {
    shed_rate_.IncrementAt(now);
  }
}

void ServingTelemetry::UpdateWindowGauges() {
  UpdateWindowGaugesAt(obs::NowSeconds());
}

void ServingTelemetry::UpdateWindowGaugesAt(double now_seconds) {
  if (!enabled_) return;
  const size_t windows = options_.gauge_windows;
  const double ok_per_second = ok_rate_.RatePerSecondAt(now_seconds, windows);
  const double errors_per_second =
      error_rate_.RatePerSecondAt(now_seconds, windows);
  qps_gauge_->Set(Milli(ok_per_second + errors_per_second));

  const uint64_t ok = ok_rate_.TotalAt(now_seconds, windows);
  const uint64_t errors = error_rate_.TotalAt(now_seconds, windows);
  const uint64_t shed = shed_rate_.TotalAt(now_seconds, windows);
  const double total = static_cast<double>(ok + errors);
  error_rate_gauge_->Set(
      total > 0.0 ? Milli(static_cast<double>(errors) / total) : 0);
  shed_rate_gauge_->Set(
      total > 0.0 ? Milli(static_cast<double>(shed) / total) : 0);

  static constexpr double kQuantiles[3] = {0.50, 0.95, 0.99};
  for (size_t cls = 0; cls < kNumQueryClasses; ++cls) {
    const obs::WindowedHistogram& latency =
        cls == static_cast<size_t>(QueryClass::kInteractive)
            ? interactive_latency_
            : batch_latency_;
    for (size_t q = 0; q < 3; ++q) {
      quantile_gauges_[cls][q]->Set(
          Micros(latency.QuantileEstimateAt(now_seconds, kQuantiles[q],
                                            windows)));
    }
  }

  const obs::QueryLog::Totals totals = query_log_.totals();
  querylog_events_gauge_->Set(SaturatingRound(
      static_cast<double>(totals.events)));
  querylog_ok_gauge_->Set(SaturatingRound(static_cast<double>(totals.ok)));
  querylog_errors_gauge_->Set(
      SaturatingRound(static_cast<double>(totals.errors)));
  querylog_slow_gauge_->Set(SaturatingRound(static_cast<double>(totals.slow)));
}

std::vector<obs::SloStatus> ServingTelemetry::EvaluateSlos() {
  return EvaluateSlosAt(obs::NowSeconds());
}

std::vector<obs::SloStatus> ServingTelemetry::EvaluateSlosAt(
    double now_seconds) {
  if (!enabled_) return {};
  return slos_.EvaluateAt(now_seconds);
}

}  // namespace pol::core
