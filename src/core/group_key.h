#ifndef POL_CORE_GROUP_KEY_H_
#define POL_CORE_GROUP_KEY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "ais/types.h"
#include "hexgrid/cell_index.h"
#include "sim/ports.h"

// The grouping sets of Table 2. Every statistical summary in the
// inventory is keyed by a GroupKey: the cell plus the dimensions the
// summary is broken down by. Dimensions not used by a grouping set hold
// the kAny* sentinels, so one keyed store holds all three sets.

namespace pol::core {

// Which grouping set a key belongs to (Table 2 rows).
enum class GroupingSet : uint8_t {
  kCell = 0,                 // (H3-index)
  kCellType = 1,             // (H3-index, vessel-type)
  kCellRouteType = 2,        // (H3-index, origin, destination, vessel-type)
};

inline constexpr int kNumGroupingSets = 3;

inline constexpr uint8_t kAnySegment = 0xff;
inline constexpr uint16_t kAnyPort = 0;

struct GroupKey {
  hex::CellIndex cell = hex::kInvalidCell;
  uint8_t grouping_set = 0;
  uint8_t segment = kAnySegment;
  uint16_t origin = kAnyPort;
  uint16_t destination = kAnyPort;

  bool operator==(const GroupKey& o) const {
    return cell == o.cell && grouping_set == o.grouping_set &&
           segment == o.segment && origin == o.origin &&
           destination == o.destination;
  }
};

// Key constructors for the three grouping sets.
GroupKey KeyCell(hex::CellIndex cell);
GroupKey KeyCellType(hex::CellIndex cell, ais::MarketSegment segment);
GroupKey KeyCellRouteType(hex::CellIndex cell, sim::PortId origin,
                          sim::PortId destination,
                          ais::MarketSegment segment);

// 16-byte canonical encoding (used by the serialized inventory format
// and as the hash input).
uint64_t GroupKeyDimsPacked(const GroupKey& key);

// Inverse of GroupKeyDimsPacked: reassembles the key from its cell and
// packed dimensions. The POLINV01 body and the POLSNAP1 key sections
// both store keys as (cell, dims) pairs in exactly this packing.
GroupKey GroupKeyFromPacked(uint64_t cell, uint64_t dims);

struct GroupKeyHash {
  size_t operator()(const GroupKey& key) const {
    // Mix the two 64-bit halves (splitmix-style finalizer).
    uint64_t h = key.cell * 0x9e3779b97f4a7c15ULL;
    h ^= GroupKeyDimsPacked(key) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    return static_cast<size_t>(h);
  }
};

std::string GroupKeyToString(const GroupKey& key);

}  // namespace pol::core

#endif  // POL_CORE_GROUP_KEY_H_
