#include "core/route_index.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace pol::core {

uint64_t RouteIndex::PackRouteKey(sim::PortId origin, sim::PortId destination,
                          ais::MarketSegment segment) {
  return (static_cast<uint64_t>(origin) << 32) |
         (static_cast<uint64_t>(destination) << 16) |
         static_cast<uint64_t>(segment);
}

void RouteIndex::Build(const SummaryMap& summaries) {
  Clear();
  std::vector<std::pair<uint64_t, hex::CellIndex>> entries;
  for (const auto& [key, summary] : summaries) {
    if (key.grouping_set !=
        static_cast<uint8_t>(GroupingSet::kCellRouteType)) {
      continue;
    }
    entries.emplace_back(
        PackRouteKey(key.origin, key.destination,
             static_cast<ais::MarketSegment>(key.segment)),
        key.cell);
  }
  std::sort(entries.begin(), entries.end());
  cells_.reserve(entries.size());
  for (const auto& [route, cell] : entries) {
    if (spans_.empty() || spans_.back().route != route) {
      spans_.push_back(Span{route, cells_.size(), cells_.size()});
    }
    cells_.push_back(cell);
    spans_.back().end = cells_.size();
  }
}

void RouteIndex::Clear() {
  spans_.clear();
  cells_.clear();
}

const RouteIndex::Span* RouteIndex::Find(uint64_t packed) const {
  const auto it = std::lower_bound(
      spans_.begin(), spans_.end(), packed,
      [](const Span& span, uint64_t route) { return span.route < route; });
  if (it == spans_.end() || it->route != packed) return nullptr;
  return &*it;
}

std::vector<hex::CellIndex> RouteIndex::Cells(
    sim::PortId origin, sim::PortId destination,
    ais::MarketSegment segment) const {
  const Span* span = Find(PackRouteKey(origin, destination, segment));
  if (span == nullptr) return {};
  return std::vector<hex::CellIndex>(cells_.begin() + static_cast<ptrdiff_t>(span->begin),
                                     cells_.begin() + static_cast<ptrdiff_t>(span->end));
}

std::vector<hex::CellIndex> RouteIndex::CellsWithReversedFallback(
    sim::PortId origin, sim::PortId destination,
    ais::MarketSegment segment) const {
  std::vector<hex::CellIndex> cells = Cells(origin, destination, segment);
  if (cells.empty()) cells = Cells(destination, origin, segment);
  return cells;
}

}  // namespace pol::core
