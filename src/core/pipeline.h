#ifndef POL_CORE_PIPELINE_H_
#define POL_CORE_PIPELINE_H_

#include <memory>
#include <vector>

#include "core/cleaning.h"
#include "core/enrich.h"
#include "core/inventory.h"
#include "core/trips.h"
#include "flow/threadpool.h"
#include "sim/ports.h"

// The end-to-end Patterns-of-Life pipeline (Figures 2 and 3 of the
// paper): cleaning -> enrichment -> trip extraction -> grid projection
// -> feature extraction -> global inventory.

namespace pol::core {

struct PipelineConfig {
  int partitions = 8;
  int threads = 0;  // 0 = hardware concurrency.
  double max_speed_knots = 50.0;
  bool commercial_only = true;
  int resolution = 6;
  int geofence_resolution = 6;
  ExtractorConfig extractor;  // resolution is overwritten from above.
  const sim::PortDatabase* ports = nullptr;  // Default: the world table.
};

struct PipelineResult {
  std::unique_ptr<Inventory> inventory;
  CleaningStats cleaning;
  EnrichmentStats enrichment;
  TripStats trips;
  uint64_t aggregated_records = 0;  // Records folded into the inventory.

  CompressionReport Compression() const {
    return inventory->Compression(aggregated_records);
  }
};

// Runs the whole pipeline over an AIS archive and a vessel registry.
PipelineResult RunPipeline(const std::vector<ais::PositionReport>& reports,
                           const std::vector<ais::VesselInfo>& registry,
                           const PipelineConfig& config);

}  // namespace pol::core

#endif  // POL_CORE_PIPELINE_H_
