#ifndef POL_CORE_PIPELINE_H_
#define POL_CORE_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/checkpoint.h"
#include "core/cleaning.h"
#include "core/enrich.h"
#include "core/inventory.h"
#include "core/trips.h"
#include "flow/stage.h"
#include "flow/stage_runner.h"
#include "flow/threadpool.h"
#include "sim/ports.h"

// The end-to-end Patterns-of-Life pipeline (Figures 2 and 3 of the
// paper): cleaning -> enrichment -> trips -> grid projection -> feature
// extraction -> global inventory.
//
// Execution is a chunked stage graph (flow::StageChain driven by a
// flow::StageRunner; see stages.h and inventory_builder.h): the archive
// is split into `chunks` vessel-coherent chunks, stages overlap across
// chunks on the shared thread pool, and the inventory is folded
// incrementally in ascending chunk order. Any chunk count yields a
// byte-identical serialized inventory (property-tested), so the chunk
// count is purely a peak-memory/overlap knob.
//
// Failure containment (see stage_runner.h and checkpoint.h): a chunk
// whose stage chain errors is retried `max_attempts` times and then
// quarantined — the run continues and PipelineResult::coverage reports
// exactly what was folded, quarantined, and dropped. With checkpointing
// configured, builder state is snapshotted every `interval_chunks`
// accounted chunks, and a rerun over the same input resumes from the
// newest valid snapshot instead of starting over.

namespace pol::core {

// Observability outputs of one RunPipeline call (see DESIGN.md §3.4).
// Both are off while the paths are empty; a failed write degrades to a
// warning log, never the run's status.
struct PipelineObsConfig {
  // When non-empty, a machine-readable run report (JSON, schema
  // "pol.run_report/1"; see core/run_report.h) is written here.
  std::string report_path;
  // When non-empty, trace recording is on for the run and a Chrome
  // trace-event file (chrome://tracing, Perfetto) is written here.
  std::string trace_path;
};

struct PipelineConfig {
  int partitions = 8;
  int threads = 0;  // 0 = hardware concurrency.
  // Vessel-coherent chunks the archive is split into. 1 = single-shot;
  // higher values bound per-stage intermediates to ~partitions/chunks
  // partitions at a time without changing the result.
  int chunks = 1;
  // Chunks allowed in flight at once (>= 1); 2 overlaps stage i on
  // chunk k+1 with stage i+1 on chunk k.
  int max_in_flight_chunks = 2;
  // Total stage-chain attempts per chunk before it is quarantined
  // (>= 1; 1 = no retry and no defensive input copy).
  int max_attempts = 1;
  // Exponential backoff base between chunk retries; 0 retries
  // immediately.
  double retry_backoff_seconds = 0.0;
  // Abort the run on the first exhausted chunk (or failed checkpoint
  // write) instead of quarantining and continuing. Leaves snapshots on
  // disk — the crash-simulation mode of the fault-injection suite.
  bool fail_fast = false;
  // Checkpoint/resume; disabled while `checkpoint.directory` is empty.
  CheckpointConfig checkpoint;
  double max_speed_knots = 50.0;
  bool commercial_only = true;
  int resolution = 6;
  int geofence_resolution = 6;
  ExtractorConfig extractor;  // resolution is overwritten from above.
  const sim::PortDatabase* ports = nullptr;  // Default: the world table.
  PipelineObsConfig obs;  // Run report / trace outputs.
};

// Coverage accounting for one RunPipeline call: what of the input made
// it into the inventory, and what the failure-containment layer did.
struct PipelineCoverage {
  size_t chunks_total = 0;
  size_t chunks_folded = 0;       // Includes chunks restored via resume.
  size_t chunks_quarantined = 0;  // Includes restored quarantine entries.
  uint64_t records_quarantined = 0;
  uint64_t retries = 0;  // Chain attempts beyond each chunk's first.
  bool resumed = false;  // True when a snapshot was restored.
  uint64_t resume_cursor = 0;        // Chunks already accounted at resume.
  uint64_t checkpoints_written = 0;  // Snapshots persisted this run.
  uint64_t checkpoint_failures = 0;  // Snapshot writes that failed.
};

struct PipelineResult {
  // OK unless the run aborted (fail_fast chunk failure, fatal
  // checkpoint write, or a resume/restore error). On abort the
  // inventory is still produced from the chunks folded so far.
  Status status;
  std::unique_ptr<Inventory> inventory;
  // End-to-end wall time of the RunPipeline call, set on every return
  // path (including aborted runs).
  double wall_seconds = 0.0;
  CleaningStats cleaning;
  EnrichmentStats enrichment;
  TripStats trips;
  uint64_t aggregated_records = 0;  // Records folded into the inventory.
  PipelineCoverage coverage;
  // Dead letters: one entry per quarantined chunk, ascending chunk
  // index, including entries restored from a snapshot.
  std::vector<flow::ChunkFailure> quarantined;
  // Per-stage observability, in stage order: cleaning, enrichment,
  // trips, projection, extraction. Each entry carries chunk count,
  // records in/out, drop count, peak partition size, summed wall time
  // and failure counts (see flow::StageMetrics; flow::StageMetricsTable
  // renders it).
  std::vector<flow::StageMetrics> stage_metrics;

  CompressionReport Compression() const {
    return inventory->Compression(aggregated_records);
  }
};

// Runs the whole pipeline over an AIS archive and a vessel registry —
// a thin wrapper assembling the stage graph from stages.h and running
// it over `config.chunks` chunks, with retry/quarantine/checkpoint
// handling per the config.
PipelineResult RunPipeline(const std::vector<ais::PositionReport>& reports,
                           const std::vector<ais::VesselInfo>& registry,
                           const PipelineConfig& config);

}  // namespace pol::core

#endif  // POL_CORE_PIPELINE_H_
