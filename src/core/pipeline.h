#ifndef POL_CORE_PIPELINE_H_
#define POL_CORE_PIPELINE_H_

#include <memory>
#include <vector>

#include "core/cleaning.h"
#include "core/enrich.h"
#include "core/inventory.h"
#include "core/trips.h"
#include "flow/stage.h"
#include "flow/threadpool.h"
#include "sim/ports.h"

// The end-to-end Patterns-of-Life pipeline (Figures 2 and 3 of the
// paper): cleaning -> enrichment -> trips -> grid projection -> feature
// extraction -> global inventory.
//
// Execution is a chunked stage graph (flow::StageChain driven by a
// flow::StageRunner; see stages.h and inventory_builder.h): the archive
// is split into `chunks` vessel-coherent chunks, stages overlap across
// chunks on the shared thread pool, and the inventory is folded
// incrementally in ascending chunk order. Any chunk count yields a
// byte-identical serialized inventory (property-tested), so the chunk
// count is purely a peak-memory/overlap knob.

namespace pol::core {

struct PipelineConfig {
  int partitions = 8;
  int threads = 0;  // 0 = hardware concurrency.
  // Vessel-coherent chunks the archive is split into. 1 = single-shot;
  // higher values bound per-stage intermediates to ~partitions/chunks
  // partitions at a time without changing the result.
  int chunks = 1;
  // Chunks allowed in flight at once (>= 1); 2 overlaps stage i on
  // chunk k+1 with stage i+1 on chunk k.
  int max_in_flight_chunks = 2;
  double max_speed_knots = 50.0;
  bool commercial_only = true;
  int resolution = 6;
  int geofence_resolution = 6;
  ExtractorConfig extractor;  // resolution is overwritten from above.
  const sim::PortDatabase* ports = nullptr;  // Default: the world table.
};

struct PipelineResult {
  std::unique_ptr<Inventory> inventory;
  CleaningStats cleaning;
  EnrichmentStats enrichment;
  TripStats trips;
  uint64_t aggregated_records = 0;  // Records folded into the inventory.
  // Per-stage observability, in stage order: cleaning, enrichment,
  // trips, projection, extraction. Each entry carries chunk count,
  // records in/out, drop count, peak partition size and summed wall
  // time (see flow::StageMetrics; flow::StageMetricsTable renders it).
  std::vector<flow::StageMetrics> stage_metrics;

  CompressionReport Compression() const {
    return inventory->Compression(aggregated_records);
  }
};

// Runs the whole pipeline over an AIS archive and a vessel registry —
// a thin wrapper assembling the stage graph from stages.h and running
// it over `config.chunks` chunks.
PipelineResult RunPipeline(const std::vector<ais::PositionReport>& reports,
                           const std::vector<ais::VesselInfo>& registry,
                           const PipelineConfig& config);

}  // namespace pol::core

#endif  // POL_CORE_PIPELINE_H_
