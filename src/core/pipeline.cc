#include "core/pipeline.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/inventory_builder.h"
#include "core/stages.h"
#include "flow/stage_runner.h"

namespace pol::core {

PipelineResult RunPipeline(const std::vector<ais::PositionReport>& reports,
                           const std::vector<ais::VesselInfo>& registry,
                           const PipelineConfig& config) {
  PipelineResult result;
  const sim::PortDatabase* ports =
      config.ports != nullptr ? config.ports : &sim::PortDatabase::Global();

  flow::ThreadPool pool(config.threads);

  // The stage graph: one instance of each stage serves every chunk.
  CleaningConfig cleaning_config;
  cleaning_config.partitions = config.partitions;
  cleaning_config.max_speed_knots = config.max_speed_knots;
  auto cleaning = std::make_shared<CleaningStage>(cleaning_config);
  auto enrichment =
      std::make_shared<EnrichmentStage>(registry, config.commercial_only);
  auto trips =
      std::make_shared<TripStage>(ports, config.geofence_resolution);
  auto projection = std::make_shared<ProjectionStage>(config.resolution);

  flow::StageChain<ais::PositionReport, PipelineRecord> chain =
      flow::StageChain<ais::PositionReport, PipelineRecord>(cleaning)
          .Then<PipelineRecord>(enrichment)
          .Then<PipelineRecord>(trips)
          .Then<PipelineRecord>(projection);

  // Chunk source: one global vessel partitioning, sliced into
  // vessel-coherent chunks so per-vessel scans see whole trajectories
  // and chunked folding stays bit-equal to a single-shot build.
  std::vector<flow::Dataset<ais::PositionReport>> chunks =
      SplitReportsByVessel(reports, config.partitions, config.chunks, &pool);

  // Terminal stage: incremental inventory folding in chunk order.
  ExtractorConfig extractor_config = config.extractor;
  extractor_config.resolution = config.resolution;
  InventoryBuilder builder(extractor_config);

  flow::StageRunner<ais::PositionReport, PipelineRecord>::Options options;
  options.max_in_flight = config.max_in_flight_chunks;
  flow::StageRunner<ais::PositionReport, PipelineRecord> runner(
      std::move(chain), &pool, options);
  runner.Run(std::move(chunks),
             [&builder](size_t, flow::Dataset<PipelineRecord> projected) {
               builder.Fold(projected);
             });

  result.cleaning = cleaning->stats();
  result.enrichment = enrichment->stats();
  result.trips = trips->stats();
  result.aggregated_records = builder.records_folded();
  result.stage_metrics = runner.metrics();
  result.stage_metrics.push_back(builder.metrics());
  result.inventory =
      std::make_unique<Inventory>(std::move(builder).Finish());
  return result;
}

}  // namespace pol::core
