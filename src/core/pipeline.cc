#include "core/pipeline.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/inventory_builder.h"
#include "core/run_report.h"
#include "core/stages.h"
#include "obs/clock.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace pol::core {
namespace {

// Converts a live dead letter to its persisted form and back, so a
// resumed run reports restored quarantine entries exactly as the run
// that recorded them did.
CheckpointQuarantineEntry ToCheckpointEntry(
    const flow::ChunkFailure& failure) {
  CheckpointQuarantineEntry entry;
  entry.chunk_index = failure.chunk_index;
  entry.records = failure.records;
  entry.attempts = static_cast<uint64_t>(failure.attempts);
  entry.code = failure.status.code();
  entry.message = failure.status.message();
  return entry;
}

flow::ChunkFailure FromCheckpointEntry(
    const CheckpointQuarantineEntry& entry) {
  flow::ChunkFailure failure;
  failure.chunk_index = static_cast<size_t>(entry.chunk_index);
  failure.records = entry.records;
  failure.attempts = static_cast<int>(entry.attempts);
  failure.status = Status(entry.code, entry.message);
  return failure;
}

// The pipeline proper; RunPipeline wraps it with the run-level
// observability (trace recording, wall clock, report emission).
PipelineResult RunPipelineImpl(
    const std::vector<ais::PositionReport>& reports,
    const std::vector<ais::VesselInfo>& registry,
    const PipelineConfig& config) {
  PipelineResult result;
  const sim::PortDatabase* ports =
      config.ports != nullptr ? config.ports : &sim::PortDatabase::Global();

  flow::ThreadPool pool(config.threads);

  // The stage graph: one instance of each stage serves every chunk.
  CleaningConfig cleaning_config;
  cleaning_config.partitions = config.partitions;
  cleaning_config.max_speed_knots = config.max_speed_knots;
  auto cleaning = std::make_shared<CleaningStage>(cleaning_config);
  auto enrichment =
      std::make_shared<EnrichmentStage>(registry, config.commercial_only);
  auto trips =
      std::make_shared<TripStage>(ports, config.geofence_resolution);
  auto projection = std::make_shared<ProjectionStage>(config.resolution);

  flow::StageChain<ais::PositionReport, PipelineRecord> chain =
      flow::StageChain<ais::PositionReport, PipelineRecord>(cleaning)
          .Then<PipelineRecord>(enrichment)
          .Then<PipelineRecord>(trips)
          .Then<PipelineRecord>(projection);

  // Chunk source: one global vessel partitioning, sliced into
  // vessel-coherent chunks so per-vessel scans see whole trajectories
  // and chunked folding stays bit-equal to a single-shot build.
  std::vector<flow::Dataset<ais::PositionReport>> chunks;
  {
    POL_TRACE_SPAN("pipeline.split");
    chunks =
        SplitReportsByVessel(reports, config.partitions, config.chunks, &pool);
  }

  // Terminal stage: incremental inventory folding in chunk order.
  ExtractorConfig extractor_config = config.extractor;
  extractor_config.resolution = config.resolution;
  InventoryBuilder builder(extractor_config);

  // Checkpoint/resume. The cursor counts *accounted* chunks — folded or
  // quarantined — and snapshots fire on absolute cursor positions
  // (cursor % K == 0), so a resumed run checkpoints (and flushes
  // t-digest buffers) on exactly the schedule an uninterrupted run
  // does; that shared schedule is what makes the two byte-identical.
  CheckpointManager checkpoints(config.checkpoint);
  std::vector<CheckpointQuarantineEntry> quarantine_ledger;
  size_t start_chunk = 0;
  if (checkpoints.enabled()) {
    POL_TRACE_SPAN("pipeline.resume");
    Result<CheckpointState> restored = checkpoints.LoadLatest();
    if (restored.ok()) {
      Status restore_status = builder.RestoreState(restored->builder_state);
      if (restore_status.ok() &&
          restored->total_chunks != chunks.size()) {
        restore_status = Status::FailedPrecondition(
            "checkpoint chunk count does not match this run");
      }
      if (!restore_status.ok()) {
        // A snapshot that validated but does not fit this run: refuse
        // rather than fold on top of foreign state. (RestoreState
        // commits nothing on failure, so the empty inventory is safe.)
        result.status = std::move(restore_status);
        result.inventory =
            std::make_unique<Inventory>(std::move(builder).Finish());
        return result;
      }
      start_chunk = static_cast<size_t>(restored->cursor);
      quarantine_ledger = std::move(restored->quarantined);
      result.coverage.resumed = true;
      result.coverage.resume_cursor = restored->cursor;
      for (const CheckpointQuarantineEntry& entry : quarantine_ledger) {
        result.quarantined.push_back(FromCheckpointEntry(entry));
        ++result.coverage.chunks_quarantined;
        result.coverage.records_quarantined += entry.records;
      }
      result.coverage.chunks_folded =
          start_chunk - result.coverage.chunks_quarantined;
    }
    // NotFound (no snapshot yet) and unreadable/corrupt snapshots both
    // mean a fresh start; LoadLatest already fell back as far as it
    // could.
  }

  flow::StageRunner<ais::PositionReport, PipelineRecord>::Options options;
  options.max_in_flight = config.max_in_flight_chunks;
  options.max_attempts = config.max_attempts;
  options.retry_backoff_seconds = config.retry_backoff_seconds;
  options.fail_fast = config.fail_fast;
  flow::StageRunner<ais::PositionReport, PipelineRecord> runner(
      std::move(chain), &pool, options);

  const size_t total_chunks = chunks.size();
  size_t cursor = start_chunk;
  const auto maybe_checkpoint = [&]() -> Status {
    if (!checkpoints.enabled()) return Status::OK();
    if (cursor == 0 ||
        cursor % static_cast<size_t>(
                     checkpoints.config().interval_chunks) != 0) {
      return Status::OK();
    }
    CheckpointState state;
    state.cursor = cursor;
    state.total_chunks = total_chunks;
    state.quarantined = quarantine_ledger;
    builder.SerializeState(&state.builder_state);
    Status written = checkpoints.Write(state);
    if (written.ok()) {
      ++result.coverage.checkpoints_written;
      return Status::OK();
    }
    ++result.coverage.checkpoint_failures;
    // A failed snapshot only degrades resumability; the run itself is
    // healthy, so only fail_fast runs abort on it.
    return config.fail_fast ? written : Status::OK();
  };

  flow::RunSummary summary = runner.Run(
      std::move(chunks),
      [&](size_t, flow::Dataset<PipelineRecord> projected) -> Status {
        builder.Fold(projected);
        ++cursor;
        return maybe_checkpoint();
      },
      start_chunk,
      [&](const flow::ChunkFailure& failure) {
        quarantine_ledger.push_back(ToCheckpointEntry(failure));
        ++cursor;
        // Status is advisory here: quarantine never happens in
        // fail_fast mode, so a failed snapshot is only counted.
        (void)maybe_checkpoint();
      });

  result.status = summary.status;
  result.coverage.chunks_total = summary.chunks_total;
  result.coverage.chunks_folded += summary.chunks_folded;
  result.coverage.chunks_quarantined += summary.chunks_quarantined;
  result.coverage.records_quarantined += summary.records_quarantined;
  result.coverage.retries = summary.retries;
  for (flow::ChunkFailure& failure : summary.quarantined) {
    result.quarantined.push_back(std::move(failure));
  }

  result.cleaning = cleaning->stats();
  result.enrichment = enrichment->stats();
  result.trips = trips->stats();
  result.aggregated_records = builder.records_folded();
  result.stage_metrics = runner.metrics();
  result.stage_metrics.push_back(builder.metrics());
  result.inventory =
      std::make_unique<Inventory>(std::move(builder).Finish());
  return result;
}

}  // namespace

PipelineResult RunPipeline(const std::vector<ais::PositionReport>& reports,
                           const std::vector<ais::VesselInfo>& registry,
                           const PipelineConfig& config) {
  const double run_start = obs::NowSeconds();
  const bool tracing = !config.obs.trace_path.empty();
  if (tracing) {
    // One trace file per run: drop anything a previous run left behind.
    obs::TraceRecorder::Global().Clear();
    obs::TraceRecorder::Global().Start();
  }
  PipelineResult result;
  {
    POL_TRACE_SPAN("pipeline.run");
    result = RunPipelineImpl(reports, registry, config);
  }
  result.wall_seconds = obs::NowSeconds() - run_start;
  if (tracing) {
    obs::TraceRecorder::Global().Stop();
    std::string error;
    if (!obs::WriteTextFileAtomic(
            config.obs.trace_path,
            obs::TraceRecorder::Global().ExportChromeTraceJson(), &error)) {
      POL_LOG(Warning) << "cannot write trace to " << config.obs.trace_path
                       << ": " << error;
    }
  }
  if (!config.obs.report_path.empty()) {
    const Status written =
        WriteRunReport(config.obs.report_path, config, result);
    if (!written.ok()) {
      POL_LOG(Warning) << "cannot write run report to "
                       << config.obs.report_path << ": " << written.message();
    }
  }
  return result;
}

}  // namespace pol::core
