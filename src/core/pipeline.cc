#include "core/pipeline.h"

#include <optional>

#include "core/extractor.h"

namespace pol::core {

PipelineResult RunPipeline(const std::vector<ais::PositionReport>& reports,
                           const std::vector<ais::VesselInfo>& registry,
                           const PipelineConfig& config) {
  PipelineResult result;
  const sim::PortDatabase* ports =
      config.ports != nullptr ? config.ports : &sim::PortDatabase::Global();

  flow::ThreadPool pool(config.threads);

  // Stages run inside scopes so each intermediate dataset is released as
  // soon as the next stage has consumed it (a year of records is held at
  // most twice at any moment).
  std::optional<flow::Dataset<PipelineRecord>> current;
  {
    // Stage 1: cleaning and preprocessing.
    CleaningConfig cleaning_config;
    cleaning_config.partitions = config.partitions;
    cleaning_config.max_speed_knots = config.max_speed_knots;
    current.emplace(
        CleanReports(reports, cleaning_config, &pool, &result.cleaning));
  }
  {
    // Stage 2: enrichment with static vessel data + commercial filter.
    const Enricher enricher(registry);
    flow::Dataset<PipelineRecord> enriched = enricher.Enrich(
        *current, config.commercial_only, &result.enrichment);
    current.emplace(std::move(enriched));
  }
  {
    // Stage 3: trip semantics via port geofencing.
    const Geofencer geofencer(ports, config.geofence_resolution);
    flow::Dataset<PipelineRecord> with_trips =
        ExtractTrips(*current, geofencer, &result.trips);
    current.emplace(std::move(with_trips));
  }
  {
    // Stage 4: projection to the hexagonal grid.
    flow::Dataset<PipelineRecord> projected =
        ProjectToGrid(*current, config.resolution);
    current.emplace(std::move(projected));
  }
  result.aggregated_records = current->Count();

  // Stage 5: feature extraction over the grouping sets.
  ExtractorConfig extractor_config = config.extractor;
  extractor_config.resolution = config.resolution;
  SummaryMap summaries = ExtractFeatures(*current, extractor_config);
  current.reset();

  result.inventory = std::make_unique<Inventory>(config.resolution,
                                                 std::move(summaries));
  return result;
}

}  // namespace pol::core
