#ifndef POL_CORE_SERVING_GUARD_H_
#define POL_CORE_SERVING_GUARD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/serving_inventory.h"
#include "core/serving_telemetry.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// The serving-resilience layer around core::ServingInventory: the
// paper's inventory is built once a day and queried all day, and an
// always-on query frontend needs three protections the raw store does
// not give it (DESIGN.md §3.7):
//
//  1. **Deadlines.** Every guarded call carries a pol::Deadline
//     (common/deadline.h, monotonic via obs/clock.h). Long scans —
//     VisitGroupingSet sweeps, CellsForRoute corridors — poll it
//     cooperatively every `deadline_check_stride` summaries through
//     InventoryQuery::VisitGroupingSetWhile and return
//     StatusCode::kDeadlineExceeded instead of running unbounded.
//  2. **Admission control.** Two query classes (interactive point
//     lookups vs batch sweeps) each hold a bounded number of in-flight
//     slots. A call that finds its class full waits at most
//     `max_queue_wait_seconds` (and never past its own deadline) for a
//     slot, then is shed with StatusCode::kResourceExhausted — bounded
//     queues, not unbounded convoys. The admission fast path is two
//     atomic operations; the mutex and pol::CondVar are touched only
//     when a class is saturated.
//  3. **Refresh circuit breaker.** Consecutive *retryable* Refresh
//     failures (Status::IsRetryable(), the same authority the stage
//     retry loop uses; fail points inject exactly these) trip the
//     breaker open: further refreshes are rejected with
//     StatusCode::kUnavailable while readers keep serving the last
//     good snapshot — degraded, not down. After `breaker_open_seconds`
//     one half-open probe refresh is let through; success closes the
//     breaker, another retryable failure re-opens it. Non-retryable
//     failures (a resolution-mismatched delta) are caller errors: they
//     fail the call but never trip the breaker, because the store
//     itself is healthy. `snapshot_age_refreshes` counts refresh
//     attempts since the last published snapshot — the staleness the
//     degraded mode is trading for availability.
//
// Metrics (obs::Registry, in the pol.run_report/1 metrics block and
// the report's "serving" section):
//   serving.admitted / serving.queued / serving.shed /
//   serving.deadline_exceeded    (admission outcomes: every guarded
//                                 call lands in admitted, shed, or
//                                 deadline_exceeded exactly once;
//                                 queued counts the admitted-or-shed
//                                 calls that had to wait)
//   serving.scan_deadline_exceeded  (admitted calls canceled mid-scan)
//   serving.breaker_trips / serving.breaker_probes /
//   serving.breaker_closes / serving.breaker_rejected_refreshes
//   serving.degraded (gauge 0/1), serving.breaker_state (gauge:
//   0 closed, 1 open, 2 half-open),
//   serving.snapshot_age_refreshes (gauge)
//
// The guard is a wrapper, not a store: it owns no snapshot and adds no
// state to the read path beyond the admission slots, so bench
// bench_serving_guard holds it to <2% overhead on the Acquire +
// point-lookup hot path.
//
// Query-level telemetry (DESIGN.md §3.8): unless disabled through
// ServingGuardOptions::telemetry, every guarded call additionally
// lands in the guard's ServingTelemetry — a query id (joined to the
// per-query trace span "serving.query.<op>#<id>" when tracing is on),
// a wide query-log event, the per-class trailing-window latency
// histograms, and the ok/error/shed rates the serving.slo.* burn-rate
// gauges evaluate over. The windowed record path is lock-free and
// bench_serving_telemetry holds the whole package — windows, query
// log, exporter — to <2% on the same hot path. The optional exporter
// thread (StartTelemetryExporter) periodically refreshes the gauges,
// evaluates the SLOs, and atomically rewrites an OpenMetrics text file
// `polinv watch` or any Prometheus-style scraper can tail.

namespace pol::core {

enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

// "closed" / "open" / "half-open" (run-report and log vocabulary).
std::string_view BreakerStateName(BreakerState state);

struct ServingGuardOptions {
  // In-flight slots per admission class.
  int max_concurrent_interactive = 64;
  int max_concurrent_batch = 4;
  // Longest a call may wait for a slot before being shed (its own
  // deadline caps the wait too, whichever comes first).
  double max_queue_wait_seconds = 0.05;
  // Consecutive retryable refresh failures that trip the breaker.
  int breaker_trip_failures = 3;
  // Cooldown before an open breaker admits a half-open probe.
  double breaker_open_seconds = 30.0;
  // Deadline poll cadence inside long scans, in summaries visited.
  // Must be a power of two.
  uint32_t deadline_check_stride = 256;
  // Query-level telemetry (windows, query log, SLOs). Set
  // telemetry.enabled = false to strip every per-query clock read and
  // record from the path — the admission counters above stay.
  ServingTelemetryOptions telemetry;
};

// The periodic exporter owned by ServingGuard: each tick refreshes the
// windowed gauges, evaluates the SLOs, and (when a path is set)
// atomically replaces an OpenMetrics rendering of the whole Registry.
struct TelemetryExporterOptions {
  // Export file path; empty keeps the tick gauges-only.
  std::string openmetrics_path;
  double period_seconds = 1.0;
};

class ServingGuard {
 public:
  // The store must outlive the guard. Metric handles are resolved once
  // here; gauges are reset to the healthy state.
  explicit ServingGuard(ServingInventory* store,
                        ServingGuardOptions options = ServingGuardOptions());

  // Stops the exporter thread, if running.
  ~ServingGuard();

  ServingGuard(const ServingGuard&) = delete;
  ServingGuard& operator=(const ServingGuard&) = delete;

  // The guarded-call primitive: admit under `cls` (shedding or
  // deadline-rejecting instead of queueing unboundedly), acquire the
  // active snapshot, run `fn(snapshot)` on the calling thread, release
  // the slot. `fn` is Status(const InventorySnapshot&); the snapshot
  // reference is valid exactly for the call, so no lifetime escapes.
  // `fn` observes the deadline it closed over for cooperative
  // cancellation; a kDeadlineExceeded return is counted as a mid-scan
  // cancel. Templated so the hot path inlines — the guard's cost is
  // the admission atomics plus one clock read (three with telemetry,
  // which also buys the windowed record and the query-log row).
  template <typename Fn>
  Status Run(QueryClass cls, const Deadline& deadline, Fn&& fn) {
    return RunOp("query", cls, deadline, std::forward<Fn>(fn));
  }

  // Run with a telemetry operation name: the static-storage `op`
  // literal lands in the query-log row and names the per-query trace
  // span (constants' kSpanServingQueryPrefix + op + "#" + id), so a
  // trace and its query-log row join on the id.
  template <typename Fn>
  Status RunOp(std::string_view op, QueryClass cls, const Deadline& deadline,
               Fn&& fn) {
    return RunCounted(op, cls, deadline, nullptr, std::forward<Fn>(fn));
  }

  // VisitGroupingSet with the deadline threaded through the scan: the
  // visitor runs until the set is exhausted or the deadline expires
  // (checked every deadline_check_stride summaries), in which case the
  // sweep stops and kDeadlineExceeded is returned. Sweeps default to
  // the batch class.
  Status VisitGroupingSet(GroupingSet set, const Deadline& deadline,
                          const InventoryQuery::SummaryVisitor& visitor,
                          QueryClass cls = QueryClass::kBatch);

  // CellsForRoute under admission + deadline; the corridor is copied
  // out so no snapshot lifetime escapes the call.
  Result<std::vector<hex::CellIndex>> CellsForRoute(
      sim::PortId origin, sim::PortId destination, ais::MarketSegment segment,
      const Deadline& deadline, QueryClass cls = QueryClass::kInteractive);

  // Refresh through the circuit breaker (see the class comment for the
  // closed / open / half-open protocol). Failures never disturb the
  // active snapshot: readers keep acquiring the last good generation.
  Status Refresh(Inventory&& delta);

  // Breaker introspection (also exported as gauges).
  BreakerState breaker_state() const;
  // Degraded mode: the breaker is open or probing half-open — the
  // store serves, but from a snapshot whose refreshes are failing.
  bool degraded() const;
  // Refresh attempts since the last successfully published snapshot.
  uint64_t snapshot_age_refreshes() const;

  // Never null; disabled telemetry reports enabled() == false and
  // records nothing.
  ServingTelemetry* telemetry() const { return telemetry_.get(); }

  // Starts the periodic exporter thread (FailedPrecondition if one is
  // already running). Each tick runs TickTelemetry(). Stopping is
  // idempotent; the destructor stops a still-running exporter.
  Status StartTelemetryExporter(TelemetryExporterOptions options);
  void StopTelemetryExporter();
  bool telemetry_exporter_running() const;

  // One exporter tick, synchronously: refresh the windowed gauges and
  // the snapshot id/age gauges, evaluate the SLOs, and write the
  // OpenMetrics file when `openmetrics_path` is non-empty. Public so
  // tests and one-shot exports stay deterministic. Returns the write
  // error, if any (gauges are refreshed regardless).
  Status TickTelemetry(const std::string& openmetrics_path);

  ServingInventory* store() const { return store_; }
  const ServingGuardOptions& options() const { return options_; }

 private:
  // Per-class admission slots. `in_flight` is the fast path (two
  // atomics per guarded call); `waiters` tells Release whether anyone
  // is parked on the condition variable, so the uncontended release
  // never takes the mutex. Both are seq_cst where they rendezvous —
  // see AdmitSlow/Release in the .cc for the missed-wakeup argument.
  struct ClassState {
    std::atomic<int> in_flight{0};
    std::atomic<int> waiters{0};
    int limit = 0;
  };

  // When `queue_wait_seconds` is non-null it receives the time spent
  // queued for a slot — 0.0 on the uncontended fast path, which reads
  // no clock for it.
  Status Admit(QueryClass cls, const Deadline& deadline,
               double* queue_wait_seconds = nullptr);
  Status AdmitSlow(ClassState& state, const Deadline& deadline,
                   double* queue_wait_seconds);
  void Release(QueryClass cls);

  // "serving.query.<op>#<id>" (core/serving_metric_names.h prefix).
  static std::string QuerySpanName(std::string_view op, uint64_t id);

  // The instrumented guarded-call core behind Run/RunOp. When
  // telemetry is on the clock is read twice — at admission and at
  // finish (queue wait comes from AdmitSlow, which is already clocked);
  // `summaries_visited` (may be null) is read after `fn` returns, so a
  // scan can point it at a counter its visitor increments. A throwing
  // `fn` releases the slot and propagates without a telemetry record —
  // the query log reconciles against non-throwing traffic.
  template <typename Fn>
  Status RunCounted(std::string_view op, QueryClass cls,
                    const Deadline& deadline,
                    const uint64_t* summaries_visited, Fn&& fn) {
    ServingTelemetry* const telemetry = telemetry_.get();
    const bool telemetered = telemetry->enabled();
    double queue_wait_seconds = 0.0;
    {
      const Status admit = Admit(cls, deadline, &queue_wait_seconds);
      if (!admit.ok()) {
        if (telemetered) telemetry->RecordRejected(cls, op, admit);
        return admit;
      }
    }
    const double admitted_at = telemetered ? obs::NowSecondsFast() : 0.0;
    const std::shared_ptr<const InventorySnapshot> snapshot =
        store_->Acquire();
    const uint64_t id = telemetered ? telemetry->BeginQuery() : 0;
    // The per-query span joins the query-log row on the id. Built only
    // while the recorder collects, so the untraced path allocates
    // nothing (the name must outlive the span, hence the local).
    std::string span_name;
    std::optional<obs::ScopedSpan> span;
    if (telemetered && obs::TraceRecorder::Global().enabled()) {
      span_name = QuerySpanName(op, id);
      span.emplace(span_name);
    }
    Status status;
    try {
      status = fn(*snapshot);
    } catch (...) {
      Release(cls);
      throw;
    }
    Release(cls);
    if (status.code() == StatusCode::kDeadlineExceeded) {
      scan_deadline_exceeded_->Increment();
    }
    if (telemetered) {
      const double finished_at = obs::NowSecondsFast();
      telemetry->RecordQueryAt(
          finished_at, id, cls, op, status, queue_wait_seconds,
          finished_at - admitted_at,
          deadline.is_infinite() ? -1.0
                                 : deadline.RemainingSecondsAt(finished_at),
          snapshot->stats().seal_sequence,
          summaries_visited != nullptr ? *summaries_visited : 0);
    }
    return status;
  }

  void ExporterLoop(TelemetryExporterOptions exporter_options);

  ServingInventory* const store_;
  const ServingGuardOptions options_;
  const std::unique_ptr<ServingTelemetry> telemetry_;

  mutable Mutex mutex_;
  CondVar slot_available_;
  BreakerState breaker_state_ POL_GUARDED_BY(mutex_) = BreakerState::kClosed;
  int consecutive_failures_ POL_GUARDED_BY(mutex_) = 0;
  double opened_at_seconds_ POL_GUARDED_BY(mutex_) = 0.0;
  bool probe_in_flight_ POL_GUARDED_BY(mutex_) = false;
  uint64_t snapshot_age_refreshes_ POL_GUARDED_BY(mutex_) = 0;

  ClassState classes_[2];

  obs::Counter* admitted_;
  obs::Counter* queued_;
  obs::Counter* shed_;
  obs::Counter* deadline_exceeded_;
  obs::Counter* scan_deadline_exceeded_;
  obs::Counter* breaker_trips_;
  obs::Counter* breaker_probes_;
  obs::Counter* breaker_closes_;
  obs::Counter* breaker_rejected_;
  obs::Gauge* degraded_gauge_;
  obs::Gauge* breaker_state_gauge_;
  obs::Gauge* age_gauge_;
  obs::Counter* telemetry_exports_;
  obs::Counter* telemetry_export_failures_;
  obs::Gauge* active_snapshot_id_gauge_;
  obs::Gauge* snapshot_age_ms_gauge_;

  // Exporter thread state. Start/Stop (and the destructor) must not
  // race each other; the flags below coordinate with the loop itself.
  mutable Mutex exporter_mutex_;
  CondVar exporter_cv_;
  bool exporter_stop_ POL_GUARDED_BY(exporter_mutex_) = false;
  bool exporter_running_ POL_GUARDED_BY(exporter_mutex_) = false;
  std::thread exporter_thread_;  // Touched only by Start/Stop/dtor.
};

}  // namespace pol::core

#endif  // POL_CORE_SERVING_GUARD_H_
