#include "core/run_report.h"

#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "core/serving_guard.h"
#include "core/serving_metric_names.h"
#include "flow/stage.h"
#include "flow/stage_runner.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "store/store_metric_names.h"

namespace pol::core {
namespace {

obs::Json StatusToJson(const Status& status) {
  obs::Json out = obs::Json::Object();
  out.Set("ok", status.ok());
  out.Set("code", std::string(StatusCodeName(status.code())));
  out.Set("message", status.message());
  return out;
}

obs::Json ConfigToJson(const PipelineConfig& config) {
  obs::Json out = obs::Json::Object();
  out.Set("partitions", config.partitions);
  out.Set("threads", config.threads);
  out.Set("chunks", config.chunks);
  out.Set("max_in_flight_chunks", config.max_in_flight_chunks);
  out.Set("max_attempts", config.max_attempts);
  out.Set("retry_backoff_seconds", config.retry_backoff_seconds);
  out.Set("fail_fast", config.fail_fast);
  out.Set("max_speed_knots", config.max_speed_knots);
  out.Set("commercial_only", config.commercial_only);
  out.Set("resolution", config.resolution);
  out.Set("geofence_resolution", config.geofence_resolution);
  return out;
}

obs::Json CoverageToJson(const PipelineCoverage& coverage) {
  obs::Json out = obs::Json::Object();
  out.Set("chunks_total", static_cast<uint64_t>(coverage.chunks_total));
  out.Set("chunks_folded", static_cast<uint64_t>(coverage.chunks_folded));
  out.Set("chunks_quarantined",
          static_cast<uint64_t>(coverage.chunks_quarantined));
  out.Set("records_quarantined", coverage.records_quarantined);
  out.Set("retries", coverage.retries);
  return out;
}

obs::Json StageToJson(const flow::StageMetrics& stage) {
  obs::Json out = obs::Json::Object();
  out.Set("name", stage.name);
  out.Set("chunks", stage.chunks);
  out.Set("records_in", stage.records_in);
  out.Set("records_out", stage.records_out);
  out.Set("dropped", stage.dropped);
  out.Set("peak_partition", static_cast<uint64_t>(stage.peak_partition));
  out.Set("wall_seconds", stage.wall_seconds);
  out.Set("failures", stage.failures);
  obs::Json by_reason = obs::Json::Object();
  for (const auto& [reason, count] : stage.failures_by_reason) {
    by_reason.Set(reason, count);
  }
  out.Set("failures_by_reason", std::move(by_reason));
  return out;
}

obs::Json FailureToJson(const flow::ChunkFailure& failure) {
  obs::Json out = obs::Json::Object();
  out.Set("chunk_index", static_cast<uint64_t>(failure.chunk_index));
  out.Set("records", failure.records);
  out.Set("attempts", failure.attempts);
  out.Set("code", std::string(StatusCodeName(failure.status.code())));
  out.Set("message", failure.status.message());
  return out;
}

obs::Json CheckpointToJson(const PipelineConfig& config,
                           const PipelineCoverage& coverage) {
  obs::Json out = obs::Json::Object();
  const bool enabled = !config.checkpoint.directory.empty();
  out.Set("enabled", enabled);
  out.Set("directory", config.checkpoint.directory);
  out.Set("interval_chunks", config.checkpoint.interval_chunks);
  out.Set("resumed", coverage.resumed);
  out.Set("resume_cursor", coverage.resume_cursor);
  out.Set("written", coverage.checkpoints_written);
  out.Set("failures", coverage.checkpoint_failures);
  return out;
}

// Serving-resilience summary, distilled from the guard's gauges so the
// report answers "was this run serving degraded?" without digging
// through the metrics block. All-defaults (healthy) when no
// ServingGuard ran or under POL_OBS=OFF.
obs::Json ServingToJson(const obs::MetricsSnapshot& metrics) {
  const auto gauge = [&metrics](std::string_view name) -> int64_t {
    for (const auto& [gauge_name, value] : metrics.gauges) {
      if (gauge_name == name) return value;
    }
    return 0;
  };
  obs::Json out = obs::Json::Object();
  out.Set("degraded", gauge(kMetricServingDegraded) != 0);
  out.Set("breaker_state",
          std::string(BreakerStateName(
              static_cast<BreakerState>(gauge(kMetricServingBreakerState)))));
  out.Set("snapshot_age_refreshes",
          static_cast<uint64_t>(gauge(kMetricServingSnapshotAgeRefreshes)));
  return out;
}

// Snapshot-store summary: the durable-publish and cold-open ledger of
// the run. All zeros when no SnapshotStore was touched (no store
// configured, or POL_OBS=OFF).
obs::Json StoreToJson(const obs::MetricsSnapshot& metrics) {
  const auto counter = [&metrics](std::string_view name) -> uint64_t {
    for (const auto& [counter_name, value] : metrics.counters) {
      if (counter_name == name) return value;
    }
    return 0;
  };
  const auto gauge = [&metrics](std::string_view name) -> int64_t {
    for (const auto& [gauge_name, value] : metrics.gauges) {
      if (gauge_name == name) return value;
    }
    return 0;
  };
  obs::Json out = obs::Json::Object();
  out.Set("publishes", counter(store::kMetricStorePublishes));
  out.Set("publish_failures", counter(store::kMetricStorePublishFailures));
  out.Set("publish_bytes", counter(store::kMetricStorePublishBytes));
  out.Set("opens", counter(store::kMetricStoreOpens));
  out.Set("open_failures", counter(store::kMetricStoreOpenFailures));
  out.Set("fallbacks", counter(store::kMetricStoreFallbacks));
  out.Set("decode_failures", counter(store::kMetricStoreDecodeFailures));
  out.Set("gc_removed", counter(store::kMetricStoreGcRemoved));
  out.Set("generations", gauge(store::kMetricStoreGenerations));
  out.Set("latest_generation", gauge(store::kMetricStoreLatestGeneration));
  return out;
}

// The serving.slo.* gauge set folded back into per-SLO objects:
// {"availability": {"burning": false, "burn_fast_milli": 0, ...}, ...}.
// Empty object when no ServingTelemetry published SLOs (no guard ran,
// telemetry disabled, or POL_OBS=OFF).
obs::Json ServingSloToJson(const obs::MetricsSnapshot& metrics) {
  struct SloAggregate {
    bool burning = false;
    int64_t burn_fast_milli = 0;
    int64_t burn_slow_milli = 0;
    uint64_t breaches = 0;
  };
  std::map<std::string, SloAggregate> slos;
  const std::string_view prefix = kServingSloGaugePrefix;
  const auto split = [&prefix](std::string_view name, std::string_view* slo,
                               std::string_view* field) {
    if (name.substr(0, prefix.size()) != prefix) return false;
    name.remove_prefix(prefix.size());
    const size_t dot = name.rfind('.');
    if (dot == std::string_view::npos || dot == 0) return false;
    *slo = name.substr(0, dot);
    *field = name.substr(dot + 1);
    return true;
  };
  for (const auto& [name, value] : metrics.gauges) {
    std::string_view slo;
    std::string_view field;
    if (!split(name, &slo, &field)) continue;
    SloAggregate& aggregate = slos[std::string(slo)];
    if (field == "burning") {
      aggregate.burning = value != 0;
    } else if (field == "burn_fast_milli") {
      aggregate.burn_fast_milli = value;
    } else if (field == "burn_slow_milli") {
      aggregate.burn_slow_milli = value;
    }
  }
  for (const auto& [name, value] : metrics.counters) {
    std::string_view slo;
    std::string_view field;
    if (!split(name, &slo, &field)) continue;
    if (field == "breaches") slos[std::string(slo)].breaches = value;
  }
  obs::Json out = obs::Json::Object();
  for (const auto& [name, aggregate] : slos) {
    obs::Json one = obs::Json::Object();
    one.Set("burning", aggregate.burning);
    one.Set("burn_fast_milli", aggregate.burn_fast_milli);
    one.Set("burn_slow_milli", aggregate.burn_slow_milli);
    one.Set("breaches", aggregate.breaches);
    out.Set(name, std::move(one));
  }
  return out;
}

}  // namespace

obs::Json BuildRunReport(const PipelineConfig& config,
                         const PipelineResult& result) {
  obs::Json report = obs::Json::Object();
  report.Set("schema", "pol.run_report/1");
  report.Set("status", StatusToJson(result.status));
  report.Set("wall_seconds", result.wall_seconds);
  report.Set("config", ConfigToJson(config));
  report.Set("coverage", CoverageToJson(result.coverage));
  report.Set("aggregated_records", result.aggregated_records);
  obs::Json stages = obs::Json::Array();
  for (const flow::StageMetrics& stage : result.stage_metrics) {
    stages.Append(StageToJson(stage));
  }
  report.Set("stages", std::move(stages));
  obs::Json quarantined = obs::Json::Array();
  for (const flow::ChunkFailure& failure : result.quarantined) {
    quarantined.Append(FailureToJson(failure));
  }
  report.Set("quarantined", std::move(quarantined));
  report.Set("checkpoint", CheckpointToJson(config, result.coverage));
  const obs::MetricsSnapshot metrics = obs::Registry::Global().Snapshot();
  report.Set("serving", ServingToJson(metrics));
  report.Set("serving_slo", ServingSloToJson(metrics));
  report.Set("store", StoreToJson(metrics));
  report.Set("metrics", obs::MetricsSnapshotToJson(metrics));
  return report;
}

Status WriteRunReport(const std::string& path, const PipelineConfig& config,
                      const PipelineResult& result) {
  std::string error;
  if (!obs::WriteJsonFile(path, BuildRunReport(config, result), &error)) {
    return Status::IoError("cannot write run report: " + error);
  }
  return Status::OK();
}

}  // namespace pol::core
