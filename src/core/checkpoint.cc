#include "core/checkpoint.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <string_view>
#include <system_error>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/varint.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pol::core {
namespace {

constexpr char kMagic[] = "POLCKP01";
constexpr size_t kMagicLen = 8;
constexpr uint64_t kVersion = 1;
constexpr char kPrefix[] = "pol-ckpt-";
constexpr char kSuffix[] = ".snap";

// "pol-ckpt-<8-digit seq>.snap" -> sequence; 0 when the name does not
// match the snapshot pattern.
uint64_t ParseSequence(const std::string& filename) {
  const std::string_view name(filename);
  const std::string_view prefix(kPrefix);
  const std::string_view suffix(kSuffix);
  if (name.size() <= prefix.size() + suffix.size()) return 0;
  if (name.substr(0, prefix.size()) != prefix) return 0;
  if (name.substr(name.size() - suffix.size()) != suffix) return 0;
  const std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  uint64_t sequence = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return 0;
    sequence = sequence * 10 + static_cast<uint64_t>(c - '0');
  }
  return sequence;
}

std::string SnapshotPath(const std::string& directory, uint64_t sequence) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kPrefix,
                static_cast<unsigned long long>(sequence), kSuffix);
  return (std::filesystem::path(directory) / name).string();
}

// Sequence numbers of snapshots present in `directory`, ascending.
std::vector<uint64_t> ListSequences(const std::string& directory) {
  std::vector<uint64_t> sequences;
  std::error_code ec;
  std::filesystem::directory_iterator it(directory, ec);
  if (ec) return sequences;
  for (const auto& entry : it) {
    const uint64_t sequence = ParseSequence(entry.path().filename().string());
    if (sequence != 0) sequences.push_back(sequence);
  }
  std::sort(sequences.begin(), sequences.end());
  return sequences;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  POL_RETURN_IF_ERROR(POL_FAILPOINT("checkpoint.read"));
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  return std::string((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointConfig config)
    : config_(std::move(config)) {
  if (config_.interval_chunks < 1) config_.interval_chunks = 1;
  if (config_.keep < 1) config_.keep = 1;
  if (enabled()) {
    const std::vector<uint64_t> sequences = ListSequences(config_.directory);
    if (!sequences.empty()) next_sequence_ = sequences.back() + 1;
  }
}

void CheckpointManager::Encode(const CheckpointState& state,
                               std::string* out) {
  out->append(kMagic, kMagicLen);
  std::string body;
  PutVarint64(&body, kVersion);
  PutVarint64(&body, state.cursor);
  PutVarint64(&body, state.total_chunks);
  PutVarint64(&body, state.quarantined.size());
  for (const CheckpointQuarantineEntry& entry : state.quarantined) {
    PutVarint64(&body, entry.chunk_index);
    PutVarint64(&body, entry.records);
    PutVarint64(&body, entry.attempts);
    PutVarint64(&body, static_cast<uint64_t>(entry.code));
    PutLengthPrefixed(&body, entry.message);
  }
  PutLengthPrefixed(&body, state.builder_state);
  PutVarint64(out, body.size());
  out->append(body);
  const uint32_t crc = Crc32(body);
  out->push_back(static_cast<char>(crc & 0xff));
  out->push_back(static_cast<char>((crc >> 8) & 0xff));
  out->push_back(static_cast<char>((crc >> 16) & 0xff));
  out->push_back(static_cast<char>((crc >> 24) & 0xff));
}

Result<CheckpointState> CheckpointManager::Decode(std::string_view input) {
  if (input.size() < kMagicLen ||
      input.substr(0, kMagicLen) != std::string_view(kMagic, kMagicLen)) {
    return Status::Corruption("bad checkpoint magic");
  }
  input.remove_prefix(kMagicLen);
  uint64_t body_size = 0;
  POL_RETURN_IF_ERROR(GetVarint64(&input, &body_size));
  if (input.size() < body_size + 4) {
    return Status::Corruption("truncated checkpoint body");
  }
  const std::string_view body_bytes = input.substr(0, body_size);
  const std::string_view crc_bytes = input.substr(body_size, 4);
  uint32_t declared = 0;
  for (int i = 3; i >= 0; --i) {
    declared = (declared << 8) |
               static_cast<uint8_t>(crc_bytes[static_cast<size_t>(i)]);
  }
  if (Crc32(body_bytes) != declared) {
    return Status::Corruption("checkpoint checksum mismatch");
  }

  std::string_view body = body_bytes;
  uint64_t version = 0;
  POL_RETURN_IF_ERROR(GetVarint64(&body, &version));
  if (version != kVersion) {
    return Status::Corruption("unsupported checkpoint version");
  }
  CheckpointState state;
  POL_RETURN_IF_ERROR(GetVarint64(&body, &state.cursor));
  POL_RETURN_IF_ERROR(GetVarint64(&body, &state.total_chunks));
  uint64_t quarantine_count = 0;
  POL_RETURN_IF_ERROR(GetVarint64(&body, &quarantine_count));
  for (uint64_t i = 0; i < quarantine_count; ++i) {
    CheckpointQuarantineEntry entry;
    uint64_t code = 0;
    POL_RETURN_IF_ERROR(GetVarint64(&body, &entry.chunk_index));
    POL_RETURN_IF_ERROR(GetVarint64(&body, &entry.records));
    POL_RETURN_IF_ERROR(GetVarint64(&body, &entry.attempts));
    POL_RETURN_IF_ERROR(GetVarint64(&body, &code));
    if (code > static_cast<uint64_t>(kMaxStatusCode)) {
      return Status::Corruption("bad status code in checkpoint");
    }
    entry.code = static_cast<StatusCode>(code);
    std::string_view message;
    POL_RETURN_IF_ERROR(GetLengthPrefixed(&body, &message));
    entry.message = std::string(message);
    state.quarantined.push_back(std::move(entry));
  }
  std::string_view builder_state;
  POL_RETURN_IF_ERROR(GetLengthPrefixed(&body, &builder_state));
  state.builder_state = std::string(builder_state);
  if (!body.empty()) {
    return Status::Corruption("trailing bytes in checkpoint body");
  }
  return state;
}

Status CheckpointManager::Write(const CheckpointState& state) {
  POL_TRACE_SPAN("checkpoint.write");
  const double start = obs::kEnabled ? obs::NowSeconds() : 0.0;
  uint64_t bytes_written = 0;
  Status status = [&]() -> Status {
    if (!enabled()) {
      return Status::FailedPrecondition("checkpointing is disabled");
    }
    POL_RETURN_IF_ERROR(POL_FAILPOINT("checkpoint.write"));

    std::error_code ec;
    std::filesystem::create_directories(config_.directory, ec);
    if (ec) {
      return Status::IoError("cannot create checkpoint directory: " +
                             config_.directory);
    }

    std::string bytes;
    Encode(state, &bytes);
    const uint64_t sequence = next_sequence_++;
    const std::string path = SnapshotPath(config_.directory, sequence);
    const std::string tmp_path = path + ".tmp";
    {
      std::ofstream file(tmp_path, std::ios::binary | std::ios::trunc);
      if (!file) {
        return Status::IoError("cannot open for writing: " + tmp_path);
      }
      file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      file.flush();
      if (!file) return Status::IoError("short write: " + tmp_path);
    }
    std::filesystem::rename(tmp_path, path, ec);
    if (ec) {
      std::filesystem::remove(tmp_path, ec);
      return Status::IoError("cannot publish checkpoint: " + path);
    }
    bytes_written = bytes.size();

    // Rotate: drop everything but the newest `keep` snapshots.
    std::vector<uint64_t> sequences = ListSequences(config_.directory);
    const size_t keep = static_cast<size_t>(config_.keep);
    if (sequences.size() > keep) {
      for (size_t i = 0; i + keep < sequences.size(); ++i) {
        std::filesystem::remove(SnapshotPath(config_.directory, sequences[i]),
                                ec);
      }
    }
    return Status::OK();
  }();
  if constexpr (obs::kEnabled) {
    auto& registry = obs::Registry::Global();
    registry.histogram("checkpoint.write_seconds")
        ->Record(obs::NowSeconds() - start);
    if (status.ok()) {
      registry.counter("checkpoint.writes")->Increment();
      registry.counter("checkpoint.bytes_written")->Increment(bytes_written);
    } else {
      registry.counter("checkpoint.write_failures")->Increment();
    }
  }
  return status;
}

Result<CheckpointState> CheckpointManager::LoadLatest() const {
  POL_TRACE_SPAN("checkpoint.load");
  const double start = obs::kEnabled ? obs::NowSeconds() : 0.0;
  Result<CheckpointState> result = [&]() -> Result<CheckpointState> {
    if (!enabled()) {
      return Status::FailedPrecondition("checkpointing is disabled");
    }
    const std::vector<uint64_t> sequences = ListSequences(config_.directory);
    for (auto it = sequences.rbegin(); it != sequences.rend(); ++it) {
      const std::string path = SnapshotPath(config_.directory, *it);
      Result<std::string> bytes = ReadFileBytes(path);
      if (!bytes.ok()) continue;  // Unreadable: fall back to an older one.
      Result<CheckpointState> state = Decode(*bytes);
      if (state.ok()) return state;
      // Corrupt (e.g. crash mid-rotation, disk fault): fall back.
    }
    return Status::NotFound("no loadable checkpoint in " + config_.directory);
  }();
  if constexpr (obs::kEnabled) {
    obs::Registry::Global()
        .histogram("checkpoint.read_seconds")
        ->Record(obs::NowSeconds() - start);
  }
  return result;
}

std::vector<std::string> CheckpointManager::ListSnapshots() const {
  std::vector<std::string> paths;
  if (!enabled()) return paths;
  for (const uint64_t sequence : ListSequences(config_.directory)) {
    paths.push_back(SnapshotPath(config_.directory, sequence));
  }
  return paths;
}

}  // namespace pol::core
