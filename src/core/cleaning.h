#ifndef POL_CORE_CLEANING_H_
#define POL_CORE_CLEANING_H_

#include <cstdint>
#include <vector>

#include "ais/messages.h"
#include "core/records.h"
#include "flow/dataset.h"

// Data cleaning and preprocessing (paper section 3.3.1):
//   1. protocol range validation of every field;
//   2. per-vessel partitioning and time-ordering;
//   3. exact-duplicate removal;
//   4. kinematic feasibility: transitions implying more than
//      `max_speed_knots` (default 50 kn) are discarded.

namespace pol::core {

struct CleaningConfig {
  int partitions = 8;
  double max_speed_knots = 50.0;
};

struct CleaningStats {
  uint64_t input = 0;
  uint64_t invalid_fields = 0;
  uint64_t duplicates = 0;
  uint64_t infeasible_jumps = 0;
  uint64_t kept = 0;

  void Accumulate(const CleaningStats& other) {
    input += other.input;
    invalid_fields += other.invalid_fields;
    duplicates += other.duplicates;
    infeasible_jumps += other.infeasible_jumps;
    kept += other.kept;
  }
};

// Splits a raw archive into `chunks` vessel-coherent chunks over
// `partitions` hash partitions in total: every record of a vessel lands
// in the same partition, and each chunk holds a contiguous, balanced
// group of those partitions. This is the chunk source of the stage
// graph — because chunk boundaries coincide with partition boundaries
// of the single global partitioning, running the per-partition stages
// chunk by chunk and folding results in ascending chunk order is
// bit-identical to one monolithic run (see dataset.h).
std::vector<flow::Dataset<ais::PositionReport>> SplitReportsByVessel(
    const std::vector<ais::PositionReport>& reports, int partitions,
    int chunks, flow::ThreadPool* pool);

// Cleans one vessel-coherent chunk (any output of SplitReportsByVessel):
// field validation, per-vessel time ordering, dedup, feasibility filter.
// Stats are ACCUMULATED into `*stats` so per-chunk calls sum to the
// archive totals (`input` and `kept` included).
flow::Dataset<PipelineRecord> CleanChunk(
    const flow::Dataset<ais::PositionReport>& chunk,
    const CleaningConfig& config, CleaningStats* stats);

// Runs the cleaning stage over a whole archive in one chunk, resetting
// `*stats` first (single-call totals). The result is partitioned by
// vessel and time-sorted within each vessel (each vessel's records are
// contiguous), ready for trip extraction.
flow::Dataset<PipelineRecord> CleanReports(
    const std::vector<ais::PositionReport>& reports,
    const CleaningConfig& config, flow::ThreadPool* pool,
    CleaningStats* stats);

}  // namespace pol::core

#endif  // POL_CORE_CLEANING_H_
