#ifndef POL_CORE_CLEANING_H_
#define POL_CORE_CLEANING_H_

#include <cstdint>
#include <vector>

#include "ais/messages.h"
#include "core/records.h"
#include "flow/dataset.h"

// Data cleaning and preprocessing (paper section 3.3.1):
//   1. protocol range validation of every field;
//   2. per-vessel partitioning and time-ordering;
//   3. exact-duplicate removal;
//   4. kinematic feasibility: transitions implying more than
//      `max_speed_knots` (default 50 kn) are discarded.

namespace pol::core {

struct CleaningConfig {
  int partitions = 8;
  double max_speed_knots = 50.0;
};

struct CleaningStats {
  uint64_t input = 0;
  uint64_t invalid_fields = 0;
  uint64_t duplicates = 0;
  uint64_t infeasible_jumps = 0;
  uint64_t kept = 0;
};

// Runs the cleaning stage. The result is partitioned by vessel and
// time-sorted within each vessel (each vessel's records are contiguous),
// ready for trip extraction.
flow::Dataset<PipelineRecord> CleanReports(
    const std::vector<ais::PositionReport>& reports,
    const CleaningConfig& config, flow::ThreadPool* pool,
    CleaningStats* stats);

}  // namespace pol::core

#endif  // POL_CORE_CLEANING_H_
