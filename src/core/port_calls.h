#ifndef POL_CORE_PORT_CALLS_H_
#define POL_CORE_PORT_CALLS_H_

#include <vector>

#include "core/geofence.h"
#include "core/records.h"
#include "core/trips.h"
#include "flow/dataset.h"

// Port-call reconstruction (paper section 3.3.2: "the geofencing
// technique for reconstruction of port calls"): the table of discrete
// visits — which vessel was alongside in which port, from when to when.
// This is the event log port authorities and terminal operators consume,
// and the skeleton the trip extraction hangs its origin/destination
// semantics on.

namespace pol::core {

struct PortCall {
  ais::Mmsi mmsi = 0;
  sim::PortId port = sim::kNoPort;
  UnixSeconds arrival = 0;    // First stationary in-fence record.
  UnixSeconds departure = 0;  // Last stationary in-fence record.
  uint64_t records = 0;       // Records attributed to the call.

  int64_t DurationSeconds() const { return departure - arrival; }
};

struct PortCallConfig {
  // Stop condition shared with trip extraction.
  TripConfig trip;
  // Two stationary periods in the same port merge into one call when the
  // gap between them is below this (reception gaps, brief shifts along
  // the quay).
  int64_t merge_gap_s = 12 * 3600;
  // Calls shorter than this are discarded as geofence noise.
  int64_t min_duration_s = 15 * 60;
};

// Reconstructs port calls. `records` must be vessel-partitioned and
// time-sorted (CleanReports output). Calls are returned sorted by
// (mmsi, arrival).
std::vector<PortCall> ExtractPortCalls(
    const flow::Dataset<PipelineRecord>& records, const Geofencer& geofencer,
    const PortCallConfig& config = PortCallConfig());

}  // namespace pol::core

#endif  // POL_CORE_PORT_CALLS_H_
