#include "core/geofence.h"

#include <limits>

#include "common/check.h"
#include "geo/geodesic.h"

namespace pol::core {

Geofencer::Geofencer(const sim::PortDatabase* ports, int res)
    : ports_(ports), res_(res) {
  POL_CHECK(ports_ != nullptr);
  for (const sim::Port& port : ports_->ports()) {
    // Cover the geofence disk plus one cell of slack (a point near the
    // cell edge can belong to a fence whose centre cell is adjacent).
    const double cover_km =
        port.geofence_radius_km + hex::EdgeLengthKm(res_) * 2.0;
    for (const hex::CellIndex cell :
         hex::CellsWithinDistanceKm(port.position, cover_km, res_)) {
      index_[cell].push_back(port.id);
    }
  }
}

sim::PortId Geofencer::PortAt(const geo::LatLng& position) const {
  const hex::CellIndex cell = hex::LatLngToCell(position, res_);
  const auto it = index_.find(cell);
  if (it == index_.end()) return sim::kNoPort;
  sim::PortId best = sim::kNoPort;
  double best_km = std::numeric_limits<double>::max();
  for (const sim::PortId id : it->second) {
    const sim::Port& port = **ports_->Find(id);
    const double d = geo::HaversineKm(position, port.position);
    if (d <= port.geofence_radius_km && d < best_km) {
      best_km = d;
      best = id;
    }
  }
  return best;
}

sim::PortId Geofencer::PortAtExhaustive(const geo::LatLng& position) const {
  return ports_->GeofenceContaining(position);
}

}  // namespace pol::core
