#include "core/snapshot_codec.h"

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/varint.h"
#include "core/group_key.h"
#include "core/inventory.h"
#include "core/route_index.h"
#include "hexgrid/cell_index.h"
#include "obs/metrics.h"
#include "store/mapped_file.h"
#include "store/snapshot_format.h"
#include "store/store_metric_names.h"

namespace pol::core {
namespace {

// Record strides of the fixed-width sections.
constexpr size_t kKeyRecordBytes = 16;       // {u64 cell, u64 dims}
constexpr size_t kRouteSpanBytes = 24;       // {u64 route, u64 begin, u64 end}
constexpr size_t kSegmentRecordBytes = 16;   // {u64 cell, u64 mask}

Status Payload(std::string why) {
  return Status::DataLoss("POLSNAP1 payload: " + std::move(why));
}

Status ReadMetaVarint(std::string_view* meta, uint64_t* value,
                      std::string_view field) {
  if (!GetVarint64(meta, value).ok()) {
    return Payload("meta section truncated at " + std::string(field));
  }
  return Status::OK();
}

}  // namespace

void InventorySnapshot::EncodeTo(std::string* out) const {
  store::SnapshotFileBuilder builder;

  std::string meta;
  PutVarint64(&meta, kSnapPayloadVersion);
  PutVarint64(&meta, static_cast<uint64_t>(resolution_));
  PutVarint64(&meta, total_);
  for (size_t set = 0; set < kNumGroupingSets; ++set) {
    PutVarint64(&meta, stats_.summaries_per_set[set]);
  }
  PutVarint64(&meta, stats_.route_index_routes);
  PutVarint64(&meta, stats_.route_index_cells);
  PutVarint64(&meta, stats_.segment_index_cells);
  PutDouble(&meta, stats_.seal_seconds);
  PutVarint64(&meta, stats_.seal_sequence);
  builder.AddSection(kSnapSectionMeta, meta);

  for (size_t set = 0; set < kNumGroupingSets; ++set) {
    const GroupArray& group = groups_[set];
    std::string keys;
    keys.reserve(group.keys.size() * kKeyRecordBytes);
    for (const GroupKey& key : group.keys) {
      store::AppendU64(&keys, key.cell);
      store::AppendU64(&keys, GroupKeyDimsPacked(key));
    }
    std::string offsets;
    offsets.reserve((group.values.size() + 1) * sizeof(uint64_t));
    std::string blob;
    for (const CellSummary& value : group.values) {
      store::AppendU64(&offsets, blob.size());
      value.Serialize(&blob);
    }
    store::AppendU64(&offsets, blob.size());
    const uint32_t ordinal = static_cast<uint32_t>(set);
    builder.AddSection(kSnapSectionKeysBase + ordinal, keys);
    builder.AddSection(kSnapSectionSummaryOffsetsBase + ordinal, offsets);
    builder.AddSection(kSnapSectionSummaryBlobBase + ordinal, blob);
  }

  std::string spans;
  spans.reserve(route_index_.routes() * kRouteSpanBytes);
  route_index_.ForEachSpan([&spans](uint64_t route, size_t begin, size_t end) {
    store::AppendU64(&spans, route);
    store::AppendU64(&spans, begin);
    store::AppendU64(&spans, end);
  });
  builder.AddSection(kSnapSectionRouteSpans, spans);
  std::string route_cells;
  route_cells.reserve(route_index_.cells() * sizeof(uint64_t));
  for (const hex::CellIndex cell : route_index_.cell_array()) {
    store::AppendU64(&route_cells, cell);
  }
  builder.AddSection(kSnapSectionRouteCells, route_cells);

  std::string segments;
  segments.reserve(segment_index_.size() * kSegmentRecordBytes);
  for (const CellSegments& entry : segment_index_) {
    store::AppendU64(&segments, entry.cell);
    store::AppendU64(&segments, entry.mask);
  }
  builder.AddSection(kSnapSectionSegmentIndex, segments);

  *out = builder.Finish();
}

Status InventorySnapshot::WriteTo(store::SnapshotStore* store,
                                  uint64_t* generation) const {
  std::string image;
  EncodeTo(&image);
  POL_ASSIGN_OR_RETURN(const uint64_t published, store->Publish(image));
  if (generation != nullptr) *generation = published;
  return Status::OK();
}

Result<SnapshotMeta> DecodeSnapshotMeta(const store::SnapshotFileView& view) {
  POL_ASSIGN_OR_RETURN(std::string_view meta, view.Section(kSnapSectionMeta));
  uint64_t version = 0;
  POL_RETURN_IF_ERROR(ReadMetaVarint(&meta, &version, "version"));
  if (version != kSnapPayloadVersion) {
    return Payload("unsupported payload version " + std::to_string(version));
  }
  SnapshotMeta out;
  uint64_t resolution = 0;
  POL_RETURN_IF_ERROR(ReadMetaVarint(&meta, &resolution, "resolution"));
  if (resolution > hex::kMaxResolution) {
    return Payload("bad resolution " + std::to_string(resolution));
  }
  out.resolution = static_cast<int>(resolution);
  POL_RETURN_IF_ERROR(ReadMetaVarint(&meta, &out.total, "total"));
  for (size_t set = 0; set < kNumGroupingSets; ++set) {
    POL_RETURN_IF_ERROR(ReadMetaVarint(
        &meta, &out.stats.summaries_per_set[set], "per-set count"));
  }
  POL_RETURN_IF_ERROR(
      ReadMetaVarint(&meta, &out.stats.route_index_routes, "route spans"));
  POL_RETURN_IF_ERROR(
      ReadMetaVarint(&meta, &out.stats.route_index_cells, "route cells"));
  POL_RETURN_IF_ERROR(
      ReadMetaVarint(&meta, &out.stats.segment_index_cells, "segment cells"));
  if (!GetDouble(&meta, &out.stats.seal_seconds).ok()) {
    return Payload("meta section truncated at seal seconds");
  }
  POL_RETURN_IF_ERROR(
      ReadMetaVarint(&meta, &out.stats.seal_sequence, "seal sequence"));
  return out;
}

// The zero-copy serving snapshot: every fixed-width section (keys,
// offsets, route spans/cells, segment masks) is binary-searched in
// place on the mapping; CellSummary blobs are decoded lazily on first
// access and CAS-cached per entry. Section framing and CRCs were
// verified by SnapshotFileView::Validate, and Open() re-checks the
// cross-section invariants (counts, offset monotonicity, key order),
// so the query paths run unchecked, exactly like the sealed in-memory
// snapshot they mirror.
class MappedSnapshot final : public InventorySnapshot {
 public:
  explicit MappedSnapshot(SealTag tag) : InventorySnapshot(tag) {}
  ~MappedSnapshot() override;

  static Result<std::shared_ptr<const InventorySnapshot>> Open(
      store::SnapshotStore::Opened opened);

  // The file is its own canonical encoding: base-class EncodeTo would
  // re-encode the (empty) in-memory arrays, so a mapped snapshot hands
  // back the exact image it serves from instead.
  void EncodeTo(std::string* out) const override;

  const CellSummary* Cell(hex::CellIndex cell) const override;
  const CellSummary* CellType(hex::CellIndex cell,
                              ais::MarketSegment segment) const override;
  const CellSummary* CellRouteType(hex::CellIndex cell, sim::PortId origin,
                                   sim::PortId destination,
                                   ais::MarketSegment segment) const override;
  std::vector<hex::CellIndex> CellsForRoute(
      sim::PortId origin, sim::PortId destination,
      ais::MarketSegment segment) const override;
  std::vector<ais::MarketSegment> SegmentsAt(
      hex::CellIndex cell) const override;
  void VisitGroupingSet(GroupingSet set,
                        const SummaryVisitor& visitor) const override;
  bool VisitGroupingSetWhile(GroupingSet set,
                             const CancellableVisitor& visitor) const override;
  uint64_t DistinctCells() const override;

 private:
  struct SetView {
    const char* keys = nullptr;     // count * 16 B, (cell, dims)-sorted.
    size_t count = 0;
    const char* offsets = nullptr;  // (count + 1) * u64 into the blob.
    const char* blob = nullptr;
    size_t blob_size = 0;
    // Lazily materialized summaries, one slot per key. Entries decode
    // on first access; the CAS loser's copy dies with its unique_ptr.
    std::unique_ptr<std::atomic<const CellSummary*>[]> cache;
  };

  static uint64_t KeyCellAt(const char* keys, size_t i) {
    return store::LoadU64(keys + i * kKeyRecordBytes);
  }
  static uint64_t KeyDimsAt(const char* keys, size_t i) {
    return store::LoadU64(keys + i * kKeyRecordBytes + sizeof(uint64_t));
  }

  const CellSummary* Materialize(const SetView& view, size_t i) const;
  const CellSummary* Find(GroupingSet set, uint64_t cell, uint64_t dims) const;
  std::vector<hex::CellIndex> RouteCells(uint64_t packed) const;

  store::MappedFile file_;
  std::array<SetView, kNumGroupingSets> sets_;
  const char* route_spans_ = nullptr;
  size_t route_span_count_ = 0;
  const char* route_cells_ = nullptr;
  size_t route_cell_count_ = 0;
  const char* segments_ = nullptr;
  size_t segment_count_ = 0;
};

MappedSnapshot::~MappedSnapshot() {
  for (const SetView& view : sets_) {
    // A failed Open can leave count set with no cache allocated yet.
    if (view.cache == nullptr) continue;
    for (size_t i = 0; i < view.count; ++i) {
      // Reconstitute ownership of each cached decode (created by
      // make_unique in Materialize and released into the slot).
      std::unique_ptr<const CellSummary> owner(
          view.cache[i].load(std::memory_order_acquire));
    }
  }
}

Result<std::shared_ptr<const InventorySnapshot>> MappedSnapshot::Open(
    store::SnapshotStore::Opened opened) {
  POL_ASSIGN_OR_RETURN(const SnapshotMeta meta,
                       DecodeSnapshotMeta(opened.view));
  auto snapshot = std::make_shared<MappedSnapshot>(SealTag{});
  snapshot->resolution_ = meta.resolution;
  snapshot->total_ = static_cast<size_t>(meta.total);
  snapshot->stats_ = meta.stats;

  for (size_t set = 0; set < kNumGroupingSets; ++set) {
    const uint32_t ordinal = static_cast<uint32_t>(set);
    POL_ASSIGN_OR_RETURN(std::string_view keys,
                         opened.view.Section(kSnapSectionKeysBase + ordinal));
    POL_ASSIGN_OR_RETURN(
        std::string_view offsets,
        opened.view.Section(kSnapSectionSummaryOffsetsBase + ordinal));
    POL_ASSIGN_OR_RETURN(
        std::string_view blob,
        opened.view.Section(kSnapSectionSummaryBlobBase + ordinal));
    const uint64_t count = meta.stats.summaries_per_set[set];
    if (keys.size() != count * kKeyRecordBytes) {
      return Payload("key section size disagrees with meta count");
    }
    if (offsets.size() != (count + 1) * sizeof(uint64_t)) {
      return Payload("offset section size disagrees with meta count");
    }
    SetView& view = snapshot->sets_[set];
    view.keys = keys.data();
    view.count = static_cast<size_t>(count);
    view.offsets = offsets.data();
    view.blob = blob.data();
    view.blob_size = blob.size();
    // Cross-section invariants: offsets monotone within the blob and
    // keys in strict (cell, dims) order — the preconditions the
    // unchecked query paths rely on.
    uint64_t previous_offset = 0;
    for (size_t i = 0; i <= view.count; ++i) {
      const uint64_t offset =
          store::LoadU64(view.offsets + i * sizeof(uint64_t));
      if (offset < previous_offset || offset > view.blob_size) {
        return Payload("summary offsets not monotone");
      }
      previous_offset = offset;
    }
    if (previous_offset != view.blob_size) {
      return Payload("summary blob has trailing bytes");
    }
    for (size_t i = 1; i < view.count; ++i) {
      const uint64_t prev_cell = KeyCellAt(view.keys, i - 1);
      const uint64_t cell = KeyCellAt(view.keys, i);
      if (prev_cell > cell ||
          (prev_cell == cell &&
           KeyDimsAt(view.keys, i - 1) >= KeyDimsAt(view.keys, i))) {
        return Payload("keys out of order");
      }
    }
    if (view.count > 0) {
      view.cache =
          std::make_unique<std::atomic<const CellSummary*>[]>(view.count);
    }
  }

  POL_ASSIGN_OR_RETURN(std::string_view spans,
                       opened.view.Section(kSnapSectionRouteSpans));
  POL_ASSIGN_OR_RETURN(std::string_view route_cells,
                       opened.view.Section(kSnapSectionRouteCells));
  if (spans.size() != meta.stats.route_index_routes * kRouteSpanBytes) {
    return Payload("route span section size disagrees with meta");
  }
  if (route_cells.size() !=
      meta.stats.route_index_cells * sizeof(uint64_t)) {
    return Payload("route cell section size disagrees with meta");
  }
  snapshot->route_spans_ = spans.data();
  snapshot->route_span_count_ = static_cast<size_t>(meta.stats.route_index_routes);
  snapshot->route_cells_ = route_cells.data();
  snapshot->route_cell_count_ =
      static_cast<size_t>(meta.stats.route_index_cells);
  uint64_t previous_route = 0;
  for (size_t i = 0; i < snapshot->route_span_count_; ++i) {
    const char* span = snapshot->route_spans_ + i * kRouteSpanBytes;
    const uint64_t route = store::LoadU64(span);
    const uint64_t begin = store::LoadU64(span + 8);
    const uint64_t end = store::LoadU64(span + 16);
    if (i > 0 && route <= previous_route) {
      return Payload("route spans out of order");
    }
    if (begin > end || end > snapshot->route_cell_count_) {
      return Payload("route span out of bounds");
    }
    previous_route = route;
  }

  POL_ASSIGN_OR_RETURN(std::string_view segments,
                       opened.view.Section(kSnapSectionSegmentIndex));
  if (segments.size() !=
      meta.stats.segment_index_cells * kSegmentRecordBytes) {
    return Payload("segment section size disagrees with meta");
  }
  snapshot->segments_ = segments.data();
  snapshot->segment_count_ =
      static_cast<size_t>(meta.stats.segment_index_cells);
  for (size_t i = 1; i < snapshot->segment_count_; ++i) {
    if (store::LoadU64(snapshot->segments_ + (i - 1) * kSegmentRecordBytes) >=
        store::LoadU64(snapshot->segments_ + i * kSegmentRecordBytes)) {
      return Payload("segment index out of order");
    }
  }

  // Adopt the mapping last: the raw section pointers above reference
  // the mapped bytes, whose addresses survive the move (mmap addresses
  // are stable; the heap-fallback buffer moves by pointer).
  snapshot->file_ = std::move(opened.file);
  return std::shared_ptr<const InventorySnapshot>(std::move(snapshot));
}

void MappedSnapshot::EncodeTo(std::string* out) const {
  const std::string_view bytes = file_.bytes();
  out->assign(bytes.data(), bytes.size());
}

const CellSummary* MappedSnapshot::Materialize(const SetView& view,
                                               size_t i) const {
  const CellSummary* cached = view.cache[i].load(std::memory_order_acquire);
  if (cached != nullptr) return cached;
  const uint64_t begin = store::LoadU64(view.offsets + i * sizeof(uint64_t));
  const uint64_t end =
      store::LoadU64(view.offsets + (i + 1) * sizeof(uint64_t));
  std::string_view bytes(view.blob + begin,
                         static_cast<size_t>(end - begin));
  auto decoded = std::make_unique<CellSummary>();
  if (!decoded->Deserialize(&bytes).ok() || !bytes.empty()) {
    // Unreachable after Validate's CRC pass; surfaced as telemetry
    // (and a null summary, the "no data" answer) rather than a crash.
    obs::Registry::Global()
        .counter(store::kMetricStoreDecodeFailures)
        ->Increment();
    return nullptr;
  }
  const CellSummary* fresh = decoded.get();
  const CellSummary* expected = nullptr;
  if (view.cache[i].compare_exchange_strong(expected, fresh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
    decoded.release();  // The slot owns it now; freed in ~MappedSnapshot.
    return fresh;
  }
  return expected;  // Another thread won the race; ours is discarded.
}

const CellSummary* MappedSnapshot::Find(GroupingSet set, uint64_t cell,
                                        uint64_t dims) const {
  const SetView& view = sets_[static_cast<size_t>(set)];
  size_t lo = 0;
  size_t hi = view.count;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const uint64_t mid_cell = KeyCellAt(view.keys, mid);
    if (mid_cell < cell ||
        (mid_cell == cell && KeyDimsAt(view.keys, mid) < dims)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == view.count || KeyCellAt(view.keys, lo) != cell ||
      KeyDimsAt(view.keys, lo) != dims) {
    return nullptr;
  }
  return Materialize(view, lo);
}

const CellSummary* MappedSnapshot::Cell(hex::CellIndex cell) const {
  return Find(GroupingSet::kCell, cell, GroupKeyDimsPacked(KeyCell(cell)));
}

const CellSummary* MappedSnapshot::CellType(hex::CellIndex cell,
                                            ais::MarketSegment segment) const {
  return Find(GroupingSet::kCellType, cell,
              GroupKeyDimsPacked(KeyCellType(cell, segment)));
}

const CellSummary* MappedSnapshot::CellRouteType(
    hex::CellIndex cell, sim::PortId origin, sim::PortId destination,
    ais::MarketSegment segment) const {
  return Find(
      GroupingSet::kCellRouteType, cell,
      GroupKeyDimsPacked(KeyCellRouteType(cell, origin, destination, segment)));
}

std::vector<hex::CellIndex> MappedSnapshot::RouteCells(uint64_t packed) const {
  size_t lo = 0;
  size_t hi = route_span_count_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (store::LoadU64(route_spans_ + mid * kRouteSpanBytes) < packed) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  std::vector<hex::CellIndex> cells;
  if (lo == route_span_count_) return cells;
  const char* span = route_spans_ + lo * kRouteSpanBytes;
  if (store::LoadU64(span) != packed) return cells;
  const uint64_t begin = store::LoadU64(span + 8);
  const uint64_t end = store::LoadU64(span + 16);
  cells.reserve(static_cast<size_t>(end - begin));
  for (uint64_t i = begin; i < end; ++i) {
    cells.push_back(
        store::LoadU64(route_cells_ + i * sizeof(uint64_t)));
  }
  return cells;
}

std::vector<hex::CellIndex> MappedSnapshot::CellsForRoute(
    sim::PortId origin, sim::PortId destination,
    ais::MarketSegment segment) const {
  // Same answer policy as the sealed snapshot: the exact key's cells,
  // falling back to the reversed port pair when the exact key is empty.
  std::vector<hex::CellIndex> cells =
      RouteCells(RouteIndex::PackRouteKey(origin, destination, segment));
  if (cells.empty()) {
    cells = RouteCells(RouteIndex::PackRouteKey(destination, origin, segment));
  }
  return cells;
}

std::vector<ais::MarketSegment> MappedSnapshot::SegmentsAt(
    hex::CellIndex cell) const {
  size_t lo = 0;
  size_t hi = segment_count_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (store::LoadU64(segments_ + mid * kSegmentRecordBytes) < cell) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  std::vector<ais::MarketSegment> result;
  if (lo == segment_count_ ||
      store::LoadU64(segments_ + lo * kSegmentRecordBytes) != cell) {
    return result;
  }
  const uint64_t mask =
      store::LoadU64(segments_ + lo * kSegmentRecordBytes + sizeof(uint64_t));
  for (int bit = 0; bit < ais::kNumMarketSegments; ++bit) {
    if ((mask >> bit) & 1) {
      result.push_back(static_cast<ais::MarketSegment>(bit));
    }
  }
  return result;
}

void MappedSnapshot::VisitGroupingSet(GroupingSet set,
                                      const SummaryVisitor& visitor) const {
  const SetView& view = sets_[static_cast<size_t>(set)];
  for (size_t i = 0; i < view.count; ++i) {
    const CellSummary* summary = Materialize(view, i);
    if (summary == nullptr) continue;
    const GroupKey key =
        GroupKeyFromPacked(KeyCellAt(view.keys, i), KeyDimsAt(view.keys, i));
    visitor(key, *summary);
  }
}

bool MappedSnapshot::VisitGroupingSetWhile(
    GroupingSet set, const CancellableVisitor& visitor) const {
  const SetView& view = sets_[static_cast<size_t>(set)];
  for (size_t i = 0; i < view.count; ++i) {
    const CellSummary* summary = Materialize(view, i);
    if (summary == nullptr) continue;
    const GroupKey key =
        GroupKeyFromPacked(KeyCellAt(view.keys, i), KeyDimsAt(view.keys, i));
    if (!visitor(key, *summary)) return false;
  }
  return true;
}

uint64_t MappedSnapshot::DistinctCells() const {
  return sets_[static_cast<size_t>(GroupingSet::kCell)].count;
}

Result<std::shared_ptr<const InventorySnapshot>> SnapshotFromOpened(
    store::SnapshotStore::Opened opened) {
  return MappedSnapshot::Open(std::move(opened));
}

Result<std::shared_ptr<const InventorySnapshot>> OpenLatestSnapshot(
    const store::SnapshotStore& store, uint64_t* generation) {
  const std::vector<uint64_t> generations = store.ListGenerations();
  if (generations.empty()) {
    return Status::NotFound("no generations in " +
                            store.options().directory);
  }
  std::string failures;
  for (size_t i = generations.size(); i-- > 0;) {
    Result<store::SnapshotStore::Opened> opened =
        store.OpenGeneration(generations[i]);
    Result<std::shared_ptr<const InventorySnapshot>> snapshot =
        opened.ok() ? SnapshotFromOpened(std::move(opened).value())
                    : Result<std::shared_ptr<const InventorySnapshot>>(
                          opened.status());
    if (snapshot.ok()) {
      if (generation != nullptr) *generation = generations[i];
      return snapshot;
    }
    // Torn or damaged at either the container or the payload level:
    // fall back to the previous generation, counting the skip.
    obs::Registry::Global()
        .counter(store::kMetricStoreFallbacks)
        ->Increment();
    if (!failures.empty()) failures += "; ";
    failures += "gen " + std::to_string(generations[i]) + ": " +
                snapshot.status().ToString();
  }
  return Status::DataLoss("all " + std::to_string(generations.size()) +
                          " generations unreadable: " + failures);
}

Result<std::shared_ptr<const InventorySnapshot>> OpenGenerationSnapshot(
    const store::SnapshotStore& store, uint64_t generation) {
  POL_ASSIGN_OR_RETURN(store::SnapshotStore::Opened opened,
                       store.OpenGeneration(generation));
  return SnapshotFromOpened(std::move(opened));
}

}  // namespace pol::core
